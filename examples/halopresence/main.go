// Halo Presence: the paper's flagship workload (§3, §6.1) at cluster scale
// on the deterministic simulator — games of 8 players exchanging the
// 18-message broadcast per status query, with players churning through
// games. Runs the same scenario three ways (baseline, ActOp partitioning,
// ActOp combined) and prints the latency/CPU comparison in seconds of wall
// time.
//
//	go run ./examples/halopresence
package main

import (
	"fmt"
	"time"

	"actop/internal/experiments"
)

func main() {
	base := experiments.DefaultHaloOpts()
	base.Players = 4000
	base.Servers = 3
	base.Load = 1800
	base.Warmup = 3 * time.Minute
	base.Measure = 2 * time.Minute
	base.FastControl = true

	fmt.Println("Halo Presence, 4000 players on 3 simulated 8-core servers, 1800 status queries/s")
	fmt.Println()

	baseline := base
	r1 := experiments.RunHalo(baseline)
	fmt.Println("[1/3] baseline (random placement, default threads)")
	fmt.Print(r1.Render())

	part := base
	part.Partitioning = true
	r2 := experiments.RunHalo(part)
	fmt.Println("[2/3] ActOp partitioning")
	fmt.Print(r2.Render())

	both := part
	both.ThreadTuning = true
	r3 := experiments.RunHalo(both)
	fmt.Println("[3/3] ActOp partitioning + thread allocation")
	fmt.Print(r3.Render())

	fmt.Println()
	imp := func(a, b time.Duration) string {
		return fmt.Sprintf("%.0f%%", 100*(1-float64(b)/float64(a)))
	}
	fmt.Printf("median improvement: partitioning %s, combined %s (paper: 42%%, 55%%)\n",
		imp(r1.Latency.Median, r2.Latency.Median), imp(r1.Latency.Median, r3.Latency.Median))
	fmt.Printf("p99    improvement: partitioning %s, combined %s (paper: 69%%, 75%%)\n",
		imp(r1.Latency.P99, r2.Latency.P99), imp(r1.Latency.P99, r3.Latency.P99))
	fmt.Printf("CPU: %.0f%% -> %.0f%% -> %.0f%%\n",
		100*r1.CPUUtilization, 100*r2.CPUUtilization, 100*r3.CPUUtilization)
}
