// Heartbeat: the §6.2 monitoring service on the real runtime — one actor
// per monitored entity, clients posting periodic status updates. ActOp's
// thread controller learns the stage parameters from live measurements and
// resizes the SEDA pools; the example prints the allocation it converges to
// and the observed latency before/after.
//
//	go run ./examples/heartbeat
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/core"
	"actop/internal/transport"
)

// entity keeps the latest heartbeat for one monitored client.
type entity struct {
	LastBeat int64
	Beats    int
}

func (e *entity) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Beat":
		var at int64
		if err := codec.Unmarshal(args, &at); err != nil {
			return nil, err
		}
		e.LastBeat = at
		e.Beats++
		return nil, nil
	case "Status":
		return codec.Marshal(e.LastBeat)
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

func (e *entity) Snapshot() ([]byte, error) { return codec.Marshal(*e) }
func (e *entity) Restore(b []byte) error    { return codec.Unmarshal(b, e) }

func main() {
	const entities = 200
	const loaders = 8
	const perLoader = 400

	net := transport.NewNetwork(0)
	peers := []transport.NodeID{"silo-0"}
	sys, err := actor.NewSystem(actor.Config{
		Transport: net.Join(peers[0]),
		Peers:     peers,
		// Deliberately oversubscribed default: one thread per stage per
		// "core", as the paper's baseline.
		ReceiverWorkers: 8, Workers: 8, SenderWorkers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.RegisterType("entity", func() actor.Actor { return &entity{} })
	defer sys.Stop()

	run := func(label string) time.Duration {
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		for l := 0; l < loaders; l++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				for i := 0; i < perLoader; i++ {
					ref := actor.Ref{Type: "entity", Key: fmt.Sprintf("e-%d", (l*perLoader+i)%entities)}
					start := time.Now()
					if err := sys.Call(ref, "Beat", time.Now().UnixNano(), nil); err != nil {
						continue
					}
					mu.Lock()
					lats = append(lats, time.Since(start))
					mu.Unlock()
				}
			}(l)
		}
		wg.Wait()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		med := lats[len(lats)/2]
		p99 := lats[len(lats)*99/100]
		fmt.Printf("%-18s median %-12v p99 %v  (%d beats)\n", label, med, p99, len(lats))
		return med
	}

	recv, work, send := sys.Stages()
	fmt.Printf("default allocation : recv=%d work=%d send=%d\n", recv.Workers(), work.Workers(), send.Workers())
	run("default threads")

	// Attach the §5 thread controller and let it observe one window.
	opts := core.DefaultOptions()
	opts.Partitioning = false
	opts.ThreadPeriod = 500 * time.Millisecond
	opts.MinSamples = 100
	opt := core.NewOptimizer(sys, opts)
	defer opt.Stop()

	run("measuring window")
	opt.Retune()
	fmt.Printf("ActOp allocation   : recv=%d work=%d send=%d\n", recv.Workers(), work.Workers(), send.Workers())
	run("tuned threads")

	// The entities kept every beat.
	var total int
	for i := 0; i < entities; i++ {
		ref := actor.Ref{Type: "entity", Key: fmt.Sprintf("e-%d", i)}
		var last int64
		if err := sys.Call(ref, "Status", nil, &last); err == nil && last > 0 {
			total++
		}
	}
	fmt.Printf("%d/%d entities reporting fresh status\n", total, entities)
}
