// Quickstart: a three-node in-process actor cluster with ActOp attached.
//
// It defines one actor type (a greeter that counts calls), makes a few
// location-transparent calls, migrates an actor live, and prints where
// everything ran.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/core"
	"actop/internal/transport"
)

// greeter is a virtual actor: it exists wherever the runtime activates it.
type greeter struct{ Calls int }

func (g *greeter) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Greet":
		var name string
		if err := codec.Unmarshal(args, &name); err != nil {
			return nil, err
		}
		g.Calls++
		return codec.Marshal(fmt.Sprintf("hello %s from %s (call #%d)", name, ctx.Node(), g.Calls))
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

// Snapshot/Restore make the greeter migratable: its call count survives
// live migration between nodes.
func (g *greeter) Snapshot() ([]byte, error) { return codec.Marshal(g.Calls) }
func (g *greeter) Restore(b []byte) error    { return codec.Unmarshal(b, &g.Calls) }

func main() {
	// 1. Build a three-node cluster over the in-memory transport.
	net := transport.NewNetwork(200 * time.Microsecond)
	peers := []transport.NodeID{"silo-a", "silo-b", "silo-c"}
	var systems []*actor.System
	for i, p := range peers {
		sys, err := actor.NewSystem(actor.Config{
			Transport: net.Join(p),
			Peers:     peers,
			Seed:      int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.RegisterType("greeter", func() actor.Actor { return &greeter{} })
		defer sys.Stop()
		systems = append(systems, sys)

		// 2. Attach ActOp: communication-aware migration + model-driven
		// thread allocation, fully transparent to the application.
		opt := core.NewOptimizer(sys, core.DefaultOptions())
		opt.Start()
		defer opt.Stop()
	}

	// 3. Call actors by reference — the runtime activates them on demand
	// and routes from any node.
	alice := actor.Ref{Type: "greeter", Key: "alice"}
	for i, sys := range systems {
		var msg string
		if err := sys.Call(alice, "Greet", fmt.Sprintf("caller-%d", i), &msg); err != nil {
			log.Fatal(err)
		}
		fmt.Println(msg)
	}

	// 4. Live-migrate the activation; state (the call count) travels.
	var host *actor.System
	for _, sys := range systems {
		if sys.HostsActor(alice) {
			host = sys
		}
	}
	target := systems[0]
	if host == target {
		target = systems[1]
	}
	if err := host.Migrate(alice, target.Node()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated %s: %s -> %s\n", alice, host.Node(), target.Node())

	var msg string
	if err := systems[2].Call(alice, "Greet", "post-migration", &msg); err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)

	for _, sys := range systems {
		st := sys.Stats()
		fmt.Printf("%s: activations=%d local=%d remote=%d migrations(in/out)=%d/%d\n",
			st.Node, st.Activations, st.CallsLocal, st.CallsRemote, st.MigrationsIn, st.MigrationsOut)
	}
}
