// Chat: the paper's motivating example (§1) on the real runtime — every
// user and chat room is an actor. Users join rooms and post messages; the
// room fans each message out to its members. ActOp's partitioner watches
// the traffic and migrates each room's members onto the room's node,
// driving the remote-call fraction down while the application keeps running.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"log"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/core"
	"actop/internal/transport"
)

type post struct {
	From string
	Text string
}

// room fans posts out to member users.
type room struct{ Members []string }

func (r *room) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Join":
		var user string
		if err := codec.Unmarshal(args, &user); err != nil {
			return nil, err
		}
		r.Members = append(r.Members, user)
		return nil, nil
	case "Post":
		var p post
		if err := codec.Unmarshal(args, &p); err != nil {
			return nil, err
		}
		for _, m := range r.Members {
			if m == p.From {
				// No self-echo. Fanout only ever flows room → user: posts
				// enter the room from outside a turn, so the kind graph
				// stays a DAG and no pair of activations can await each
				// other (the ctlStage livelock shape calldag rejects).
				continue
			}
			if err := ctx.Call(actor.Ref{Type: "user", Key: m}, "Deliver", p, nil); err != nil {
				return nil, err
			}
		}
		return codec.Marshal(len(r.Members))
	}
	return nil, fmt.Errorf("room: unknown method %q", method)
}

func (r *room) Snapshot() ([]byte, error) { return codec.Marshal(r.Members) }
func (r *room) Restore(b []byte) error    { return codec.Unmarshal(b, &r.Members) }

// user stores an inbox of delivered posts. Users deliberately have no
// "post through me" method: a user turn that synchronously called its
// room while the room fans out Deliver calls to users would close the
// room ↔ user call cycle, and two in-flight posts could then hold their
// activations while awaiting each other. Clients post to rooms directly.
type user struct{ Inbox int }

func (u *user) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Deliver":
		u.Inbox++
		return nil, nil
	}
	return nil, fmt.Errorf("user: unknown method %q", method)
}

func (u *user) Snapshot() ([]byte, error) { return codec.Marshal(u.Inbox) }
func (u *user) Restore(b []byte) error    { return codec.Unmarshal(b, &u.Inbox) }

func main() {
	const nodes, rooms, usersPerRoom = 3, 9, 5

	net := transport.NewNetwork(100 * time.Microsecond)
	var peers []transport.NodeID
	for i := 0; i < nodes; i++ {
		peers = append(peers, transport.NodeID(fmt.Sprintf("silo-%d", i)))
	}
	var systems []*actor.System
	var optimizers []*core.Optimizer
	for i, p := range peers {
		sys, err := actor.NewSystem(actor.Config{
			Transport: net.Join(p), Peers: peers, Seed: int64(i),
			Workers: 32,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.RegisterType("room", func() actor.Actor { return &room{} })
		sys.RegisterType("user", func() actor.Actor { return &user{} })
		defer sys.Stop()
		systems = append(systems, sys)

		opts := core.DefaultOptions()
		opts.ThreadTuning = false
		opts.PartitionPeriod = 300 * time.Millisecond
		opts.RejectWindow = 600 * time.Millisecond
		opt := core.NewOptimizer(sys, opts)
		opt.Start()
		defer opt.Stop()
		optimizers = append(optimizers, opt)
	}

	// Users join rooms (random placement scatters everyone).
	for r := 0; r < rooms; r++ {
		roomKey := fmt.Sprintf("room-%d", r)
		for u := 0; u < usersPerRoom; u++ {
			userKey := fmt.Sprintf("user-%d-%d", r, u)
			if err := systems[0].Call(actor.Ref{Type: "room", Key: roomKey}, "Join", userKey, nil); err != nil {
				log.Fatal(err)
			}
		}
	}

	remoteFraction := func() float64 {
		var local, remote uint64
		for _, sys := range systems {
			st := sys.Stats()
			local += st.CallsLocal
			remote += st.CallsRemote
		}
		if local+remote == 0 {
			return 0
		}
		return float64(remote) / float64(local+remote)
	}

	// Chat traffic: each user's client posts to the room, which fans out
	// Deliver calls to the other members. Room → user is the only
	// actor-to-actor edge, so the kind-level call graph is a DAG.
	say := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for r := 0; r < rooms; r++ {
				roomRef := actor.Ref{Type: "room", Key: fmt.Sprintf("room-%d", r)}
				for u := 0; u < usersPerRoom; u++ {
					p := post{From: fmt.Sprintf("user-%d-%d", r, u), Text: "hi"}
					var fanout int
					if err := systems[r%nodes].Call(roomRef, "Post", p, &fanout); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}

	say(5)
	fmt.Printf("before ActOp converges: %.0f%% of actor calls are remote\n", 100*remoteFraction())

	// Keep chatting while ActOp migrates members toward their rooms.
	for phase := 0; phase < 6; phase++ {
		say(5)
		time.Sleep(400 * time.Millisecond)
	}

	var moved int
	for _, o := range optimizers {
		_, m, _ := o.Counters()
		moved += m
	}
	fmt.Printf("after  ActOp converges: %.0f%% of actor calls are remote (cumulative; %d actors migrated)\n",
		100*remoteFraction(), moved)

	// Per-room locality: count rooms whose members all share the room's node.
	colocated := 0
	for r := 0; r < rooms; r++ {
		roomRef := actor.Ref{Type: "room", Key: fmt.Sprintf("room-%d", r)}
		var roomNode transport.NodeID
		for _, sys := range systems {
			if sys.HostsActor(roomRef) {
				roomNode = sys.Node()
			}
		}
		all := true
		for u := 0; u < usersPerRoom; u++ {
			ref := actor.Ref{Type: "user", Key: fmt.Sprintf("user-%d-%d", r, u)}
			hosted := false
			for _, sys := range systems {
				if sys.Node() == roomNode && sys.HostsActor(ref) {
					hosted = true
				}
			}
			if !hosted {
				all = false
			}
		}
		if all {
			colocated++
		}
	}
	fmt.Printf("%d/%d rooms fully co-located with their members\n", colocated, rooms)
	for _, sys := range systems {
		st := sys.Stats()
		fmt.Printf("%s: activations=%d migrations(in/out)=%d/%d\n",
			st.Node, st.Activations, st.MigrationsIn, st.MigrationsOut)
	}
}
