package des

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.At(3*time.Second, func() { order = append(order, 3) })
	k.At(1*time.Second, func() { order = append(order, 1) })
	k.At(2*time.Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
	if k.Fired() != 3 {
		t.Fatalf("Fired = %d", k.Fired())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	var k Kernel
	fired := time.Duration(-1)
	k.At(5*time.Second, func() {
		k.At(time.Second, func() { fired = k.Now() }) // in the past
	})
	k.Run()
	if fired != 5*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 5s", fired)
	}
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	e := k.After(time.Second, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() false")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	var nilEv *Event
	nilEv.Cancel() // must not panic
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var k Kernel
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			k.After(time.Second, chain)
		}
	}
	k.After(time.Second, chain)
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	// Idle advance.
	k2 := &Kernel{}
	k2.RunUntil(10 * time.Second)
	if k2.Now() != 10*time.Second {
		t.Fatalf("idle RunUntil Now = %v", k2.Now())
	}
}

func TestTicker(t *testing.T) {
	var k Kernel
	count := 0
	var tk *Ticker
	tk = k.Every(time.Second, -1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	k.RunUntil(10 * time.Second)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerPhase(t *testing.T) {
	var k Kernel
	var first Time
	tk := k.Every(time.Minute, 10*time.Second, func() {
		if first == 0 {
			first = k.Now()
		}
	})
	k.RunUntil(2 * time.Minute)
	tk.Stop()
	if first != 10*time.Second {
		t.Fatalf("first firing at %v, want 10s", first)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		var k Kernel
		r := NewRand(42)
		var stamps []Time
		var gen func()
		n := 0
		gen = func() {
			stamps = append(stamps, k.Now())
			n++
			if n < 100 {
				k.After(r.Exp(time.Millisecond), gen)
			}
		}
		k.After(0, gen)
		k.Run()
		return stamps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var sum time.Duration
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += r.Exp(10 * time.Millisecond)
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(10*time.Millisecond)) > float64(300*time.Microsecond) {
		t.Fatalf("exp mean = %v, want ~10ms", time.Duration(mean))
	}
	if r.Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRand(2)
	lo, hi := 20*time.Minute, 30*time.Minute
	for i := 0; i < 10_000; i++ {
		v := r.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if r.Uniform(hi, lo) != hi {
		t.Fatal("inverted bounds should return lo")
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var k Kernel
		prev := Time(0)
		ok := true
		for _, d := range delays {
			k.After(time.Duration(d)*time.Millisecond, func() {
				if k.Now() < prev {
					ok = false
				}
				prev = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
