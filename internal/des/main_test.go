package des

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running —
// the deterministic kernel must never spawn background work that
// outlives a run.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
