// Package des is a deterministic discrete-event simulation kernel: a
// virtual clock, an ordered event queue, cancellable timers, and
// reproducible random variate streams.
//
// The cluster simulator (internal/sim) runs the entire SEDA/queuing model of
// §3–§6 on this kernel, which is what lets paper-scale experiments (10
// servers, 10⁵–10⁶ actors, minutes of traffic) run in seconds of real time
// on one core, deterministically.
package des

import (
	"container/heap"
	"math"
	"math/rand"
	"time"
)

// Time is virtual simulation time, measured as an offset from the start of
// the run. Using time.Duration keeps arithmetic and formatting familiar.
type Time = time.Duration

// Event is a scheduled callback. Events at equal times fire in scheduling
// order, which makes runs fully deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel owns the virtual clock and the event queue. The zero value is
// ready to use.
type Kernel struct {
	now   Time
	queue eventHeap
	seq   uint64
	fired uint64
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled (uncanceled or canceled but not
// yet drained) events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Fired reports the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn at absolute virtual time t. Times in the past are clamped
// to now (the event fires next, after already-queued events at now).
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn d from now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// Step fires the next event. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil fires all events scheduled at or before t, then advances the
// clock to t (even if idle).
func (k *Kernel) RunUntil(t Time) {
	for len(k.queue) > 0 {
		// Peek.
		e := k.queue[0]
		if e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Every schedules fn to run at the given period until the returned Ticker
// is stopped. The first firing is one period from now, or at phase from now
// when phase ≥ 0.
func (k *Kernel) Every(period time.Duration, phase time.Duration, fn func()) *Ticker {
	t := &Ticker{kernel: k, period: period, fn: fn}
	first := period
	if phase >= 0 {
		first = phase
	}
	t.ev = k.After(first, t.tick)
	return t
}

// Ticker is a repeating event; see Kernel.Every.
type Ticker struct {
	kernel  *Kernel
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may stop the ticker
		t.ev = t.kernel.After(t.period, t.tick)
	}
}

// Stop halts future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Rand is a deterministic random variate stream for simulation inputs.
type Rand struct{ rng *rand.Rand }

// NewRand creates a stream with the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Exp draws an exponential duration with the given mean.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := r.rng.Float64()
	for u == 0 {
		u = r.rng.Float64()
	}
	return time.Duration(-float64(mean) * math.Log(u))
}

// Uniform draws uniformly from [lo, hi).
func (r *Rand) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.rng.Int63n(int64(hi-lo)))
}

// Intn draws uniformly from [0, n).
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Zipf returns a Zipf-distributed sampler over [0, n) with exponent s > 1:
// index 0 is the most popular key, with probability ∝ 1/(i+1)^s. The sampler
// draws from this stream's seeded source, so runs stay reproducible.
func (r *Rand) Zipf(s float64, n int) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.0001
	}
	return rand.NewZipf(r.rng, s, 1, uint64(n-1))
}

// Float64 draws uniformly from [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Shuffle randomizes the order of n elements.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.rng.Shuffle(n, swap) }
