package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d spans", len(got))
	}
	for i := 1; i <= 10; i++ {
		r.Put(&Span{SpanID: uint64(i)})
	}
	if r.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", r.Recorded())
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot has %d spans, want 4", len(got))
	}
	// Newest first: 10, 9, 8, 7.
	for i, sp := range got {
		if want := uint64(10 - i); sp.SpanID != want {
			t.Fatalf("snapshot[%d].SpanID = %d, want %d", i, sp.SpanID, want)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].SpanID != 10 || got[1].SpanID != 9 {
		t.Fatalf("limited snapshot = %+v", got)
	}
}

func TestRingForTrace(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 8; i++ {
		r.Put(&Span{TraceID: uint64(i % 2), SpanID: uint64(i)})
	}
	spans := r.ForTrace(1)
	if len(spans) != 4 {
		t.Fatalf("ForTrace(1) returned %d spans, want 4", len(spans))
	}
	for _, sp := range spans {
		if sp.TraceID != 1 {
			t.Fatalf("ForTrace(1) returned trace %d", sp.TraceID)
		}
	}
}

// TestRingConcurrent is the -race soak: writers wrap the ring while readers
// snapshot it.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 5000; i++ {
				r.Put(&Span{TraceID: seed, SpanID: i, Total: time.Duration(i)})
			}
		}(uint64(w))
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Snapshot(0) {
					_ = sp.ComponentSum()
				}
			}
		}()
	}
	// Writers finish, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if r.Recorded() >= 4*5000 {
			close(stop)
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if got := len(r.Snapshot(0)); got != 64 {
		t.Fatalf("full ring snapshot has %d spans, want 64", got)
	}
}

func TestSamplerRate(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Fatal("zero-rate sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 1000; i++ {
		if !always.Sample() {
			t.Fatal("rate-1 sampler skipped")
		}
	}
	s := NewSampler(0.01)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Sample() {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.01) > 0.005 {
		t.Fatalf("1%% sampler hit rate = %.4f", got)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := s.ID()
		if id == 0 || seen[id] {
			t.Fatalf("ID() returned zero or duplicate %d", id)
		}
		seen[id] = true
	}
}

func TestAssemble(t *testing.T) {
	base := time.Now()
	spans := []Span{
		// Root call a→b, with b making a nested call to c.
		{TraceID: 7, SpanID: 1, Kind: "client", Node: "a", Method: "Top", Start: base},
		{TraceID: 7, SpanID: 1, Kind: "server", Node: "b", Method: "Top", Start: base.Add(time.Millisecond)},
		{TraceID: 7, SpanID: 2, ParentID: 1, Kind: "client", Node: "b", Method: "Nested", Start: base.Add(2 * time.Millisecond)},
		{TraceID: 7, SpanID: 2, ParentID: 1, Kind: "server", Node: "c", Method: "Nested", Start: base.Add(3 * time.Millisecond)},
		// An unrelated root-only local span.
		{TraceID: 9, SpanID: 5, Kind: "local", Node: "a", Method: "Solo", Start: base.Add(4 * time.Millisecond)},
	}
	roots := Assemble(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	top := roots[0]
	if top.SpanID != 1 || top.Client == nil || top.Server == nil {
		t.Fatalf("root tree node malformed: %+v", top)
	}
	if top.Client.Node != "a" || top.Server.Node != "b" {
		t.Fatalf("client/server attribution wrong: %s / %s", top.Client.Node, top.Server.Node)
	}
	if len(top.Children) != 1 || top.Children[0].SpanID != 2 {
		t.Fatalf("nested call not attached: %+v", top.Children)
	}
	child := top.Children[0]
	if child.Client == nil || child.Server == nil || child.Server.Node != "c" {
		t.Fatalf("child views wrong: %+v", child)
	}
	if roots[1].SpanID != 5 || roots[1].Client == nil || roots[1].Client.Kind != "local" {
		t.Fatalf("local root wrong: %+v", roots[1])
	}
}

func TestDecompose(t *testing.T) {
	var spans []Span
	for i := 0; i < 100; i++ {
		sp := Span{
			Serialize: 1 * time.Microsecond,
			SendQueue: 2 * time.Microsecond,
			Network:   40 * time.Microsecond,
			RecvQueue: 3 * time.Microsecond,
			WorkQueue: 4 * time.Microsecond,
			Exec:      50 * time.Microsecond,
			ReplySend: 2 * time.Microsecond,
		}
		sp.Total = sp.ComponentSum()
		spans = append(spans, sp)
	}
	d := Decompose(spans)
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if got, want := d.SumMean(), d.Total().Mean(); got != want {
		t.Fatalf("component sum mean %v != total mean %v", got, want)
	}
	// exec should dominate the share column.
	if e, n := d.ComponentHistogram("exec").Mean(), d.ComponentHistogram("network").Mean(); e <= n {
		t.Fatalf("exec mean %v not above network mean %v", e, n)
	}
	tbl := d.Table()
	for _, c := range Components {
		if !strings.Contains(tbl, c) {
			t.Fatalf("table missing component %q:\n%s", c, tbl)
		}
	}
	if !strings.Contains(tbl, "component sum / total") {
		t.Fatalf("table missing closure line:\n%s", tbl)
	}
}
