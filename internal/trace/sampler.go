package trace

import "sync/atomic"

// Sampler makes the root-call sampling decision. The zero-rate sampler
// answers with a single branch (no atomics), so tracing that is configured
// off costs one predictable compare per call. A non-zero rate pays one
// atomic add plus a mix — still far below a channel operation.
type Sampler struct {
	threshold uint64 // rate scaled to [0, 2^32]
	state     atomic.Uint64
	// Decision counters, maintained only when sampling is on — the
	// zero-rate fast path stays a single branch with no atomics.
	accepted atomic.Uint64
	rejected atomic.Uint64
}

// NewSampler returns a sampler that samples approximately the given
// fraction of decisions (clamped to [0, 1]).
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		return &Sampler{}
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{threshold: uint64(rate * (1 << 32))}
}

// Seed offsets the sampler's id stream (e.g. by a node hash) so ids drawn
// on different nodes do not collide. Call before traffic starts.
func (s *Sampler) Seed(seed uint64) { s.state.Store(seed) }

// Sample reports whether the next root call should be traced.
func (s *Sampler) Sample() bool {
	if s.threshold == 0 {
		return false
	}
	if uint64(uint32(mix(s.state.Add(0x9e3779b97f4a7c15)))) < s.threshold {
		s.accepted.Add(1)
		return true
	}
	s.rejected.Add(1)
	return false
}

// Accepted reports the lifetime count of sampling decisions that chose to
// trace (always zero with sampling off — disabled calls are not counted,
// keeping the off path atomics-free).
func (s *Sampler) Accepted() uint64 { return s.accepted.Load() }

// Rejected reports the lifetime count of decisions that declined to trace.
func (s *Sampler) Rejected() uint64 { return s.rejected.Load() }

// ID draws a non-zero pseudo-random 64-bit id (trace and span ids).
func (s *Sampler) ID() uint64 {
	for {
		if id := mix(s.state.Add(0x9e3779b97f4a7c15)); id != 0 {
			return id
		}
	}
}

// mix is splitmix64's finalizer: a cheap, well-distributed bijection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
