package trace

import "sync/atomic"

// Ring is a fixed-capacity lock-free buffer of completed spans: writers
// claim a slot with one atomic add and publish with one atomic pointer
// store, so recording never blocks the call path; readers snapshot by
// loading the published pointers. Old spans are overwritten once the ring
// wraps. Spans must not be mutated after Put.
type Ring struct {
	slots  []atomic.Pointer[Span]
	cursor atomic.Uint64
}

// NewRing creates a ring holding up to capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Span], capacity)}
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Put publishes a completed span. The span is retained by reference — the
// caller must not modify it afterwards.
func (r *Ring) Put(sp *Span) {
	i := r.cursor.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(sp)
}

// Recorded reports the lifetime number of spans put (including overwritten
// ones).
func (r *Ring) Recorded() uint64 { return r.cursor.Load() }

// Overwritten reports how many spans have been lost to ring wraparound —
// exported so trace coverage is itself observable (a span missing from a
// tree might simply have been overwritten).
func (r *Ring) Overwritten() uint64 {
	if n := r.cursor.Load(); n > uint64(len(r.slots)) {
		return n - uint64(len(r.slots))
	}
	return 0
}

// Snapshot returns up to limit of the most recent spans, newest first
// (limit <= 0 means the whole ring). Under concurrent writes a slot may be
// observed mid-overwrite with a newer span than its position implies; the
// snapshot is a consistent-enough view for debugging, not a barrier.
func (r *Ring) Snapshot(limit int) []Span {
	n := r.cursor.Load()
	depth := uint64(len(r.slots))
	if n < depth {
		depth = n
	}
	if limit > 0 && uint64(limit) < depth {
		depth = uint64(limit)
	}
	out := make([]Span, 0, depth)
	for i := uint64(0); i < depth; i++ {
		sp := r.slots[(n-1-i)%uint64(len(r.slots))].Load()
		if sp != nil {
			out = append(out, *sp)
		}
	}
	return out
}

// ForTrace returns every buffered span of the given trace, newest first.
func (r *Ring) ForTrace(traceID uint64) []Span {
	var out []Span
	for _, sp := range r.Snapshot(0) {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}
