// Package trace implements the runtime's end-to-end latency decomposition:
// per-call spans whose components attribute wall time to serialization, the
// SEDA stage queues, execution, and the network (the paper's Fig. 4 view,
// measured on a live cluster instead of the simulator).
//
// The capture path is built not to perturb the hot path: sampling is decided
// once at the root call, unsampled calls carry no trace state at all, and
// completed spans land in a fixed-size lock-free ring (Ring) that readers
// snapshot without stopping writers.
//
// Goroutine safety: Ring and Sampler are safe for concurrent use. A Span is
// built single-threaded along its call path and must be treated as immutable
// once handed to Ring.Put.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"actop/internal/metrics"
)

// Span is one traced hop of a call tree. A remote invocation produces two
// spans sharing a SpanID: the caller's "client" span (total round trip plus
// the caller-side and residual components) and the callee's "server" span
// (the callee-side stage components). Local calls produce a single "local"
// span. ParentID links nested actor→actor calls to the server span of the
// call that issued them.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`

	Node   string `json:"node"`
	Kind   string `json:"kind"` // "client", "server", or "local"
	Actor  string `json:"actor"`
	Method string `json:"method"`

	Start time.Time     `json:"start"`
	Total time.Duration `json:"total_ns"`

	// Latency components (the decomposition). On a client span every field
	// can be set: callee-side components arrive in the reply's hop-timing
	// record and Network is the residual (wire both ways plus framing). A
	// server span carries only the callee-side four.
	Serialize time.Duration `json:"serialize_ns,omitempty"`  // arg marshal + reply unmarshal (caller)
	SendQueue time.Duration `json:"send_queue_ns,omitempty"` // caller send-stage queue wait
	Network   time.Duration `json:"network_ns,omitempty"`    // residual: wire + framing, both directions
	RecvQueue time.Duration `json:"recv_queue_ns,omitempty"` // callee receive-stage queue wait
	WorkQueue time.Duration `json:"work_queue_ns,omitempty"` // callee activation mailbox wait
	Exec      time.Duration `json:"exec_ns,omitempty"`       // callee turn execution
	ReplySend time.Duration `json:"reply_send_ns,omitempty"` // callee reply send-stage queue wait

	// Annotations from the fault-tolerance machinery (PR 3).
	Retries   uint32 `json:"retries,omitempty"`
	Redirects uint32 `json:"redirects,omitempty"`
	DedupHit  bool   `json:"dedup_hit,omitempty"`
	Snapshot  bool   `json:"snapshot,omitempty"` // turn triggered a durable snapshot capture
	Epoch     uint64 `json:"epoch,omitempty"`    // callee activation's migration epoch
	Err       string `json:"err,omitempty"`
}

// Components, in decomposition display order.
var Components = []string{
	"serialize", "send_queue", "network", "recv_queue", "work_queue", "exec", "reply_send",
}

// Component returns the named component's duration.
func (s *Span) Component(name string) time.Duration {
	switch name {
	case "serialize":
		return s.Serialize
	case "send_queue":
		return s.SendQueue
	case "network":
		return s.Network
	case "recv_queue":
		return s.RecvQueue
	case "work_queue":
		return s.WorkQueue
	case "exec":
		return s.Exec
	case "reply_send":
		return s.ReplySend
	}
	return 0
}

// ComponentSum is the sum of all components — on a client span it should
// match Total to within measurement noise (Network is computed as the
// residual, so any mismatch is clamping of a negative residual).
func (s *Span) ComponentSum() time.Duration {
	var sum time.Duration
	for _, c := range Components {
		sum += s.Component(c)
	}
	return sum
}

// --- call-tree assembly ---

// TreeNode is one call of an assembled cross-node call tree: the client and
// server views of a span id (either may be missing when its node's ring has
// wrapped or its spans were not collected) plus the calls it issued.
type TreeNode struct {
	SpanID   uint64      `json:"span_id"`
	Client   *Span       `json:"client,omitempty"`
	Server   *Span       `json:"server,omitempty"`
	Children []*TreeNode `json:"children,omitempty"`
}

// Assemble builds call trees from a bag of spans (any order, any mix of
// traces): client/server spans pair up by SpanID and children attach to
// their ParentID's node. Roots (ParentID 0 or unknown) are returned sorted
// by start time.
func Assemble(spans []Span) []*TreeNode {
	nodes := make(map[uint64]*TreeNode)
	node := func(id uint64) *TreeNode {
		n, ok := nodes[id]
		if !ok {
			n = &TreeNode{SpanID: id}
			nodes[id] = n
		}
		return n
	}
	for i := range spans {
		sp := spans[i]
		n := node(sp.SpanID)
		switch sp.Kind {
		case "server":
			if n.Server == nil {
				n.Server = &sp
			}
		default: // client and local spans are the caller's view
			if n.Client == nil {
				n.Client = &sp
			}
		}
	}
	var roots []*TreeNode
	for _, n := range nodes {
		parent := uint64(0)
		if n.Client != nil {
			parent = n.Client.ParentID
		} else if n.Server != nil {
			parent = n.Server.ParentID
		}
		if p, ok := nodes[parent]; ok && parent != 0 && parent != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	start := func(n *TreeNode) time.Time {
		if n.Client != nil {
			return n.Client.Start
		}
		if n.Server != nil {
			return n.Server.Start
		}
		return time.Time{}
	}
	sort.Slice(roots, func(i, j int) bool { return start(roots[i]).Before(start(roots[j])) })
	for _, n := range nodes {
		children := n.Children
		sort.Slice(children, func(i, j int) bool { return start(children[i]).Before(start(children[j])) })
	}
	return roots
}

// --- aggregate decomposition ---

// Decomposition aggregates spans into per-component latency distributions —
// the paper's figure-style breakdown table, computed from live spans.
type Decomposition struct {
	hists map[string]*metrics.Histogram
	total metrics.Histogram
	sum   metrics.Histogram // per-span component sums, for the closure check
	n     int
}

// Decompose aggregates the given spans (callers usually filter to one Kind
// first — client spans for the end-to-end view).
func Decompose(spans []Span) *Decomposition {
	d := &Decomposition{hists: make(map[string]*metrics.Histogram, len(Components))}
	for _, c := range Components {
		d.hists[c] = &metrics.Histogram{}
	}
	for i := range spans {
		sp := &spans[i]
		d.n++
		d.total.Record(sp.Total)
		d.sum.Record(sp.ComponentSum())
		for _, c := range Components {
			d.hists[c].Record(sp.Component(c))
		}
	}
	return d
}

// Count reports the number of spans aggregated.
func (d *Decomposition) Count() int { return d.n }

// Total reports the distribution of span totals.
func (d *Decomposition) Total() *metrics.Histogram { return &d.total }

// ComponentHistogram returns the named component's distribution.
func (d *Decomposition) ComponentHistogram(name string) *metrics.Histogram { return d.hists[name] }

// SumMean reports the mean per-span component sum — compare against
// Total().Mean() to verify the decomposition closes.
func (d *Decomposition) SumMean() time.Duration { return d.sum.Mean() }

// Table renders the decomposition as an aligned component table: median and
// p99 per component plus each component's share of the summed mean.
func (d *Decomposition) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %7s\n", "component", "p50", "p99", "mean", "share")
	var meanSum float64
	for _, c := range Components {
		meanSum += float64(d.hists[c].Mean())
	}
	for _, c := range Components {
		h := d.hists[c]
		share := 0.0
		if meanSum > 0 {
			share = 100 * float64(h.Mean()) / meanSum
		}
		fmt.Fprintf(&b, "%-12s %12s %12s %12s %6.1f%%\n",
			c, round(h.Quantile(0.5)), round(h.Quantile(0.99)), round(h.Mean()), share)
	}
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %7s\n",
		"total", round(d.total.Quantile(0.5)), round(d.total.Quantile(0.99)), round(d.total.Mean()), "")
	fmt.Fprintf(&b, "component sum / total (mean): %s / %s (%.1f%%)\n",
		round(d.sum.Mean()), round(d.total.Mean()), 100*closure(d.sum.Mean(), d.total.Mean()))
	return b.String()
}

func closure(sum, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	}
	return d
}
