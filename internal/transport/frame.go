package transport

import (
	"fmt"

	"actop/internal/codec"
)

// Hand-rolled binary envelope encoding for the TCP transport: the envelope
// scaffolding (kind, id, addressing strings) is written field by field with
// varint/length-prefixed primitives — no reflection, no per-message type
// descriptors — and the payload rides along as opaque bytes. One envelope
// per codec frame.
//
// Wire compatibility: the trace context is an optional trailing section
// after the payload. Decoders that predate it ignore trailing bytes, and
// this decoder treats an absent (or unrecognized) section as a nil trace —
// so traced and untraced nodes interoperate in both directions, and
// unsampled traffic is byte-identical to the pre-trace format.

// traceSectionV1 tags the version-1 trace section.
const traceSectionV1 = 0x01

// appendEnvelope appends env's wire encoding to dst.
func appendEnvelope(dst []byte, env *Envelope) []byte {
	dst = append(dst, byte(env.Kind))
	dst = codec.AppendUvarint(dst, env.ID)
	dst = codec.AppendString(dst, string(env.From))
	dst = codec.AppendString(dst, env.ActorType)
	dst = codec.AppendString(dst, env.ActorKey)
	dst = codec.AppendString(dst, env.Method)
	dst = codec.AppendString(dst, env.Err)
	dst = codec.AppendBytes(dst, env.Payload)
	if tr := env.Trace; tr != nil {
		dst = append(dst, traceSectionV1)
		dst = codec.AppendUvarint(dst, tr.TraceID)
		dst = codec.AppendUvarint(dst, tr.SpanID)
		dst = codec.AppendUvarint(dst, tr.ParentID)
		dst = codec.AppendUvarint(dst, tr.RecvQueueNs)
		dst = codec.AppendUvarint(dst, tr.WorkQueueNs)
		dst = codec.AppendUvarint(dst, tr.ExecNs)
		dst = codec.AppendUvarint(dst, tr.Flags)
		dst = codec.AppendUvarint(dst, tr.Epoch)
	}
	return dst
}

// decodeTrace parses a version-1 trace section body. A malformed section
// yields nil: the section is advisory, so damage degrades to "untraced"
// rather than dropping the connection.
func decodeTrace(data []byte) *Trace {
	tr := &Trace{}
	var err error
	for _, dst := range []*uint64{
		&tr.TraceID, &tr.SpanID, &tr.ParentID,
		&tr.RecvQueueNs, &tr.WorkQueueNs, &tr.ExecNs,
		&tr.Flags, &tr.Epoch,
	} {
		if *dst, data, err = codec.ReadUvarint(data); err != nil {
			return nil
		}
	}
	return tr
}

// internerCap bounds a connection's string-intern table; on overflow the
// table resets (steady-state traffic re-warms it immediately).
const internerCap = 4096

// interner deduplicates the envelope's addressing strings (From, actor
// type/key, method) per connection: the same peer sends the same handful of
// strings on every message, so after warm-up decode allocates nothing for
// them. The map lookup on a []byte key compiles to zero allocations.
type interner struct{ m map[string]string }

func newInterner() *interner { return &interner{m: make(map[string]string)} }

func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if len(in.m) >= internerCap {
		in.m = make(map[string]string)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// readInterned consumes a length-prefixed string through the interner.
func readInterned(data []byte, in *interner) (string, []byte, error) {
	b, rest, err := codec.ReadBytes(data)
	if err != nil {
		return "", nil, err
	}
	return in.intern(b), rest, nil
}

// decodeEnvelope parses one envelope from a frame. The frame buffer is
// transient (it belongs to the connection's FrameReader), so the payload is
// copied into a fresh buffer the receiver owns outright and the strings are
// interned through the connection's table.
func decodeEnvelope(frame []byte, in *interner) (*Envelope, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	env := &Envelope{Kind: Kind(frame[0])}
	data := frame[1:]
	var err error
	var id uint64
	if id, data, err = codec.ReadUvarint(data); err != nil {
		return nil, fmt.Errorf("transport: decode envelope id: %w", err)
	}
	env.ID = id
	var s string
	if s, data, err = readInterned(data, in); err != nil {
		return nil, fmt.Errorf("transport: decode envelope from: %w", err)
	}
	env.From = NodeID(s)
	if env.ActorType, data, err = readInterned(data, in); err != nil {
		return nil, fmt.Errorf("transport: decode envelope type: %w", err)
	}
	if env.ActorKey, data, err = readInterned(data, in); err != nil {
		return nil, fmt.Errorf("transport: decode envelope key: %w", err)
	}
	if env.Method, data, err = readInterned(data, in); err != nil {
		return nil, fmt.Errorf("transport: decode envelope method: %w", err)
	}
	// Err is not interned: error strings are often unique and would churn
	// the table; they are also rare, so the copy is cheap.
	if env.Err, data, err = codec.ReadString(data); err != nil {
		return nil, fmt.Errorf("transport: decode envelope err: %w", err)
	}
	var p []byte
	if p, data, err = codec.ReadBytes(data); err != nil {
		return nil, fmt.Errorf("transport: decode envelope payload: %w", err)
	}
	if len(p) > 0 {
		env.Payload = append(make([]byte, 0, len(p)), p...)
	}
	// Optional trailing trace section; an unknown tag byte means a future
	// format (or a pre-trace peer's padding) and is ignored.
	if len(data) > 0 && data[0] == traceSectionV1 {
		env.Trace = decodeTrace(data[1:])
	}
	return env, nil
}
