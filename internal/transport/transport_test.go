package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal(msg)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestInMemRoundTrip(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	b := net.Join("b")
	defer a.Close()
	defer b.Close()

	var got atomic.Pointer[Envelope]
	b.SetHandler(func(env *Envelope) { got.Store(env) })
	err := a.Send("b", &Envelope{Kind: KindCall, ID: 7, ActorType: "player", ActorKey: "p1", Method: "Status", Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "no delivery")
	env := got.Load()
	if env.From != "a" || env.ID != 7 || env.Method != "Status" || string(env.Payload) != "hi" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestInMemUnknownNode(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	if err := a.Send("ghost", &Envelope{}); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestInMemLatency(t *testing.T) {
	net := NewNetwork(20 * time.Millisecond)
	a := net.Join("a")
	b := net.Join("b")
	var gotAt atomic.Int64
	b.SetHandler(func(env *Envelope) { gotAt.Store(time.Now().UnixNano()) })
	start := time.Now()
	_ = a.Send("b", &Envelope{})
	waitFor(t, func() bool { return gotAt.Load() != 0 }, "no delivery")
	if elapsed := time.Duration(gotAt.Load() - start.UnixNano()); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered in %v, want ≥ ~20ms", elapsed)
	}
}

func TestInMemCloseStopsTraffic(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	b := net.Join("b")
	b.Close()
	if err := a.Send("b", &Envelope{}); err == nil {
		t.Fatal("send to departed node should fail")
	}
	a.Close()
	if err := a.Send("b", &Envelope{}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if n := len(net.Nodes()); n != 0 {
		t.Fatalf("nodes after close: %d", n)
	}
}

func TestInMemConcurrentSends(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	b := net.Join("b")
	defer a.Close()
	defer b.Close()
	var count atomic.Int64
	b.SetHandler(func(env *Envelope) { count.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Send("b", &Envelope{ID: uint64(i)})
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return count.Load() == 800 }, "lost messages")
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got atomic.Pointer[Envelope]
	b.SetHandler(func(env *Envelope) { got.Store(env) })
	err = a.Send(b.Node(), &Envelope{Kind: KindCall, ID: 9, Method: "Beat", Payload: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "no tcp delivery")
	env := got.Load()
	if env.From != a.Node() || env.ID != 9 || len(env.Payload) != 3 {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	b, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	defer b.Close()
	var fromA, fromB atomic.Int64
	a.SetHandler(func(env *Envelope) { fromB.Add(1) })
	b.SetHandler(func(env *Envelope) { fromA.Add(1) })
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Node(), &Envelope{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(a.Node(), &Envelope{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return fromA.Load() == 50 && fromB.Load() == 50 }, "lost tcp messages")
}

func TestTCPUnreachablePeer(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	if err := a.Send("127.0.0.1:1", &Envelope{}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	b, _ := ListenTCP("127.0.0.1:0")
	defer b.Close()
	a.Close()
	if err := a.Send(b.Node(), &Envelope{}); err == nil {
		t.Fatal("expected error after close")
	}
	a.Close() // idempotent
}

func TestTCPConcurrentSends(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	b, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	defer b.Close()
	var count atomic.Int64
	b.SetHandler(func(env *Envelope) { count.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := a.Send(b.Node(), &Envelope{ID: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return count.Load() == 400 }, "lost concurrent tcp messages")
}

func TestFlakyDropAll(t *testing.T) {
	net := NewNetwork(0)
	a := NewFlaky(net.Join("a"), 1)
	b := net.Join("b")
	defer a.Close()
	defer b.Close()
	var got atomic.Int64
	b.SetHandler(func(env *Envelope) { got.Add(1) })
	a.SetDrop(1.0)
	for i := 0; i < 20; i++ {
		if err := a.Send("b", &Envelope{}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatalf("%d envelopes leaked through a 100%% drop", got.Load())
	}
	if a.Dropped() != 20 {
		t.Fatalf("Dropped = %d", a.Dropped())
	}
	a.SetDrop(0)
	_ = a.Send("b", &Envelope{})
	waitFor(t, func() bool { return got.Load() == 1 }, "healed transport lost message")
}

func TestFlakyDelay(t *testing.T) {
	net := NewNetwork(0)
	a := NewFlaky(net.Join("a"), 2)
	b := net.Join("b")
	defer a.Close()
	defer b.Close()
	var gotAt atomic.Int64
	b.SetHandler(func(env *Envelope) { gotAt.Store(time.Now().UnixNano()) })
	a.SetDelay(1.0, 30*time.Millisecond)
	start := time.Now()
	_ = a.Send("b", &Envelope{})
	waitFor(t, func() bool { return gotAt.Load() != 0 }, "delayed message never arrived")
	if elapsed := time.Duration(gotAt.Load() - start.UnixNano()); elapsed < 25*time.Millisecond {
		t.Fatalf("arrived in %v, want ≥ ~30ms", elapsed)
	}
}

func TestFlakyDeterministicSequence(t *testing.T) {
	run := func() []bool {
		net := NewNetwork(0)
		a := NewFlaky(net.Join("a"), 7)
		defer a.Close()
		b := net.Join("b")
		defer b.Close()
		a.SetDrop(0.5)
		var pattern []bool
		for i := 0; i < 32; i++ {
			before := a.Dropped()
			_ = a.Send("b", &Envelope{})
			pattern = append(pattern, a.Dropped() > before)
		}
		return pattern
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("fault sequence not deterministic at %d", i)
		}
	}
}
