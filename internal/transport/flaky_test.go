package transport

import (
	"errors"
	"testing"
	"time"
)

// flakyPair wires two in-memory nodes, node a wrapped in a Flaky, with
// channel handlers so tests can observe (or time out waiting for) delivery.
func flakyPair(t *testing.T) (fa *Flaky, b Transport, atA, atB chan *Envelope) {
	t.Helper()
	net := NewNetwork(0)
	fa = NewFlaky(net.Join("a"), 1)
	b = net.Join("b")
	atA = make(chan *Envelope, 16)
	atB = make(chan *Envelope, 16)
	fa.SetHandler(func(env *Envelope) { atA <- env })
	b.SetHandler(func(env *Envelope) { atB <- env })
	return fa, b, atA, atB
}

func mustArrive(t *testing.T, ch chan *Envelope, who string) *Envelope {
	t.Helper()
	select {
	case env := <-ch:
		return env
	case <-time.After(2 * time.Second):
		t.Fatalf("no envelope arrived at %s", who)
		return nil
	}
}

func mustNotArrive(t *testing.T, ch chan *Envelope, who string) {
	t.Helper()
	select {
	case env := <-ch:
		t.Fatalf("unexpected envelope at %s: %+v", who, env)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestFlakyPartitionBothDirections(t *testing.T) {
	fa, b, atA, atB := flakyPair(t)

	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 1}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atB, "b")
	if err := b.Send("a", &Envelope{Kind: KindReply, ID: 1}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atA, "a")

	fa.Partition("b")
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 2}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned send err = %v, want ErrUnreachable", err)
	}
	// Inbound is cut too: b's send succeeds (the network accepted it) but
	// a's handler never fires.
	if err := b.Send("a", &Envelope{Kind: KindReply, ID: 2}); err != nil {
		t.Fatal(err)
	}
	mustNotArrive(t, atA, "a")

	fa.Heal("b")
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 3}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atB, "b")
	if err := b.Send("a", &Envelope{Kind: KindReply, ID: 3}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atA, "a")

	if fa.Dropped() == 0 {
		t.Error("partition drop not counted")
	}
}

func TestFlakyKillRevive(t *testing.T) {
	fa, b, atA, atB := flakyPair(t)

	fa.Kill()
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("killed send err = %v, want ErrUnreachable", err)
	}
	if err := b.Send("a", &Envelope{Kind: KindCall, ID: 2}); err != nil {
		t.Fatal(err)
	}
	mustNotArrive(t, atA, "a")

	fa.Revive()
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 3}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atB, "b")
	if err := b.Send("a", &Envelope{Kind: KindCall, ID: 4}); err != nil {
		t.Fatal(err)
	}
	mustArrive(t, atA, "a")
}

func TestFlakyKillKeepsPartitions(t *testing.T) {
	fa, b, atA, _ := flakyPair(t)
	_ = b
	fa.Partition("b")
	fa.Kill()
	fa.Revive()
	// Revive undoes only the kill; the per-peer partition persists.
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send after revive err = %v, want ErrUnreachable (still partitioned)", err)
	}
	fa.Heal("b")
	if err := fa.Send("b", &Envelope{Kind: KindCall, ID: 2}); err != nil {
		t.Fatal(err)
	}
	_ = atA
}
