package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Flaky wraps a Transport with deterministic fault injection — message
// drops and extra delays — for testing how the runtime behaves under an
// unreliable network (timeouts, redirect retries, exchange failures).
type Flaky struct {
	inner Transport

	mu        sync.Mutex
	rng       *rand.Rand
	dropProb  float64
	delayProb float64
	delay     time.Duration
	dropped   uint64
}

// NewFlaky wraps inner; seed fixes the fault sequence.
func NewFlaky(inner Transport, seed int64) *Flaky {
	return &Flaky{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetDrop makes each Send vanish with probability p (the send "succeeds"
// from the caller's perspective, as a lost datagram/broken pipe would).
func (f *Flaky) SetDrop(p float64) {
	f.mu.Lock()
	f.dropProb = p
	f.mu.Unlock()
}

// SetDelay adds d of extra latency to each Send with probability p.
func (f *Flaky) SetDelay(p float64, d time.Duration) {
	f.mu.Lock()
	f.delayProb = p
	f.delay = d
	f.mu.Unlock()
}

// Dropped reports how many envelopes were swallowed.
func (f *Flaky) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Node implements Transport.
func (f *Flaky) Node() NodeID { return f.inner.Node() }

// SetHandler implements Transport.
func (f *Flaky) SetHandler(h Handler) { f.inner.SetHandler(h) }

// Close implements Transport.
func (f *Flaky) Close() error { return f.inner.Close() }

// Send implements Transport with fault injection.
func (f *Flaky) Send(to NodeID, env *Envelope) error {
	f.mu.Lock()
	drop := f.rng.Float64() < f.dropProb
	delayed := f.delay > 0 && f.rng.Float64() < f.delayProb
	delay := f.delay
	if drop {
		f.dropped++
	}
	f.mu.Unlock()
	if drop {
		return nil // lost on the wire
	}
	if delayed {
		cp := *env
		time.AfterFunc(delay, func() { _ = f.inner.Send(to, &cp) })
		return nil
	}
	return f.inner.Send(to, env)
}
