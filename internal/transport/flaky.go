package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Flaky wraps a Transport with deterministic fault injection for testing how
// the runtime behaves under an unreliable network (timeouts, redirect
// retries, exchange failures, failover). Two fault families are supported:
//
//   - Probabilistic: message drops (SetDrop) and extra delays (SetDelay),
//     applied to outbound sends only.
//   - Deterministic runtime controls: Partition(peer)/Heal(peer) sever and
//     restore both directions of traffic with one peer, and Kill()/Revive()
//     sever and restore all traffic — simulating this node crashing (or
//     being cut off) while its process keeps running.
//
// Partitioned/killed outbound sends fail with ErrUnreachable (as a TCP dial
// to a dead host would); inbound envelopes from a partitioned peer — or any
// envelope while killed — are silently discarded before the handler sees
// them.
type Flaky struct {
	inner Transport

	mu        sync.Mutex
	rng       *rand.Rand
	dropProb  float64
	delayProb float64
	delay     time.Duration
	dropped   uint64
	blocked   map[NodeID]bool
	killed    bool
	handler   Handler
}

// NewFlaky wraps inner; seed fixes the fault sequence.
func NewFlaky(inner Transport, seed int64) *Flaky {
	return &Flaky{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[NodeID]bool),
	}
}

// SetDrop makes each Send vanish with probability p (the send "succeeds"
// from the caller's perspective, as a lost datagram/broken pipe would).
func (f *Flaky) SetDrop(p float64) {
	f.mu.Lock()
	f.dropProb = p
	f.mu.Unlock()
}

// SetDelay adds d of extra latency to each Send with probability p.
func (f *Flaky) SetDelay(p float64, d time.Duration) {
	f.mu.Lock()
	f.delayProb = p
	f.delay = d
	f.mu.Unlock()
}

// Partition severs both directions of traffic with peer: outbound sends
// fail with ErrUnreachable, inbound envelopes from peer are discarded.
func (f *Flaky) Partition(peer NodeID) {
	f.mu.Lock()
	f.blocked[peer] = true
	f.mu.Unlock()
}

// Heal restores traffic with a partitioned peer.
func (f *Flaky) Heal(peer NodeID) {
	f.mu.Lock()
	delete(f.blocked, peer)
	f.mu.Unlock()
}

// Kill severs all traffic in both directions, simulating this node dying
// (from the cluster's perspective) while the local process keeps running.
func (f *Flaky) Kill() {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
}

// Revive undoes Kill. Per-peer partitions installed with Partition remain
// until healed individually.
func (f *Flaky) Revive() {
	f.mu.Lock()
	f.killed = false
	f.mu.Unlock()
}

// Dropped reports how many envelopes were swallowed (probabilistic drops
// plus inbound envelopes discarded by partitions/kill).
func (f *Flaky) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Node implements Transport.
func (f *Flaky) Node() NodeID { return f.inner.Node() }

// SetHandler implements Transport. The handler is installed behind an
// inbound filter so partitions and kills cut receiving too, not just
// sending.
func (f *Flaky) SetHandler(h Handler) {
	f.mu.Lock()
	f.handler = h
	f.mu.Unlock()
	f.inner.SetHandler(func(env *Envelope) {
		f.mu.Lock()
		blocked := f.killed || f.blocked[env.From]
		handler := f.handler
		if blocked {
			f.dropped++
		}
		f.mu.Unlock()
		if blocked || handler == nil {
			return
		}
		handler(env)
	})
}

// Close implements Transport.
func (f *Flaky) Close() error { return f.inner.Close() }

// Send implements Transport with fault injection.
func (f *Flaky) Send(to NodeID, env *Envelope) error {
	f.mu.Lock()
	if f.killed || f.blocked[to] {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s (injected partition)", ErrUnreachable, to)
	}
	drop := f.rng.Float64() < f.dropProb
	delayed := f.delay > 0 && f.rng.Float64() < f.delayProb
	delay := f.delay
	if drop {
		f.dropped++
	}
	f.mu.Unlock()
	if drop {
		return nil // lost on the wire
	}
	if delayed {
		cp := *env
		time.AfterFunc(delay, func() { _ = f.inner.Send(to, &cp) })
		return nil
	}
	return f.inner.Send(to, env)
}
