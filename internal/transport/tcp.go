package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCP is a Transport over real sockets: one listener per node, lazily
// dialed outbound connections (one per peer, serialized writes), gob-framed
// envelopes. Node ids are the listen addresses, so peers need no separate
// name service.
type TCP struct {
	id       NodeID
	listener net.Listener

	mu      sync.Mutex
	handler Handler
	conns   map[NodeID]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// ListenTCP starts a node listening on addr ("host:port"; ":0" picks a free
// port). The node's id is its actual listen address.
func ListenTCP(addr string) (*TCP, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		id:       NodeID(l.Addr().String()),
		listener: l,
		conns:    make(map[NodeID]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Node reports the listen address.
func (t *TCP) Node() NodeID { return t.id }

// SetHandler installs the inbound consumer.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(&env)
		}
	}
}

// Send delivers env to the peer listening at `to`, dialing on first use.
// On a write error the cached connection is dropped and one redial is
// attempted.
func (t *TCP) Send(to NodeID, env *Envelope) error {
	cp := *env
	cp.From = t.id
	for attempt := 0; attempt < 2; attempt++ {
		c, err := t.conn(to)
		if err != nil {
			return err
		}
		c.mu.Lock()
		err = c.enc.Encode(&cp)
		c.mu.Unlock()
		if err == nil {
			return nil
		}
		t.dropConn(to, c)
	}
	return fmt.Errorf("transport: send to %s failed after retry", to)
}

func (t *TCP) conn(to NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnknownNode, to, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		conn.Close() // lost the race; reuse the winner
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) dropConn(to NodeID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.conn.Close()
}

// Close shuts the listener and all connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[NodeID]*tcpConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	t.listener.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
