package transport

import (
	"fmt"
	"net"
	"sync"

	"actop/internal/codec"
)

// TCP is a Transport over real sockets, built for message throughput:
//
//   - Envelopes travel as hand-rolled length-prefixed binary frames (see
//     frame.go) — no reflection, no per-message gob type descriptors.
//   - Each peer has one lazily dialed connection drained by a dedicated
//     writer goroutine over a buffered FrameWriter. Senders enqueue and
//     return; the writer flushes only when the outbound queue is empty, so
//     bursts of messages coalesce into single syscalls.
//   - Inbound frames are decoded on the read loop but dispatched to the
//     handler on a separate per-connection goroutine, so one slow handler
//     cannot head-of-line-block frame reading on that connection.
//
// Node ids are the listen addresses, so peers need no separate name
// service.
//
// Error semantics: a dial failure surfaces as ErrUnreachable from Send (the
// address is known, the peer is not reachable right now). A write failure
// on an established connection redials once and retransmits; only write
// failures trigger redials. Handlers must not call Close (Close waits for
// in-flight handler invocations to return).
type TCP struct {
	id       NodeID
	listener net.Listener

	mu      sync.Mutex
	handler Handler
	peers   map[NodeID]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool

	closeCh chan struct{}
	wg      sync.WaitGroup
}

// outboundQueueCap bounds each peer's send queue; a full queue blocks Send
// (backpressure) until the writer drains or the transport closes.
const outboundQueueCap = 1024

// inboundQueueCap bounds each connection's decoded-envelope queue between
// the read loop and the dispatch goroutine.
const inboundQueueCap = 1024

// envPool recycles the sender-side envelope copies between Send and the
// writer goroutine: Send takes one, the writer returns it after encoding.
// The pooled struct never carries live references out (it is zeroed before
// Put), and the caller's payload slice is only read, never retained, once
// the frame bytes are built.
var envPool = sync.Pool{New: func() interface{} { return new(Envelope) }}

func recycleEnvelope(e *Envelope) {
	*e = Envelope{}
	envPool.Put(e)
}

// tcpPeer is one outbound connection: a bounded envelope queue drained by
// a writer goroutine.
type tcpPeer struct {
	to   NodeID
	ch   chan *Envelope
	dead chan struct{} // closed when the writer gives up; senders retry

	mu     sync.Mutex
	conn   net.Conn // current socket; swapped on redial, slammed by Close
	closed bool
}

// setConn installs a fresh socket, unless the peer was closed meanwhile.
func (p *tcpPeer) setConn(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = c
	return true
}

// closeConn tears the peer down, unblocking a writer stuck in a syscall.
func (p *tcpPeer) closeConn() {
	p.mu.Lock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
}

// ListenTCP starts a node listening on addr ("host:port"; ":0" picks a free
// port). The node's id is its actual listen address.
func ListenTCP(addr string) (*TCP, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		id:       NodeID(l.Addr().String()),
		listener: l,
		peers:    make(map[NodeID]*tcpPeer),
		inbound:  make(map[net.Conn]struct{}),
		closeCh:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Node reports the listen address.
func (t *TCP) Node() NodeID { return t.id }

// SetHandler installs the inbound consumer.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// --- inbound path ---

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one connection and feeds the dispatch
// goroutine; it never invokes the handler itself, so a slow handler delays
// only its own connection's queue, not frame reading.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	q := make(chan *Envelope, inboundQueueCap)
	t.wg.Add(1) // safe: this goroutine already holds a wg count
	go t.dispatchLoop(q)
	defer close(q)
	fr := codec.NewFrameReader(conn)
	in := newInterner()
	for {
		frame, err := fr.ReadFrame()
		if err != nil {
			return
		}
		env, err := decodeEnvelope(frame, in)
		if err != nil {
			return // corrupt stream: drop the connection
		}
		select {
		case q <- env:
		case <-t.closeCh:
			return
		}
	}
}

// dispatchLoop hands decoded envelopes to the handler. Close waits for it
// to exit, so no handler invocation is in flight once Close returns;
// envelopes still queued when Close begins are dropped.
func (t *TCP) dispatchLoop(q chan *Envelope) {
	defer t.wg.Done()
	for env := range q {
		select {
		case <-t.closeCh:
			continue // draining after Close: drop, just unblock the reader
		default:
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

// --- outbound path ---

// Send enqueues env for the peer listening at `to`, dialing on first use.
// It returns once the envelope is queued (the writer goroutine owns the
// socket); a full queue blocks until the writer catches up. A dial failure
// returns ErrUnreachable. If the peer's writer died of a write failure,
// Send drops the dead peer and retries once through a fresh dial.
func (t *TCP) Send(to NodeID, env *Envelope) error {
	cp := envPool.Get().(*Envelope)
	*cp = *env
	cp.From = t.id
	for attempt := 0; attempt < 2; attempt++ {
		p, err := t.peer(to)
		if err != nil {
			recycleEnvelope(cp)
			return err
		}
		select {
		case p.ch <- cp:
			return nil // the writer owns cp now and recycles it
		case <-p.dead:
			// The writer hit a write error and gave up; forget this peer
			// and redial (write failures are the only redial trigger).
			t.dropPeer(to, p)
		case <-t.closeCh:
			recycleEnvelope(cp)
			return ErrClosed
		}
	}
	recycleEnvelope(cp)
	return fmt.Errorf("transport: send to %s failed after redial", to)
}

// peer returns the outbound peer for `to`, dialing and starting its writer
// on first use.
func (t *TCP) peer(to NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := t.peers[to]; ok {
		t.mu.Unlock()
		return p, nil
	}
	t.mu.Unlock()

	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, err)
	}
	p := &tcpPeer{
		to:   to,
		ch:   make(chan *Envelope, outboundQueueCap),
		dead: make(chan struct{}),
		conn: conn,
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.peers[to]; ok {
		t.mu.Unlock()
		conn.Close() // lost the race; reuse the winner
		return existing, nil
	}
	t.peers[to] = p
	t.wg.Add(1)
	t.mu.Unlock()
	go t.writeLoop(p)
	return p, nil
}

func (t *TCP) dropPeer(to NodeID, p *tcpPeer) {
	t.mu.Lock()
	if t.peers[to] == p {
		delete(t.peers, to)
	}
	t.mu.Unlock()
	p.closeConn()
}

// writeLoop drains one peer's queue: encode into a pooled buffer, write
// through the buffered FrameWriter, and flush only when the queue is empty
// so consecutive messages share a flush (and a syscall).
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	defer p.closeConn()
	fw := codec.NewFrameWriter(p.conn)
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	for {
		select {
		case <-t.closeCh:
			fw.Flush() // best effort on shutdown
			return
		case env := <-p.ch:
			buf = appendEnvelope(buf[:0], env)
			recycleEnvelope(env) // frame bytes built; the copy is dead
			var err error
			if fw, err = t.writeFrame(p, fw, buf); err != nil {
				close(p.dead)
				t.dropPeer(p.to, p)
				return
			}
		}
	}
}

// writeFrame writes one frame, flushing when the queue is drained. On a
// write failure it redials once and retransmits the frame on the fresh
// connection (returning the new writer); a failed redial propagates the
// original write error.
func (t *TCP) writeFrame(p *tcpPeer, fw *codec.FrameWriter, frame []byte) (*codec.FrameWriter, error) {
	err := fw.WriteFrame(frame)
	if err == nil && len(p.ch) == 0 {
		err = fw.Flush()
	}
	if err == nil {
		return fw, nil
	}
	select {
	case <-t.closeCh:
		return fw, err // shutting down: don't redial
	default:
	}
	conn, derr := net.Dial("tcp", string(p.to))
	if derr != nil {
		return fw, err
	}
	if !p.setConn(conn) {
		return fw, err // peer was closed while redialing
	}
	nfw := codec.NewFrameWriter(conn)
	if werr := nfw.WriteFrame(frame); werr != nil {
		return nfw, werr
	}
	if len(p.ch) == 0 {
		if werr := nfw.Flush(); werr != nil {
			return nfw, werr
		}
	}
	return nfw, nil
}

// Close shuts the listener and all connections, then waits for every
// read/write/dispatch goroutine — including any in-flight handler
// invocation — to finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	peers := t.peers
	t.peers = map[NodeID]*tcpPeer{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	close(t.closeCh)
	t.listener.Close()
	for _, p := range peers {
		p.closeConn()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
