package transport

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running —
// acceptor loops, read pumps, and write coalescers must all exit when
// their transport is closed.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
