// Package transport carries actor-runtime messages between nodes. Two
// implementations are provided: an in-memory transport for single-process
// multi-node clusters (tests, examples, simulations of deployments) and a
// TCP transport (length-prefixed binary frames, write-coalescing per-peer
// writer goroutines) for real distributed runs.
//
// Payload ownership: Envelope.Payload handed to a Handler is owned by the
// receiver and may be retained indefinitely. Payloads passed to Send must
// remain unmodified until the Send completes delivery (TCP sends are
// asynchronous: the bytes are copied into the wire frame by the writer
// goroutine after Send returns).
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeID names a cluster node (host:port for TCP, any label in-memory).
type NodeID string

// Kind classifies envelopes.
type Kind uint8

// Envelope kinds.
const (
	// KindCall is an actor method invocation.
	KindCall Kind = iota
	// KindReply answers a KindCall with the same ID.
	KindReply
	// KindControl carries runtime control-plane traffic (directory lookups,
	// migration, partition exchanges).
	KindControl
)

// Envelope is the wire message of the actor runtime.
type Envelope struct {
	Kind Kind
	// ID correlates calls with replies and control requests with responses.
	ID   uint64
	From NodeID

	// ActorType/ActorKey address the target actor for calls; for control
	// messages they are repurposed by the runtime (e.g. directory subject).
	ActorType string
	ActorKey  string
	// Method is the invoked method name (calls) or control verb.
	Method string
	// Payload is the gob-encoded argument/result.
	Payload []byte
	// Err carries an application or runtime error back on replies.
	Err string

	// Trace is the hop-carried trace context; nil on unsampled traffic.
	// Like Payload, a Trace passed to Send must remain unmodified until the
	// Send completes delivery.
	Trace *Trace
}

// Trace is the optional per-envelope trace context. Calls carry identity
// (TraceID, SpanID, ParentID) so the callee can attribute its work; replies
// echo the identity and ship the callee's measured components back. All
// durations cross the wire as nanosecond counts — never timestamps — so
// cross-node clock skew cannot corrupt a decomposition.
type Trace struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64

	// Reply-borne server-side duration components, in nanoseconds.
	RecvQueueNs uint64 // receive-stage queue wait
	WorkQueueNs uint64 // actor mailbox wait
	ExecNs      uint64 // handler execution

	// Reply-borne annotations.
	Flags uint64 // TraceFlag* bits
	Epoch uint64 // activation epoch that served the call
}

// TraceFlagDedupHit marks a reply served from the receiver's dedup window
// rather than by re-executing the call.
const TraceFlagDedupHit uint64 = 1 << 0

// TraceFlagSnapshot marks a reply whose turn triggered a durable snapshot
// capture (the copy under the turn lock; encode + ship happen off-path).
const TraceFlagSnapshot uint64 = 1 << 1

// clone returns an independent copy (nil-safe).
func (tr *Trace) clone() *Trace {
	if tr == nil {
		return nil
	}
	cp := *tr
	return &cp
}

// Handler consumes inbound envelopes. It must not block for long: the
// runtime hands envelopes to its receive stage immediately.
type Handler func(env *Envelope)

// Transport moves envelopes between nodes.
type Transport interface {
	// Node is this endpoint's identity.
	Node() NodeID
	// Send delivers env to the given node (asynchronously; delivery errors
	// surface as returned errors when detectable).
	Send(to NodeID, env *Envelope) error
	// SetHandler installs the inbound envelope consumer. Must be called
	// before any traffic arrives.
	SetHandler(Handler)
	// Close releases resources.
	Close() error
}

// ErrUnknownNode is returned when sending to a node the transport cannot
// resolve (the id is not part of the fabric at all).
var ErrUnknownNode = errors.New("transport: unknown node")

// ErrUnreachable is returned when a known address cannot be dialed — the
// node exists in the membership but is transiently unreachable. Callers
// that treat ErrUnknownNode as permanent should treat ErrUnreachable as
// retryable.
var ErrUnreachable = errors.New("transport: peer unreachable")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// --- in-memory ---

// Network is an in-process cluster fabric: each Join returns a Transport
// endpoint; Send delivers to the peer's handler on a fresh goroutine after
// the configured latency.
type Network struct {
	mu      sync.RWMutex
	nodes   map[NodeID]*memNode
	latency time.Duration
}

// NewNetwork creates a fabric with the given one-way delivery latency
// (0 is allowed).
func NewNetwork(latency time.Duration) *Network {
	return &Network{nodes: make(map[NodeID]*memNode), latency: latency}
}

// Join adds a node and returns its endpoint. Joining an existing id
// replaces the previous endpoint.
func (n *Network) Join(id NodeID) Transport {
	m := &memNode{net: n, id: id}
	n.mu.Lock()
	n.nodes[id] = m
	n.mu.Unlock()
	return m
}

// Nodes lists joined nodes in sorted order.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type memNode struct {
	net *Network
	id  NodeID

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

func (m *memNode) Node() NodeID { return m.id }

func (m *memNode) SetHandler(h Handler) {
	m.mu.Lock()
	m.handler = h
	m.mu.Unlock()
}

func (m *memNode) Send(to NodeID, env *Envelope) error {
	m.mu.RLock()
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	m.net.mu.RLock()
	dest, ok := m.net.nodes[to]
	latency := m.net.latency
	m.net.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	cp := *env
	cp.From = m.id
	cp.Trace = env.Trace.clone() // receiver owns its envelope outright
	deliver := func() {
		dest.mu.RLock()
		h := dest.handler
		closed := dest.closed
		dest.mu.RUnlock()
		if h != nil && !closed {
			h(&cp)
		}
	}
	if latency > 0 {
		time.AfterFunc(latency, deliver)
	} else {
		go deliver()
	}
	return nil
}

func (m *memNode) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.net.mu.Lock()
	if m.net.nodes[m.id] == m {
		delete(m.net.nodes, m.id)
	}
	m.net.mu.Unlock()
	return nil
}
