package transport

import (
	"bytes"
	"testing"
)

// FuzzDecodeEnvelope feeds arbitrary frames to the envelope decoder: it
// must either error or produce an envelope that re-encodes to the same
// fields — never panic, and never retain more payload than the frame
// carried.
func FuzzDecodeEnvelope(f *testing.F) {
	seedEnvs := []*Envelope{
		{Kind: KindCall, ID: 1, From: "n0", ActorType: "counter", ActorKey: "k", Method: "Add", Payload: []byte("hi")},
		{Kind: KindReply, ID: 42, Err: "boom"},
		{Kind: KindControl, ID: 7, Method: "dir.lookup", Payload: bytes.Repeat([]byte{0xAB}, 200)},
		{},
		// Traced call and reply exercise the optional trailing section.
		{Kind: KindCall, ID: 3, From: "n1", ActorType: "counter", ActorKey: "k", Method: "Add",
			Trace: &Trace{TraceID: 0xDEADBEEF, SpanID: 5, ParentID: 2}},
		{Kind: KindReply, ID: 3, Payload: []byte("ok"),
			Trace: &Trace{TraceID: 0xDEADBEEF, SpanID: 5, RecvQueueNs: 1200, WorkQueueNs: 900, ExecNs: 55000,
				Flags: TraceFlagDedupHit, Epoch: 9}},
	}
	for _, env := range seedEnvs {
		frame := appendEnvelope(nil, env)
		f.Add(frame)
		// Truncations exercise every partial-field error path.
		for cut := 0; cut < len(frame); cut += 3 {
			f.Add(frame[:cut])
		}
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, frame []byte) {
		env, err := decodeEnvelope(frame, newInterner())
		if err != nil {
			return
		}
		if len(env.Payload) > len(frame) {
			t.Fatalf("decoded payload of %d bytes from a %d-byte frame", len(env.Payload), len(frame))
		}
		// Round trip: a successfully decoded envelope re-encodes and decodes
		// to identical fields.
		re := appendEnvelope(nil, env)
		env2, err := decodeEnvelope(re, newInterner())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if env.Kind != env2.Kind || env.ID != env2.ID || env.From != env2.From ||
			env.ActorType != env2.ActorType || env.ActorKey != env2.ActorKey ||
			env.Method != env2.Method || env.Err != env2.Err ||
			!bytes.Equal(env.Payload, env2.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", env, env2)
		}
		if (env.Trace == nil) != (env2.Trace == nil) ||
			(env.Trace != nil && *env.Trace != *env2.Trace) {
			t.Fatalf("trace round trip mismatch: %+v vs %+v", env.Trace, env2.Trace)
		}
	})
}
