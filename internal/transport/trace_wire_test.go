package transport

import (
	"bytes"
	"sync/atomic"
	"testing"

	"actop/internal/codec"
)

// appendEnvelopeLegacy is the pre-trace wire format, frozen here to pin
// compatibility in both directions.
func appendEnvelopeLegacy(dst []byte, env *Envelope) []byte {
	dst = append(dst, byte(env.Kind))
	dst = codec.AppendUvarint(dst, env.ID)
	dst = codec.AppendString(dst, string(env.From))
	dst = codec.AppendString(dst, env.ActorType)
	dst = codec.AppendString(dst, env.ActorKey)
	dst = codec.AppendString(dst, env.Method)
	dst = codec.AppendString(dst, env.Err)
	dst = codec.AppendBytes(dst, env.Payload)
	return dst
}

func sampleTrace() *Trace {
	return &Trace{
		TraceID: 0xFEEDFACE, SpanID: 12, ParentID: 3,
		RecvQueueNs: 1500, WorkQueueNs: 250, ExecNs: 98000,
		Flags: TraceFlagDedupHit, Epoch: 4,
	}
}

func TestTraceWireRoundTrip(t *testing.T) {
	env := &Envelope{
		Kind: KindReply, ID: 77, From: "127.0.0.1:9", ActorType: "player",
		ActorKey: "p1", Method: "Status", Payload: []byte("state"),
		Trace: sampleTrace(),
	}
	got, err := decodeEnvelope(appendEnvelope(nil, env), newInterner())
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || *got.Trace != *env.Trace {
		t.Fatalf("trace = %+v, want %+v", got.Trace, env.Trace)
	}
	if got.ID != 77 || string(got.Payload) != "state" {
		t.Fatalf("envelope fields lost: %+v", got)
	}
}

// TestTraceWireUnsampledIdentical: without a trace the new encoder must be
// byte-identical to the old format — unsampled traffic pays zero bytes.
func TestTraceWireUnsampledIdentical(t *testing.T) {
	env := &Envelope{Kind: KindCall, ID: 5, From: "a", ActorType: "t", ActorKey: "k", Method: "M", Payload: []byte{9}}
	if !bytes.Equal(appendEnvelope(nil, env), appendEnvelopeLegacy(nil, env)) {
		t.Fatal("untraced encoding diverged from the legacy format")
	}
}

// TestTraceWireOldReaderNewFrame: an old decoder (which stops at the
// payload) must parse a traced frame's envelope fields untouched.
func TestTraceWireOldReaderNewFrame(t *testing.T) {
	env := &Envelope{Kind: KindCall, ID: 8, Method: "M", Payload: []byte("p"), Trace: sampleTrace()}
	frame := appendEnvelope(nil, env)
	legacy := appendEnvelopeLegacy(nil, env)
	if !bytes.Equal(frame[:len(legacy)], legacy) {
		t.Fatal("trace section is not a pure suffix of the legacy encoding")
	}
	// The current decoder ignores trailing bytes past the payload unless
	// they form a recognized section — emulating an old reader by feeding it
	// a frame with an unknown future tag.
	future := append(append([]byte(nil), legacy...), 0x7F, 1, 2, 3)
	got, err := decodeEnvelope(future, newInterner())
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil || got.ID != 8 || string(got.Payload) != "p" {
		t.Fatalf("unknown trailing section mishandled: %+v", got)
	}
}

// TestTraceWireNewReaderOldFrame: frames from a pre-trace peer decode with
// a nil trace.
func TestTraceWireNewReaderOldFrame(t *testing.T) {
	env := &Envelope{Kind: KindReply, ID: 6, Err: "nope"}
	got, err := decodeEnvelope(appendEnvelopeLegacy(nil, env), newInterner())
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil || got.Err != "nope" {
		t.Fatalf("legacy frame mishandled: %+v", got)
	}
}

// TestTraceWireTruncatedSection: a damaged trace section degrades to
// untraced instead of failing the whole frame.
func TestTraceWireTruncatedSection(t *testing.T) {
	env := &Envelope{Kind: KindCall, ID: 2, Method: "M", Trace: sampleTrace()}
	frame := appendEnvelope(nil, env)
	for cut := len(frame) - 1; cut > len(frame)-6; cut-- {
		got, err := decodeEnvelope(frame[:cut], newInterner())
		if err != nil {
			t.Fatalf("truncated section at %d errored: %v", cut, err)
		}
		if got.Trace != nil {
			t.Fatalf("truncated section at %d produced a trace: %+v", cut, got.Trace)
		}
		if got.ID != 2 || got.Method != "M" {
			t.Fatalf("envelope fields lost at cut %d: %+v", cut, got)
		}
	}
}

// TestInMemTraceDeepCopy: the in-memory transport must hand the receiver an
// independent Trace, not a pointer shared with the sender.
func TestInMemTraceDeepCopy(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	b := net.Join("b")
	defer a.Close()
	defer b.Close()
	var got atomic.Pointer[Envelope]
	b.SetHandler(func(env *Envelope) { got.Store(env) })
	sent := &Envelope{Kind: KindCall, ID: 1, Trace: sampleTrace()}
	if err := a.Send("b", sent); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "no delivery")
	env := got.Load()
	if env.Trace == sent.Trace {
		t.Fatal("receiver shares the sender's Trace pointer")
	}
	if *env.Trace != *sent.Trace {
		t.Fatalf("trace content diverged: %+v vs %+v", env.Trace, sent.Trace)
	}
}

// TestTCPTraceRoundTrip carries a trace over real sockets.
func TestTCPTraceRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var got atomic.Pointer[Envelope]
	b.SetHandler(func(env *Envelope) { got.Store(env) })
	want := sampleTrace()
	if err := a.Send(b.Node(), &Envelope{Kind: KindCall, ID: 4, Method: "M", Trace: want}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "no tcp delivery")
	if env := got.Load(); env.Trace == nil || *env.Trace != *want {
		t.Fatalf("tcp trace = %+v, want %+v", got.Load().Trace, want)
	}
}
