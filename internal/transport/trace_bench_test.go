package transport

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// Benchmarks and the overhead guard for the trace section on the wire: the
// envelope fast path must not slow down when tracing is configured off, and
// 1% sampling (the operational default in actopd) must stay within noise.

// blastTCP sends n envelopes a→recv and returns delivered msgs/sec.
// traceEvery attaches a hop-timing record to every k-th envelope (0 = never
// — the tracing-disabled wire format, byte-identical to the pre-trace one).
func blastTCP(tb testing.TB, n int, traceEvery int) float64 {
	tb.Helper()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	defer a.Close()
	recv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	defer recv.Close()

	var got atomic.Int64
	recv.SetHandler(func(env *Envelope) { got.Add(1) })

	payload := make([]byte, 256)
	env := &Envelope{
		Kind: KindCall, ActorType: "player", ActorKey: "p42",
		Method: "Status", Payload: payload,
	}
	tr := &Trace{TraceID: 7, SpanID: 9, RecvQueueNs: 1200, WorkQueueNs: 3400, ExecNs: 56000}
	if err := a.Send(recv.Node(), env); err != nil {
		tb.Fatal(err)
	}
	for got.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	got.Store(0)

	start := time.Now()
	for i := 0; i < n; i++ {
		env.ID = uint64(i)
		env.Trace = nil
		if traceEvery > 0 && i%traceEvery == 0 {
			env.Trace = tr
		}
		if err := a.Send(recv.Node(), env); err != nil {
			tb.Fatal(err)
		}
	}
	for got.Load() < int64(n) {
		time.Sleep(100 * time.Microsecond)
	}
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkTCPSendThroughputTraceOff is the baseline with the trace plane
// compiled in but disabled — must match the pre-trace BenchmarkTCPSendThroughput.
func BenchmarkTCPSendThroughputTraceOff(b *testing.B) {
	rate := blastTCP(b, b.N, 0)
	b.ReportMetric(rate, "msgs/sec")
}

// BenchmarkTCPSendThroughputTrace1pct attaches a trace record to 1% of
// envelopes — the actopd default sampling rate.
func BenchmarkTCPSendThroughputTrace1pct(b *testing.B) {
	rate := blastTCP(b, b.N, 100)
	b.ReportMetric(rate, "msgs/sec")
}

// BenchmarkTCPSendThroughputTraceAll attaches a trace record to every
// envelope — the worst-case wire overhead (sampling 1.0).
func BenchmarkTCPSendThroughputTraceAll(b *testing.B) {
	rate := blastTCP(b, b.N, 1)
	b.ReportMetric(rate, "msgs/sec")
}

// TestTraceOverheadGuard asserts 1% sampling costs <2% of message-plane
// throughput against the tracing-off baseline. Timing-sensitive by nature,
// so it only runs when ACTOP_OVERHEAD_GUARD=1 (CI noise would flake it);
// the committed BENCH_trace.json records a reference run.
func TestTraceOverheadGuard(t *testing.T) {
	if os.Getenv("ACTOP_OVERHEAD_GUARD") != "1" {
		t.Skip("set ACTOP_OVERHEAD_GUARD=1 to run the timing guard")
	}
	const msgs = 200_000
	const trials = 5
	median := func(every int) float64 {
		rates := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			rates = append(rates, blastTCP(t, msgs, every))
		}
		sort.Float64s(rates)
		return rates[trials/2]
	}
	// Interleaving would be better still, but medians of alternating runs
	// already squash scheduler drift well enough for a 2% band.
	base := median(0)
	sampled := median(100)
	loss := 100 * (base - sampled) / base
	fmt.Printf("overhead guard: baseline %.0f msgs/sec, 1%% sampled %.0f msgs/sec, loss %.2f%%\n",
		base, sampled, loss)
	if loss >= 2.0 {
		t.Fatalf("1%% sampling costs %.2f%% throughput, budget is 2%%", loss)
	}
}
