package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPCloseUnderLoad hammers a receiver with concurrent senders and
// closes it mid-flood. Close's contract: when it returns, no handler
// invocation is in flight and none will start. The in-flight gauge must
// read zero right after Close, and the closed flag set immediately after
// Close returns must never be observed by a handler entry. Run with -race
// (the Makefile check target does) to shake out shutdown races.
func TestTCPCloseUnderLoad(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var (
		inFlight     atomic.Int64
		delivered    atomic.Int64
		closeDone    atomic.Bool
		startedAfter atomic.Int64
	)
	b.SetHandler(func(env *Envelope) {
		if closeDone.Load() {
			startedAfter.Add(1)
		}
		inFlight.Add(1)
		time.Sleep(100 * time.Microsecond) // widen the race window
		delivered.Add(1)
		inFlight.Add(-1)
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 128)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once b goes down; keep flooding.
				_ = a.Send(b.Node(), &Envelope{ID: i, Payload: payload})
			}
		}()
	}

	// Let traffic establish, then close under load.
	waitFor(t, func() bool { return delivered.Load() > 50 }, "no traffic before close")
	b.Close()
	closeDone.Store(true)
	if n := inFlight.Load(); n != 0 {
		t.Errorf("%d handler invocations in flight after Close returned", n)
	}
	close(stop)
	wg.Wait()
	// Give any straggling (buggy) dispatch a chance to fire before asserting.
	time.Sleep(10 * time.Millisecond)
	if n := startedAfter.Load(); n != 0 {
		t.Errorf("%d handler invocations started after Close returned", n)
	}
}

// TestTCPUnreachableError pins the Send error semantics: a dial failure is
// ErrUnreachable (the address is known but not answering), NOT
// ErrUnknownNode (which the in-memory transport reserves for addresses that
// were never part of the network).
func TestTCPUnreachableError(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	serr := a.Send("127.0.0.1:1", &Envelope{})
	if serr == nil {
		t.Fatal("expected dial error")
	}
	if !errors.Is(serr, ErrUnreachable) {
		t.Fatalf("dial failure = %v, want ErrUnreachable", serr)
	}
	if errors.Is(serr, ErrUnknownNode) {
		t.Fatalf("dial failure reported as ErrUnknownNode: %v", serr)
	}
	// A dial failure must not leave a half-built peer behind.
	a.mu.Lock()
	n := len(a.peers)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d peers cached after failed dial", n)
	}
}

// TestTCPWriterRedial kills the receiver and restarts it on the same
// address: the established connection dies, the writer (or a Send retry
// through the dead-peer path) must redial, and traffic must flow again
// without the caller doing anything special.
func TestTCPWriterRedial(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := string(b.Node())

	var before atomic.Int64
	b.SetHandler(func(env *Envelope) { before.Add(1) })
	if err := a.Send(b.Node(), &Envelope{ID: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return before.Load() == 1 }, "no delivery before restart")

	b.Close()
	b2, err := ListenTCP(addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer b2.Close()
	var after atomic.Int64
	b2.SetHandler(func(env *Envelope) { after.Add(1) })

	// The first writes after the restart may land in the dead socket's
	// kernel buffer; keep sending until one arrives through a redialed
	// connection.
	deadline := time.After(5 * time.Second)
	for after.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no delivery after peer restart: writer never redialed")
		default:
		}
		_ = a.Send(b2.Node(), &Envelope{ID: 2})
		time.Sleep(5 * time.Millisecond)
	}
}
