package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkTCPSendThroughput measures the full send→wire→receive path over
// loopback TCP: one envelope per op, allocs/op on the sending side, and
// delivered msgs/sec as a custom metric.
func BenchmarkTCPSendThroughput(b *testing.B) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	recv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()

	var got atomic.Int64
	recv.SetHandler(func(env *Envelope) { got.Add(1) })

	payload := make([]byte, 256)
	env := &Envelope{
		Kind: KindCall, ActorType: "player", ActorKey: "p42",
		Method: "Status", Payload: payload,
	}
	// Warm the connection.
	if err := a.Send(recv.Node(), env); err != nil {
		b.Fatal(err)
	}
	for got.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	got.Store(0)

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		env.ID = uint64(i)
		if err := a.Send(recv.Node(), env); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for full delivery so msgs/sec reflects the wire, not the queue.
	for got.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "msgs/sec")
}
