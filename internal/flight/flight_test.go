package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWraparound(t *testing.T) {
	r := NewRecorder(64, time.Minute)
	for i := 0; i < 200; i++ {
		r.Record(Event{Kind: KindMembership, Detail: fmt.Sprint(i)})
	}
	if r.Recorded() != 200 {
		t.Fatalf("Recorded = %d", r.Recorded())
	}
	if r.Overwritten() != 200-64 {
		t.Fatalf("Overwritten = %d, want %d", r.Overwritten(), 200-64)
	}
	evs := r.Snapshot(0)
	if len(evs) != 64 {
		t.Fatalf("snapshot holds %d events, want 64", len(evs))
	}
	// Newest first, and only the newest 64 survive the wrap.
	if evs[0].Seq != 200 || evs[len(evs)-1].Seq != 200-64+1 {
		t.Fatalf("snapshot seq range [%d, %d]", evs[len(evs)-1].Seq, evs[0].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq >= evs[i-1].Seq {
			t.Fatalf("not newest-first at %d", i)
		}
	}
	if got := r.Snapshot(10); len(got) != 10 || got[0].Seq != 200 {
		t.Fatalf("limited snapshot wrong: len=%d", len(got))
	}
}

// TestConcurrentAppendDump races appenders against trigger-dumps and
// snapshot readers — the -race coverage the ring's atomics must survive.
func TestConcurrentAppendDump(t *testing.T) {
	r := NewRecorder(128, 0) // zero debounce: every trigger dumps
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Kind: KindMigrationOut, Actor: fmt.Sprintf("a/%d-%d", g, i)})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Trigger(KindPanic, "test")
				r.Snapshot(16)
			}
		}()
	}
	wg.Wait()
	if r.Recorded() < 4000 {
		t.Fatalf("Recorded = %d", r.Recorded())
	}
	if got := len(r.Dumps()); got > maxDumps {
		t.Fatalf("retained %d dumps, cap %d", got, maxDumps)
	}
	if r.DumpsTaken() != 100 {
		t.Fatalf("DumpsTaken = %d, want 100 (zero debounce)", r.DumpsTaken())
	}
}

func TestTriggerDebounce(t *testing.T) {
	r := NewRecorder(64, time.Hour)
	if !r.Trigger(KindSLOBreach, "p99") {
		t.Fatal("first trigger should dump")
	}
	for i := 0; i < 10; i++ {
		if r.Trigger(KindSLOBreach, "p99") {
			t.Fatal("debounced trigger dumped")
		}
	}
	// A different kind has its own debounce clock.
	if !r.Trigger(KindPeerDead, "node-b") {
		t.Fatal("distinct kind should dump")
	}
	if r.DumpsTaken() != 2 || r.Suppressed() != 10 {
		t.Fatalf("dumps=%d suppressed=%d", r.DumpsTaken(), r.Suppressed())
	}
	d := r.Dumps()
	if len(d) != 2 || d[0].Trigger != KindSLOBreach || d[1].Trigger != KindPeerDead {
		t.Fatalf("dumps wrong: %+v", d)
	}
	// Every dump carries runtime context and the trigger's own event.
	if d[0].Runtime.Goroutines == 0 || d[0].Runtime.GOMAXPROCS == 0 {
		t.Fatalf("runtime context missing: %+v", d[0].Runtime)
	}
	if len(d[0].Events) == 0 || d[0].Events[len(d[0].Events)-1].Kind != KindSLOBreach {
		t.Fatalf("dump events missing trigger event: %+v", d[0].Events)
	}
	// Dump events are chronological (oldest first).
	for i := 1; i < len(d[1].Events); i++ {
		if d[1].Events[i].Seq <= d[1].Events[i-1].Seq {
			t.Fatal("dump events not chronological")
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindThreadResize})
	if r.Trigger(KindPanic, "x") {
		t.Fatal("nil recorder dumped")
	}
	if r.Snapshot(0) != nil || r.Dumps() != nil || r.Recorded() != 0 ||
		r.Overwritten() != 0 || r.Cap() != 0 || r.DumpsTaken() != 0 || r.Suppressed() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}
