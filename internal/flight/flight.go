// Package flight is the runtime's black-box flight recorder: a fixed-size
// lock-free ring of structured events (membership transitions, failover
// purges, migrations, recovery gate outcomes, thread-controller resizes,
// snapshot ships, panic isolations) that is always recording, plus
// anomaly-triggered dumps. Append is constant-cost — one atomic add and
// one atomic pointer store, the trace.Ring discipline — so hot paths can
// record unconditionally. When an anomaly trigger fires (SLO breach, peer
// death, recovery throttling, panic), the recorder snapshots the ring
// together with Go runtime context into a retained Dump, debounced
// per trigger kind so a storm of violations yields one dump, not one per
// violation.
package flight

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the actor runtime and thread controller.
const (
	KindMembership        = "membership"
	KindFailoverPurge     = "failover_purge"
	KindMigrationOut      = "migration_out"
	KindMigrationIn       = "migration_in"
	KindTombstone         = "tombstone"
	KindRecovery          = "recovery"
	KindRecoveryThrottled = "recovery_throttled"
	KindSnapshotShip      = "snapshot_ship"
	KindThreadResize      = "thread_resize"
	KindPanic             = "panic"
	KindPeerDead          = "peer_dead"
	KindSLOBreach         = "slo_breach"
)

// Event is one structured flight-recorder entry. Seq and At are assigned
// by Record; the remaining fields are whatever the recording site knows —
// the actor involved, the peer involved, a free-form detail, and an
// optional count N (purged entries, resized workers, shipped bytes).
type Event struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Actor  string    `json:"actor,omitempty"`
	Peer   string    `json:"peer,omitempty"`
	Detail string    `json:"detail,omitempty"`
	N      uint64    `json:"n,omitempty"`
}

// RuntimeInfo is the Go runtime context captured with every dump, so an
// incident snapshot carries the process state that framed it.
type RuntimeInfo struct {
	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`
	GCCycles   uint32 `json:"gc_cycles"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Dump is one anomaly-triggered black-box snapshot: the trigger that fired,
// the runtime context at that instant, and the ring contents in
// chronological order.
type Dump struct {
	Trigger string      `json:"trigger"`
	Detail  string      `json:"detail,omitempty"`
	At      time.Time   `json:"at"`
	Runtime RuntimeInfo `json:"runtime"`
	Events  []Event     `json:"events"`
}

// maxDumps bounds retained dumps (oldest dropped first) so a long-running
// node with recurring anomalies keeps a window, not an unbounded log.
const maxDumps = 8

// Recorder is the flight recorder. All methods are goroutine-safe, and all
// methods are nil-receiver-safe no-ops so optional wiring (e.g. the thread
// controller) needs no checks.
type Recorder struct {
	slots    []atomic.Pointer[Event]
	cursor   atomic.Uint64
	debounce time.Duration

	dumpsTaken atomic.Uint64
	suppressed atomic.Uint64

	mu       sync.Mutex
	lastDump map[string]time.Time
	dumps    []Dump
}

// NewRecorder creates a recorder holding up to size events (minimum 64),
// with per-kind trigger debouncing of the given interval.
func NewRecorder(size int, debounce time.Duration) *Recorder {
	if size < 64 {
		size = 64
	}
	return &Recorder{
		slots:    make([]atomic.Pointer[Event], size),
		debounce: debounce,
		lastDump: make(map[string]time.Time),
	}
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record appends one event: one atomic add to claim a slot, one pointer
// store to publish. Old events are overwritten once the ring wraps.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.At = time.Now()
	seq := r.cursor.Add(1)
	e.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&e)
}

// Recorded reports the lifetime number of events recorded (including
// overwritten ones).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Overwritten reports how many events have been lost to ring wraparound —
// the recorder's own coverage metric.
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	if n := r.cursor.Load(); n > uint64(len(r.slots)) {
		return n - uint64(len(r.slots))
	}
	return 0
}

// capture collects the resident events in chronological (Seq-ascending)
// order. Under concurrent writes a slot may be observed mid-overwrite;
// sorting by Seq keeps the view consistent enough for debugging.
func (r *Recorder) capture() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Snapshot returns up to limit of the most recent events, newest first
// (limit <= 0 means the whole ring) — the /debug endpoint's live view.
func (r *Recorder) Snapshot(limit int) []Event {
	if r == nil {
		return nil
	}
	evs := r.capture()
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	if limit > 0 && len(evs) > limit {
		evs = evs[:limit]
	}
	return evs
}

// Trigger records an anomaly event and, unless a dump for the same kind
// fired within the debounce window, captures a black-box Dump of the ring
// plus runtime context. Reports whether a dump was taken (false = either
// debounced or nil recorder).
func (r *Recorder) Trigger(kind, detail string) bool {
	if r == nil {
		return false
	}
	r.Record(Event{Kind: kind, Detail: detail})
	now := time.Now()
	r.mu.Lock()
	if last, ok := r.lastDump[kind]; ok && now.Sub(last) < r.debounce {
		r.mu.Unlock()
		r.suppressed.Add(1)
		return false
	}
	r.lastDump[kind] = now
	r.mu.Unlock()
	// Runtime context and the ring capture run outside the mutex —
	// ReadMemStats is not something to hold a lock across.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	d := Dump{
		Trigger: kind, Detail: detail, At: now,
		Runtime: RuntimeInfo{
			Goroutines: runtime.NumGoroutine(),
			HeapBytes:  ms.HeapAlloc,
			GCCycles:   ms.NumGC,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Events: r.capture(),
	}
	r.mu.Lock()
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > maxDumps {
		r.dumps = append(r.dumps[:0], r.dumps[len(r.dumps)-maxDumps:]...)
	}
	r.mu.Unlock()
	r.dumpsTaken.Add(1)
	return true
}

// Dumps returns the retained anomaly dumps, oldest first.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	r.mu.Unlock()
	return out
}

// DumpsTaken reports the lifetime number of dumps captured.
func (r *Recorder) DumpsTaken() uint64 {
	if r == nil {
		return 0
	}
	return r.dumpsTaken.Load()
}

// Suppressed reports triggers debounced away without a dump.
func (r *Recorder) Suppressed() uint64 {
	if r == nil {
		return 0
	}
	return r.suppressed.Load()
}
