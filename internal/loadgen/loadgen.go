// Package loadgen drives a declarative workload spec (internal/workload/
// spec) against the real actor runtime (internal/actor). It is the second
// interpreter of the spec language: the DES backend lives in the spec
// package itself, while this one touches the wall clock and live Systems,
// so it stays outside the simdet-linted deterministic packages.
//
// The driver replays the spec's precomputed schedule — the identical Draw
// sequence the DES consumes — open-loop against wall time: operations are
// submitted at their scheduled instants from a worker pool, churn events
// bump a slot's generation (virtual actors never die, so the old
// incarnation just goes cold, exactly how the DES drains it), and swarm
// joins are routed to the filling lobby. The filled-in spec.Result is
// what the conformance layer cross-checks against the DES run.
package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/metrics"
	"actop/internal/workload/spec"
)

// Options tunes a real-runtime run.
type Options struct {
	// Workers sizes the submission pool (default 32): the max operations
	// in flight at once from the driver.
	Workers int

	// Drive restricts which systems the driver submits through (and
	// audits through). Empty means all of the runner's systems. Chaos
	// runs set this to the survivors so the submission plane stays up
	// while a victim node is hard-killed mid-run.
	Drive []*actor.System

	// Halfway, when set, fires once at the first scheduled event past
	// Duration/2 — after the driver has drained every operation
	// submitted so far, so the shared-memory oracle counters are exact
	// at the cut. Chaos runs use it to flush snapshots and kill a node.
	Halfway func()
}

// compiled call-tree node: the method string routes the real runtime's
// Receive dispatch to the right subtree.
type stepNode struct {
	link   int
	toKind int
	method string
	then   []*stepNode
}

type opNode struct {
	op    *spec.Op
	kind  int
	args  *callArgs
	steps []*stepNode
}

// callArgs is the wire payload of every spec call: the op's declared
// padding, so payload size shapes serialization cost as specified.
type callArgs struct {
	Pad []byte
}

// counters is the process-shared effect accounting the invariant checks
// audit. The actors and the driver share one instance.
type counters struct {
	opsExecuted  atomic.Uint64
	legsSent     atomic.Uint64
	legsReceived atomic.Uint64
}

// Runner owns one spec wired onto a set of in-process actor systems.
type Runner struct {
	sp      *spec.Spec
	topo    *spec.Topology
	systems []*actor.System

	typeNames []string       // per kind: registered actor type
	typeKind  map[string]int // reverse lookup for specActor identity
	ops       []*opNode
	dispatch  map[string]*stepNode // step method → subtree

	gen [][]atomic.Int32 // per kind, per slot: churn generation

	// lobbySlots records, per kind, how many lobby slots Run opened, so
	// post-run audits (AuditOps after a chaos kill) can re-walk every
	// lobby that ever existed.
	lobbySlots []int

	ctrs counters
}

// typeName is the registered actor type of a kind (namespaced per spec so
// several runners can share a process).
func typeName(sp *spec.Spec, kind string) string {
	return "spec/" + sp.Name + "/" + kind
}

// New compiles the spec against the given systems: the topology is built,
// every kind's actor type is registered on every node, and the call-tree
// dispatch table is laid out. The systems must all live in this process
// (the conformance counters are shared memory).
func New(sp *spec.Spec, systems []*actor.System) (*Runner, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("loadgen: no systems")
	}
	topo, err := spec.BuildTopology(sp)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		sp: sp, topo: topo, systems: systems,
		typeNames: make([]string, len(sp.Kinds)),
		typeKind:  make(map[string]int, len(sp.Kinds)),
		dispatch:  make(map[string]*stepNode),
		gen:       make([][]atomic.Int32, len(sp.Kinds)),
	}
	for ki := range sp.Kinds {
		k := &sp.Kinds[ki]
		r.typeNames[ki] = typeName(sp, k.Name)
		r.typeKind[r.typeNames[ki]] = ki
		r.gen[ki] = make([]atomic.Int32, k.Population)
	}
	r.ops = make([]*opNode, len(sp.Ops))
	for oi := range sp.Ops {
		op := &sp.Ops[oi]
		node := &opNode{op: op, kind: kindIndex(sp, op.Kind)}
		node.args = &callArgs{Pad: make([]byte, op.PayloadBytes)}
		node.steps = r.compileSteps(oi, "", kindIndex(sp, op.Kind), op.Steps)
		r.ops[oi] = node
	}
	for _, sys := range systems {
		for ki := range sp.Kinds {
			sys.RegisterType(r.typeNames[ki], r.newActor)
		}
	}
	return r, nil
}

func kindIndex(sp *spec.Spec, name string) int {
	for i := range sp.Kinds {
		if sp.Kinds[i].Name == name {
			return i
		}
	}
	return -1
}

func linkIndex(sp *spec.Spec, name string) int {
	for i := range sp.Links {
		if sp.Links[i].Name == name {
			return i
		}
	}
	return -1
}

// compileSteps resolves one tree level and registers its dispatch methods:
// step path p of op oi answers to method "st<oi>/<p>".
func (r *Runner) compileSteps(oi int, path string, fromKind int, steps []spec.Step) []*stepNode {
	out := make([]*stepNode, len(steps))
	for i := range steps {
		st := &steps[i]
		li := linkIndex(r.sp, st.Link)
		p := strconv.Itoa(i)
		if path != "" {
			p = path + "." + p
		}
		n := &stepNode{
			link:   li,
			toKind: kindIndex(r.sp, r.sp.Links[li].To),
			method: "st" + strconv.Itoa(oi) + "/" + p,
		}
		n.then = r.compileSteps(oi, p, n.toKind, st.Then)
		r.dispatch[n.method] = n
		out[i] = n
	}
	return out
}

// refOf renders the live ref of a topology slot at its current churn
// generation.
func (r *Runner) refOf(kind, slot int) actor.Ref {
	gen := int(r.gen[kind][slot].Load())
	return actor.Ref{Type: r.typeNames[kind], Key: spec.KeyOf(slot, gen)}
}

// fanout issues one tree level from an actor's turn: a synchronous call
// per target, each carrying the same args. Deadlock-freedom is structural:
// Validate only admits specs whose step links descend a kind DAG, so a
// turn never transitively waits on an actor upstream of it.
func (r *Runner) fanout(ctx *actor.Context, fromSlot int, steps []*stepNode, a *callArgs) error {
	for _, sn := range steps {
		for _, t := range r.topo.Targets(sn.link, fromSlot) {
			r.ctrs.legsSent.Add(1)
			if err := ctx.Call(r.refOf(sn.toKind, int(t)), sn.method, a, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// specActor is the generic spec interpreter on the real runtime: one
// activation per (kind, slot, generation).
type specActor struct {
	r    *Runner
	init bool
	kind int
	slot int

	// Durable per-actor effect counters: joins is the lobby roster
	// (swarm kinds), ops/legs mirror the driver's shared-memory totals
	// one actor at a time. AuditOps sums them back; with durability on,
	// a hard-killed node's counts must survive into the re-activation.
	joins int
	ops   int
	legs  int
}

// specState is the snapshot wire shape of a specActor: only the effect
// counters travel — identity (kind/slot) re-derives from the ref.
type specState struct {
	Joins, Ops, Legs int
}

func (r *Runner) newActor() actor.Actor { return &specActor{r: r} }

// Snapshot/Restore make every spec actor Migratable, and DurableActor
// opts it into replication whenever the host system runs with
// DurableReplicas > 0 (a plain run leaves durability off, so this is
// free for the conformance tests).
func (a *specActor) Snapshot() ([]byte, error) {
	return codec.Marshal(specState{Joins: a.joins, Ops: a.ops, Legs: a.legs})
}

func (a *specActor) Restore(data []byte) error {
	var st specState
	if err := codec.Unmarshal(data, &st); err != nil {
		return err
	}
	a.joins, a.ops, a.legs = st.Joins, st.Ops, st.Legs
	return nil
}

// CopyValue is the O(state) fast-capture path: a specActor is a handful
// of ints plus the shared Runner pointer, so the turn-locked copy is one
// struct copy and the encode runs on the snapshotter pool.
func (a *specActor) CopyValue() interface{} {
	cp := *a
	return &cp
}

func (a *specActor) DurableActor() {}

// identify parses the activation's (kind, slot) from its ref; activations
// are single-threaded, so the lazy init is race-free.
func (a *specActor) identify(ctx *actor.Context) error {
	if a.init {
		return nil
	}
	self := ctx.Self()
	ki, ok := a.r.typeKind[self.Type]
	if !ok {
		return fmt.Errorf("loadgen: unknown spec type %q", self.Type)
	}
	slotStr, _, _ := strings.Cut(self.Key, ".g")
	slot, err := strconv.Atoi(slotStr)
	if err != nil {
		return fmt.Errorf("loadgen: bad spec key %q: %v", self.Key, err)
	}
	a.kind, a.slot, a.init = ki, slot, true
	return nil
}

// Receive dispatches "op<i>" roots, "st<i>/<path>" tree hops, and the
// "members" audit probe.
func (a *specActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	if err := a.identify(ctx); err != nil {
		return nil, err
	}
	switch method {
	case "members":
		return codec.Marshal(a.joins)
	case "opcount":
		return codec.Marshal(a.ops)
	case "legcount":
		return codec.Marshal(a.legs)
	}
	var ca callArgs
	if err := codec.Unmarshal(args, &ca); err != nil {
		return nil, err
	}
	if oi, ok := strings.CutPrefix(method, "op"); ok && !strings.Contains(oi, "/") {
		idx, err := strconv.Atoi(oi)
		if err != nil || idx < 0 || idx >= len(a.r.ops) {
			return nil, fmt.Errorf("loadgen: bad op method %q", method)
		}
		node := a.r.ops[idx]
		a.r.ctrs.opsExecuted.Add(1)
		a.ops++
		if node.op.Join {
			a.joins++
		}
		return nil, a.r.fanout(ctx, a.slot, node.steps, &ca)
	}
	if sn, ok := a.r.dispatch[method]; ok {
		a.r.ctrs.legsReceived.Add(1)
		a.legs++
		return nil, a.r.fanout(ctx, a.slot, sn.then, &ca)
	}
	return nil, fmt.Errorf("loadgen: unknown spec method %q", method)
}

// job is one scheduled operation handed to the submission pool.
type job struct {
	sys    *actor.System
	ref    actor.Ref
	method string
	args   *callArgs
	due    time.Time
}

// Run replays the schedule against the systems and reports the filled-in
// Result for the conformance layer.
func (r *Runner) Run(opts Options) (*spec.Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 32
	}
	drive := opts.Drive
	if len(drive) == 0 {
		drive = r.systems
	}
	sched := spec.NewStream(r.sp).Schedule()

	res := &spec.Result{
		Scenario: r.sp.Name,
		Backend:  "real",
		Horizon:  r.sp.Duration,
	}

	var (
		completed atomic.Uint64
		errored   atomic.Uint64
		errMu     sync.Mutex
		firstErr  error
	)
	jobs := make(chan job, len(sched))
	hists := make([]metrics.Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := j.sys.Call(j.ref, j.method, j.args, nil); err != nil {
					errored.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				completed.Add(1)
				// Open-loop latency: scheduled arrival to completion, so
				// driver backlog counts against the run, as queueing does
				// in the DES.
				hists[w].Record(time.Since(j.due))
			}
		}()
	}

	// Swarm routing state (driver-side, single goroutine — mirrors the DES
	// router draw for draw).
	type swarm struct {
		open    bool
		slot    int
		next    int
		members int
	}
	swarms := make([]swarm, len(r.sp.Kinds))

	t0 := time.Now()
	halfway := opts.Halfway
	for _, d := range sched {
		if halfway != nil && d.At >= r.sp.Duration/2 {
			// Quiesce: every operation submitted so far must finish, so
			// the oracle counters are a consistent cut before the hook
			// flushes snapshots / kills a node.
			for completed.Load()+errored.Load() < res.Submitted {
				time.Sleep(time.Millisecond)
			}
			halfway()
			halfway = nil
		}
		if wait := time.Until(t0.Add(d.At)); wait > 0 {
			time.Sleep(wait)
		}
		switch d.Ev {
		case spec.EvChurn:
			r.gen[d.Kind][d.Target].Add(1)
			res.Churned++
		case spec.EvOp:
			node := r.ops[d.Op]
			slot := d.Target
			if node.op.Join {
				sw := &swarms[node.kind]
				k := &r.sp.Kinds[node.kind]
				if !sw.open {
					sw.open, sw.slot, sw.members = true, sw.next, 0
					sw.next++
					res.LobbiesUsed++
				}
				slot = sw.slot
				sw.members++
				res.JoinsRouted++
				if sw.members >= k.Capacity {
					sw.open = false
				}
			}
			var ref actor.Ref
			if node.op.Join {
				// Lobby slots are born per join wave and never churn.
				ref = actor.Ref{Type: r.typeNames[node.kind], Key: spec.KeyOf(slot, 0)}
			} else {
				ref = r.refOf(node.kind, slot)
			}
			res.Submitted++
			jobs <- job{
				sys:    drive[int(d.Src)%len(drive)],
				ref:    ref,
				method: "op" + strconv.Itoa(d.Op),
				args:   node.args,
				due:    t0.Add(d.At),
			}
		}
	}
	close(jobs)
	wg.Wait()
	res.Elapsed = time.Since(t0)

	res.Completed = completed.Load()
	res.Errors = errored.Load()
	res.OpsExecuted = r.ctrs.opsExecuted.Load()
	res.LegsSent = r.ctrs.legsSent.Load()
	res.LegsReceived = r.ctrs.legsReceived.Load()
	for i := range hists {
		res.Latency.Merge(&hists[i])
	}

	// Swarm audit: ask every lobby that ever opened for its own member
	// count; the sum must reproduce the joins the driver routed.
	r.lobbySlots = make([]int, len(r.sp.Kinds))
	for ki := range r.sp.Kinds {
		r.lobbySlots[ki] = swarms[ki].next
		if r.sp.Kinds[ki].Capacity == 0 {
			continue
		}
		for slot := 0; slot < swarms[ki].next; slot++ {
			var n int
			ref := actor.Ref{Type: r.typeNames[ki], Key: spec.KeyOf(slot, 0)}
			if err := drive[slot%len(drive)].Call(ref, "members", nil, &n); err != nil {
				return res, fmt.Errorf("loadgen: lobby %s audit: %w", ref, err)
			}
			res.LobbyMembers += uint64(n)
		}
	}
	if firstErr != nil {
		return res, fmt.Errorf("loadgen: %d/%d operations failed, first: %w", res.Errors, res.Submitted, firstErr)
	}
	return res, nil
}

// Audit is the per-actor view of a finished run: every actor the spec
// ever addressed, asked for its own effect counters. With durability on,
// these must reproduce the driver's shared-memory totals even after a
// node hosting some of the actors was hard-killed — that is the
// exactly-once oracle the chaos suite checks.
type Audit struct {
	Ops     uint64 // sum of per-actor executed-op counters
	Legs    uint64 // sum of per-actor received-leg counters
	Members uint64 // sum of lobby rosters (swarm kinds)
}

// AuditOps re-walks every (kind, slot, generation) the run addressed —
// including every lobby slot that ever opened — and sums the per-actor
// counters via the given systems (defaults to all of the runner's).
// Actors that lived on a dead node re-activate on a survivor during the
// walk, so the sums measure exactly what failover recovered.
func (r *Runner) AuditOps(via []*actor.System) (Audit, error) {
	if len(via) == 0 {
		via = r.systems
	}
	var (
		out Audit
		i   int
	)
	query := func(ref actor.Ref, method string) (int, error) {
		var n int
		sys := via[i%len(via)]
		i++
		if err := sys.Call(ref, method, nil, &n); err != nil {
			return 0, fmt.Errorf("loadgen: audit %s %s: %w", ref, method, err)
		}
		return n, nil
	}
	walk := func(ref actor.Ref, lobby bool) error {
		o, err := query(ref, "opcount")
		if err != nil {
			return err
		}
		l, err := query(ref, "legcount")
		if err != nil {
			return err
		}
		out.Ops += uint64(o)
		out.Legs += uint64(l)
		if lobby {
			m, err := query(ref, "members")
			if err != nil {
				return err
			}
			out.Members += uint64(m)
		}
		return nil
	}
	for ki := range r.sp.Kinds {
		k := &r.sp.Kinds[ki]
		if k.Capacity > 0 {
			slots := 0
			if r.lobbySlots != nil {
				slots = r.lobbySlots[ki]
			}
			for slot := 0; slot < slots; slot++ {
				ref := actor.Ref{Type: r.typeNames[ki], Key: spec.KeyOf(slot, 0)}
				if err := walk(ref, true); err != nil {
					return out, err
				}
			}
			continue
		}
		for slot := 0; slot < k.Population; slot++ {
			// Walk every generation the slot ever lived as: churned-away
			// incarnations banked effects too, and with durability on
			// their counters must still be recoverable.
			maxGen := int(r.gen[ki][slot].Load())
			for g := 0; g <= maxGen; g++ {
				ref := actor.Ref{Type: r.typeNames[ki], Key: spec.KeyOf(slot, g)}
				if err := walk(ref, false); err != nil {
					return out, err
				}
			}
		}
	}
	return out, nil
}
