package loadgen

import (
	"fmt"
	"testing"
	"time"

	"actop/internal/actor"
	"actop/internal/transport"
	"actop/internal/workload/spec"
)

// newCluster builds an in-process multi-node actor cluster on the
// in-memory transport.
func newCluster(t *testing.T, n int) []*actor.System {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	systems := make([]*actor.System, n)
	for i := 0; i < n; i++ {
		sys, err := actor.NewSystem(actor.Config{
			Transport: trs[i], Peers: peers,
			Workers: 16, Seed: int64(7 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems
}

// TestConformanceAllScenarios is the headline cross-check: every built-in
// scenario runs through the one spec harness against both backends — the
// DES and a live 3-node runtime — and the two results must satisfy the
// per-scenario invariants and agree within the scenario's stated
// tolerance. A latency rank check across the scenario set closes the loop
// on latency shape.
func TestConformanceAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-runtime runs")
	}
	scenarios := spec.Scenarios(1)
	names := make([]string, 0, len(scenarios))
	desMed := make([]time.Duration, 0, len(scenarios))
	realMed := make([]time.Duration, 0, len(scenarios))
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Spec.Name, func(t *testing.T) {
			desRun, err := spec.RunDES(&sc.Spec, spec.DESOptions{Servers: 3})
			if err != nil {
				t.Fatal(err)
			}
			systems := newCluster(t, 3)
			runner, err := New(&sc.Spec, systems)
			if err != nil {
				t.Fatal(err)
			}
			realRes, err := runner.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, inv := range desRun.Result.CheckInvariants(&sc.Spec) {
				t.Error(inv)
			}
			for _, inv := range realRes.CheckInvariants(&sc.Spec) {
				t.Error(inv)
			}
			for _, cmp := range spec.Compare(&sc.Spec, &desRun.Result, realRes, sc.Tol) {
				t.Error(cmp)
			}
			names = append(names, sc.Spec.Name)
			desMed = append(desMed, desRun.Result.Latency.Quantile(0.5))
			realMed = append(realMed, realRes.Latency.Quantile(0.5))
		})
	}
	if t.Failed() {
		return
	}
	for _, err := range spec.RankCheck(names, desMed, realMed, 3) {
		t.Error(err)
	}
}

// TestRealChurnKeepsServing drives the presence scenario (which churns
// game sessions) and checks the generation-keyed rebirth kept every
// operation successful — churned slots must keep answering through their
// fresh incarnation.
func TestRealChurnKeepsServing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-runtime run")
	}
	sc, _ := spec.ScenarioByName("presence", 0.5)
	systems := newCluster(t, 2)
	runner, err := New(&sc.Spec, systems)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Churned == 0 {
		t.Fatal("no churn events applied")
	}
	if res.Errors != 0 || res.Completed != res.Submitted {
		t.Fatalf("churn lost operations: %d errors, %d/%d completed",
			res.Errors, res.Completed, res.Submitted)
	}
}

// TestRunnerRejectsBadSpec pins the error path: an invalid spec must fail
// compilation, not produce a half-wired runner.
func TestRunnerRejectsBadSpec(t *testing.T) {
	sc, _ := spec.ScenarioByName("heartbeat", 1)
	sc.Spec.Kinds[0].Population = 0
	systems := newCluster(t, 1)
	if _, err := New(&sc.Spec, systems); err == nil {
		t.Fatal("invalid spec compiled")
	}
	if _, err := New(&spec.Scenarios(1)[0].Spec, nil); err == nil {
		t.Fatal("runner built with no systems")
	}
}
