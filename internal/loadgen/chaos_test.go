package loadgen

import (
	"fmt"
	"testing"
	"time"

	"actop/internal/actor"
	"actop/internal/transport"
	"actop/internal/workload/spec"
)

// newChaosCluster is newCluster on Flaky transports with a fast failure
// detector, so a test can hard-kill a node mid-workload and watch
// failover + durable recovery do their jobs within a few seconds.
func newChaosCluster(t *testing.T, n, replicas int) ([]*actor.System, []*transport.Flaky) {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	flakies := make([]*transport.Flaky, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("cn-%d", i))
		flakies[i] = transport.NewFlaky(net.Join(peers[i]), int64(2000+i))
	}
	systems := make([]*actor.System, n)
	for i := 0; i < n; i++ {
		sys, err := actor.NewSystem(actor.Config{
			Transport: flakies[i], Peers: peers,
			Workers: 16, Seed: int64(7 + i),
			// Calls must outlive failure detection (~600ms at these
			// settings) plus a snapshot-recovery pull.
			CallTimeout:       8 * time.Second,
			HeartbeatInterval: 50 * time.Millisecond,
			SuspectAfter:      2,
			DeadAfter:         5,
			RetryBackoff:      5 * time.Millisecond,
			DurableReplicas:   replicas,
			SnapshotEvery:     4,
			SnapshotInterval:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems, flakies
}

// runKillMidWorkload replays one scenario against a 3-node chaos cluster,
// hard-killing node 2 at the halfway quiesce point (snapshots flushed
// first, so the cut is exact). The driver only ever submits through the
// survivors. Returns the run result and the post-run per-actor audit.
func runKillMidWorkload(t *testing.T, scenario string, replicas int) (*spec.Result, Audit, *Runner, []*actor.System) {
	t.Helper()
	sc, ok := spec.ScenarioByName(scenario, 0.5)
	if !ok {
		t.Fatalf("unknown scenario %q", scenario)
	}
	systems, flakies := newChaosCluster(t, 3, replicas)
	victim := 2
	runner, err := New(&sc.Spec, systems)
	if err != nil {
		t.Fatal(err)
	}
	survivors := []*actor.System{systems[0], systems[1]}
	res, err := runner.Run(Options{
		Workers: 16,
		Drive:   survivors,
		Halfway: func() {
			// The driver has quiesced: flush every dirty durable actor
			// on the victim to its replicas, then pull the plug.
			systems[victim].SyncSnapshots()
			flakies[victim].Kill()
		},
	})
	if err != nil {
		t.Fatalf("run: %v (result: %+v)", err, res)
	}
	audit, err := runner.AuditOps(survivors)
	if err != nil {
		t.Fatal(err)
	}
	return res, audit, runner, systems
}

// TestChaosKillMatchmakingDurable is the headline chaos acceptance: a
// node dies mid-run under the matchmaking workload with durability on,
// and the recovered world still matches the exactly-once oracle — every
// lobby roster, every per-actor op and leg count, zero lost actors.
func TestChaosKillMatchmakingDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res, audit, runner, systems := runKillMidWorkload(t, "matchmaking", 1)
	for _, inv := range res.CheckInvariants(runner.sp) {
		t.Error(inv)
	}
	if res.Errors != 0 || res.Completed != res.Submitted {
		t.Errorf("lost operations across the kill: %d errors, %d/%d completed",
			res.Errors, res.Completed, res.Submitted)
	}
	if audit.Ops != res.OpsExecuted {
		t.Errorf("op oracle broken: actors account %d ops, driver executed %d", audit.Ops, res.OpsExecuted)
	}
	if audit.Legs != res.LegsReceived {
		t.Errorf("leg oracle broken: actors account %d legs, driver counted %d", audit.Legs, res.LegsReceived)
	}
	if audit.Members != res.JoinsRouted {
		t.Errorf("lobby rosters lost members: recovered %d, routed %d", audit.Members, res.JoinsRouted)
	}
	var recovered uint64
	for _, s := range systems[:2] {
		recovered += s.Durables().RecoveredWithState
	}
	if recovered == 0 {
		t.Error("kill recovered no snapshots — victim hosted nothing? adjust seeds")
	}
}

// TestChaosKillIoTDurable runs the same kill under the IoT ingest
// workload: the oracle here is the per-aggregator/device counters (ingest
// legs), which must survive the crash intact.
func TestChaosKillIoTDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res, audit, runner, systems := runKillMidWorkload(t, "iot", 1)
	for _, inv := range res.CheckInvariants(runner.sp) {
		t.Error(inv)
	}
	if res.Errors != 0 || res.Completed != res.Submitted {
		t.Errorf("lost operations across the kill: %d errors, %d/%d completed",
			res.Errors, res.Completed, res.Submitted)
	}
	if audit.Ops != res.OpsExecuted {
		t.Errorf("op oracle broken: actors account %d ops, driver executed %d", audit.Ops, res.OpsExecuted)
	}
	if audit.Legs != res.LegsReceived {
		t.Errorf("ingest oracle broken: actors account %d legs, driver counted %d", audit.Legs, res.LegsReceived)
	}
	var recovered uint64
	for _, s := range systems[:2] {
		recovered += s.Durables().RecoveredWithState
	}
	if recovered == 0 {
		t.Error("kill recovered no snapshots — victim hosted nothing? adjust seeds")
	}
}

// TestChaosKillWithoutDurabilityLosesState documents the loss the
// durability plane exists to fix: the identical kill with
// DurableReplicas=0 resurrects the victim's actors empty, so the
// per-actor audit comes up short of the driver's totals.
func TestChaosKillWithoutDurabilityLosesState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res, audit, _, _ := runKillMidWorkload(t, "iot", 0)
	if res.Errors != 0 || res.Completed != res.Submitted {
		t.Errorf("operations themselves should still complete via failover: %d errors, %d/%d",
			res.Errors, res.Completed, res.Submitted)
	}
	if audit.Ops >= res.OpsExecuted && audit.Legs >= res.LegsReceived {
		t.Errorf("expected amnesia with durability off, but audit (%d ops, %d legs) covers driver totals (%d ops, %d legs)",
			audit.Ops, audit.Legs, res.OpsExecuted, res.LegsReceived)
	}
}
