package loadgen

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
