package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsLeakedGoroutine pins that the guard actually sees a
// deliberately-stuck goroutine — without this, an over-broad allowlist
// could silently disable the whole check.
func TestDetectsLeakedGoroutine(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		leakyWorker(block)
	}()
	defer func() {
		close(block)
		<-done
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		var found bool
		for _, st := range interestingGoroutines() {
			if strings.Contains(st, "leakyWorker") {
				found = true
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("guard did not report the deliberately-leaked goroutine")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// leakyWorker is a named frame so the test can find its stanza.
func leakyWorker(block chan struct{}) {
	<-block
}

// TestDrainToleratesLateExit pins the polling behavior: a goroutine that
// exits shortly after the tests finish must not be reported as a leak.
func TestDrainToleratesLateExit(t *testing.T) {
	go func() {
		time.Sleep(50 * time.Millisecond)
	}()
	if leaked := waitForGoroutineDrain(3 * time.Second); len(leaked) != 0 {
		t.Fatalf("drain reported %d leaks for a goroutine that exits on its own:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
}
