// Package testutil holds shared test-only helpers for the runtime's
// package test suites. Nothing here is imported by production code.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// VerifyNoLeaks runs a package's tests via run (normally m.Run) and then
// checks that every goroutine the tests started has exited. It is meant
// to be called from TestMain:
//
//	func TestMain(m *testing.M) {
//		os.Exit(testutil.VerifyNoLeaks(m.Run))
//	}
//
// The check compares full goroutine stacks after run returns against a
// small allowlist of benign stanzas (the test harness itself, the
// runtime's own helpers). Because goroutines wind down asynchronously —
// a node's acceptor loop observes its closed listener only on the next
// Accept return — the check polls with a backoff before declaring a
// leak, so legitimate shutdown races do not flake.
//
// On a leak it prints every offending stack and returns a non-zero
// code even if the tests themselves passed: a goroutine that outlives
// System.Shutdown is exactly the bug class PR 3 fixed, and this guard
// keeps it fixed.
func VerifyNoLeaks(run func() int) int {
	code := run()
	if code != 0 {
		// Test failures already fail the build; a leak report on top of
		// a failing run would only bury the real diagnostics.
		return code
	}
	leaked := waitForGoroutineDrain(5 * time.Second)
	if len(leaked) == 0 {
		return code
	}
	fmt.Fprintf(os.Stderr, "testutil: %d leaked goroutine(s) after tests completed:\n\n", len(leaked))
	for _, st := range leaked {
		fmt.Fprintf(os.Stderr, "%s\n\n", st)
	}
	return 1
}

// waitForGoroutineDrain polls until no unexpected goroutine stanzas
// remain or the deadline passes, returning the survivors.
func waitForGoroutineDrain(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	wait := 1 * time.Millisecond
	for {
		leaked := interestingGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// interestingGoroutines returns the stack stanza of every live
// goroutine that is not on the benign allowlist.
func interestingGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, st := range strings.Split(string(buf), "\n\n") {
		st = strings.TrimSpace(st)
		if st == "" || isBenignStack(st) {
			continue
		}
		leaked = append(leaked, st)
	}
	return leaked
}

// isBenignStack reports whether a goroutine stanza belongs to the test
// harness or the runtime rather than to code under test.
func isBenignStack(st string) bool {
	firstLine, rest, _ := strings.Cut(st, "\n")
	if rest == "" {
		// A stanza with no frames (can happen for goroutines in the
		// middle of being created) — nothing to attribute, skip it.
		return true
	}
	for _, benign := range []string{
		"testing.Main(",          // the goroutine running TestMain itself
		"testing.(*T).Run(",      // parent test goroutines parked in Run
		"testing.tRunner(",       // a test body that has returned but not been reaped
		"runtime.goexit",         // fully-exited placeholder
		"testutil.VerifyNoLeaks", // this checker
		"testutil.interestingGoroutines",
		"runtime_mcall",
		"signal.signal_recv", // os/signal watcher, started once per process
		"runtime.ensureSigM",
		"runtime.ReadTrace", // test -trace support
	} {
		if strings.Contains(rest, benign) {
			return true
		}
	}
	// The goroutine profile's own reader shows up as running.
	if strings.HasPrefix(firstLine, "goroutine ") && strings.Contains(firstLine, "[running]") &&
		strings.Contains(rest, "runtime.Stack(") {
		return true
	}
	return false
}
