package partition

import (
	"container/heap"

	"actop/internal/graph"
)

// ExchangeRequest is the message server p sends to server q to initiate the
// pairwise coordination protocol (Algorithm 1, step 1).
type ExchangeRequest struct {
	From, To graph.ServerID
	// Candidates is the set S of actors p offers to q.
	Candidates []Candidate
	// FromPopulation is |Vp| when the request was formed.
	FromPopulation int
}

// ExchangeResponse is q's decision (Algorithm 1, steps 2–4).
type ExchangeResponse struct {
	// Rejected is set when q refused the whole exchange (it exchanged too
	// recently, Algorithm 1's cooldown).
	Rejected bool
	// Accepted is S0 ⊆ S: the offered actors q agrees to host.
	Accepted []graph.Vertex
	// Counter is T0: q's own actors to be transferred to p.
	Counter []graph.Vertex
}

// scoredVertex is a heap element of the greedy exchange-subset procedure.
type scoredVertex struct {
	cand  Candidate
	score float64
	index int
}

type scoreHeap []*scoredVertex

func (h scoreHeap) Len() int           { return len(h) }
func (h scoreHeap) Less(i, j int) bool { return h[i].score > h[j].score } // max-heap
func (h scoreHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *scoreHeap) Push(x interface{}) {
	sv := x.(*scoredVertex)
	sv.index = len(*h)
	*h = append(*h, sv)
}
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	sv := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return sv
}

// DecideExchange runs steps 2–3 of Algorithm 1 at the receiving server q:
// it forms q's own candidate set T toward p, then jointly determines the
// accepted subset S0 ⊆ S and the counter-subset T0 ⊆ T with the iterative
// greedy two-heap procedure, honoring the balance constraint
// ||Vp| − |Vq|| ≤ δ after every individual move.
//
// view/loc are q's local edge sample and membership knowledge;
// qVertices are the vertices currently homed on q; qPopulation is |Vq|.
func DecideExchange(opts Options, view EdgeView, loc Locator,
	req ExchangeRequest, qVertices []graph.Vertex, qPopulation int) ExchangeResponse {

	p, q := req.From, req.To

	// Step 2: q determines its own candidate set T toward p, ignoring (for
	// now) the consequences of accepting S.
	var tCands []Candidate
	for _, prop := range SelectCandidates(opts, view, loc, q, qVertices, qPopulation) {
		if prop.To == p {
			tCands = prop.Candidates
			break
		}
	}

	// Re-score S with q's own knowledge: q recomputes the weight to Vq from
	// its own view of membership (the offer's TargetWeight may be stale or
	// built from a partial sample). The weight internal to p is only known
	// to p, so the carried HomeWeight is used as-is.
	sHeap := &scoreHeap{}
	for _, c := range req.Candidates {
		var toQ float64
		for u, w := range c.Edges {
			if s, ok := loc.Server(u); ok && s == q {
				toQ += w
			}
		}
		c.TargetWeight = toQ
		score := c.Score()
		if opts.SizeAware && c.Size > 0 {
			score /= c.Size
		}
		heap.Push(sHeap, &scoredVertex{cand: c, score: score})
	}
	tHeap := &scoreHeap{}
	for _, c := range tCands {
		score := c.Score()
		if opts.SizeAware && c.Size > 0 {
			score /= c.Size
		}
		heap.Push(tHeap, &scoredVertex{cand: c, score: score})
	}

	// Step 3: iterative greedy selection. Accepting s∈S moves a vertex
	// p→q; accepting t∈T moves a vertex q→p. After each selection the
	// remaining scores are updated to reflect the migration:
	//   same-direction peers of a moved vertex gain 2·w(peer,v)
	//   opposite-direction peers lose 2·w(peer,v).
	sizeP := float64(req.FromPopulation)
	sizeQ := float64(qPopulation)
	if opts.SizeAware {
		// Interpret populations as total size; callers pass size-weighted
		// populations in that mode.
		sizeP = float64(req.FromPopulation)
		sizeQ = float64(qPopulation)
	}
	delta := float64(opts.ImbalanceTolerance)

	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	// A move is admissible if it keeps |sizeP−sizeQ| ≤ δ, or strictly
	// reduces an imbalance that already exceeds δ.
	admissible := func(newP, newQ float64) bool {
		newDiff := abs(newP - newQ)
		return newDiff <= delta || newDiff < abs(sizeP-sizeQ)
	}

	var resp ExchangeResponse
	accepted := make(map[graph.Vertex]bool)
	countered := make(map[graph.Vertex]bool)

	// update adjusts remaining heap scores after vertex v migrated.
	// sameDir is the heap whose candidates move in the same direction as v.
	update := func(sameDir, oppDir *scoreHeap, v graph.Vertex) {
		for _, sv := range *sameDir {
			if w, ok := edgeWeight(sv.cand, v); ok {
				sv.score += 2 * w / sizeOr1(opts, sv.cand)
			}
		}
		for _, sv := range *oppDir {
			if w, ok := edgeWeight(sv.cand, v); ok {
				sv.score -= 2 * w / sizeOr1(opts, sv.cand)
			}
		}
		heap.Init(sameDir)
		heap.Init(oppDir)
	}

	for sHeap.Len() > 0 || tHeap.Len() > 0 {
		// Pick the highest-scoring vertex across both heaps.
		var fromS bool
		switch {
		case sHeap.Len() == 0:
			fromS = false
		case tHeap.Len() == 0:
			fromS = true
		default:
			fromS = (*sHeap)[0].score >= (*tHeap)[0].score
		}

		var top *scoredVertex
		if fromS {
			top = (*sHeap)[0]
		} else {
			top = (*tHeap)[0]
		}
		if top.score <= opts.MinScore {
			// The best remaining move no longer reduces cost; since scores
			// of remaining vertices only change when a selection happens,
			// nothing below the top can be selected either — check the
			// other heap before giving up.
			var other *scoredVertex
			if fromS && tHeap.Len() > 0 {
				other = (*tHeap)[0]
			} else if !fromS && sHeap.Len() > 0 {
				other = (*sHeap)[0]
			}
			if other == nil || other.score <= opts.MinScore {
				break
			}
			fromS = !fromS
			top = other
		}

		sz := top.cand.Size
		if sz == 0 {
			sz = 1
		}
		var newP, newQ float64
		if fromS {
			newP, newQ = sizeP-sz, sizeQ+sz
		} else {
			newP, newQ = sizeP+sz, sizeQ-sz
		}
		if !admissible(newP, newQ) {
			// Balance would break: take the best vertex from the other
			// heap instead (its move shifts the balance the other way).
			otherHeap := tHeap
			if !fromS {
				otherHeap = sHeap
			}
			if otherHeap.Len() == 0 || (*otherHeap)[0].score <= opts.MinScore {
				break // nothing movable remains
			}
			fromS = !fromS
			top = (*otherHeap)[0]
			sz = top.cand.Size
			if sz == 0 {
				sz = 1
			}
			if fromS {
				newP, newQ = sizeP-sz, sizeQ+sz
			} else {
				newP, newQ = sizeP+sz, sizeQ-sz
			}
			if !admissible(newP, newQ) {
				break
			}
		}

		// Commit the move.
		sizeP, sizeQ = newP, newQ
		if fromS {
			heap.Pop(sHeap)
			accepted[top.cand.V] = true
			resp.Accepted = append(resp.Accepted, top.cand.V)
			update(sHeap, tHeap, top.cand.V)
		} else {
			heap.Pop(tHeap)
			countered[top.cand.V] = true
			resp.Counter = append(resp.Counter, top.cand.V)
			update(tHeap, sHeap, top.cand.V)
		}
	}
	return resp
}

// edgeWeight looks up w(c.V, v) in the candidate's carried edge list.
func edgeWeight(c Candidate, v graph.Vertex) (float64, bool) {
	w, ok := c.Edges[v]
	return w, ok
}

func sizeOr1(opts Options, c Candidate) float64 {
	if !opts.SizeAware || c.Size <= 0 {
		return 1
	}
	return c.Size
}
