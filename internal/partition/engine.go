package partition

import (
	"math/rand"
	"time"

	"actop/internal/graph"
)

// Engine drives the pairwise coordination protocol over a shared graph and
// assignment — the substrate for partition-quality experiments and the
// Theorem 1 convergence tests. The cluster simulator and the real runtime
// embed the same protocol functions but carry the messages themselves.
type Engine struct {
	Opts Options
	// RejectWindow is the minimum interval between two exchanges involving
	// the same server; a request arriving sooner is rejected (Algorithm 1's
	// "if q exchanged recently"). The paper uses one minute.
	RejectWindow time.Duration

	G      *graph.Graph
	Assign *graph.Assignment

	// Monitors, when non-nil, supply each server's sampled edge view;
	// otherwise servers see the true graph (the oracle configuration).
	Monitors map[graph.ServerID]*Monitor

	lastExchange map[graph.ServerID]time.Duration
	rng          *rand.Rand

	// Moves counts applied migrations; Exchanges counts accepted exchanges;
	// Rejected counts cooldown rejections.
	Moves, Exchanges, Rejected int
}

// NewEngine creates an engine over g with the given assignment.
func NewEngine(opts Options, g *graph.Graph, a *graph.Assignment, seed int64) *Engine {
	return &Engine{
		Opts:         opts,
		RejectWindow: time.Minute,
		G:            g,
		Assign:       a,
		lastExchange: make(map[graph.ServerID]time.Duration),
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// view returns server p's edge view.
func (e *Engine) view(p graph.ServerID) EdgeView {
	if e.Monitors != nil {
		if m := e.Monitors[p]; m != nil {
			return m.Snapshot()
		}
	}
	return GraphView{G: e.G}
}

// coolingDown reports whether s exchanged within the reject window.
func (e *Engine) coolingDown(s graph.ServerID, now time.Duration) bool {
	last, ok := e.lastExchange[s]
	return ok && now-last < e.RejectWindow
}

// StepServer runs one protocol round initiated by server p at virtual time
// now. It returns the number of vertices migrated.
func (e *Engine) StepServer(p graph.ServerID, now time.Duration) int {
	if e.coolingDown(p, now) {
		return 0
	}
	local := e.Assign.VerticesOn(p)
	proposals := SelectCandidates(e.Opts, e.view(p), e.Assign, p, local, len(local))
	for _, prop := range proposals {
		q := prop.To
		if e.coolingDown(q, now) {
			e.Rejected++
			continue // p tries the next-best target (Algorithm 1)
		}
		req := ExchangeRequest{
			From: p, To: q,
			Candidates:     prop.Candidates,
			FromPopulation: prop.FromPopulation,
		}
		qVerts := e.Assign.VerticesOn(q)
		resp := DecideExchange(e.Opts, e.view(q), e.Assign, req, qVerts, len(qVerts))
		moved := e.apply(req, resp)
		if moved == 0 {
			// q accepted the exchange but found nothing worth moving;
			// don't burn the cooldown, let p try elsewhere.
			continue
		}
		e.Exchanges++
		e.Moves += moved
		e.lastExchange[p] = now
		e.lastExchange[q] = now
		return moved
	}
	return 0
}

// apply commits an exchange decision to the assignment and, when monitors
// are in play, hands the migrated vertices' statistics to the new home.
func (e *Engine) apply(req ExchangeRequest, resp ExchangeResponse) int {
	if resp.Rejected {
		return 0
	}
	moved := 0
	for _, v := range resp.Accepted {
		e.Assign.Place(v, req.To)
		e.migrateStats(v, req.From, req.To)
		moved++
	}
	for _, v := range resp.Counter {
		e.Assign.Place(v, req.From)
		e.migrateStats(v, req.To, req.From)
		moved++
	}
	return moved
}

func (e *Engine) migrateStats(v graph.Vertex, from, to graph.ServerID) {
	if e.Monitors == nil {
		return
	}
	src, dst := e.Monitors[from], e.Monitors[to]
	if src == nil || dst == nil {
		return
	}
	// Transfer v's monitored edges to the destination so it can keep
	// refining placement; drop them at the source.
	snap := src.Snapshot()
	snap.VertexEdges(v, func(u graph.Vertex, w float64) {
		dst.ObserveMessage(v, u, uint64(w))
	})
	src.ForgetVertex(v)
}

// Round lets every server initiate once (in random order, as independent
// periodic timers would interleave). It returns total vertices migrated.
func (e *Engine) Round(now time.Duration) int {
	servers := e.Assign.Servers()
	e.rng.Shuffle(len(servers), func(i, j int) { servers[i], servers[j] = servers[j], servers[i] })
	total := 0
	for _, p := range servers {
		total += e.StepServer(p, now)
	}
	return total
}

// RunToConvergence repeatedly rounds (spacing rounds a reject-window apart
// so cooldowns never block progress) until a round moves nothing or
// maxRounds is reached. It returns the number of rounds executed.
func (e *Engine) RunToConvergence(maxRounds int) int {
	now := time.Duration(0)
	for r := 1; r <= maxRounds; r++ {
		now += e.RejectWindow + time.Second
		if e.Round(now) == 0 {
			return r
		}
	}
	return maxRounds
}

// FeedMonitors replays the true graph's edges into each endpoint server's
// monitor, simulating one statistics epoch of message traffic. scale
// multiplies edge weights into integer message counts.
func (e *Engine) FeedMonitors(scale float64) {
	if e.Monitors == nil {
		return
	}
	for _, edge := range e.G.Edges() {
		count := uint64(edge.Weight * scale)
		if count == 0 {
			count = 1
		}
		if su, ok := e.Assign.Server(edge.U); ok {
			if m := e.Monitors[su]; m != nil {
				m.ObserveMessage(edge.U, edge.V, count)
			}
		}
		if sv, ok := e.Assign.Server(edge.V); ok {
			su, _ := e.Assign.Server(edge.U)
			if sv != su { // avoid double-count when co-located
				if m := e.Monitors[sv]; m != nil {
					m.ObserveMessage(edge.U, edge.V, count)
				}
			}
		}
	}
}

// EnableMonitors attaches fresh monitors of the given capacity to every
// server in the assignment.
func (e *Engine) EnableMonitors(capacity int) {
	e.Monitors = make(map[graph.ServerID]*Monitor)
	for _, s := range e.Assign.Servers() {
		e.Monitors[s] = NewMonitor(capacity)
	}
}

// LocallyOptimal reports whether the partition (g, a) is locally optimal in
// the sense of Theorem 1: for each pair of servers p, q, every vertex in
// Vp ∪ Vq either has a non-positive pairwise transfer score, or has a
// positive score but moving it to the other server would violate the balance
// constraint between p and q. Exchanges only stop at such states.
func LocallyOptimal(opts Options, g *graph.Graph, a *graph.Assignment) bool {
	view := GraphView{G: g}
	servers := a.Servers()
	for _, v := range g.Vertices() {
		p, ok := a.Server(v)
		if !ok {
			continue
		}
		np := a.Count(p)
		for _, q := range servers {
			if q == p {
				continue
			}
			score := TransferScore(view, a, v, p, q)
			if score <= opts.MinScore {
				continue
			}
			nq := a.Count(q)
			newDiff := abs64(np - 1 - (nq + 1))
			curDiff := abs64(np - nq)
			if newDiff <= opts.ImbalanceTolerance || newDiff < curDiff {
				return false // an admissible improving move exists
			}
		}
	}
	return true
}

func abs64(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
