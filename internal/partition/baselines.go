package partition

import (
	"math/rand"

	"actop/internal/graph"
)

// Baseline partitioners the paper compares against or discusses (§4.1
// "Design alternatives", §7). Random/hash/local placement baselines live in
// package graph (they are placement policies, not repartitioners).

// OneSidedRound performs one round of the *uncoordinated* design alternative
// the paper rejects (§4.2 "Discussion"): every server unilaterally migrates
// its best-scoring vertices to their preferred servers, with no pairwise
// agreement and no balance negotiation. Returns vertices moved.
//
// Kept as an ablation baseline: it converges slower and produces higher
// imbalance, which BenchmarkAblationOneSided demonstrates.
func OneSidedRound(opts Options, g *graph.Graph, a *graph.Assignment) int {
	moved := 0
	view := GraphView{G: g}
	for _, p := range a.Servers() {
		local := a.VerticesOn(p)
		proposals := SelectCandidates(opts, view, a, p, local, len(local))
		if len(proposals) == 0 {
			continue
		}
		best := proposals[0]
		for _, c := range best.Candidates {
			a.Place(c.V, best.To)
			moved++
		}
	}
	return moved
}

// JaBeJa approximates the distributed per-vertex swap algorithm of Rahimian
// et al. (SASO 2013), the closest prior work (§7): random vertex pairs on
// different servers swap homes when the swap reduces the summed remote edge
// weight. Swapping preserves per-server populations exactly, so balance is
// maintained by construction — but there is no bound on per-round migrations
// and convergence takes many fine-grained steps.
type JaBeJa struct {
	G      *graph.Graph
	Assign *graph.Assignment
	rng    *rand.Rand
	verts  []graph.Vertex
	// Swaps counts applied swaps (two migrations each).
	Swaps int
}

// NewJaBeJa creates a Ja-Be-Ja-style optimizer over g and a.
func NewJaBeJa(g *graph.Graph, a *graph.Assignment, seed int64) *JaBeJa {
	return &JaBeJa{G: g, Assign: a, rng: rand.New(rand.NewSource(seed)), verts: g.Vertices()}
}

// localCost is the remote edge weight incident to v if v lives on s.
func (j *JaBeJa) localCost(v graph.Vertex, s graph.ServerID) float64 {
	var cost float64
	j.G.Neighbors(v, func(u graph.Vertex, w float64) {
		if su, ok := j.Assign.Server(u); ok && su != s {
			cost += w
		}
	})
	return cost
}

// Step samples `attempts` random vertex pairs and applies beneficial swaps.
// Returns the number of swaps applied.
func (j *JaBeJa) Step(attempts int) int {
	applied := 0
	n := len(j.verts)
	if n < 2 {
		return 0
	}
	for i := 0; i < attempts; i++ {
		u := j.verts[j.rng.Intn(n)]
		v := j.verts[j.rng.Intn(n)]
		su, okU := j.Assign.Server(u)
		sv, okV := j.Assign.Server(v)
		if !okU || !okV || su == sv || u == v {
			continue
		}
		// Remote weight incident to the pair, counting the shared u–v edge
		// twice on both sides of the comparison so the comparison stays
		// consistent. Before: u–v is remote (su≠sv), so localCost counts it
		// once per endpoint. After the swap u is on sv and v on su — still
		// different servers — but localCost evaluates against the current
		// assignment where the peer has not moved yet, so it sees the edge
		// as local for both hypotheticals; add it back twice.
		before := j.localCost(u, su) + j.localCost(v, sv)
		uvw := j.G.Weight(u, v)
		after := j.localCost(u, sv) + j.localCost(v, su) + 2*uvw
		if after < before-1e-12 {
			j.Assign.Place(u, sv)
			j.Assign.Place(v, su)
			applied++
			j.Swaps++
		}
	}
	return applied
}

// Run steps until an entire sweep of `attempts` finds no beneficial swap or
// maxSteps sweeps elapse. Returns sweeps executed.
func (j *JaBeJa) Run(attempts, maxSteps int) int {
	for s := 1; s <= maxSteps; s++ {
		if j.Step(attempts) == 0 {
			return s
		}
	}
	return maxSteps
}
