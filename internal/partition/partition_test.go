package partition

import (
	"math"
	"testing"

	"actop/internal/graph"
)

// tinyView builds a graph/assignment pair:
//
//	server 0: v1, v2   server 1: v3, v4
//	edges: v1–v2 (1), v1–v3 (5), v2–v4 (2)
func tinySetup() (*graph.Graph, *graph.Assignment) {
	g := graph.New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 5)
	g.AddEdge(2, 4, 2)
	a := graph.NewAssignment(0, 1)
	a.Place(1, 0)
	a.Place(2, 0)
	a.Place(3, 1)
	a.Place(4, 1)
	return g, a
}

func TestTransferScore(t *testing.T) {
	g, a := tinySetup()
	view := GraphView{G: g}
	// Moving v1 from 0 to 1: gains edge to v3 (5), loses edge to v2 (1).
	if got := TransferScore(view, a, 1, 0, 1); got != 4 {
		t.Fatalf("TransferScore(v1) = %v, want 4", got)
	}
	// Moving v2: gains edge to v4 (2), loses edge to v1 (1).
	if got := TransferScore(view, a, 2, 0, 1); got != 1 {
		t.Fatalf("TransferScore(v2) = %v, want 1", got)
	}
	// Moving v3 to 0: gains 5, loses 0.
	if got := TransferScore(view, a, 3, 1, 0); got != 5 {
		t.Fatalf("TransferScore(v3) = %v, want 5", got)
	}
}

func TestTransferScoreIgnoresUnplaced(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 99, 10) // 99 unplaced
	a := graph.NewAssignment(0, 1)
	a.Place(1, 0)
	if got := TransferScore(GraphView{G: g}, a, 1, 0, 1); got != 0 {
		t.Fatalf("score with unplaced neighbor = %v, want 0", got)
	}
}

func TestSelectCandidatesRanking(t *testing.T) {
	g, a := tinySetup()
	opts := DefaultOptions()
	local := a.VerticesOn(0)
	props := SelectCandidates(opts, GraphView{G: g}, a, 0, local, len(local))
	if len(props) != 1 {
		t.Fatalf("proposals = %d, want 1 (only server 1 is attractive)", len(props))
	}
	p := props[0]
	if p.To != 1 || p.From != 0 {
		t.Fatalf("proposal endpoints %d→%d", p.From, p.To)
	}
	if len(p.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(p.Candidates))
	}
	// v1 (score 4) before v2 (score 1).
	if p.Candidates[0].V != 1 || p.Candidates[1].V != 2 {
		t.Fatalf("candidate order: %v, %v", p.Candidates[0].V, p.Candidates[1].V)
	}
	if math.Abs(p.TotalScore-5) > 1e-9 {
		t.Fatalf("TotalScore = %v, want 5", p.TotalScore)
	}
	if p.FromPopulation != 2 {
		t.Fatalf("FromPopulation = %d", p.FromPopulation)
	}
}

func TestSelectCandidatesRespectsK(t *testing.T) {
	// A star: 10 local vertices all pulled toward server 1.
	g := graph.New()
	a := graph.NewAssignment(0, 1)
	hub := graph.Vertex(100)
	a.Place(hub, 1)
	for i := 0; i < 10; i++ {
		g.AddEdge(graph.Vertex(i), hub, float64(i+1))
		a.Place(graph.Vertex(i), 0)
	}
	opts := DefaultOptions()
	opts.CandidateSetSize = 3
	local := a.VerticesOn(0)
	props := SelectCandidates(opts, GraphView{G: g}, a, 0, local, len(local))
	if len(props) != 1 || len(props[0].Candidates) != 3 {
		t.Fatalf("want 1 proposal with 3 candidates, got %+v", props)
	}
	// The heaviest three.
	want := []graph.Vertex{9, 8, 7}
	for i, c := range props[0].Candidates {
		if c.V != want[i] {
			t.Errorf("candidate[%d] = %v, want %v", i, c.V, want[i])
		}
	}
}

func TestSelectCandidatesSkipsNegativeScores(t *testing.T) {
	// v strongly tied home, weakly tied remote: no proposal.
	g := graph.New()
	g.AddEdge(1, 2, 10) // local
	g.AddEdge(1, 3, 1)  // remote
	a := graph.NewAssignment(0, 1)
	a.Place(1, 0)
	a.Place(2, 0)
	a.Place(3, 1)
	local := a.VerticesOn(0)
	props := SelectCandidates(DefaultOptions(), GraphView{G: g}, a, 0, local, len(local))
	if len(props) != 0 {
		t.Fatalf("expected no proposals, got %+v", props)
	}
}

func TestDecideExchangeAcceptsAndCounters(t *testing.T) {
	// Two misplaced vertices on each side of a 2-server split:
	// cliques {1,2,3} and {4,5,6}; 3 lives on server 1 (wrong), 4 lives on
	// server 0 (wrong). A pairwise exchange should swap them.
	g := graph.New()
	g.AddEdge(1, 2, 5)
	g.AddEdge(1, 3, 5)
	g.AddEdge(2, 3, 5)
	g.AddEdge(4, 5, 5)
	g.AddEdge(4, 6, 5)
	g.AddEdge(5, 6, 5)
	a := graph.NewAssignment(0, 1)
	for _, v := range []graph.Vertex{1, 2, 4} {
		a.Place(v, 0)
	}
	for _, v := range []graph.Vertex{3, 5, 6} {
		a.Place(v, 1)
	}
	opts := DefaultOptions()
	view := GraphView{G: g}

	local0 := a.VerticesOn(0)
	props := SelectCandidates(opts, view, a, 0, local0, len(local0))
	if len(props) != 1 {
		t.Fatalf("proposals from 0: %+v", props)
	}
	req := ExchangeRequest{From: 0, To: 1, Candidates: props[0].Candidates, FromPopulation: 3}
	local1 := a.VerticesOn(1)
	resp := DecideExchange(opts, view, a, req, local1, len(local1))
	if resp.Rejected {
		t.Fatal("exchange should not be rejected")
	}
	if len(resp.Accepted) != 1 || resp.Accepted[0] != 4 {
		t.Fatalf("Accepted = %v, want [4]", resp.Accepted)
	}
	if len(resp.Counter) != 1 || resp.Counter[0] != 3 {
		t.Fatalf("Counter = %v, want [3]", resp.Counter)
	}
}

func TestDecideExchangeBalanceConstraint(t *testing.T) {
	// Server 0 has 4 vertices all attracted to server 1 (which has 2).
	// δ=2 allows only enough one-way moves to keep |4−k − (2+k)| ≤ 2.
	// The hubs are welded together so q has no counter-candidates.
	g := graph.New()
	hubA, hubB := graph.Vertex(100), graph.Vertex(101)
	g.AddEdge(hubA, hubB, 100)
	a := graph.NewAssignment(0, 1)
	a.Place(hubA, 1)
	a.Place(hubB, 1)
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.Vertex(i), hubA, 10)
		a.Place(graph.Vertex(i), 0)
	}
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 2
	view := GraphView{G: g}
	local0 := a.VerticesOn(0)
	props := SelectCandidates(opts, view, a, 0, local0, len(local0))
	req := ExchangeRequest{From: 0, To: 1, Candidates: props[0].Candidates, FromPopulation: 4}
	local1 := a.VerticesOn(1)
	resp := DecideExchange(opts, view, a, req, local1, len(local1))
	// Starting sizes 4 and 2 (diff 2). Moving one: 3,3 (ok). Two: 2,4
	// (diff 2, ok). Three: 1,5 (diff 4 > 2, not admissible).
	if len(resp.Accepted) != 2 {
		t.Fatalf("Accepted = %v, want exactly 2 moves under δ=2", resp.Accepted)
	}
	if len(resp.Counter) != 0 {
		t.Fatalf("Counter = %v, want none (hubs are happy)", resp.Counter)
	}
}

func TestDecideExchangePairwiseUpdates(t *testing.T) {
	// v10 and v11 are companions on server 0: individually each has score
	// +1 toward server 1 (edge 3 remote vs 2 to each other), but once one
	// moves, the other's score rises to +5 (3 remote + 2 to companion).
	// Both should move, demonstrating the post-selection score update.
	// 20 and 21 are welded together so q offers no counter-candidates.
	g := graph.New()
	g.AddEdge(10, 11, 2)
	g.AddEdge(10, 20, 3)
	g.AddEdge(11, 21, 3)
	g.AddEdge(20, 21, 100)
	a := graph.NewAssignment(0, 1)
	a.Place(10, 0)
	a.Place(11, 0)
	a.Place(20, 1)
	a.Place(21, 1)
	// Pad server populations so balance is not binding.
	for i := 0; i < 4; i++ {
		a.Place(graph.Vertex(1000+i), 1)
	}
	opts := DefaultOptions()
	view := GraphView{G: g}
	local0 := a.VerticesOn(0)
	props := SelectCandidates(opts, view, a, 0, local0, len(local0))
	req := ExchangeRequest{From: 0, To: 1, Candidates: props[0].Candidates, FromPopulation: len(local0)}
	local1 := a.VerticesOn(1)
	resp := DecideExchange(opts, view, a, req, local1, len(local1))
	if len(resp.Accepted) != 2 {
		t.Fatalf("Accepted = %v, want both companions", resp.Accepted)
	}
	if len(resp.Counter) != 0 {
		t.Fatalf("Counter = %v, want none (20/21 are welded to server 1)", resp.Counter)
	}
}

func TestDecideExchangeOppositeDirectionPenalty(t *testing.T) {
	// x (on p) and y (on q) share a heavy edge. y's score toward p (5)
	// beats x's toward q (1), so y is counter-transferred first; the
	// pairwise update then drops x's score to −9 and x must NOT move —
	// otherwise the pair would remain split.
	g := graph.New()
	x, y, w := graph.Vertex(1), graph.Vertex(2), graph.Vertex(3)
	g.AddEdge(x, y, 5)
	g.AddEdge(x, w, 4) // anchors x to p
	a := graph.NewAssignment(0, 1)
	a.Place(x, 0)
	a.Place(w, 0)
	a.Place(y, 1)
	a.Place(graph.Vertex(99), 1) // population filler
	opts := DefaultOptions()
	view := GraphView{G: g}
	local0 := a.VerticesOn(0)
	props := SelectCandidates(opts, view, a, 0, local0, len(local0))
	if len(props) != 1 || props[0].Candidates[0].V != x {
		t.Fatalf("expected x offered to server 1, got %+v", props)
	}
	req := ExchangeRequest{From: 0, To: 1, Candidates: props[0].Candidates, FromPopulation: len(local0)}
	local1 := a.VerticesOn(1)
	resp := DecideExchange(opts, view, a, req, local1, len(local1))
	if len(resp.Counter) != 1 || resp.Counter[0] != y {
		t.Fatalf("Counter = %v, want [y]", resp.Counter)
	}
	if len(resp.Accepted) != 0 {
		t.Fatalf("Accepted = %v; x must stay once y moved to p", resp.Accepted)
	}
}

func TestDecideExchangeRescoresWithReceiverKnowledge(t *testing.T) {
	// The offer claims a high TargetWeight, but per the receiver's own
	// membership the heavy neighbor is NOT on the receiver. The receiver
	// must reject the candidate.
	g := graph.New()
	a := graph.NewAssignment(0, 1, 2)
	a.Place(1, 0)
	a.Place(2, 2) // actually on server 2, not 1
	req := ExchangeRequest{
		From: 0, To: 1,
		Candidates: []Candidate{{
			V:            1,
			Edges:        map[graph.Vertex]float64{2: 10},
			HomeWeight:   0,
			TargetWeight: 10, // stale claim
		}},
		FromPopulation: 1,
	}
	resp := DecideExchange(DefaultOptions(), GraphView{G: g}, a, req, nil, 0)
	if len(resp.Accepted) != 0 {
		t.Fatalf("receiver accepted a stale candidate: %v", resp.Accepted)
	}
}
