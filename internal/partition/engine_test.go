package partition

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"actop/internal/graph"
)

func servers(n int) []graph.ServerID {
	ss := make([]graph.ServerID, n)
	for i := range ss {
		ss[i] = graph.ServerID(i)
	}
	return ss
}

// TestEngineConvergesOnCliques is the Theorem 1 sanity check: on a static
// separable graph the pairwise protocol reaches a balanced, locally optimal
// partition with (near) zero cut.
func TestEngineConvergesOnCliques(t *testing.T) {
	g := graph.Cliques(8, 8, 1) // 64 vertices, 8 cliques
	a := graph.HashAssignment(g, servers(4))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 8
	e := NewEngine(opts, g, a, 1)
	rounds := e.RunToConvergence(100)
	if rounds >= 100 {
		t.Fatalf("did not converge in 100 rounds")
	}
	if cut := graph.CutCost(g, a); cut != 0 {
		t.Errorf("cut after convergence = %v, want 0 (cliques are separable)", cut)
	}
	// Exchanges bound pairwise imbalance by δ per exchange; chains of
	// exchanges across servers can drift up to (n−1)·δ globally.
	if imb := a.Imbalance(); imb > 3*opts.ImbalanceTolerance {
		t.Errorf("imbalance %d exceeds (n−1)·δ=%d", imb, 3*opts.ImbalanceTolerance)
	}
	if e.Moves == 0 {
		t.Error("expected some migrations")
	}
}

// TestEngineCutMonotone verifies the core Theorem 1 argument: every applied
// exchange strictly decreases the total communication cost when servers see
// the true static graph.
func TestEngineCutMonotone(t *testing.T) {
	g := graph.NoisyCliques(6, 6, 5, 0.5, 40, 3)
	a := graph.RandomAssignment(g, servers(3), 9)
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 6
	e := NewEngine(opts, g, a, 2)
	prev := graph.CutCost(g, a)
	now := time.Duration(0)
	for r := 0; r < 50; r++ {
		now += e.RejectWindow + time.Second
		moved := e.Round(now)
		cur := graph.CutCost(g, a)
		if cur > prev+1e-9 {
			t.Fatalf("round %d increased cut: %v → %v", r, prev, cur)
		}
		if moved == 0 {
			break
		}
		prev = cur
	}
}

func TestEngineBalanceInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 150, 4, seed)
		a := graph.HashAssignment(g, servers(3))
		opts := DefaultOptions()
		opts.ImbalanceTolerance = 10
		startImb := a.Imbalance()
		e := NewEngine(opts, g, a, seed+2)
		e.RunToConvergence(40)
		// Each exchange keeps its pair within δ; across 3 servers the
		// global max−min can drift to (n−1)·δ.
		endImb := a.Imbalance()
		limit := 2 * opts.ImbalanceTolerance
		if startImb > limit {
			limit = startImb
		}
		return endImb <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCooldownRejects(t *testing.T) {
	g := graph.Cliques(4, 6, 1)
	a := graph.HashAssignment(g, servers(2))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 6
	e := NewEngine(opts, g, a, 3)
	// Two immediate rounds: the second round's exchanges should hit
	// cooldowns (window = 1 minute, both rounds at t≈0).
	m1 := e.Round(time.Second)
	_ = e.Round(2 * time.Second)
	if m1 == 0 {
		t.Fatal("first round should migrate something")
	}
	if e.Rejected == 0 && e.Exchanges > 1 {
		t.Error("expected cooldown rejections on immediate re-exchange")
	}
}

func TestEngineWithMonitorsConverges(t *testing.T) {
	g := graph.Cliques(6, 6, 3)
	a := graph.HashAssignment(g, servers(3))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 6
	e := NewEngine(opts, g, a, 4)
	e.EnableMonitors(512)
	now := time.Duration(0)
	for r := 0; r < 40; r++ {
		e.FeedMonitors(10) // one statistics epoch of traffic
		now += e.RejectWindow + time.Second
		if e.Round(now) == 0 && r > 2 {
			break
		}
	}
	rf := graph.RemoteFraction(g, a)
	// The protocol converges to a *locally* optimal partition (Theorem 1):
	// consolidating the last split clique can require a group move the
	// single-vertex greedy never starts, so demand a large reduction from
	// the 83% baseline rather than zero.
	if rf > 0.25 {
		t.Errorf("remote fraction with sampled monitors = %v, want < 0.25", rf)
	}
	if !LocallyOptimal(opts, g, a) {
		t.Error("engine stopped at a non-locally-optimal partition")
	}
}

func TestEngineSampledMonitorsSmallCapacity(t *testing.T) {
	// Capacity far below the edge count: the heavy clique edges must still
	// dominate and drive co-location.
	g := graph.NoisyCliques(6, 6, 10, 0.2, 100, 13)
	a := graph.HashAssignment(g, servers(3))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 8
	base := graph.RemoteFraction(g, a)
	e := NewEngine(opts, g, a, 19)
	e.EnableMonitors(64) // << 190 heavy + 100 noise edges
	now := time.Duration(0)
	for r := 0; r < 60; r++ {
		e.FeedMonitors(10)
		now += e.RejectWindow + time.Second
		e.Round(now)
	}
	rf := graph.RemoteFraction(g, a)
	if rf >= base {
		t.Errorf("sampled engine failed to improve: %.3f → %.3f", base, rf)
	}
	if rf > 0.5*base {
		t.Errorf("sampled engine improvement too weak: %.3f → %.3f", base, rf)
	}
}

func TestEngineDynamicGraphAdapts(t *testing.T) {
	// Start with cliques {0..3},{4..7},... then rewire half the cliques to
	// new groupings; the engine must chase the change (the paper's central
	// claim vs static placement, §3).
	g := graph.Cliques(4, 4, 5)
	a := graph.HashAssignment(g, servers(2))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 4
	e := NewEngine(opts, g, a, 29)
	e.RunToConvergence(50)
	if cut := graph.CutCost(g, a); cut != 0 {
		t.Fatalf("phase 1 cut = %v", cut)
	}
	// Phase 2: dissolve cliques 0 and 1; members re-pair across old lines.
	g2 := graph.New()
	for _, eo := range g.Edges() {
		if int(eo.U)/4 >= 2 { // keep cliques 2,3
			g2.AddEdge(eo.U, eo.V, eo.Weight)
		}
	}
	for i := 0; i < 4; i++ { // new pairs (0,4),(1,5),(2,6),(3,7)
		g2.AddEdge(graph.Vertex(i), graph.Vertex(i+4), 5)
	}
	e2 := NewEngine(opts, g2, a, 31)
	e2.RunToConvergence(50)
	if cut := graph.CutCost(g2, a); cut != 0 {
		t.Errorf("after rewiring, cut = %v, want 0", cut)
	}
}

func TestOneSidedRoundMovesAndImbalances(t *testing.T) {
	// All 12 satellite vertices are attracted to hub server 1; one-sided
	// migration dumps them all there, demonstrating the imbalance failure
	// mode the paper describes (§4.1 "Design alternatives").
	g := graph.New()
	hub := graph.Vertex(999)
	a := graph.NewAssignment(0, 1, 2)
	a.Place(hub, 1)
	for i := 0; i < 12; i++ {
		g.AddEdge(graph.Vertex(i), hub, 5)
		a.Place(graph.Vertex(i), graph.ServerID(i%3))
	}
	opts := DefaultOptions()
	moved := OneSidedRound(opts, g, a)
	if moved == 0 {
		t.Fatal("one-sided round should migrate")
	}
	if a.Count(1) <= 5 {
		t.Errorf("expected pile-up on hub server, counts: %v", a)
	}
	// The pairwise engine under the same pressure respects δ.
	g2 := graph.New()
	a2 := graph.NewAssignment(0, 1, 2)
	a2.Place(hub, 1)
	for i := 0; i < 12; i++ {
		g2.AddEdge(graph.Vertex(i), hub, 5)
		a2.Place(graph.Vertex(i), graph.ServerID(i%3))
	}
	optsB := DefaultOptions()
	optsB.ImbalanceTolerance = 3
	e := NewEngine(optsB, g2, a2, 1)
	e.RunToConvergence(20)
	if imb := a2.Imbalance(); imb > 3 {
		t.Errorf("pairwise engine imbalance %d exceeds δ", imb)
	}
}

func TestJaBeJaReducesCutPreservesBalance(t *testing.T) {
	g := graph.Cliques(6, 4, 2)
	a := graph.RandomAssignment(g, servers(3), 37)
	counts := map[graph.ServerID]int{}
	for _, s := range a.Servers() {
		counts[s] = a.Count(s)
	}
	before := graph.CutCost(g, a)
	j := NewJaBeJa(g, a, 41)
	j.Run(500, 50)
	after := graph.CutCost(g, a)
	if after > before {
		t.Errorf("JaBeJa increased cut %v → %v", before, after)
	}
	if j.Swaps == 0 {
		t.Error("expected some swaps")
	}
	for _, s := range a.Servers() {
		if a.Count(s) != counts[s] {
			t.Errorf("JaBeJa changed population of %d: %d → %d", s, counts[s], a.Count(s))
		}
	}
}

func TestMultilevelQualityOnCliques(t *testing.T) {
	g := graph.Cliques(8, 8, 1)
	a := MultilevelPartition(g, servers(4), MultilevelOptions{})
	if a.NumVertices() != 64 {
		t.Fatalf("placed %d vertices", a.NumVertices())
	}
	cut := graph.CutCost(g, a)
	if cut > 0.1*g.TotalWeight() {
		t.Errorf("multilevel cut %v too high (total %v)", cut, g.TotalWeight())
	}
	if imb := a.Imbalance(); imb > 16 {
		t.Errorf("multilevel imbalance %d", imb)
	}
}

func TestMultilevelBeatsRandom(t *testing.T) {
	g := graph.NoisyCliques(10, 8, 5, 0.3, 200, 43)
	rnd := graph.RandomAssignment(g, servers(4), 47)
	ml := MultilevelPartition(g, servers(4), MultilevelOptions{})
	if graph.CutCost(g, ml) >= graph.CutCost(g, rnd) {
		t.Errorf("multilevel (%v) not better than random (%v)",
			graph.CutCost(g, ml), graph.CutCost(g, rnd))
	}
}

func TestPairwiseApproachesMultilevelQuality(t *testing.T) {
	// The distributed algorithm should land within ~2× of the centralized
	// quality ceiling on a structured graph.
	g := graph.NoisyCliques(8, 8, 5, 0.2, 100, 53)
	a := graph.HashAssignment(g, servers(4))
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 8
	e := NewEngine(opts, g, a, 61)
	e.RunToConvergence(100)
	pairwise := graph.CutCost(g, a)
	ml := MultilevelPartition(g, servers(4), MultilevelOptions{})
	ceiling := graph.CutCost(g, ml)
	if pairwise > 2*ceiling+1 {
		t.Errorf("pairwise cut %v far above centralized %v", pairwise, ceiling)
	}
}

func TestSizeAwareExchangePrefersSmallActors(t *testing.T) {
	// Two candidates with equal raw score; the size-aware mode must prefer
	// the small one when balance only allows one move.
	g := graph.New()
	hub := graph.Vertex(50)
	g.AddEdge(10, hub, 6) // big actor
	g.AddEdge(11, hub, 6) // small actor
	a := graph.NewAssignment(0, 1)
	a.Place(10, 0)
	a.Place(11, 0)
	a.Place(hub, 1)
	a.Place(51, 1)
	sizes := map[graph.Vertex]float64{10: 4, 11: 1, hub: 1, 51: 1}
	opts := DefaultOptions()
	opts.SizeAware = true
	opts.Sizes = func(v graph.Vertex) float64 { return sizes[v] }
	opts.ImbalanceTolerance = 2
	local := a.VerticesOn(0)
	props := SelectCandidates(opts, GraphView{G: g}, a, 0, local, len(local))
	if len(props) != 1 {
		t.Fatalf("props = %+v", props)
	}
	if props[0].Candidates[0].V != 11 {
		t.Fatalf("size-aware ranking should put small actor first, got %v", props[0].Candidates[0].V)
	}
}

func TestMonitorSnapshotSymmetry(t *testing.T) {
	m := NewMonitor(16)
	m.ObserveMessage(1, 2, 5)
	m.ObserveMessage(2, 1, 3)
	snap := m.Snapshot()
	var w12, w21 float64
	snap.VertexEdges(1, func(u graph.Vertex, w float64) {
		if u == 2 {
			w12 = w
		}
	})
	snap.VertexEdges(2, func(u graph.Vertex, w float64) {
		if u == 1 {
			w21 = w
		}
	})
	if w12 != 8 || w21 != 8 {
		t.Fatalf("snapshot weights %v/%v, want 8/8", w12, w21)
	}
	if m.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", m.EdgeCount())
	}
}

func TestMonitorForgetVertex(t *testing.T) {
	m := NewMonitor(16)
	m.ObserveMessage(1, 2, 5)
	m.ObserveMessage(1, 3, 5)
	m.ObserveMessage(2, 3, 5)
	m.ForgetVertex(1)
	if m.EdgeCount() != 1 {
		t.Fatalf("EdgeCount after forget = %d, want 1", m.EdgeCount())
	}
	snap := m.Snapshot()
	if vs := snap.Vertices(); len(vs) != 2 {
		t.Fatalf("vertices after forget: %v", vs)
	}
}

func TestMonitorSelfMessageIgnored(t *testing.T) {
	m := NewMonitor(4)
	m.ObserveMessage(7, 7, 100)
	if m.EdgeCount() != 0 {
		t.Fatal("self-messages must not create edges")
	}
}

func TestMonitorDecay(t *testing.T) {
	m := NewMonitor(4)
	m.ObserveMessage(1, 2, 100)
	m.Decay()
	snap := m.Snapshot()
	var w float64
	snap.VertexEdges(1, func(u graph.Vertex, ww float64) { w = ww })
	if math.Abs(w-50) > 1e-9 {
		t.Fatalf("decayed weight = %v, want 50", w)
	}
}

// TestEngineImbalancedStartDeadlock documents a property of the paper's
// protocol: only positive-score (cost-reducing) migrations happen, so a
// heavily imbalanced start whose cost gradient points toward the big server
// is NOT rebalanced — the protocol relies on the placement policy (random)
// keeping populations near-equal, and only refines locality from there (§3,
// §4.1).
func TestEngineImbalancedStartDeadlock(t *testing.T) {
	g := graph.Cliques(4, 6, 1)
	a := graph.NewAssignment(0, 1)
	// 17 vertices on server 0, 7 on server 1, majority of every clique on 0.
	vs := g.Vertices()
	for i, v := range vs {
		if i%4 == 3 {
			a.Place(v, 1)
		} else {
			a.Place(v, 0)
		}
	}
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 2
	e := NewEngine(opts, g, a, 3)
	e.RunToConvergence(10)
	// Minority members migrate 1→0 only while balance admits; the big
	// server never sheds actors because all its gradients are negative.
	if a.Count(0) < 17 {
		t.Errorf("server 0 shed actors against its cost gradient: %v", a)
	}
}

// TestConvergedStateIsLocallyOptimal checks the Theorem 1 postcondition on
// oracle-view runs across several random instances.
func TestConvergedStateIsLocallyOptimal(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.NoisyCliques(5, 6, 4, 0.5, 30, seed)
		a := graph.HashAssignment(g, servers(3))
		opts := DefaultOptions()
		opts.ImbalanceTolerance = 6
		e := NewEngine(opts, g, a, seed)
		e.RunToConvergence(100)
		if !LocallyOptimal(opts, g, a) {
			t.Errorf("seed %d: converged state not locally optimal", seed)
		}
	}
}

func TestLocallyOptimalDetectsImprovableState(t *testing.T) {
	g := graph.Cliques(2, 4, 1)
	a := graph.NewAssignment(0, 1)
	// Split both cliques 2/2 — clearly improvable within balance.
	for i, v := range g.Vertices() {
		a.Place(v, graph.ServerID(i%2))
	}
	opts := DefaultOptions()
	opts.ImbalanceTolerance = 4
	if LocallyOptimal(opts, g, a) {
		t.Fatal("split cliques reported locally optimal")
	}
}
