package partition

import (
	"actop/internal/graph"
	"actop/internal/sampling"
)

// edgeKey canonically identifies an undirected edge (A < B).
type edgeKey struct{ A, B graph.Vertex }

func canonical(u, v graph.Vertex) edgeKey {
	if u < v {
		return edgeKey{A: u, B: v}
	}
	return edgeKey{A: v, B: u}
}

// Monitor is one server's partial view of the communication graph: a
// Space-Saving summary over the stream of messages to/from local actors
// (§4.3, "Edge sampling" + "Gathering edge statistics"). It retains only the
// heaviest edges in constant space; light edges never enter candidate sets,
// so dropping them does not change the algorithm's decisions.
//
// Monitor is not safe for concurrent use; the runtime funnels updates from a
// single thread, exactly as the paper's implementation does after its lock-
// contention lesson.
type Monitor struct {
	summary *sampling.SpaceSaving[edgeKey]
}

// NewMonitor creates a monitor retaining at most capacity heavy edges.
func NewMonitor(capacity int) *Monitor {
	return &Monitor{summary: sampling.NewSpaceSaving[edgeKey](capacity)}
}

// ObserveMessage records count messages between two actors (direction does
// not matter for the cost model; both directions accumulate onto the same
// undirected edge).
func (m *Monitor) ObserveMessage(from, to graph.Vertex, count uint64) {
	if from == to {
		return
	}
	m.summary.Observe(canonical(from, to), count)
}

// Decay applies exponential forgetting so stale heavy edges fade as the
// communication graph changes. Call once per statistics epoch.
func (m *Monitor) Decay() { m.summary.Decay() }

// ForgetVertex drops all monitored edges incident to v (used when an actor
// deactivates or migrates away and its statistics move with it).
func (m *Monitor) ForgetVertex(v graph.Vertex) {
	for _, e := range m.summary.Entries() {
		if e.Key.A == v || e.Key.B == v {
			m.summary.Forget(e.Key)
		}
	}
}

// EdgeCount reports the number of monitored edges.
func (m *Monitor) EdgeCount() int { return m.summary.Len() }

// TotalObserved reports the total message weight observed.
func (m *Monitor) TotalObserved() uint64 { return m.summary.Total() }

// Snapshot materializes the summary into an adjacency view for one
// partitioning round. The snapshot is O(k) to build and supports O(deg)
// per-vertex edge iteration, which SelectCandidates needs.
func (m *Monitor) Snapshot() *MonitorSnapshot {
	adj := make(map[graph.Vertex]map[graph.Vertex]float64)
	add := func(a, b graph.Vertex, w float64) {
		nb := adj[a]
		if nb == nil {
			nb = make(map[graph.Vertex]float64)
			adj[a] = nb
		}
		nb[b] += w
	}
	for _, e := range m.summary.Entries() {
		w := float64(e.Count)
		add(e.Key.A, e.Key.B, w)
		add(e.Key.B, e.Key.A, w)
	}
	return &MonitorSnapshot{adj: adj}
}

// MonitorSnapshot is an immutable adjacency view over a monitor's heavy
// edges. It implements EdgeView.
type MonitorSnapshot struct {
	adj map[graph.Vertex]map[graph.Vertex]float64
}

// VertexEdges implements EdgeView.
func (s *MonitorSnapshot) VertexEdges(v graph.Vertex, fn func(u graph.Vertex, w float64)) {
	for u, w := range s.adj[v] {
		fn(u, w)
	}
}

// Vertices returns the vertices with at least one monitored edge.
func (s *MonitorSnapshot) Vertices() []graph.Vertex {
	vs := make([]graph.Vertex, 0, len(s.adj))
	for v := range s.adj {
		vs = append(vs, v)
	}
	return vs
}
