// Package partition implements ActOp's locality-aware actor partitioning
// (§4): the balanced graph-partitioning objective, per-vertex transfer
// scores, candidate-set selection, the pairwise coordination protocol
// (Algorithm 1) with its greedy two-heap exchange-subset procedure, and the
// baselines the paper compares against (random/one-sided/Ja-Be-Ja-style/
// centralized multilevel).
//
// The protocol pieces are pure functions over explicit request/response
// values so that the same code drives the discrete-event cluster simulator,
// the real actor runtime, and the unit tests.
package partition

import (
	"sort"

	"actop/internal/graph"
)

// Options configures the partitioning algorithm.
type Options struct {
	// CandidateSetSize is k — the maximum number of vertices offered in one
	// exchange. Bounding k bounds migration churn per round (§4.1).
	CandidateSetSize int
	// ImbalanceTolerance is δ — the allowed difference in vertex population
	// between any two servers (§4.1).
	ImbalanceTolerance int
	// MinScore is the minimum positive transfer score for a vertex to be
	// considered for migration. Slightly above zero avoids ping-ponging
	// vertices with near-zero benefit under a sampled, drifting graph.
	MinScore float64
	// SizeAware enables the §4.2 extension: transfer scores are divided by
	// the actor's size so that cheap-to-move actors migrate first, and the
	// balance constraint is interpreted over total size.
	SizeAware bool
	// Sizes reports an actor's size when SizeAware is set; nil means size 1.
	Sizes func(v graph.Vertex) float64
}

// DefaultOptions mirror the prototype's configuration: small candidate sets,
// a loose-but-bounded balance tolerance.
func DefaultOptions() Options {
	return Options{
		CandidateSetSize:   64,
		ImbalanceTolerance: 16,
		MinScore:           1e-9,
	}
}

func (o Options) size(v graph.Vertex) float64 {
	if !o.SizeAware || o.Sizes == nil {
		return 1
	}
	return o.Sizes(v)
}

// EdgeView exposes the (possibly sampled, possibly stale) communication
// edges known to one server. Both the Space-Saving monitor and the oracle
// full graph implement it.
type EdgeView interface {
	// VertexEdges calls fn with every known edge incident to v.
	VertexEdges(v graph.Vertex, fn func(u graph.Vertex, w float64))
}

// Locator answers which server hosts a vertex. graph.Assignment implements
// it; the runtime's placement directory implements it too.
type Locator interface {
	Server(v graph.Vertex) (graph.ServerID, bool)
}

// Candidate is one vertex offered for migration, with enough of its sampled
// edge list for the receiving server to (re)score it and to run the pairwise
// update steps of the greedy exchange.
type Candidate struct {
	V graph.Vertex
	// Edges is the sampled heavy-edge list incident to V, as known by the
	// offering server.
	Edges map[graph.Vertex]float64
	// HomeWeight is Σ w(V,u) over u currently on the offering server.
	HomeWeight float64
	// TargetWeight is Σ w(V,u) over u on the target server, per the
	// offering server's sample. The receiver recomputes this from its own
	// view when possible.
	TargetWeight float64
	// Size is the actor's size (1 unless Options.SizeAware).
	Size float64
}

// Score is the transfer score R_{p,q}(v) of the candidate: the cost
// reduction expected from migrating V from its home to the target
// (§4.2, "Determining the candidate set").
func (c Candidate) Score() float64 { return c.TargetWeight - c.HomeWeight }

// TransferScore computes R_{p,q}(v) = Σ_{u∈Vq} w(v,u) − Σ_{u∈Vp} w(v,u)
// using view for edges and loc for membership. p is v's home server and q
// the candidate target.
func TransferScore(view EdgeView, loc Locator, v graph.Vertex, p, q graph.ServerID) float64 {
	var toQ, toP float64
	view.VertexEdges(v, func(u graph.Vertex, w float64) {
		s, ok := loc.Server(u)
		if !ok {
			return
		}
		switch s {
		case q:
			toQ += w
		case p:
			toP += w
		}
	})
	return toQ - toP
}

// Proposal is the outcome of candidate selection at server p: the best
// target server and the candidate set S to offer it.
type Proposal struct {
	From, To   graph.ServerID
	Candidates []Candidate
	// TotalScore is the summed transfer score of Candidates — p's
	// anticipated cost reduction (used to rank target servers).
	TotalScore float64
	// FromPopulation is |Vp| at proposal time, so the receiver can evaluate
	// the balance constraint.
	FromPopulation int
}

// targetRank accumulates, per remote server, the best candidates found.
type targetRank struct {
	candidates []Candidate
	total      float64
}

// SelectCandidates scans p's local vertices and computes, for every remote
// server q, the top-k candidate set by transfer score; it returns proposals
// for every server with positive total score, best first. localVertices
// must be the vertices currently homed on p.
func SelectCandidates(opts Options, view EdgeView, loc Locator, p graph.ServerID,
	localVertices []graph.Vertex, population int) []Proposal {

	perTarget := make(map[graph.ServerID]*targetRank)
	for _, v := range localVertices {
		// One pass over v's edges accumulates weight per remote server and
		// the local weight — O(deg(v)) instead of O(n·deg(v)).
		var toHome float64
		toRemote := make(map[graph.ServerID]float64)
		edges := make(map[graph.Vertex]float64)
		view.VertexEdges(v, func(u graph.Vertex, w float64) {
			edges[u] = w
			s, ok := loc.Server(u)
			if !ok {
				return
			}
			if s == p {
				toHome += w
			} else {
				toRemote[s] += w
			}
		})
		for q, toQ := range toRemote {
			score := toQ - toHome
			size := opts.size(v)
			if opts.SizeAware && size > 0 {
				score /= size
			}
			if score <= opts.MinScore {
				continue
			}
			tr := perTarget[q]
			if tr == nil {
				tr = &targetRank{}
				perTarget[q] = tr
			}
			tr.candidates = append(tr.candidates, Candidate{
				V: v, Edges: edges, HomeWeight: toHome, TargetWeight: toQ, Size: size,
			})
		}
	}

	// adjScore is the ranking score: size-normalized when SizeAware.
	adjScore := func(c Candidate) float64 {
		s := c.Score()
		if opts.SizeAware && c.Size > 0 {
			s /= c.Size
		}
		return s
	}
	proposals := make([]Proposal, 0, len(perTarget))
	for q, tr := range perTarget {
		// Keep the k best by score.
		sort.Slice(tr.candidates, func(i, j int) bool {
			si, sj := adjScore(tr.candidates[i]), adjScore(tr.candidates[j])
			if si != sj {
				return si > sj
			}
			return tr.candidates[i].V < tr.candidates[j].V // deterministic tie-break
		})
		if len(tr.candidates) > opts.CandidateSetSize {
			tr.candidates = tr.candidates[:opts.CandidateSetSize]
		}
		tr.total = 0
		for _, c := range tr.candidates {
			tr.total += c.Score()
		}
		proposals = append(proposals, Proposal{
			From: p, To: q, Candidates: tr.candidates,
			TotalScore: tr.total, FromPopulation: population,
		})
	}
	sort.Slice(proposals, func(i, j int) bool {
		if proposals[i].TotalScore != proposals[j].TotalScore {
			return proposals[i].TotalScore > proposals[j].TotalScore
		}
		return proposals[i].To < proposals[j].To
	})
	return proposals
}

// GraphView adapts a full *graph.Graph to the EdgeView interface — the
// oracle view used by tests and by the centralized baselines.
type GraphView struct{ G *graph.Graph }

// VertexEdges implements EdgeView.
func (gv GraphView) VertexEdges(v graph.Vertex, fn func(u graph.Vertex, w float64)) {
	gv.G.Neighbors(v, fn)
}
