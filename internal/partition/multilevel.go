package partition

import (
	"sort"

	"actop/internal/graph"
)

// Multilevel is the centralized baseline standing in for METIS (§4.1 rules
// it out for ActOp's setting: it needs the whole graph in one place and is
// far too slow for rapidly changing graphs, but it provides a quality
// ceiling to compare the distributed algorithm against).
//
// The implementation follows the classic multilevel scheme (Karypis &
// Kumar): coarsen by heavy-edge matching, partition the coarsest graph
// greedily, then uncoarsen with Kernighan–Lin-style boundary refinement at
// every level.

// MultilevelOptions configures the centralized partitioner.
type MultilevelOptions struct {
	// CoarsenTo stops coarsening when at most this many super-vertices
	// remain (default 64).
	CoarsenTo int
	// RefinePasses bounds KL refinement passes per level (default 4).
	RefinePasses int
	// ImbalanceTolerance is δ over vertex counts (default 1 per size ratio).
	ImbalanceTolerance int
}

type mlLevel struct {
	g      *graph.Graph
	size   map[graph.Vertex]int          // super-vertex weights
	parent map[graph.Vertex]graph.Vertex // fine vertex → coarse vertex (next level)
}

// MultilevelPartition partitions g across the given servers, returning a
// fresh assignment.
func MultilevelPartition(g *graph.Graph, servers []graph.ServerID, opts MultilevelOptions) *graph.Assignment {
	if opts.CoarsenTo <= 0 {
		opts.CoarsenTo = 64
	}
	if opts.RefinePasses <= 0 {
		opts.RefinePasses = 4
	}
	if opts.ImbalanceTolerance <= 0 {
		opts.ImbalanceTolerance = 1
	}
	if opts.CoarsenTo < 4*len(servers) {
		opts.CoarsenTo = 4 * len(servers)
	}

	// Phase 1: coarsen.
	levels := []mlLevel{{g: g, size: unitSizes(g)}}
	for levels[len(levels)-1].g.NumVertices() > opts.CoarsenTo {
		cur := &levels[len(levels)-1]
		next, parent, progressed := coarsen(cur.g, cur.size)
		if !progressed {
			break
		}
		cur.parent = parent
		levels = append(levels, next)
	}

	// Phase 2: initial partition of the coarsest level by greedy size-
	// balanced placement of super-vertices in descending size order, biased
	// toward the server already holding the heaviest neighbors.
	coarse := levels[len(levels)-1]
	assign := greedyInitial(coarse.g, coarse.size, servers)

	// Phase 3: uncoarsen + refine.
	refine(coarse.g, coarse.size, assign, servers, opts)
	for li := len(levels) - 2; li >= 0; li-- {
		lvl := levels[li]
		fine := graph.NewAssignment(servers...)
		for _, v := range lvl.g.Vertices() {
			coarseV := lvl.parent[v]
			s, _ := assign.Server(coarseV)
			fine.Place(v, s)
		}
		assign = fine
		refine(lvl.g, lvl.size, assign, servers, opts)
	}
	return assign
}

func unitSizes(g *graph.Graph) map[graph.Vertex]int {
	m := make(map[graph.Vertex]int, g.NumVertices())
	for _, v := range g.Vertices() {
		m[v] = 1
	}
	return m
}

// coarsen contracts a heavy-edge matching. Returns the coarser level, the
// fine→coarse map, and whether any contraction happened.
func coarsen(g *graph.Graph, size map[graph.Vertex]int) (mlLevel, map[graph.Vertex]graph.Vertex, bool) {
	matched := make(map[graph.Vertex]graph.Vertex) // fine → coarse id
	used := make(map[graph.Vertex]bool)
	progressed := false

	// Visit vertices in deterministic order; match each unmatched vertex
	// with its heaviest unmatched neighbor.
	for _, v := range g.Vertices() {
		if used[v] {
			continue
		}
		var best graph.Vertex
		bestW := -1.0
		g.Neighbors(v, func(u graph.Vertex, w float64) {
			if !used[u] && u != v && w > bestW {
				best, bestW = u, w
			}
		})
		used[v] = true
		if bestW > 0 {
			used[best] = true
			matched[v] = v // coarse vertex reuses the smaller id
			matched[best] = v
			progressed = true
		} else {
			matched[v] = v
		}
	}
	if !progressed {
		return mlLevel{}, nil, false
	}

	cg := graph.New()
	csize := make(map[graph.Vertex]int)
	for fine, coarse := range matched {
		cg.AddVertex(coarse)
		csize[coarse] += size[fine]
	}
	for _, e := range g.Edges() {
		cu, cv := matched[e.U], matched[e.V]
		if cu != cv {
			cg.AddEdge(cu, cv, e.Weight)
		}
	}
	return mlLevel{g: cg, size: csize}, matched, true
}

// greedyInitial places super-vertices (largest first) on the least-loaded
// admissible server, preferring the server that already hosts the heaviest
// adjacent weight.
func greedyInitial(g *graph.Graph, size map[graph.Vertex]int, servers []graph.ServerID) *graph.Assignment {
	a := graph.NewAssignment(servers...)
	load := make(map[graph.ServerID]int, len(servers))

	vs := g.Vertices()
	sort.Slice(vs, func(i, j int) bool {
		if size[vs[i]] != size[vs[j]] {
			return size[vs[i]] > size[vs[j]]
		}
		return vs[i] < vs[j]
	})
	for _, v := range vs {
		// Affinity per server.
		aff := make(map[graph.ServerID]float64)
		g.Neighbors(v, func(u graph.Vertex, w float64) {
			if s, ok := a.Server(u); ok {
				aff[s] += w
			}
		})
		minLoad := 1 << 60
		for _, s := range servers {
			if load[s] < minLoad {
				minLoad = load[s]
			}
		}
		// Among servers within one super-vertex of the minimum load, pick
		// the one with the highest affinity.
		best := servers[0]
		bestAff := -1.0
		for _, s := range servers {
			if load[s] > minLoad+size[v] {
				continue
			}
			if aff[s] > bestAff {
				best, bestAff = s, aff[s]
			}
		}
		a.Place(v, best)
		load[best] += size[v]
	}
	return a
}

// refine runs KL-style single-vertex boundary refinement: repeatedly move
// the vertex with the largest positive gain to its best server, while
// keeping size loads within tolerance.
func refine(g *graph.Graph, size map[graph.Vertex]int, a *graph.Assignment,
	servers []graph.ServerID, opts MultilevelOptions) {

	load := make(map[graph.ServerID]int, len(servers))
	for _, v := range g.Vertices() {
		s, _ := a.Server(v)
		load[s] += size[v]
	}
	total := 0
	for _, s := range servers {
		total += load[s]
	}
	maxLoad := total/len(servers) + opts.ImbalanceTolerance

	for pass := 0; pass < opts.RefinePasses; pass++ {
		improved := false
		for _, v := range g.Vertices() {
			home, _ := a.Server(v)
			aff := make(map[graph.ServerID]float64)
			g.Neighbors(v, func(u graph.Vertex, w float64) {
				if s, ok := a.Server(u); ok {
					aff[s] += w
				}
			})
			bestGain := 0.0
			bestS := home
			for s, w := range aff {
				if s == home {
					continue
				}
				gain := w - aff[home]
				if gain > bestGain && load[s]+size[v] <= maxLoad {
					bestGain, bestS = gain, s
				}
			}
			if bestS != home {
				a.Place(v, bestS)
				load[home] -= size[v]
				load[bestS] += size[v]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}
