package partition_test

import (
	"fmt"

	"actop/internal/graph"
	"actop/internal/partition"
)

func Example() {
	// Four tightly-knit "games" of six actors, scattered round-robin over
	// two servers; the distributed pairwise protocol co-locates them.
	g := graph.Cliques(4, 6, 1)
	a := graph.HashAssignment(g, []graph.ServerID{0, 1})
	fmt.Printf("before: %.0f%% of traffic crosses servers\n", 100*graph.RemoteFraction(g, a))

	opts := partition.DefaultOptions()
	opts.ImbalanceTolerance = 6
	engine := partition.NewEngine(opts, g, a, 1)
	engine.RunToConvergence(50)

	fmt.Printf("after:  %.0f%% of traffic crosses servers\n", 100*graph.RemoteFraction(g, a))
	fmt.Println("balanced:", a.Imbalance() <= opts.ImbalanceTolerance)
	// Output:
	// before: 60% of traffic crosses servers
	// after:  0% of traffic crosses servers
	// balanced: true
}
