package hotspot

import (
	"fmt"
	"sync"
	"testing"
)

// hash gives tests a stable, well-spread key per actor index.
func hash(i int) uint64 {
	x := uint64(i) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func TestTopRanksByCost(t *testing.T) {
	p := New(64)
	// 100 background actors with one cheap turn each, one hot actor with
	// heavy traffic: the hot actor must rank first despite evictions.
	for i := 0; i < 100; i++ {
		p.ObserveTurns(hash(i), "bg", fmt.Sprint(i), 1, 1000, 0, 10)
	}
	for i := 0; i < 50; i++ {
		p.ObserveTurns(hash(9999), "hot", "celebrity", 4, 400_000, 2000, 512)
	}
	top := p.Top(5)
	if len(top) != 5 {
		t.Fatalf("Top(5) returned %d entries", len(top))
	}
	if top[0].Actor != "hot/celebrity" {
		t.Fatalf("rank 1 = %+v, want hot/celebrity", top[0])
	}
	if top[0].Turns == 0 || top[0].ExecNs == 0 || top[0].BytesIn == 0 {
		t.Fatalf("stats not accumulated: %+v", top[0])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cost > top[i-1].Cost {
			t.Fatalf("not cost-descending at %d: %v then %v", i, top[i-1].Cost, top[i].Cost)
		}
	}
}

func TestBoundedMemoryAndErrorBound(t *testing.T) {
	p := New(32)
	if p.K() < 32 {
		t.Fatalf("K() = %d", p.K())
	}
	// Far more distinct actors than capacity: residency stays bounded and
	// evicted-slot reuse carries a non-zero error bound.
	for i := 0; i < 10_000; i++ {
		p.ObserveTurns(hash(i), "a", fmt.Sprint(i), 1, 2048, 0, 0)
	}
	if got := p.Tracked(); got > p.K() {
		t.Fatalf("Tracked() = %d > K %d", got, p.K())
	}
	var sawErr bool
	for _, e := range p.Top(0) {
		if e.Err > 0 {
			sawErr = true
		}
		if e.Err > e.Cost {
			t.Fatalf("error bound exceeds cost: %+v", e)
		}
	}
	if !sawErr {
		t.Fatal("no entry carries an eviction error bound after heavy churn")
	}
}

func TestOutAndMigrationOnlyTouchTracked(t *testing.T) {
	p := New(32)
	p.ObserveOut(hash(1), 5, 500)   // untracked: ignored
	p.ObserveMigration(hash(1))     // untracked: ignored
	if got := p.Tracked(); got != 0 {
		t.Fatalf("outbound-only observation admitted an actor: Tracked=%d", got)
	}
	p.ObserveTurns(hash(1), "t", "k", 1, 0, 0, 0)
	p.ObserveOut(hash(1), 3, 300)
	p.ObserveMigration(hash(1))
	top := p.Top(1)
	if top[0].CallsOut != 3 || top[0].BytesOut != 300 || top[0].Migrations != 1 {
		t.Fatalf("tracked stats wrong: %+v", top[0])
	}
}

func TestDecayHalves(t *testing.T) {
	p := New(32)
	p.ObserveTurns(hash(1), "t", "k", 8, 8<<10, 400, 100)
	before := p.Top(1)[0]
	p.Decay()
	after := p.Top(1)[0]
	if after.Cost != before.Cost/2 || after.Turns != before.Turns/2 {
		t.Fatalf("decay: before %+v after %+v", before, after)
	}
	if p.TotalCost() != after.Cost {
		t.Fatalf("TotalCost = %d, want %d", p.TotalCost(), after.Cost)
	}
}

// TestConcurrent hammers every method from many goroutines — meaningful
// under -race, and checks the heap/map stay consistent.
func TestConcurrent(t *testing.T) {
	p := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h := hash(i % 300)
				p.ObserveTurns(h, "t", fmt.Sprint(i%300), 1, uint64(i), 1, 8)
				if i%7 == 0 {
					p.ObserveOut(h, 1, 16)
				}
				if i%31 == 0 {
					p.ObserveMigration(h)
				}
				if i%101 == 0 {
					p.Top(10)
					p.Decay()
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Tracked() > p.K() {
		t.Fatalf("Tracked %d > K %d", p.Tracked(), p.K())
	}
	// Heap invariant holds after the storm.
	for i := range p.stripes {
		st := &p.stripes[i]
		for j, e := range st.heap {
			if e.idx != j {
				t.Fatalf("stripe %d: heap[%d].idx = %d", i, j, e.idx)
			}
			if parent := (j - 1) / 2; j > 0 && st.heap[parent].cost > e.cost {
				t.Fatalf("stripe %d: heap order violated at %d", i, j)
			}
			if st.byID[e.hash] != e {
				t.Fatalf("stripe %d: map/heap divergence at %d", i, j)
			}
		}
	}
}
