// Package hotspot is the per-actor heavy-hitter profiler: per-turn cost
// observations (execution time, mailbox wait, call and byte counts,
// migrations) folded into a bounded Space-Saving top-K sketch, so a node
// hosting a million activations tracks its hottest actors in O(K) memory.
//
// The sketch is striped: observations hash to one of stripeCount
// independent stripes (each a mutex, a map, and a min-heap by cost), so
// concurrent worker-stage turns on different actors almost never contend.
// K is split evenly across stripes; the per-entry error bound of classic
// Space-Saving (Err ≤ total stripe cost / stripe capacity) applies per
// stripe, and every reported entry carries its own bound.
//
// Cost is the ranking weight: exec-microseconds plus one per turn, so both
// CPU-heavy actors and pure message-traffic actors register. Costs decay
// by halving on a fixed interval (Decay), making the table a "hot now"
// view rather than a lifetime total.
package hotspot

import (
	"sort"
	"sync"
)

// stripeCount stripes the sketch; a power of two so the stripe choice is a
// mask of the caller-provided ref hash.
const stripeCount = 16

// Stats is the per-actor accounting accumulated while an actor is tracked
// by the sketch. Turns doubles as the calls-in count (one turn per
// delivered invocation). All fields decay alongside the cost, so ratios
// (exec per turn, bytes per call) stay meaningful in the live view.
type Stats struct {
	Turns      uint64 `json:"turns"`
	ExecNs     uint64 `json:"exec_ns"`
	WaitNs     uint64 `json:"wait_ns"`
	CallsOut   uint64 `json:"calls_out"`
	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
	Migrations uint64 `json:"migrations"`
}

// Entry is one reported hot actor: the wire/JSON row of the local and
// cluster-wide tables. Cost is the decayed ranking weight; Err is the
// Space-Saving overestimate bound inherited at eviction (true cost is in
// [Cost-Err, Cost]). Node is filled by the actor layer when assembling
// cross-node tables.
type Entry struct {
	Node  string `json:"node,omitempty"`
	Actor string `json:"actor"`
	Cost  uint64 `json:"cost"`
	Err   uint64 `json:"err,omitempty"`
	Stats
}

// entry is the resident form, living in exactly one stripe's map and heap.
type entry struct {
	hash uint64
	name string
	cost uint64
	err  uint64
	st   Stats
	idx  int // position in the stripe's min-heap
}

// stripe is one independent Space-Saving instance.
type stripe struct {
	mu   sync.Mutex
	cap  int
	byID map[uint64]*entry
	heap []*entry // min-heap ordered by cost
}

// Profiler is the striped sketch. All methods are goroutine-safe.
type Profiler struct {
	k       int
	stripes [stripeCount]stripe
}

// New creates a profiler tracking about k actors total (split across
// stripes, minimum 8 per stripe).
func New(k int) *Profiler {
	if k < 1 {
		k = 1
	}
	per := k / stripeCount
	if per < 8 {
		per = 8
	}
	p := &Profiler{k: per * stripeCount}
	for i := range p.stripes {
		p.stripes[i] = stripe{
			cap:  per,
			byID: make(map[uint64]*entry, per),
			heap: make([]*entry, 0, per),
		}
	}
	return p
}

// K reports the total tracked-entry capacity.
func (p *Profiler) K() int { return p.k }

// turnCost is the ranking weight of a batch of turns: exec time in ~µs
// (ns >> 10) plus one per turn, so an actor that only shuffles tiny
// messages still accumulates weight proportional to its traffic.
func turnCost(turns, execNs uint64) uint64 { return execNs>>10 + turns }

// ObserveTurns folds one drained mailbox batch into the sketch: turns
// invocations of the actor identified by hash (the actor-layer ref hash),
// with their summed execution time, mailbox wait, and inbound payload
// bytes. typ and key name the actor; the display name is only materialized
// when the actor enters the sketch, so steady-state observations of
// already-tracked actors allocate nothing.
func (p *Profiler) ObserveTurns(hash uint64, typ, key string, turns, execNs, waitNs, bytesIn uint64) {
	delta := turnCost(turns, execNs)
	st := &p.stripes[hash&(stripeCount-1)]
	st.mu.Lock()
	e := st.byID[hash]
	if e == nil {
		if len(st.heap) < st.cap {
			e = &entry{hash: hash, name: typ + "/" + key, idx: len(st.heap)}
			st.heap = append(st.heap, e)
			st.byID[hash] = e
			st.siftUp(e.idx)
		} else {
			// Space-Saving eviction: the minimum-cost resident is replaced
			// and the newcomer inherits its cost as both floor and error
			// bound — the invariant that keeps true heavy hitters from
			// being displaced by a stream of one-off actors.
			e = st.heap[0]
			delete(st.byID, e.hash)
			e.hash, e.name = hash, typ+"/"+key
			e.err = e.cost
			e.st = Stats{}
			st.byID[hash] = e
		}
	}
	e.cost += delta
	e.st.Turns += turns
	e.st.ExecNs += execNs
	e.st.WaitNs += waitNs
	e.st.BytesIn += bytesIn
	st.siftDown(e.idx)
	st.mu.Unlock()
}

// ObserveOut charges outbound calls/bytes to an already-tracked actor.
// Untracked actors are ignored — outbound traffic alone never admits an
// actor (its own turns will, and admission from two sites would double the
// eviction churn on the heap).
func (p *Profiler) ObserveOut(hash uint64, calls, bytes uint64) {
	st := &p.stripes[hash&(stripeCount-1)]
	st.mu.Lock()
	if e := st.byID[hash]; e != nil {
		e.st.CallsOut += calls
		e.st.BytesOut += bytes
	}
	st.mu.Unlock()
}

// ObserveMigration counts a migration of an already-tracked actor
// (inbound or outbound — churn either way).
func (p *Profiler) ObserveMigration(hash uint64) {
	st := &p.stripes[hash&(stripeCount-1)]
	st.mu.Lock()
	if e := st.byID[hash]; e != nil {
		e.st.Migrations++
	}
	st.mu.Unlock()
}

// Decay halves every cost, error bound, and stat — the time-decay that
// turns lifetime totals into a rolling "hot now" view. Halving is
// monotone, so heap order is preserved and no re-heapify is needed.
func (p *Profiler) Decay() {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, e := range st.heap {
			e.cost >>= 1
			e.err >>= 1
			e.st.Turns >>= 1
			e.st.ExecNs >>= 1
			e.st.WaitNs >>= 1
			e.st.CallsOut >>= 1
			e.st.BytesIn >>= 1
			e.st.BytesOut >>= 1
			e.st.Migrations >>= 1
		}
		st.mu.Unlock()
	}
}

// Top reports the n highest-cost tracked actors, cost-descending (ties
// broken by name for deterministic output). n <= 0 means all.
func (p *Profiler) Top(n int) []Entry {
	out := make([]Entry, 0, 64)
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, e := range st.heap {
			out = append(out, Entry{Actor: e.name, Cost: e.cost, Err: e.err, Stats: e.st})
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Actor < out[j].Actor
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Tracked reports how many actors are currently resident in the sketch.
func (p *Profiler) Tracked() int {
	n := 0
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		n += len(st.heap)
		st.mu.Unlock()
	}
	return n
}

// TotalCost sums the resident decayed costs — the denominator for "share
// of node load" readings of individual entries.
func (p *Profiler) TotalCost() uint64 {
	var n uint64
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, e := range st.heap {
			n += e.cost
		}
		st.mu.Unlock()
	}
	return n
}

// --- min-heap by cost (manual sift, allocation-free) ---

func (st *stripe) siftUp(i int) {
	h := st.heap
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].cost <= h[i].cost {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		h[parent].idx, h[i].idx = parent, i
		i = parent
	}
}

func (st *stripe) siftDown(i int) {
	h := st.heap
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < len(h) && h[l].cost < h[min].cost {
			min = l
		}
		if r < len(h) && h[r].cost < h[min].cost {
			min = r
		}
		if min == i {
			return
		}
		h[min], h[i] = h[i], h[min]
		h[min].idx, h[i].idx = min, i
		i = min
	}
}
