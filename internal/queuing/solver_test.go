package queuing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeStage builds a model resembling an Orleans server: receiver, worker,
// sender (Fig. 2) at the given per-stage arrival rate.
func threeStage(lambda, eta float64) *Model {
	return &Model{
		Stages: []Stage{
			{Name: "receiver", Lambda: lambda, ServiceRate: 5000, Beta: 1.0},
			{Name: "worker", Lambda: lambda, ServiceRate: 2000, Beta: 0.9},
			{Name: "sender", Lambda: lambda, ServiceRate: 4000, Beta: 1.0},
		},
		Processors: 8,
		Eta:        eta,
	}
}

func TestMM1Latency(t *testing.T) {
	if got := MM1Latency(50, 100); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("MM1Latency = %v, want 0.02", got)
	}
	if !math.IsInf(MM1Latency(100, 100), 1) {
		t.Fatal("saturated queue should have infinite latency")
	}
	if !math.IsInf(MM1Latency(150, 100), 1) {
		t.Fatal("overloaded queue should have infinite latency")
	}
}

func TestMM1QueueLength(t *testing.T) {
	if got := MM1QueueLength(50, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("queue length at ρ=0.5 = %v, want 1", got)
	}
	if got := MM1QueueLength(90, 100); math.Abs(got-9) > 1e-9 {
		t.Fatalf("queue length at ρ=0.9 = %v, want 9", got)
	}
	if !math.IsInf(MM1QueueLength(100, 100), 1) {
		t.Fatal("queue length at ρ=1 should be infinite")
	}
	if !math.IsInf(MM1QueueLength(1, 0), 1) {
		t.Fatal("zero service rate should be infinite")
	}
}

func TestLatencyInfeasibleAllocation(t *testing.T) {
	m := threeStage(1000, 1e-4)
	// Worker stage needs ≥ 0.5 threads; give it 0.4.
	if !math.IsInf(m.Latency([]float64{1, 0.4, 1}), 1) {
		t.Fatal("unstable stage should make latency infinite")
	}
	if !math.IsInf(m.Latency([]float64{1, 1}), 1) {
		t.Fatal("wrong-length allocation should be infinite")
	}
}

func TestFeasibility(t *testing.T) {
	m := threeStage(1000, 1e-4)
	if !m.Feasible() {
		t.Fatal("moderate load should be feasible")
	}
	// Load that demands more CPU than 8 cores:
	// worker alone needs λ·β/s = λ·0.9/2000 cores → λ=20000 needs 9 cores.
	m2 := threeStage(20000, 1e-4)
	if m2.Feasible() {
		t.Fatalf("overload should be infeasible, demand = %v", m2.MinFeasibleCPU())
	}
	if _, err := Solve(m2); err != ErrInfeasible {
		t.Fatalf("Solve on overload: err = %v, want ErrInfeasible", err)
	}
}

// TestClosedFormStationarity checks that the Theorem 2 formula zeroes the
// unconstrained gradient of (∗): at t_i = λ/s + √(λ/(λtot·η·s)),
// ∂/∂t_i [λ_i/((µ_i−λ_i)λ_tot) + η·t_i] = 0.
func TestClosedFormStationarity(t *testing.T) {
	m := threeStage(1200, 2e-4)
	ts, err := ClosedForm(m)
	if err != nil {
		t.Fatal(err)
	}
	ltot := m.TotalLambda()
	for i, s := range m.Stages {
		d := s.ServiceRate*ts[i] - s.Lambda
		grad := -(s.Lambda*s.ServiceRate)/(ltot*d*d) + m.Eta
		if math.Abs(grad) > 1e-9 {
			t.Errorf("stage %d gradient at closed form = %v, want 0", i, grad)
		}
	}
}

// TestTheorem2MatchesGradient is the paper's Theorem 2 as a property test:
// when η ≥ ζ, the closed form and the constrained numerical optimum agree.
func TestTheorem2MatchesGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := &Model{Processors: 8}
		for i := 0; i < n; i++ {
			m.Stages = append(m.Stages, Stage{
				Lambda:      500 + rng.Float64()*2000,
				ServiceRate: 1000 + rng.Float64()*5000,
				Beta:        0.5 + rng.Float64()*0.5,
			})
		}
		if !m.Feasible() {
			continue
		}
		zeta, err := m.Zeta()
		if err != nil {
			t.Fatal(err)
		}
		m.Eta = zeta * (1.5 + rng.Float64()) // safely above ζ
		closed, err := ClosedForm(m)
		if err != nil {
			t.Fatal(err)
		}
		grad := projectedGradient(m)
		objClosed := m.Latency(closed)
		objGrad := m.Latency(grad)
		// The gradient solver must not beat the closed form materially,
		// and must come close to it.
		if objGrad < objClosed-1e-6 {
			t.Errorf("trial %d: gradient %v beats closed form %v", trial, objGrad, objClosed)
		}
		if objGrad > objClosed*(1+1e-3) {
			t.Errorf("trial %d: gradient %v too far above closed form %v", trial, objGrad, objClosed)
		}
	}
}

func TestSolveUsesClosedFormWhenEtaLarge(t *testing.T) {
	m := threeStage(1000, 0)
	zeta, err := m.Zeta()
	if err != nil {
		t.Fatal(err)
	}
	m.Eta = 2 * zeta
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.UsedClosedForm {
		t.Error("expected closed form with η ≥ ζ")
	}
	if m.CPUUsage(sol.Threads) > m.Processors+1e-9 {
		t.Errorf("solution exceeds CPU: %v", m.CPUUsage(sol.Threads))
	}
	for i, ti := range sol.Threads {
		lb := m.Stages[i].Lambda / m.Stages[i].ServiceRate
		if ti <= lb {
			t.Errorf("stage %d allocation %v below stability bound %v", i, ti, lb)
		}
	}
}

func TestSolveGradientFallbackTightCPU(t *testing.T) {
	// η below ζ: the closed form may violate the CPU constraint, so Solve
	// must fall back to the constrained solver and return a feasible point.
	m := &Model{
		Stages: []Stage{
			{Name: "a", Lambda: 3000, ServiceRate: 1000, Beta: 1},
			{Name: "b", Lambda: 3000, ServiceRate: 1000, Beta: 1},
		},
		Processors: 7, // load needs 6 cores; little slack
		Eta:        1e-9,
	}
	zeta, err := m.Zeta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Eta >= zeta {
		t.Fatalf("test premise broken: η %v ≥ ζ %v", m.Eta, zeta)
	}
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.UsedClosedForm {
		t.Error("expected gradient fallback")
	}
	if use := m.CPUUsage(sol.Threads); use > m.Processors+1e-6 {
		t.Errorf("CPU usage %v exceeds %v", use, m.Processors)
	}
	if math.IsInf(sol.Objective, 1) {
		t.Error("fallback returned infeasible allocation")
	}
}

func TestSolveMoreLoadMoreThreads(t *testing.T) {
	lo := threeStage(500, 1e-4)
	hi := threeStage(2000, 1e-4)
	sLo, err := Solve(lo)
	if err != nil {
		t.Fatal(err)
	}
	sHi, err := Solve(hi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sLo.Threads {
		if sHi.Threads[i] <= sLo.Threads[i] {
			t.Errorf("stage %d: threads did not grow with load (%v → %v)",
				i, sLo.Threads[i], sHi.Threads[i])
		}
	}
}

// TestBlockingStageGetsMoreThreads reproduces the §5.2 example: two stages
// with equal arrival rate and compute time, but one waits longer on
// synchronous calls (lower s, lower β) — it must receive more threads.
func TestBlockingStageGetsMoreThreads(t *testing.T) {
	x := 0.0005 // 0.5ms compute
	wSlow := 0.0015
	wFast := 0.0
	m := &Model{
		Stages: []Stage{
			{Name: "blocking", Lambda: 1000, ServiceRate: 1 / (x + wSlow), Beta: x / (x + wSlow)},
			{Name: "pure-cpu", Lambda: 1000, ServiceRate: 1 / (x + wFast), Beta: 1},
		},
		Processors: 8,
		Eta:        1e-4,
	}
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Threads[0] <= sol.Threads[1] {
		t.Errorf("blocking stage got %v threads, pure-CPU got %v; want more for blocking",
			sol.Threads[0], sol.Threads[1])
	}
}

func TestIntegerAllocationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Model{Processors: 8, Eta: 1e-4}
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			m.Stages = append(m.Stages, Stage{
				Lambda:      100 + rng.Float64()*3000,
				ServiceRate: 1000 + rng.Float64()*5000,
				Beta:        0.4 + rng.Float64()*0.6,
			})
		}
		if !m.Feasible() {
			return true
		}
		sol, err := Solve(m)
		if err != nil {
			return false
		}
		for i, a := range sol.Integer {
			if a < 1 {
				return false
			}
			// Stability with integer threads.
			if float64(a)*m.Stages[i].ServiceRate <= m.Stages[i].Lambda {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerAllocationNearContinuous(t *testing.T) {
	m := threeStage(1500, 1e-4)
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.Integer {
		if float64(sol.Integer[i]) > sol.Threads[i]+1 {
			t.Errorf("stage %d integer %d far above continuous %v",
				i, sol.Integer[i], sol.Threads[i])
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []*Model{
		{Processors: 8, Eta: 1e-4}, // no stages
		{Stages: []Stage{{Lambda: 1, ServiceRate: 1, Beta: 1}}, Processors: 0, Eta: 1e-4},   // no CPUs
		{Stages: []Stage{{Lambda: -1, ServiceRate: 1, Beta: 1}}, Processors: 8, Eta: 1e-4},  // bad λ
		{Stages: []Stage{{Lambda: 1, ServiceRate: 0, Beta: 1}}, Processors: 8, Eta: 1e-4},   // bad s
		{Stages: []Stage{{Lambda: 1, ServiceRate: 1, Beta: 1.5}}, Processors: 8, Eta: 1e-4}, // bad β
		{Stages: []Stage{{Lambda: 1, ServiceRate: 1, Beta: 0.5}}, Processors: 8, Eta: -1},   // bad η
	}
	for i, m := range cases {
		if _, err := Solve(m); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestZetaZeroLoad(t *testing.T) {
	m := &Model{
		Stages:     []Stage{{Lambda: 0, ServiceRate: 100, Beta: 1}},
		Processors: 8, Eta: 1e-4,
	}
	z, err := m.Zeta()
	if err != nil || z != 0 {
		t.Fatalf("Zeta = %v, %v", z, err)
	}
}

func TestQueueLengthController(t *testing.T) {
	c := &QueueLengthController{Th: 100, Tl: 10}
	threads := []int{4, 4, 4}
	next := c.Update(threads, []int{500, 50, 0})
	want := []int{5, 4, 3}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("Update = %v, want %v", next, want)
		}
	}
	// Floor at 1.
	next = c.Update([]int{1, 1, 1}, []int{0, 0, 0})
	for _, v := range next {
		if v != 1 {
			t.Fatalf("controller went below one thread: %v", next)
		}
	}
	// Cap.
	c.MaxThreads = 5
	next = c.Update([]int{5}, []int{1000})
	if next[0] != 5 {
		t.Fatalf("controller exceeded cap: %v", next)
	}
	// Input shorter than threads: untouched tail.
	next = c.Update([]int{2, 2}, []int{500})
	if next[0] != 3 || next[1] != 2 {
		t.Fatalf("partial queue input handled wrong: %v", next)
	}
}
