package queuing

import (
	"math"
	"math/rand"
	"testing"
)

// randomModel draws a small random model (≤4 stages) whose continuous
// optimum stays well inside the 8-threads-per-stage brute-force box: λ/s is
// kept low enough and η high enough that ceil(t_i) ≤ 8.
func randomModel(rng *rand.Rand) *Model {
	n := 1 + rng.Intn(4)
	m := &Model{
		Processors: 2 + 6*rng.Float64(),        // p ∈ [2, 8)
		Eta:        0.002 + 0.05*rng.Float64(), // strong thread penalty
	}
	for i := 0; i < n; i++ {
		s := Stage{
			Name:        string(rune('a' + i)),
			ServiceRate: 50 + 150*rng.Float64(),
			Beta:        0.1 + 0.9*rng.Float64(),
		}
		s.Lambda = s.ServiceRate * (0.2 + 2.5*rng.Float64()) // λ/s ∈ [0.2, 2.7)
		m.Stages = append(m.Stages, s)
	}
	return m
}

// bruteForceBest enumerates every integer allocation with 1..maxT threads
// per stage and returns the best feasible objective value (+Inf if none).
func bruteForceBest(m *Model, maxT int) float64 {
	n := len(m.Stages)
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	best := math.Inf(1)
	asFloat := make([]float64, n)
	for {
		for i, v := range alloc {
			asFloat[i] = float64(v)
		}
		if m.CPUUsage(asFloat) <= m.Processors+1e-9 {
			if obj := m.Latency(asFloat); obj < best {
				best = obj
			}
		}
		// Odometer increment.
		i := 0
		for ; i < n; i++ {
			alloc[i]++
			if alloc[i] <= maxT {
				break
			}
			alloc[i] = 1
		}
		if i == n {
			return best
		}
	}
}

// TestSolveMatchesBruteForce is the solver's property test: across many
// small random configurations, the integer allocation (a) respects the CPU
// budget, (b) keeps every queue stable, (c) stays inside the continuous
// optimum's ceiling per stage, and (d) achieves a queuing-delay objective
// matching brute-force enumeration over the 1..8-threads-per-stage box
// (within a small slack for the greedy rounding).
func TestSolveMatchesBruteForce(t *testing.T) {
	const (
		trials = 300
		maxT   = 8
	)
	rng := rand.New(rand.NewSource(7))
	tested, exact := 0, 0
	for trial := 0; trial < trials; trial++ {
		m := randomModel(rng)
		if !m.Feasible() {
			continue // offered load exceeds the drawn CPU budget; redraw
		}
		sol, err := Solve(m)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v (model %+v)", trial, err, m)
		}
		// The box bound must contain the solution, or the brute-force
		// comparison would be against a clipped space.
		inBox := true
		for _, ti := range sol.Integer {
			if ti > maxT {
				inBox = false
			}
		}
		if !inBox {
			continue
		}
		tested++

		asFloat := make([]float64, len(sol.Integer))
		for i, v := range sol.Integer {
			asFloat[i] = float64(v)
			if v < 1 {
				t.Fatalf("trial %d: stage %d got %d threads", trial, i, v)
			}
			mu := m.Stages[i].ServiceRate * float64(v)
			if mu <= m.Stages[i].Lambda {
				t.Fatalf("trial %d: stage %d unstable: µ=%.2f ≤ λ=%.2f", trial, i, mu, m.Stages[i].Lambda)
			}
			if ceil := int(math.Ceil(sol.Threads[i])); v > ceil && v > 1 {
				t.Fatalf("trial %d: stage %d integer %d exceeds ceil(continuous)=%d", trial, i, v, ceil)
			}
		}
		// Budget: never above p, except in the integrally-tight corner where
		// even the minimal stable integer allocation exceeds it — there the
		// solver must return exactly that stability floor and nothing more.
		minStable := make([]float64, len(m.Stages))
		var minCPU float64
		for i, s := range m.Stages {
			minStable[i] = math.Floor(s.Lambda/s.ServiceRate) + 1
			minCPU += minStable[i] * s.Beta
		}
		if use := m.CPUUsage(asFloat); use > m.Processors*(1+1e-6) {
			if minCPU <= m.Processors {
				t.Fatalf("trial %d: allocation exceeds CPU budget: %.4f > %.4f", trial, use, m.Processors)
			}
			for i := range asFloat {
				if asFloat[i] != minStable[i] {
					t.Fatalf("trial %d: over budget yet beyond the stability floor: %v vs %v", trial, sol.Integer, minStable)
				}
			}
			continue // integrally infeasible: no brute-force point to compare
		}

		got := m.Latency(asFloat)
		want := bruteForceBest(m, maxT)
		if math.IsInf(want, 1) {
			t.Fatalf("trial %d: brute force found no feasible allocation but Solve did", trial)
		}
		if got < want-1e-9 {
			t.Fatalf("trial %d: solver beat the brute-force optimum (%.6f < %.6f) — enumeration bug", trial, got, want)
		}
		// Greedy integer rounding of the convex optimum: demand near-exact
		// agreement with exhaustive search.
		if got > want*1.02+1e-9 {
			t.Fatalf("trial %d: objective %.6f vs brute-force %.6f (>2%% off)\nmodel: %+v\nalloc: %v",
				trial, got, want, m, sol.Integer)
		}
		if got <= want*(1+1e-9) {
			exact++
		}
	}
	if tested < trials/2 {
		t.Fatalf("only %d/%d trials landed in the brute-force box; generator drifted", tested, trials)
	}
	t.Logf("property: %d tested, %d exactly optimal, rest within 2%%", tested, exact)
}

// TestClosedFormRespectsBudgetWhenPremiseHolds checks Theorem 2's claim on
// random inputs: whenever η ≥ ζ, the closed-form allocation satisfies the
// CPU constraint it ignores.
func TestClosedFormRespectsBudgetWhenPremiseHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		m := randomModel(rng)
		if !m.Feasible() {
			continue
		}
		zeta, err := m.Zeta()
		if err != nil || m.Eta < zeta {
			continue
		}
		tcont, err := ClosedForm(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if use := m.CPUUsage(tcont); use > m.Processors*(1+1e-9) {
			t.Fatalf("trial %d: closed form busts budget with η=%.4f ≥ ζ=%.4f: %.4f > %.4f",
				trial, m.Eta, zeta, use, m.Processors)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trial satisfied the closed-form premise")
	}
	t.Logf("closed-form premise held on %d trials", checked)
}
