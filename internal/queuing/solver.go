package queuing

import (
	"errors"
	"math"
)

// Solution is the output of Solve: the continuous optimizer of problem (∗)
// and a practical integer thread allocation derived from it.
type Solution struct {
	// Threads is the continuous optimum t_i.
	Threads []float64
	// Integer is the integer allocation actually installed in a server
	// (each stage gets ≥ 1 thread; the CPU constraint is respected).
	Integer []int
	// Objective is the (∗) objective value at Threads.
	Objective float64
	// UsedClosedForm reports whether the Theorem 2 closed form applied
	// (η ≥ ζ); otherwise the projected-gradient path ran.
	UsedClosedForm bool
}

// ErrInfeasible is returned when the offered load exceeds the server's
// processing capacity (Σ λ_i·β_i/s_i ≥ p): no thread allocation can keep all
// queues stable.
var ErrInfeasible = errors.New("queuing: offered load infeasible for this server")

// ClosedForm evaluates the Theorem 2 solution
//
//	t_i = λ_i/s_i + √(λ_i / (λ_tot·η·s_i))
//
// which optimizes (∗) whenever the system is feasible and η ≥ ζ.
func ClosedForm(m *Model) ([]float64, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if !m.Feasible() {
		return nil, ErrInfeasible
	}
	if m.Eta <= 0 {
		return nil, errors.New("queuing: closed form requires η > 0")
	}
	ltot := m.TotalLambda()
	t := make([]float64, len(m.Stages))
	for i, s := range m.Stages {
		t[i] = s.Lambda/s.ServiceRate + math.Sqrt(s.Lambda/(ltot*m.Eta*s.ServiceRate))
	}
	return t, nil
}

// Solve computes the latency-optimal thread allocation for the model. It
// uses the Theorem 2 closed form when its premise (η ≥ ζ) holds — the
// common case under plausible η — and falls back to projected gradient
// descent on the convex problem (∗) otherwise (§5.3, "Solution").
func Solve(m *Model) (Solution, error) {
	if err := m.validate(); err != nil {
		return Solution{}, err
	}
	if !m.Feasible() {
		return Solution{}, ErrInfeasible
	}
	zeta, err := m.Zeta()
	if err != nil {
		return Solution{}, err
	}

	var t []float64
	usedClosed := false
	if m.Eta >= zeta && m.Eta > 0 {
		t, err = ClosedForm(m)
		if err != nil {
			return Solution{}, err
		}
		// The closed form ignores the CPU constraint; η ≥ ζ guarantees it
		// is satisfied, but guard against floating-point slop.
		if m.CPUUsage(t) <= m.Processors*(1+1e-9) {
			usedClosed = true
		}
	}
	if !usedClosed {
		t = projectedGradient(m)
	}

	sol := Solution{
		Threads:        t,
		Integer:        IntegerAllocation(m, t),
		Objective:      m.Latency(t),
		UsedClosedForm: usedClosed,
	}
	return sol, nil
}

// lowerBounds returns the stability lower bound λ_i/s_i (+ margin) per stage.
func lowerBounds(m *Model) []float64 {
	lb := make([]float64, len(m.Stages))
	for i, s := range m.Stages {
		lb[i] = s.Lambda/s.ServiceRate + 1e-9
	}
	return lb
}

// projectedGradient minimizes (∗) subject to Σ t_i·β_i ≤ p and stability,
// by gradient descent with projection onto the feasible set. The objective
// is convex in t, so this converges to the constrained optimum.
func projectedGradient(m *Model) []float64 {
	lb := lowerBounds(m)
	n := len(m.Stages)
	ltot := m.TotalLambda()

	// Start mid-way between the stability bound and the CPU budget.
	t := make([]float64, n)
	slackCPU := m.Processors - m.MinFeasibleCPU()
	var betaSum float64
	for _, s := range m.Stages {
		betaSum += s.Beta
	}
	for i := range t {
		t[i] = lb[i] + 0.5*slackCPU/betaSum
	}
	project(m, lb, t)

	grad := make([]float64, n)
	step := 1.0
	prev := m.Latency(t)
	for iter := 0; iter < 5000; iter++ {
		for i, s := range m.Stages {
			d := s.ServiceRate*t[i] - s.Lambda
			grad[i] = -(s.Lambda*s.ServiceRate)/(ltot*d*d) + m.Eta
		}
		// Backtracking line search on the projected step.
		improved := false
		for ls := 0; ls < 40; ls++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = t[i] - step*grad[i]
			}
			project(m, lb, cand)
			obj := m.Latency(cand)
			if obj < prev {
				copy(t, cand)
				if prev-obj < 1e-12*math.Max(1, prev) {
					return t
				}
				prev = obj
				improved = true
				step *= 1.5
				break
			}
			step /= 2
		}
		if !improved {
			break
		}
	}
	return t
}

// project moves t onto {t ≥ lb, Σ t·β ≤ p} by clamping to the lower bounds
// and then uniformly shrinking the slack above the bounds to fit the CPU
// budget. The result is always strictly feasible when the model is.
func project(m *Model, lb, t []float64) {
	for i := range t {
		if t[i] < lb[i] {
			t[i] = lb[i]
		}
	}
	use := m.CPUUsage(t)
	if use <= m.Processors {
		return
	}
	var lbUse, slackUse float64
	for i, s := range m.Stages {
		lbUse += lb[i] * s.Beta
		slackUse += (t[i] - lb[i]) * s.Beta
	}
	if slackUse <= 0 {
		return // nothing to shrink; lb itself uses ≤ p for feasible models
	}
	f := (m.Processors - lbUse) / slackUse
	if f < 0 {
		f = 0
	}
	for i := range t {
		t[i] = lb[i] + f*(t[i]-lb[i])
	}
}

// IntegerAllocation converts a continuous allocation into whole threads:
// every stage gets at least one thread and at least enough to keep its
// queue stable; remaining threads are assigned greedily to whichever stage
// most reduces the (∗) objective, while the CPU constraint admits.
//
// Stability outranks the budget: when the budget is integrally tight (the
// minimal stable integer allocation Σ(⌊λ_i/s_i⌋+1)·β_i already exceeds p,
// even though the continuous problem is feasible), the minimal stable
// allocation is returned as-is — a server slightly over CPU budget beats
// an unboundedly growing queue, and the runtime's BudgetFactor slack
// absorbs the overage. Greedy additions beyond that floor never exceed p.
func IntegerAllocation(m *Model, t []float64) []int {
	n := len(m.Stages)
	alloc := make([]int, n)
	// Floor of the stability bound + 1 keeps µ_i > λ_i with integer threads.
	for i, s := range m.Stages {
		minT := int(math.Floor(s.Lambda/s.ServiceRate)) + 1
		if minT < 1 {
			minT = 1
		}
		alloc[i] = minT
	}
	asFloat := func(a []int) []float64 {
		f := make([]float64, len(a))
		for i, v := range a {
			f[i] = float64(v)
		}
		return f
	}
	target := make([]int, n)
	for i := range target {
		target[i] = int(math.Ceil(t[i]))
		if target[i] < alloc[i] {
			target[i] = alloc[i]
		}
	}
	// Greedy: add one thread at a time where it helps the objective most,
	// never exceeding ceil(continuous optimum) per stage.
	for {
		cur := m.Latency(asFloat(alloc))
		bestGain := 0.0
		bestIdx := -1
		for i := range alloc {
			if alloc[i] >= target[i] {
				continue
			}
			alloc[i]++
			if m.CPUUsage(asFloat(alloc)) <= m.Processors+1e-9 {
				if gain := cur - m.Latency(asFloat(alloc)); gain > bestGain {
					bestGain = gain
					bestIdx = i
				}
			}
			alloc[i]--
		}
		if bestIdx < 0 {
			break
		}
		alloc[bestIdx]++
	}
	return alloc
}

// QueueLengthController is the threshold-based controller of prior SEDA work
// (Welsh's thesis), reproduced for the Fig. 7 instability experiment: every
// control period, a stage whose queue exceeds Th gains a thread and a stage
// whose queue is under Tl loses one (floor 1).
type QueueLengthController struct {
	// Th and Tl are the grow/shrink queue-length thresholds.
	Th, Tl int
	// MaxThreads caps per-stage threads (0 = uncapped).
	MaxThreads int
}

// Update returns the next allocation given current queue lengths.
func (c *QueueLengthController) Update(threads []int, queueLens []int) []int {
	next := make([]int, len(threads))
	copy(next, threads)
	for i := range next {
		if i >= len(queueLens) {
			break
		}
		switch {
		case queueLens[i] > c.Th:
			if c.MaxThreads == 0 || next[i] < c.MaxThreads {
				next[i]++
			}
		case queueLens[i] < c.Tl:
			if next[i] > 1 {
				next[i]--
			}
		}
	}
	return next
}
