package queuing_test

import (
	"fmt"

	"actop/internal/queuing"
)

func ExampleSolve() {
	// A three-stage SEDA server (receive → work → send) on 8 cores at
	// 1000 req/s; the worker stage blocks on synchronous I/O (β < 1).
	m := &queuing.Model{
		Stages: []queuing.Stage{
			{Name: "receiver", Lambda: 1000, ServiceRate: 5000, Beta: 1.0},
			{Name: "worker", Lambda: 1000, ServiceRate: 1250, Beta: 0.5},
			{Name: "sender", Lambda: 1000, ServiceRate: 4000, Beta: 1.0},
		},
		Processors: 8,
		Eta:        100e-6, // η: per-thread latency penalty
	}
	sol, err := queuing.Solve(m)
	if err != nil {
		panic(err)
	}
	fmt.Println("closed form:", sol.UsedClosedForm)
	fmt.Println("threads:", sol.Integer)
	// Output:
	// closed form: true
	// threads: [1 3 1]
}
