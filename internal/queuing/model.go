// Package queuing implements ActOp's latency-optimized thread allocation
// (§5): the Jackson-network latency proxy over per-stage M/M/1 queues, the
// regularized optimization problem (∗), its closed-form solution (Theorem 2),
// a projected-gradient fallback for inputs outside the closed form's
// conditions, and the queue-length threshold controller the paper compares
// against (Fig. 7).
package queuing

import (
	"errors"
	"fmt"
	"math"
)

// Stage describes one SEDA stage's workload parameters (Table 1).
type Stage struct {
	// Name identifies the stage (e.g. "receiver", "worker", "sender").
	Name string
	// Lambda is λ_i — the event arrival rate at the stage (events/sec).
	Lambda float64
	// ServiceRate is s_i — events/sec one thread sustains (1/(x_i+w_i)).
	ServiceRate float64
	// Beta is β_i — the fraction of a processor one thread consumes while
	// processing (x_i/(x_i+w_i)); the remainder waits on synchronous calls.
	Beta float64
}

// Model is the queuing model of a SEDA server (Fig. 8).
type Model struct {
	Stages []Stage
	// Processors is p — the number of processors at the server.
	Processors float64
	// Eta is η — the per-thread latency penalty (time/threads) that
	// regularizes the optimization against multithreading overheads (§5.3).
	Eta float64
}

// TotalLambda is λ_tot = Σ λ_i.
func (m *Model) TotalLambda() float64 {
	var t float64
	for _, s := range m.Stages {
		t += s.Lambda
	}
	return t
}

// MM1Latency is the M/M/1 sojourn time 1/(µ−λ); +Inf when µ ≤ λ.
func MM1Latency(lambda, mu float64) float64 {
	if mu <= lambda {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1QueueLength is the M/M/1 mean queue length ρ/(1−ρ); +Inf when ρ ≥ 1.
func MM1QueueLength(lambda, mu float64) float64 {
	if mu <= 0 {
		return math.Inf(1)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// Latency evaluates the objective of (∗) for a given thread allocation:
// the λ-weighted Jackson latency proxy (Eq. 1) plus the η·Σt penalty.
// It returns +Inf for infeasible allocations (some stage with µ_i ≤ λ_i).
func (m *Model) Latency(threads []float64) float64 {
	if len(threads) != len(m.Stages) {
		return math.Inf(1)
	}
	ltot := m.TotalLambda()
	if ltot == 0 {
		return 0
	}
	var obj, tsum float64
	for i, s := range m.Stages {
		mu := s.ServiceRate * threads[i]
		if mu <= s.Lambda {
			return math.Inf(1)
		}
		obj += s.Lambda / (mu - s.Lambda)
		tsum += threads[i]
	}
	return obj/ltot + m.Eta*tsum
}

// CPUUsage is Σ t_i·β_i — the processor demand of an allocation.
func (m *Model) CPUUsage(threads []float64) float64 {
	var u float64
	for i, s := range m.Stages {
		u += threads[i] * s.Beta
	}
	return u
}

// MinFeasibleCPU is Σ λ_i·β_i/s_i — the processor demand of the work itself;
// the system is feasible iff it is < Processors (Theorem 2's premise).
func (m *Model) MinFeasibleCPU() float64 {
	var u float64
	for _, s := range m.Stages {
		if s.ServiceRate > 0 {
			u += s.Lambda * s.Beta / s.ServiceRate
		}
	}
	return u
}

// Feasible reports whether the offered load fits the server's processors.
func (m *Model) Feasible() bool {
	return m.MinFeasibleCPU() < m.Processors
}

// Zeta computes ζ from Theorem 2:
//
//	ζ = (1/λ_tot) · [ Σ β_i·√(λ_i/s_i) / (p − Σ λ_i·β_i/s_i) ]².
//
// When η ≥ ζ the closed form ignores the processor constraint safely.
func (m *Model) Zeta() (float64, error) {
	ltot := m.TotalLambda()
	if ltot == 0 {
		return 0, nil
	}
	slack := m.Processors - m.MinFeasibleCPU()
	if slack <= 0 {
		return 0, errors.New("queuing: system infeasible (Σλβ/s ≥ p)")
	}
	var num float64
	for _, s := range m.Stages {
		if s.ServiceRate <= 0 {
			return 0, fmt.Errorf("queuing: stage %q has non-positive service rate", s.Name)
		}
		num += s.Beta * math.Sqrt(s.Lambda/s.ServiceRate)
	}
	r := num / slack
	return r * r / ltot, nil
}

// validate checks structural sanity of the model's inputs.
func (m *Model) validate() error {
	if len(m.Stages) == 0 {
		return errors.New("queuing: model has no stages")
	}
	if m.Processors <= 0 {
		return errors.New("queuing: model needs a positive processor count")
	}
	if m.Eta < 0 {
		return errors.New("queuing: negative thread penalty η")
	}
	for _, s := range m.Stages {
		if s.Lambda < 0 {
			return fmt.Errorf("queuing: stage %q has negative arrival rate", s.Name)
		}
		if s.ServiceRate <= 0 {
			return fmt.Errorf("queuing: stage %q has non-positive service rate", s.Name)
		}
		if s.Beta <= 0 || s.Beta > 1 {
			return fmt.Errorf("queuing: stage %q has β outside (0,1]", s.Name)
		}
	}
	return nil
}
