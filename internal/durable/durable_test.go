package durable

import (
	"bytes"
	"sync"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{Type: "counter", Key: "a", Epoch: 0, Seq: 1, State: []byte("x")},
		{Type: "lobby", Key: "slot-42", Epoch: 7, Seq: 190, State: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: "t\x00weird", Key: "k\xffkey", Epoch: 1<<63 + 5, Seq: 1 << 62, State: nil},
	}
	for _, want := range cases {
		enc := AppendRecord(nil, want)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", want.Key, err)
		}
		if got.Type != want.Type || got.Key != want.Key || got.Epoch != want.Epoch || got.Seq != want.Seq {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.State, want.State) {
			t.Fatalf("state mismatch for %q: got %d bytes want %d", want.Key, len(got.State), len(want.State))
		}
	}
}

func TestDecodeRecordStateCopied(t *testing.T) {
	enc := AppendRecord(nil, Record{Type: "t", Key: "k", State: []byte("hello")})
	got, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xFF
	}
	if string(got.State) != "hello" {
		t.Fatalf("decoded state aliases the input buffer: %q", got.State)
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	good := AppendRecord(nil, Record{Type: "t", Key: "k", Epoch: 1, Seq: 2, State: []byte("s")})
	cases := map[string][]byte{
		"empty":          nil,
		"bad version":    {0x7F},
		"truncated":      good[:len(good)-2],
		"trailing bytes": append(append([]byte(nil), good...), 0x00),
		"huge length": func() []byte {
			// Claims a state length far beyond both the cap and the buffer.
			b := AppendRecord(nil, Record{Type: "t", Key: "k"})
			b = b[:len(b)-1] // strip the zero state length
			return append(b, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("%s: expected decode error, got none", name)
		}
	}
}

func TestStoreEpochSeqOrdering(t *testing.T) {
	s := NewStore()
	put := func(epoch, seq uint64) bool {
		return s.Put(Record{Type: "t", Key: "k", Epoch: epoch, Seq: seq, State: []byte{byte(seq)}})
	}
	if !put(0, 1) {
		t.Fatal("first record rejected")
	}
	if !put(0, 2) {
		t.Fatal("newer seq same epoch rejected")
	}
	if put(0, 2) {
		t.Fatal("duplicate (epoch, seq) accepted")
	}
	if put(0, 1) {
		t.Fatal("older seq accepted")
	}
	// New incarnation: epoch advances, seq restarts.
	if !put(1, 1) {
		t.Fatal("newer epoch with restarted seq rejected")
	}
	// The delayed pre-migration snapshot must lose even with a higher seq.
	if put(0, 99) {
		t.Fatal("stale-epoch snapshot with high seq accepted")
	}
	got, ok := s.Get("t", "k")
	if !ok || got.Epoch != 1 || got.Seq != 1 {
		t.Fatalf("resident record = %+v, want epoch 1 seq 1", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Drop("t", "k")
	if _, ok := s.Get("t", "k"); ok {
		t.Fatal("record survived Drop")
	}
}

func TestStoreBytes(t *testing.T) {
	s := NewStore()
	s.Put(Record{Type: "a", Key: "1", Seq: 1, State: make([]byte, 10)})
	s.Put(Record{Type: "b", Key: "2", Seq: 1, State: make([]byte, 32)})
	if got := s.Bytes(); got != 42 {
		t.Fatalf("Bytes = %d, want 42", got)
	}
}

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 8)
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		for !p.TrySubmit(func() {
			mu.Lock()
			ran++
			mu.Unlock()
			wg.Done()
		}) {
		}
	}
	wg.Wait()
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if ran != 16 {
		t.Fatalf("ran %d jobs, want 16", ran)
	}
}

func TestPoolCloseIdempotentAndRejects(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit succeeded after Close")
	}
}

func TestPoolFullQueueDrops(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-block })
	<-started // worker busy; queue now free
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot should be free")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("full queue should drop")
	}
	close(block)
}
