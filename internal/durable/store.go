package durable

import "sync"

// storeStripes stripes the replica store so concurrent snapshot arrivals
// for distinct actors never contend (snapshots stream in from every peer's
// snapshotter pool at once).
const storeStripes = 16

// Store is a node's replica store: the latest accepted snapshot per actor,
// held on behalf of peers. Acceptance is ordered by (Epoch, Seq) — see
// Record — so replays, reorderings, and delayed ships from pre-migration
// incarnations are rejected rather than applied.
type Store struct {
	stripes [storeStripes]storeStripe
}

type storeStripe struct {
	mu sync.Mutex
	m  map[string]Record
}

// NewStore builds an empty replica store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]Record)
	}
	return s
}

// storeKey joins an actor identity with a separator no type name contains.
func storeKey(typ, key string) string { return typ + "\x00" + key }

func (s *Store) stripeOf(k string) *storeStripe {
	// FNV-1a, matching the runtime's allocation-free string hash.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * 1099511628211
	}
	return &s.stripes[h&(storeStripes-1)]
}

// Put installs r if it is newer than the resident record for its actor:
// strictly greater epoch, or equal epoch with a strictly greater sequence
// number. It reports whether the record was accepted; a false return is
// the stale-snapshot rejection the epoch rules exist for. The record's
// State is retained as-is — callers must not mutate it afterwards.
func (s *Store) Put(r Record) bool {
	k := storeKey(r.Type, r.Key)
	st := s.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.m[k]; ok {
		if r.Epoch < cur.Epoch || (r.Epoch == cur.Epoch && r.Seq <= cur.Seq) {
			return false
		}
	}
	st.m[k] = r
	return true
}

// Get returns the resident snapshot for an actor, if any. The returned
// State is shared with the store — treat it as read-only.
func (s *Store) Get(typ, key string) (Record, bool) {
	k := storeKey(typ, key)
	st := s.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.m[k]
	return r, ok
}

// Drop removes an actor's resident snapshot (reclamation after the actor
// is explicitly deactivated, or tests).
func (s *Store) Drop(typ, key string) {
	k := storeKey(typ, key)
	st := s.stripeOf(k)
	st.mu.Lock()
	delete(st.m, k)
	st.mu.Unlock()
}

// Len reports resident records across all stripes.
func (s *Store) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		n += len(s.stripes[i].m)
		s.stripes[i].mu.Unlock()
	}
	return n
}

// Bytes reports resident state bytes across all stripes (gauge fodder).
func (s *Store) Bytes() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		for _, r := range s.stripes[i].m {
			n += len(r.State)
		}
		s.stripes[i].mu.Unlock()
	}
	return n
}
