package durable

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers the snapshot wire format: arbitrary bytes must
// never panic or over-allocate, and anything that decodes must survive a
// re-encode → re-decode round trip unchanged.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(AppendRecord(nil, Record{}))
	f.Add(AppendRecord(nil, Record{Type: "counter", Key: "k1", Epoch: 3, Seq: 17, State: []byte("state")}))
	f.Add(AppendRecord(nil, Record{Type: "lobby", Key: "slot", Epoch: 1 << 40, Seq: 1, State: bytes.Repeat([]byte{7}, 512)}))
	f.Add([]byte{recordVersion})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc := AppendRecord(nil, r)
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if r2.Type != r.Type || r2.Key != r.Key || r2.Epoch != r.Epoch || r2.Seq != r.Seq || !bytes.Equal(r2.State, r.State) {
			t.Fatalf("round trip not stable: %+v vs %+v", r, r2)
		}
	})
}
