package durable

import "sync"

// Pool is the background snapshotter: a small fixed worker set draining a
// bounded job queue. The turn path only ever pays a non-blocking submit —
// when the queue is full the capture is dropped (and retried after the
// next dirty turn), never waited for. Jobs are opaque closures so the
// actor layer can bind encoding and shipping without this package learning
// about transports.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// NewPool starts workers goroutines over a queue-slot job buffer.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queue <= 0 {
		queue = 256
	}
	p := &Pool{jobs: make(chan func(), queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn without blocking. It reports false when the queue
// is full or the pool is closed — the caller counts the drop and leaves
// the activation dirty so a later turn retries the capture.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- fn:
		return true
	default:
		return false
	}
}

// Close stops intake, drains the queued jobs, and waits for the workers.
// Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
