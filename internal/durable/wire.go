// Package durable is the snapshot plane of the actor runtime (ISSUE 8):
// a compact wire format for actor state snapshots, an epoch-ordered
// in-memory replica store, and the background snapshotter pool that keeps
// encoding and shipping off the turn path (Aumayr & Gonzalez Boix:
// checkpoints must never block the processing of messages).
//
// The package is deliberately free of actor-runtime imports: the actor
// layer hands it opaque state bytes and closures, so the dependency points
// one way and the wire format stays independently fuzzable.
package durable

import (
	"encoding/binary"
	"fmt"
)

// Record is one actor snapshot as it travels to (and rests on) a replica:
// the actor's identity, the migration epoch of the incarnation that
// captured it, a per-incarnation sequence number, and the opaque state.
// (Epoch, Seq) totally orders a ref's snapshots: epochs advance on every
// migration or failover re-activation, sequence numbers on every capture
// within one incarnation — so a delayed snapshot from an older incarnation
// can never clobber a newer one.
type Record struct {
	Type, Key string
	Epoch     uint64
	Seq       uint64
	State     []byte
}

// recordVersion is the wire-format version byte leading every record.
const recordVersion = 1

// maxSnapField caps any single decoded field so a corrupt or hostile
// length prefix cannot drive an over-allocation (the fuzz target's main
// invariant). Decoding also bounds every claim by the bytes actually
// present, so this is a second fence, not the first.
const maxSnapField = 1 << 26 // 64 MiB

// AppendRecord encodes r onto dst and returns the extended slice. The
// layout is a version byte followed by uvarint-length-prefixed Type, Key,
// raw-uvarint Epoch and Seq, then the length-prefixed State.
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst, recordVersion)
	dst = binary.AppendUvarint(dst, uint64(len(r.Type)))
	dst = append(dst, r.Type...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(r.State)))
	dst = append(dst, r.State...)
	return dst
}

// DecodeRecord parses one snapshot record. Every length claim is checked
// against the bytes remaining before anything is allocated, and trailing
// garbage is an error — a record is exactly one frame.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	if len(data) == 0 {
		return r, fmt.Errorf("durable: empty record")
	}
	if data[0] != recordVersion {
		return r, fmt.Errorf("durable: unknown record version %d", data[0])
	}
	rest := data[1:]
	var err error
	if r.Type, rest, err = takeString(rest, "type"); err != nil {
		return Record{}, err
	}
	if r.Key, rest, err = takeString(rest, "key"); err != nil {
		return Record{}, err
	}
	if r.Epoch, rest, err = takeUvarint(rest, "epoch"); err != nil {
		return Record{}, err
	}
	if r.Seq, rest, err = takeUvarint(rest, "seq"); err != nil {
		return Record{}, err
	}
	var state []byte
	if state, rest, err = takeBytes(rest, "state"); err != nil {
		return Record{}, err
	}
	if len(state) > 0 {
		// Copy out of the caller's buffer: records outlive the envelope
		// payloads they arrive in (the store keeps them resident).
		r.State = append(make([]byte, 0, len(state)), state...)
	}
	if len(rest) != 0 {
		return Record{}, fmt.Errorf("durable: %d trailing bytes after record", len(rest))
	}
	return r, nil
}

func takeUvarint(data []byte, field string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("durable: bad %s varint", field)
	}
	return v, data[n:], nil
}

func takeBytes(data []byte, field string) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(data, field)
	if err != nil {
		return nil, nil, err
	}
	if n > maxSnapField || n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("durable: %s length %d exceeds remaining %d bytes", field, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

func takeString(data []byte, field string) (string, []byte, error) {
	b, rest, err := takeBytes(data, field)
	if err != nil {
		return "", nil, err
	}
	return string(b), rest, nil
}
