package experiments

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/metrics"
	"actop/internal/sim"
	"actop/internal/workload"
)

// HeartbeatOpts configures the §6.2 heartbeat service runs.
type HeartbeatOpts struct {
	Entities int
	Rate     float64
	Warmup   time.Duration
	Measure  time.Duration
	Seed     int64
}

// DefaultHeartbeatOpts mirrors the paper's single-server setup.
func DefaultHeartbeatOpts() HeartbeatOpts {
	return HeartbeatOpts{
		Entities: 8000,
		Rate:     15000,
		Warmup:   30 * time.Second,
		Measure:  time.Minute,
		Seed:     5,
	}
}

// HeartbeatResult is one heartbeat run's outcome.
type HeartbeatResult struct {
	Opts    HeartbeatOpts
	Tuned   bool
	Latency metrics.Summary
	Threads [sim.NumStages]int
	CPU     float64
}

// RunHeartbeat executes one heartbeat run with or without the §5 thread
// controller (the baseline keeps the default 8 threads per stage).
func RunHeartbeat(o HeartbeatOpts, tuned bool) HeartbeatResult {
	cfg := sim.DefaultConfig()
	cfg.Servers = 1
	cfg.Seed = o.Seed
	// Same lean per-event costs as the counter app (single tiny update).
	cfg.DeserializeTime = 130 * time.Microsecond
	cfg.SerializeTime = 130 * time.Microsecond
	cfg.WorkerTime = 88 * time.Microsecond
	cfg.ClientRequestExtra = 0
	// 8 threads per *active* stage (receiver/worker/client-sender); the
	// server-sender stage is idle in this single-hop workload.
	cfg.InitialThreads = [sim.NumStages]int{8, 8, 1, 8}
	cfg.ThreadTuning = tuned
	cfg.ThreadPeriod = 5 * time.Second
	c := sim.New(cfg)
	w := workload.NewHeartbeat(c, o.Entities, o.Rate, o.Seed+9)
	w.Start()
	c.Run(o.Warmup)
	warmEnd := c.Now()
	c.ResetMetrics()
	c.Run(o.Measure)
	return HeartbeatResult{
		Opts:    o,
		Tuned:   tuned,
		Latency: c.Latency.Summarize(),
		Threads: c.ThreadAllocation(0),
		CPU:     c.CPUSeries.MeanAfter(warmEnd),
	}
}

// Fig11aResult is the thread-allocation-only evaluation across loads.
type Fig11aResult struct {
	Rows []struct {
		Load            float64
		Baseline, Tuned HeartbeatResult
	}
}

// RunFig11a regenerates Fig. 11(a): heartbeat latency improvement from the
// optimized thread allocation at increasing loads (paper: 10K/12.5K/15K
// req/s; −58% median and −68% p99 at the top load).
func RunFig11a(base HeartbeatOpts, loads []float64) Fig11aResult {
	var res Fig11aResult
	for _, load := range loads {
		o := base
		o.Rate = load
		res.Rows = append(res.Rows, struct {
			Load            float64
			Baseline, Tuned HeartbeatResult
		}{load, RunHeartbeat(o, false), RunHeartbeat(o, true)})
	}
	return res
}

// Render prints improvement percentages and chosen allocations per load.
func (r Fig11aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11(a) — thread-allocation-only improvement (heartbeat, 1 server)\n")
	b.WriteString("paper: −58% median / −68% p99 at 15K req/s; workers 3→4 as load grows, 2 client senders\n")
	b.WriteString("   load   median%   p95%   p99%   allocation(recv,worker,ssend,csend)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7.0f %8.0f %7.0f %6.0f   %v\n", row.Load,
			metrics.Improvement(row.Baseline.Latency.Median, row.Tuned.Latency.Median),
			metrics.Improvement(row.Baseline.Latency.P95, row.Tuned.Latency.P95),
			metrics.Improvement(row.Baseline.Latency.P99, row.Tuned.Latency.P99),
			row.Tuned.Threads)
	}
	return b.String()
}

// Fig11bResult compares partitioning alone against both optimizations.
type Fig11bResult struct {
	Baseline  HaloResult // no optimization
	Partition HaloResult // partitioning only
	Combined  HaloResult // partitioning + thread allocation
}

// RunFig11b regenerates Fig. 11(b): on Halo Presence at top load, the
// combined system beats partitioning alone (paper: −55% median / −75% p99
// total; thread allocation adds −21% median / −9% p99 on top).
func RunFig11b(base HaloOpts) Fig11bResult {
	b := base
	b.Partitioning, b.ThreadTuning = false, false
	p := base
	p.Partitioning, p.ThreadTuning = true, false
	c := base
	c.Partitioning, c.ThreadTuning = true, true
	return Fig11bResult{Baseline: RunHalo(b), Partition: RunHalo(p), Combined: RunHalo(c)}
}

// Render prints the three configurations and the improvement deltas.
func (r Fig11bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11(b) — combining both optimizations (Halo at top load)\n")
	b.WriteString("paper: total −55% median / −75% p99; thread allocation adds −21% median / −9% p99 over partitioning\n")
	fmt.Fprintf(&b, "baseline            : %s  cpu %.0f%%\n", r.Baseline.Latency, 100*r.Baseline.CPUUtilization)
	fmt.Fprintf(&b, "partitioning        : %s  cpu %.0f%%\n", r.Partition.Latency, 100*r.Partition.CPUUtilization)
	fmt.Fprintf(&b, "partitioning+threads: %s  cpu %.0f%%\n", r.Combined.Latency, 100*r.Combined.CPUUtilization)
	fmt.Fprintf(&b, "partitioning vs baseline : median %.0f%%, p95 %.0f%%, p99 %.0f%%\n",
		metrics.Improvement(r.Baseline.Latency.Median, r.Partition.Latency.Median),
		metrics.Improvement(r.Baseline.Latency.P95, r.Partition.Latency.P95),
		metrics.Improvement(r.Baseline.Latency.P99, r.Partition.Latency.P99))
	fmt.Fprintf(&b, "combined vs baseline     : median %.0f%%, p95 %.0f%%, p99 %.0f%%\n",
		metrics.Improvement(r.Baseline.Latency.Median, r.Combined.Latency.Median),
		metrics.Improvement(r.Baseline.Latency.P95, r.Combined.Latency.P95),
		metrics.Improvement(r.Baseline.Latency.P99, r.Combined.Latency.P99))
	fmt.Fprintf(&b, "combined vs partitioning : median %.0f%%, p95 %.0f%%, p99 %.0f%%\n",
		metrics.Improvement(r.Partition.Latency.Median, r.Combined.Latency.Median),
		metrics.Improvement(r.Partition.Latency.P95, r.Combined.Latency.P95),
		metrics.Improvement(r.Partition.Latency.P99, r.Combined.Latency.P99))
	if len(r.Combined.ThreadAllocations) > 0 {
		fmt.Fprintf(&b, "combined allocation (server 0): %v (paper: 6 workers, 1 server sender, 1 client sender)\n",
			r.Combined.ThreadAllocations[0])
	}
	return b.String()
}
