package experiments

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/metrics"
	"actop/internal/sim"
	"actop/internal/workload"
)

// CounterOpts configures the single-server counter micro-benchmark used by
// Fig. 4 (latency breakdown) and Fig. 5 (thread-allocation heat map):
// 8K actors on one 8-core server, 15K req/s, each request incrementing a
// counter.
type CounterOpts struct {
	Actors  int
	Rate    float64
	Threads [sim.NumStages]int // per-stage allocation (receiver, worker, server sender, client sender)

	ThreadTuning bool // let the §5 controller pick the allocation instead

	Warmup  time.Duration
	Measure time.Duration
	Seed    int64
}

// DefaultCounterOpts is the paper's Fig. 4 operating point with the stock
// Orleans default allocation (8 threads per stage per core — including the
// idle server-sender stage, whose threads still cost context switches).
// Under this allocation the simulated server sits just past its stability
// edge at 15K req/s, so stage queues dominate the end-to-end latency
// completely — the paper's Fig. 4 observation, with the absolute latency
// overshooting the paper's (their testbed sat just *inside* the edge).
func DefaultCounterOpts() CounterOpts {
	return CounterOpts{
		Actors:  8000,
		Rate:    15000,
		Threads: [sim.NumStages]int{8, 8, 8, 8},
		Warmup:  30 * time.Second,
		Measure: time.Minute,
		Seed:    3,
	}
}

// counterConfig returns the simulator configuration calibrated for the
// counter/heartbeat micro-benchmarks: requests are tiny (a counter bump),
// so per-event demands are leaner than the Halo messages, chosen so the
// default allocation runs near saturation at 15K req/s (as Fig. 4 shows).
func counterConfig(o CounterOpts) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Servers = 1
	cfg.Seed = o.Seed
	cfg.DeserializeTime = 130 * time.Microsecond
	cfg.SerializeTime = 130 * time.Microsecond
	cfg.WorkerTime = 88 * time.Microsecond
	cfg.ClientRequestExtra = 0
	cfg.InitialThreads = o.Threads
	cfg.ThreadTuning = o.ThreadTuning
	cfg.ThreadPeriod = 5 * time.Second
	return cfg
}

// CounterResult is one micro-benchmark run's outcome.
type CounterResult struct {
	Opts      CounterOpts
	Latency   metrics.Summary
	Breakdown *metrics.Breakdown
	CPU       float64
	Threads   [sim.NumStages]int // final allocation (interesting when tuned)
	Completed uint64
}

// RunCounter executes one counter run.
func RunCounter(o CounterOpts) CounterResult {
	cfg := counterConfig(o)
	c := sim.New(cfg)
	w := workload.NewCounter(c, o.Actors, o.Rate, o.Seed+7)
	w.Start()
	c.Run(o.Warmup)
	warmEnd := c.Now()
	c.ResetMetrics()
	c.Run(o.Measure)
	return CounterResult{
		Opts:      o,
		Latency:   c.Latency.Summarize(),
		Breakdown: c.Breakdown,
		CPU:       c.CPUSeries.MeanAfter(warmEnd),
		Threads:   c.ThreadAllocation(0),
		Completed: c.Completed,
	}
}

// Fig4Result is the Fig. 4 latency breakdown.
type Fig4Result struct {
	Run CounterResult
}

// RunFig4 regenerates Fig. 4: the average per-request latency breakdown
// across SEDA queues, stage processing, network and OS/ready time, for the
// counter app at 15K req/s with the default thread allocation.
func RunFig4(o CounterOpts) Fig4Result {
	return Fig4Result{Run: RunCounter(o)}
}

// Render prints the Fig. 4 rows (percent of end-to-end latency).
func (r Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — latency breakdown (counter app, %d actors, %.0f req/s, threads %v)\n",
		r.Run.Opts.Actors, r.Run.Opts.Rate, r.Run.Opts.Threads)
	fmt.Fprintf(&b, "paper: recv q 32.9%% / recv proc 0.2%% / worker q 24.2%% / worker proc 0.3%% / sender q 31.3%% / sender proc 0.2%% / network 0.9%% / other 10.1%%\n")
	b.WriteString(r.Run.Breakdown.Render())
	fmt.Fprintf(&b, "end-to-end: %s  cpu: %.1f%%\n", r.Run.Latency, 100*r.Run.CPU)
	return b.String()
}

// Fig5Result is the Fig. 5 heat map: median latency per (worker, sender)
// thread allocation.
type Fig5Result struct {
	Workers, Senders []int
	Median           [][]time.Duration // [workerIdx][senderIdx]
	Tuned            CounterResult     // what the §5 controller picks
}

// RunFig5 regenerates Fig. 5: the server latency heat map over worker ×
// client-sender thread allocations (receiver fixed at 8, as the default),
// plus the allocation ActOp's controller converges to.
func RunFig5(o CounterOpts, workers, senders []int) Fig5Result {
	res := Fig5Result{Workers: workers, Senders: senders}
	for _, w := range workers {
		row := make([]time.Duration, 0, len(senders))
		for _, s := range senders {
			ro := o
			ro.Threads = [sim.NumStages]int{8, w, 1, s}
			row = append(row, RunCounter(ro).Latency.Median)
		}
		res.Median = append(res.Median, row)
	}
	to := o
	to.ThreadTuning = true
	res.Tuned = RunCounter(to)
	return res
}

// Render prints the heat map with workers as rows and senders as columns.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — median latency (ms) per thread allocation (rows: workers, cols: senders)\n")
	b.WriteString("paper: best 2w/3s ≈ 9.9ms, worst 8w/6s ≈ 38.2ms, default among the worst\n")
	fmt.Fprintf(&b, "%8s", "")
	for _, s := range r.Senders {
		fmt.Fprintf(&b, "%9d", s)
	}
	b.WriteByte('\n')
	for i, w := range r.Workers {
		fmt.Fprintf(&b, "%8d", w)
		for j := range r.Senders {
			fmt.Fprintf(&b, "%9.2f", float64(r.Median[i][j])/float64(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "ActOp controller picks %v → median %.2fms\n",
		r.Tuned.Threads, float64(r.Tuned.Latency.Median)/float64(time.Millisecond))
	return b.String()
}

// Best returns the minimum median and its allocation.
func (r Fig5Result) Best() (time.Duration, int, int) {
	best := time.Duration(1<<62 - 1)
	bw, bs := 0, 0
	for i := range r.Median {
		for j := range r.Median[i] {
			if r.Median[i][j] < best {
				best, bw, bs = r.Median[i][j], r.Workers[i], r.Senders[j]
			}
		}
	}
	return best, bw, bs
}

// Worst returns the maximum median and its allocation.
func (r Fig5Result) Worst() (time.Duration, int, int) {
	worst := time.Duration(0)
	ww, ws := 0, 0
	for i := range r.Median {
		for j := range r.Median[i] {
			if r.Median[i][j] > worst {
				worst, ww, ws = r.Median[i][j], r.Workers[i], r.Senders[j]
			}
		}
	}
	return worst, ww, ws
}
