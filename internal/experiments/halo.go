// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §6) on the cluster simulator. Each experiment is a pure
// function from options to a printable result, shared by cmd/actop-bench
// and the repository's testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/metrics"
	"actop/internal/sim"
	"actop/internal/workload"
)

// HaloOpts configures one Halo Presence run.
type HaloOpts struct {
	Players int     // concurrent players (paper: 100K)
	Servers int     // cluster size (paper: 10)
	Load    float64 // client requests/sec (paper: 2K/4K/6K)

	Warmup  time.Duration // excluded from measurement
	Measure time.Duration // measurement window

	Partitioning bool // ActOp distributed repartitioning
	ThreadTuning bool // ActOp model-driven thread allocation
	Oracle       bool // §3 co-located upper bound (placement oracle)

	TimeScale int // accelerate game churn (1 = paper timing)
	Seed      int64

	// FastControl shortens the controller periods (exchange every 5s,
	// reject window 20s, retune every 5s, decay every 30s) so quick runs
	// converge in simulated minutes instead of the paper's ten.
	FastControl bool
}

// DefaultHaloOpts is the quick-run scale: same per-server operating point
// as the paper (load/server and util match 6K req/s on 10 servers), smaller
// population, shorter run. Paper scale: {Players: 100000, Servers: 10,
// Load: 6000, Warmup: 10m, Measure: 50m}.
func DefaultHaloOpts() HaloOpts {
	return HaloOpts{
		Players:   6000,
		Servers:   3,
		Load:      1800,
		Warmup:    3 * time.Minute,
		Measure:   3 * time.Minute,
		TimeScale: 1,
		Seed:      1,
	}
}

// HaloResult captures everything the §6.1 figures report.
type HaloResult struct {
	Opts HaloOpts

	Latency      metrics.Summary // end-to-end client latency
	ActorCall    metrics.Summary // server-to-server (actor→actor) latency
	LatencyCDF   []metrics.CDFPoint
	ActorCallCDF []metrics.CDFPoint

	RemoteFraction float64 // steady-state remote-message fraction
	CPUUtilization float64 // mean across servers
	MovesPerMinute float64 // steady-state migration rate
	Moves          int

	Completed, Rejected uint64
	ThroughputPerSec    float64

	RemoteSeries, MoveSeries, CPUSeries metrics.TimeSeries

	ThreadAllocations [][sim.NumStages]int
}

// RunHalo executes one Halo Presence experiment.
func RunHalo(o HaloOpts) HaloResult {
	cfg := sim.DefaultConfig()
	cfg.Servers = o.Servers
	cfg.Seed = o.Seed
	cfg.Partitioning = o.Partitioning
	cfg.ThreadTuning = o.ThreadTuning
	// The Space-Saving summary must cover the hot edges, whose count grows
	// with the per-server actor population (§4.3 sizes it "constant"
	// relative to the deployment; scale it the same way here).
	if perServer := 3 * o.Players / o.Servers; perServer > cfg.MonitorCapacity {
		cfg.MonitorCapacity = perServer
	}
	if o.FastControl {
		cfg.PartitionPeriod = 5 * time.Second
		cfg.RejectWindow = 20 * time.Second
		cfg.ThreadPeriod = 5 * time.Second
		cfg.MonitorDecayPeriod = 30 * time.Second
		cfg.StatsWindow = 15 * time.Second
	}

	c := sim.New(cfg)

	wcfg := workload.DefaultHaloConfig()
	wcfg.TargetPlayers = o.Players
	wcfg.IdlePoolTarget = o.Players / 100
	if wcfg.IdlePoolTarget < 8 {
		wcfg.IdlePoolTarget = 8
	}
	wcfg.RequestRate = o.Load
	wcfg.OraclePlacement = o.Oracle
	if o.TimeScale > 0 {
		wcfg.TimeScale = o.TimeScale
	}
	wcfg.Seed = o.Seed + 100

	h := workload.NewHalo(c, wcfg)
	h.Start()

	c.Run(o.Warmup)
	warmEnd := c.Now()
	c.ResetMetrics()
	c.Run(o.Measure)

	res := HaloResult{
		Opts:           o,
		Latency:        c.Latency.Summarize(),
		ActorCall:      c.ActorCall.Summarize(),
		LatencyCDF:     c.Latency.CDF(100),
		ActorCallCDF:   c.ActorCall.CDF(100),
		RemoteFraction: c.RemoteSeries.MeanAfter(warmEnd),
		CPUUtilization: c.CPUSeries.MeanAfter(warmEnd),
		MovesPerMinute: c.MoveSeries.MeanAfter(warmEnd),
		Moves:          c.Moves,
		Completed:      c.Completed,
		Rejected:       c.Rejected,
		RemoteSeries:   c.RemoteSeries,
		MoveSeries:     c.MoveSeries,
		CPUSeries:      c.CPUSeries,
	}
	if o.Measure > 0 {
		res.ThroughputPerSec = float64(c.Completed) / o.Measure.Seconds()
	}
	for s := 0; s < o.Servers; s++ {
		res.ThreadAllocations = append(res.ThreadAllocations, c.ThreadAllocation(sim.ServerID(s)))
	}
	return res
}

// Render prints the headline statistics of one run.
func (r HaloResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "players=%d servers=%d load=%.0f req/s partition=%v threads=%v oracle=%v\n",
		r.Opts.Players, r.Opts.Servers, r.Opts.Load, r.Opts.Partitioning, r.Opts.ThreadTuning, r.Opts.Oracle)
	fmt.Fprintf(&b, "  end-to-end : %s\n", r.Latency)
	fmt.Fprintf(&b, "  actor-call : %s\n", r.ActorCall)
	fmt.Fprintf(&b, "  remote-msgs: %.1f%%   cpu: %.1f%%   moves/min: %.0f   completed: %d   rejected: %d\n",
		100*r.RemoteFraction, 100*r.CPUUtilization, r.MovesPerMinute, r.Completed, r.Rejected)
	return b.String()
}
