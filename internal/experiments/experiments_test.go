package experiments

import (
	"testing"
	"time"
)

// quickOpts is the minimal Halo scale that still exhibits the paper's
// shapes: 2K players on 2 servers at the calibrated per-server load.
func quickOpts() HaloOpts {
	return HaloOpts{
		Players:     2000,
		Servers:     2,
		Load:        1200,
		Warmup:      2 * time.Minute,
		Measure:     90 * time.Second,
		FastControl: true,
		Seed:        1,
	}
}

func TestSection3OracleWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := RunSection3(quickOpts())
	if r.Oracle.Latency.Median >= r.Baseline.Latency.Median {
		t.Errorf("oracle median %v not below baseline %v",
			r.Oracle.Latency.Median, r.Baseline.Latency.Median)
	}
	if r.Oracle.Latency.P99 >= r.Baseline.Latency.P99 {
		t.Errorf("oracle p99 %v not below baseline %v",
			r.Oracle.Latency.P99, r.Baseline.Latency.P99)
	}
	// Random placement on 2 servers → ≈50% remote; oracle ≈0%.
	if r.Baseline.RemoteFraction < 0.35 {
		t.Errorf("baseline remote fraction %v too low", r.Baseline.RemoteFraction)
	}
	if r.Oracle.RemoteFraction > 0.1 {
		t.Errorf("oracle remote fraction %v too high", r.Oracle.RemoteFraction)
	}
	if r.Oracle.CPUUtilization >= r.Baseline.CPUUtilization {
		t.Error("co-location should reduce CPU (less serialization)")
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig4QueuesDominate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultCounterOpts()
	o.Measure = 30 * time.Second
	r := RunFig4(o)
	bd := r.Run.Breakdown
	queues := bd.Percent("Recv. queue") + bd.Percent("Worker queue") + bd.Percent("Sender queue")
	proc := bd.Percent("Recv. processing") + bd.Percent("Worker processing") + bd.Percent("Sender processing")
	if queues < 50 {
		t.Errorf("queue share %.1f%% should dominate under the default allocation", queues)
	}
	if proc >= queues {
		t.Errorf("processing share %.1f%% should be far below queuing %.1f%%", proc, queues)
	}
	if bd.Percent("Network") > 15 {
		t.Errorf("network share %.1f%% too high", bd.Percent("Network"))
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig5ShapeAndController(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultCounterOpts()
	o.Measure = 30 * time.Second
	// Coarse grid keeps the test quick; the harness runs the full 2..8 grid.
	r := RunFig5(o, []int{2, 4, 8}, []int{3, 6, 8})
	best, _, _ := r.Best()
	worst, ww, ws := r.Worst()
	if worst < time.Duration(float64(best)*1.15) {
		t.Errorf("heat map too flat: best %v worst %v", best, worst)
	}
	// The default-style corner (8 workers, 8 senders) must not be the best.
	def := r.Median[len(r.Median)-1][len(r.Median[0])-1]
	if def <= best {
		t.Errorf("default corner %v should not win (best %v)", def, best)
	}
	_ = ww
	_ = ws
	// The controller's pick lands near the sweep's best.
	if r.Tuned.Latency.Median > time.Duration(float64(best)*1.4) {
		t.Errorf("controller pick %v too far above sweep best %v", r.Tuned.Latency.Median, best)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig7QueueControllerUnstable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultFig7Opts()
	r := RunFig7(o)
	if r.QueueFlips <= r.ModelFlips {
		t.Errorf("queue controller flips (%d) should exceed model controller flips (%d)",
			r.QueueFlips, r.ModelFlips)
	}
	if r.QueueFlips < 6 {
		t.Errorf("queue controller flips = %d; expected sustained oscillation", r.QueueFlips)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig10aConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quickOpts()
	o.Warmup = 3 * time.Minute
	o.Measure = time.Minute
	r := RunFig10a(o)
	pts := r.Partitioned.RemoteSeries.Points
	if len(pts) < 4 {
		t.Fatalf("series too short: %d points", len(pts))
	}
	early := pts[0].Value
	late := pts[len(pts)-1].Value
	if late >= early*0.7 {
		t.Errorf("remote fraction did not converge: %.3f → %.3f", early, late)
	}
	if r.Partitioned.Moves == 0 {
		t.Error("no migrations recorded")
	}
	// Baseline stays high throughout.
	basePts := r.Baseline.RemoteSeries.Points
	if basePts[len(basePts)-1].Value < 0.35 {
		t.Errorf("baseline remote fraction drifted: %v", basePts[len(basePts)-1].Value)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig10bcPartitioningWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := RunFig10bc(quickOpts())
	if r.Partitioned.Latency.Median >= r.Baseline.Latency.Median {
		t.Errorf("partitioned median %v not below baseline %v",
			r.Partitioned.Latency.Median, r.Baseline.Latency.Median)
	}
	if r.Partitioned.ActorCall.P99 >= r.Baseline.ActorCall.P99 {
		t.Errorf("partitioned actor-call p99 %v not below baseline %v",
			r.Partitioned.ActorCall.P99, r.Baseline.ActorCall.P99)
	}
	if len(r.Partitioned.LatencyCDF) == 0 || len(r.Partitioned.ActorCallCDF) == 0 {
		t.Error("missing CDFs")
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig10deImprovementAndCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quickOpts()
	o.Measure = time.Minute
	r := RunFig10de(o, []float64{400, 1200})
	for _, row := range r.Rows {
		if row.Partitioned.Latency.Median >= row.Baseline.Latency.Median {
			t.Errorf("load %v: no median improvement", row.Load)
		}
		if row.Partitioned.CPUUtilization >= row.Baseline.CPUUtilization {
			t.Errorf("load %v: no CPU reduction", row.Load)
		}
	}
	// Paper: gains grow with load (allow slack for small-scale noise).
	lo := r.Rows[0]
	hi := r.Rows[len(r.Rows)-1]
	impLo := 1 - float64(lo.Partitioned.Latency.P99)/float64(lo.Baseline.Latency.P99)
	impHi := 1 - float64(hi.Partitioned.Latency.P99)/float64(hi.Baseline.Latency.P99)
	if impHi < impLo-0.15 {
		t.Errorf("p99 improvement shrank with load: %.2f → %.2f", impLo, impHi)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig11aTuningWinsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultHeartbeatOpts()
	o.Measure = 45 * time.Second
	r := RunFig11a(o, []float64{10000, 15000})
	top := r.Rows[len(r.Rows)-1]
	if top.Tuned.Latency.Median >= top.Baseline.Latency.Median {
		t.Errorf("tuned median %v not below baseline %v at top load",
			top.Tuned.Latency.Median, top.Baseline.Latency.Median)
	}
	if top.Tuned.Latency.P99 >= top.Baseline.Latency.P99 {
		t.Errorf("tuned p99 %v not below baseline %v", top.Tuned.Latency.P99, top.Baseline.Latency.P99)
	}
	// The tuned allocation is lean: fewer total threads than 4×8.
	total := 0
	for _, n := range top.Tuned.Threads {
		total += n
	}
	if total >= 32 {
		t.Errorf("tuned allocation %v not leaner than default", top.Tuned.Threads)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestFig11bCombinedBest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := RunFig11b(quickOpts())
	if r.Partition.Latency.Median >= r.Baseline.Latency.Median {
		t.Error("partitioning did not beat baseline")
	}
	if r.Combined.Latency.Median >= r.Baseline.Latency.Median {
		t.Error("combined did not beat baseline")
	}
	if r.Combined.Latency.Median > r.Partition.Latency.Median {
		t.Error("combined should not be worse than partitioning alone")
	}
	if r.Combined.CPUUtilization >= r.Baseline.CPUUtilization {
		t.Error("combined should reduce CPU")
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}

func TestThroughputDoubles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quickOpts()
	o.Warmup = 2 * time.Minute
	o.Measure = time.Minute
	// Sweep loads well past baseline saturation (calibrated peak/server ≈
	// 650 req/s baseline).
	r := RunThroughput(o, []float64{1200, 1800, 2400, 3000})
	basePeak, actopPeak := r.Peaks()
	if actopPeak <= basePeak {
		t.Errorf("actop peak %v not above baseline %v", actopPeak, basePeak)
	}
	if len(r.Render()) == 0 {
		t.Error("empty render")
	}
}
