package experiments

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/metrics"
	"actop/internal/queuing"
	"actop/internal/sim"
)

// Fig7Opts configures the six-stage SEDA emulator experiment of §5.1.
type Fig7Opts struct {
	Rate          float64       // request arrival rate
	Duration      time.Duration // emulation length (paper: ~450s)
	ControlPeriod time.Duration // controller sampling period (paper: 30s)
	Th, Tl        int           // queue-length thresholds (paper: 100, 10)
	Seed          int64
}

// DefaultFig7Opts mirrors the paper's setup.
func DefaultFig7Opts() Fig7Opts {
	return Fig7Opts{
		Rate:          5500,
		Duration:      450 * time.Second,
		ControlPeriod: 30 * time.Second,
		Th:            100,
		Tl:            10,
		Seed:          2,
	}
}

// Fig7Result carries both panels of Fig. 7 for the queue-length controller,
// plus the same run under the §5 model controller for contrast.
type Fig7Result struct {
	Opts Fig7Opts

	QueueSeries  []metrics.TimeSeries // per stage, queue length over time
	ThreadSeries []metrics.TimeSeries // per stage, threads over time
	QueueFlips   int                  // allocation changes (instability measure)
	QueueLatency metrics.Summary

	ModelFlips   int
	ModelLatency metrics.Summary
}

func fig7Stages() []sim.PipelineStage {
	return []sim.PipelineStage{
		{Mean: 100 * time.Microsecond, Threads: 2},
		{Mean: 250 * time.Microsecond, Threads: 2},
		{Mean: 80 * time.Microsecond, Threads: 2},
		{Mean: 300 * time.Microsecond, Threads: 2},
		{Mean: 120 * time.Microsecond, Threads: 2},
		{Mean: 150 * time.Microsecond, Threads: 2},
	}
}

// RunFig7 regenerates Fig. 7: a six-stage SEDA emulator under a
// queue-length threshold controller (Th/Tl) shows oscillating queues and
// thread allocations; the model-driven controller on the same workload is
// stable.
func RunFig7(o Fig7Opts) Fig7Result {
	pq := sim.NewPipeline(8, 0.025, fig7Stages(), o.Seed)
	pq.StartArrivals(o.Rate)
	ctl := &queuing.QueueLengthController{Th: o.Th, Tl: o.Tl}
	pq.RunWithQueueController(o.Duration, o.ControlPeriod, ctl)

	pm := sim.NewPipeline(8, 0.025, fig7Stages(), o.Seed)
	pm.StartArrivals(o.Rate)
	pm.RunWithModelController(o.Duration, o.ControlPeriod, 10e-6)

	return Fig7Result{
		Opts:         o,
		QueueSeries:  pq.QueueSeries,
		ThreadSeries: pq.ThreadSeries,
		QueueFlips:   pq.AllocationFlips(),
		QueueLatency: pq.Latency.Summarize(),
		ModelFlips:   pm.AllocationFlips(),
		ModelLatency: pm.Latency.Summarize(),
	}
}

// Render prints the sampled series and the stability comparison.
func (r Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — 6-stage SEDA, %.0f req/s, queue-length controller (Th=%d, Tl=%d) vs model controller\n",
		r.Opts.Rate, r.Opts.Th, r.Opts.Tl)
	b.WriteString("time(s)  per-stage queue lengths | per-stage threads\n")
	if len(r.QueueSeries) > 0 {
		for i := range r.QueueSeries[0].Points {
			fmt.Fprintf(&b, "%7.0f  ", r.QueueSeries[0].Points[i].At.Seconds())
			for s := range r.QueueSeries {
				fmt.Fprintf(&b, "%6.0f", r.QueueSeries[s].Points[i].Value)
			}
			b.WriteString("  |")
			for s := range r.ThreadSeries {
				fmt.Fprintf(&b, "%3.0f", r.ThreadSeries[s].Points[i].Value)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "queue controller: %d allocation flips, latency %s\n", r.QueueFlips, r.QueueLatency)
	fmt.Fprintf(&b, "model controller: %d allocation flips, latency %s\n", r.ModelFlips, r.ModelLatency)
	return b.String()
}
