package experiments

import (
	"fmt"
	"strings"
	"time"

	"actop/internal/metrics"
)

// Section3Result is the §3 motivation measurement: the same workload under
// random placement and under oracle co-location.
type Section3Result struct {
	Baseline, Oracle HaloResult
}

// RunSection3 regenerates the §3 numbers (random placement: 41/450/736 ms
// median/p95/p99, ≈90% remote on 10 servers; co-located: 24/100/225 ms).
func RunSection3(base HaloOpts) Section3Result {
	b := base
	b.Partitioning, b.ThreadTuning, b.Oracle = false, false, false
	o := base
	o.Partitioning, o.ThreadTuning = false, false
	o.Oracle = true
	return Section3Result{Baseline: RunHalo(b), Oracle: RunHalo(o)}
}

// Render prints the two rows.
func (r Section3Result) Render() string {
	var b strings.Builder
	b.WriteString("§3 — random placement vs co-located actors (same workload)\n")
	b.WriteString("paper: random 41/450/736 ms (p50/p95/p99), ~90% remote; co-located 24/100/225 ms\n")
	fmt.Fprintf(&b, "random    : %s  remote %.0f%%  cpu %.0f%%\n",
		r.Baseline.Latency, 100*r.Baseline.RemoteFraction, 100*r.Baseline.CPUUtilization)
	fmt.Fprintf(&b, "co-located: %s  remote %.0f%%  cpu %.0f%%\n",
		r.Oracle.Latency, 100*r.Oracle.RemoteFraction, 100*r.Oracle.CPUUtilization)
	fmt.Fprintf(&b, "improvement: median %.0f%%, p95 %.0f%%, p99 %.0f%%\n",
		metrics.Improvement(r.Baseline.Latency.Median, r.Oracle.Latency.Median),
		metrics.Improvement(r.Baseline.Latency.P95, r.Oracle.Latency.P95),
		metrics.Improvement(r.Baseline.Latency.P99, r.Oracle.Latency.P99))
	return b.String()
}

// Fig10aResult is the convergence experiment: remote-message fraction and
// migration rate over time, from a cold random placement.
type Fig10aResult struct {
	Partitioned HaloResult
	Baseline    HaloResult
}

// RunFig10a regenerates Fig. 10(a): within ~10 minutes the partitioner
// brings remote messaging from ~90% down to ~12% and the migration rate
// settles at the workload's churn rate (~1% of actors per minute).
func RunFig10a(base HaloOpts) Fig10aResult {
	p := base
	p.Partitioning = true
	p.Warmup = 0 // the transient IS the experiment
	p.Measure = base.Warmup + base.Measure
	b := base
	b.Partitioning = false
	b.Warmup = 0
	b.Measure = p.Measure
	return Fig10aResult{Partitioned: RunHalo(p), Baseline: RunHalo(b)}
}

// Render prints the two series.
func (r Fig10aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10(a) — partitioning convergence\n")
	b.WriteString("paper: remote msgs stabilize ≈12% within ~10 min (baseline ≈90%); moves settle at ≈1%/min of actors\n")
	b.WriteString("time(s)  remote%(ActOp)  moves/min  remote%(baseline)\n")
	n := len(r.Partitioned.RemoteSeries.Points)
	for i := 0; i < n; i++ {
		p := r.Partitioned.RemoteSeries.Points[i]
		mv := 0.0
		if i < len(r.Partitioned.MoveSeries.Points) {
			mv = r.Partitioned.MoveSeries.Points[i].Value
		}
		base := 0.0
		if i < len(r.Baseline.RemoteSeries.Points) {
			base = r.Baseline.RemoteSeries.Points[i].Value
		}
		fmt.Fprintf(&b, "%7.0f  %14.1f  %9.0f  %17.1f\n", p.At.Seconds(), 100*p.Value, mv, 100*base)
	}
	return b.String()
}

// Fig10bcResult carries the latency CDFs of Fig. 10(b) (end-to-end) and
// Fig. 10(c) (server-to-server actor calls).
type Fig10bcResult struct {
	Baseline, Partitioned HaloResult
}

// RunFig10bc regenerates Fig. 10(b)/(c): latency CDFs at the top load with
// and without ActOp partitioning.
func RunFig10bc(base HaloOpts) Fig10bcResult {
	b := base
	b.Partitioning = false
	p := base
	p.Partitioning = true
	return Fig10bcResult{Baseline: RunHalo(b), Partitioned: RunHalo(p)}
}

func renderCDF(b *strings.Builder, name string, base, opt []metrics.CDFPoint) {
	fmt.Fprintf(b, "%s\nfraction   baseline(ms)   actop(ms)\n", name)
	for i := 0; i < len(base) && i < len(opt); i += 4 {
		fmt.Fprintf(b, "%8.2f %14.2f %11.2f\n", base[i].Fraction,
			float64(base[i].Latency)/float64(time.Millisecond),
			float64(opt[i].Latency)/float64(time.Millisecond))
	}
}

// Render prints both CDFs and the headline quantiles.
func (r Fig10bcResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10(b) — end-to-end latency CDF at top load\n")
	b.WriteString("paper: medians 41→24 ms, p99 736→225 ms\n")
	fmt.Fprintf(&b, "baseline : %s\n", r.Baseline.Latency)
	fmt.Fprintf(&b, "actop    : %s\n", r.Partitioned.Latency)
	renderCDF(&b, "CDF (end-to-end)", r.Baseline.LatencyCDF, r.Partitioned.LatencyCDF)
	b.WriteString("\nFig. 10(c) — server-to-server (actor call) latency CDF\n")
	b.WriteString("paper: medians 5→3 ms, p99 297→56 ms\n")
	fmt.Fprintf(&b, "baseline : %s\n", r.Baseline.ActorCall)
	fmt.Fprintf(&b, "actop    : %s\n", r.Partitioned.ActorCall)
	renderCDF(&b, "CDF (actor call)", r.Baseline.ActorCallCDF, r.Partitioned.ActorCallCDF)
	return b.String()
}

// LoadSweepRow is one load point of Fig. 10(d)/(e).
type LoadSweepRow struct {
	Load                  float64
	Baseline, Partitioned HaloResult
}

// Fig10deResult is the load sweep behind Fig. 10(d) (latency improvement)
// and Fig. 10(e) (CPU utilization).
type Fig10deResult struct {
	Rows []LoadSweepRow
}

// RunFig10de regenerates Fig. 10(d)/(e) by sweeping the request load.
func RunFig10de(base HaloOpts, loads []float64) Fig10deResult {
	var res Fig10deResult
	for _, load := range loads {
		b := base
		b.Load = load
		b.Partitioning = false
		p := base
		p.Load = load
		p.Partitioning = true
		res.Rows = append(res.Rows, LoadSweepRow{
			Load: load, Baseline: RunHalo(b), Partitioned: RunHalo(p),
		})
	}
	return res
}

// Render prints improvement percentages per load (10d) and CPU (10e).
func (r Fig10deResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10(d) — latency improvement by load (higher is better; paper: grows with load)\n")
	b.WriteString("   load   median%   p95%   p99%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7.0f %8.0f %7.0f %6.0f\n", row.Load,
			metrics.Improvement(row.Baseline.Latency.Median, row.Partitioned.Latency.Median),
			metrics.Improvement(row.Baseline.Latency.P95, row.Partitioned.Latency.P95),
			metrics.Improvement(row.Baseline.Latency.P99, row.Partitioned.Latency.P99))
	}
	b.WriteString("\nFig. 10(e) — CPU utilization by load (lower is better; paper: −25%…−45% relative)\n")
	b.WriteString("   load   baseline%   actop%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7.0f %10.1f %8.1f\n", row.Load,
			100*row.Baseline.CPUUtilization, 100*row.Partitioned.CPUUtilization)
	}
	return b.String()
}

// Fig10fResult sweeps the actor population at fixed load.
type Fig10fResult struct {
	Rows []struct {
		Players               int
		Baseline, Partitioned HaloResult
	}
}

// RunFig10f regenerates Fig. 10(f): latency improvement holds as the number
// of live players scales (paper: 10K → 100K → 1M at 4K req/s).
func RunFig10f(base HaloOpts, players []int) Fig10fResult {
	var res Fig10fResult
	for _, n := range players {
		b := base
		b.Players = n
		b.Partitioning = false
		p := base
		p.Players = n
		p.Partitioning = true
		res.Rows = append(res.Rows, struct {
			Players               int
			Baseline, Partitioned HaloResult
		}{n, RunHalo(b), RunHalo(p)})
	}
	return res
}

// Render prints improvement percentages per population.
func (r Fig10fResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10(f) — latency improvement by live players (paper: sustained up to 1M)\n")
	b.WriteString("  players   median%   p95%   p99%   moves/min\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9d %8.0f %7.0f %6.0f %11.0f\n", row.Players,
			metrics.Improvement(row.Baseline.Latency.Median, row.Partitioned.Latency.Median),
			metrics.Improvement(row.Baseline.Latency.P95, row.Partitioned.Latency.P95),
			metrics.Improvement(row.Baseline.Latency.P99, row.Partitioned.Latency.P99),
			row.Partitioned.MovesPerMinute)
	}
	return b.String()
}

// ThroughputResult is the peak-throughput saturation search of §6.1.
type ThroughputResult struct {
	Loads       []float64
	Baseline    []HaloResult
	Partitioned []HaloResult
}

// RunThroughput regenerates the §6.1 throughput claim: ActOp sustains ≈2×
// the request rate before the cluster starts rejecting requests.
func RunThroughput(base HaloOpts, loads []float64) ThroughputResult {
	res := ThroughputResult{Loads: loads}
	for _, load := range loads {
		b := base
		b.Load = load
		b.Partitioning = false
		p := base
		p.Load = load
		p.Partitioning = true
		res.Baseline = append(res.Baseline, RunHalo(b))
		res.Partitioned = append(res.Partitioned, RunHalo(p))
	}
	return res
}

// PeakLoad reports the highest load whose goodput stays within 2% of the
// offered load and whose rejection rate stays under 1%.
func peakLoad(loads []float64, runs []HaloResult) float64 {
	peak := 0.0
	for i, r := range runs {
		total := float64(r.Completed + r.Rejected)
		if total == 0 {
			continue
		}
		rejectFrac := float64(r.Rejected) / total
		goodput := r.ThroughputPerSec
		if rejectFrac < 0.01 && goodput >= 0.98*loads[i] {
			if loads[i] > peak {
				peak = loads[i]
			}
		}
	}
	return peak
}

// Peaks reports (baseline peak, ActOp peak).
func (r ThroughputResult) Peaks() (float64, float64) {
	return peakLoad(r.Loads, r.Baseline), peakLoad(r.Loads, r.Partitioned)
}

// Render prints goodput/rejections per load and the peak comparison.
func (r ThroughputResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.1 — peak throughput (paper: 6K → 12K req/s, 2×)\n")
	b.WriteString("   load   base goodput  base rej%   actop goodput  actop rej%\n")
	for i, load := range r.Loads {
		br, pr := r.Baseline[i], r.Partitioned[i]
		bTot := float64(br.Completed + br.Rejected)
		pTot := float64(pr.Completed + pr.Rejected)
		bRej, pRej := 0.0, 0.0
		if bTot > 0 {
			bRej = 100 * float64(br.Rejected) / bTot
		}
		if pTot > 0 {
			pRej = 100 * float64(pr.Rejected) / pTot
		}
		fmt.Fprintf(&b, "%7.0f %13.0f %10.2f %15.0f %11.2f\n",
			load, br.ThroughputPerSec, bRej, pr.ThroughputPerSec, pRej)
	}
	bp, pp := r.Peaks()
	ratio := 0.0
	if bp > 0 {
		ratio = pp / bp
	}
	fmt.Fprintf(&b, "peak: baseline %.0f req/s, actop %.0f req/s (%.1fx)\n", bp, pp, ratio)
	return b.String()
}
