package sim

import (
	"math"
	"testing"
	"time"
)

func TestOverheadFactorScalesWithThreads(t *testing.T) {
	cfg := testConfig(1)
	cfg.ContextSwitchOverhead = 0.025
	cfg.InitialThreads = [NumStages]int{8, 8, 8, 8} // 32 threads on 8 cores
	c := New(cfg)
	s := c.servers[0]
	want := 1 + 0.025*24
	if got := s.overheadFactor(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overheadFactor = %v, want %v", got, want)
	}
	c.SetThreads(0, [NumStages]int{2, 2, 2, 2})
	if got := s.overheadFactor(); got != 1 {
		t.Fatalf("8 threads on 8 cores should have no overhead, got %v", got)
	}
}

func TestContentionFactor(t *testing.T) {
	cfg := testConfig(1)
	c := New(cfg)
	s := c.servers[0]
	if got := s.contentionFactor(); got != 1 {
		t.Fatalf("idle server contention = %v", got)
	}
	// Force 16 busy pure-CPU threads on 8 cores.
	s.stages[StageReceiver].busy = 16
	if got := s.contentionFactor(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("contention = %v, want 2", got)
	}
	s.stages[StageReceiver].busy = 0
}

func TestStageBetaWithBlocking(t *testing.T) {
	cfg := testConfig(1)
	cfg.WorkerTime = 100 * time.Microsecond
	cfg.WorkerBlocking = 300 * time.Microsecond
	c := New(cfg)
	s := c.servers[0]
	if got := s.stageBeta(StageWorker); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("worker β = %v, want 0.25", got)
	}
	if got := s.stageBeta(StageReceiver); got != 1 {
		t.Fatalf("receiver β = %v, want 1", got)
	}
}

func TestServiceDemandTypeOverrides(t *testing.T) {
	cfg := testConfig(1)
	cfg.WorkerTime = 100 * time.Microsecond
	cfg.ClientRequestExtra = 40 * time.Microsecond
	c := New(cfg)
	c.SetTypeCost("heavy", 900*time.Microsecond, 2*time.Millisecond)

	x, w := c.serviceDemand(StageWorker, &Message{Kind: KindActor, Type: "heavy"})
	if x != 900*time.Microsecond || w != 2*time.Millisecond {
		t.Fatalf("override not applied: %v, %v", x, w)
	}
	x, w = c.serviceDemand(StageWorker, &Message{Kind: KindActor, Type: "light"})
	if x != 100*time.Microsecond || w != 0 {
		t.Fatalf("default demand wrong: %v, %v", x, w)
	}
	x, _ = c.serviceDemand(StageWorker, &Message{Kind: KindClientRequest, Type: "light"})
	if x != 140*time.Microsecond {
		t.Fatalf("client extra not added: %v", x)
	}
	x, _ = c.serviceDemand(StageReceiver, &Message{})
	if x != cfg.DeserializeTime {
		t.Fatalf("receiver demand = %v", x)
	}
	x, _ = c.serviceDemand(StageClientSender, &Message{})
	if x != cfg.SerializeTime {
		t.Fatalf("sender demand = %v", x)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cfg := testConfig(1)
	c := New(cfg)
	a := c.CreateActorOn(0, echoHandler, nil)
	// Steady request stream for a few stats windows.
	c.K.Every(2*time.Millisecond, 0, func() { c.SubmitRequest(a, "x", nil, nil) })
	c.Run(5 * time.Second)
	util := c.MeanCPUUtilization(time.Second)
	// 500 req/s × ~(150+135+50+150)µs ≈ 0.24 core-s/s ≈ 3% of 8 cores.
	if util <= 0.005 || util > 0.15 {
		t.Fatalf("utilization = %v, want a few percent", util)
	}
}

func TestBlockingWorkloadHoldsThreadsNotCPU(t *testing.T) {
	// A worker stage with heavy blocking should show low CPU but high
	// concurrent occupancy — the β < 1 regime of §5.2.
	cfg := testConfig(1)
	cfg.WorkerTime = 50 * time.Microsecond
	cfg.WorkerBlocking = 5 * time.Millisecond
	cfg.InitialThreads = [NumStages]int{2, 16, 2, 2}
	c := New(cfg)
	a := c.CreateActorOn(0, echoHandler, nil)
	c.K.Every(time.Millisecond, 0, func() { c.SubmitRequest(a, "x", nil, nil) })
	c.Run(5 * time.Second)
	if c.Completed == 0 {
		t.Fatal("no completions")
	}
	util := c.MeanCPUUtilization(time.Second)
	if util > 0.2 {
		t.Fatalf("blocking workload burned too much CPU: %v", util)
	}
	// Throughput held up despite 5ms blocks (16 threads × 1/5ms = 3200/s
	// capacity for the 1000/s offered load).
	if got := float64(c.Completed) / 5; got < 900 {
		t.Fatalf("throughput %v/s under blocking, want ≈1000", got)
	}
}

func TestPipelineSetThreadsFloor(t *testing.T) {
	p := NewPipeline(4, 0.01, []PipelineStage{{Mean: time.Millisecond, Threads: 2}}, 1)
	p.setThreads(0, 0)
	if p.Threads()[0] != 1 {
		t.Fatalf("threads = %v, want floor 1", p.Threads())
	}
}

func TestPipelineZeroRateNoArrivals(t *testing.T) {
	p := NewPipeline(4, 0.01, []PipelineStage{{Mean: time.Millisecond, Threads: 1}}, 1)
	p.StartArrivals(0)
	p.RunFixed(time.Second, 100*time.Millisecond)
	if p.Completed != 0 {
		t.Fatalf("completed = %d with zero rate", p.Completed)
	}
}
