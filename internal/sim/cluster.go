package sim

import (
	"fmt"
	"time"

	"actop/internal/des"
	"actop/internal/graph"
	"actop/internal/metrics"
	"actop/internal/partition"
)

// typeCost overrides the worker demand for one message type.
type typeCost struct {
	compute  time.Duration
	blocking time.Duration
}

type actorRec struct {
	handler Handler
	state   interface{}
}

// Cluster is the simulated actor cluster. Create one with New, populate it
// with actors and workload timers, then Run it on virtual time.
type Cluster struct {
	Cfg Config
	K   *des.Kernel

	rng     *des.Rand
	servers []*server
	assign  *graph.Assignment
	actors  map[ActorID]*actorRec

	nextActor ActorID
	nextReq   uint64

	workerCost map[string]typeCost

	// Metrics. Latency is end-to-end client latency; ActorCall is one-way
	// actor→actor delivery latency (created → handler completed), the
	// Fig. 10(c) series.
	Latency   metrics.Histogram
	ActorCall metrics.Histogram
	Breakdown *metrics.Breakdown

	RemoteSeries metrics.TimeSeries // fraction of actor msgs that were remote
	MoveSeries   metrics.TimeSeries // actor migrations per minute
	CPUSeries    metrics.TimeSeries // mean CPU utilization across servers

	Submitted, Completed, Rejected uint64
	Moves, Exchanges, Retunes      int

	remoteWindow, totalWindow uint64
	movesWindow               int
}

// New creates a cluster per cfg and installs its periodic controllers.
func New(cfg Config) *Cluster {
	c := &Cluster{
		Cfg:        cfg,
		K:          &des.Kernel{},
		rng:        des.NewRand(cfg.Seed),
		actors:     make(map[ActorID]*actorRec),
		workerCost: make(map[string]typeCost),
		nextActor:  1,
	}
	c.assign = graph.NewAssignment(cfg.ServerIDs()...)
	for _, id := range cfg.ServerIDs() {
		c.servers = append(c.servers, newServer(c, id))
	}
	c.Breakdown = newBreakdown()

	// Stats sampling.
	c.K.Every(cfg.StatsWindow, cfg.StatsWindow, c.sampleStats)

	// Edge-statistics forgetting (§4.3).
	if cfg.MonitorDecayPeriod > 0 {
		for _, s := range c.servers {
			s := s
			c.K.Every(cfg.MonitorDecayPeriod, cfg.MonitorDecayPeriod, func() { s.monitor.Decay() })
		}
	}

	// Partitioning: per-server exchange timers, phase-offset so servers
	// initiate independently (as independent runtimes would).
	if cfg.Partitioning {
		for i, s := range c.servers {
			s := s
			phase := time.Duration(i) * cfg.PartitionPeriod / time.Duration(len(c.servers))
			c.K.Every(cfg.PartitionPeriod, cfg.PartitionPeriod+phase, func() { c.runExchange(s) })
		}
	}

	// Thread tuning: per-server §5 control loops.
	if cfg.ThreadTuning {
		for i, s := range c.servers {
			s := s
			phase := time.Duration(i) * cfg.ThreadPeriod / time.Duration(len(c.servers))
			c.K.Every(cfg.ThreadPeriod, cfg.ThreadPeriod+phase, func() { s.retune(cfg.ThreadPeriod) })
		}
	}
	return c
}

func newBreakdown() *metrics.Breakdown {
	return metrics.NewBreakdown(
		"Recv. queue", "Recv. processing",
		"Worker queue", "Worker processing",
		"Sender queue", "Sender processing",
		"Network", "Other",
	)
}

// Now reports current virtual time.
func (c *Cluster) Now() des.Time { return c.K.Now() }

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) { c.K.RunUntil(c.K.Now() + d) }

// SetTypeCost overrides the worker compute/blocking demand for messages of
// the given type (0 keeps the config default for that component).
func (c *Cluster) SetTypeCost(typ string, compute, blocking time.Duration) {
	c.workerCost[typ] = typeCost{compute: compute, blocking: blocking}
}

// CreateActor instantiates an actor under the default random placement
// policy (§3: Orleans's default) and returns its id.
func (c *Cluster) CreateActor(h Handler, state interface{}) ActorID {
	return c.CreateActorOn(graph.ServerID(c.rng.Intn(len(c.servers))), h, state)
}

// CreateActorOn instantiates an actor on a specific server (used by the
// oracle/local placement baselines and by tests).
func (c *Cluster) CreateActorOn(s graph.ServerID, h Handler, state interface{}) ActorID {
	id := c.nextActor
	c.nextActor++
	c.actors[id] = &actorRec{handler: h, state: state}
	c.assign.Place(id, s)
	return id
}

// DestroyActor deactivates an actor permanently; its monitored edges are
// forgotten (§4.3).
func (c *Cluster) DestroyActor(id ActorID) {
	if _, ok := c.actors[id]; !ok {
		return
	}
	if s, ok := c.assign.Server(id); ok {
		c.servers[s].monitor.ForgetVertex(id)
	}
	c.assign.Remove(id)
	delete(c.actors, id)
}

// NumActors reports live actors.
func (c *Cluster) NumActors() int { return len(c.actors) }

// ServerOf exposes actor placement (for tests and workload oracles).
func (c *Cluster) ServerOf(id ActorID) (graph.ServerID, bool) { return c.assign.Server(id) }

// ServerPopulation reports how many actors a server hosts.
func (c *Cluster) ServerPopulation(s graph.ServerID) int { return c.assign.Count(s) }

// ThreadAllocation reports the live per-stage thread counts of a server.
func (c *Cluster) ThreadAllocation(s graph.ServerID) [NumStages]int {
	return c.servers[s].threadAllocation()
}

// SetThreads pins a server's per-stage threads (used by the Fig. 5 sweep).
func (c *Cluster) SetThreads(s graph.ServerID, alloc [NumStages]int) {
	for i, n := range alloc {
		c.servers[s].stages[i].setThreads(n)
	}
}

// QueueLengths reports the stage queue lengths of a server.
func (c *Cluster) QueueLengths(s graph.ServerID) [NumStages]int {
	var out [NumStages]int
	for i, st := range c.servers[s].stages {
		out[i] = st.queueLen()
	}
	return out
}

func (c *Cluster) serverOf(id ActorID) (graph.ServerID, bool) {
	return c.assign.Server(id)
}

func (c *Cluster) actorState(id ActorID) interface{} {
	if rec := c.actors[id]; rec != nil {
		return rec.state
	}
	return nil
}

// ActorState returns the workload-defined state of an actor (nil when the
// actor does not exist).
func (c *Cluster) ActorState(id ActorID) interface{} { return c.actorState(id) }

// serviceDemand returns the mean CPU demand and blocking time of processing
// m at stage st.
func (c *Cluster) serviceDemand(st StageID, m *Message) (time.Duration, time.Duration) {
	switch st {
	case StageReceiver:
		return c.Cfg.DeserializeTime, 0
	case StageServerSender, StageClientSender:
		return c.Cfg.SerializeTime, 0
	default: // worker
		x := c.Cfg.WorkerTime
		w := c.Cfg.WorkerBlocking
		if tc, ok := c.workerCost[m.Type]; ok {
			if tc.compute > 0 {
				x = tc.compute
			}
			if tc.blocking > 0 {
				w = tc.blocking
			}
		}
		if m.Kind == KindClientRequest {
			x += c.Cfg.ClientRequestExtra
		}
		return x, w
	}
}

// SubmitRequest injects one client request addressed to actor `to`. done
// (optional) observes completion; the cluster also records latency.
func (c *Cluster) SubmitRequest(to ActorID, typ string, payload interface{}, done func(r *Request, at des.Time, rejected bool)) *Request {
	c.nextReq++
	req := &Request{ID: c.nextReq, Start: c.K.Now(), Done: done}
	c.Submitted++
	m := &Message{To: to, Kind: KindClientRequest, Type: typ, Payload: payload, Req: req, createdAt: c.K.Now()}
	c.K.After(c.Cfg.NetworkHop, func() {
		c.accountNetwork(m)
		if s, ok := c.serverOf(to); ok {
			c.servers[s].stages[StageReceiver].enqueue(m)
		} else {
			c.reject(m)
		}
	})
	return req
}

// sendActorMessage routes an actor→actor call (Ctx.Send).
func (c *Cluster) sendActorMessage(from, to ActorID, typ string, payload interface{}, req *Request) {
	src, okS := c.serverOf(from)
	dst, okD := c.serverOf(to)
	m := &Message{From: from, To: to, Kind: KindActor, Type: typ, Payload: payload, Req: req, createdAt: c.K.Now()}
	if !okS || !okD {
		c.reject(m)
		return
	}
	c.totalWindow++
	c.servers[src].observeEdge(from, to)
	if src == dst {
		// LPC: deep-copied arguments, straight to the worker queue (Fig. 3
		// white path) — no serialization stages.
		m.Remote = false
		c.servers[dst].stages[StageWorker].enqueue(m)
		return
	}
	// RPC: serialize at the source, network, deserialize at the target.
	m.Remote = true
	c.remoteWindow++
	c.servers[dst].observeEdge(from, to)
	c.servers[src].stages[StageServerSender].enqueue(m)
}

// sendClientReply routes a reply to the external client (Ctx.ReplyToClient).
func (c *Cluster) sendClientReply(from ActorID, req *Request) {
	s, ok := c.serverOf(from)
	if !ok {
		req.finish(c.K.Now(), true)
		return
	}
	m := &Message{From: from, Kind: KindClientReply, Req: req, createdAt: c.K.Now()}
	c.servers[s].stages[StageClientSender].enqueue(m)
}

// runHandler invokes the target actor's application logic.
func (c *Cluster) runHandler(s *server, m *Message) {
	rec := c.actors[m.To]
	if rec == nil || rec.handler == nil {
		c.reject(m)
		return
	}
	ctx := &Ctx{Cluster: c, Self: m.To, Now: c.K.Now()}
	rec.handler(ctx, m)
}

// reject terminates a message's client request (queue overflow, missing
// actor) — the saturation behavior of §6.1's throughput experiment.
func (c *Cluster) reject(m *Message) {
	if m.Req != nil && !m.Req.done {
		c.Rejected++
		m.Req.finish(c.K.Now(), true)
	}
}

func (c *Cluster) completeRequest(req *Request) {
	if req == nil || req.done {
		return
	}
	c.Completed++
	c.Latency.Record(time.Duration(c.K.Now() - req.Start))
	req.finish(c.K.Now(), false)
}

func (c *Cluster) recordActorDelivery(m *Message) {
	c.ActorCall.Record(time.Duration(c.K.Now() - m.createdAt))
}

// --- breakdown accounting (Fig. 4) ---

func (c *Cluster) accountQueueWait(st StageID, m *Message, wait time.Duration) {
	switch st {
	case StageReceiver:
		c.Breakdown.Add("Recv. queue", wait)
	case StageWorker:
		c.Breakdown.Add("Worker queue", wait)
	default:
		c.Breakdown.Add("Sender queue", wait)
	}
}

func (c *Cluster) accountProcessing(st StageID, m *Message, cpu, ready, blocked time.Duration) {
	switch st {
	case StageReceiver:
		c.Breakdown.Add("Recv. processing", cpu)
	case StageWorker:
		c.Breakdown.Add("Worker processing", cpu+blocked)
	default:
		c.Breakdown.Add("Sender processing", cpu)
	}
	c.Breakdown.Add("Other", ready)
}

func (c *Cluster) accountNetwork(m *Message) {
	c.Breakdown.Add("Network", c.Cfg.NetworkHop)
}

// --- periodic stats ---

func (c *Cluster) sampleStats() {
	now := c.K.Now()
	var rf float64
	if c.totalWindow > 0 {
		rf = float64(c.remoteWindow) / float64(c.totalWindow)
	}
	c.RemoteSeries.Add(now, rf)
	c.remoteWindow, c.totalWindow = 0, 0

	perMin := float64(c.movesWindow) * float64(time.Minute) / float64(c.Cfg.StatsWindow)
	c.MoveSeries.Add(now, perMin)
	c.movesWindow = 0

	var util float64
	for _, s := range c.servers {
		util += s.utilizationSince(c.Cfg.StatsWindow)
	}
	c.CPUSeries.Add(now, util/float64(len(c.servers)))
}

// ResetMetrics clears measurement state after warm-up; controllers and
// placement keep their learned state.
func (c *Cluster) ResetMetrics() {
	c.Latency.Reset()
	c.ActorCall.Reset()
	c.Breakdown = newBreakdown()
	c.RemoteSeries = metrics.TimeSeries{Name: c.RemoteSeries.Name}
	c.MoveSeries = metrics.TimeSeries{Name: c.MoveSeries.Name}
	c.CPUSeries = metrics.TimeSeries{Name: c.CPUSeries.Name}
	c.Submitted, c.Completed, c.Rejected = 0, 0, 0
	c.remoteWindow, c.totalWindow, c.movesWindow = 0, 0, 0
	for _, s := range c.servers {
		s.cpuBusyWindow = 0
	}
}

// --- distributed partitioning (Algorithm 1 over the live cluster) ---

func (c *Cluster) cooling(s *server) bool {
	return s.everExchanged && c.K.Now()-s.lastExchange < c.Cfg.RejectWindow
}

// runExchange is one protocol round initiated by server p, driven by its
// sampled monitor view.
func (c *Cluster) runExchange(p *server) {
	if c.cooling(p) {
		return
	}
	snap := p.monitor.Snapshot()
	local := c.assign.VerticesOn(p.id)
	props := partition.SelectCandidates(c.Cfg.PartitionOpts, snap, c.assign, p.id, local, len(local))
	for _, prop := range props {
		q := c.servers[prop.To]
		if c.cooling(q) {
			continue // try the next-best target (Algorithm 1)
		}
		req := partition.ExchangeRequest{
			From: p.id, To: q.id,
			Candidates:     prop.Candidates,
			FromPopulation: prop.FromPopulation,
		}
		qVerts := c.assign.VerticesOn(q.id)
		resp := partition.DecideExchange(c.Cfg.PartitionOpts, q.monitor.Snapshot(), c.assign, req, qVerts, len(qVerts))
		moved := 0
		for _, v := range resp.Accepted {
			c.migrate(v, p.id, q.id)
			moved++
		}
		for _, v := range resp.Counter {
			c.migrate(v, q.id, p.id)
			moved++
		}
		if moved == 0 {
			continue
		}
		c.Exchanges++
		now := c.K.Now()
		p.lastExchange, p.everExchanged = now, true
		q.lastExchange, q.everExchanged = now, true
		return
	}
}

// migrate transparently moves an actor between servers: the placement
// directory is updated and the actor's edge statistics travel with it
// (§4.3, "Transparent actor migration"). In-flight messages re-resolve the
// directory on arrival.
func (c *Cluster) migrate(v ActorID, from, to graph.ServerID) {
	if _, ok := c.actors[v]; !ok {
		return
	}
	c.assign.Place(v, to)
	src, dst := c.servers[from].monitor, c.servers[to].monitor
	snap := src.Snapshot()
	snap.VertexEdges(v, func(u graph.Vertex, w float64) {
		dst.ObserveMessage(v, u, uint64(w))
	})
	src.ForgetVertex(v)
	c.Moves++
	c.movesWindow++
}

// MoveActor relocates an actor explicitly (used by the §3 oracle-placement
// baseline and by tests); statistics travel with it like any migration.
func (c *Cluster) MoveActor(v ActorID, to graph.ServerID) {
	from, ok := c.assign.Server(v)
	if !ok || from == to {
		return
	}
	c.migrate(v, from, to)
}

// MeanCPUUtilization reports the steady-state mean of the CPU series after
// the given warm-up cut.
func (c *Cluster) MeanCPUUtilization(after time.Duration) float64 {
	return c.CPUSeries.MeanAfter(after)
}

// String summarizes cluster counters.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{servers=%d actors=%d submitted=%d completed=%d rejected=%d moves=%d}",
		len(c.servers), len(c.actors), c.Submitted, c.Completed, c.Rejected, c.Moves)
}
