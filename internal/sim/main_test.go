package sim

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running —
// simulated clusters execute entirely on the caller's goroutine, so a
// survivor means a test harness leak.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
