package sim

import (
	"time"

	"actop/internal/des"
	"actop/internal/metrics"
	"actop/internal/queuing"
)

// Pipeline is a standalone K-stage SEDA emulator on virtual time — the
// 6-stage testbed of §5.1 used to demonstrate queue-length-threshold
// controller instability (Fig. 7) and to compare controllers head-to-head.
// Requests enter stage 0 and traverse every stage in order.
type Pipeline struct {
	K   *des.Kernel
	rng *des.Rand

	cores     float64
	overhead  float64 // context-switch inflation per extra thread
	stages    []*pstage
	Completed uint64
	Latency   metrics.Histogram

	// QueueSeries and ThreadSeries sample each stage over time — the two
	// panels of Fig. 7.
	QueueSeries  []metrics.TimeSeries
	ThreadSeries []metrics.TimeSeries
}

type pstage struct {
	p        *Pipeline
	idx      int
	mean     time.Duration // per-event CPU demand
	blocking time.Duration
	threads  int
	busy     int
	queue    []*pevent
	head     int
	// arrivals in the current control window (for the model controller)
	arrivals uint64
	// measurement sums for the estimator path
	sumWall, sumCPU time.Duration
	processedWindow uint64
}

type pevent struct {
	start    des.Time
	enqueued des.Time
}

// PipelineStage declares one emulated stage.
type PipelineStage struct {
	Mean     time.Duration // mean CPU demand per event
	Blocking time.Duration // synchronous blocking per event
	Threads  int           // initial threads
}

// NewPipeline builds the emulator.
func NewPipeline(cores int, overhead float64, stages []PipelineStage, seed int64) *Pipeline {
	p := &Pipeline{
		K:        &des.Kernel{},
		rng:      des.NewRand(seed),
		cores:    float64(cores),
		overhead: overhead,
	}
	for i, s := range stages {
		th := s.Threads
		if th < 1 {
			th = 1
		}
		p.stages = append(p.stages, &pstage{p: p, idx: i, mean: s.Mean, blocking: s.Blocking, threads: th})
		p.QueueSeries = append(p.QueueSeries, metrics.TimeSeries{Name: "queue"})
		p.ThreadSeries = append(p.ThreadSeries, metrics.TimeSeries{Name: "threads"})
	}
	return p
}

// StartArrivals begins Poisson request arrivals at the given rate.
func (p *Pipeline) StartArrivals(ratePerSec float64) {
	if ratePerSec <= 0 {
		return
	}
	mean := time.Duration(float64(time.Second) / ratePerSec)
	var arrive func()
	arrive = func() {
		ev := &pevent{start: p.K.Now()}
		p.stages[0].enqueue(ev)
		p.K.After(p.rng.Exp(mean), arrive)
	}
	p.K.After(p.rng.Exp(mean), arrive)
}

func (ps *pstage) enqueue(ev *pevent) {
	ev.enqueued = ps.p.K.Now()
	ps.arrivals++
	if ps.busy < ps.threads {
		ps.start(ev)
		return
	}
	ps.queue = append(ps.queue, ev)
}

func (ps *pstage) queueLen() int { return len(ps.queue) - ps.head }

func (ps *pstage) dispatch() {
	for ps.busy < ps.threads && ps.head < len(ps.queue) {
		ev := ps.queue[ps.head]
		ps.queue[ps.head] = nil
		ps.head++
		ps.start(ev)
	}
	if ps.head > 1024 && ps.head*2 > len(ps.queue) {
		n := copy(ps.queue, ps.queue[ps.head:])
		ps.queue = ps.queue[:n]
		ps.head = 0
	}
}

func (ps *pstage) start(ev *pevent) {
	p := ps.p
	ps.busy++
	x := p.rng.Exp(ps.mean)
	xEff := time.Duration(float64(x) * p.overheadFactor())
	f := p.contention()
	wall := time.Duration(float64(xEff)*f) + ps.blocking
	p.K.After(wall, func() {
		ps.busy--
		ps.sumWall += wall
		ps.sumCPU += xEff
		ps.processedWindow++
		ps.dispatch()
		if ps.idx+1 < len(p.stages) {
			p.stages[ps.idx+1].enqueue(ev)
		} else {
			p.Completed++
			p.Latency.Record(time.Duration(p.K.Now() - ev.start))
		}
	})
}

func (p *Pipeline) totalThreads() int {
	t := 0
	for _, s := range p.stages {
		t += s.threads
	}
	return t
}

func (p *Pipeline) overheadFactor() float64 {
	extra := float64(p.totalThreads()) - p.cores
	if extra < 0 {
		extra = 0
	}
	return 1 + p.overhead*extra
}

func (p *Pipeline) contention() float64 {
	var demand float64
	for _, s := range p.stages {
		beta := 1.0
		if s.mean+s.blocking > 0 {
			beta = float64(s.mean) / float64(s.mean+s.blocking)
		}
		demand += float64(s.busy) * beta
	}
	f := demand / p.cores
	if f < 1 {
		return 1
	}
	return f
}

// Threads reports the current allocation.
func (p *Pipeline) Threads() []int {
	out := make([]int, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.threads
	}
	return out
}

// QueueLengths reports current queue lengths.
func (p *Pipeline) QueueLengths() []int {
	out := make([]int, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.queueLen()
	}
	return out
}

// sample records one point of the Fig. 7 series.
func (p *Pipeline) sample() {
	now := p.K.Now()
	for i, s := range p.stages {
		p.QueueSeries[i].Add(now, float64(s.queueLen()))
		p.ThreadSeries[i].Add(now, float64(s.threads))
	}
}

// RunWithQueueController drives the pipeline for duration, sampling queues
// and applying the queue-length-threshold controller every control period —
// the Fig. 7 configuration.
func (p *Pipeline) RunWithQueueController(duration, period time.Duration, ctl *queuing.QueueLengthController) {
	tick := p.K.Every(period, period, func() {
		p.sample()
		next := ctl.Update(p.Threads(), p.QueueLengths())
		for i, n := range next {
			p.setThreads(i, n)
		}
	})
	p.K.RunUntil(p.K.Now() + duration)
	tick.Stop()
}

// RunWithModelController drives the pipeline under the §5 queuing-model
// controller: each period it measures per-stage λ, s, β and installs the
// Solve allocation.
func (p *Pipeline) RunWithModelController(duration, period time.Duration, eta float64) {
	tick := p.K.Every(period, period, func() {
		p.sample()
		p.retune(period, eta)
	})
	p.K.RunUntil(p.K.Now() + duration)
	tick.Stop()
}

// RunFixed drives the pipeline with a static allocation, sampling only.
func (p *Pipeline) RunFixed(duration, period time.Duration) {
	tick := p.K.Every(period, period, func() { p.sample() })
	p.K.RunUntil(p.K.Now() + duration)
	tick.Stop()
}

func (p *Pipeline) setThreads(i, n int) {
	if n < 1 {
		n = 1
	}
	p.stages[i].threads = n
	p.stages[i].dispatch()
}

// retune measures the window and applies the model-driven allocation.
func (p *Pipeline) retune(period time.Duration, eta float64) {
	var stages []queuing.Stage
	for _, s := range p.stages {
		st := queuing.Stage{Name: "stage"}
		if s.processedWindow > 0 {
			meanWall := time.Duration(uint64(s.sumWall) / s.processedWindow)
			meanCPU := time.Duration(uint64(s.sumCPU) / s.processedWindow)
			base := meanCPU + s.blocking
			if base <= 0 {
				base = time.Nanosecond
			}
			st.Lambda = float64(s.arrivals) / period.Seconds()
			st.ServiceRate = 1 / base.Seconds()
			st.Beta = float64(meanCPU) / float64(base)
			_ = meanWall
		} else {
			st.ServiceRate = 1000
			st.Beta = 1
		}
		if st.Beta <= 0 {
			st.Beta = 1e-6
		}
		if st.Beta > 1 {
			st.Beta = 1
		}
		stages = append(stages, st)
		s.arrivals, s.processedWindow, s.sumWall, s.sumCPU = 0, 0, 0, 0
	}
	m := &queuing.Model{Stages: stages, Processors: p.cores, Eta: eta}
	sol, err := queuing.Solve(m)
	if err != nil {
		return
	}
	for i, n := range sol.Integer {
		p.setThreads(i, n)
	}
}

// AllocationFlips counts how many times any stage's thread count changed
// between consecutive samples — the instability measure of Fig. 7(b).
func (p *Pipeline) AllocationFlips() int {
	flips := 0
	for _, ts := range p.ThreadSeries {
		for i := 1; i < len(ts.Points); i++ {
			if ts.Points[i].Value != ts.Points[i-1].Value {
				flips++
			}
		}
	}
	return flips
}
