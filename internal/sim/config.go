// Package sim is a deterministic discrete-event simulator of an Orleans-like
// distributed actor cluster: N servers, each a SEDA pipeline (receiver →
// worker → server-sender / client-sender, Fig. 2) with a finite-core CPU
// model, connected by a latency network, hosting virtual actors that
// exchange local (LPC) and remote (RPC, serialized) messages.
//
// It is the testbed substitute for the paper's 10-server cluster (§6): the
// latency the paper measures is dominated by stage queuing, serialization
// work and thread-allocation overheads, all of which this model reproduces
// mechanistically. Every evaluation figure is regenerated on top of it.
package sim

import (
	"time"

	"actop/internal/graph"
	"actop/internal/partition"
)

// StageID indexes the SEDA stages of a simulated server.
type StageID int

// The four stages of an Orleans server (Fig. 2). The receiver deserializes
// incoming remote/client messages; workers run actor application logic;
// the server sender serializes actor→actor RPCs; the client sender
// serializes responses to external clients.
const (
	StageReceiver StageID = iota
	StageWorker
	StageServerSender
	StageClientSender
	NumStages
)

// StageNames maps StageID to display names.
var StageNames = [NumStages]string{"receiver", "worker", "server sender", "client sender"}

// Config holds every calibration constant of the simulator. Defaults are
// derived from the paper's operating points (see DESIGN.md, "Scale notes"):
// at 6K req/s on ten 8-core servers with ~90% remote messaging, baseline CPU
// utilization lands near 80% and median end-to-end latency in the tens of
// milliseconds.
type Config struct {
	Servers int // number of servers (paper: 10)
	Cores   int // processors per server (paper: 8)

	// InitialThreads is the default per-stage thread count; the paper's
	// baseline is one thread per stage per core (8).
	InitialThreads [NumStages]int

	// Mean service demands (exponentially distributed per event).
	DeserializeTime    time.Duration // receiver stage CPU per remote message
	SerializeTime      time.Duration // sender stages CPU per remote message
	WorkerTime         time.Duration // worker CPU per actor message (default)
	ClientRequestExtra time.Duration // extra worker CPU for the initial client hop

	// WorkerBlocking is synchronous blocking time in the worker stage
	// (w_i of §5.2); zero for fully asynchronous applications.
	WorkerBlocking time.Duration

	// NetworkHop is the one-way network latency between any two machines.
	NetworkHop time.Duration

	// ContextSwitchOverhead inflates per-event CPU time by this fraction
	// for every thread beyond the core count — the multithreading overhead
	// that the η-regularized optimizer trades against queuing (§5.3).
	ContextSwitchOverhead float64

	// QueueCap bounds each stage queue; a message arriving at a full queue
	// rejects its whole client request (used by the peak-throughput
	// experiment; the paper's servers start rejecting at saturation).
	QueueCap int

	// MonitorCapacity is the per-server Space-Saving summary size.
	MonitorCapacity int
	// MonitorSampleRate observes one in every N actor messages (weight N),
	// keeping monitoring overhead constant. 1 = observe all.
	MonitorSampleRate int
	// MonitorDecayPeriod halves all monitored edge counts at this period,
	// so edges of ended games fade instead of pinning summary slots
	// (exponential forgetting over the Space-Saving sample). 0 disables.
	MonitorDecayPeriod time.Duration

	// Partitioning enables the distributed repartitioner.
	Partitioning bool
	// PartitionPeriod is how often each server initiates an exchange.
	PartitionPeriod time.Duration
	// RejectWindow is Algorithm 1's per-server exchange cooldown.
	RejectWindow time.Duration
	// PartitionOpts configures candidate sets and balance tolerance.
	PartitionOpts partition.Options

	// ThreadTuning enables the queuing-model thread controller.
	ThreadTuning bool
	// ThreadPeriod is the estimate→solve→resize control period.
	ThreadPeriod time.Duration
	// ThreadBudgetFactor scales the processor budget handed to the (∗)
	// solver. The model's constraint Σt·β ≤ p pins every thread to a core
	// even when stages run far below saturation; a factor > 1 restores the
	// headroom that per-stage idle time provides. Calibrated (like η,
	// following the paper's procedure) against the Fig. 5 sweep.
	ThreadBudgetFactor float64
	// Eta is the per-thread latency penalty η. The paper calibrates η by
	// tuning the model against a workload with a known-optimal allocation
	// and uses 100µs/thread on its hardware; the same procedure against
	// this simulator's Fig. 5 sweep yields 10µs/thread (service times here
	// are leaner than the .NET runtime's).
	Eta float64

	// StatsWindow is the sampling period for time-series metrics.
	StatsWindow time.Duration

	Seed int64
}

// DefaultConfig returns the calibrated baseline configuration (random
// placement, default threads, both optimizations off).
func DefaultConfig() Config {
	opts := partition.DefaultOptions()
	opts.CandidateSetSize = 128
	return Config{
		Servers:               10,
		Cores:                 8,
		InitialThreads:        [NumStages]int{8, 8, 8, 8},
		DeserializeTime:       150 * time.Microsecond,
		SerializeTime:         150 * time.Microsecond,
		WorkerTime:            135 * time.Microsecond,
		ClientRequestExtra:    50 * time.Microsecond,
		WorkerBlocking:        0,
		NetworkHop:            500 * time.Microsecond,
		ContextSwitchOverhead: 0.025,
		QueueCap:              50_000,
		MonitorCapacity:       4096,
		MonitorSampleRate:     4,
		MonitorDecayPeriod:    2 * time.Minute,
		Partitioning:          false,
		PartitionPeriod:       15 * time.Second,
		RejectWindow:          time.Minute,
		PartitionOpts:         opts,
		ThreadTuning:          false,
		ThreadPeriod:          10 * time.Second,
		ThreadBudgetFactor:    1.6,
		Eta:                   10e-6,
		StatsWindow:           30 * time.Second,
		Seed:                  1,
	}
}

// ServerIDs lists the cluster's server identifiers.
func (c Config) ServerIDs() []graph.ServerID {
	ids := make([]graph.ServerID, c.Servers)
	for i := range ids {
		ids[i] = graph.ServerID(i)
	}
	return ids
}
