package sim

import (
	"testing"
	"time"

	"actop/internal/queuing"
)

// sixStage reproduces the §5.1 emulator: six stages of mixed weight on an
// 8-core box.
func sixStage(threads int, seed int64) *Pipeline {
	stages := []PipelineStage{
		{Mean: 100 * time.Microsecond, Threads: threads},
		{Mean: 250 * time.Microsecond, Threads: threads},
		{Mean: 80 * time.Microsecond, Threads: threads},
		{Mean: 300 * time.Microsecond, Threads: threads},
		{Mean: 120 * time.Microsecond, Threads: threads},
		{Mean: 150 * time.Microsecond, Threads: threads},
	}
	return NewPipeline(8, 0.012, stages, seed)
}

func TestPipelineCompletesRequests(t *testing.T) {
	p := sixStage(4, 1)
	p.StartArrivals(1000)
	p.RunFixed(10*time.Second, time.Second)
	if p.Completed == 0 {
		t.Fatal("no completions")
	}
	if p.Latency.Count() != p.Completed {
		t.Fatalf("latency count %d != completed %d", p.Latency.Count(), p.Completed)
	}
	// All stages sampled.
	if len(p.QueueSeries[0].Points) == 0 {
		t.Fatal("no samples")
	}
}

func TestPipelineQueueControllerFluctuates(t *testing.T) {
	// Fig. 7: under a load near capacity, the threshold controller keeps
	// flipping threads between stages and queues oscillate.
	p := sixStage(2, 2)
	p.StartArrivals(5500)
	ctl := &queuing.QueueLengthController{Th: 100, Tl: 10}
	p.RunWithQueueController(8*time.Minute, 30*time.Second, ctl)
	flips := p.AllocationFlips()
	if flips < 6 {
		t.Fatalf("queue controller flips = %d; expected sustained fluctuation", flips)
	}
	// Queues reach large values at some point (the bottleneck builds up).
	maxQ := 0.0
	for _, ts := range p.QueueSeries {
		for _, pt := range ts.Points {
			if pt.Value > maxQ {
				maxQ = pt.Value
			}
		}
	}
	if maxQ < float64(ctl.Th) {
		t.Fatalf("max queue %v never crossed the growth threshold", maxQ)
	}
}

func TestPipelineModelControllerStabilizes(t *testing.T) {
	run := func(model bool) (*Pipeline, int) {
		p := sixStage(2, 3)
		p.StartArrivals(5500)
		if model {
			p.RunWithModelController(8*time.Minute, 30*time.Second, 100e-6)
		} else {
			ctl := &queuing.QueueLengthController{Th: 100, Tl: 10}
			p.RunWithQueueController(8*time.Minute, 30*time.Second, ctl)
		}
		return p, p.AllocationFlips()
	}
	pModel, flipsModel := run(true)
	pQueue, flipsQueue := run(false)
	if flipsModel >= flipsQueue {
		t.Errorf("model controller flips %d not below queue controller %d", flipsModel, flipsQueue)
	}
	// The model controller should not be materially worse on p99 latency.
	if pModel.Latency.Quantile(0.99) > 2*pQueue.Latency.Quantile(0.99) {
		t.Errorf("model p99 %v far above queue p99 %v",
			pModel.Latency.Quantile(0.99), pQueue.Latency.Quantile(0.99))
	}
}

func TestPipelineBlockingStage(t *testing.T) {
	stages := []PipelineStage{
		{Mean: 100 * time.Microsecond, Threads: 2},
		{Mean: 100 * time.Microsecond, Blocking: 400 * time.Microsecond, Threads: 2},
	}
	p := NewPipeline(4, 0.01, stages, 4)
	p.StartArrivals(3000)
	p.RunWithModelController(2*time.Minute, 10*time.Second, 100e-6)
	th := p.Threads()
	if th[1] <= th[0] {
		t.Errorf("blocking stage threads %d not above pure-CPU %d", th[1], th[0])
	}
	if p.Completed == 0 {
		t.Fatal("no completions")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	run := func() uint64 {
		p := sixStage(3, 7)
		p.StartArrivals(2000)
		p.RunFixed(20*time.Second, time.Second)
		return p.Completed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
