package sim

import (
	"testing"
	"time"

	"actop/internal/des"
	"actop/internal/graph"
)

// echoHandler replies to every client request immediately.
func echoHandler(ctx *Ctx, msg *Message) {
	ctx.ReplyToClient(msg.Req)
}

// small test config: 2 servers, light service times.
func testConfig(servers int) Config {
	cfg := DefaultConfig()
	cfg.Servers = servers
	cfg.Seed = 42
	cfg.StatsWindow = time.Second
	return cfg
}

func TestClientRequestRoundTrip(t *testing.T) {
	c := New(testConfig(1))
	a := c.CreateActorOn(0, echoHandler, nil)
	var finished des.Time
	rejected := false
	c.SubmitRequest(a, "ping", nil, func(r *Request, at des.Time, rej bool) {
		finished, rejected = at, rej
	})
	c.Run(time.Second)
	if rejected {
		t.Fatal("request rejected")
	}
	if finished == 0 {
		t.Fatal("request never completed")
	}
	// Round trip ≥ 2 network hops + some processing.
	if finished < 2*c.Cfg.NetworkHop {
		t.Fatalf("round trip %v implausibly fast", finished)
	}
	if c.Completed != 1 || c.Latency.Count() != 1 {
		t.Fatalf("completed=%d latencyCount=%d", c.Completed, c.Latency.Count())
	}
}

// pingPong: actor A forwards to actor B, B replies to client.
type pingState struct{ peer ActorID }

func forwardHandler(ctx *Ctx, msg *Message) {
	switch msg.Type {
	case "fwd":
		st := ctx.State().(*pingState)
		ctx.Send(st.peer, "reply", nil, msg.Req)
	case "reply":
		ctx.ReplyToClient(msg.Req)
	}
}

func TestLocalVsRemoteCallPath(t *testing.T) {
	// Local pair.
	cl := New(testConfig(2))
	aL := cl.CreateActorOn(0, forwardHandler, &pingState{})
	bL := cl.CreateActorOn(0, forwardHandler, nil)
	cl.ActorState(aL).(*pingState).peer = bL
	cl.SubmitRequest(aL, "fwd", nil, nil)
	cl.Run(time.Second)
	localLat := cl.Latency.Mean()

	// Remote pair.
	cr := New(testConfig(2))
	aR := cr.CreateActorOn(0, forwardHandler, &pingState{})
	bR := cr.CreateActorOn(1, forwardHandler, nil)
	cr.ActorState(aR).(*pingState).peer = bR
	cr.SubmitRequest(aR, "fwd", nil, nil)
	cr.Run(time.Second)
	remoteLat := cr.Latency.Mean()

	if cl.Completed != 1 || cr.Completed != 1 {
		t.Fatalf("completed: %d local, %d remote", cl.Completed, cr.Completed)
	}
	// The remote path adds serialize + network + deserialize (Fig. 3).
	if remoteLat <= localLat+cl.Cfg.NetworkHop {
		t.Fatalf("remote %v not sufficiently above local %v", remoteLat, localLat)
	}
	// The remote run exercised the server-sender stage; the local did not.
	if got := cl.Breakdown.Percent("Recv. processing"); got == 0 {
		t.Error("client request should traverse the receiver")
	}
}

func TestActorCallLatencyRecorded(t *testing.T) {
	c := New(testConfig(2))
	a := c.CreateActorOn(0, forwardHandler, &pingState{})
	b := c.CreateActorOn(1, forwardHandler, nil)
	c.ActorState(a).(*pingState).peer = b
	c.SubmitRequest(a, "fwd", nil, nil)
	c.Run(time.Second)
	if c.ActorCall.Count() != 1 {
		t.Fatalf("actor call count = %d, want 1", c.ActorCall.Count())
	}
}

func TestQueueOverflowRejects(t *testing.T) {
	cfg := testConfig(1)
	cfg.QueueCap = 4
	cfg.InitialThreads = [NumStages]int{1, 1, 1, 1}
	cfg.WorkerTime = 100 * time.Millisecond // hopeless under burst
	c := New(cfg)
	a := c.CreateActorOn(0, echoHandler, nil)
	for i := 0; i < 100; i++ {
		c.SubmitRequest(a, "x", nil, nil)
	}
	c.Run(30 * time.Second)
	if c.Rejected == 0 {
		t.Fatal("expected rejections under burst with tiny queues")
	}
	if c.Completed+c.Rejected != 100 {
		t.Fatalf("completed %d + rejected %d != 100", c.Completed, c.Rejected)
	}
}

func TestMissingActorRejects(t *testing.T) {
	c := New(testConfig(1))
	c.SubmitRequest(999, "x", nil, nil)
	c.Run(time.Second)
	if c.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Rejected)
	}
}

func TestDestroyActorInFlight(t *testing.T) {
	c := New(testConfig(1))
	a := c.CreateActorOn(0, echoHandler, nil)
	c.SubmitRequest(a, "x", nil, nil)
	c.DestroyActor(a) // destroyed before the request arrives
	c.Run(time.Second)
	if c.Completed != 0 || c.Rejected != 1 {
		t.Fatalf("completed=%d rejected=%d", c.Completed, c.Rejected)
	}
	if c.NumActors() != 0 {
		t.Fatal("actor still present")
	}
}

func TestMoveActorReroutesTraffic(t *testing.T) {
	c := New(testConfig(2))
	a := c.CreateActorOn(0, forwardHandler, &pingState{})
	b := c.CreateActorOn(1, forwardHandler, nil)
	c.ActorState(a).(*pingState).peer = b
	c.MoveActor(b, 0)
	if s, _ := c.ServerOf(b); s != 0 {
		t.Fatalf("b on %v after move", s)
	}
	c.SubmitRequest(a, "fwd", nil, nil)
	c.Run(time.Second)
	if c.Completed != 1 {
		t.Fatal("request failed after migration")
	}
	// All actor messages were local now.
	if c.remoteWindow != 0 && c.RemoteSeries.Last() != 0 {
		t.Error("expected zero remote messages after co-location")
	}
	if c.Moves != 1 {
		t.Fatalf("Moves = %d", c.Moves)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		cfg := testConfig(2)
		c := New(cfg)
		var actors []ActorID
		for i := 0; i < 20; i++ {
			actors = append(actors, c.CreateActor(echoHandler, nil))
		}
		r := des.NewRand(9)
		for i := 0; i < 500; i++ {
			a := actors[r.Intn(len(actors))]
			c.K.After(r.Exp(10*time.Millisecond), func() {
				c.SubmitRequest(a, "x", nil, nil)
			})
		}
		c.Run(time.Minute)
		return c.Completed, c.Latency.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
	if c1 != 500 {
		t.Fatalf("completed = %d, want 500", c1)
	}
}

func TestThreadResizeTakesEffect(t *testing.T) {
	cfg := testConfig(1)
	cfg.InitialThreads = [NumStages]int{1, 1, 1, 1}
	c := New(cfg)
	c.SetThreads(0, [NumStages]int{2, 4, 2, 2})
	got := c.ThreadAllocation(0)
	if got != [NumStages]int{2, 4, 2, 2} {
		t.Fatalf("allocation = %v", got)
	}
}

func TestPartitioningReducesRemoteTraffic(t *testing.T) {
	// Static "games": 20 hubs of 5 actors each, randomly placed on 4
	// servers, with steady traffic. The partitioner should co-locate them.
	cfg := testConfig(4)
	cfg.Partitioning = true
	cfg.PartitionPeriod = 5 * time.Second
	cfg.RejectWindow = 10 * time.Second
	cfg.MonitorSampleRate = 1
	cfg.PartitionOpts.ImbalanceTolerance = 10
	c := New(cfg)

	type hubState struct{ members []ActorID }
	hubHandler := func(ctx *Ctx, msg *Message) {
		if msg.Type == "cast" {
			st := ctx.State().(*hubState)
			for _, m := range st.members {
				ctx.Send(m, "note", nil, msg.Req)
			}
			return
		}
		ctx.ReplyToClient(msg.Req)
	}
	leafHandler := func(ctx *Ctx, msg *Message) {
		switch msg.Type {
		case "cast":
			// leaf acting as entry: forward to its hub (payload = hub id)
			ctx.Send(msg.Payload.(ActorID), "cast", nil, msg.Req)
		case "note":
		}
	}

	var hubs []ActorID
	for hIdx := 0; hIdx < 20; hIdx++ {
		st := &hubState{}
		h := c.CreateActor(hubHandler, st)
		for m := 0; m < 5; m++ {
			st.members = append(st.members, c.CreateActor(leafHandler, nil))
		}
		hubs = append(hubs, h)
	}
	// Traffic: every 5ms, a random hub broadcast (via a member).
	r := des.NewRand(3)
	c.K.Every(5*time.Millisecond, 0, func() {
		h := hubs[r.Intn(len(hubs))]
		st := c.ActorState(h).(*hubState)
		entry := st.members[r.Intn(len(st.members))]
		c.sendActorMessage(entry, h, "cast", nil, nil)
	})

	c.Run(30 * time.Second)
	early := c.RemoteSeries.Points[2].Value // after a few windows
	c.Run(4 * time.Minute)
	late := c.RemoteSeries.Last()
	if c.Moves == 0 {
		t.Fatal("partitioner never migrated anything")
	}
	if late >= early*0.6 {
		t.Errorf("remote fraction did not drop enough: %.3f → %.3f (moves %d)", early, late, c.Moves)
	}
}

func TestRejectWindowHonored(t *testing.T) {
	cfg := testConfig(2)
	cfg.Partitioning = true
	cfg.PartitionPeriod = time.Second
	cfg.RejectWindow = time.Hour // effectively one exchange ever per server
	cfg.MonitorSampleRate = 1
	c := New(cfg)
	// Two hubs with strong cross-server traffic.
	a := c.CreateActorOn(0, echoHandler, nil)
	b := c.CreateActorOn(1, echoHandler, nil)
	c.K.Every(time.Millisecond, 0, func() { c.sendActorMessage(a, b, "x", nil, nil) })
	c.Run(time.Minute)
	if c.Exchanges > 2 {
		t.Fatalf("exchanges = %d despite 1h reject window", c.Exchanges)
	}
}

func TestStatsSeriesPopulated(t *testing.T) {
	c := New(testConfig(1))
	a := c.CreateActorOn(0, echoHandler, nil)
	c.K.Every(10*time.Millisecond, 0, func() { c.SubmitRequest(a, "x", nil, nil) })
	c.Run(5 * time.Second)
	if len(c.CPUSeries.Points) == 0 || len(c.RemoteSeries.Points) == 0 {
		t.Fatal("stats series empty")
	}
	util := c.MeanCPUUtilization(0)
	if util <= 0 || util > 1.5 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestResetMetrics(t *testing.T) {
	c := New(testConfig(1))
	a := c.CreateActorOn(0, echoHandler, nil)
	c.SubmitRequest(a, "x", nil, nil)
	c.Run(time.Second)
	c.ResetMetrics()
	if c.Completed != 0 || c.Latency.Count() != 0 || c.Breakdown.Total() != 0 {
		t.Fatal("metrics not reset")
	}
	// Cluster still functional.
	c.SubmitRequest(a, "x", nil, nil)
	c.Run(time.Second)
	if c.Completed != 1 {
		t.Fatal("cluster broken after reset")
	}
}

func TestServerPopulationTracksPlacement(t *testing.T) {
	c := New(testConfig(2))
	ids := make([]ActorID, 0, 10)
	for i := 0; i < 10; i++ {
		ids = append(ids, c.CreateActorOn(graph.ServerID(i%2), echoHandler, nil))
	}
	if c.ServerPopulation(0) != 5 || c.ServerPopulation(1) != 5 {
		t.Fatalf("populations %d/%d", c.ServerPopulation(0), c.ServerPopulation(1))
	}
	c.DestroyActor(ids[0])
	if c.ServerPopulation(0) != 4 {
		t.Fatalf("population after destroy %d", c.ServerPopulation(0))
	}
}
