package sim

import (
	"actop/internal/des"
	"actop/internal/graph"
)

// ActorID identifies a simulated actor; it doubles as the vertex id in the
// communication graph.
type ActorID = graph.Vertex

// ServerID identifies a simulated server (alias of graph.ServerID).
type ServerID = graph.ServerID

// MsgKind distinguishes the pipeline paths a message takes.
type MsgKind uint8

// Message kinds.
const (
	// KindClientRequest enters from a frontend: network → receiver → worker.
	KindClientRequest MsgKind = iota
	// KindActor is an actor→actor call: worker → [server sender → network →
	// receiver when remote] → worker.
	KindActor
	// KindClientReply exits to a frontend: client sender → network → done.
	KindClientReply
)

// Message is one message traversing the cluster.
type Message struct {
	From, To ActorID
	Kind     MsgKind
	// Type is a workload-defined tag selecting handler behavior and
	// optional per-type worker cost overrides.
	Type string
	// Payload carries workload state (opaque to the simulator).
	Payload interface{}
	// Req ties the message to the client request whose processing caused
	// it, for end-to-end latency accounting. Nil for background traffic.
	Req *Request

	// Remote records whether this actor message crossed servers (set at
	// routing time).
	Remote bool

	createdAt des.Time // when the message was produced
	enqueued  des.Time // when it entered the current stage queue
}

// Request is one external client request and its accounting.
type Request struct {
	ID    uint64
	Start des.Time
	// Done is invoked exactly once, when the reply reaches the client or
	// the request is rejected.
	Done func(r *Request, finished des.Time, rejected bool)

	done bool
}

func (r *Request) finish(at des.Time, rejected bool) {
	if r == nil || r.done {
		return
	}
	r.done = true
	if r.Done != nil {
		r.Done(r, at, rejected)
	}
}

// Ctx is the environment an actor handler runs in.
type Ctx struct {
	Cluster *Cluster
	Self    ActorID
	Now     des.Time
}

// Handler is an actor's application logic, invoked in the worker stage of
// the actor's current server. Side effects (Send/ReplyToClient) take effect
// when the worker finishes processing the message.
type Handler func(ctx *Ctx, msg *Message)

// Send issues an actor→actor call from the handler's actor. Local calls
// skip serialization (LPC); remote calls traverse the sender/receiver
// pipelines (RPC), exactly as Fig. 3 contrasts.
func (ctx *Ctx) Send(to ActorID, typ string, payload interface{}, req *Request) {
	ctx.Cluster.sendActorMessage(ctx.Self, to, typ, payload, req)
}

// ReplyToClient completes req's round trip through the client-sender stage
// and the network back to the frontend.
func (ctx *Ctx) ReplyToClient(req *Request) {
	ctx.Cluster.sendClientReply(ctx.Self, req)
}

// State returns the actor's workload-defined state object.
func (ctx *Ctx) State() interface{} {
	return ctx.Cluster.actorState(ctx.Self)
}
