package sim

import "time"

// stage is one SEDA stage of a simulated server: a FIFO event queue drained
// by a bounded pool of threads, with per-event instrumentation feeding the
// Fig. 4 breakdown and the §5.4 estimator.
type stage struct {
	srv *server
	id  StageID

	threads int
	busy    int

	queue []*Message
	head  int

	// instrumentation (lifetime totals)
	processed   uint64
	dropped     uint64
	queueWait   time.Duration
	procWall    time.Duration
	procCPU     time.Duration
	readyTime   time.Duration
	blockedTime time.Duration
}

func (st *stage) queueLen() int { return len(st.queue) - st.head }

// enqueue admits a message to the stage, starting service immediately when a
// thread is free. A full queue rejects the message's client request.
func (st *stage) enqueue(m *Message) {
	m.enqueued = st.srv.c.K.Now()
	if st.srv.c.Cfg.QueueCap > 0 && st.queueLen() >= st.srv.c.Cfg.QueueCap {
		st.dropped++
		st.srv.c.reject(m)
		return
	}
	if st.busy < st.threads {
		st.startService(m)
		return
	}
	st.queue = append(st.queue, m)
}

// dispatch starts service on queued messages while threads are free.
func (st *stage) dispatch() {
	for st.busy < st.threads && st.head < len(st.queue) {
		m := st.queue[st.head]
		st.queue[st.head] = nil
		st.head++
		st.startService(m)
	}
	// Compact the drained prefix occasionally.
	if st.head > 1024 && st.head*2 > len(st.queue) {
		n := copy(st.queue, st.queue[st.head:])
		st.queue = st.queue[:n]
		st.head = 0
	}
}

// startService models one thread processing one event:
//
//	xEff = Exp(mean demand) · (1 + csw·(threads beyond cores))  — CPU burned
//	f    = max(1, server CPU demand / cores)                     — contention
//	wall = xEff·f + w                                            — z of Fig. 9
//
// The ready time r = xEff·(f−1) is the "Other/OS queuing" component of the
// Fig. 4 breakdown; w is synchronous blocking (§5.2).
func (st *stage) startService(m *Message) {
	c := st.srv.c
	now := c.K.Now()
	wait := now - m.enqueued
	st.queueWait += wait
	c.accountQueueWait(st.id, m, wait)

	st.busy++
	x, w := c.serviceDemand(st.id, m)
	xEff := time.Duration(float64(c.rng.Exp(x)) * st.srv.overheadFactor())
	if xEff <= 0 {
		xEff = time.Nanosecond
	}
	f := st.srv.contentionFactor()
	ready := time.Duration(float64(xEff) * (f - 1))
	wall := time.Duration(float64(xEff)*f) + w

	st.srv.cpuBusy += xEff
	st.srv.cpuBusyWindow += xEff

	c.K.After(wall, func() {
		st.busy--
		st.processed++
		st.procWall += wall
		st.procCPU += xEff
		st.readyTime += ready
		st.blockedTime += w
		c.accountProcessing(st.id, m, xEff, ready, w)
		if st.srv.est != nil {
			st.srv.est.Record(int(st.id), wall, xEff)
		}
		st.dispatch()
		st.srv.complete(st.id, m)
	})
}

// setThreads resizes the pool. Growth drains the queue immediately; shrink
// lets running threads finish (busy may transiently exceed threads).
func (st *stage) setThreads(n int) {
	if n < 1 {
		n = 1
	}
	st.threads = n
	st.dispatch()
}

// overheadFactor is the context-switch inflation for the server's current
// total thread count.
func (s *server) overheadFactor() float64 {
	total := 0
	for _, st := range s.stages {
		total += st.threads
	}
	extra := total - s.c.Cfg.Cores
	if extra < 0 {
		extra = 0
	}
	return 1 + s.c.Cfg.ContextSwitchOverhead*float64(extra)
}

// contentionFactor is the processor-sharing slowdown: when the CPU demand of
// currently busy threads exceeds the core count, every on-CPU event
// stretches proportionally.
func (s *server) contentionFactor() float64 {
	var demand float64
	for id, st := range s.stages {
		demand += float64(st.busy) * s.stageBeta(StageID(id))
	}
	f := demand / float64(s.c.Cfg.Cores)
	if f < 1 {
		return 1
	}
	return f
}

// stageBeta is the average CPU fraction per busy thread of a stage.
func (s *server) stageBeta(id StageID) float64 {
	if id != StageWorker {
		return 1
	}
	x := s.c.Cfg.WorkerTime
	w := s.c.Cfg.WorkerBlocking
	if x+w <= 0 {
		return 1
	}
	return float64(x) / float64(x+w)
}

// utilizationSince reports mean CPU utilization over the window and resets
// the window integral.
func (s *server) utilizationSince(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(s.cpuBusyWindow) / (float64(s.c.Cfg.Cores) * float64(window))
	s.cpuBusyWindow = 0
	return u
}
