package sim

import (
	"time"

	"actop/internal/des"
	"actop/internal/estimator"
	"actop/internal/graph"
	"actop/internal/partition"
	"actop/internal/queuing"
)

// server is one simulated machine: four SEDA stages, a finite-core CPU, a
// partition monitor and a thread-allocation estimator.
type server struct {
	c  *Cluster
	id graph.ServerID

	stages [NumStages]*stage

	monitor *partition.Monitor
	est     *estimator.Estimator

	lastExchange  des.Time
	everExchanged bool

	cpuBusy       time.Duration // lifetime core-time integral
	cpuBusyWindow time.Duration

	monitorSkip int
}

func newServer(c *Cluster, id graph.ServerID) *server {
	s := &server{c: c, id: id}
	for i := range s.stages {
		s.stages[i] = &stage{srv: s, id: StageID(i), threads: c.Cfg.InitialThreads[i]}
	}
	s.monitor = partition.NewMonitor(c.Cfg.MonitorCapacity)
	if c.Cfg.ThreadTuning {
		est, err := estimator.New([]estimator.StageSpec{
			{Name: StageNames[StageReceiver], NonBlocking: true},
			{Name: StageNames[StageWorker], NonBlocking: c.Cfg.WorkerBlocking == 0},
			{Name: StageNames[StageServerSender], NonBlocking: true},
			{Name: StageNames[StageClientSender], NonBlocking: true},
		})
		if err == nil {
			s.est = est
		}
	}
	return s
}

// observeEdge feeds the monitor, honoring the sampling rate.
func (s *server) observeEdge(from, to ActorID) {
	rate := s.c.Cfg.MonitorSampleRate
	if rate <= 1 {
		s.monitor.ObserveMessage(from, to, 1)
		return
	}
	s.monitorSkip++
	if s.monitorSkip >= rate {
		s.monitorSkip = 0
		s.monitor.ObserveMessage(from, to, uint64(rate))
	}
}

// complete advances a message to its next pipeline step after a stage
// finished processing it (the continuations of Fig. 3).
func (s *server) complete(st StageID, m *Message) {
	c := s.c
	switch st {
	case StageReceiver:
		// Deserialized: hand to application logic.
		s.stages[StageWorker].enqueue(m)
	case StageWorker:
		// Application logic ran: invoke the handler's side effects, then
		// deliver latency accounting for actor calls.
		if m.Kind == KindActor {
			c.recordActorDelivery(m)
		}
		c.runHandler(s, m)
	case StageServerSender:
		// Serialized RPC: cross the network to the destination server.
		dest, ok := c.serverOf(m.To)
		if !ok {
			c.reject(m)
			return
		}
		c.K.After(c.Cfg.NetworkHop, func() {
			// Re-resolve on arrival: the actor may have migrated while the
			// message was in flight.
			if cur, ok := c.serverOf(m.To); ok {
				c.servers[cur].stages[StageReceiver].enqueue(m)
			} else {
				c.reject(m)
			}
		})
		_ = dest
	case StageClientSender:
		// Serialized reply: network back to the frontend.
		c.K.After(c.Cfg.NetworkHop, func() {
			c.completeRequest(m.Req)
		})
	}
}

// threadAllocation snapshots the current per-stage thread counts.
func (s *server) threadAllocation() [NumStages]int {
	var out [NumStages]int
	for i, st := range s.stages {
		out[i] = st.threads
	}
	return out
}

// retune runs one §5 control cycle: estimate parameters over the elapsed
// period, solve (∗), install the integer allocation.
func (s *server) retune(period time.Duration) {
	if s.est == nil {
		return
	}
	stages := s.est.Estimate(period)
	budget := float64(s.c.Cfg.Cores)
	if f := s.c.Cfg.ThreadBudgetFactor; f > 1 {
		budget *= f
	}
	m := &queuing.Model{Stages: stages, Processors: budget, Eta: s.c.Cfg.Eta}
	sol, err := queuing.Solve(m)
	if err != nil {
		return // infeasible or degenerate epoch: keep the current allocation
	}
	for i, n := range sol.Integer {
		s.stages[i].setThreads(n)
	}
	s.c.Retunes++
}
