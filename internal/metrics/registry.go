package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrent metrics registry with Prometheus text-format
// exposition: summary families (latency distributions over
// ConcurrentHistogram), gauge families, and counter families, each keyed by
// an ordered label set. All methods are goroutine-safe; family and series
// handles may be cached and recorded into from any goroutine.
//
// Families are registered on first use and keep insertion-time help text;
// series (label-value combinations) appear on first observation. Write
// renders everything in name order, series in label order, suitable for a
// Prometheus scrape endpoint.
type Registry struct {
	mu       sync.Mutex
	families map[string]family
	hooks    []func(*Registry)
}

// family is the common exposition surface of the three family kinds.
type family interface {
	write(w io.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]family)}
}

// OnCollect registers a hook run at the start of every Write — the place to
// refresh gauges that mirror externally-owned state (stage queue lengths,
// membership counts) instead of pushing them continuously.
func (r *Registry) OnCollect(fn func(*Registry)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Summary registers (or returns) the summary family with the given name,
// help text, and label keys. Re-registering an existing name returns the
// original family (help/labels of the first registration win).
func (r *Registry) Summary(name, help string, labelKeys ...string) *SummaryFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if sf, ok := f.(*SummaryFamily); ok {
			return sf
		}
		return &SummaryFamily{name: name, labels: labelKeys} // kind clash: orphan family
	}
	sf := &SummaryFamily{name: name, help: help, labels: labelKeys}
	r.families[name] = sf
	return sf
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelKeys ...string) *GaugeFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if gf, ok := f.(*GaugeFamily); ok {
			return gf
		}
		return &GaugeFamily{name: name, labels: labelKeys}
	}
	gf := &GaugeFamily{name: name, help: help, labels: labelKeys}
	r.families[name] = gf
	return gf
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labelKeys ...string) *CounterFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if cf, ok := f.(*CounterFamily); ok {
			return cf
		}
		return &CounterFamily{name: name, labels: labelKeys}
	}
	cf := &CounterFamily{name: name, help: help, labels: labelKeys}
	r.families[name] = cf
	return cf
}

// Write renders the registry in Prometheus text exposition format (0.0.4).
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	hooks := make([]func(*Registry), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, h := range hooks {
		h(r)
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// --- series keying ---

// seriesKey joins label values; \x1f cannot collide with rendered labels.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0] // no allocation on the hot single-label path
	}
	return strings.Join(values, "\x1f")
}

// renderLabels formats {k1="v1",k2="v2"} (with extra appended last), or ""
// when there are no labels at all.
func renderLabels(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// --- summary family ---

// SummaryFamily is a set of latency distributions sharing a metric name,
// one ConcurrentHistogram per label-value combination. Exposed as a
// Prometheus summary: quantiles 0.5/0.95/0.99 plus _sum and _count, in
// seconds.
type SummaryFamily struct {
	name, help string
	labels     []string
	series     sync.Map // seriesKey -> *summarySeries
}

type summarySeries struct {
	values []string
	hist   ConcurrentHistogram
	// ex holds per-latency-decade tail exemplars (exemplar.go): sampled
	// trace ids linking slow observations to their span trees.
	ex exemplarSet
}

// With returns the histogram for one label-value combination, creating it
// on first use. The handle may be cached; single-label lookups allocate
// nothing after the first call.
func (f *SummaryFamily) With(values ...string) *ConcurrentHistogram {
	key := seriesKey(values)
	if s, ok := f.series.Load(key); ok {
		return &s.(*summarySeries).hist
	}
	s, _ := f.series.LoadOrStore(key, &summarySeries{values: append([]string(nil), values...)})
	return &s.(*summarySeries).hist
}

// Observe records one duration into the given label combination.
func (f *SummaryFamily) Observe(d time.Duration, values ...string) {
	f.With(values...).Record(d)
}

func (f *SummaryFamily) write(w io.Writer) {
	type row struct {
		key string
		s   *summarySeries
	}
	var rows []row
	f.series.Range(func(k, v interface{}) bool {
		rows = append(rows, row{key: k.(string), s: v.(*summarySeries)})
		return true
	})
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s summary\n", f.name)
	for _, r := range rows {
		h := r.s.hist.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s%s %s\n", f.name,
				renderLabels(f.labels, r.s.values, "quantile", trimFloat(q)),
				trimFloat(h.Quantile(q).Seconds()))
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			renderLabels(f.labels, r.s.values, "", ""),
			trimFloat(float64(h.Mean())*float64(h.Count())/1e9))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			renderLabels(f.labels, r.s.values, "", ""), h.Count())
		f.writeExemplars(w, r.s)
	}
}

// --- gauge family ---

// GaugeFamily is a set of instantaneous values sharing a metric name.
type GaugeFamily struct {
	name, help string
	labels     []string
	series     sync.Map // seriesKey -> *gaugeSeries
}

type gaugeSeries struct {
	values []string
	bits   atomic.Uint64
}

// Set stores the gauge value for one label combination.
func (f *GaugeFamily) Set(v float64, values ...string) {
	key := seriesKey(values)
	if s, ok := f.series.Load(key); ok {
		s.(*gaugeSeries).bits.Store(math.Float64bits(v))
		return
	}
	s, _ := f.series.LoadOrStore(key, &gaugeSeries{values: append([]string(nil), values...)})
	s.(*gaugeSeries).bits.Store(math.Float64bits(v))
}

func (f *GaugeFamily) write(w io.Writer) {
	type row struct {
		key string
		s   *gaugeSeries
	}
	var rows []row
	f.series.Range(func(k, v interface{}) bool {
		rows = append(rows, row{key: k.(string), s: v.(*gaugeSeries)})
		return true
	})
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s gauge\n", f.name)
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %s\n", f.name,
			renderLabels(f.labels, r.s.values, "", ""),
			trimFloat(math.Float64frombits(r.s.bits.Load())))
	}
}

// --- counter family ---

// CounterFamily is a set of monotonic counters sharing a metric name.
type CounterFamily struct {
	name, help string
	labels     []string
	series     sync.Map // seriesKey -> *counterSeries
}

type counterSeries struct {
	values []string
	n      atomic.Uint64
}

// Add increments the counter for one label combination.
func (f *CounterFamily) Add(n uint64, values ...string) {
	key := seriesKey(values)
	if s, ok := f.series.Load(key); ok {
		s.(*counterSeries).n.Add(n)
		return
	}
	s, _ := f.series.LoadOrStore(key, &counterSeries{values: append([]string(nil), values...)})
	s.(*counterSeries).n.Add(n)
}

// SetTotal overwrites the counter's absolute value — for mirroring an
// externally-maintained monotonic counter from a collect hook.
func (f *CounterFamily) SetTotal(n uint64, values ...string) {
	key := seriesKey(values)
	if s, ok := f.series.Load(key); ok {
		s.(*counterSeries).n.Store(n)
		return
	}
	s, _ := f.series.LoadOrStore(key, &counterSeries{values: append([]string(nil), values...)})
	s.(*counterSeries).n.Store(n)
}

func (f *CounterFamily) write(w io.Writer) {
	type row struct {
		key string
		s   *counterSeries
	}
	var rows []row
	f.series.Range(func(k, v interface{}) bool {
		rows = append(rows, row{key: k.(string), s: v.(*counterSeries)})
		return true
	})
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s counter\n", f.name)
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %d\n", f.name,
			renderLabels(f.labels, r.s.values, "", ""), r.s.n.Load())
	}
}

// trimFloat renders a float compactly (no trailing zeros, no exponent for
// common magnitudes).
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
