package metrics

import "sync/atomic"

// DurableCounters aggregates the durability events of one node: snapshot
// captures on the turn path, background encode + ship work, replica-store
// acceptance, and failover recovery pulls. All fields are lock-free atomics —
// the capture counters are bumped with the turn lock held — and Snapshot
// reads them without stopping the world, so counts taken under concurrent
// traffic are individually exact but not mutually consistent.
type DurableCounters struct {
	// Captured counts state copies taken under the turn lock and handed to
	// the snapshotter pool.
	Captured atomic.Uint64
	// CaptureDropped counts captures skipped because the snapshotter pool's
	// queue was full (the activation stays dirty and retries next turn).
	CaptureDropped atomic.Uint64
	// CaptureErrors counts background encodes that failed.
	CaptureErrors atomic.Uint64
	// Shipped counts snapshot records delivered to a replica.
	Shipped atomic.Uint64
	// ShippedBytes counts snapshot payload bytes delivered to replicas.
	ShippedBytes atomic.Uint64
	// ShipErrors counts replica deliveries that failed or timed out.
	ShipErrors atomic.Uint64
	// ReplicaAccepted counts inbound snapshots installed in the local
	// replica store.
	ReplicaAccepted atomic.Uint64
	// ReplicaStale counts inbound snapshots rejected by the (epoch, seq)
	// ordering rule — delayed ships from older incarnations.
	ReplicaStale atomic.Uint64
	// Recoveries counts failover re-activations that consulted the replica
	// set before admitting their first turn.
	Recoveries atomic.Uint64
	// RecoveredWithState counts recoveries that found and restored a
	// snapshot.
	RecoveredWithState atomic.Uint64
	// RecoveryEmpty counts recoveries where no replica held a snapshot
	// (fresh actor, or it never captured).
	RecoveryEmpty atomic.Uint64
	// RecoveryFailed counts recoveries aborted because replicas were
	// unreachable — the activation is not admitted, callers retry.
	RecoveryFailed atomic.Uint64
	// RecoveryThrottled counts recovery pulls that had to wait on the
	// stampede semaphore.
	RecoveryThrottled atomic.Uint64
}

// DurableSnapshot is a plain-value copy of DurableCounters, suitable for
// JSON rendering on debug endpoints.
type DurableSnapshot struct {
	Captured           uint64 `json:"captured"`
	CaptureDropped     uint64 `json:"capture_dropped"`
	CaptureErrors      uint64 `json:"capture_errors"`
	Shipped            uint64 `json:"shipped"`
	ShippedBytes       uint64 `json:"shipped_bytes"`
	ShipErrors         uint64 `json:"ship_errors"`
	ReplicaAccepted    uint64 `json:"replica_accepted"`
	ReplicaStale       uint64 `json:"replica_stale"`
	Recoveries         uint64 `json:"recoveries"`
	RecoveredWithState uint64 `json:"recovered_with_state"`
	RecoveryEmpty      uint64 `json:"recovery_empty"`
	RecoveryFailed     uint64 `json:"recovery_failed"`
	RecoveryThrottled  uint64 `json:"recovery_throttled"`
}

// Snapshot copies the current counter values.
func (c *DurableCounters) Snapshot() DurableSnapshot {
	return DurableSnapshot{
		Captured:           c.Captured.Load(),
		CaptureDropped:     c.CaptureDropped.Load(),
		CaptureErrors:      c.CaptureErrors.Load(),
		Shipped:            c.Shipped.Load(),
		ShippedBytes:       c.ShippedBytes.Load(),
		ShipErrors:         c.ShipErrors.Load(),
		ReplicaAccepted:    c.ReplicaAccepted.Load(),
		ReplicaStale:       c.ReplicaStale.Load(),
		Recoveries:         c.Recoveries.Load(),
		RecoveredWithState: c.RecoveredWithState.Load(),
		RecoveryEmpty:      c.RecoveryEmpty.Load(),
		RecoveryFailed:     c.RecoveryFailed.Load(),
		RecoveryThrottled:  c.RecoveryThrottled.Load(),
	}
}
