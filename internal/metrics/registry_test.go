package metrics

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHistogramCounts verifies no observation is lost across
// shards and the merged view matches a serial Histogram.
func TestConcurrentHistogramCounts(t *testing.T) {
	var ch ConcurrentHistogram
	var serial Histogram
	for i := 0; i < 10000; i++ {
		d := time.Duration(i%997) * time.Microsecond
		ch.Record(d)
		serial.Record(d)
	}
	snap := ch.Snapshot()
	if snap.Count() != serial.Count() {
		t.Fatalf("count %d != %d", snap.Count(), serial.Count())
	}
	if snap.Mean() != serial.Mean() {
		t.Fatalf("mean %v != %v", snap.Mean(), serial.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if snap.Quantile(q) != serial.Quantile(q) {
			t.Fatalf("q%.2f %v != %v", q, snap.Quantile(q), serial.Quantile(q))
		}
	}
	ch.Reset()
	if ch.Count() != 0 {
		t.Fatalf("count after reset = %d", ch.Count())
	}
}

// TestConcurrentHistogramRaceSoak hammers one histogram from many recorders
// while snapshots run — the -race soak the package comment promises.
func TestConcurrentHistogramRaceSoak(t *testing.T) {
	var ch ConcurrentHistogram
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := ch.Summarize()
			if s.Max > time.Second {
				t.Errorf("impossible max %v", s.Max)
				return
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			for i := 0; i < perWorker; i++ {
				ch.Record(time.Duration(w*perWorker+i) % time.Millisecond)
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	if got, want := ch.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("lost observations: %d recorded, want %d", got, want)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	calls := r.Summary("actop_call_duration_seconds", "actor call round-trip latency", "method")
	calls.Observe(100*time.Millisecond, "Get")
	calls.Observe(300*time.Millisecond, "Get")
	calls.Observe(2*time.Millisecond, "Put")
	comp := r.Summary("actop_call_component_seconds", "latency components", "method", "component")
	comp.Observe(time.Millisecond, "Get", "exec")
	r.Gauge("actop_stage_workers", "live stage pool size", "stage").Set(4, "worker")
	r.Counter("actop_calls_total", "calls served", "kind").Add(7, "local")
	collected := false
	r.OnCollect(func(reg *Registry) {
		collected = true
		reg.Gauge("actop_uptime_seconds", "node uptime").Set(12.5)
	})

	var b strings.Builder
	r.Write(&b)
	out := b.String()
	if !collected {
		t.Fatal("collect hook did not run")
	}
	for _, want := range []string{
		"# TYPE actop_call_duration_seconds summary",
		`actop_call_duration_seconds{method="Get",quantile="0.5"}`,
		`actop_call_duration_seconds_count{method="Get"} 2`,
		`actop_call_duration_seconds_count{method="Put"} 1`,
		`actop_call_component_seconds{method="Get",component="exec",quantile="0.99"}`,
		"# TYPE actop_stage_workers gauge",
		`actop_stage_workers{stage="worker"} 4`,
		"# TYPE actop_calls_total counter",
		`actop_calls_total{kind="local"} 7`,
		"actop_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in name order.
	if strings.Index(out, "actop_call_component_seconds") > strings.Index(out, "actop_call_duration_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestRegistryConcurrent exercises family/series creation and recording
// from many goroutines while Write renders — registry-level -race soak.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := r.Summary("actop_call_duration_seconds", "help", "method")
			g := r.Gauge("actop_gauge", "help", "k")
			c := r.Counter("actop_total", "help")
			for i := 0; i < 3000; i++ {
				f.Observe(time.Duration(i), "m"+string(rune('0'+w%4)))
				g.Set(float64(i), "v")
				c.Add(1)
			}
		}(w)
	}
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.Write(&b)
		}
	}()
	wg.Wait()
	rd.Wait()
	var b strings.Builder
	r.Write(&b)
	if !strings.Contains(b.String(), "actop_total 24000") {
		t.Fatalf("lost counter increments:\n%s", b.String())
	}
}
