// Package metrics provides the measurement primitives used throughout the
// ActOp runtime and its experiment harness: streaming log-bucketed latency
// histograms, exact reservoirs, windowed rate estimators, time series,
// latency-breakdown accounting, and a concurrent registry with
// Prometheus-text exposition.
//
// Goroutine safety, by type:
//
//   - Safe for concurrent use: FailureCounters, ConcurrentHistogram,
//     Registry and its families (SummaryFamily, GaugeFamily, CounterFamily).
//   - Single-goroutine only: Histogram, Reservoir, TimeSeries, Counter,
//     Breakdown. Concurrent recorders must wrap Histogram in a
//     ConcurrentHistogram (or take their own lock, as internal/seda does);
//     snapshots of these types taken under traffic must be produced by the
//     owning goroutine or under that same lock.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// histogram bucketing: we cover 1ns .. ~4.6h with buckets spaced at a fixed
// ratio per decade. subBuckets buckets per power of two keeps relative
// quantile error under ~1/subBuckets.
const (
	histMinValue   = 1 // nanoseconds
	histSubBuckets = 32
	histMaxPow     = 44 // 2^44 ns ≈ 4.9 hours
	histBucketN    = histMaxPow * histSubBuckets
)

// Histogram is a streaming log-bucketed histogram of durations. It records in
// O(1), answers quantiles with bounded relative error (~3%), and merges with
// other histograms. The zero value is ready to use.
type Histogram struct {
	counts   [histBucketN + 1]uint64 // +1 overflow bucket
	total    uint64
	sum      float64 // nanoseconds
	min, max int64   // nanoseconds; valid when total > 0
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < histMinValue {
		ns = histMinValue
	}
	// position = floor(log2(ns)*subBuckets), computed without math.Log2 for speed.
	pow := 63 - leadingZeros64(uint64(ns))
	// fraction within the power-of-two interval, linearised.
	base := int64(1) << uint(pow)
	frac := int((ns - base) * histSubBuckets / base)
	idx := pow*histSubBuckets + frac
	if idx >= histBucketN {
		return histBucketN // overflow bucket
	}
	return idx
}

// bucketLow returns the lower bound (ns) of bucket idx.
func bucketLow(idx int) int64 {
	pow := idx / histSubBuckets
	frac := idx % histSubBuckets
	base := int64(1) << uint(pow)
	return base + base*int64(frac)/histSubBuckets
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)]++
	if h.total == 0 || ns < h.min {
		h.min = ns
	}
	if h.total == 0 || ns > h.max {
		h.max = ns
	}
	h.total++
	h.sum += float64(ns)
}

// RecordN adds n identical observations.
func (h *Histogram) RecordN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)] += n
	if h.total == 0 || ns < h.min {
		h.min = ns
	}
	if h.total == 0 || ns > h.max {
		h.max = ns
	}
	h.total += n
	h.sum += float64(ns) * float64(n)
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the mean of recorded observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min reports the smallest recorded observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max reports the largest recorded observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) of recorded observations.
// Results clamp to [Min, Max] so small histograms stay sensible.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i := 0; i <= histBucketN; i++ {
		cum += h.counts[i]
		if cum > rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.total == 0 || other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears all recorded data.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// CDFPoint is a single point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns up to n evenly spaced (by probability) points of the cumulative
// distribution, suitable for plotting Fig. 10(b)/(c)-style curves.
func (h *Histogram) CDF(n int) []CDFPoint {
	if h.total == 0 || n <= 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		pts = append(pts, CDFPoint{Latency: h.Quantile(q), Fraction: q})
	}
	return pts
}

// Summary is a compact set of the statistics the paper reports.
type Summary struct {
	Count  uint64
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Median: h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
	}
}

// String renders the summary in a single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.Median.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Improvement reports the paper's latency-improvement measure
// 100% × (1 − optimized/baseline) for one quantile pair.
func Improvement(baseline, optimized time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return 100 * (1 - float64(optimized)/float64(baseline))
}

// Reservoir keeps an exact sample of up to capacity observations using
// Vitter's Algorithm R, yielding exact quantiles for modest populations and
// an unbiased sample for large ones.
type Reservoir struct {
	samples []time.Duration
	seen    uint64
	rng     func() uint64
	sorted  bool
}

// NewReservoir returns a reservoir holding at most capacity samples.
// seed selects the deterministic replacement stream.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	s := seed
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	rng := func() uint64 {
		// xorshift64* — deterministic and dependency-free.
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545f4914f6cdd1d
	}
	return &Reservoir{samples: make([]time.Duration, 0, capacity), rng: rng}
}

// Record offers one observation to the reservoir.
func (r *Reservoir) Record(d time.Duration) {
	r.seen++
	r.sorted = false
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
		return
	}
	// Replace a random element with probability capacity/seen.
	j := r.rng() % r.seen
	if j < uint64(cap(r.samples)) {
		r.samples[j] = d
	}
}

// Count reports the number of observations offered (not retained).
func (r *Reservoir) Count() uint64 { return r.seen }

// Quantile reports the q-quantile over the retained sample.
func (r *Reservoir) Quantile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(q * float64(len(r.samples)))
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// Mean reports the mean of the retained sample.
func (r *Reservoir) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.samples {
		sum += float64(s)
	}
	return time.Duration(sum / float64(len(r.samples)))
}

// StdDev reports the standard deviation of the retained sample.
func (r *Reservoir) StdDev() time.Duration {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	mean := float64(r.Mean())
	var ss float64
	for _, s := range r.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}
