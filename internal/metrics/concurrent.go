package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// chShards is the shard count of ConcurrentHistogram. Recording locks one
// shard; shard choice round-robins on an atomic counter, so concurrent
// recorders spread across shards instead of serializing on one mutex.
const chShards = 4

// ConcurrentHistogram wraps Histogram for concurrent recording: a small
// fixed set of mutex-guarded shards, merged on read. Record is
// goroutine-safe and O(1); Snapshot/Summarize are goroutine-safe and may run
// under live traffic (they see each shard at a slightly different instant,
// like every other snapshot in this runtime).
type ConcurrentHistogram struct {
	next   atomic.Uint32
	shards [chShards]struct {
		mu sync.Mutex
		h  Histogram
		// Pad shards apart so two cores recording into neighbouring shards
		// do not ping-pong one cache line holding both mutexes.
		_ [64]byte
	}
}

// Record adds one duration observation. Safe for concurrent use.
func (c *ConcurrentHistogram) Record(d time.Duration) {
	s := &c.shards[c.next.Add(1)%chShards]
	s.mu.Lock()
	s.h.Record(d)
	s.mu.Unlock()
}

// Snapshot merges the shards into a plain Histogram copy (single-goroutine
// semantics apply to the copy).
func (c *ConcurrentHistogram) Snapshot() *Histogram {
	out := &Histogram{}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Merge(&s.h)
		s.mu.Unlock()
	}
	return out
}

// Count reports the total recorded observations across shards.
func (c *ConcurrentHistogram) Count() uint64 {
	var n uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.h.Count()
		s.mu.Unlock()
	}
	return n
}

// Summarize merges the shards and extracts the standard summary.
func (c *ConcurrentHistogram) Summarize() Summary {
	return c.Snapshot().Summarize()
}

// Reset clears all shards (not atomically with respect to recorders: an
// observation racing a Reset lands in either the old or the new window).
func (c *ConcurrentHistogram) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.h.Reset()
		s.mu.Unlock()
	}
}
