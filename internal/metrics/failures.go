package metrics

import "sync/atomic"

// FailureCounters aggregates the failure-tolerance events of one node:
// heartbeat traffic, membership transitions, call retries, duplicate-call
// absorption, and actor panics. All fields are lock-free atomics — they are
// bumped on hot paths (every remote call touches the dedup window) — and
// Snapshot reads them without stopping the world, so counts taken under
// concurrent traffic are individually exact but not mutually consistent.
type FailureCounters struct {
	// HeartbeatsSent counts ping round trips attempted by the detector.
	HeartbeatsSent atomic.Uint64
	// HeartbeatMisses counts ping round trips that failed or timed out.
	HeartbeatMisses atomic.Uint64
	// Suspects counts alive→suspect membership transitions observed.
	Suspects atomic.Uint64
	// Deaths counts suspect→dead membership transitions observed.
	Deaths atomic.Uint64
	// Revivals counts dead→alive transitions (a partitioned peer healed).
	Revivals atomic.Uint64
	// Retries counts call attempts beyond the first (safe re-sends under
	// the call-timeout budget).
	Retries atomic.Uint64
	// DedupHits counts duplicate call deliveries absorbed by the reply
	// dedup window instead of re-executing a turn.
	DedupHits atomic.Uint64
	// Panics counts actor turns that panicked and were isolated.
	Panics atomic.Uint64
	// FailoverPurged counts directory entries and cache entries expunged
	// because their node was declared dead.
	FailoverPurged atomic.Uint64
}

// FailureSnapshot is a plain-value copy of FailureCounters, suitable for
// JSON rendering on debug endpoints.
type FailureSnapshot struct {
	HeartbeatsSent  uint64 `json:"heartbeats_sent"`
	HeartbeatMisses uint64 `json:"heartbeat_misses"`
	Suspects        uint64 `json:"suspects"`
	Deaths          uint64 `json:"deaths"`
	Revivals        uint64 `json:"revivals"`
	Retries         uint64 `json:"retries"`
	DedupHits       uint64 `json:"dedup_hits"`
	Panics          uint64 `json:"panics"`
	FailoverPurged  uint64 `json:"failover_purged"`
}

// Snapshot copies the current counter values.
func (c *FailureCounters) Snapshot() FailureSnapshot {
	return FailureSnapshot{
		HeartbeatsSent:  c.HeartbeatsSent.Load(),
		HeartbeatMisses: c.HeartbeatMisses.Load(),
		Suspects:        c.Suspects.Load(),
		Deaths:          c.Deaths.Load(),
		Revivals:        c.Revivals.Load(),
		Retries:         c.Retries.Load(),
		DedupHits:       c.DedupHits.Load(),
		Panics:          c.Panics.Load(),
		FailoverPurged:  c.FailoverPurged.Load(),
	}
}
