package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros: %+v", h.Summarize())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(42 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 42*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want 42ms", q, got)
		}
	}
	if h.Mean() != 42*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		relErr := math.Abs(float64(got)-float64(c.want)) / float64(c.want)
		if relErr > 0.05 {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %.3f)", c.q, got, c.want, relErr)
		}
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBoundsProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		for _, v := range vals {
			d := time.Duration(v) * time.Microsecond
			h.Record(d)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		for q := 0.0; q <= 1.0; q += 0.1 {
			got := h.Quantile(q)
			if got < lo || got > hi {
				return false
			}
		}
		return h.Min() == lo && h.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 0; i < 500; i++ {
		d := time.Duration(i) * time.Millisecond
		a.Record(d)
		whole.Record(d)
	}
	for i := 500; i < 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Record(d)
		whole.Record(d)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	if a.Quantile(0.5) != whole.Quantile(0.5) {
		t.Errorf("merged median %v, want %v", a.Quantile(0.5), whole.Quantile(0.5))
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 1 || a.Min() != 5*time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merge into empty failed: %+v", a.Summarize())
	}
}

func TestHistogramRecordN(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 7; i++ {
		a.Record(time.Millisecond)
	}
	b.RecordN(time.Millisecond, 7)
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatalf("RecordN mismatch: %v vs %v", a.Summarize(), b.Summarize())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative durations should clamp to 0, got min=%v", h.Min())
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	pts := h.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF returned %d points, want 10", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency || pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Errorf("last fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
	if h.CDF(0) != nil {
		t.Error("CDF(0) should be nil")
	}
}

func TestBucketIndexLowInverse(t *testing.T) {
	// bucketLow(bucketIndex(v)) must be ≤ v and within one bucket ratio.
	for _, ns := range []int64{1, 2, 3, 17, 1000, 999_999, 1_000_000, 123_456_789, 5_000_000_000} {
		idx := bucketIndex(ns)
		low := bucketLow(idx)
		if low > ns {
			t.Errorf("bucketLow(%d)=%d > value %d", idx, low, ns)
		}
		if float64(ns-low) > float64(low)*2/histSubBuckets+1 {
			t.Errorf("value %d too far above bucket low %d", ns, low)
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100*time.Millisecond, 25*time.Millisecond); math.Abs(got-75) > 1e-9 {
		t.Errorf("Improvement = %v, want 75", got)
	}
	if got := Improvement(0, time.Millisecond); got != 0 {
		t.Errorf("Improvement with zero baseline = %v, want 0", got)
	}
	if got := Improvement(50*time.Millisecond, 100*time.Millisecond); got >= 0 {
		t.Errorf("regression should be negative, got %v", got)
	}
}

func TestReservoirExactSmall(t *testing.T) {
	r := NewReservoir(1000, 1)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Quantile(0.5); got != 51*time.Millisecond {
		t.Errorf("median = %v, want 51ms (exact)", got)
	}
	if got := r.Quantile(0); got != 1*time.Millisecond {
		t.Errorf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("q1 = %v", got)
	}
}

func TestReservoirSampling(t *testing.T) {
	r := NewReservoir(100, 7)
	for i := 1; i <= 100_000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != 100_000 {
		t.Fatalf("count = %d", r.Count())
	}
	// Median of uniform 1..100000 µs should be near 50ms.
	med := r.Quantile(0.5)
	if med < 30*time.Millisecond || med > 70*time.Millisecond {
		t.Errorf("sampled median %v too far from 50ms", med)
	}
}

func TestReservoirStdDev(t *testing.T) {
	r := NewReservoir(10, 3)
	if r.StdDev() != 0 {
		t.Error("stddev of empty reservoir should be 0")
	}
	r.Record(10 * time.Millisecond)
	r.Record(10 * time.Millisecond)
	if r.StdDev() != 0 {
		t.Errorf("stddev of constant data = %v, want 0", r.StdDev())
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Name = "remote fraction"
	if ts.Last() != 0 {
		t.Error("empty Last should be 0")
	}
	ts.Add(0, 0.9)
	ts.Add(time.Minute, 0.5)
	ts.Add(2*time.Minute, 0.12)
	ts.Add(3*time.Minute, 0.12)
	if ts.Last() != 0.12 {
		t.Errorf("Last = %v", ts.Last())
	}
	if got := ts.MeanAfter(2 * time.Minute); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("MeanAfter = %v", got)
	}
	if got := ts.MeanAfter(10 * time.Minute); got != 0 {
		t.Errorf("MeanAfter beyond range = %v, want 0", got)
	}
	if out := ts.Render(); len(out) == 0 {
		t.Error("Render empty")
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	// 100 events/sec for 10 seconds.
	for s := 1; s <= 10; s++ {
		c.Inc(time.Duration(s)*time.Second, 100)
	}
	if c.Total() != 1000 {
		t.Fatalf("total = %d", c.Total())
	}
	got := c.RatePerSec(10*time.Second, 5*time.Second)
	if math.Abs(got-100) > 1 {
		t.Errorf("rate = %v, want ~100", got)
	}
	if c.RatePerSec(10*time.Second, 0) != 0 {
		t.Error("zero span should yield 0")
	}
}

func TestCounterWindowCompaction(t *testing.T) {
	var c Counter
	for i := 0; i < 20_000; i++ {
		c.Inc(time.Duration(i)*time.Millisecond, 1)
	}
	if c.Total() != 20_000 {
		t.Fatalf("total = %d", c.Total())
	}
	// Recent-window rate should still be answerable (~1000/sec).
	got := c.RatePerSec(20*time.Second, time.Second)
	if got < 500 || got > 2000 {
		t.Errorf("rate after compaction = %v, want ~1000", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("recv queue", "worker queue", "network")
	b.Add("recv queue", 30*time.Millisecond)
	b.Add("worker queue", 60*time.Millisecond)
	b.Add("network", 10*time.Millisecond)
	if got := b.Percent("worker queue"); math.Abs(got-60) > 1e-9 {
		t.Errorf("worker queue percent = %v, want 60", got)
	}
	if b.Total() != 100*time.Millisecond {
		t.Errorf("total = %v", b.Total())
	}
	// Adding an unknown component appends it.
	b.Add("other", 0)
	comps := b.Components()
	if comps[len(comps)-1] != "other" {
		t.Errorf("components = %v", comps)
	}
	if out := b.Render(); len(out) == 0 {
		t.Error("Render empty")
	}
}

func TestBreakdownPercentsSumTo100(t *testing.T) {
	f := func(a, b, c uint16) bool {
		if a == 0 && b == 0 && c == 0 {
			return true
		}
		bd := NewBreakdown("a", "b", "c")
		bd.Add("a", time.Duration(a))
		bd.Add("b", time.Duration(b))
		bd.Add("c", time.Duration(c))
		sum := bd.Percent("a") + bd.Percent("b") + bd.Percent("c")
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 || len(s.String()) == 0 {
		t.Fatalf("summary = %q", s.String())
	}
}
