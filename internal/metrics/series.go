package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	At    time.Duration // offset from the start of the run (virtual or wall)
	Value float64
}

// TimeSeries accumulates (time, value) samples, e.g. remote-message fraction
// per minute (Fig. 10(a)) or queue length over time (Fig. 7).
type TimeSeries struct {
	Name   string
	Points []SeriesPoint
}

// Add appends one sample.
func (ts *TimeSeries) Add(at time.Duration, v float64) {
	ts.Points = append(ts.Points, SeriesPoint{At: at, Value: v})
}

// Last returns the most recent sample value, or 0 if empty.
func (ts *TimeSeries) Last() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	return ts.Points[len(ts.Points)-1].Value
}

// MeanAfter returns the mean of samples at or after cut, or 0 if none —
// useful for "steady state after warm-up" aggregates.
func (ts *TimeSeries) MeanAfter(cut time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range ts.Points {
		if p.At >= cut {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the series as aligned columns.
func (ts *TimeSeries) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", ts.Name)
	for _, p := range ts.Points {
		fmt.Fprintf(&b, "%8.1fs  %10.4f\n", p.At.Seconds(), p.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing event counter with windowed-rate
// queries against a virtual clock.
type Counter struct {
	total  uint64
	window []stampedCount
}

type stampedCount struct {
	at    time.Duration
	total uint64
}

// Inc adds n events observed at virtual time at.
func (c *Counter) Inc(at time.Duration, n uint64) {
	c.total += n
	c.window = append(c.window, stampedCount{at: at, total: c.total})
	// Bound memory: retain at most 4096 stamps by dropping the older half.
	if len(c.window) > 4096 {
		copy(c.window, c.window[len(c.window)/2:])
		c.window = c.window[:len(c.window)-len(c.window)/2]
	}
}

// Total reports the lifetime event count.
func (c *Counter) Total() uint64 { return c.total }

// RatePerSec estimates the event rate over the window (now−span, now].
func (c *Counter) RatePerSec(now, span time.Duration) float64 {
	if span <= 0 || len(c.window) == 0 {
		return 0
	}
	cut := now - span
	// Find the last stamp at or before the cut.
	i := sort.Search(len(c.window), func(i int) bool { return c.window[i].at > cut })
	var base uint64
	if i > 0 {
		base = c.window[i-1].total
	}
	delta := c.total - base
	return float64(delta) / span.Seconds()
}

// Breakdown attributes total request latency to named components, reproducing
// the Fig. 4 "percent of end-to-end latency" analysis.
type Breakdown struct {
	order  []string
	totals map[string]float64 // summed nanoseconds
}

// NewBreakdown creates a breakdown with a fixed component display order.
func NewBreakdown(components ...string) *Breakdown {
	b := &Breakdown{totals: make(map[string]float64, len(components))}
	b.order = append(b.order, components...)
	for _, c := range components {
		b.totals[c] = 0
	}
	return b
}

// Add accumulates time spent in component.
func (b *Breakdown) Add(component string, d time.Duration) {
	if _, ok := b.totals[component]; !ok {
		b.order = append(b.order, component)
	}
	b.totals[component] += float64(d)
}

// Total reports the grand total across components.
func (b *Breakdown) Total() time.Duration {
	var t float64
	for _, v := range b.totals {
		t += v
	}
	return time.Duration(t)
}

// Percent reports component's share of the grand total, in percent.
func (b *Breakdown) Percent(component string) float64 {
	t := float64(b.Total())
	if t == 0 {
		return 0
	}
	return 100 * b.totals[component] / t
}

// Components returns the component names in display order.
func (b *Breakdown) Components() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Render prints the breakdown as "component  percent" rows.
func (b *Breakdown) Render() string {
	var sb strings.Builder
	for _, c := range b.order {
		fmt.Fprintf(&sb, "%-20s %6.2f%%\n", c, b.Percent(c))
	}
	return sb.String()
}
