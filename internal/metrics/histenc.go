package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of a Histogram, for shipping measurements across process
// boundaries (the cluster scale benchmark merges per-worker histograms in
// the parent). The format is sparse — one varint (delta-index, count) pair
// per non-empty bucket — so a latency histogram with a few dozen live
// buckets costs ~100 bytes, not 8×histBucketN.
const histEncVersion = 1

// AppendBinary appends h's encoding to b and returns the extended slice.
func (h *Histogram) AppendBinary(b []byte) []byte {
	b = append(b, histEncVersion)
	b = binary.AppendUvarint(b, h.total)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.sum))
	b = binary.AppendUvarint(b, uint64(h.min))
	b = binary.AppendUvarint(b, uint64(h.max))
	nonzero := uint64(0)
	for _, c := range h.counts {
		if c != 0 {
			nonzero++
		}
	}
	b = binary.AppendUvarint(b, nonzero)
	prev := 0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b = binary.AppendUvarint(b, uint64(i-prev))
		b = binary.AppendUvarint(b, c)
		prev = i
	}
	return b
}

// UnmarshalBinary replaces h's contents with the encoded histogram in data
// (which must contain exactly one encoding, as produced by AppendBinary).
func (h *Histogram) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != histEncVersion {
		return fmt.Errorf("metrics: bad histogram encoding header")
	}
	data = data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("metrics: truncated histogram encoding")
		}
		data = data[n:]
		return v, nil
	}
	h.Reset()
	total, err := next()
	if err != nil {
		return err
	}
	if len(data) < 8 {
		return fmt.Errorf("metrics: truncated histogram encoding")
	}
	sum := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	min, err := next()
	if err != nil {
		return err
	}
	max, err := next()
	if err != nil {
		return err
	}
	nonzero, err := next()
	if err != nil {
		return err
	}
	idx := 0
	var counted uint64
	for i := uint64(0); i < nonzero; i++ {
		delta, err := next()
		if err != nil {
			return err
		}
		c, err := next()
		if err != nil {
			return err
		}
		if i > 0 && delta == 0 {
			return fmt.Errorf("metrics: histogram encoding repeats bucket %d", idx)
		}
		if delta > histBucketN {
			return fmt.Errorf("metrics: histogram bucket delta %d out of range", delta)
		}
		idx += int(delta)
		if idx < 0 || idx > histBucketN {
			return fmt.Errorf("metrics: histogram bucket index %d out of range", idx)
		}
		// Guard the running sum before adding: bucket counts must sum to
		// exactly total, so any single count above the remainder is invalid —
		// and letting it through would wrap counted around uint64 and forge
		// agreement with total.
		if c > total-counted {
			return fmt.Errorf("metrics: histogram bucket count %d exceeds remaining total %d", c, total-counted)
		}
		h.counts[idx] = c
		counted += c
	}
	if counted != total {
		return fmt.Errorf("metrics: histogram encoding total %d != bucket sum %d", total, counted)
	}
	h.total = total
	h.sum = sum
	h.min = int64(min)
	h.max = int64(max)
	return nil
}
