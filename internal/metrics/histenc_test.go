package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramBinaryRoundTrip(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
	h.RecordN(time.Hour*10, 3) // overflow bucket

	var back Histogram
	if err := back.UnmarshalBinary(h.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("count/min/max mismatch: %v vs %v", back.Summarize(), h.Summarize())
	}
	for _, q := range []float64{0.1, 0.5, 0.95, 0.99, 0.999} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%.3f mismatch: %v vs %v", q, back.Quantile(q), h.Quantile(q))
		}
	}
	if back.Mean() != h.Mean() {
		t.Fatalf("mean mismatch: %v vs %v", back.Mean(), h.Mean())
	}

	// Decoded histograms must merge like the originals.
	var h2, merged, mergedBack Histogram
	for i := 0; i < 1000; i++ {
		h2.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	merged.Merge(&h)
	merged.Merge(&h2)
	var back2 Histogram
	if err := back2.UnmarshalBinary(h2.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	mergedBack.Merge(&back)
	mergedBack.Merge(&back2)
	if mergedBack.Count() != merged.Count() || mergedBack.Quantile(0.99) != merged.Quantile(0.99) {
		t.Fatalf("merge mismatch: %v vs %v", mergedBack.Summarize(), merged.Summarize())
	}
}

func TestHistogramBinaryEmptyAndErrors(t *testing.T) {
	var empty, back Histogram
	if err := back.UnmarshalBinary(empty.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Fatalf("empty round trip: count %d", back.Count())
	}
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if err := back.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	enc := empty.AppendBinary(nil)
	if err := back.UnmarshalBinary(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
}
