package metrics

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistogramBinaryRoundTrip(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
	h.RecordN(time.Hour*10, 3) // overflow bucket

	var back Histogram
	if err := back.UnmarshalBinary(h.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("count/min/max mismatch: %v vs %v", back.Summarize(), h.Summarize())
	}
	for _, q := range []float64{0.1, 0.5, 0.95, 0.99, 0.999} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%.3f mismatch: %v vs %v", q, back.Quantile(q), h.Quantile(q))
		}
	}
	if back.Mean() != h.Mean() {
		t.Fatalf("mean mismatch: %v vs %v", back.Mean(), h.Mean())
	}

	// Decoded histograms must merge like the originals.
	var h2, merged, mergedBack Histogram
	for i := 0; i < 1000; i++ {
		h2.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	merged.Merge(&h)
	merged.Merge(&h2)
	var back2 Histogram
	if err := back2.UnmarshalBinary(h2.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	mergedBack.Merge(&back)
	mergedBack.Merge(&back2)
	if mergedBack.Count() != merged.Count() || mergedBack.Quantile(0.99) != merged.Quantile(0.99) {
		t.Fatalf("merge mismatch: %v vs %v", mergedBack.Summarize(), merged.Summarize())
	}
}

// encodeRaw hand-builds an encoding so tests can craft byte streams the
// encoder itself would never produce.
func encodeRaw(total uint64, sum float64, min, max, nonzero uint64, pairs ...uint64) []byte {
	b := []byte{histEncVersion}
	b = binary.AppendUvarint(b, total)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sum))
	b = binary.AppendUvarint(b, min)
	b = binary.AppendUvarint(b, max)
	b = binary.AppendUvarint(b, nonzero)
	for _, v := range pairs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// TestHistogramBinarySingleBucket round-trips the smallest non-empty
// histogram: one value, one live bucket.
func TestHistogramBinarySingleBucket(t *testing.T) {
	var h, back Histogram
	h.Record(42 * time.Microsecond)
	if err := back.UnmarshalBinary(h.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 1 || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("single-bucket round trip: %v vs %v", back.Summarize(), h.Summarize())
	}
	if back.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatalf("median %v vs %v", back.Quantile(0.5), h.Quantile(0.5))
	}
}

// TestHistogramBinaryMaxCount round-trips saturated bucket counts — the
// largest values the varint layer has to carry.
func TestHistogramBinaryMaxCount(t *testing.T) {
	var h, back Histogram
	h.RecordN(time.Millisecond, math.MaxUint32)
	h.RecordN(time.Second, math.MaxUint32)
	if err := back.UnmarshalBinary(h.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatalf("max-count round trip: %v vs %v", back.Summarize(), h.Summarize())
	}
}

// TestHistogramBinaryAdversarial feeds hand-crafted hostile encodings to
// the decoder: every one must be rejected, never absorbed into state.
func TestHistogramBinaryAdversarial(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		// counted would wrap uint64: MaxUint64 + 2 ≡ 1 == total. The
		// per-bucket remainder guard must reject the first count.
		{"count overflow forges total", encodeRaw(1, 0, 1, 1, 2,
			0, math.MaxUint64, 1, 2)},
		{"single count above total", encodeRaw(5, 0, 1, 1, 1, 0, 6)},
		{"bucket sum below total", encodeRaw(5, 0, 1, 1, 1, 0, 4)},
		{"repeated bucket", encodeRaw(4, 0, 1, 1, 2, 3, 2, 0, 2)},
		{"delta out of range", encodeRaw(2, 0, 1, 1, 1, histBucketN + 1, 2)},
		{"delta wraps int64", encodeRaw(2, 0, 1, 1, 1, math.MaxUint64, 2)},
		{"nonzero exceeds payload", encodeRaw(2, 0, 1, 1, 50, 0, 2)},
	}
	for _, tc := range cases {
		var h Histogram
		if err := h.UnmarshalBinary(tc.data); err == nil {
			t.Errorf("%s: decoder accepted hostile input", tc.name)
		}
		if h.Count() != 0 {
			t.Errorf("%s: rejected input left count %d", tc.name, h.Count())
		}
	}
}

// TestHistogramBinaryTruncations verifies every proper prefix of a valid
// encoding is rejected — no partial decode may succeed.
func TestHistogramBinaryTruncations(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.RecordN(time.Second, 7)
	enc := h.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		var back Histogram
		if err := back.UnmarshalBinary(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(enc))
		}
	}
	var back Histogram
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}

// FuzzHistogramDecode hammers the decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to an equivalent
// histogram (decode∘encode is the identity on the accepted set).
func FuzzHistogramDecode(f *testing.F) {
	var empty Histogram
	f.Add(empty.AppendBinary(nil))
	var one Histogram
	one.Record(time.Millisecond)
	f.Add(one.AppendBinary(nil))
	var many Histogram
	for i := time.Duration(1); i < 100; i++ {
		many.RecordN(i*time.Millisecond, uint64(i))
	}
	f.Add(many.AppendBinary(nil))
	f.Add(encodeRaw(1, 0, 1, 1, 2, 0, math.MaxUint64, 1, 2)) // overflow forgery
	f.Add(encodeRaw(2, 0, 1, 1, 1, math.MaxUint64, 2))       // delta wrap
	f.Add([]byte{})
	f.Add([]byte{histEncVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Histogram
		if err := h.UnmarshalBinary(data); err != nil {
			return
		}
		var back Histogram
		if err := back.UnmarshalBinary(h.AppendBinary(nil)); err != nil {
			t.Fatalf("accepted encoding did not round-trip: %v", err)
		}
		if back.Count() != h.Count() || back.Quantile(0.5) != h.Quantile(0.5) ||
			back.Quantile(0.99) != h.Quantile(0.99) {
			t.Fatalf("round trip drifted: %v vs %v", back.Summarize(), h.Summarize())
		}
	})
}

func TestHistogramBinaryEmptyAndErrors(t *testing.T) {
	var empty, back Histogram
	if err := back.UnmarshalBinary(empty.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Fatalf("empty round trip: count %d", back.Count())
	}
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if err := back.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	enc := empty.AppendBinary(nil)
	if err := back.UnmarshalBinary(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
}
