package metrics

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	runtime.GC() // ensure at least one cycle and a pause sample exist
	var b strings.Builder
	r.Write(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE actop_go_goroutines gauge",
		"actop_go_heap_bytes",
		"actop_go_gc_pause_p99_seconds",
		"actop_go_gomaxprocs",
		"actop_go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "actop_go_goroutines 0\n") {
		t.Error("goroutine gauge reads zero")
	}
	if strings.Contains(out, "actop_go_gomaxprocs 0\n") {
		t.Error("gomaxprocs gauge reads zero")
	}
}

func TestExemplars(t *testing.T) {
	r := NewRegistry()
	dur := r.Summary("call_seconds", "test", "method")
	// Untraced observation: recorded, no exemplar.
	dur.ObserveExemplar(2*time.Millisecond, 0, "Get")
	if ex := dur.Exemplars("Get"); len(ex) != 0 {
		t.Fatalf("untraced observation stored an exemplar: %+v", ex)
	}
	// Traced observations land one exemplar per latency decade.
	dur.ObserveExemplar(200*time.Microsecond, 0xaaa, "Get")
	dur.ObserveExemplar(2*time.Millisecond, 0xbbb, "Get")
	dur.ObserveExemplar(20*time.Millisecond, 0xccc, "Get")
	dur.ObserveExemplar(200*time.Millisecond, 0xddd, "Get")
	ex := dur.Exemplars("Get")
	if len(ex) != 4 {
		t.Fatalf("want 4 exemplars, got %+v", ex)
	}
	if ex[3].TraceID != 0xddd {
		t.Fatalf("slowest decade exemplar = %+v", ex[3])
	}
	// A slower traced call replaces its decade's incumbent; a faster fresh
	// one does not.
	dur.ObserveExemplar(90*time.Millisecond, 0xeee, "Get")
	dur.ObserveExemplar(11*time.Millisecond, 0xfff, "Get")
	if got := dur.Exemplars("Get")[2].TraceID; got != 0xeee {
		t.Fatalf("decade exemplar = %x, want eee", got)
	}

	var b strings.Builder
	r.Write(&b)
	out := b.String()
	if !strings.Contains(out, `# EXEMPLAR call_seconds{method="Get",le="+Inf"} trace_id=0000000000000ddd`) {
		t.Errorf("exemplar line missing:\n%s", out)
	}
	// Exemplar lines are comments: every non-comment line must still be a
	// plain name{labels} value sample.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# EXEMPLAR") && !strings.Contains(line, "trace_id=") {
			t.Errorf("malformed exemplar line: %s", line)
		}
	}
	// The histogram still counted every observation (6 traced + 1 untraced).
	if n := dur.With("Get").Count(); n != 7 {
		t.Fatalf("count = %d, want 7", n)
	}
}
