package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Tail-latency exemplars: each summary series keeps one sampled trace id
// per latency decade, so a p99 spike on the scrape page links directly to
// a concrete span tree (/debug/actop/traces?trace=<id>). Storage is a
// handful of atomic pointer slots per series — traced observations race
// to publish, untraced observations never touch them.

// Exemplar is one sampled observation pinned to a latency bucket.
type Exemplar struct {
	TraceID uint64
	Value   float64 // seconds
	At      time.Time
}

// exemplarSlots partitions observations into latency decades:
// <1ms, <10ms, <100ms, >=100ms.
const exemplarSlots = 4

// exemplarBuckets names each slot's upper bound in the rendered output
// (Prometheus `le` convention).
var exemplarBuckets = [exemplarSlots]string{"0.001", "0.01", "0.1", "+Inf"}

// exemplarTTL is the staleness horizon: a slower exemplar normally wins
// its slot, but anything older than this loses to fresh traffic so the
// page reflects the current regime, not one spike from an hour ago.
const exemplarTTL = time.Minute

type exemplarSet [exemplarSlots]atomic.Pointer[Exemplar]

func exemplarSlot(d time.Duration) int {
	switch {
	case d < time.Millisecond:
		return 0
	case d < 10*time.Millisecond:
		return 1
	case d < 100*time.Millisecond:
		return 2
	}
	return 3
}

// offer publishes a traced observation into its decade slot if it is the
// first, the slowest so far, or the incumbent has gone stale. Lost races
// are acceptable — any traced observation is a valid exemplar.
func (s *exemplarSet) offer(d time.Duration, traceID uint64) {
	if traceID == 0 {
		return
	}
	i := exemplarSlot(d)
	v := d.Seconds()
	now := time.Now()
	cur := s[i].Load()
	if cur != nil && v < cur.Value && now.Sub(cur.At) < exemplarTTL {
		return
	}
	s[i].Store(&Exemplar{TraceID: traceID, Value: v, At: now})
}

// snapshot returns the populated exemplars, slowest-decade last.
func (s *exemplarSet) snapshot() []Exemplar {
	var out []Exemplar
	for i := range s {
		if e := s[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// ObserveExemplar records one duration like Observe and, when traceID is
// non-zero (a traced call), offers it as a tail-latency exemplar for its
// latency decade.
func (f *SummaryFamily) ObserveExemplar(d time.Duration, traceID uint64, values ...string) {
	key := seriesKey(values)
	s, ok := f.series.Load(key)
	if !ok {
		s, _ = f.series.LoadOrStore(key, &summarySeries{values: append([]string(nil), values...)})
	}
	ss := s.(*summarySeries)
	ss.hist.Record(d)
	ss.ex.offer(d, traceID)
}

// Exemplars reports the stored exemplars for one label combination
// (nil when the series has none) — for debug endpoints and tools.
func (f *SummaryFamily) Exemplars(values ...string) []Exemplar {
	s, ok := f.series.Load(seriesKey(values))
	if !ok {
		return nil
	}
	return s.(*summarySeries).ex.snapshot()
}

// writeExemplars renders a series' exemplars as comment lines after its
// sample lines. Plain text-format scrapers skip comments, so the lines are
// free to carry the trace link a human (or actop-top) follows:
//
//	# EXEMPLAR actop_call_duration_seconds{method="Put",le="0.1"} trace_id=4f1a... value=0.042
func (f *SummaryFamily) writeExemplars(w io.Writer, s *summarySeries) {
	for i := range s.ex {
		e := s.ex[i].Load()
		if e == nil {
			continue
		}
		fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%016x value=%s\n", f.name,
			renderLabels(f.labels, s.values, "le", exemplarBuckets[i]),
			e.TraceID, trimFloat(e.Value))
	}
}
