package metrics

import (
	"runtime"
	rtmetrics "runtime/metrics"
)

// RegisterRuntimeGauges exposes Go runtime health on the registry via an
// OnCollect hook: goroutine count, heap bytes, GC pause p99, and
// GOMAXPROCS. Refreshing at scrape time keeps the cost off every other
// path (ReadMemStats stops the world briefly — once per scrape, never per
// call).
func RegisterRuntimeGauges(r *Registry) {
	goroutines := r.Gauge("actop_go_goroutines",
		"live goroutines in this process")
	heap := r.Gauge("actop_go_heap_bytes",
		"bytes of allocated heap objects")
	gcPause := r.Gauge("actop_go_gc_pause_p99_seconds",
		"99th percentile GC stop-the-world pause since process start")
	maxprocs := r.Gauge("actop_go_gomaxprocs",
		"GOMAXPROCS the scheduler is running with")
	gcCycles := r.Counter("actop_go_gc_cycles_total",
		"completed GC cycles")
	sample := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	r.OnCollect(func(*Registry) {
		goroutines.Set(float64(runtime.NumGoroutine()))
		maxprocs.Set(float64(runtime.GOMAXPROCS(0)))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		gcCycles.SetTotal(uint64(ms.NumGC))
		rtmetrics.Read(sample)
		if sample[0].Value.Kind() == rtmetrics.KindFloat64Histogram {
			gcPause.Set(histQuantile(sample[0].Value.Float64Histogram(), 0.99))
		}
	})
}

// histQuantile extracts a quantile from a runtime/metrics histogram
// (cumulative counts per bucket; the returned value is the upper bound of
// the bucket holding the quantile's observation).
func histQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	idx := len(h.Counts) - 1
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			idx = i
			break
		}
	}
	// Buckets[i+1] is bucket i's upper bound; the last bucket's bound can
	// be +Inf, in which case its lower bound is the honest answer.
	ub := h.Buckets[idx+1]
	if ub > 1e18 || ub != ub { // +Inf or NaN guard
		ub = h.Buckets[idx]
	}
	return ub
}
