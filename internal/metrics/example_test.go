package metrics_test

import (
	"fmt"
	"time"

	"actop/internal/metrics"
)

func ExampleHistogram() {
	var h metrics.Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	fmt.Println("median:", h.Quantile(0.5).Round(20*time.Millisecond))
	fmt.Println("p99   :", h.Quantile(0.99).Round(20*time.Millisecond))
	// Output:
	// median: 500ms
	// p99   : 980ms
}
