package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary primitives for hand-rolled AppendBinary/UnmarshalBinary
// implementations and for the transport's envelope framing. The Append*
// helpers extend dst; the Read* helpers consume from the front of data and
// return the remainder, so decoders chain them:
//
//	name, data, err := codec.ReadString(data)
//	n, data, err := codec.ReadUvarint(data)
//
// ReadBytes returns a view into data (zero-copy); callers that retain the
// slice past the lifetime of data must copy it.

// ErrShortBuffer reports a truncated encoding.
var ErrShortBuffer = errors.New("codec: short buffer")

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v in zig-zag signed varint encoding.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendFloat64 appends v as 8 fixed big-endian bytes.
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length followed by the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadUvarint consumes an unsigned varint from data.
func ReadUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: uvarint", ErrShortBuffer)
	}
	return v, data[n:], nil
}

// ReadVarint consumes a zig-zag signed varint from data.
func ReadVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: varint", ErrShortBuffer)
	}
	return v, data[n:], nil
}

// ReadBool consumes a 0/1 byte.
func ReadBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("%w: bool", ErrShortBuffer)
	}
	return data[0] != 0, data[1:], nil
}

// ReadFloat64 consumes 8 fixed big-endian bytes.
func ReadFloat64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: float64", ErrShortBuffer)
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
}

// ReadString consumes a length-prefixed string (the string is a copy, safe
// to retain).
func ReadString(data []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: string of %d bytes", ErrShortBuffer, n)
	}
	return string(rest[:n]), rest[n:], nil
}

// ReadBytes consumes length-prefixed bytes, returning a zero-copy view
// into data.
func ReadBytes(data []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("%w: bytes of %d", ErrShortBuffer, n)
	}
	return rest[:n:n], rest[n:], nil
}
