package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

// fastMsg implements the full fast-path interface set for these tests.
type fastMsg struct {
	ID   uint64
	Name string
	Bits []byte
}

func (m fastMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = AppendUvarint(dst, m.ID)
	dst = AppendString(dst, m.Name)
	return AppendBytes(dst, m.Bits), nil
}

func (m fastMsg) MarshalBinary() ([]byte, error) { return m.AppendBinary(nil) }

func (m *fastMsg) UnmarshalBinary(data []byte) error {
	var err error
	if m.ID, data, err = ReadUvarint(data); err != nil {
		return err
	}
	if m.Name, data, err = ReadString(data); err != nil {
		return err
	}
	view, _, err := ReadBytes(data)
	if err != nil {
		return err
	}
	m.Bits = nil
	if len(view) > 0 {
		m.Bits = append([]byte(nil), view...) // the view aliases data
	}
	return nil
}

func (m fastMsg) CopyValue() interface{} {
	if len(m.Bits) == 0 {
		m.Bits = nil
		return m
	}
	m.Bits = append([]byte(nil), m.Bits...)
	return m
}

// TestTagDispatch pins the self-describing payload format: fast-path types
// emit tagBin and decode through UnmarshalBinary; everything else emits
// tagGob and decodes through gob. Both kinds coexist on one wire.
func TestTagDispatch(t *testing.T) {
	fast, err := Marshal(fastMsg{ID: 7, Name: "n", Bits: []byte{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if fast[0] != tagBin {
		t.Fatalf("fast-path payload tagged %q, want %q", fast[0], tagBin)
	}
	var fm fastMsg
	if err := Unmarshal(fast, &fm); err != nil {
		t.Fatal(err)
	}
	if fm.ID != 7 || fm.Name != "n" || !bytes.Equal(fm.Bits, []byte{1, 2}) {
		t.Fatalf("fast round trip: %+v", fm)
	}

	slow, err := Marshal(payload{Name: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if slow[0] != tagGob {
		t.Fatalf("fallback payload tagged %q, want %q", slow[0], tagGob)
	}
	var pm payload
	if err := Unmarshal(slow, &pm); err != nil {
		t.Fatal(err)
	}
	if pm.Name != "g" {
		t.Fatalf("gob round trip: %+v", pm)
	}

	// A fast-path payload aimed at a type without UnmarshalBinary is a
	// clear error, not silent garbage.
	var wrong payload
	if err := Unmarshal(fast, &wrong); err == nil {
		t.Fatal("expected error decoding tagBin into a gob-only type")
	}
}

func TestAssign(t *testing.T) {
	var dst fastMsg
	if err := Assign(&dst, fastMsg{ID: 1, Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if dst.ID != 1 || dst.Name != "v" {
		t.Fatalf("assign from value: %+v", dst)
	}
	src := fastMsg{ID: 2}
	if err := Assign(&dst, &src); err != nil {
		t.Fatal(err)
	}
	if dst.ID != 2 {
		t.Fatalf("assign from pointer: %+v", dst)
	}
	if err := Assign(&dst, "not a fastMsg"); err == nil {
		t.Fatal("expected type-mismatch error")
	}
	if err := Assign(dst, fastMsg{}); err == nil {
		t.Fatal("expected non-pointer-target error")
	}
	if err := Assign(&dst, nil); err == nil {
		t.Fatal("expected nil-source error")
	}
}

// TestDeepCopyCopier checks that Copier types deep-copy without aliasing
// and without touching the serialization machinery (the encoding would
// reject an unregistered interface, so success implies the value path ran).
func TestDeepCopyCopier(t *testing.T) {
	src := fastMsg{ID: 3, Bits: []byte{9, 9}}
	var dst fastMsg
	if err := DeepCopy(&dst, &src); err != nil {
		t.Fatal(err)
	}
	dst.Bits[0] = 0
	if src.Bits[0] != 9 {
		t.Fatalf("DeepCopy via Copier aliased Bits: %+v", src)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	fw := NewFrameWriter(&wire)
	frames := [][]byte{[]byte("alpha"), {}, []byte("a much longer frame body to cross buffer boundaries")}
	for _, f := range frames {
		if err := fw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&wire)
	for i, want := range frames {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
}

// TestFrameOversizeRejected crafts a corrupt length prefix beyond
// MaxFrameSize: the reader must fail fast, not attempt the allocation.
func TestFrameOversizeRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("expected oversize-frame error")
	}
}

// TestBinaryPrimitivesProperty round-trips a chain of every primitive.
func TestBinaryPrimitivesProperty(t *testing.T) {
	f := func(u uint64, i int64, b bool, fl float64, s string, raw []byte) bool {
		var dst []byte
		dst = AppendUvarint(dst, u)
		dst = AppendVarint(dst, i)
		dst = AppendBool(dst, b)
		dst = AppendFloat64(dst, fl)
		dst = AppendString(dst, s)
		dst = AppendBytes(dst, raw)

		gu, dst2, err := ReadUvarint(dst)
		if err != nil {
			return false
		}
		gi, dst2, err := ReadVarint(dst2)
		if err != nil {
			return false
		}
		gb, dst2, err := ReadBool(dst2)
		if err != nil {
			return false
		}
		gf, dst2, err := ReadFloat64(dst2)
		if err != nil {
			return false
		}
		gs, dst2, err := ReadString(dst2)
		if err != nil {
			return false
		}
		graw, dst2, err := ReadBytes(dst2)
		if err != nil || len(dst2) != 0 {
			return false
		}
		return gu == u && gi == i && gb == b &&
			(gf == fl || (fl != fl && gf != gf)) && // NaN round-trips as NaN
			gs == s && bytes.Equal(graw, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadPrimitivesShortBuffer checks every reader reports truncation as
// ErrShortBuffer instead of panicking or reading garbage.
func TestReadPrimitivesShortBuffer(t *testing.T) {
	if _, _, err := ReadBool(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("ReadBool(nil) = %v", err)
	}
	if _, _, err := ReadFloat64([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short ReadFloat64 = %v", err)
	}
	if _, _, err := ReadUvarint(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("ReadUvarint(nil) = %v", err)
	}
	// Length prefix claims more bytes than remain.
	short := AppendUvarint(nil, 100)
	if _, _, err := ReadString(short); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated ReadString = %v", err)
	}
	if _, _, err := ReadBytes(short); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated ReadBytes = %v", err)
	}
}

// TestMarshalAppendReusesCapacity confirms the pooled-buffer contract: with
// enough spare capacity, a fast-path MarshalAppend performs zero
// allocations.
func TestMarshalAppendReusesCapacity(t *testing.T) {
	// Box the message once: the interface conversion at a call site is the
	// caller's allocation, not the encoder's.
	var msg interface{} = fastMsg{ID: 42, Name: "player", Bits: []byte{1, 2, 3}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := MarshalAppend(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs != 0 {
		t.Fatalf("fast-path MarshalAppend into spare capacity: %.1f allocs/op, want 0", allocs)
	}
}

// TestGobFallbackStillHandlesAnything sanity-checks that a type with no
// fast-path methods round-trips through the fallback unchanged.
func TestGobFallbackStillHandlesAnything(t *testing.T) {
	type anything struct {
		M map[string][]int
		P *int
	}
	n := 5
	in := anything{M: map[string][]int{"a": {1, 2}}, P: &n}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out anything
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.M, out.M) || out.P == nil || *out.P != n {
		t.Fatalf("fallback round trip: %+v", out)
	}
}
