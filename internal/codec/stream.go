package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed framing over a byte stream. Each connection owns one
// sticky FrameWriter/FrameReader pair for its whole lifetime, so the
// bufio buffers and the reader's frame scratch buffer are paid once per
// connection, not once per message.
//
// Wire format: a 4-byte big-endian frame length followed by the frame
// body. The body's interpretation (the envelope encoding) belongs to the
// transport layer.

// MaxFrameSize bounds a single frame (64 MiB) so a corrupt length prefix
// cannot trigger an absurd allocation.
const MaxFrameSize = 64 << 20

// frameBufSize sizes the per-connection bufio buffers: big enough to
// coalesce many small envelopes into one syscall.
const frameBufSize = 64 << 10

// FrameWriter writes length-prefixed frames through a buffered writer.
// Writes accumulate in the buffer until Flush — the transport flushes only
// when its outbound queue drains, coalescing back-to-back messages into
// single syscalls. Not safe for concurrent use; the transport serializes
// access through the per-peer writer goroutine.
type FrameWriter struct {
	w *bufio.Writer
}

// NewFrameWriter wraps w (typically a net.Conn).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriterSize(w, frameBufSize)}
}

// WriteFrame appends one frame to the stream buffer. The frame is copied;
// the caller may recycle it immediately.
func (f *FrameWriter) WriteFrame(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("codec: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.w.Write(frame)
	return err
}

// Flush pushes buffered frames to the underlying writer.
func (f *FrameWriter) Flush() error { return f.w.Flush() }

// FrameReader reads length-prefixed frames, reusing one scratch buffer
// across reads. Not safe for concurrent use.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r (typically a net.Conn).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, frameBufSize)}
}

// frameAllocChunk bounds how much scratch the reader grows per read step:
// a corrupt length prefix claiming a near-MaxFrameSize frame must prove the
// stream actually carries the bytes, chunk by chunk, before the full
// allocation happens.
const frameAllocChunk = 1 << 20

// ReadFrame returns the next frame body. The returned slice is the
// reader's scratch buffer: it is valid only until the next ReadFrame, and
// anything retained from it (e.g. an envelope payload) must be copied out.
func (f *FrameReader) ReadFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, fmt.Errorf("codec: frame of %d bytes exceeds limit", n)
	}
	if cap(f.buf) < n {
		if n <= frameAllocChunk {
			f.buf = make([]byte, n)
		} else {
			// Large frame: grow the scratch buffer incrementally while the
			// bytes arrive, so a lying length prefix on a short stream costs
			// at most one chunk of allocation.
			if cap(f.buf) < frameAllocChunk {
				f.buf = make([]byte, frameAllocChunk)
			}
			for read := 0; read < n; {
				if read == cap(f.buf) {
					grown := make([]byte, min(cap(f.buf)*2, n))
					copy(grown, f.buf[:read])
					f.buf = grown
				}
				step := min(cap(f.buf), n) - read
				if _, err := io.ReadFull(f.r, f.buf[read:read+step]); err != nil {
					return nil, err
				}
				read += step
			}
			return f.buf[:n], nil
		}
	}
	buf := f.buf[:n]
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
