package codec

import (
	"testing"
)

// benchMsg mirrors a typical actor-call argument: a couple of scalars, a
// slice and a map, the shape gob is slowest at. It implements the fast-path
// interfaces, as the hot workload message types do, so the headline
// benchmarks measure the message plane as actually used; gobBenchMsg below
// is the same shape without methods, benchmarked as the fallback.
type benchMsg struct {
	Name  string
	Score int64
	Tags  []string
	Meta  map[string]int64
}

func (m benchMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = AppendString(dst, m.Name)
	dst = AppendVarint(dst, m.Score)
	dst = AppendUvarint(dst, uint64(len(m.Tags)))
	for _, t := range m.Tags {
		dst = AppendString(dst, t)
	}
	dst = AppendUvarint(dst, uint64(len(m.Meta)))
	for k, v := range m.Meta {
		dst = AppendString(dst, k)
		dst = AppendVarint(dst, v)
	}
	return dst, nil
}

func (m benchMsg) MarshalBinary() ([]byte, error) { return m.AppendBinary(nil) }

func (m *benchMsg) UnmarshalBinary(data []byte) error {
	var err error
	if m.Name, data, err = ReadString(data); err != nil {
		return err
	}
	if m.Score, data, err = ReadVarint(data); err != nil {
		return err
	}
	var n uint64
	if n, data, err = ReadUvarint(data); err != nil {
		return err
	}
	m.Tags = nil
	if n > 0 {
		m.Tags = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var s string
			if s, data, err = ReadString(data); err != nil {
				return err
			}
			m.Tags = append(m.Tags, s)
		}
	}
	if n, data, err = ReadUvarint(data); err != nil {
		return err
	}
	m.Meta = nil
	if n > 0 {
		m.Meta = make(map[string]int64, n)
		for i := uint64(0); i < n; i++ {
			var k string
			var v int64
			if k, data, err = ReadString(data); err != nil {
				return err
			}
			if v, data, err = ReadVarint(data); err != nil {
				return err
			}
			m.Meta[k] = v
		}
	}
	return nil
}

func (m benchMsg) CopyValue() interface{} {
	if len(m.Tags) > 0 {
		m.Tags = append([]string(nil), m.Tags...)
	} else {
		m.Tags = nil
	}
	if len(m.Meta) > 0 {
		meta := make(map[string]int64, len(m.Meta))
		for k, v := range m.Meta {
			meta[k] = v
		}
		m.Meta = meta
	} else {
		m.Meta = nil
	}
	return m
}

// gobBenchMsg is benchMsg stripped of its methods: the reflection-gob
// fallback path.
type gobBenchMsg benchMsg

func newBenchMsg() benchMsg {
	return benchMsg{
		Name:  "player/42",
		Score: 123456,
		Tags:  []string{"lobby", "game-7", "na-east"},
		Meta:  map[string]int64{"joined": 1700000000, "beats": 99},
	}
}

// BenchmarkCodecMarshal measures one argument serialization per op — the
// per-message cost every remote call pays — through the fast path.
func BenchmarkCodecMarshal(b *testing.B) {
	msg := newBenchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

// BenchmarkCodecMarshalGobFallback is the same message through the
// reflection-gob fallback, for comparison.
func BenchmarkCodecMarshalGobFallback(b *testing.B) {
	msg := gobBenchMsg(newBenchMsg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

// BenchmarkCodecMarshalAppendPooled is the transport's actual pattern:
// encode into a recycled buffer — steady state allocates only what the
// encoding itself needs.
func BenchmarkCodecMarshalAppendPooled(b *testing.B) {
	msg := newBenchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := MarshalAppend(GetBuffer(), msg)
		if err != nil {
			b.Fatal(err)
		}
		PutBuffer(buf)
	}
}

// BenchmarkCodecUnmarshal measures the decode side of the fast path.
func BenchmarkCodecUnmarshal(b *testing.B) {
	data, err := Marshal(newBenchMsg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out benchMsg
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDeepCopy measures the LPC isolation copy through CopyValue.
func BenchmarkCodecDeepCopy(b *testing.B) {
	src := newBenchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dst benchMsg
		if err := DeepCopy(&dst, &src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDeepCopyGobFallback is the serializing deep copy the
// fallback pays.
func BenchmarkCodecDeepCopyGobFallback(b *testing.B) {
	src := gobBenchMsg(newBenchMsg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dst gobBenchMsg
		if err := DeepCopy(&dst, &src); err != nil {
			b.Fatal(err)
		}
	}
}
