// Package codec provides argument serialization for RPC and deep copying
// for LPC in the actor runtime.
//
// Orleans serializes arguments for remote calls and deep-copies them for
// local calls so actors never share mutable state (§2). This package does
// both through encoding/gob: values cross actor boundaries only by value.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Register makes a concrete type encodable when passed through interface
// fields (a thin wrapper over gob.Register so callers need not import gob).
func Register(v interface{}) { gob.Register(v) }

// Marshal serializes v.
func Marshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("codec: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes data into v (a non-nil pointer).
func Unmarshal(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("codec: unmarshal into %T: %w", v, err)
	}
	return nil
}

// DeepCopy copies src into dst (both pointers to the same type) through a
// full encode/decode round trip, guaranteeing the isolation semantics of a
// local actor call: no aliasing survives.
func DeepCopy(dst, src interface{}) error {
	data, err := Marshal(src)
	if err != nil {
		return err
	}
	return Unmarshal(data, dst)
}
