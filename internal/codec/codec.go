// Package codec provides argument serialization for RPC and deep copying
// for LPC in the actor runtime.
//
// Orleans serializes arguments for remote calls and deep-copies them for
// local calls so actors never share mutable state (§2). This package does
// both, with a two-tier design: message types may implement the fast-path
// interfaces (Marshaler/Unmarshaler/Copier) for reflection-free,
// allocation-light encoding and copying; every other type falls back to
// encoding/gob. Payloads are self-describing — a one-byte tag selects the
// decoder — so fast-path and fallback types can mix freely on the wire.
//
// Buffer ownership: GetBuffer/PutBuffer recycle payload buffers through a
// sync.Pool. A buffer passed to PutBuffer must have no other live
// references; the transport and runtime follow the ownership rules spelled
// out in DESIGN.md ("Message plane").
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// Marshaler is the fast-path encoder interface: implementations append
// their binary encoding to dst (which may have existing data and spare
// capacity) and return the extended slice, bypassing reflection entirely.
// Implement it on the value receiver so both T and *T hit the fast path.
type Marshaler interface {
	AppendBinary(dst []byte) ([]byte, error)
}

// Unmarshaler is the fast-path decoder interface (the standard library's
// encoding.BinaryUnmarshaler contract): data holds exactly one value
// previously produced by AppendBinary. Implementations must not retain
// data — it may be a view into a pooled buffer.
type Unmarshaler interface {
	UnmarshalBinary(data []byte) error
}

// Copier is the fast-path deep-copy interface for local calls: CopyValue
// returns a copy sharing no mutable state with the receiver. To match the
// gob fallback's semantics, implementations should normalize zero-length
// slices and maps to nil.
type Copier interface {
	CopyValue() interface{}
}

// Payload tags: the first byte of every Marshal output selects the decoder.
const (
	tagGob byte = 'G' // gob-encoded fallback
	tagBin byte = 'B' // Marshaler fast path
)

// Register makes a concrete type encodable when passed through interface
// fields (a thin wrapper over gob.Register so callers need not import gob).
func Register(v interface{}) { gob.Register(v) }

// --- pooled buffers ---

// maxPooledBuf bounds the capacity of recycled buffers so one huge payload
// doesn't pin memory in the pool forever.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 512)
	return &b
}}

// GetBuffer returns a zero-length buffer with pooled capacity. Pass it to
// MarshalAppend and return it with PutBuffer when no reference to it (or
// any slice of it) remains live.
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer (or anywhere else —
// the pool does not care about provenance). Oversized buffers are dropped.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// gobBufPool recycles the scratch buffers behind gob fallback encoding.
var gobBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// MarshalAppend appends the encoding of v to dst and returns the extended
// slice. Types implementing Marshaler encode reflection-free; everything
// else goes through gob (a fresh encoder per value, so the output is
// self-contained — stream-sticky encoders live in the transport layer).
func MarshalAppend(dst []byte, v interface{}) ([]byte, error) {
	if m, ok := v.(Marshaler); ok {
		out, err := m.AppendBinary(append(dst, tagBin))
		if err != nil {
			return nil, fmt.Errorf("codec: marshal %T: %w", v, err)
		}
		return out, nil
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		gobBufPool.Put(buf)
		return nil, fmt.Errorf("codec: marshal %T: %w", v, err)
	}
	dst = append(append(dst, tagGob), buf.Bytes()...)
	gobBufPool.Put(buf)
	return dst, nil
}

// Marshal serializes v into a fresh buffer.
func Marshal(v interface{}) ([]byte, error) {
	return MarshalAppend(nil, v)
}

// Unmarshal deserializes data into v (a non-nil pointer), dispatching on
// the payload tag.
func Unmarshal(data []byte, v interface{}) error {
	if len(data) == 0 {
		return fmt.Errorf("codec: unmarshal into %T: empty payload", v)
	}
	switch data[0] {
	case tagBin:
		u, ok := v.(Unmarshaler)
		if !ok {
			return fmt.Errorf("codec: %T cannot decode a fast-path payload (no UnmarshalBinary)", v)
		}
		if err := u.UnmarshalBinary(data[1:]); err != nil {
			return fmt.Errorf("codec: unmarshal into %T: %w", v, err)
		}
		return nil
	case tagGob:
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(v); err != nil {
			return fmt.Errorf("codec: unmarshal into %T: %w", v, err)
		}
		return nil
	default:
		return fmt.Errorf("codec: unmarshal into %T: unknown payload tag %#x", v, data[0])
	}
}

// Assign sets the value pointed to by dst to src. src may be a pointer of
// dst's type or a value assignable to dst's element type. It is the last
// step of a fast-path local call: the copy was already taken by CopyValue,
// Assign only stores it.
func Assign(dst, src interface{}) error {
	dv := reflect.ValueOf(dst)
	if dv.Kind() != reflect.Pointer || dv.IsNil() {
		return fmt.Errorf("codec: assign target must be a non-nil pointer, got %T", dst)
	}
	sv := reflect.ValueOf(src)
	switch {
	case !sv.IsValid():
		return fmt.Errorf("codec: cannot assign nil to %T", dst)
	case sv.Kind() == reflect.Pointer && sv.Type() == dv.Type():
		dv.Elem().Set(sv.Elem())
	case sv.Type().AssignableTo(dv.Elem().Type()):
		dv.Elem().Set(sv)
	default:
		return fmt.Errorf("codec: cannot assign %T to %T", src, dst)
	}
	return nil
}

// DeepCopy copies src into dst (both pointers to the same type),
// guaranteeing the isolation semantics of a local actor call: no aliasing
// survives. Types implementing Copier are copied without serialization;
// everything else pays an encode/decode round trip through a pooled
// buffer.
func DeepCopy(dst, src interface{}) error {
	if c, ok := src.(Copier); ok {
		if err := Assign(dst, c.CopyValue()); err == nil {
			return nil
		}
		// Shape mismatch (e.g. CopyValue returned a different type):
		// fall through to the serializing path, which type-checks.
	}
	buf, err := MarshalAppend(GetBuffer(), src)
	if err != nil {
		return err
	}
	err = Unmarshal(buf, dst)
	PutBuffer(buf)
	return err
}
