package codec

import (
	"testing"
	"testing/quick"
)

type payload struct {
	Name  string
	Score int
	Tags  []string
	Meta  map[string]int
}

func TestMarshalRoundTrip(t *testing.T) {
	in := payload{Name: "p1", Score: 42, Tags: []string{"a", "b"}, Meta: map[string]int{"x": 1}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Score != in.Score || len(out.Tags) != 2 || out.Meta["x"] != 1 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestUnmarshalError(t *testing.T) {
	var out payload
	if err := Unmarshal([]byte{0xff, 0x01}, &out); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	src := payload{Tags: []string{"a"}, Meta: map[string]int{"k": 1}}
	var dst payload
	if err := DeepCopy(&dst, &src); err != nil {
		t.Fatal(err)
	}
	dst.Tags[0] = "MUTATED"
	dst.Meta["k"] = 99
	if src.Tags[0] != "a" || src.Meta["k"] != 1 {
		t.Fatalf("deep copy aliased the source: %+v", src)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(name string, score int, tags []string) bool {
		in := payload{Name: name, Score: score, Tags: tags}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out payload
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if out.Name != in.Name || out.Score != in.Score || len(out.Tags) != len(in.Tags) {
			return false
		}
		for i := range tags {
			if out.Tags[i] != tags[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type iface struct{ V interface{} }

func TestRegisterInterfacePayload(t *testing.T) {
	Register(payload{})
	in := iface{V: payload{Name: "x"}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out iface
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if p, ok := out.V.(payload); !ok || p.Name != "x" {
		t.Fatalf("interface payload lost: %+v", out)
	}
}
