package codec

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// tracedEnvelopeBody builds a frame body shaped like the transport's traced
// envelope encoding (strings, payload, then a trailing uvarint trace
// section) so the corpus covers the byte patterns real traffic produces.
func tracedEnvelopeBody() []byte {
	b := []byte{0x00} // kind
	b = AppendUvarint(b, 42)
	for _, s := range []string{"127.0.0.1:9", "counter", "k1", "Add", ""} {
		b = AppendString(b, s)
	}
	b = AppendBytes(b, []byte("payload"))
	b = append(b, 0x01) // trace section tag
	for _, v := range []uint64{0xFEEDFACE, 12, 3, 1500, 250, 98000, 1, 4} {
		b = AppendUvarint(b, v)
	}
	return b
}

// FuzzFrameRead streams arbitrary bytes through the frame reader: malformed
// or truncated frames must error (never panic), honest frames must round
// trip, and a lying length prefix must not cost a frame-sized allocation —
// ReadFrame grows its scratch buffer only as the stream proves the bytes
// exist.
func FuzzFrameRead(f *testing.F) {
	frame := func(body []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(frame(nil))
	f.Add(frame([]byte("hello")))
	f.Add(append(frame([]byte("a")), frame([]byte("bb"))...))
	f.Add(frame(bytes.Repeat([]byte{0x7}, 3000)))
	f.Add(frame(tracedEnvelopeBody()))
	// Lying prefixes: huge claimed length, tiny (or no) body.
	lie := make([]byte, 4, 14)
	binary.BigEndian.PutUint32(lie, MaxFrameSize-1)
	f.Add(append(lie, []byte("short")...))
	over := make([]byte, 4)
	binary.BigEndian.PutUint32(over, MaxFrameSize+1)
	f.Add(over)
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := NewFrameReader(bytes.NewReader(stream))
		read := 0
		for {
			body, err := r.ReadFrame()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && len(body) > 0 {
					t.Fatalf("error %v returned a non-nil frame", err)
				}
				return
			}
			read += len(body) + 4
			if read > len(stream) {
				t.Fatalf("frames total %d bytes from a %d-byte stream", read, len(stream))
			}
		}
	})
}

// FuzzFrameRoundTrip writes fuzzed bodies through FrameWriter and reads
// them back, pinning the wire format both ways.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("payload"))
	f.Add(bytes.Repeat([]byte{0xEE}, 70000))
	f.Add(tracedEnvelopeBody())
	f.Fuzz(func(t *testing.T, body []byte) {
		var buf bytes.Buffer
		w := NewFrameWriter(&buf)
		if err := w.WriteFrame(body); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewFrameReader(&buf).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(body), len(got))
		}
	})
}
