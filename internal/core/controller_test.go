package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"actop/internal/metrics"
	"actop/internal/queuing"
	"actop/internal/seda"
)

// skewedLoad drives two stages with deliberately skewed demand: "light"
// tasks take ~100µs, "heavy" tasks take ~5ms, both arriving at ~500/s.
// With an equal split of 4 workers (2+2) the heavy stage is unstable
// (λ/s = 2.5 threads of demand against 2), so its queue grows to capacity;
// the controller must discover this from live measurements and shift
// workers. Waits for tasks submitted after measureFrom are recorded into
// waits (steady-state window).
func skewedLoad(t *testing.T, heavy, light *seda.Stage, dur, measureFrom time.Duration, waits *metrics.Histogram, waitsMu *sync.Mutex) (submitted, dropped int) {
	t.Helper()
	tick := time.NewTicker(2 * time.Millisecond) // ~500/s per stage
	defer tick.Stop()
	start := time.Now()
	var wg sync.WaitGroup
	for time.Since(start) < dur {
		<-tick.C
		at := time.Now()
		record := time.Since(start) >= measureFrom
		wg.Add(1)
		err := heavy.Submit(func() {
			if record {
				w := time.Since(at)
				waitsMu.Lock()
				waits.Record(w)
				waitsMu.Unlock()
			}
			time.Sleep(5 * time.Millisecond)
			wg.Done()
		})
		if err != nil {
			wg.Done()
			dropped++
		}
		submitted++
		wg.Add(1)
		if light.Submit(func() { time.Sleep(100 * time.Microsecond); wg.Done() }) != nil {
			wg.Done()
		}
	}
	wg.Wait()
	return submitted, dropped
}

// TestControllerReducesQueueDelayUnderSkew is the PR's acceptance
// demonstration: under a skewed stage load, steady-state queue delay on the
// overloaded stage collapses once the live controller is enabled, versus a
// static equal-split allocation of the same initial worker count.
func TestControllerReducesQueueDelayUnderSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based demonstration")
	}

	const (
		runFor    = 1400 * time.Millisecond
		steady    = 700 * time.Millisecond // measure the second half only
		tickEvery = 150 * time.Millisecond
	)

	run := func(controlled bool) (p99, mean time.Duration, heavyWorkers int, status Status) {
		heavy := seda.NewStage("heavy", 256, 2)
		light := seda.NewStage("light", 256, 2)
		defer heavy.Close()
		defer light.Close()

		var tc *ThreadController
		if controlled {
			var err error
			tc, err = NewThreadController([]*seda.Stage{light, heavy}, ControllerConfig{
				Interval:   tickEvery,
				Eta:        100e-6,
				Processors: 4,
				// The heavy stage sleeps (blocking), so one of its threads
				// costs ~nothing in CPU while "processing" — exactly the
				// β < 1 case the model exists for.
				Betas:      []float64{1, 0.05},
				MinSamples: 20,
				Alpha:      0.7,
				Hysteresis: 0.25,
			})
			if err != nil {
				t.Fatal(err)
			}
			tc.Start()
			defer tc.Stop()
		}

		var waits metrics.Histogram
		var waitsMu sync.Mutex
		skewedLoad(t, heavy, light, runFor, steady, &waits, &waitsMu)
		waitsMu.Lock()
		sum := waits.Summarize()
		waitsMu.Unlock()
		if tc != nil {
			status = tc.Status()
		}
		return sum.P99, sum.Mean, heavy.Workers(), status
	}

	staticP99, staticMean, staticWorkers, _ := run(false)
	ctrlP99, ctrlMean, ctrlWorkers, status := run(true)

	t.Logf("static:     p99=%v mean=%v heavy-workers=%d", staticP99, staticMean, staticWorkers)
	t.Logf("controlled: p99=%v mean=%v heavy-workers=%d", ctrlP99, ctrlMean, ctrlWorkers)
	t.Logf("controller: ticks=%d applies=%d holds=%d skips=%d target=%v",
		status.Ticks, status.Applies, status.Holds, status.Skips, status.Target)

	if ctrlWorkers <= staticWorkers {
		t.Fatalf("controller did not grow the overloaded stage: %d ≤ %d", ctrlWorkers, staticWorkers)
	}
	if status.Applies < 1 {
		t.Fatal("controller never applied an allocation")
	}
	// The static split is unstable (demand 2.5 threads vs 2), so its
	// steady-state queue delay sits near queue-capacity × service time
	// (hundreds of ms). The controlled run must beat it decisively; 3× is
	// far inside the expected ~100× gap but safely outside timing noise.
	if ctrlP99 > staticP99/3 {
		t.Fatalf("controlled p99 %v not < static p99 %v / 3", ctrlP99, staticP99)
	}
	if ctrlMean > staticMean/3 {
		t.Fatalf("controlled mean %v not < static mean %v / 3", ctrlMean, staticMean)
	}
}

// TestControllerHysteresis verifies the anti-thrash contract: under a
// steady load the installed allocation changes at most once per control
// interval, and once the solver's target converges, consecutive identical
// recommendations are held rather than reapplied.
func TestControllerHysteresis(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	heavy := seda.NewStage("heavy", 256, 2)
	light := seda.NewStage("light", 256, 2)
	defer heavy.Close()
	defer light.Close()

	const interval = 120 * time.Millisecond
	tc, err := NewThreadController([]*seda.Stage{light, heavy}, ControllerConfig{
		Interval:   interval,
		Eta:        100e-6,
		Processors: 4,
		Betas:      []float64{1, 0.05},
		MinSamples: 20,
		Alpha:      0.7,
		Hysteresis: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.Start()
	defer tc.Stop()

	// Sample the heavy stage's worker count at high frequency while a
	// steady load runs, counting observed allocation changes.
	stopSampling := make(chan struct{})
	var sampleWG sync.WaitGroup
	changes := 0
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		last := heavy.Workers()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(5 * time.Millisecond):
				if w := heavy.Workers(); w != last {
					changes++
					last = w
				}
			}
		}
	}()

	var waits metrics.Histogram
	var waitsMu sync.Mutex
	start := time.Now()
	skewedLoad(t, heavy, light, 10*interval, 10*interval, &waits, &waitsMu)
	elapsed := time.Since(start)
	close(stopSampling)
	sampleWG.Wait()

	st := tc.Status()
	t.Logf("ticks=%d applies=%d holds=%d observed-changes=%d elapsed=%v target=%v",
		st.Ticks, st.Applies, st.Holds, changes, elapsed, st.Target)

	if st.Applies < 1 {
		t.Fatal("controller never applied an allocation under steady overload")
	}
	// At most one allocation change per elapsed interval (+1 for boundary
	// slop): the hysteresis contract.
	maxChanges := int(elapsed/interval) + 1
	if changes > maxChanges {
		t.Fatalf("allocation changed %d times in %v (> one per %v interval, max %d)",
			changes, elapsed, interval, maxChanges)
	}
	if st.Applies > uint64(maxChanges) {
		t.Fatalf("applies=%d exceeds one per interval (%d intervals)", st.Applies, maxChanges)
	}
	// Convergence: the steady load must not keep the controller flapping —
	// most post-convergence ticks hold. Allow the initial ramp plus a
	// couple of refinements.
	if st.Applies > 4 {
		t.Fatalf("controller thrashing: %d applies across %d ticks under steady load", st.Applies, st.Ticks)
	}
}

// TestControllerSkipAndError exercises the two no-op outcomes: an idle
// window skips (MinSamples gate) and an infeasible model keeps the current
// allocation while reporting the error.
func TestControllerSkipAndError(t *testing.T) {
	st := seda.NewStage("s", 64, 2)
	defer st.Close()
	tc, err := NewThreadController([]*seda.Stage{st}, ControllerConfig{
		Interval:   50 * time.Millisecond,
		Processors: 4,
		Betas:      []float64{1},
		MinSamples: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := tc.Tick(); out != TickSkipped {
		t.Fatalf("idle tick = %v, want skipped", out)
	}

	// Infeasible: CPU budget far below the offered load (β=1, busy tasks).
	tiny, err := NewThreadController([]*seda.Stage{st}, ControllerConfig{
		Interval:   50 * time.Millisecond,
		Processors: 0.0001,
		Betas:      []float64{1},
		MinSamples: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		for st.Submit(func() { time.Sleep(200 * time.Microsecond); wg.Done() }) != nil {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	before := st.Workers()
	if out := tiny.Tick(); out != TickError {
		t.Fatalf("infeasible tick = %v, want error", out)
	}
	if st.Workers() != before {
		t.Fatalf("infeasible tick changed workers %d → %d", before, st.Workers())
	}
	if s := tiny.Status(); s.Errors != 1 || s.LastError == "" {
		t.Fatalf("error not recorded: %+v", s)
	}
}

// TestDeadBand pins the hysteresis rule itself: ±1 jitter (or a move inside
// the proportional band) holds; bigger moves, and any grow on an unstable
// stage, apply.
func TestDeadBand(t *testing.T) {
	st := seda.NewStage("s", 8, 1)
	defer st.Close()
	tc, err := NewThreadController([]*seda.Stage{st}, ControllerConfig{
		Interval: time.Second, Processors: 8, Betas: []float64{1}, Hysteresis: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	stable := &queuing.Model{Stages: []queuing.Stage{{Lambda: 10, ServiceRate: 100, Beta: 1}}, Processors: 8}
	overloaded := &queuing.Model{Stages: []queuing.Stage{{Lambda: 250, ServiceRate: 100, Beta: 1}}, Processors: 8}

	cases := []struct {
		name     string
		model    *queuing.Model
		cur, tgt int
		want     bool
	}{
		{"jitter +1 held", stable, 4, 5, false},
		{"jitter -1 held", stable, 4, 3, false},
		{"inside 25% band held", stable, 8, 10, false},
		{"big grow applies", stable, 2, 6, true},
		{"big shrink applies", stable, 8, 3, true},
		{"unstable grow always applies", overloaded, 2, 3, true},
	}
	for _, c := range cases {
		c.model.Eta = 1e-4
		if got := tc.exceedsDeadBand(c.model, []int{c.cur}, []int{c.tgt}); got != c.want {
			t.Errorf("%s: exceedsDeadBand(cur=%d, tgt=%d) = %v, want %v", c.name, c.cur, c.tgt, got, c.want)
		}
	}
}

// TestControllerPublishesStageGauges checks a configured registry receives
// the per-stage gauge families on every tick.
func TestControllerPublishesStageGauges(t *testing.T) {
	st := seda.NewStage("work", 64, 2)
	defer st.Close()
	reg := metrics.NewRegistry()
	tc, err := NewThreadController([]*seda.Stage{st}, ControllerConfig{
		Interval:   50 * time.Millisecond,
		Processors: 2,
		Betas:      []float64{1},
		MinSamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No registry configured: publishing is a no-op, tick still works.
	tc.Tick()

	tc2, err := NewThreadController([]*seda.Stage{st}, ControllerConfig{
		Interval:   50 * time.Millisecond,
		Processors: 2,
		Betas:      []float64{1},
		MinSamples: 1,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		if st.Submit(func() { time.Sleep(time.Millisecond); wg.Done() }) != nil {
			wg.Done()
		}
	}
	wg.Wait()
	tc2.Tick()

	var b strings.Builder
	reg.Write(&b)
	text := b.String()
	for _, want := range []string{
		`actop_stage_workers{stage="work"} 2`,
		`actop_stage_queue_len{stage="work"}`,
		`actop_stage_lambda_per_sec{stage="work"}`,
		`actop_stage_service_per_sec{stage="work"}`,
		`actop_stage_utilization{stage="work"}`,
		`actop_stage_wait_seconds{stage="work",quantile="0.5"}`,
		`actop_stage_busy_seconds{stage="work",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry output missing %s\n%s", want, text)
		}
	}
}
