// Package core is ActOp itself: the runtime optimizer that attaches to one
// node of the actor system and continuously applies the paper's two
// mechanisms —
//
//  1. locality-aware actor partitioning (§4): periodic pairwise exchanges
//     driven by the node's Space-Saving communication monitor, migrating
//     frequently-communicating actors onto the same node; and
//  2. latency-optimized thread allocation (§5): periodic re-solves of the
//     regularized queuing problem (Theorem 2) from live stage measurements,
//     resizing the SEDA stage pools.
//
// Attach one Optimizer per node:
//
//	opt := core.NewOptimizer(sys, core.DefaultOptions())
//	opt.Start()
//	defer opt.Stop()
package core

import (
	"runtime"
	"sync"
	"time"

	"actop/internal/actor"
	"actop/internal/partition"
	"actop/internal/queuing"
	"actop/internal/seda"
)

// Options tunes the optimizer.
type Options struct {
	// Partitioning toggles the §4 mechanism.
	Partitioning bool
	// PartitionPeriod is how often this node initiates an exchange round.
	PartitionPeriod time.Duration
	// RejectWindow is Algorithm 1's per-node exchange cooldown on the
	// initiating side (the paper uses one minute). Set the receiving-side
	// window via actor.Config.ExchangeRejectWindow.
	RejectWindow time.Duration
	// PartitionOpts configures candidate sets and the balance tolerance δ.
	PartitionOpts partition.Options

	// ThreadTuning toggles the §5 mechanism.
	ThreadTuning bool
	// ThreadPeriod is the estimate→solve→resize control period.
	ThreadPeriod time.Duration
	// Eta is the per-thread latency penalty η (calibrate per deployment,
	// §5.3; the paper uses 100µs/thread on its hardware).
	Eta float64
	// Processors is the core count handed to the queuing model
	// (default runtime.NumCPU).
	Processors int
	// BudgetFactor relaxes the Σt·β ≤ p constraint for stages that idle
	// between events (see internal/sim's calibration notes). 1 = strict.
	BudgetFactor float64
	// WorkerBeta is the worker stage's CPU fraction while processing
	// (β of §5.2); below 1 when actors make synchronous blocking calls.
	WorkerBeta float64
	// MinSamples skips a retune when fewer events were observed (avoids
	// resizing on noise).
	MinSamples uint64
}

// DefaultOptions enables both mechanisms with the paper's cadences.
func DefaultOptions() Options {
	return Options{
		Partitioning:    true,
		PartitionPeriod: 15 * time.Second,
		RejectWindow:    time.Minute,
		PartitionOpts:   partition.DefaultOptions(),
		ThreadTuning:    true,
		ThreadPeriod:    10 * time.Second,
		Eta:             100e-6,
		Processors:      runtime.NumCPU(),
		BudgetFactor:    1.6,
		WorkerBeta:      1.0,
		MinSamples:      64,
	}
}

// Optimizer runs ActOp's control loops for one node.
type Optimizer struct {
	sys  *actor.System
	opts Options

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// Counters.
	exchangeRounds, actorsMoved, retunes int
}

// NewOptimizer binds an optimizer to a node.
func NewOptimizer(sys *actor.System, opts Options) *Optimizer {
	if opts.Processors <= 0 {
		opts.Processors = runtime.NumCPU()
	}
	if opts.BudgetFactor < 1 {
		opts.BudgetFactor = 1
	}
	if opts.WorkerBeta <= 0 || opts.WorkerBeta > 1 {
		opts.WorkerBeta = 1
	}
	if opts.PartitionPeriod <= 0 {
		opts.PartitionPeriod = 15 * time.Second
	}
	if opts.ThreadPeriod <= 0 {
		opts.ThreadPeriod = 10 * time.Second
	}
	if opts.RejectWindow <= 0 {
		opts.RejectWindow = time.Minute
	}
	return &Optimizer{sys: sys, opts: opts, stop: make(chan struct{})}
}

// Start launches the control loops.
func (o *Optimizer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return
	}
	o.started = true
	if o.opts.Partitioning {
		o.wg.Add(1)
		go o.partitionLoop()
	}
	if o.opts.ThreadTuning {
		o.wg.Add(1)
		go o.threadLoop()
	}
}

// Stop halts the control loops (idempotent).
func (o *Optimizer) Stop() {
	o.mu.Lock()
	if !o.started {
		o.mu.Unlock()
		return
	}
	o.started = false
	close(o.stop)
	o.mu.Unlock()
	o.wg.Wait()
	o.mu.Lock()
	o.stop = make(chan struct{})
	o.mu.Unlock()
}

// Counters reports (exchange rounds, actors moved, retunes) so far.
func (o *Optimizer) Counters() (rounds, moved, retunes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.exchangeRounds, o.actorsMoved, o.retunes
}

func (o *Optimizer) partitionLoop() {
	defer o.wg.Done()
	t := time.NewTicker(o.opts.PartitionPeriod)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			moved, err := o.sys.ExchangeRound(o.opts.PartitionOpts, o.opts.RejectWindow)
			o.mu.Lock()
			o.exchangeRounds++
			if err == nil {
				o.actorsMoved += moved
			}
			o.mu.Unlock()
		}
	}
}

func (o *Optimizer) threadLoop() {
	defer o.wg.Done()
	t := time.NewTicker(o.opts.ThreadPeriod)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			o.Retune()
		}
	}
}

// Retune performs one §5 control cycle immediately: snapshot the stages,
// build the queuing model, solve (∗), install the allocation. Exposed for
// tests and manual control.
func (o *Optimizer) Retune() {
	recv, work, send := o.sys.Stages()
	stages := []*seda.Stage{recv, work, send}
	betas := []float64{1, o.opts.WorkerBeta, 1}

	var model queuing.Model
	model.Processors = float64(o.opts.Processors) * o.opts.BudgetFactor
	model.Eta = o.opts.Eta
	var total uint64
	period := o.opts.ThreadPeriod.Seconds()
	for i, st := range stages {
		snap := st.Snapshot()
		total += snap.Processed
		qs := queuing.Stage{Name: snap.Name, Beta: betas[i]}
		if snap.Processed > 0 && snap.BusyTime > 0 {
			// Mean wall time per event approximates 1/s (β folds blocking
			// into the CPU share; see Options.WorkerBeta).
			mean := snap.BusyTime.Seconds() / float64(snap.Processed)
			qs.ServiceRate = 1 / mean
			qs.Lambda = float64(snap.Arrivals) / period
		} else {
			qs.ServiceRate = 1000
		}
		model.Stages = append(model.Stages, qs)
	}
	if total < o.opts.MinSamples {
		return
	}
	sol, err := queuing.Solve(&model)
	if err != nil {
		return // keep the current allocation on infeasible epochs
	}
	for i, st := range stages {
		st.SetWorkers(sol.Integer[i])
	}
	o.mu.Lock()
	o.retunes++
	o.mu.Unlock()
}
