// Package core is ActOp itself: the runtime optimizer that attaches to one
// node of the actor system and continuously applies the paper's two
// mechanisms —
//
//  1. locality-aware actor partitioning (§4): periodic pairwise exchanges
//     driven by the node's Space-Saving communication monitor, migrating
//     frequently-communicating actors onto the same node; and
//  2. latency-optimized thread allocation (§5): periodic re-solves of the
//     regularized queuing problem (Theorem 2) from live stage measurements,
//     resizing the SEDA stage pools.
//
// Attach one Optimizer per node:
//
//	opt := core.NewOptimizer(sys, core.DefaultOptions())
//	opt.Start()
//	defer opt.Stop()
package core

import (
	"runtime"
	"sync"
	"time"

	"actop/internal/actor"
	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/partition"
	"actop/internal/seda"
)

// Options tunes the optimizer.
type Options struct {
	// Partitioning toggles the §4 mechanism.
	Partitioning bool
	// PartitionPeriod is how often this node initiates an exchange round.
	PartitionPeriod time.Duration
	// RejectWindow is Algorithm 1's per-node exchange cooldown on the
	// initiating side (the paper uses one minute). Set the receiving-side
	// window via actor.Config.ExchangeRejectWindow.
	RejectWindow time.Duration
	// PartitionOpts configures candidate sets and the balance tolerance δ.
	PartitionOpts partition.Options

	// ThreadTuning toggles the §5 mechanism.
	ThreadTuning bool
	// ThreadPeriod is the estimate→solve→resize control period.
	ThreadPeriod time.Duration
	// Eta is the per-thread latency penalty η (calibrate per deployment,
	// §5.3; the paper uses 100µs/thread on its hardware).
	Eta float64
	// Processors is the core count handed to the queuing model
	// (default runtime.NumCPU).
	Processors int
	// BudgetFactor relaxes the Σt·β ≤ p constraint for stages that idle
	// between events (see internal/sim's calibration notes). 1 = strict.
	BudgetFactor float64
	// WorkerBeta is the worker stage's CPU fraction while processing
	// (β of §5.2); below 1 when actors make synchronous blocking calls.
	WorkerBeta float64
	// MinSamples skips a retune when fewer events were observed (avoids
	// resizing on noise).
	MinSamples uint64
	// Hysteresis is the controller's reallocation dead band (see
	// ControllerConfig.Hysteresis; default 0.25).
	Hysteresis float64
	// SmoothingAlpha is the EWMA factor for the live λ/s estimates
	// (default 0.5).
	SmoothingAlpha float64
	// MaxStageWorkers caps any one stage's pool (0 = uncapped).
	MaxStageWorkers int
	// Metrics, when set, receives the thread controller's per-stage gauges
	// (see ControllerConfig.Metrics). Nil publishes nothing.
	Metrics *metrics.Registry
	// Flight, when set, receives thread_resize flight events from the
	// controller (see ControllerConfig.Flight). Usually the node's own
	// recorder, sys.FlightRecorder().
	Flight *flight.Recorder
}

// DefaultOptions enables both mechanisms with the paper's cadences.
func DefaultOptions() Options {
	return Options{
		Partitioning:    true,
		PartitionPeriod: 15 * time.Second,
		RejectWindow:    time.Minute,
		PartitionOpts:   partition.DefaultOptions(),
		ThreadTuning:    true,
		ThreadPeriod:    10 * time.Second,
		Eta:             100e-6,
		Processors:      runtime.NumCPU(),
		BudgetFactor:    1.6,
		WorkerBeta:      1.0,
		MinSamples:      64,
		Hysteresis:      0.25,
		SmoothingAlpha:  0.5,
	}
}

// Optimizer runs ActOp's control loops for one node.
type Optimizer struct {
	sys  *actor.System
	opts Options
	tc   *ThreadController

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// Counters.
	exchangeRounds, actorsMoved, retunes int
}

// NewOptimizer binds an optimizer to a node. The node's actor.Config can
// pre-wire the thread controller: DisableThreadControl forces ThreadTuning
// off and ThreadControlInterval (when set) overrides ThreadPeriod.
func NewOptimizer(sys *actor.System, opts Options) *Optimizer {
	if opts.Processors <= 0 {
		opts.Processors = runtime.NumCPU()
	}
	if opts.BudgetFactor < 1 {
		opts.BudgetFactor = 1
	}
	if opts.WorkerBeta <= 0 || opts.WorkerBeta > 1 {
		opts.WorkerBeta = 1
	}
	if opts.PartitionPeriod <= 0 {
		opts.PartitionPeriod = 15 * time.Second
	}
	if opts.ThreadPeriod <= 0 {
		opts.ThreadPeriod = 10 * time.Second
	}
	if opts.RejectWindow <= 0 {
		opts.RejectWindow = time.Minute
	}
	cfg := sys.Config()
	if cfg.DisableThreadControl {
		opts.ThreadTuning = false
	}
	if cfg.ThreadControlInterval > 0 {
		opts.ThreadPeriod = cfg.ThreadControlInterval
	}
	o := &Optimizer{sys: sys, opts: opts, stop: make(chan struct{})}
	recv, work, send := sys.Stages()
	tc, err := NewThreadController(
		[]*seda.Stage{recv, work, send},
		ControllerConfig{
			Interval:   opts.ThreadPeriod,
			Eta:        opts.Eta,
			Processors: float64(opts.Processors) * opts.BudgetFactor,
			Betas:      []float64{1, opts.WorkerBeta, 1},
			MinSamples: opts.MinSamples,
			Alpha:      opts.SmoothingAlpha,
			Hysteresis: opts.Hysteresis,
			MaxWorkers: opts.MaxStageWorkers,
			Metrics:    opts.Metrics,
			Flight:     opts.Flight,
		})
	if err != nil {
		// Unreachable with the clamped options above; fall back to a
		// tuning-less optimizer rather than panicking the node.
		opts.ThreadTuning = false
	}
	o.tc = tc
	return o
}

// ThreadStatus snapshots the thread controller (solver inputs/outputs,
// installed allocation, stage measurements) for logs and /debug/actop.
func (o *Optimizer) ThreadStatus() Status {
	if o.tc == nil {
		return Status{}
	}
	return o.tc.Status()
}

// Start launches the control loops.
func (o *Optimizer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return
	}
	o.started = true
	if o.opts.Partitioning {
		o.wg.Add(1)
		go o.partitionLoop()
	}
	if o.opts.ThreadTuning {
		o.wg.Add(1)
		go o.threadLoop()
	}
}

// Stop halts the control loops (idempotent).
func (o *Optimizer) Stop() {
	o.mu.Lock()
	if !o.started {
		o.mu.Unlock()
		return
	}
	o.started = false
	close(o.stop)
	o.mu.Unlock()
	o.wg.Wait()
	o.mu.Lock()
	o.stop = make(chan struct{})
	o.mu.Unlock()
}

// Counters reports (exchange rounds, actors moved, retunes) so far.
func (o *Optimizer) Counters() (rounds, moved, retunes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.exchangeRounds, o.actorsMoved, o.retunes
}

func (o *Optimizer) partitionLoop() {
	defer o.wg.Done()
	t := time.NewTicker(o.opts.PartitionPeriod)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			if o.clusterUnstable() {
				// A peer is suspect: hold partition exchanges until the
				// detector settles (it either recovers to alive, or dies and
				// ExchangeRound routes around it). Migrating actors toward —
				// or negotiating with — a possibly-failing node just strands
				// state behind the failover.
				continue
			}
			moved, err := o.sys.ExchangeRound(o.opts.PartitionOpts, o.opts.RejectWindow)
			o.mu.Lock()
			o.exchangeRounds++
			if err == nil {
				o.actorsMoved += moved
			}
			o.mu.Unlock()
		}
	}
}

// clusterUnstable reports whether any peer sits in the detector's Suspect
// state — the ambiguous window where exchanges are paused. Alive and Dead
// peers are both "stable": ExchangeRound itself skips dead ones.
func (o *Optimizer) clusterUnstable() bool {
	for _, st := range o.sys.Membership() {
		if st == actor.PeerSuspect {
			return true
		}
	}
	return false
}

func (o *Optimizer) threadLoop() {
	defer o.wg.Done()
	t := time.NewTicker(o.opts.ThreadPeriod)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			o.Retune()
		}
	}
}

// Retune performs one §5 control cycle immediately: snapshot the stages,
// fold the window into the smoothed estimates, solve (∗), and install the
// allocation unless hysteresis holds it. Exposed for tests and manual
// control; the periodic thread loop calls it every ThreadPeriod.
func (o *Optimizer) Retune() {
	if o.tc == nil {
		return
	}
	switch o.tc.Tick() {
	case TickApplied, TickHeld:
		o.mu.Lock()
		o.retunes++
		o.mu.Unlock()
	}
}
