package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/transport"
)

// groupActor is a hub that members message; heavy hub↔member traffic should
// make the optimizer co-locate each group.
type groupActor struct{ Hits int }

func (g *groupActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Ping":
		g.Hits++
		return nil, nil
	case "CallHub":
		var hubKey string
		if err := codec.Unmarshal(args, &hubKey); err != nil {
			return nil, err
		}
		return nil, ctx.Call(actor.Ref{Type: "group", Key: hubKey}, "Ping", "x", nil)
	}
	return nil, fmt.Errorf("no method %q", method)
}

func (g *groupActor) Snapshot() ([]byte, error) { return codec.Marshal(g.Hits) }
func (g *groupActor) Restore(b []byte) error    { return codec.Unmarshal(b, &g.Hits) }

func newCluster(t *testing.T, n int) []*actor.System {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := range peers {
		peers[i] = transport.NodeID(fmt.Sprintf("node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	out := make([]*actor.System, n)
	for i := range out {
		// Workers must exceed the number of concurrently *blocked* outbound
		// calls (ctx.Call holds its worker, like synchronous RPC threads):
		// 8 driver goroutines × 2 nested call levels ⇒ 16 is safe.
		sys, err := actor.NewSystem(actor.Config{
			Transport: trs[i], Peers: peers, Seed: int64(i + 1),
			Workers: 16, ReceiverWorkers: 4, SenderWorkers: 4,
			CallTimeout:          3 * time.Second,
			ExchangeRejectWindow: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("group", func() actor.Actor { return &groupActor{} })
		out[i] = sys
		t.Cleanup(sys.Stop)
	}
	return out
}

func TestOptimizerColocatesGroups(t *testing.T) {
	sys := newCluster(t, 2)

	// 8 groups of 4 members + hub. Activate hubs and members by traffic.
	const groups, members = 8, 4
	drive := func(rounds int) {
		var wg sync.WaitGroup
		for g := 0; g < groups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				hub := fmt.Sprintf("hub-%d", g)
				for r := 0; r < rounds; r++ {
					for m := 0; m < members; m++ {
						ref := actor.Ref{Type: "group", Key: fmt.Sprintf("m-%d-%d", g, m)}
						_ = sys[g%2].Call(ref, "CallHub", hub, nil)
					}
				}
			}(g)
		}
		wg.Wait()
	}
	drive(20)

	// Count cross-node hub↔member splits before optimization.
	splits := func() int {
		n := 0
		for g := 0; g < groups; g++ {
			hub := actor.Ref{Type: "group", Key: fmt.Sprintf("hub-%d", g)}
			hubOn0 := sys[0].HostsActor(hub)
			for m := 0; m < members; m++ {
				ref := actor.Ref{Type: "group", Key: fmt.Sprintf("m-%d-%d", g, m)}
				if sys[0].HostsActor(ref) != hubOn0 {
					n++
				}
			}
		}
		return n
	}
	before := splits()
	if before == 0 {
		t.Skip("random placement happened to co-locate everything; nothing to optimize")
	}

	opts := DefaultOptions()
	opts.ThreadTuning = false
	opts.PartitionPeriod = 50 * time.Millisecond
	opts.RejectWindow = 100 * time.Millisecond
	opts.PartitionOpts.ImbalanceTolerance = 10
	optimizers := make([]*Optimizer, len(sys))
	for i, s := range sys {
		optimizers[i] = NewOptimizer(s, opts)
		optimizers[i].Start()
		defer optimizers[i].Stop()
	}

	deadline := time.After(15 * time.Second)
	for splits() > before/2 {
		select {
		case <-deadline:
			t.Fatalf("splits did not halve: %d → %d", before, splits())
		default:
			drive(2) // keep traffic flowing so monitors stay fresh
		}
	}
	var moved int
	for _, o := range optimizers {
		_, m, _ := o.Counters()
		moved += m
	}
	if moved == 0 {
		t.Error("optimizer reported no migrations despite improvement")
	}
}

func TestOptimizerRetuneResizesStages(t *testing.T) {
	sys := newCluster(t, 1)

	// Generate measurable single-node load.
	for i := 0; i < 500; i++ {
		ref := actor.Ref{Type: "group", Key: fmt.Sprintf("solo-%d", i%20)}
		if err := sys[0].Call(ref, "Ping", "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultOptions()
	opts.Partitioning = false
	opts.ThreadPeriod = time.Second
	opts.MinSamples = 10
	opts.Processors = 8
	o := NewOptimizer(sys[0], opts)
	o.Retune()
	_, _, retunes := o.Counters()
	if retunes != 1 {
		t.Fatalf("retunes = %d", retunes)
	}
	recv, work, send := sys[0].Stages()
	for _, st := range []interface{ Workers() int }{recv, work, send} {
		if st.Workers() < 1 {
			t.Fatal("stage lost all workers")
		}
	}
}

func TestOptimizerMinSamplesGate(t *testing.T) {
	sys := newCluster(t, 1)
	opts := DefaultOptions()
	opts.Partitioning = false
	opts.MinSamples = 1 << 30 // never enough
	o := NewOptimizer(sys[0], opts)
	o.Retune()
	if _, _, retunes := o.Counters(); retunes != 0 {
		t.Fatal("retune should be gated by MinSamples")
	}
}

func TestOptimizerStartStopIdempotent(t *testing.T) {
	sys := newCluster(t, 1)
	o := NewOptimizer(sys[0], DefaultOptions())
	o.Start()
	o.Start()
	o.Stop()
	o.Stop()
	// Restartable.
	o.Start()
	o.Stop()
}

func TestOptionsDefaultsClamped(t *testing.T) {
	sys := newCluster(t, 1)
	o := NewOptimizer(sys[0], Options{WorkerBeta: 5, BudgetFactor: 0.1})
	if o.opts.WorkerBeta != 1 || o.opts.BudgetFactor != 1 {
		t.Fatalf("opts not clamped: %+v", o.opts)
	}
	if o.opts.Processors <= 0 || o.opts.PartitionPeriod <= 0 || o.opts.ThreadPeriod <= 0 {
		t.Fatalf("defaults missing: %+v", o.opts)
	}
}
