package core

import (
	"fmt"
	"sync"
	"time"

	"actop/internal/estimator"
	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/queuing"
	"actop/internal/seda"
)

// ControllerConfig tunes the live thread-allocation control loop.
type ControllerConfig struct {
	// Interval is the measure→solve→resize period. It is also the window
	// assumed for the very first tick (before a previous tick timestamps
	// the window start).
	Interval time.Duration
	// Eta is the per-thread latency penalty η of (∗).
	Eta float64
	// Processors is the effective CPU budget p handed to the solver
	// (already including any BudgetFactor relaxation).
	Processors float64
	// Betas is the per-stage CPU fraction β_i (Table 1); len must equal the
	// number of controlled stages.
	Betas []float64
	// MinSamples skips the solve when fewer events completed in the window
	// (no retune on noise).
	MinSamples uint64
	// Alpha is the EWMA smoothing factor for arrival rates and service
	// times across windows (§5.4's epoch estimator, smoothed).
	Alpha float64
	// Hysteresis is the dead band that prevents thrash: the solved target
	// is only installed when some stage moves by MORE than
	// max(1, ⌈Hysteresis·current⌉) threads. ±1-thread solver jitter on a
	// small pool, or proportionally small drift on a big one, is held.
	Hysteresis float64
	// MaxWorkers caps any single stage's allocation (0 = uncapped).
	MaxWorkers int
	// FallbackServiceRate is used for stages with no completed samples yet
	// (default 1000 events/sec, the estimator package's convention).
	FallbackServiceRate float64
	// Metrics, when set, receives per-stage gauges (workers, queue length,
	// smoothed rates, utilization, window wait/busy quantiles) refreshed on
	// every tick. Nil publishes nothing.
	Metrics *metrics.Registry
	// Flight, when set, receives a thread_resize event for every SetWorkers
	// the controller installs — so an anomaly dump shows the allocation
	// moves around the incident. Nil (or a nil recorder) records nothing.
	Flight *flight.Recorder
}

func (c *ControllerConfig) fill(nStages int) error {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Processors <= 0 {
		return fmt.Errorf("core: controller needs a positive CPU budget")
	}
	if len(c.Betas) != nStages {
		return fmt.Errorf("core: %d betas for %d stages", len(c.Betas), nStages)
	}
	if c.Eta < 0 {
		c.Eta = 0
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = 0
	}
	if c.FallbackServiceRate <= 0 {
		c.FallbackServiceRate = 1000
	}
	return nil
}

// TickOutcome classifies what one control cycle did.
type TickOutcome int

// Tick outcomes.
const (
	// TickSkipped: too few samples in the window; EWMAs updated, no solve.
	TickSkipped TickOutcome = iota
	// TickHeld: solved, but the target was inside the hysteresis dead band;
	// the current allocation stands.
	TickHeld
	// TickApplied: solved and installed a new allocation via SetWorkers.
	TickApplied
	// TickError: the solver rejected the model (e.g. infeasible load); the
	// current allocation stands.
	TickError
)

// String renders the outcome.
func (o TickOutcome) String() string {
	switch o {
	case TickSkipped:
		return "skipped"
	case TickHeld:
		return "held"
	case TickApplied:
		return "applied"
	case TickError:
		return "error"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// StageStatus is one stage's view in the controller status (JSON-friendly
// for /debug/actop).
type StageStatus struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers"`
	QueueLen int     `json:"queue_len"`
	Lambda   float64 `json:"lambda_per_sec"`  // smoothed arrival rate
	Service  float64 `json:"service_per_sec"` // smoothed per-thread rate
	Beta     float64 `json:"beta"`            // configured CPU fraction
	Util     float64 `json:"utilization"`     // λ/(s·workers), smoothed
	WaitP50  float64 `json:"wait_p50_ms"`     // window queue delay
	WaitP99  float64 `json:"wait_p99_ms"`
	BusyP50  float64 `json:"busy_p50_ms"` // window execution time
	BusyP99  float64 `json:"busy_p99_ms"`
	Arrivals uint64  `json:"window_arrivals"` // raw window counters
	Handled  uint64  `json:"window_processed"`
}

// Status is a snapshot of the control loop for humans and the debug
// endpoint: solver inputs, outputs, the installed allocation, counters.
type Status struct {
	Interval   time.Duration `json:"interval_ns"`
	Ticks      uint64        `json:"ticks"`
	Applies    uint64        `json:"applies"`
	Holds      uint64        `json:"holds"`
	Skips      uint64        `json:"skips"`
	Errors     uint64        `json:"errors"`
	LastError  string        `json:"last_error,omitempty"`
	Eta        float64       `json:"eta"`
	Processors float64       `json:"processors"`

	// Continuous/Target are the last solve's outputs (t_i and its integer
	// rounding after caps); Applied is the allocation actually installed
	// most recently. UsedClosedForm reports which solver path ran.
	Continuous     []float64     `json:"continuous,omitempty"`
	Target         []int         `json:"target,omitempty"`
	Applied        []int         `json:"applied,omitempty"`
	UsedClosedForm bool          `json:"used_closed_form"`
	Objective      float64       `json:"objective"`
	Stages         []StageStatus `json:"stages"`
}

// ThreadController closes the paper's §5 loop on real goroutine stages:
// every Interval it snapshots each seda.Stage's window measurements, folds
// them into EWMA-smoothed (λ_i, s_i) estimates, solves the regularized
// allocation problem (∗) via Theorem 2 (with the projected-gradient
// fallback), and installs the integer allocation through SetWorkers —
// guarded by a hysteresis dead band so allocations change at most once per
// interval and never on solver jitter.
type ThreadController struct {
	stages []*seda.Stage
	cfg    ControllerConfig

	mu       sync.Mutex
	lambda   []*estimator.RateEWMA // smoothed arrivals/sec per stage
	service  []*estimator.EWMA     // smoothed mean service seconds per event
	lastTick time.Time
	status   Status

	// Registry gauge families (nil when no registry was configured).
	gWorkers, gQueue, gLambda, gService, gUtil *metrics.GaugeFamily
	gWait, gBusy                               *metrics.GaugeFamily

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	running  bool
}

// NewThreadController builds a controller over the given stages. It does
// not start the loop; call Start, or drive Tick manually (tests, actopd's
// optimizer).
func NewThreadController(stages []*seda.Stage, cfg ControllerConfig) (*ThreadController, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one stage")
	}
	if err := cfg.fill(len(stages)); err != nil {
		return nil, err
	}
	c := &ThreadController{
		stages: stages,
		cfg:    cfg,
		stop:   make(chan struct{}),
	}
	c.lambda = make([]*estimator.RateEWMA, len(stages))
	c.service = make([]*estimator.EWMA, len(stages))
	for i := range stages {
		c.lambda[i] = estimator.NewRateEWMA(cfg.Alpha)
		c.service[i] = estimator.NewEWMA(cfg.Alpha)
	}
	c.status.Interval = cfg.Interval
	c.status.Eta = cfg.Eta
	c.status.Processors = cfg.Processors
	if reg := cfg.Metrics; reg != nil {
		c.gWorkers = reg.Gauge("actop_stage_workers", "Threads currently allocated to the stage.", "stage")
		c.gQueue = reg.Gauge("actop_stage_queue_len", "Tasks queued at the stage.", "stage")
		c.gLambda = reg.Gauge("actop_stage_lambda_per_sec", "Smoothed stage arrival rate (events/sec).", "stage")
		c.gService = reg.Gauge("actop_stage_service_per_sec", "Smoothed per-thread service rate (events/sec).", "stage")
		c.gUtil = reg.Gauge("actop_stage_utilization", "Offered load over capacity, lambda/(s*workers).", "stage")
		c.gWait = reg.Gauge("actop_stage_wait_seconds", "Stage queue delay quantiles over the last window.", "stage", "quantile")
		c.gBusy = reg.Gauge("actop_stage_busy_seconds", "Stage execution time quantiles over the last window.", "stage", "quantile")
	}
	return c, nil
}

// publishStages refreshes the per-stage registry gauges from the tick's
// stage snapshots. Called with the controller lock held; no-op without a
// configured registry.
func (c *ThreadController) publishStages(stages []StageStatus) {
	if c.gWorkers == nil {
		return
	}
	for i := range stages {
		ss := &stages[i]
		c.gWorkers.Set(float64(ss.Workers), ss.Name)
		c.gQueue.Set(float64(ss.QueueLen), ss.Name)
		c.gLambda.Set(ss.Lambda, ss.Name)
		c.gService.Set(ss.Service, ss.Name)
		c.gUtil.Set(ss.Util, ss.Name)
		c.gWait.Set(ss.WaitP50/1e3, ss.Name, "0.5")
		c.gWait.Set(ss.WaitP99/1e3, ss.Name, "0.99")
		c.gBusy.Set(ss.BusyP50/1e3, ss.Name, "0.5")
		c.gBusy.Set(ss.BusyP99/1e3, ss.Name, "0.99")
	}
}

// Start launches the periodic loop (idempotent).
func (c *ThreadController) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the loop and waits for it (idempotent; the controller cannot
// be restarted after Stop).
func (c *ThreadController) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

// Status snapshots the controller state.
func (c *ThreadController) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.status
	st.Continuous = append([]float64(nil), c.status.Continuous...)
	st.Target = append([]int(nil), c.status.Target...)
	st.Applied = append([]int(nil), c.status.Applied...)
	st.Stages = append([]StageStatus(nil), c.status.Stages...)
	return st
}

// Tick runs one measure→estimate→solve→resize cycle immediately and
// reports what it did. Safe to call concurrently with the periodic loop
// (cycles serialize on the controller lock).
func (c *ThreadController) Tick() TickOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := time.Now()
	window := c.cfg.Interval
	if !c.lastTick.IsZero() {
		if w := now.Sub(c.lastTick); w > 0 {
			window = w
		}
	}
	c.lastTick = now
	c.status.Ticks++

	// Measure: one window snapshot per stage, folded into the EWMAs.
	var totalProcessed uint64
	stats := make([]seda.Stats, len(c.stages))
	for i, st := range c.stages {
		snap := st.Snapshot()
		stats[i] = snap
		totalProcessed += snap.Processed
		c.lambda[i].Observe(snap.Arrivals, window)
		if snap.Processed > 0 && snap.BusyTime > 0 {
			c.service[i].Observe(snap.BusyTime.Seconds() / float64(snap.Processed))
		}
	}

	// Model: smoothed parameters per stage (§5.4 estimates).
	model := queuing.Model{Processors: c.cfg.Processors, Eta: c.cfg.Eta}
	stageStatus := make([]StageStatus, len(c.stages))
	for i := range c.stages {
		qs := queuing.Stage{Name: stats[i].Name, Beta: c.cfg.Betas[i]}
		qs.Lambda = c.lambda[i].Value()
		if c.service[i].Defined() && c.service[i].Value() > 0 {
			qs.ServiceRate = 1 / c.service[i].Value()
		} else {
			qs.ServiceRate = c.cfg.FallbackServiceRate
		}
		model.Stages = append(model.Stages, qs)

		ss := StageStatus{
			Name:     stats[i].Name,
			Workers:  stats[i].Workers,
			QueueLen: stats[i].QueueLen,
			Lambda:   qs.Lambda,
			Service:  qs.ServiceRate,
			Beta:     qs.Beta,
			WaitP50:  durMillis(stats[i].Wait.Median),
			WaitP99:  durMillis(stats[i].Wait.P99),
			BusyP50:  durMillis(stats[i].Busy.Median),
			BusyP99:  durMillis(stats[i].Busy.P99),
			Arrivals: stats[i].Arrivals,
			Handled:  stats[i].Processed,
		}
		if mu := qs.ServiceRate * float64(stats[i].Workers); mu > 0 {
			ss.Util = qs.Lambda / mu
		}
		stageStatus[i] = ss
	}
	c.status.Stages = stageStatus
	c.publishStages(stageStatus)

	if totalProcessed < c.cfg.MinSamples {
		c.status.Skips++
		return TickSkipped
	}

	sol, err := queuing.Solve(&model)
	if err != nil {
		// Infeasible or degenerate window: keep the current allocation.
		c.status.Errors++
		c.status.LastError = err.Error()
		return TickError
	}
	c.status.LastError = ""
	c.status.Continuous = sol.Threads
	c.status.UsedClosedForm = sol.UsedClosedForm
	c.status.Objective = sol.Objective

	target := make([]int, len(sol.Integer))
	copy(target, sol.Integer)
	if c.cfg.MaxWorkers > 0 {
		for i := range target {
			if target[i] > c.cfg.MaxWorkers {
				target[i] = c.cfg.MaxWorkers
			}
		}
	}
	c.status.Target = target

	// Hysteresis dead band: install only when some stage moves by more
	// than max(1, ⌈h·current⌉) threads — except that a grow is never held
	// while the stage is unstable (λ ≥ s·workers), since holding there
	// means an unboundedly growing queue.
	current := make([]int, len(c.stages))
	for i, st := range c.stages {
		current[i] = st.Workers()
	}
	if !c.exceedsDeadBand(&model, current, target) {
		c.status.Holds++
		return TickHeld
	}
	for i, st := range c.stages {
		if target[i] != current[i] {
			st.SetWorkers(target[i])
			c.cfg.Flight.Record(flight.Event{
				Kind:   flight.KindThreadResize,
				Detail: fmt.Sprintf("%s %d->%d", stats[i].Name, current[i], target[i]),
				N:      uint64(target[i]),
			})
		}
	}
	c.status.Applied = target
	c.status.Applies++
	return TickApplied
}

// exceedsDeadBand reports whether target is far enough from current that a
// reallocation is warranted. Growing an unstable stage (offered load at or
// above its current capacity) always qualifies.
func (c *ThreadController) exceedsDeadBand(m *queuing.Model, current, target []int) bool {
	for i := range current {
		delta := target[i] - current[i]
		if delta > 0 && m.Stages[i].Lambda >= m.Stages[i].ServiceRate*float64(current[i]) {
			return true
		}
		if delta < 0 {
			delta = -delta
		}
		band := 1
		if h := int(float64(current[i])*c.cfg.Hysteresis + 0.999999); h > band {
			band = h
		}
		if delta > band {
			return true
		}
	}
	return false
}

func durMillis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
