package estimator

import "time"

// EWMA is an exponentially weighted moving average: each Observe folds a new
// sample in with weight alpha, so the estimate tracks drifting workloads
// (the paper's runtime re-estimates its model every control epoch) while
// damping one-epoch noise. The zero value is unusable; construct with
// NewEWMA. EWMA is not safe for concurrent use; callers (the thread
// controller) own their instances.
type EWMA struct {
	alpha   float64
	value   float64
	defined bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1]:
// alpha = 1 means "no memory" (the estimate is the last sample), small alpha
// means long memory. Out-of-range alphas are clamped.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average. The first sample initializes
// the estimate directly (no bias toward zero).
func (e *EWMA) Observe(v float64) {
	if !e.defined {
		e.value = v
		e.defined = true
		return
	}
	e.value += e.alpha * (v - e.value)
}

// Value reports the current estimate (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Defined reports whether at least one sample has been observed.
func (e *EWMA) Defined() bool { return e.defined }

// Reset forgets all samples.
func (e *EWMA) Reset() {
	e.value = 0
	e.defined = false
}

// RateEWMA smooths an event rate measured over variable-length windows:
// Observe takes a raw count and the window it was collected over, converts
// to events/sec, and EWMA-folds it. Windows shorter than a millisecond are
// ignored (a degenerate window would produce a wild rate spike).
type RateEWMA struct {
	EWMA
}

// NewRateEWMA returns a rate smoother with the given alpha.
func NewRateEWMA(alpha float64) *RateEWMA {
	return &RateEWMA{EWMA: *NewEWMA(alpha)}
}

// Observe folds count events over window into the rate estimate.
func (r *RateEWMA) Observe(count uint64, window time.Duration) {
	if window < time.Millisecond {
		return
	}
	r.EWMA.Observe(float64(count) / window.Seconds())
}
