package estimator

import (
	"math"
	"testing"
	"time"
)

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Defined() {
		t.Fatal("defined before any sample")
	}
	e.Observe(42)
	if !e.Defined() || e.Value() != 42 {
		t.Fatalf("first sample should initialize directly: %v", e.Value())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	e.Observe(0)
	for i := 0; i < 100; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Value()-10) > 1e-9 {
		t.Fatalf("did not converge to constant input: %v", e.Value())
	}
}

func TestEWMASmoothsSpikes(t *testing.T) {
	e := NewEWMA(0.25)
	e.Observe(100)
	e.Observe(200) // one spike moves the estimate only α of the way
	if want := 125.0; e.Value() != want {
		t.Fatalf("value = %v, want %v", e.Value(), want)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(7)
	e.Reset()
	if e.Defined() || e.Value() != 0 {
		t.Fatal("reset did not clear the estimate")
	}
}

func TestRateEWMA(t *testing.T) {
	r := NewRateEWMA(0.5)
	r.Observe(500, 500*time.Millisecond) // 1000 events/sec
	if got := r.Value(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("rate = %v, want 1000", got)
	}
	// Sub-millisecond windows carry no usable rate signal and are ignored.
	r.Observe(1, 10*time.Microsecond)
	if got := r.Value(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("tiny window should be ignored, rate = %v", got)
	}
}
