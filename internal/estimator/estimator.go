// Package estimator infers the queuing-model parameters (λ_i, s_i, β_i)
// from runtime measurements, implementing §5.4 of the paper.
//
// Directly measurable per processed event are the wall-clock time z_i and
// the CPU time x_i (Fig. 9). The blocking time w_i is NOT directly
// measurable without OS support; instead the ready time r_i is estimated
// via the fairness assumption r_i/x_i = α for all stages, where α is
// learned from the stages known to make no synchronous calls (for which
// β = 1 and hence r = z − x). Then per stage:
//
//	r_i = α·x_i,   s_i = 1/(z_i − r_i),   β_i = x_i/(z_i − r_i).
package estimator

import (
	"fmt"
	"time"

	"actop/internal/queuing"
)

// StageSpec declares one monitored stage.
type StageSpec struct {
	Name string
	// NonBlocking marks stages known to make no synchronous calls; they
	// anchor the α estimate (the set S0 of §5.4). At least one stage must
	// be non-blocking.
	NonBlocking bool
}

// Estimator accumulates per-event measurements per stage over an epoch and
// converts them into queuing.Stage parameters. It is not safe for
// concurrent use; the runtime funnels samples from the stage instrumentation
// through a single collector, as the paper's implementation does.
type Estimator struct {
	specs []StageSpec
	acc   []accumulator
}

type accumulator struct {
	count uint64
	sumZ  float64 // seconds
	sumX  float64 // seconds
}

// New creates an estimator for the given stages.
func New(specs []StageSpec) (*Estimator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("estimator: no stages")
	}
	anyAnchor := false
	for _, s := range specs {
		if s.NonBlocking {
			anyAnchor = true
		}
	}
	if !anyAnchor {
		return nil, fmt.Errorf("estimator: at least one stage must be NonBlocking to anchor α")
	}
	return &Estimator{specs: specs, acc: make([]accumulator, len(specs))}, nil
}

// Record adds one processed event's measurements for stage i: z is the
// wall-clock time from dequeue to completion, x the CPU time consumed.
func (e *Estimator) Record(stage int, z, x time.Duration) {
	if stage < 0 || stage >= len(e.acc) {
		return
	}
	if x <= 0 {
		x = time.Nanosecond // a processed event burned at least some CPU
	}
	if z < x {
		z = x // wall clock cannot be under CPU time for one event
	}
	a := &e.acc[stage]
	a.count++
	a.sumZ += z.Seconds()
	a.sumX += x.Seconds()
}

// Count reports the samples recorded for stage i in the current epoch.
func (e *Estimator) Count(stage int) uint64 {
	if stage < 0 || stage >= len(e.acc) {
		return 0
	}
	return e.acc[stage].count
}

// Alpha computes the current ready-time ratio estimate
// α = mean over non-blocking stages of (z−x)/x, using epoch means.
func (e *Estimator) Alpha() float64 {
	var sum float64
	var n int
	for i, spec := range e.specs {
		if !spec.NonBlocking || e.acc[i].count == 0 {
			continue
		}
		z := e.acc[i].sumZ / float64(e.acc[i].count)
		x := e.acc[i].sumX / float64(e.acc[i].count)
		if x <= 0 {
			continue
		}
		r := (z - x) / x
		if r < 0 {
			r = 0
		}
		sum += r
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Estimate converts the epoch's samples into queuing.Stage parameters and
// resets the epoch. elapsed is the epoch duration (for λ = count/elapsed).
// Stages with no samples get λ=0 and carry the fallback service rate
// (1 event/ms) so the optimizer still has a usable model.
func (e *Estimator) Estimate(elapsed time.Duration) []queuing.Stage {
	alpha := e.Alpha()
	out := make([]queuing.Stage, len(e.specs))
	for i, spec := range e.specs {
		a := e.acc[i]
		st := queuing.Stage{Name: spec.Name}
		if a.count == 0 || elapsed <= 0 {
			st.ServiceRate = 1000
			st.Beta = 1
			out[i] = st
			continue
		}
		z := a.sumZ / float64(a.count)
		x := a.sumX / float64(a.count)
		r := alpha * x
		denom := z - r // estimated x + w
		if denom < x {
			// The fairness assumption overshot (z−r < x is physically
			// impossible since z = x + w + r with w ≥ 0); clamp to pure-CPU.
			denom = x
		}
		st.Lambda = float64(a.count) / elapsed.Seconds()
		st.ServiceRate = 1 / denom
		st.Beta = x / denom
		if st.Beta > 1 {
			st.Beta = 1
		}
		if st.Beta <= 0 {
			st.Beta = 1e-6
		}
		out[i] = st
	}
	e.acc = make([]accumulator, len(e.specs))
	return out
}
