package estimator

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"actop/internal/queuing"
)

func specs() []StageSpec {
	return []StageSpec{
		{Name: "receiver", NonBlocking: true},
		{Name: "worker", NonBlocking: false},
		{Name: "sender", NonBlocking: true},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty specs should error")
	}
	if _, err := New([]StageSpec{{Name: "a"}}); err == nil {
		t.Fatal("no non-blocking anchor should error")
	}
	if _, err := New(specs()); err != nil {
		t.Fatal(err)
	}
}

// feed synthesizes n events for a stage with true compute x, blocking w and
// ready-time ratio α (so z = x + w + α·x).
func feed(e *Estimator, stage, n int, x, w time.Duration, alpha float64) {
	r := time.Duration(alpha * float64(x))
	z := x + w + r
	for i := 0; i < n; i++ {
		e.Record(stage, z, x)
	}
}

func TestEstimateRecoversParameters(t *testing.T) {
	e, err := New(specs())
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 0.5
	xr, wr := 200*time.Microsecond, time.Duration(0)      // receiver: pure CPU
	xw, ww := 500*time.Microsecond, 1500*time.Microsecond // worker: blocks
	xs, ws := 250*time.Microsecond, time.Duration(0)      // sender: pure CPU
	feed(e, 0, 1000, xr, wr, alpha)
	feed(e, 1, 2000, xw, ww, alpha)
	feed(e, 2, 1000, xs, ws, alpha)

	if got := e.Alpha(); math.Abs(got-alpha) > 1e-9 {
		t.Fatalf("Alpha = %v, want %v", got, alpha)
	}
	stages := e.Estimate(time.Second)
	if len(stages) != 3 {
		t.Fatalf("stages = %d", len(stages))
	}
	// λ = events/elapsed.
	if math.Abs(stages[0].Lambda-1000) > 1e-6 || math.Abs(stages[1].Lambda-2000) > 1e-6 {
		t.Errorf("lambdas = %v, %v", stages[0].Lambda, stages[1].Lambda)
	}
	// Receiver: s = 1/x, β = 1.
	wantS0 := 1 / xr.Seconds()
	if rel(stages[0].ServiceRate, wantS0) > 0.01 {
		t.Errorf("receiver s = %v, want %v", stages[0].ServiceRate, wantS0)
	}
	if math.Abs(stages[0].Beta-1) > 0.01 {
		t.Errorf("receiver β = %v, want 1", stages[0].Beta)
	}
	// Worker: s = 1/(x+w), β = x/(x+w).
	wantS1 := 1 / (xw + ww).Seconds()
	wantB1 := xw.Seconds() / (xw + ww).Seconds()
	if rel(stages[1].ServiceRate, wantS1) > 0.01 {
		t.Errorf("worker s = %v, want %v", stages[1].ServiceRate, wantS1)
	}
	if math.Abs(stages[1].Beta-wantB1) > 0.01 {
		t.Errorf("worker β = %v, want %v", stages[1].Beta, wantB1)
	}
}

func rel(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestEstimateResetsEpoch(t *testing.T) {
	e, _ := New(specs())
	feed(e, 0, 100, time.Millisecond, 0, 0)
	_ = e.Estimate(time.Second)
	if e.Count(0) != 0 {
		t.Fatal("epoch not reset")
	}
	stages := e.Estimate(time.Second)
	if stages[0].Lambda != 0 {
		t.Fatalf("empty epoch λ = %v", stages[0].Lambda)
	}
	if stages[0].ServiceRate <= 0 || stages[0].Beta <= 0 {
		t.Fatal("fallback parameters must stay usable")
	}
}

func TestRecordClampsPathologies(t *testing.T) {
	e, _ := New(specs())
	e.Record(0, 100*time.Microsecond, 200*time.Microsecond) // z < x
	e.Record(0, 100*time.Microsecond, 0)                    // x = 0
	e.Record(-1, time.Second, time.Second)                  // bad index: ignored
	e.Record(99, time.Second, time.Second)                  // bad index: ignored
	if e.Count(0) != 2 {
		t.Fatalf("Count = %d, want 2", e.Count(0))
	}
	stages := e.Estimate(time.Second)
	if stages[0].Beta <= 0 || stages[0].Beta > 1 {
		t.Fatalf("β out of range: %v", stages[0].Beta)
	}
	if math.IsInf(stages[0].ServiceRate, 0) || math.IsNaN(stages[0].ServiceRate) {
		t.Fatalf("service rate pathological: %v", stages[0].ServiceRate)
	}
}

func TestAlphaOnlyFromAnchors(t *testing.T) {
	e, _ := New(specs())
	// Worker (blocking) has a huge apparent (z−x)/x from its waits; it must
	// not contaminate α.
	feed(e, 1, 100, 100*time.Microsecond, 10*time.Millisecond, 0.25)
	feed(e, 0, 100, 100*time.Microsecond, 0, 0.25)
	if got := e.Alpha(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("Alpha = %v, want 0.25 (anchored)", got)
	}
}

func TestEstimatedModelFeedsSolver(t *testing.T) {
	// End-to-end §5 pipeline: measurements → estimator → Theorem 2.
	e, _ := New(specs())
	feed(e, 0, 15000, 50*time.Microsecond, 0, 0.3)
	feed(e, 1, 15000, 300*time.Microsecond, 200*time.Microsecond, 0.3)
	feed(e, 2, 15000, 80*time.Microsecond, 0, 0.3)
	m := &queuing.Model{Stages: e.Estimate(time.Second), Processors: 8, Eta: 1e-4}
	sol, err := queuing.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range sol.Integer {
		if a < 1 {
			t.Fatalf("stage %d got %d threads", i, a)
		}
	}
	// Worker is the heaviest (λ·(x+w)) stage; it must get the most threads.
	if sol.Integer[1] < sol.Integer[0] || sol.Integer[1] < sol.Integer[2] {
		t.Errorf("worker threads %v not dominant: %v", sol.Integer[1], sol.Integer)
	}
}

func TestBetaNeverExceedsOneProperty(t *testing.T) {
	f := func(zs, xs []uint32) bool {
		e, _ := New(specs())
		n := len(zs)
		if len(xs) < n {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			e.Record(i%3, time.Duration(zs[i])*time.Microsecond, time.Duration(xs[i])*time.Microsecond)
		}
		for _, st := range e.Estimate(time.Second) {
			if st.Beta <= 0 || st.Beta > 1 {
				return false
			}
			if st.ServiceRate <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
