package sampling_test

import (
	"fmt"

	"actop/internal/sampling"
)

func ExampleSpaceSaving() {
	// Track the heaviest communication edges in constant space.
	s := sampling.NewSpaceSaving[string](3)
	for i := 0; i < 100; i++ {
		s.Observe("game1-player7", 1)
	}
	for i := 0; i < 60; i++ {
		s.Observe("game1-player2", 1)
	}
	s.Observe("stranger-ping", 1) // light edge: may be evicted later
	for _, e := range s.Top(2) {
		fmt.Printf("%s ≈ %d\n", e.Key, e.Count)
	}
	// Output:
	// game1-player7 ≈ 100
	// game1-player2 ≈ 60
}
