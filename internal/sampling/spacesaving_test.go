package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObserveAndCount(t *testing.T) {
	s := NewSpaceSaving[string](4)
	s.Observe("a", 3)
	s.Observe("b", 1)
	s.Observe("a", 2)
	if c, ok := s.Count("a"); !ok || c != 5 {
		t.Fatalf("Count(a) = %d,%v want 5,true", c, ok)
	}
	if c, ok := s.Count("b"); !ok || c != 1 {
		t.Fatalf("Count(b) = %d,%v", c, ok)
	}
	if _, ok := s.Count("zzz"); ok {
		t.Fatal("unmonitored key should report !ok")
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6", s.Total())
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	s := NewSpaceSaving[string](2)
	s.Observe("a", 0)
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("zero-weight observation should be ignored")
	}
}

func TestCapacityClamp(t *testing.T) {
	s := NewSpaceSaving[int](0)
	s.Observe(1, 1)
	s.Observe(2, 1)
	if s.Len() != 1 {
		t.Fatalf("capacity 0 should clamp to 1, len = %d", s.Len())
	}
}

func TestEviction(t *testing.T) {
	s := NewSpaceSaving[string](2)
	s.Observe("a", 10)
	s.Observe("b", 1)
	s.Observe("c", 1) // evicts b (min count 1); c inherits count 1 → 2, error 1
	if _, ok := s.Count("b"); ok {
		t.Fatal("b should have been evicted")
	}
	c, ok := s.Count("c")
	if !ok || c != 2 {
		t.Fatalf("Count(c) = %d,%v want 2,true", c, ok)
	}
	g, _ := s.GuaranteedCount("c")
	if g != 1 {
		t.Fatalf("GuaranteedCount(c) = %d, want 1", g)
	}
	// a untouched.
	if g, _ := s.GuaranteedCount("a"); g != 10 {
		t.Fatalf("GuaranteedCount(a) = %d, want 10", g)
	}
}

func TestTopOrdering(t *testing.T) {
	s := NewSpaceSaving[int](10)
	for i := 1; i <= 5; i++ {
		s.Observe(i, uint64(i*10))
	}
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) len = %d", len(top))
	}
	want := []int{5, 4, 3}
	for i, e := range top {
		if e.Key != want[i] {
			t.Errorf("Top[%d] = %v, want key %d", i, e, want[i])
		}
	}
	if got := s.Top(0); got != nil {
		t.Error("Top(0) should be nil")
	}
	if got := s.Top(100); len(got) != 5 {
		t.Errorf("Top(100) len = %d, want 5", len(got))
	}
}

func TestHeavyHitterGuarantee(t *testing.T) {
	// Space-Saving guarantee: any element with true frequency > N/k is
	// monitored, and estimates never underestimate.
	const k = 50
	s := NewSpaceSaving[int](k)
	truth := make(map[int]uint64)
	rng := rand.New(rand.NewSource(42))
	var n uint64
	// Zipf-ish: heavy keys 0..9, long tail 10..9999.
	zipf := rand.NewZipf(rng, 1.3, 1, 9999)
	for i := 0; i < 200_000; i++ {
		key := int(zipf.Uint64())
		truth[key]++
		n++
		s.Observe(key, 1)
	}
	for key, freq := range truth {
		if freq > n/uint64(k) {
			est, ok := s.Count(key)
			if !ok {
				t.Errorf("heavy key %d (freq %d > N/k=%d) not monitored", key, freq, n/uint64(k))
				continue
			}
			if est < freq {
				t.Errorf("estimate %d underestimates true frequency %d for key %d", est, freq, key)
			}
		}
	}
}

func TestOverestimateBoundedByError(t *testing.T) {
	s := NewSpaceSaving[int](8)
	truth := make(map[int]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		key := rng.Intn(100)
		truth[key]++
		s.Observe(key, 1)
	}
	for _, e := range s.Entries() {
		if e.Count-e.Error > truth[e.Key] {
			t.Errorf("guaranteed count %d exceeds true frequency %d for key %v",
				e.Count-e.Error, truth[e.Key], e.Key)
		}
		if e.Count < truth[e.Key] {
			t.Errorf("estimate %d underestimates truth %d for key %v", e.Count, truth[e.Key], e.Key)
		}
	}
}

func TestMinCount(t *testing.T) {
	s := NewSpaceSaving[int](3)
	if s.MinCount() != 0 {
		t.Fatal("MinCount of non-full summary should be 0")
	}
	s.Observe(1, 5)
	s.Observe(2, 3)
	s.Observe(3, 9)
	if got := s.MinCount(); got != 3 {
		t.Fatalf("MinCount = %d, want 3", got)
	}
}

func TestDecay(t *testing.T) {
	s := NewSpaceSaving[string](4)
	s.Observe("a", 100)
	s.Observe("b", 7)
	s.Decay()
	if c, _ := s.Count("a"); c != 50 {
		t.Errorf("a after decay = %d, want 50", c)
	}
	if c, _ := s.Count("b"); c != 4 {
		t.Errorf("b after decay = %d, want 4 (rounds up)", c)
	}
	// Decay never drops a count to zero.
	s2 := NewSpaceSaving[string](2)
	s2.Observe("x", 1)
	s2.Decay()
	if c, _ := s2.Count("x"); c != 1 {
		t.Errorf("x after decay = %d, want 1", c)
	}
}

func TestForget(t *testing.T) {
	s := NewSpaceSaving[string](4)
	s.Observe("a", 5)
	s.Observe("b", 2)
	s.Forget("a")
	if _, ok := s.Count("a"); ok {
		t.Fatal("a should be forgotten")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Forget("not-there") // no-op
	// Heap invariant still fine: further observations work.
	s.Observe("c", 1)
	s.Observe("d", 1)
	s.Observe("e", 1)
	s.Observe("f", 10)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestReset(t *testing.T) {
	s := NewSpaceSaving[int](4)
	s.Observe(1, 1)
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("reset failed")
	}
	s.Observe(2, 2)
	if c, _ := s.Count(2); c != 2 {
		t.Fatal("summary unusable after reset")
	}
}

func TestNeverUnderestimateProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		s := NewSpaceSaving[uint8](4)
		truth := make(map[uint8]uint64)
		for _, k := range keys {
			truth[k]++
			s.Observe(k, 1)
		}
		for _, e := range s.Entries() {
			if e.Count < truth[e.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLenNeverExceedsCapacityProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		s := NewSpaceSaving[uint16](8)
		for _, k := range keys {
			s.Observe(k, 1)
		}
		return s.Len() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
