// Package sampling implements the Space-Saving algorithm of Metwally,
// Agrawal and El Abbadi ("Efficient computation of frequent and top-k
// elements in data streams", ICDT 2005).
//
// ActOp applies Space-Saving to the stream of inter-actor messages observed
// by each server: the summary retains the top-k "heaviest" communication
// edges in constant space, which is all the partitioning algorithm needs
// (§4.3, "Edge sampling"). Light edges never contribute to candidate sets,
// so dropping them is safe.
package sampling

import "container/heap"

// Entry is one monitored stream element.
type Entry[K comparable] struct {
	Key K
	// Count is the estimated frequency of Key. Space-Saving guarantees
	// Count ≥ true frequency and Count − Error ≤ true frequency.
	Count uint64
	// Error bounds the overestimation of Count: it is the count the entry
	// inherited from the element it evicted.
	Error uint64

	index int // heap index; maintained by entryHeap
}

// entryHeap is a min-heap over counts so the minimum entry (the eviction
// victim) is found in O(1) and replaced in O(log k).
type entryHeap[K comparable] []*Entry[K]

func (h entryHeap[K]) Len() int            { return len(h) }
func (h entryHeap[K]) Less(i, j int) bool  { return h[i].Count < h[j].Count }
func (h entryHeap[K]) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *entryHeap[K]) Push(x interface{}) { e := x.(*Entry[K]); e.index = len(*h); *h = append(*h, e) }
func (h *entryHeap[K]) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// SpaceSaving is a top-k heavy-hitter summary over a stream of keys.
// It retains at most k monitored keys; the total space is O(k) regardless of
// the stream length. The zero value is not usable; use NewSpaceSaving.
//
// SpaceSaving is not safe for concurrent use.
type SpaceSaving[K comparable] struct {
	capacity int
	entries  map[K]*Entry[K]
	heap     entryHeap[K]
	total    uint64
}

// NewSpaceSaving creates a summary that monitors at most capacity keys.
// capacity must be at least 1; smaller values are raised to 1.
func NewSpaceSaving[K comparable](capacity int) *SpaceSaving[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving[K]{
		capacity: capacity,
		entries:  make(map[K]*Entry[K], capacity),
		heap:     make(entryHeap[K], 0, capacity),
	}
}

// Observe records weight occurrences of key.
func (s *SpaceSaving[K]) Observe(key K, weight uint64) {
	if weight == 0 {
		return
	}
	s.total += weight
	if e, ok := s.entries[key]; ok {
		e.Count += weight
		heap.Fix(&s.heap, e.index)
		return
	}
	if len(s.heap) < s.capacity {
		e := &Entry[K]{Key: key, Count: weight}
		s.entries[key] = e
		heap.Push(&s.heap, e)
		return
	}
	// Evict the current minimum: the newcomer inherits its count as error.
	victim := s.heap[0]
	delete(s.entries, victim.Key)
	inherited := victim.Count
	victim.Key = key
	victim.Error = inherited
	victim.Count = inherited + weight
	s.entries[key] = victim
	heap.Fix(&s.heap, 0)
}

// Count returns the estimated frequency of key and whether it is monitored.
func (s *SpaceSaving[K]) Count(key K) (uint64, bool) {
	e, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	return e.Count, true
}

// GuaranteedCount returns Count−Error, a lower bound on the true frequency.
func (s *SpaceSaving[K]) GuaranteedCount(key K) (uint64, bool) {
	e, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	return e.Count - e.Error, true
}

// Len reports the number of monitored keys (≤ capacity).
func (s *SpaceSaving[K]) Len() int { return len(s.heap) }

// Total reports the total stream weight observed.
func (s *SpaceSaving[K]) Total() uint64 { return s.total }

// MinCount reports the smallest monitored count (the eviction threshold),
// or 0 when the summary is not yet full.
func (s *SpaceSaving[K]) MinCount() uint64 {
	if len(s.heap) < s.capacity || len(s.heap) == 0 {
		return 0
	}
	return s.heap[0].Count
}

// Top returns up to n monitored entries ordered by descending estimated
// count. The returned entries are copies; mutating them does not affect the
// summary.
func (s *SpaceSaving[K]) Top(n int) []Entry[K] {
	if n <= 0 || len(s.heap) == 0 {
		return nil
	}
	out := make([]Entry[K], 0, min(n, len(s.heap)))
	for _, e := range s.heap {
		out = append(out, Entry[K]{Key: e.Key, Count: e.Count, Error: e.Error})
	}
	// Selection by full sort: k is small (constant) in our use.
	sortEntriesDesc(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Entries returns all monitored entries in unspecified order.
func (s *SpaceSaving[K]) Entries() []Entry[K] {
	out := make([]Entry[K], 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, Entry[K]{Key: e.Key, Count: e.Count, Error: e.Error})
	}
	return out
}

// Decay halves every monitored count (rounding down, minimum 1), giving the
// summary an exponential forgetting horizon so that stale heavy edges fade
// as the communication graph changes. Entries are kept; errors decay too.
func (s *SpaceSaving[K]) Decay() {
	for _, e := range s.heap {
		e.Count = (e.Count + 1) / 2
		e.Error /= 2
	}
	heap.Init(&s.heap)
	s.total = (s.total + 1) / 2
}

// Forget removes key from the summary if it is monitored. It is used when an
// actor deactivates and its edges are no longer meaningful.
func (s *SpaceSaving[K]) Forget(key K) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	heap.Remove(&s.heap, e.index)
	delete(s.entries, key)
}

// Reset clears the summary.
func (s *SpaceSaving[K]) Reset() {
	s.entries = make(map[K]*Entry[K], s.capacity)
	s.heap = s.heap[:0]
	s.total = 0
}

func sortEntriesDesc[K comparable](es []Entry[K]) {
	// Insertion sort: k is small; avoids an import and an interface boundary.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Count > es[j-1].Count; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
