package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrIdent bans identity comparison of errors at and around the wire.
// Errors that cross the transport are rehydrated copies: controlCall
// decodes the remote error into a fresh value (rehydrateWireErr), so
// `err == actor.ErrNoSuchActor` is true on the caller's node and false
// after one hop — the membership fix of PR 8 was chasing exactly that
// silent false. errors.Is walks the rehydrated wrapper chain and is the
// only comparison that survives the wire; string matching on Error()
// output is the same bug with worse spelling. Scope is the packages
// where wire errors circulate: actor, transport, durable.
var ErrIdent = &Analyzer{
	Name: "errident",
	Doc:  "errors in wire-adjacent packages (actor, transport, durable) must be classified with errors.Is, never == / != or Error()-string comparison; rehydrated wire errors fail identity checks (the PR 8 class)",
	Match: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, "actor") || pathHasSegment(pkgPath, "transport") || pathHasSegment(pkgPath, "durable")
	},
	Run: runErrIdent,
}

func runErrIdent(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilIdent(n.X) || isNilIdent(n.Y) {
					return true
				}
				if isErrorIface(pass.TypesInfo.TypeOf(n.X)) || isErrorIface(pass.TypesInfo.TypeOf(n.Y)) {
					pass.Reportf(n.Pos(),
						"error compared with %s; errors that crossed the wire are rehydrated copies (rehydrateWireErr) and fail identity checks — classify with errors.Is (the PR 8 class)", n.Op)
					return true
				}
				if isErrorStringCall(pass, n.X) || isErrorStringCall(pass, n.Y) {
					pass.Reportf(n.Pos(),
						"error classified by comparing Error() text; messages are not a stable protocol and rehydrated wire errors may reformat — export a sentinel and classify with errors.Is (the PR 8 class)")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || funcPkgPath(fn) != "strings" {
					return true
				}
				switch fn.Name() {
				case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
					for _, a := range n.Args {
						if isErrorStringCall(pass, a) {
							pass.Reportf(n.Pos(),
								"error classified by strings.%s on Error() text; messages are not a stable protocol and rehydrated wire errors may reformat — export a sentinel and classify with errors.Is (the PR 8 class)", fn.Name())
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrorIface reports whether t is the error interface (or an
// interface embedding it). Concrete error implementations compared by
// pointer are out of scope — that can be a legitimate same-node
// identity check.
func isErrorIface(t types.Type) bool {
	if t == nil || !types.IsInterface(t) {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// isErrorStringCall matches <error expr>.Error().
func isErrorStringCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorIface(pass.TypesInfo.TypeOf(sel.X))
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
