package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"actop/internal/lint"
)

// writeTempModule lays out a self-contained two-package module —
// tmpmod/actor/inner exporting a wire sentinel and an ungated spin
// loop, tmpmod/actor/outer importing both hazards — so RunProgram can
// exercise go list, cross-package facts, caching, and the stale-
// directive check against a real module on disk (RunPackages, which the
// fixture harness uses, deliberately keeps staleness off).
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"actor/inner/inner.go": `// Package inner exports the hazards outer trips over.
package inner

import "errors"

// ErrGone crosses the wire and comes back a different instance.
var ErrGone = errors.New("gone")

// Spin runs forever with no shutdown gate.
func Spin() {
	n := 0
	for {
		n++
	}
}
`,
		"actor/outer/outer.go": `// Package outer holds one live finding, one suppressed finding, one
// stale directive, and one cross-package leak.
package outer

import "tmpmod/actor/inner"

func Classify(err error) string {
	if err == inner.ErrGone { // live errident finding
		return "gone"
	}
	return ""
}

func Quiet(err error) string {
	if err == inner.ErrGone { //actoplint:ignore errident audited: local-only path, never crosses the wire
		return "gone"
	}
	return ""
}

//actoplint:ignore errident anchored to nothing, must be reported stale
func Spawn() {
	go inner.Spin() // cross-package goleak finding via inner's UngatedFact
}
`,
	}
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runTempModule(t *testing.T, dir string, opts lint.Options) ([]lint.Finding, *lint.Stats) {
	t.Helper()
	findings, stats, err := lint.RunProgram(dir, []string{"./..."}, lint.Analyzers(), opts)
	if err != nil {
		t.Fatalf("RunProgram: %v", err)
	}
	return findings, stats
}

// TestRunProgramStaleDirective pins the whole-program run end to end:
// the live finding and the cross-package fact finding surface, the
// justified suppression holds, and the directive that suppresses
// nothing is itself reported.
func TestRunProgramStaleDirective(t *testing.T) {
	dir := writeTempModule(t)
	findings, stats := runTempModule(t, dir, lint.Options{})
	if stats.Packages != 2 || stats.Loaded != 2 {
		t.Fatalf("expected 2 packages loaded, got %+v", stats)
	}
	if len(findings) != 3 {
		t.Fatalf("expected 3 findings (errident, goleak, stale directive), got %d:\n%v", len(findings), findings)
	}
	assertFinding(t, findings, "errident", "error compared with ==")
	assertFinding(t, findings, "goleak", "goroutine calls inner.Spin, which runs an infinite loop")
	assertFinding(t, findings, lint.DirectiveAnalyzer, "stale actoplint:ignore errident: it suppresses no finding")
	for _, f := range findings {
		if strings.Contains(f.Message, "audited: local-only path") {
			t.Fatalf("justified suppression leaked through: %v", f)
		}
	}
}

func assertFinding(t *testing.T, findings []lint.Finding, analyzer, substr string) {
	t.Helper()
	for _, f := range findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
			return
		}
	}
	t.Fatalf("no %s finding containing %q in:\n%v", analyzer, substr, findings)
}

// TestRunProgramDeterministic runs the identical program twice and
// requires byte-identical findings in identical order — the property
// CI diffs and the cache both lean on.
func TestRunProgramDeterministic(t *testing.T) {
	dir := writeTempModule(t)
	a, _ := runTempModule(t, dir, lint.Options{})
	b, _ := runTempModule(t, dir, lint.Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs over the same program disagree:\nrun1: %v\nrun2: %v", a, b)
	}
}

// TestRunProgramCache pins the cache contract: a warm re-run restores
// every package without loading, produces identical findings, and
// editing a package invalidates exactly its dependents — inner's key
// feeds outer's, so touching inner misses both while touching outer
// leaves inner's entry live.
func TestRunProgramCache(t *testing.T) {
	dir := writeTempModule(t)
	opts := lint.Options{CacheDir: filepath.Join(dir, ".lintcache")}

	cold, stats := runTempModule(t, dir, opts)
	if stats.CacheHits != 0 || stats.Loaded != 2 {
		t.Fatalf("cold run: expected 0 hits / 2 loaded, got %+v", stats)
	}
	warm, stats := runTempModule(t, dir, opts)
	if stats.CacheHits != 2 || stats.Loaded != 0 {
		t.Fatalf("warm run: expected 2 hits / 0 loaded, got %+v", stats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached findings diverge:\ncold: %v\nwarm: %v", cold, warm)
	}

	touch := func(rel string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	touch("actor/inner/inner.go")
	_, stats = runTempModule(t, dir, opts)
	if stats.CacheHits != 0 || stats.Loaded != 2 {
		t.Fatalf("after touching inner: expected 0 hits (outer depends on inner), got %+v", stats)
	}

	touch("actor/outer/outer.go")
	_, stats = runTempModule(t, dir, opts)
	if stats.CacheHits != 1 || stats.Loaded != 1 {
		t.Fatalf("after touching only outer: expected inner hit + outer miss, got %+v", stats)
	}
}
