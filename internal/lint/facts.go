package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// The facts layer turns the per-package suite into a whole-program one,
// mirroring golang.org/x/tools/go/analysis facts on the standard library
// alone. A fact is a serializable statement an analyzer proves about an
// exported object ("this function blocks") or about a package as a whole
// ("this package registers actor kind X and calls kind Y from a turn").
// Packages are analyzed in dependency order, so when an analyzer runs on
// an importer, every fact its dependencies exported is already available
// — a helper in internal/codec that blocks is visible from a Receive
// body in internal/actor, which the old per-package suite could not see.

// A Fact is a pointer to a gob-serializable struct carrying one unit of
// derived knowledge. The AFact marker method mirrors x/tools and keeps
// arbitrary values out of the fact store.
type Fact interface{ AFact() }

// A Site is a serializable source position, used inside facts so a
// diagnostic in the importing package can point back at the evidence in
// the exporting one (token.Pos values do not survive serialization or
// cross-FileSet transport).
type Site struct {
	File string
	Line int
	Col  int
}

func siteOf(fset *token.FileSet, pos token.Pos) Site {
	p := fset.Position(pos)
	return Site{File: p.Filename, Line: p.Line, Col: p.Column}
}

// Position converts the site back into a printable token.Position.
func (s Site) Position() token.Position {
	return token.Position{Filename: s.File, Line: s.Line, Column: s.Col}
}

func (s Site) String() string { return fmt.Sprintf("%s:%d", s.File, s.Line) }

// objKey canonicalizes an object for fact addressing: package-level
// objects by name, methods as (T).name. Name-based keys (rather than
// object identity) are what lets a fact computed from source match the
// same object materialized later from compiler export data, and what
// lets facts round-trip through the analysis cache. Locals and struct
// fields have no stable cross-package name and get no key.
func objKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if r := recvTypeName(fn); r != "" {
			return "(" + r + ")." + fn.Name(), true
		}
		return fn.Name(), true
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

type objFactKey struct {
	pkg string // declaring package path
	obj string // objKey
	typ reflect.Type
}

type pkgFactKey struct {
	pkg string
	typ reflect.Type
}

// A Program is the whole-program analysis state: which packages are
// under analysis and every fact exported so far. It is shared by all
// passes of one run and safe for concurrent use (independent packages
// analyze in parallel; the dependency order guarantees a fact is fully
// exported before any importer can ask for it).
type Program struct {
	mu       sync.Mutex
	objFacts map[objFactKey]Fact
	pkgFacts map[pkgFactKey]Fact
	targets  map[string]bool
}

func newProgram(targetPaths []string) *Program {
	p := &Program{
		objFacts: map[objFactKey]Fact{},
		pkgFacts: map[pkgFactKey]Fact{},
		targets:  map[string]bool{},
	}
	for _, t := range targetPaths {
		p.targets[t] = true
	}
	return p
}

// isTarget reports whether path is one of the packages under analysis
// (as opposed to a stdlib or export-data-only dependency).
func (prog *Program) isTarget(path string) bool {
	prog.mu.Lock()
	defer prog.mu.Unlock()
	return prog.targets[path]
}

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("lint: fact %T must be a pointer to a struct", f))
	}
	return t
}

func (prog *Program) setObjFact(pkg, obj string, f Fact) {
	k := objFactKey{pkg, obj, factType(f)}
	prog.mu.Lock()
	prog.objFacts[k] = f
	prog.mu.Unlock()
}

func (prog *Program) getObjFact(pkg, obj string, dst Fact) bool {
	k := objFactKey{pkg, obj, factType(dst)}
	prog.mu.Lock()
	src, ok := prog.objFacts[k]
	prog.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

func (prog *Program) setPkgFact(pkg string, f Fact) {
	k := pkgFactKey{pkg, factType(f)}
	prog.mu.Lock()
	prog.pkgFacts[k] = f
	prog.mu.Unlock()
}

func (prog *Program) getPkgFact(pkg string, dst Fact) bool {
	k := pkgFactKey{pkg, factType(dst)}
	prog.mu.Lock()
	src, ok := prog.pkgFacts[k]
	prog.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// ExportObjectFact attaches f to obj for importing packages to consume.
// Only exported objects declared in the current package are eligible:
// those are the only ones a cross-package call site can reach, and the
// only ones whose name-based key survives export data and the cache.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.prog == nil || obj == nil || obj.Pkg() == nil || p.Pkg == nil ||
		obj.Pkg().Path() != p.Pkg.Path() || !obj.Exported() {
		return
	}
	key, ok := objKey(obj)
	if !ok {
		return
	}
	p.prog.setObjFact(obj.Pkg().Path(), key, f)
}

// ImportObjectFact copies the fact of f's type attached to obj (by any
// earlier pass, in this or a dependency package) into f, reporting
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.prog == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objKey(obj)
	if !ok {
		return false
	}
	return p.prog.getObjFact(obj.Pkg().Path(), key, f)
}

// ExportPackageFact attaches f to the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.prog == nil || p.Pkg == nil {
		return
	}
	p.prog.setPkgFact(p.Pkg.Path(), f)
}

// ImportPackageFact copies the package fact of f's type attached to
// path into f, reporting whether one existed.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	if p.prog == nil {
		return false
	}
	return p.prog.getPkgFact(path, f)
}

// A FinishPass runs once per analyzer after every package has been
// analyzed, with the complete fact store in view. It exists for
// properties no single package can see even with facts flowing along
// import edges: two sibling packages can form a synchronous actor-call
// cycle purely through kind strings, with no import relation at all.
type FinishPass struct {
	Analyzer *Analyzer
	prog     *Program
	report   func(Finding)
}

// Reportf records a program-level finding at a resolved position
// (program-level evidence lives in fact Sites, not token.Pos).
func (p *FinishPass) Reportf(pos token.Position, format string, args ...interface{}) {
	p.report(Finding{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// EachPackageFact visits every package fact of proto's dynamic type in
// sorted package-path order, so Finish passes are deterministic by
// construction. The visited fact is shared state: read, don't mutate.
func (p *FinishPass) EachPackageFact(proto Fact, visit func(pkgPath string, f Fact)) {
	t := factType(proto)
	p.prog.mu.Lock()
	var paths []string
	for k := range p.prog.pkgFacts {
		if k.typ == t {
			paths = append(paths, k.pkg)
		}
	}
	p.prog.mu.Unlock()
	sort.Strings(paths)
	for _, path := range paths {
		p.prog.mu.Lock()
		f := p.prog.pkgFacts[pkgFactKey{path, t}]
		p.prog.mu.Unlock()
		visit(path, f)
	}
}

// factsOfPackage snapshots every fact declared by pkg, in deterministic
// order — the unit the analysis cache persists.
func (prog *Program) factsOfPackage(pkg string) (objs []struct {
	Obj  string
	Fact Fact
}, pkgFacts []Fact) {
	prog.mu.Lock()
	for k, f := range prog.objFacts {
		if k.pkg == pkg {
			objs = append(objs, struct {
				Obj  string
				Fact Fact
			}{k.obj, f})
		}
	}
	for k, f := range prog.pkgFacts {
		if k.pkg == pkg {
			pkgFacts = append(pkgFacts, f)
		}
	}
	prog.mu.Unlock()
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].Obj != objs[j].Obj {
			return objs[i].Obj < objs[j].Obj
		}
		return factType(objs[i].Fact).Elem().Name() < factType(objs[j].Fact).Elem().Name()
	})
	sort.Slice(pkgFacts, func(i, j int) bool {
		return factType(pkgFacts[i]).Elem().Name() < factType(pkgFacts[j]).Elem().Name()
	})
	return objs, pkgFacts
}
