package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapBlock polices the durability plane's hot-path contract: snapshot
// capture runs with the activation's turn lock held (captureSnapshotLocked
// is called from drain, between executing the turn and answering the
// caller), so everything it does synchronously lands on the caller's
// reply latency — the ±5% durability-overhead budget of PR 8. The cheap
// work (a state copy, counter bumps) belongs on that path; the expensive
// work (gob/codec encoding, transport sends, actor calls) must ride the
// closure the capture returns, which the caller hands to the snapshotter
// pool only after releasing the lock. The analyzer walks the static
// intra-package call graph from every capture*Locked function and flags
// encode and I/O calls that execute before the lock is released.
// Function-literal bodies are exempt — a closure built on the locked path
// runs wherever it is later invoked, which in this pattern is the
// off-turn pool — and goroutine bodies likewise run off the lock.
var SnapBlock = &Analyzer{
	Name: "snapblock",
	Doc:  "no encode (codec/gob/json) or I/O (transport send, actor call) reachable from a turn-locked snapshot capture (capture*Locked); defer it to the returned closure, which runs on the snapshotter pool",
	Run:  runSnapBlock,
}

func runSnapBlock(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	// Roots: the turn-locked capture entry points, matched by the naming
	// convention the runtime uses (captureSnapshotLocked and siblings).
	// The *Locked suffix is the repo-wide marker for "caller holds the
	// lock"; the capture prefix scopes this analyzer to the snapshot path
	// rather than every locked helper.
	type reachInfo struct {
		parent *types.Func
		root   *types.Func
	}
	reach := map[*types.Func]reachInfo{}
	var queue []*types.Func
	for fn := range decls {
		if isCaptureLocked(fn) {
			reach[fn] = reachInfo{nil, fn}
			queue = append(queue, fn)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	// BFS over static same-package calls made while the lock is held:
	// go-statement and function-literal subtrees execute off the locked
	// path and contribute no edges (argument expressions of a go call,
	// which do evaluate inline, still do).
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := reach[fn]
		forEachLockedNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, hasBody := decls[callee]; !hasBody {
				return
			}
			if _, seen := reach[callee]; seen {
				return
			}
			reach[callee] = reachInfo{fn, info.root}
			queue = append(queue, callee)
		})
	}
	for fn, info := range reach {
		chain := chainString(fn, func(f *types.Func) *types.Func {
			return reach[f].parent
		})
		root := info.root
		where := "in turn-locked capture " + funcDisplay(root)
		if fn != root {
			where = "reachable from turn-locked capture " + funcDisplay(root) + " via " + chain
		}
		scanSnapCalls(pass, decls[fn].Body, where)
	}
	return nil
}

// isCaptureLocked matches the snapshot-capture naming convention:
// capture...Locked.
func isCaptureLocked(fn *types.Func) bool {
	n := fn.Name()
	return strings.HasPrefix(n, "capture") && strings.HasSuffix(n, "Locked")
}

// forEachLockedNode visits every node that executes while the capture
// holds the turn lock: it skips go-statement bodies and function literals
// (both run later, off the lock) while still visiting a go call's
// argument expressions, which evaluate inline.
func forEachLockedNode(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				forEachLockedNode(a, visit)
			}
			return false
		case *ast.FuncLit:
			return false
		}
		visit(n)
		return true
	})
}

// scanSnapCalls flags encode and I/O calls in one on-lock body.
func scanSnapCalls(pass *Pass, body ast.Node, where string) {
	forEachLockedNode(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		switch {
		case isEncodeCall(fn):
			pass.Reportf(call.Pos(),
				"%s encodes %s; the blocked caller's reply waits on it — copy state under the lock and encode in the returned closure (snapshotter pool)", encodeKind(fn), where)
		case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
			pass.Reportf(call.Pos(),
				"transport send %s stalls the turn lock while a peer is slow; ship from the returned closure (snapshotter pool)", where)
		case isActorCallMethod(fn):
			pass.Reportf(call.Pos(),
				"actor call (%s.%s) %s holds the turn lock across a round trip — and can deadlock if the callee needs this activation; call from the returned closure", recvTypeName(fn), fn.Name(), where)
		}
	})
}

// isEncodeCall matches serialization entry points: the repo's codec
// package (Marshal/Unmarshal), the durable wire-record encoder
// (AppendRecord/DecodeRecord), and stdlib gob/json encoders.
func isEncodeCall(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "encoding/gob", "encoding/json":
		switch fn.Name() {
		case "Encode", "Decode", "Marshal", "Unmarshal":
			return true
		}
		return false
	}
	if pathHasSegment(funcPkgPath(fn), "codec") {
		return fn.Name() == "Marshal" || fn.Name() == "Unmarshal"
	}
	if pathHasSegment(funcPkgPath(fn), "durable") {
		return fn.Name() == "AppendRecord" || fn.Name() == "DecodeRecord"
	}
	return false
}

// encodeKind names the encode family for the diagnostic.
func encodeKind(fn *types.Func) string {
	switch p := funcPkgPath(fn); p {
	case "encoding/gob", "encoding/json":
		return lastSegment(p) + "." + fn.Name()
	default:
		return lastSegment(funcPkgPath(fn)) + "." + fn.Name()
	}
}
