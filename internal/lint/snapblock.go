package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapBlock polices the durability plane's hot-path contract: snapshot
// capture runs with the activation's turn lock held (captureSnapshotLocked
// is called from drain, between executing the turn and answering the
// caller), so everything it does synchronously lands on the caller's
// reply latency — the ±5% durability-overhead budget of PR 8. The cheap
// work (a state copy, counter bumps) belongs on that path; the expensive
// work (gob/codec encoding, transport sends, actor calls) must ride the
// closure the capture returns, which the caller hands to the snapshotter
// pool only after releasing the lock. The analyzer walks the static
// intra-package call graph from every capture*Locked function and flags
// encode and I/O calls that execute before the lock is released.
// Function-literal bodies are exempt — a closure built on the locked path
// runs wherever it is later invoked, which in this pattern is the
// off-turn pool — and goroutine bodies likewise run off the lock.
// Cross-package: every function whose synchronous (non-closure,
// non-goroutine) subtree encodes or performs I/O exports an
// EncodeIOFact, so a capture body calling a helper in another module
// package is flagged with the helper's witness chain.
var SnapBlock = &Analyzer{
	Name:      "snapblock",
	Doc:       "no encode (codec/gob/json) or I/O (transport send, actor call) reachable from a turn-locked snapshot capture (capture*Locked), including through helpers in other module packages (EncodeIOFact); defer it to the returned closure, which runs on the snapshotter pool",
	Run:       runSnapBlock,
	FactTypes: []Fact{(*EncodeIOFact)(nil)},
}

// EncodeIOFact marks an exported function that (transitively, on its
// synchronous path) encodes or performs I/O. Kind is "encode" or "io";
// Why is the witness chain.
type EncodeIOFact struct {
	Kind string
	Why  string
}

func (*EncodeIOFact) AFact() {}

func runSnapBlock(pass *Pass) error {
	decls := packageFuncDecls(pass)
	exportEncodeIOFacts(pass, decls)
	// Roots: the turn-locked capture entry points, matched by the naming
	// convention the runtime uses (captureSnapshotLocked and siblings).
	// The *Locked suffix is the repo-wide marker for "caller holds the
	// lock"; the capture prefix scopes this analyzer to the snapshot path
	// rather than every locked helper.
	type reachInfo struct {
		parent *types.Func
		root   *types.Func
	}
	reach := map[*types.Func]reachInfo{}
	var queue []*types.Func
	for fn := range decls {
		if isCaptureLocked(fn) {
			reach[fn] = reachInfo{nil, fn}
			queue = append(queue, fn)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	// BFS over static same-package calls made while the lock is held:
	// go-statement and function-literal subtrees execute off the locked
	// path and contribute no edges (argument expressions of a go call,
	// which do evaluate inline, still do).
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := reach[fn]
		forEachLockedNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, hasBody := decls[callee]; !hasBody {
				return
			}
			if _, seen := reach[callee]; seen {
				return
			}
			reach[callee] = reachInfo{fn, info.root}
			queue = append(queue, callee)
		})
	}
	for fn, info := range reach {
		chain := chainString(fn, func(f *types.Func) *types.Func {
			return reach[f].parent
		})
		root := info.root
		where := "in turn-locked capture " + funcDisplay(root)
		if fn != root {
			where = "reachable from turn-locked capture " + funcDisplay(root) + " via " + chain
		}
		scanSnapCalls(pass, decls[fn].Body, where)
	}
	return nil
}

// isCaptureLocked matches the snapshot-capture naming convention:
// capture...Locked.
func isCaptureLocked(fn *types.Func) bool {
	n := fn.Name()
	return strings.HasPrefix(n, "capture") && strings.HasSuffix(n, "Locked")
}

// forEachLockedNode visits every node that executes while the capture
// holds the turn lock: it skips go-statement bodies and function literals
// (both run later, off the lock) while still visiting a go call's
// argument expressions, which evaluate inline.
func forEachLockedNode(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				forEachLockedNode(a, visit)
			}
			return false
		case *ast.FuncLit:
			return false
		}
		visit(n)
		return true
	})
}

// scanSnapCalls flags encode and I/O calls in one on-lock body.
func scanSnapCalls(pass *Pass, body ast.Node, where string) {
	forEachLockedNode(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		switch {
		case isEncodeCall(fn):
			pass.Reportf(call.Pos(),
				"%s encodes %s; the blocked caller's reply waits on it — copy state under the lock and encode in the returned closure (snapshotter pool)", encodeKind(fn), where)
		case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
			pass.Reportf(call.Pos(),
				"transport send %s stalls the turn lock while a peer is slow; ship from the returned closure (snapshotter pool)", where)
		case isActorCallMethod(fn):
			pass.Reportf(call.Pos(),
				"actor call (%s.%s) %s holds the turn lock across a round trip — and can deadlock if the callee needs this activation; call from the returned closure", recvTypeName(fn), fn.Name(), where)
		default:
			// Cross-package: the callee's own package proved it encodes
			// or does I/O on its synchronous path.
			if fn.Pkg() == pass.Pkg {
				return // local callees: the BFS walks their bodies
			}
			var ef EncodeIOFact
			if pass.ImportObjectFact(fn, &ef) {
				verb := "performs I/O"
				if ef.Kind == "encode" {
					verb = "encodes"
				}
				pass.Reportf(call.Pos(),
					"%s.%s %s %s: %s; the blocked caller's reply waits on it — defer it to the returned closure (snapshotter pool)",
					lastSegment(funcPkgPath(fn)), funcDisplay(fn), verb, where, ef.Why)
			}
		}
	})
}

// exportEncodeIOFacts summarizes every declared function's synchronous
// encode/I-O behavior and exports facts for the exported ones. Encode
// and I/O propagate as separate fixpoints so the fact keeps its kind.
func exportEncodeIOFacts(pass *Pass, decls map[*types.Func]*ast.FuncDecl) {
	factOf := func(wantKind string) func(*types.Func, *ast.CallExpr) (string, bool) {
		return func(callee *types.Func, call *ast.CallExpr) (string, bool) {
			var ef EncodeIOFact
			if pass.ImportObjectFact(callee, &ef) && ef.Kind == wantKind {
				return "calls " + lastSegment(funcPkgPath(callee)) + "." + funcDisplay(callee) + ": " + ef.Why, true
			}
			return "", false
		}
	}
	encodes := effectSummaries(pass, decls, forEachLockedNode,
		func(n ast.Node) (string, bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return "", false
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isEncodeCall(fn) {
				return "", false
			}
			return encodeKind(fn), true
		},
		factOf("encode"))
	ios := effectSummaries(pass, decls, forEachLockedNode,
		func(n ast.Node) (string, bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return "", false
			}
			fn := calleeFunc(pass.TypesInfo, call)
			switch {
			case fn == nil:
				return "", false
			case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
				return "transport send", true
			case isActorCallMethod(fn):
				return "actor call " + recvTypeName(fn) + "." + fn.Name(), true
			}
			return "", false
		},
		factOf("io"))
	for _, fn := range sortedFuncs(decls) {
		if s, ok := encodes[fn]; ok {
			pass.ExportObjectFact(fn, &EncodeIOFact{Kind: "encode", Why: s.why + " (" + shortPos(pass.Fset, s.pos) + ")"})
		} else if s, ok := ios[fn]; ok {
			pass.ExportObjectFact(fn, &EncodeIOFact{Kind: "io", Why: s.why + " (" + shortPos(pass.Fset, s.pos) + ")"})
		}
	}
}

// isEncodeCall matches serialization entry points: the repo's codec
// package (Marshal/Unmarshal), the durable wire-record encoder
// (AppendRecord/DecodeRecord), and stdlib gob/json encoders.
func isEncodeCall(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "encoding/gob", "encoding/json":
		switch fn.Name() {
		case "Encode", "Decode", "Marshal", "Unmarshal":
			return true
		}
		return false
	}
	if pathHasSegment(funcPkgPath(fn), "codec") {
		return fn.Name() == "Marshal" || fn.Name() == "Unmarshal"
	}
	if pathHasSegment(funcPkgPath(fn), "durable") {
		return fn.Name() == "AppendRecord" || fn.Name() == "DecodeRecord"
	}
	return false
}

// encodeKind names the encode family for the diagnostic.
func encodeKind(fn *types.Func) string {
	switch p := funcPkgPath(fn); p {
	case "encoding/gob", "encoding/json":
		return lastSegment(p) + "." + fn.Name()
	default:
		return lastSegment(funcPkgPath(fn)) + "." + fn.Name()
	}
}
