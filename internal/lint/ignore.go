package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//actoplint:ignore <analyzer> <reason>
//
// On its own line the directive applies to the next line; trailing code,
// it applies to its own line. The reason is mandatory and the analyzer
// name must exist — a malformed directive suppresses nothing and is
// itself reported (as pseudo-analyzer "actoplint", which cannot be
// suppressed), so every silenced finding carries an auditable why.
const ignorePrefix = "actoplint:ignore"

// DirectiveAnalyzer is the pseudo-analyzer name used for findings about
// the directives themselves.
const DirectiveAnalyzer = "actoplint"

type directive struct {
	name    string // analyzer the directive names
	reason  string
	file    string
	line    int  // line the directive sits on
	ownLine bool // nothing but whitespace precedes it
	bad     bool // malformed; reported, suppresses nothing
	badMsg  string
}

// scanDirectives extracts every actoplint:ignore directive in pkg,
// validating names against known (analyzer name -> present).
func scanDirectives(pkg *Package, known map[string]bool) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(pkg, c, known)
				if ok {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func parseDirective(pkg *Package, c *ast.Comment, known map[string]bool) (directive, bool) {
	if !strings.HasPrefix(c.Text, "//") {
		return directive{}, false // block comments don't carry directives
	}
	body := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(body, ignorePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(body, ignorePrefix)
	pos := pkg.Fset.Position(c.Slash)
	d := directive{file: pos.Filename, line: pos.Line}
	// Own-line when only whitespace precedes the comment on its line.
	src := pkg.Src[pos.Filename]
	lineStart := pos.Offset - (pos.Column - 1)
	d.ownLine = len(strings.TrimSpace(string(src[lineStart:pos.Offset]))) == 0
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		d.bad, d.badMsg = true, "actoplint:ignore needs an analyzer name and a reason"
	case !known[fields[0]]:
		d.bad, d.badMsg = true, fmt.Sprintf("actoplint:ignore names unknown analyzer %q", fields[0])
	case len(fields) == 1:
		d.bad, d.badMsg = true, fmt.Sprintf("actoplint:ignore %s needs a reason", fields[0])
	default:
		d.name = fields[0]
		d.reason = strings.Join(fields[1:], " ")
	}
	return d, true
}

// targetLine reports the source line the directive suppresses.
func (d directive) targetLine() int {
	if d.ownLine {
		return d.line + 1
	}
	return d.line
}

// resolveDirectives drops findings covered by a well-formed directive
// and appends one DirectiveAnalyzer finding per malformed directive.
// With stale true, a well-formed directive that suppressed nothing is
// itself reported — suppressions must not rot in place as the code they
// silenced moves or gets fixed. Staleness is only judged for analyzers
// in the running set: a directive naming an analyzer this run did not
// execute might suppress perfectly live findings of a full run.
func resolveDirectives(findings []Finding, dirs []directive, running map[string]bool, stale bool) []Finding {
	type key struct {
		file string
		line int
		name string
	}
	// A line can carry duplicate directives; all of them claim a match.
	suppressed := map[key][]int{}
	used := make([]bool, len(dirs))
	var out []Finding
	for i, d := range dirs {
		if d.bad {
			out = append(out, Finding{
				Pos:      positionOnLine(d.file, d.line),
				Analyzer: DirectiveAnalyzer,
				Message:  d.badMsg,
			})
			continue
		}
		k := key{d.file, d.targetLine(), d.name}
		suppressed[k] = append(suppressed[k], i)
	}
	for _, f := range findings {
		if f.Analyzer != DirectiveAnalyzer {
			if idxs, ok := suppressed[key{f.Pos.Filename, f.Pos.Line, f.Analyzer}]; ok {
				for _, i := range idxs {
					used[i] = true
				}
				continue
			}
		}
		out = append(out, f)
	}
	if stale {
		for i, d := range dirs {
			if d.bad || used[i] || (running != nil && !running[d.name]) {
				continue
			}
			out = append(out, Finding{
				Pos:      positionOnLine(d.file, d.line),
				Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("stale actoplint:ignore %s: it suppresses no finding on its target line — delete it, or re-anchor it to the code it was justifying (reason was: %s)",
					d.name, d.reason),
			})
		}
	}
	return out
}
