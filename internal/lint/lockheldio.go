package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeldIO bans I/O while a mutex is held — the deadlock-under-failure
// class behind PR 3's split-brain bugs: a transport send (or a full
// actor call) made with a lock held stalls when the peer is partitioned,
// the lock pins every other goroutine that needs it, and the failure
// detector's remediation path is among them. The analyzer is
// source-ordered: within one function it tracks Lock/RLock...Unlock
// windows (defer Unlock holds to function end) and flags transport
// sends, actor-system calls, and channel sends inside them.
//
// The window tracking is one hop interprocedural, both directions:
//
//   - a call to a same-package lock helper (a method whose body's net
//     effect is acquiring its receiver's mutex) opens the window, and
//     its unlock twin closes it, so s.lockState()/s.unlockState()
//     pairs are seen through;
//   - a call to a function that itself directly performs I/O — same
//     package, or another module package via its exported DirectIOFact
//     — is flagged inside a window, with the callee's witness. The
//     callee-side scan honors the select+default exemption: a helper
//     whose only send is a non-blocking fast path stays clean.
var LockHeldIO = &Analyzer{
	Name:      "lockheldio",
	Doc:       "no transport send, actor-system call, or channel send while a sync.Mutex/RWMutex is held, including one call hop away (DirectIOFact)",
	Run:       runLockHeldIO,
	FactTypes: []Fact{(*DirectIOFact)(nil)},
}

// DirectIOFact marks an exported function that directly performs I/O —
// a transport send, an actor call, or a blocking channel send — on its
// synchronous path.
type DirectIOFact struct{ Why string }

func (*DirectIOFact) AFact() {}

func runLockHeldIO(pass *Pass) error {
	decls := packageFuncDecls(pass)
	directIO := map[*types.Func]string{}
	helperLock := map[*types.Func]string{}
	helperUnlock := map[*types.Func]string{}
	for _, fn := range sortedFuncs(decls) {
		if why, ok := directIOWhy(pass, decls[fn].Body); ok {
			directIO[fn] = why
			pass.ExportObjectFact(fn, &DirectIOFact{Why: why})
		}
		if suffix, acquire, ok := lockHelperEffect(pass, decls[fn]); ok {
			if acquire {
				helperLock[fn] = suffix
			} else {
				helperUnlock[fn] = suffix
			}
		}
	}
	for _, fn := range sortedFuncs(decls) {
		ls := &lockScan{
			pass: pass, held: map[string]bool{},
			directIO: directIO, helperLock: helperLock, helperUnlock: helperUnlock,
		}
		ls.walkStmts(decls[fn].Body.List)
	}
	return nil
}

type lockScan struct {
	pass *Pass
	// held maps the receiver expression text of a locked mutex
	// ("s.mu", "c.state.mu") to true while the lock is held in source
	// order. Branch bodies share the map: a sequential
	// over-approximation.
	held map[string]bool
	// Same-package one-hop knowledge, precomputed per package.
	directIO     map[*types.Func]string
	helperLock   map[*types.Func]string // fn -> mutex suffix (".mu")
	helperUnlock map[*types.Func]string
}

// lockMethods classifies sync mutex methods. TryLock is treated as an
// acquire (flow past it usually assumes success).
var lockAcquire = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexMethod matches sel against (*sync.Mutex)/(*sync.RWMutex) methods,
// returning the lock's receiver expression text.
func (ls *lockScan) mutexMethod(call *ast.CallExpr) (recvText, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(ls.pass.TypesInfo, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	rt := recvTypeName(fn)
	if rt != "Mutex" && rt != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func (ls *lockScan) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		ls.walkStmt(s)
	}
}

func (ls *lockScan) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, m, ok := ls.callStmtMutex(s.X); ok {
			if lockAcquire[m] {
				ls.held[recv] = true
			} else if lockRelease[m] {
				delete(ls.held, recv)
			}
			return
		}
		if key, acquire, ok := ls.helperCall(s.X); ok {
			if acquire {
				ls.held[key] = true
			} else {
				delete(ls.held, key)
			}
			return
		}
		ls.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock(): the lock stays held to function end — which
		// is exactly the window the check cares about, so nothing to do.
		// Same for a deferred unlock helper. Other deferred calls run
		// after the lock region logic this scan models; skip them rather
		// than mis-attribute.
		if _, m, ok := ls.mutexMethod(s.Call); ok && lockRelease[m] {
			return
		}
		if _, acquire, ok := ls.helperCall(s.Call); ok && !acquire {
			return
		}
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks; its body
		// gets a fresh scan.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			inner := &lockScan{
				pass: ls.pass, held: map[string]bool{},
				directIO: ls.directIO, helperLock: ls.helperLock, helperUnlock: ls.helperUnlock,
			}
			inner.walkStmts(lit.Body.List)
		}
		for _, a := range s.Call.Args {
			ls.checkExpr(a)
		}
	case *ast.SendStmt:
		if len(ls.held) > 0 {
			ls.pass.Reportf(s.Arrow,
				"channel send while %s is held; a full channel blocks with the lock pinned — send after unlocking", ls.heldNames())
		}
		ls.checkExpr(s.Chan)
		ls.checkExpr(s.Value)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ls.checkExpr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ls.checkExpr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		ls.checkExpr(s.Cond)
		ls.walkStmt(s.Body)
		if s.Else != nil {
			ls.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		ls.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		ls.walkStmt(s.Body)
	case *ast.RangeStmt:
		ls.checkExpr(s.X)
		ls.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks, so its comm
		// sends are safe under a lock (the seda Submit fast path).
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if len(ls.held) > 0 && !hasDefault {
					if snd, isSend := cc.Comm.(*ast.SendStmt); isSend {
						ls.pass.Reportf(snd.Arrow,
							"channel send (blocking select case) while %s is held; send after unlocking or add a default case", ls.heldNames())
					}
				}
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		ls.walkStmt(s.Stmt)
	}
}

// callStmtMutex matches a statement-level mutex call.
func (ls *lockScan) callStmtMutex(e ast.Expr) (string, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	return ls.mutexMethod(call)
}

// checkExpr flags I/O calls nested anywhere in an expression evaluated
// while locks are held. Function literals are skipped: they execute
// later, under whatever locks their caller then holds.
func (ls *lockScan) checkExpr(e ast.Expr) {
	if e == nil || len(ls.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(ls.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
			ls.pass.Reportf(call.Pos(),
				"transport send while %s is held; an unreachable peer stalls the send and deadlocks every goroutine contending for the lock (PR 3 split-brain class)", ls.heldNames())
		case isActorCallMethod(fn):
			ls.pass.Reportf(call.Pos(),
				"actor call (%s.%s) while %s is held; the callee may need this node — and this lock — to make progress", recvTypeName(fn), fn.Name(), ls.heldNames())
		default:
			// One hop: a callee that itself directly performs I/O —
			// same package (precomputed) or another module package
			// (DirectIOFact).
			if why, ok := ls.directIO[fn]; ok {
				ls.pass.Reportf(call.Pos(),
					"call to %s while %s is held; it %s — the lock pins every contender while that stalls", funcDisplay(fn), ls.heldNames(), why)
				return true
			}
			if fn.Pkg() != ls.pass.Pkg {
				var df DirectIOFact
				if ls.pass.ImportObjectFact(fn, &df) {
					ls.pass.Reportf(call.Pos(),
						"call to %s.%s while %s is held; it %s — the lock pins every contender while that stalls", lastSegment(funcPkgPath(fn)), funcDisplay(fn), ls.heldNames(), df.Why)
				}
			}
		}
		return true
	})
}

// helperCall matches a call to a same-package lock/unlock helper,
// returning the caller-side held key ("s.state" + ".mu").
func (ls *lockScan) helperCall(e ast.Expr) (key string, acquire bool, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := calleeFunc(ls.pass.TypesInfo, call)
	if fn == nil {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	if suffix, isLock := ls.helperLock[fn]; isLock {
		return types.ExprString(sel.X) + suffix, true, true
	}
	if suffix, isUnlock := ls.helperUnlock[fn]; isUnlock {
		return types.ExprString(sel.X) + suffix, false, true
	}
	return "", false, false
}

// lockHelperEffect recognizes methods whose whole job is taking or
// releasing their receiver's mutex: the net effect of the body's
// top-level statements is exactly one acquire (and no I/O) or one
// release of a receiver-rooted mutex. The returned suffix is the mutex
// path relative to the receiver (".mu", ".state.mu"), so the caller can
// rebase it onto its own receiver expression.
func lockHelperEffect(pass *Pass, fd *ast.FuncDecl) (suffix string, acquire, ok bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", false, false
	}
	recvName := fd.Recv.List[0].Names[0].Name
	net := map[string]int{}
	ls := &lockScan{pass: pass}
	for _, s := range fd.Body.List {
		var call *ast.CallExpr
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(s.X).(*ast.CallExpr)
		case *ast.DeferStmt:
			// A deferred unlock makes this a scoped (lock-around-body)
			// helper, not an open-the-window helper.
			if _, m, isMutex := ls.mutexMethod(s.Call); isMutex && lockRelease[m] {
				return "", false, false
			}
		}
		if call == nil {
			continue
		}
		recv, m, isMutex := ls.mutexMethod(call)
		if !isMutex || !strings.HasPrefix(recv, recvName+".") {
			continue
		}
		if lockAcquire[m] {
			net[recv[len(recvName):]]++
		} else if lockRelease[m] {
			net[recv[len(recvName):]]--
		}
	}
	if len(net) != 1 {
		return "", false, false
	}
	for s, n := range net {
		switch {
		case n > 0:
			return s, true, true
		case n < 0:
			return s, false, true
		}
	}
	return "", false, false
}

// directIOWhy reports whether body directly performs I/O on its
// synchronous path — a transport send, an actor call, or a channel send
// that can block (the select+default fast path is exempt). Function
// literals and goroutine bodies run elsewhere and are skipped.
func directIOWhy(pass *Pass, body ast.Node) (string, bool) {
	why := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if why != "" || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range n.Body.List {
				cc, isComm := c.(*ast.CommClause)
				if !isComm {
					continue
				}
				if snd, isSend := cc.Comm.(*ast.SendStmt); isSend && !hasDefault {
					why = "performs a blocking channel send at " + shortPos(pass.Fset, snd.Arrow)
				}
				for _, s := range cc.Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.SendStmt:
			why = "performs a channel send at " + shortPos(pass.Fset, n.Arrow)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
				why = "sends on the transport at " + shortPos(pass.Fset, n.Pos())
			case isActorCallMethod(fn):
				why = "makes an actor call (" + recvTypeName(fn) + "." + fn.Name() + ") at " + shortPos(pass.Fset, n.Pos())
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return why, why != ""
}

// isActorCallMethod matches the actor system's synchronous call entry
// points: Call on System/Context, and the control-plane variants.
func isActorCallMethod(fn *types.Func) bool {
	if !pathHasSegment(funcPkgPath(fn), "actor") {
		return false
	}
	rt := recvTypeName(fn)
	if rt != "System" && rt != "Context" {
		return false
	}
	switch fn.Name() {
	case "Call", "call", "controlCall", "controlCallT":
		return true
	}
	return false
}

func (ls *lockScan) heldNames() string {
	names := make([]string, 0, len(ls.held))
	for n := range ls.held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
