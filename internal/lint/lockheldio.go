package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeldIO bans I/O while a mutex is held — the deadlock-under-failure
// class behind PR 3's split-brain bugs: a transport send (or a full
// actor call) made with a lock held stalls when the peer is partitioned,
// the lock pins every other goroutine that needs it, and the failure
// detector's remediation path is among them. The analyzer is
// intraprocedural and source-ordered: within one function it tracks
// Lock/RLock...Unlock windows (defer Unlock holds to function end) and
// flags transport sends, actor-system calls, and channel sends inside
// them. Helpers that receive a locked struct are outside its reach —
// keep lock scopes visible in one function, as the runtime does.
var LockHeldIO = &Analyzer{
	Name: "lockheldio",
	Doc:  "no transport send, actor-system call, or channel send while a sync.Mutex/RWMutex is held",
	Run:  runLockHeldIO,
}

func runLockHeldIO(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				ls := &lockScan{pass: pass, held: map[string]bool{}}
				ls.walkStmts(fd.Body.List)
			}
		}
	}
	return nil
}

type lockScan struct {
	pass *Pass
	// held maps the receiver expression text of a locked mutex
	// ("s.mu", "c.state.mu") to true while the lock is held in source
	// order. Branch bodies share the map: a sequential
	// over-approximation.
	held map[string]bool
}

// lockMethods classifies sync mutex methods. TryLock is treated as an
// acquire (flow past it usually assumes success).
var lockAcquire = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexMethod matches sel against (*sync.Mutex)/(*sync.RWMutex) methods,
// returning the lock's receiver expression text.
func (ls *lockScan) mutexMethod(call *ast.CallExpr) (recvText, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(ls.pass.TypesInfo, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	rt := recvTypeName(fn)
	if rt != "Mutex" && rt != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func (ls *lockScan) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		ls.walkStmt(s)
	}
}

func (ls *lockScan) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, m, ok := ls.callStmtMutex(s.X); ok {
			if lockAcquire[m] {
				ls.held[recv] = true
			} else if lockRelease[m] {
				delete(ls.held, recv)
			}
			return
		}
		ls.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock(): the lock stays held to function end — which
		// is exactly the window the check cares about, so nothing to do.
		// Other deferred calls run after the lock region logic this scan
		// models; skip them rather than mis-attribute.
		if _, m, ok := ls.mutexMethod(s.Call); ok && lockRelease[m] {
			return
		}
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks; its body
		// gets a fresh scan.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			inner := &lockScan{pass: ls.pass, held: map[string]bool{}}
			inner.walkStmts(lit.Body.List)
		}
		for _, a := range s.Call.Args {
			ls.checkExpr(a)
		}
	case *ast.SendStmt:
		if len(ls.held) > 0 {
			ls.pass.Reportf(s.Arrow,
				"channel send while %s is held; a full channel blocks with the lock pinned — send after unlocking", ls.heldNames())
		}
		ls.checkExpr(s.Chan)
		ls.checkExpr(s.Value)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ls.checkExpr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ls.checkExpr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		ls.checkExpr(s.Cond)
		ls.walkStmt(s.Body)
		if s.Else != nil {
			ls.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		ls.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		ls.walkStmt(s.Body)
	case *ast.RangeStmt:
		ls.checkExpr(s.X)
		ls.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks, so its comm
		// sends are safe under a lock (the seda Submit fast path).
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if len(ls.held) > 0 && !hasDefault {
					if snd, isSend := cc.Comm.(*ast.SendStmt); isSend {
						ls.pass.Reportf(snd.Arrow,
							"channel send (blocking select case) while %s is held; send after unlocking or add a default case", ls.heldNames())
					}
				}
				ls.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		ls.walkStmt(s.Stmt)
	}
}

// callStmtMutex matches a statement-level mutex call.
func (ls *lockScan) callStmtMutex(e ast.Expr) (string, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	return ls.mutexMethod(call)
}

// checkExpr flags I/O calls nested anywhere in an expression evaluated
// while locks are held. Function literals are skipped: they execute
// later, under whatever locks their caller then holds.
func (ls *lockScan) checkExpr(e ast.Expr) {
	if e == nil || len(ls.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(ls.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Name() == "Send" && pathHasSegment(funcPkgPath(fn), "transport"):
			ls.pass.Reportf(call.Pos(),
				"transport send while %s is held; an unreachable peer stalls the send and deadlocks every goroutine contending for the lock (PR 3 split-brain class)", ls.heldNames())
		case isActorCallMethod(fn):
			ls.pass.Reportf(call.Pos(),
				"actor call (%s.%s) while %s is held; the callee may need this node — and this lock — to make progress", recvTypeName(fn), fn.Name(), ls.heldNames())
		}
		return true
	})
}

// isActorCallMethod matches the actor system's synchronous call entry
// points: Call on System/Context, and the control-plane variants.
func isActorCallMethod(fn *types.Func) bool {
	if !pathHasSegment(funcPkgPath(fn), "actor") {
		return false
	}
	rt := recvTypeName(fn)
	if rt != "System" && rt != "Context" {
		return false
	}
	switch fn.Name() {
	case "Call", "call", "controlCall", "controlCallT":
		return true
	}
	return false
}

func (ls *lockScan) heldNames() string {
	names := make([]string, 0, len(ls.held))
	for n := range ls.held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
