package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// PoolEscape guards the codec buffer pool's ownership contract
// (DESIGN.md "Buffer-pool ownership rules"): a buffer obtained from
// codec.GetBuffer may be handed back with codec.PutBuffer only when no
// other live reference to it (or any slice of it) remains. The analyzer
// works per function: it tracks which locals hold pooled buffers
// (GetBuffer results, threaded through MarshalAppend) and reports
// (a) any use of the variable after the PutBuffer call, and (b) any
// aliasing store — field/global assignment, channel send, capture by a
// spawned goroutine — of a buffer the function also releases, since the
// retained alias dangles into the pool's next user. Returning a pooled
// buffer transfers ownership and stays legal.
// Cross-package: a function that stashes a []byte parameter (stores it
// in a field, a container, a global, or sends it on a channel) exports
// a RetainsFact naming the parameter indices, so passing a pooled
// buffer to a retaining function in another module package counts as an
// escape at the call site.
var PoolEscape = &Analyzer{
	Name:      "poolescape",
	Doc:       "pooled codec buffers must not be used after PutBuffer nor escape through an alias that outlives their release — including via a callee that retains its []byte argument (RetainsFact)",
	Run:       runPoolEscape,
	FactTypes: []Fact{(*RetainsFact)(nil)},
}

// RetainsFact marks an exported function that retains one or more of
// its []byte parameters beyond the call: Params holds their indices.
type RetainsFact struct{ Params []int }

func (*RetainsFact) AFact() {}

func runPoolEscape(pass *Pass) error {
	decls := packageFuncDecls(pass)
	retains := map[*types.Func][]int{}
	for _, fn := range sortedFuncs(decls) {
		if idx := retainedByteParams(pass, fn, decls[fn]); len(idx) > 0 {
			retains[fn] = idx
			pass.ExportObjectFact(fn, &RetainsFact{Params: idx})
		}
	}
	for _, fn := range sortedFuncs(decls) {
		checkPoolFunc(pass, decls[fn].Body, retains)
	}
	return nil
}

// retainedByteParams reports which []byte parameters of fd escape the
// call: stored into a field, container element, or package variable, or
// sent on a channel.
func retainedByteParams(pass *Pass, fn *types.Func, fd *ast.FuncDecl) []int {
	sig := fn.Type().(*types.Signature)
	paramIndex := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if s, ok := p.Type().Underlying().(*types.Slice); ok {
			if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				paramIndex[p] = i
			}
		}
	}
	if len(paramIndex) == 0 {
		return nil
	}
	retained := map[int]bool{}
	paramOf := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil {
			return 0, false
		}
		i, ok := paramIndex[v]
		return i, ok
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				pi, isParam := paramOf(rhs)
				if !isParam || i >= len(n.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					retained[pi] = true
				case *ast.Ident:
					if v, ok := pass.TypesInfo.Uses[lhs].(*types.Var); ok &&
						v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						retained[pi] = true
					}
				}
			}
		case *ast.SendStmt:
			if pi, isParam := paramOf(n.Value); isParam {
				retained[pi] = true
			}
		}
		return true
	})
	if len(retained) == 0 {
		return nil
	}
	var out []int
	for i := range retained {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// poolState tracks pooled buffer variables within one function.
type poolState struct {
	pass *Pass
	// pooled maps the *types.Var of a local to its state.
	pooled map[*types.Var]*bufState
}

type bufState struct {
	released bool // a non-deferred PutBuffer has executed (source order)
	everPut  bool // PutBuffer appears anywhere in the function (incl. defer)
	escapes  []escape
}

type escape struct {
	pos  ast.Node
	kind string
}

func checkPoolFunc(pass *Pass, body *ast.BlockStmt, retains map[*types.Func][]int) {
	st := &poolState{pass: pass, pooled: map[*types.Var]*bufState{}}
	// Pass 1: find pooled vars and whether each is ever released, so
	// escapes can be judged against releases later in source order.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.recordPooledAssign(n)
		case *ast.CallExpr:
			if v := st.putBufferArg(n); v != nil {
				if bs, ok := st.pooled[v]; ok {
					bs.everPut = true
				}
			}
		}
		return true
	})
	if len(st.pooled) == 0 {
		return
	}
	// Pass 1b: passing a pooled buffer to a callee that retains that
	// parameter (same package, or cross-package via RetainsFact) is an
	// aliasing escape at the call site.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(st.pass.TypesInfo, call)
		if fn == nil || st.isCodecFunc(fn, "PutBuffer") || st.isCodecFunc(fn, "MarshalAppend") {
			return true
		}
		idx := retains[fn]
		if idx == nil {
			var rf RetainsFact
			if pass.ImportObjectFact(fn, &rf) {
				idx = rf.Params
			}
		}
		for _, i := range idx {
			if i >= len(call.Args) {
				continue
			}
			v := st.localVar(call.Args[i])
			if v == nil {
				continue
			}
			if bs, ok := st.pooled[v]; ok {
				bs.escapes = append(bs.escapes, escape{call, "is passed to " + funcDisplay(fn) + ", which retains it,"})
			}
		}
		return true
	})
	// Pass 2: walk statements in source order enforcing the two rules.
	st.walkStmts(body.List)
	for _, bs := range st.pooled {
		if !bs.everPut {
			continue // ownership kept or transferred; nothing dangles
		}
		for _, e := range bs.escapes {
			st.pass.Reportf(e.pos.Pos(),
				"pooled buffer %s but is also returned to the pool with PutBuffer in this function; the retained alias will alias the pool's next user", e.kind)
		}
	}
}

// recordPooledAssign marks LHS locals pooled when the RHS is
// codec.GetBuffer() or codec.MarshalAppend(<pooled or GetBuffer>, ...).
func (st *poolState) recordPooledAssign(a *ast.AssignStmt) {
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok || len(a.Lhs) == 0 {
		return
	}
	fn := calleeFunc(st.pass.TypesInfo, call)
	pooledResult := false
	switch {
	case st.isCodecFunc(fn, "GetBuffer"):
		pooledResult = true
	case st.isCodecFunc(fn, "MarshalAppend") && len(call.Args) > 0:
		arg := ast.Unparen(call.Args[0])
		if inner, ok := arg.(*ast.CallExpr); ok &&
			st.isCodecFunc(calleeFunc(st.pass.TypesInfo, inner), "GetBuffer") {
			pooledResult = true
		} else if v := st.localVar(arg); v != nil {
			_, pooledResult = st.pooled[v]
		}
	}
	if !pooledResult {
		return
	}
	if v := st.localVar(a.Lhs[0]); v != nil {
		if _, exists := st.pooled[v]; !exists {
			st.pooled[v] = &bufState{}
		}
	}
}

func (st *poolState) isCodecFunc(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && recvTypeName(fn) == "" &&
		pathHasSegment(funcPkgPath(fn), "codec")
}

// putBufferArg returns the pooled local released by a codec.PutBuffer
// call, or nil.
func (st *poolState) putBufferArg(call *ast.CallExpr) *types.Var {
	fn := calleeFunc(st.pass.TypesInfo, call)
	if !st.isCodecFunc(fn, "PutBuffer") || len(call.Args) != 1 {
		return nil
	}
	return st.localVar(call.Args[0])
}

// localVar resolves e to the *types.Var of a plain local identifier.
func (st *poolState) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := st.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = st.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// walkStmts enforces rule (a) use-after-release and collects rule (b)
// aliasing stores, visiting statements in source order. Branch bodies
// share the parent's state — a sequential over-approximation that is
// documented and suppressible.
func (st *poolState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *poolState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if v := st.putBufferArg(call); v != nil {
				if bs, ok := st.pooled[v]; ok {
					bs.released = true
				}
				return
			}
		}
		st.checkUses(s.X)
	case *ast.DeferStmt:
		// defer codec.PutBuffer(buf) is the blessed idiom: release at
		// return. Uses between here and return precede the release, so
		// rule (a) does not fire; rule (b) already covers aliases.
		if v := st.putBufferArg(s.Call); v != nil {
			return
		}
		st.checkUses(s.Call)
	case *ast.AssignStmt:
		st.recordPooledAssign(s)
		for _, rhs := range s.Rhs {
			st.checkUses(rhs)
		}
		st.checkAliasingStore(s)
		// Reassigning the variable itself re-arms it: x = codec.GetBuffer()
		// after a PutBuffer makes x live again.
		for _, lhs := range s.Lhs {
			if v := st.localVar(lhs); v != nil {
				if bs, ok := st.pooled[v]; ok {
					bs.released = false
				}
			}
		}
	case *ast.SendStmt:
		st.checkUses(s.Chan)
		st.checkUses(s.Value)
		if v := st.localVar(s.Value); v != nil {
			if bs, ok := st.pooled[v]; ok {
				bs.escapes = append(bs.escapes, escape{s, "is sent on a channel"})
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently with (and often after)
		// the release; capturing a pooled buffer there is an escape.
		for v, bs := range st.pooled {
			if capturesVar(st.pass, s.Call, v) {
				bs.escapes = append(bs.escapes, escape{s, "is captured by a spawned goroutine"})
			}
		}
	case *ast.ReturnStmt:
		st.checkUsesNode(s) // return after PutBuffer is still use-after-release
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		st.checkUses(s.Cond)
		st.walkStmt(s.Body)
		if s.Else != nil {
			st.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		st.walkStmt(s.Body)
	case *ast.RangeStmt:
		st.checkUses(s.X)
		st.walkStmt(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				st.walkStmts(cc.Body)
			}
		}
	default:
		if s != nil {
			st.checkUsesNode(s)
		}
	}
}

// checkAliasingStore records stores of a pooled local into anything that
// outlives the statement: struct fields, globals, slice/map elements.
func (st *poolState) checkAliasingStore(a *ast.AssignStmt) {
	for i, rhs := range a.Rhs {
		v := st.localVar(rhs)
		if v == nil {
			continue
		}
		bs, ok := st.pooled[v]
		if !ok || i >= len(a.Lhs) {
			continue
		}
		switch lhs := ast.Unparen(a.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			bs.escapes = append(bs.escapes, escape{a, "is stored in a field"})
		case *ast.IndexExpr:
			bs.escapes = append(bs.escapes, escape{a, "is stored in a container element"})
		case *ast.Ident:
			if gv := st.localVar(lhs); gv != nil && gv.Pkg() != nil && gv.Parent() == gv.Pkg().Scope() {
				bs.escapes = append(bs.escapes, escape{a, "is stored in a package-level variable"})
			}
		}
	}
}

// checkUses reports rule (a): reads of a pooled local after its
// (non-deferred) PutBuffer.
func (st *poolState) checkUses(e ast.Expr) {
	if e == nil {
		return
	}
	st.checkUsesNode(e)
}

func (st *poolState) checkUsesNode(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // closure bodies run later; GoStmt handles capture
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := st.pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		if bs, ok := st.pooled[v]; ok && bs.released {
			st.pass.Reportf(id.Pos(),
				"use of pooled buffer %s after codec.PutBuffer: the pool may already have handed it to another goroutine", id.Name)
		}
		return true
	})
}

// capturesVar reports whether the call (a go statement's function and
// arguments) references v.
func capturesVar(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if uv, _ := pass.TypesInfo.Uses[id].(*types.Var); uv == v {
				found = true
			}
		}
		return !found
	})
	return found
}
