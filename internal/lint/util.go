package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call expression statically
// invokes — a package-level function, a method (through any embedding),
// or nil for dynamic calls, conversions, and builtins. Mirrors
// x/tools typeutil.Callee.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.Func
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isConversion reports whether call is a type conversion like string(x).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// funcPkgPath returns the import path of the package declaring fn, or ""
// for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the named type of fn's receiver (with pointers
// dereferenced), or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedName(sig.Recv().Type())
}

// namedName returns the bare name of t's named type, dereferencing one
// pointer level, or "".
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedPkgPath returns the import path of t's named type's package,
// dereferencing one pointer level, or "".
func namedPkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// lastSegment returns the final slash-separated element of an import
// path: the conventional package name.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pathHasSegment reports whether any slash-separated element of path
// equals seg — used to scope analyzers to actor-ish / transport-ish
// packages so fixtures under fake paths match the same way real ones do.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// isMethodOn reports whether fn is a method named name on named type
// typeName declared in a package whose path contains pkgSeg as a
// segment.
func isMethodOn(fn *types.Func, name, typeName, pkgSeg string) bool {
	return fn != nil && fn.Name() == name &&
		recvTypeName(fn) == typeName &&
		pathHasSegment(funcPkgPath(fn), pkgSeg)
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && recvTypeName(fn) == "" &&
		funcPkgPath(fn) == pkgPath
}
