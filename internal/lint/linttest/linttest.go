// Package linttest is the golden-fixture harness for actop-lint
// analyzers, mirroring x/tools go/analysis/analysistest: fixtures live
// under testdata/src/<importpath>/ and mark expected findings with
// trailing comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Each quoted pattern must match exactly one finding reported on that
// line, and every finding must be claimed by a pattern, so both false
// negatives and false positives fail the test. Suppression directives
// are live inside fixtures, which lets the near-miss negatives double as
// suppression coverage.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"actop/internal/lint"
)

// Run loads testdata/src/<path> (testdata relative to the calling test's
// directory), applies the analyzers, and diffs findings against want
// comments.
func Run(t *testing.T, path string, analyzers ...*lint.Analyzer) {
	t.Helper()
	runMulti(t, []string{path}, analyzers)
}

// RunMulti loads several fixture packages as one program, in the given
// order (dependencies first, so facts flow along the import edges), and
// diffs the combined findings — including Finish-pass findings — against
// the want comments of every package.
func RunMulti(t *testing.T, paths []string, analyzers ...*lint.Analyzer) {
	t.Helper()
	runMulti(t, paths, analyzers)
}

func runMulti(t *testing.T, paths []string, analyzers []*lint.Analyzer) {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(2)
	if !ok {
		t.Fatal("linttest: cannot locate caller to find testdata")
	}
	callerDir := filepath.Dir(thisFile)
	srcRoot := filepath.Join(callerDir, "testdata", "src")
	moduleDir := moduleRoot(callerDir)
	pkgs, err := lint.LoadFixturePackages(moduleDir, srcRoot, paths)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	findings, err := lint.RunPackages(pkgs, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	wants := map[lineKey][]*want{}
	for _, pkg := range pkgs {
		for k, ws := range collectWants(t, pkg) {
			wants[k] = append(wants[k], ws...)
		}
	}
	// Claim findings against wants, line by line.
	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		claimed := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(f.Message) {
				w.used = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected finding: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, pkg *lint.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				k := lineKey{pos.Filename, pos.Line}
				for _, pat := range splitPatterns(t, pos.String(), strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of double- or back-quoted strings.
func splitPatterns(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quoted string
		switch s[0] {
		case '"':
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern in %q", at, s)
			}
			var err error
			quoted, err = strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", at, s[:end+2], err)
			}
			s = strings.TrimSpace(s[end+2:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern in %q", at, s)
			}
			quoted = s[1 : end+1]
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", at, s)
		}
		out = append(out, quoted)
	}
	return out
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) string {
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			return dir // fall back; go list will complain usefully
		}
	}
}

// CheckAnalyzer asserts the metadata every analyzer must carry for -list
// output and directive validation to stay meaningful.
func CheckAnalyzer(t *testing.T, a *lint.Analyzer) {
	t.Helper()
	if a.Name == "" || a.Doc == "" {
		t.Fatalf("analyzer missing Name or Doc: %+v", a)
	}
	if strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t") {
		t.Fatalf("analyzer name %q must be lower-case with no spaces", a.Name)
	}
}
