package lint_test

import (
	"testing"

	"actop/internal/lint"
	"actop/internal/lint/linttest"
)

// Each analyzer runs against its golden fixture package: every `// want`
// regexp must be matched by exactly one finding on its line, and every
// finding must be claimed — so these tests pin both the true positives
// and the near-miss negatives.

func TestTurnBlock(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.TurnBlock)
	linttest.Run(t, "turnblock/a", lint.TurnBlock)
}

func TestSimDet(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.SimDet)
	linttest.Run(t, "simdet/des", lint.SimDet)
}

func TestLockHeldIO(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.LockHeldIO)
	linttest.Run(t, "lockheldio/a", lint.LockHeldIO)
}

func TestPoolEscape(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.PoolEscape)
	linttest.Run(t, "poolescape/a", lint.PoolEscape)
}

func TestMetricLabel(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.MetricLabel)
	linttest.Run(t, "metriclabel/a", lint.MetricLabel)
}

func TestSnapBlock(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.SnapBlock)
	linttest.Run(t, "snapblock/a", lint.SnapBlock)
}

func TestCallDag(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.CallDag)
	// Two sibling packages whose kinds call each other synchronously —
	// the ctlStage-livelock shape; only the whole-program kind graph
	// (union of both packages' CallDagFacts) exposes the cycle.
	linttest.RunMulti(t, []string{"calldag/a", "calldag/b"}, lint.CallDag)
}

func TestAtomicMix(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.AtomicMix)
	linttest.RunMulti(t, []string{"atomicmix/dep", "atomicmix/a"}, lint.AtomicMix)
}

func TestGoLeak(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.GoLeak)
	linttest.RunMulti(t, []string{"goleak/actor/dep", "goleak/actor"}, lint.GoLeak)
}

func TestErrIdent(t *testing.T) {
	linttest.CheckAnalyzer(t, lint.ErrIdent)
	linttest.Run(t, "errident/actor", lint.ErrIdent)
}

// TestCrossPackageFacts pins the facts plumbing end to end: facts/a
// exports Blocker/EncodeIO/Retains/DirectIO facts, and every want in
// facts/b fires only because the importing pass consumed them.
func TestCrossPackageFacts(t *testing.T) {
	linttest.RunMulti(t, []string{"facts/a", "facts/b"},
		lint.TurnBlock, lint.SnapBlock, lint.PoolEscape, lint.LockHeldIO)
}

// TestSimDetScope pins the Match scoping: the same wall-clock calls that
// fire inside a /des package must be invisible when the package path is
// outside the simulation tree.
func TestSimDetScope(t *testing.T) {
	if lint.SimDet.Match("actop/internal/des") == false ||
		lint.SimDet.Match("actop/internal/sim") == false ||
		lint.SimDet.Match("actop/internal/workload") == false {
		t.Fatal("simdet must match the simulation packages")
	}
	if lint.SimDet.Match("actop/internal/actor") ||
		lint.SimDet.Match("actop/internal/transport") ||
		lint.SimDet.Match("actop/internal/metrics") {
		t.Fatal("simdet must not match runtime packages (they may read the wall clock)")
	}
}

// TestSuiteNamesUnique guards the directive namespace: duplicate or
// reserved analyzer names would make //actoplint:ignore ambiguous.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == lint.DirectiveAnalyzer {
			t.Fatalf("analyzer name %q collides with the directive pseudo-analyzer", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 10 {
		t.Fatalf("expected the 10-analyzer suite, got %d", len(seen))
	}
}
