package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TurnBlock enforces the actor model's cardinal scheduling rule: a turn
// (a Receive/ReceiveValue body, and everything it calls synchronously)
// must never block. A blocked turn pins a worker-stage thread, starves
// co-located activations, skews the thread controller's service-time
// measurements, and — when the blocking is a re-entrant System.Call —
// can deadlock the whole stage, exactly the overload collapse §4 of the
// paper engineers against. The analyzer finds every method implementing
// the actor contract, walks the static intra-package call graph from it,
// and flags time.Sleep, WaitGroup/Cond waits, bare channel receives,
// selects without default, and re-entrant System.Call in anything
// reachable. Goroutines spawned from a turn run off-turn and are exempt;
// Context.Call is the runtime's sanctioned await and stays legal.
var TurnBlock = &Analyzer{
	Name: "turnblock",
	Doc:  "no blocking operations (time.Sleep, WaitGroup.Wait, bare channel receive, select without default, re-entrant System.Call) reachable from an actor turn",
	Run:  runTurnBlock,
}

func runTurnBlock(pass *Pass) error {
	// Collect the package's function bodies, keyed by their object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	// Roots: methods implementing the actor turn contract.
	type reachInfo struct {
		parent *types.Func
		root   *types.Func
	}
	reach := map[*types.Func]reachInfo{}
	var queue []*types.Func
	for fn := range decls {
		if isTurnMethod(fn) {
			reach[fn] = reachInfo{nil, fn}
			queue = append(queue, fn)
		}
	}
	// Deterministic BFS (and so deterministic chains in messages):
	// process roots in source order.
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	// BFS over static same-package calls; go-statement subtrees are
	// off-turn and contribute no edges (their argument expressions,
	// which evaluate on-turn, still do).
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := reach[fn]
		forEachOnTurnNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, hasBody := decls[callee]; !hasBody {
				return
			}
			if _, seen := reach[callee]; seen {
				return
			}
			reach[callee] = reachInfo{fn, info.root}
			queue = append(queue, callee)
		})
	}
	// Scan every reached body for blocking operations.
	for fn, info := range reach {
		chain := chainString(fn, func(f *types.Func) *types.Func {
			return reach[f].parent
		})
		root := info.root
		where := "in actor turn " + funcDisplay(root)
		if fn != root {
			where = "reachable from actor turn " + funcDisplay(root) + " via " + chain
		}
		scanBlocking(pass, decls[fn].Body, where)
	}
	return nil
}

// isTurnMethod matches the actor contract: a method named Receive or
// ReceiveValue whose first parameter is a *Context from an actor-ish
// package. Matching structurally (not against the interface object)
// keeps the analyzer usable on fixtures and on future actor variants.
func isTurnMethod(fn *types.Func) bool {
	if fn.Name() != "Receive" && fn.Name() != "ReceiveValue" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	first := sig.Params().At(0).Type()
	ptr, ok := first.(*types.Pointer)
	if !ok {
		return false
	}
	return namedName(ptr.Elem()) == "Context" &&
		pathHasSegment(namedPkgPath(ptr.Elem()), "actor")
}

// forEachOnTurnNode visits every node that executes on the turn's
// thread: it skips go-statement function bodies (off-turn) while still
// visiting their argument expressions, and skips nothing else.
func forEachOnTurnNode(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				forEachOnTurnNode(a, visit)
			}
			return false
		}
		visit(n)
		return true
	})
}

// scanBlocking reports blocking operations in one on-turn body.
func scanBlocking(pass *Pass, body ast.Node, where string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pass.Reportf(n.Pos(),
					"select without default blocks until a case fires, %s; actor turns must never block — poll with a default case or move the wait off-turn", where)
			}
			// Clause bodies still run on-turn; the comm operations
			// themselves were judged with the select.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"bare channel receive blocks %s; actor turns must never block — use Context.Call or a select with default", where)
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, n, where)
		}
		return true
	}
	ast.Inspect(body, walk)
}

func checkBlockingCall(pass *Pass, call *ast.CallExpr, where string) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case isPkgFunc(fn, "time", "Sleep"):
		pass.Reportf(call.Pos(),
			"time.Sleep blocks the worker thread %s; actor turns must never block — use the runtime's scheduling instead", where)
	case funcPkgPath(fn) == "sync" && fn.Name() == "Wait" &&
		(recvTypeName(fn) == "WaitGroup" || recvTypeName(fn) == "Cond"):
		pass.Reportf(call.Pos(),
			"sync.%s.Wait blocks %s; actor turns must never block — fan in through actor messages instead", recvTypeName(fn), where)
	case fn.Name() == "Call" && recvTypeName(fn) == "System" &&
		pathHasSegment(funcPkgPath(fn), "actor"):
		pass.Reportf(call.Pos(),
			"re-entrant System.Call %s deadlocks when the callee (transitively) needs this activation; call through Context.Call, which threads the turn's identity", where)
	}
}

// chainString renders root → ... → fn as the call path the BFS found.
func chainString(fn *types.Func, parent func(*types.Func) *types.Func) string {
	var parts []string
	for f := fn; f != nil; f = parent(f) {
		parts = append(parts, funcDisplay(f))
	}
	// Reverse into root-first order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts[1:], " → ")
}

// funcDisplay renders (*T).Name for methods, Name for functions.
func funcDisplay(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return fn.Name()
	}
	return "(" + namedName(sig.Recv().Type()) + ")." + fn.Name()
}
