package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TurnBlock enforces the actor model's cardinal scheduling rule: a turn
// (a Receive/ReceiveValue body, and everything it calls synchronously)
// must never block. A blocked turn pins a worker-stage thread, starves
// co-located activations, skews the thread controller's service-time
// measurements, and — when the blocking is a re-entrant System.Call —
// can deadlock the whole stage, exactly the overload collapse §4 of the
// paper engineers against. The analyzer finds every method implementing
// the actor contract, walks the static intra-package call graph from it,
// and flags time.Sleep, WaitGroup/Cond waits, bare channel receives,
// selects without default, and re-entrant System.Call in anything
// reachable. Goroutines spawned from a turn run off-turn and are exempt;
// Context.Call is the runtime's sanctioned await and stays legal.
//
// Cross-package: every function whose on-turn subtree (transitively)
// blocks exports a BlockerFact, so a Receive body calling an innocuous-
// looking helper in another module package is flagged with the helper's
// witness chain — the class the old per-package analyzer could not see.
var TurnBlock = &Analyzer{
	Name:      "turnblock",
	Doc:       "no blocking operations (time.Sleep, WaitGroup.Wait, bare channel receive, select without default, re-entrant System.Call) reachable from an actor turn, including through helpers in other module packages (BlockerFact)",
	Run:       runTurnBlock,
	FactTypes: []Fact{(*BlockerFact)(nil)},
}

// BlockerFact marks an exported function that (transitively) performs a
// blocking operation when called synchronously. Why is the witness
// chain ending in the concrete operation and its position.
type BlockerFact struct{ Why string }

func (*BlockerFact) AFact() {}

func runTurnBlock(pass *Pass) error {
	// Collect the package's function bodies, keyed by their object.
	decls := packageFuncDecls(pass)
	// Export blocking summaries for every declared function — importers
	// check them at call sites inside turns. This runs on every module
	// package (not just ones with turns): internal/codec has no actors,
	// but a blocking codec helper must still carry its fact.
	blockers := effectSummaries(pass, decls, forEachOnTurnNode,
		func(n ast.Node) (string, bool) { return blockingOpWhy(pass, n) },
		func(fn *types.Func, call *ast.CallExpr) (string, bool) {
			if isSanctionedAwait(fn) {
				return "", false
			}
			var bf BlockerFact
			if pass.ImportObjectFact(fn, &bf) {
				return "calls " + lastSegment(funcPkgPath(fn)) + "." + funcDisplay(fn) + ": " + bf.Why, true
			}
			return "", false
		})
	for _, fn := range sortedFuncs(decls) {
		if s, ok := blockers[fn]; ok {
			pass.ExportObjectFact(fn, &BlockerFact{Why: s.why + " (" + shortPos(pass.Fset, s.pos) + ")"})
		}
	}
	// Roots: methods implementing the actor turn contract.
	type reachInfo struct {
		parent *types.Func
		root   *types.Func
	}
	reach := map[*types.Func]reachInfo{}
	var queue []*types.Func
	for fn := range decls {
		if isTurnMethod(fn) {
			reach[fn] = reachInfo{nil, fn}
			queue = append(queue, fn)
		}
	}
	// Deterministic BFS (and so deterministic chains in messages):
	// process roots in source order.
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	// BFS over static same-package calls; go-statement subtrees are
	// off-turn and contribute no edges (their argument expressions,
	// which evaluate on-turn, still do).
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := reach[fn]
		forEachOnTurnNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, hasBody := decls[callee]; !hasBody {
				return
			}
			if _, seen := reach[callee]; seen {
				return
			}
			reach[callee] = reachInfo{fn, info.root}
			queue = append(queue, callee)
		})
	}
	// Scan every reached body for blocking operations.
	for fn, info := range reach {
		chain := chainString(fn, func(f *types.Func) *types.Func {
			return reach[f].parent
		})
		root := info.root
		where := "in actor turn " + funcDisplay(root)
		if fn != root {
			where = "reachable from actor turn " + funcDisplay(root) + " via " + chain
		}
		scanBlocking(pass, decls[fn].Body, where)
	}
	return nil
}

// isTurnMethod matches the actor contract: a method named Receive or
// ReceiveValue whose first parameter is a *Context from an actor-ish
// package. Matching structurally (not against the interface object)
// keeps the analyzer usable on fixtures and on future actor variants.
func isTurnMethod(fn *types.Func) bool {
	if fn.Name() != "Receive" && fn.Name() != "ReceiveValue" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	first := sig.Params().At(0).Type()
	ptr, ok := first.(*types.Pointer)
	if !ok {
		return false
	}
	return namedName(ptr.Elem()) == "Context" &&
		pathHasSegment(namedPkgPath(ptr.Elem()), "actor")
}

// forEachOnTurnNode visits every node that executes on the turn's
// thread: it skips go-statement function bodies (off-turn) while still
// visiting their argument expressions, and skips nothing else.
func forEachOnTurnNode(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				forEachOnTurnNode(a, visit)
			}
			return false
		}
		visit(n)
		return true
	})
}

// scanBlocking reports blocking operations in one on-turn body.
func scanBlocking(pass *Pass, body ast.Node, where string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pass.Reportf(n.Pos(),
					"select without default blocks until a case fires, %s; actor turns must never block — poll with a default case or move the wait off-turn", where)
			}
			// Clause bodies still run on-turn; the comm operations
			// themselves were judged with the select.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"bare channel receive blocks %s; actor turns must never block — use Context.Call or a select with default", where)
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, n, where)
		}
		return true
	}
	ast.Inspect(body, walk)
}

func checkBlockingCall(pass *Pass, call *ast.CallExpr, where string) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case isPkgFunc(fn, "time", "Sleep"):
		pass.Reportf(call.Pos(),
			"time.Sleep blocks the worker thread %s; actor turns must never block — use the runtime's scheduling instead", where)
	case funcPkgPath(fn) == "sync" && fn.Name() == "Wait" &&
		(recvTypeName(fn) == "WaitGroup" || recvTypeName(fn) == "Cond"):
		pass.Reportf(call.Pos(),
			"sync.%s.Wait blocks %s; actor turns must never block — fan in through actor messages instead", recvTypeName(fn), where)
	case fn.Name() == "Call" && recvTypeName(fn) == "System" &&
		pathHasSegment(funcPkgPath(fn), "actor"):
		pass.Reportf(call.Pos(),
			"re-entrant System.Call %s deadlocks when the callee (transitively) needs this activation; call through Context.Call, which threads the turn's identity", where)
	default:
		// Cross-package: the callee's own package proved it blocks. Local
		// callees are excluded — the BFS already walks into their bodies
		// and reports the concrete operation there.
		if isSanctionedAwait(fn) || fn.Pkg() == pass.Pkg {
			return
		}
		var bf BlockerFact
		if pass.ImportObjectFact(fn, &bf) {
			pass.Reportf(call.Pos(),
				"%s.%s blocks %s: %s; actor turns must never block", lastSegment(funcPkgPath(fn)), funcDisplay(fn), where, bf.Why)
		}
	}
}

// blockingOpWhy is the local blocking detector shared with the fact
// exporter: it mirrors scanBlocking's judgments as witness strings.
func blockingOpWhy(pass *Pass, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false
			}
		}
		return "select without default", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "bare channel receive", true
		}
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, n)
		if fn == nil {
			return "", false
		}
		switch {
		case isPkgFunc(fn, "time", "Sleep"):
			return "time.Sleep", true
		case funcPkgPath(fn) == "sync" && fn.Name() == "Wait" &&
			(recvTypeName(fn) == "WaitGroup" || recvTypeName(fn) == "Cond"):
			return "sync." + recvTypeName(fn) + ".Wait", true
		case fn.Name() == "Call" && recvTypeName(fn) == "System" &&
			pathHasSegment(funcPkgPath(fn), "actor"):
			return "System.Call", true
		}
	}
	return "", false
}

// isSanctionedAwait exempts the runtime's own await surface: Context
// methods (Call and friends) block by design under the scheduler's
// control, so a BlockerFact on them — or imported for them — must never
// indict the turns that use them.
func isSanctionedAwait(fn *types.Func) bool {
	return recvTypeName(fn) == "Context" && pathHasSegment(funcPkgPath(fn), "actor")
}

// chainString renders root → ... → fn as the call path the BFS found.
func chainString(fn *types.Func, parent func(*types.Func) *types.Func) string {
	var parts []string
	for f := fn; f != nil; f = parent(f) {
		parts = append(parts, funcDisplay(f))
	}
	// Reverse into root-first order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts[1:], " → ")
}

// funcDisplay renders (*T).Name for methods, Name for functions.
func funcDisplay(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return fn.Name()
	}
	return "(" + namedName(sig.Recv().Type()) + ")." + fn.Name()
}
