// Package lint is actop's domain-specific static-analysis suite: ten
// analyzers that enforce runtime invariants generic tooling (vet,
// staticcheck) cannot see — "never block inside an actor turn", "the DES
// stays deterministic", "no I/O while a mutex is held", "pooled buffers
// don't outlive their release", "metric labels stay low-cardinality",
// "no encode or I/O on the turn-locked snapshot-capture path", "the
// actor-kind call graph is a DAG", "no mixed atomic/plain field access",
// "no goroutine Stop cannot terminate", "wire errors are classified
// with errors.Is, never compared by identity".
// Each invariant here was first paid for as a runtime bug found by the
// chaos/race batteries of earlier PRs; the analyzers move those classes
// of failure to compile time.
//
// The suite is whole-program: packages are analyzed in dependency order
// and exchange serializable facts (see facts.go), so a helper in
// internal/codec that blocks is visible from a Receive body in
// internal/actor, and properties no package can see alone (a
// synchronous call cycle between two sibling packages that never import
// each other) are checked in a Finish pass over the complete fact
// store.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, facts) so the suite could be ported onto
// the upstream framework verbatim. It is implemented on the standard
// library alone — go/ast, go/types, and `go list -export` for
// dependency export data — because this module carries no third-party
// dependencies, not even for tooling (see the Makefile header and
// DESIGN.md "Static analysis").
//
// Suppression: a comment of the form
//
//	//actoplint:ignore <analyzer> <reason>
//
// on its own line silences the named analyzer on the line that follows;
// trailing the offending code, it silences that line. The reason is
// mandatory, and naming an unknown analyzer is itself a diagnostic, so
// suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. The shape matches
// x/tools/go/analysis.Analyzer, including the fact machinery; Finish is
// the one extension (x/tools has no program-wide hook because its unit
// of work is a package — ours is the module).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //actoplint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph invariant statement shown by -list.
	Doc string

	// Match restricts the analyzer to packages whose import path it
	// accepts. A nil Match runs everywhere.
	Match func(pkgPath string) bool

	// Run performs the check on one type-checked package, reporting
	// findings through pass.Reportf and exporting facts for importing
	// packages through pass.ExportObjectFact/ExportPackageFact.
	Run func(pass *Pass) error

	// FactTypes lists a prototype of every fact type Run exports, so
	// the cache knows how to deserialize them. An analyzer that exports
	// an unlisted fact type will not see it survive a cached run.
	FactTypes []Fact

	// Finish, when non-nil, runs once after every package, with the
	// complete fact store in view — for whole-program properties like
	// cycles between packages that never import each other.
	Finish func(pass *FinishPass)
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	prog   *Program
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned by token.Pos (resolved to a
// file:line:col Finding by the runner).
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: the unit the runner returns and the
// CLI prints.
type Finding struct {
	Pos      token.Position
	Analyzer string // analyzer name, or "actoplint" for directive errors
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// sortFindings orders findings by file, line, column, then analyzer, so
// output is stable across runs.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzers returns the full actop-lint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		TurnBlock,
		SimDet,
		LockHeldIO,
		PoolEscape,
		MetricLabel,
		SnapBlock,
		CallDag,
		AtomicMix,
		GoLeak,
		ErrIdent,
	}
}
