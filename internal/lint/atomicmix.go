package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicMix finds fields and package variables that are accessed both
// through sync/atomic and with plain loads/stores. Mixed access is a
// data race even when it "works": the plain side tears under the race
// detector and, on weakly-ordered hardware, in production. The failure
// membership's markPeerAlive bug (PR 9) was this shape — a health word
// bumped atomically on the heartbeat path and read plainly on the
// routing path — and it only surfaced under the chaos battery. The two
// halves of a mix routinely live in different packages (a counter
// package exposes an atomic counter; a test or sibling reads it
// plainly), so the join is a whole-program Finish pass over per-package
// access facts.
//
// Scope: only atomic-eligible words (fixed-size integers and uintptr)
// declared in module packages are tracked, and only once some package
// actually touches them through sync/atomic — a plain int field guarded
// by a mutex never enters the fact store.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "a field or package variable touched via sync/atomic must never also be accessed plainly; mixed access is a data race (the markPeerAlive class) — use atomic loads/stores everywhere or a single mutex",
	Run:       runAtomicMix,
	FactTypes: []Fact{(*FieldAccessFact)(nil)},
	Finish:    finishAtomicMix,
}

// A FieldAccess records one word's access sites from one package. ID is
// "pkgpath.Type.Field" for fields, "pkgpath..Var" for package
// variables.
type FieldAccess struct {
	ID     string
	Atomic []Site
	Plain  []Site
}

// FieldAccessFact is the package fact: every tracked word this package
// touches, and how.
type FieldAccessFact struct {
	Accesses []FieldAccess
}

func (*FieldAccessFact) AFact() {}

func runAtomicMix(pass *Pass) error {
	atomicSites := map[string][]Site{}
	plainSites := map[string][]Site{}
	// Nodes consumed by an atomic call (the &x.f argument subtree) are
	// not plain accesses.
	consumed := map[ast.Node]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			target := ast.Unparen(addr.X)
			id, ok := pass.wordID(target)
			if !ok {
				return true
			}
			consumed[target] = true
			atomicSites[id] = append(atomicSites[id], siteOf(pass.Fset, target.Pos()))
			return true
		})
	}
	for _, f := range pass.Files {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil || consumed[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.ValueSpec:
				// Declaration names are definitions, not accesses; the
				// initializer expressions still count.
				if n.Type != nil {
					ast.Inspect(n.Type, walk)
				}
				for _, v := range n.Values {
					ast.Inspect(v, walk)
				}
				return false
			case *ast.KeyValueExpr:
				// Composite-literal keys are field names, not accesses.
				ast.Inspect(n.Value, walk)
				return false
			case *ast.SelectorExpr:
				if id, ok := pass.wordID(n); ok {
					plainSites[id] = append(plainSites[id], siteOf(pass.Fset, n.Pos()))
					ast.Inspect(n.X, walk) // inner selectors may be words too
					return false
				}
			case *ast.Ident:
				if id, ok := pass.wordID(n); ok {
					plainSites[id] = append(plainSites[id], siteOf(pass.Fset, n.Pos()))
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}

	var fact FieldAccessFact
	ids := map[string]bool{}
	for id := range atomicSites {
		ids[id] = true
	}
	for id := range plainSites {
		ids[id] = true
	}
	var sorted []string
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		fact.Accesses = append(fact.Accesses, FieldAccess{
			ID: id, Atomic: atomicSites[id], Plain: plainSites[id],
		})
	}
	if len(fact.Accesses) > 0 {
		pass.ExportPackageFact(&fact)
	}
	return nil
}

// wordID canonicalizes an lvalue as a trackable word: a struct field of
// a named type declared in a module package, or a package-level
// variable of one — in both cases of atomic-eligible underlying type.
func (p *Pass) wordID(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		sel, ok := p.TypesInfo.Selections[e]
		if !ok {
			// Qualified identifier pkg.Var: judge the selected object.
			return p.wordID(e.Sel)
		}
		if sel.Kind() != types.FieldVal {
			return "", false
		}
		v := sel.Obj().(*types.Var)
		if !atomicEligible(v.Type()) {
			return "", false
		}
		recv := sel.Recv()
		tn, tp := namedName(recv), namedPkgPath(recv)
		if tn == "" || !p.inModule(tp) {
			return "", false
		}
		return tp + "." + tn + "." + v.Name(), true
	case *ast.Ident:
		v, ok := p.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		if !atomicEligible(v.Type()) || !p.inModule(v.Pkg().Path()) {
			return "", false
		}
		return v.Pkg().Path() + ".." + v.Name(), true
	}
	return "", false
}

// inModule reports whether path is a package under analysis (the only
// declarations whose access sets we can see completely).
func (p *Pass) inModule(path string) bool {
	if p.prog != nil {
		return p.prog.isTarget(path)
	}
	return p.Pkg != nil && path == p.Pkg.Path()
}

// atomicEligible matches the word types sync/atomic operates on.
// Typed atomics (atomic.Bool, atomic.Int64, ...) are excluded by
// construction: their fields are private and every access goes through
// methods.
func atomicEligible(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// finishAtomicMix joins access sets across packages and reports every
// plain site of a word that anyone touches atomically.
func finishAtomicMix(pass *FinishPass) {
	atomic := map[string][]Site{}
	plain := map[string][]Site{}
	pass.EachPackageFact(&FieldAccessFact{}, func(_ string, f Fact) {
		for _, a := range f.(*FieldAccessFact).Accesses {
			atomic[a.ID] = append(atomic[a.ID], a.Atomic...)
			plain[a.ID] = append(plain[a.ID], a.Plain...)
		}
	})
	var ids []string
	for id := range plain {
		if len(atomic[id]) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		sites := plain[id]
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].File != sites[j].File {
				return sites[i].File < sites[j].File
			}
			return sites[i].Line < sites[j].Line
		})
		first := atomic[id]
		sort.Slice(first, func(i, j int) bool {
			if first[i].File != first[j].File {
				return first[i].File < first[j].File
			}
			return first[i].Line < first[j].Line
		})
		for _, s := range sites {
			pass.Reportf(s.Position(),
				"%s is accessed plainly here but atomically at %s; mixed atomic/plain access is a data race (the markPeerAlive class) — use atomic.Load/Store here too, or guard every access with one mutex", id, first[0])
		}
	}
}
