package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The effects engine is the shared machinery behind cross-package
// strengthening: for every function declared in a package it computes
// whether the function (transitively, through same-package calls and
// through imported facts) triggers some effect — blocks, encodes,
// performs I/O — together with a human-readable witness chain. Each
// analyzer parameterizes it with its own traversal (which subtrees are
// on-path) and its own local/external detectors, then exports the
// summaries of exported functions as object facts for importers.

// A funcEffect is one function's summary: why it triggers the effect
// and the local position witnessing it.
type funcEffect struct {
	why string
	pos token.Pos
}

// packageFuncDecls collects the package's function bodies keyed by
// their object — the unit every whole-package analyzer walks.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// sortedFuncs orders decl keys by source position for deterministic
// iteration (and so deterministic facts and messages).
func sortedFuncs(decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	fns := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// effectSummaries computes, for every declared function, the first
// reason (in source order) it triggers the effect:
//
//   - local(n) detects the effect directly at an AST node;
//   - external(fn, call) detects it at a call whose callee has no local
//     body — typically by importing a fact the callee's package
//     exported;
//   - visit bounds the search to on-path subtrees (e.g. skipping
//     go-statement bodies).
//
// Effects then propagate through same-package call edges to a fixpoint,
// producing "calls g: <g's why>" chains.
func effectSummaries(
	pass *Pass,
	decls map[*types.Func]*ast.FuncDecl,
	visit func(ast.Node, func(ast.Node)),
	local func(n ast.Node) (string, bool),
	external func(fn *types.Func, call *ast.CallExpr) (string, bool),
) map[*types.Func]funcEffect {
	type callEdge struct {
		pos    token.Pos
		callee *types.Func
	}
	summaries := map[*types.Func]funcEffect{}
	edges := map[*types.Func][]callEdge{}
	fns := sortedFuncs(decls)
	for _, fn := range fns {
		found := false
		visit(decls[fn].Body, func(n ast.Node) {
			if found {
				return
			}
			if why, ok := local(n); ok {
				summaries[fn] = funcEffect{why, n.Pos()}
				found = true
				return
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, isLocal := decls[callee]; isLocal {
				edges[fn] = append(edges[fn], callEdge{call.Pos(), callee})
				return
			}
			if external != nil {
				if why, ok := external(callee, call); ok {
					summaries[fn] = funcEffect{why, call.Pos()}
					found = true
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if _, ok := summaries[fn]; ok {
				continue
			}
			for _, e := range edges[fn] {
				if s, ok := summaries[e.callee]; ok {
					summaries[fn] = funcEffect{
						why: "calls " + funcDisplay(e.callee) + ": " + s.why,
						pos: e.pos,
					}
					changed = true
					break
				}
			}
		}
	}
	return summaries
}

// shortPos renders a position as file:line for embedding in fact Why
// strings (the witness the importing package's diagnostic points at).
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
