package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// MetricLabel polices cardinality at every metrics call site. The
// /metrics exposition plane keeps one series per distinct label-value
// tuple forever; a label derived from an actor id, a node address, or
// any fmt.Sprintf of per-entity data grows without bound and eventually
// takes the whole registry (and every Prometheus scrape) with it. Label
// values must come from closed sets: literals, constants, or named
// values that carry method/component/stage names.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "metric label values must come from bounded sets: no fmt.Sprintf results, string conversions, concatenations, or identity-like fields at metrics call sites",
	Run:  runMetricLabel,
}

// metricFamilies maps the metrics registry's family types to the methods
// that accept trailing label values, with the index of the first label
// argument.
var metricFamilies = map[string]map[string]int{
	"SummaryFamily": {"With": 0, "Observe": 1, "ObserveExemplar": 2},
	"GaugeFamily":   {"Set": 1},
	"CounterFamily": {"Add": 1, "SetTotal": 1},
}

// identityishNames flags identifiers and fields whose name screams
// per-entity data even when the expression is otherwise a plain read.
var identityishNames = map[string]bool{
	"key": true, "id": true, "uid": true, "guid": true,
	"actorid": true, "addr": true, "address": true, "host": true,
	"actor": true, "ref": true, "peer": true,
}

func runMetricLabel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !pathHasSegment(funcPkgPath(fn), "metrics") {
				return true
			}
			methods, ok := metricFamilies[recvTypeName(fn)]
			if !ok {
				return true
			}
			first, ok := methods[fn.Name()]
			if !ok {
				return true
			}
			for i := first; i < len(call.Args); i++ {
				if msg, pos, bad := unboundedLabel(pass, call.Args[i]); bad {
					pass.Reportf(pos, "metric label value %s; label cardinality must stay bounded — pass a constant or a name from a closed set (see DESIGN.md \"Static analysis\")", msg)
				}
			}
			return true
		})
	}
	return nil
}

// unboundedLabel classifies one label-value argument. Allowed: constants
// (covers literals and constant concatenation), plain identifiers, and
// field selectors of string type — named values are trusted to carry
// closed-set names unless their name itself looks per-entity.
func unboundedLabel(pass *Pass, e ast.Expr) (string, token.Pos, bool) {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return "", 0, false // compile-time constant: bounded by definition
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if isConversion(pass.TypesInfo, e) {
			return "is a string conversion of runtime data", e.Pos(), true
		}
		if fn := calleeFunc(pass.TypesInfo, e); fn != nil {
			return "is built at the call site by " + fn.FullName(), e.Pos(), true
		}
		return "is produced by a dynamic call", e.Pos(), true
	case *ast.BinaryExpr:
		// Non-constant concatenation: "actor-" + id.
		return "is a runtime string concatenation", e.Pos(), true
	case *ast.Ident:
		if identityishNames[strings.ToLower(e.Name)] {
			return "looks per-entity (" + e.Name + ")", e.Pos(), true
		}
		return "", 0, false
	case *ast.SelectorExpr:
		if identityishNames[strings.ToLower(e.Sel.Name)] {
			return "looks per-entity (." + e.Sel.Name + ")", e.Pos(), true
		}
		return "", 0, false
	case *ast.IndexExpr:
		return "", 0, false // table lookup: bounded by the table
	}
	return "has a shape the analyzer cannot prove bounded", e.Pos(), true
}
