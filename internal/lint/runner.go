package lint

import (
	"fmt"
	"go/token"
)

// Run loads the packages matched by patterns (relative to moduleDir) and
// applies analyzers, returning surviving findings in stable order.
// Suppression directives are honored per package; malformed directives
// surface as DirectiveAnalyzer findings.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := LoadPackages(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// RunPackage applies analyzers to one loaded package and resolves
// suppression directives. The set of names a directive may legally cite
// is the full suite plus whatever analyzers were passed (so fixture runs
// of a single analyzer still accept directives naming the others).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	findings = applyDirectives(findings, pkg, scanDirectives(pkg, known))
	sortFindings(findings)
	return findings, nil
}

// positionOnLine fabricates a position for line-anchored findings (used
// for directive errors, which have no AST node).
func positionOnLine(pkg *Package, file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
