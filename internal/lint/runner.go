package lint

import (
	"go/token"
)

// Run loads the packages matched by patterns (relative to moduleDir) and
// applies analyzers as one whole program — facts flow along import
// edges, Finish passes see every package — returning surviving findings
// in stable order. Suppression directives are honored globally;
// malformed directives and stale directives (ones that no longer
// suppress any finding) surface as DirectiveAnalyzer findings.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunProgram(moduleDir, patterns, analyzers, Options{})
	return findings, err
}

// RunPackage applies analyzers to one loaded package and resolves
// suppression directives — the single-package fixture path (facts still
// work within the package; stale-directive detection stays off, see
// RunPackages).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackages([]*Package{pkg}, analyzers)
}

// positionOnLine fabricates a position for line-anchored findings (used
// for directive errors, which have no AST node).
func positionOnLine(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
