// Fixture for the lockheldio analyzer: transport sends, actor calls,
// and channel sends inside Lock/Unlock windows, with the unlocked and
// non-blocking near misses that must stay silent.
package a

import (
	"sync"

	"actor"
	"transport"
)

type node struct {
	mu   sync.Mutex
	rmu  sync.RWMutex
	conn *transport.Conn
	sys  *actor.System
	ch   chan int
}

func (n *node) sendWhileLocked() {
	n.mu.Lock()
	n.conn.Send("peer", nil) // want `transport send while n\.mu is held`
	n.mu.Unlock()
}

// sendAfterUnlock is a near miss: the window closed first.
func (n *node) sendAfterUnlock() {
	n.mu.Lock()
	n.mu.Unlock()
	_ = n.conn.Send("peer", nil)
}

func (n *node) deferredHold() error {
	n.rmu.RLock()
	defer n.rmu.RUnlock()
	return n.conn.Send("peer", nil) // want `transport send while n\.rmu is held`
}

func (n *node) callWhileLocked() {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.sys.Call(actor.Ref{}, "m", nil, nil) // want `actor call \(System\.Call\) while n\.mu is held`
}

func (n *node) chanSendWhileLocked(v int) {
	n.mu.Lock()
	n.ch <- v // want `channel send while n\.mu is held`
	n.mu.Unlock()
}

// nonBlockingSend is a near miss: the default case makes the select —
// and so the send — non-blocking (the seda Submit fast path).
func (n *node) nonBlockingSend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v:
	default:
	}
}

func (n *node) blockingSelectSend(v int, stop chan int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v: // want `channel send \(blocking select case\) while n\.mu is held`
	case <-stop:
	}
}

// goroutineUnderLock is a near miss: the spawned goroutine does not
// hold the caller's lock.
func (n *node) goroutineUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		_ = n.conn.Send("peer", nil)
	}()
}

// disjointWindows is a near miss: both locks released before the send.
func (n *node) disjointWindows() {
	n.mu.Lock()
	n.mu.Unlock()
	n.rmu.Lock()
	n.rmu.Unlock()
	_ = n.conn.Send("peer", nil)
}

// twoLocksHeld reports the full held set.
func (n *node) twoLocksHeld() {
	n.mu.Lock()
	n.rmu.RLock()
	_ = n.conn.Send("peer", nil) // want `transport send while n\.mu, n\.rmu is held`
	n.rmu.RUnlock()
	n.mu.Unlock()
}

// lockState / unlockState are lock helpers: their net effect is the
// receiver's mutex, so calling them opens and closes the window one
// call hop away.
func (n *node) lockState()   { n.mu.Lock() }
func (n *node) unlockState() { n.mu.Unlock() }

func (n *node) helperWindow() {
	n.lockState()
	n.conn.Send("peer", nil) // want `transport send while n\.mu is held`
	n.unlockState()
	_ = n.conn.Send("peer", nil) // near miss: the helper closed the window
}

// pump sends unconditionally; callers holding a lock are flagged one
// hop away through pump's direct-I/O summary.
func (n *node) pump(v int) {
	n.ch <- v
}

func (n *node) pumpWhileLocked(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pump(v) // want `call to \(node\)\.pump while n\.mu is held; it performs a channel send`
}

// tryPump is the one-hop near miss: its only send sits behind
// select+default, so it cannot block and carries no direct-I/O summary.
func (n *node) tryPump(v int) bool {
	select {
	case n.ch <- v:
		return true
	default:
		return false
	}
}

func (n *node) tryPumpWhileLocked(v int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tryPump(v)
}
