// Package transport is a fixture stand-in for actop/internal/transport:
// lockheldio keys on a Send method declared in a "transport" package
// segment.
package transport

// NodeID names a peer.
type NodeID string

// Envelope is one framed message.
type Envelope struct{}

// Conn is a peer connection.
type Conn struct{}

// Send writes env to the peer, blocking while the peer is slow or
// unreachable — exactly why it must not run under a lock.
func (c *Conn) Send(to NodeID, env *Envelope) error { return nil }
