// Fixture for the metriclabel analyzer, importing the real metrics
// registry so the family types resolve exactly as production call sites
// do. Unbounded label shapes must be flagged; closed-set names must not.
package a

import (
	"fmt"
	"strconv"
	"time"

	"actop/internal/metrics"
)

const boundedMethod = "join"

var (
	reg    = metrics.NewRegistry()
	dur    = reg.Summary("call_duration_seconds", "per-method call latency", "method")
	gauge  = reg.Gauge("stage_threads", "threads per stage", "stage")
	counts = reg.Counter("calls_total", "calls by method", "method")
)

func record(d time.Duration, method string, id int, key string, stages []string) {
	dur.Observe(d, "join")        // near miss: literal
	dur.Observe(d, boundedMethod) // near miss: constant
	dur.Observe(d, method)        // near miss: a named closed-set value
	dur.Observe(d, stages[0])     // near miss: table lookup, bounded by the table

	dur.Observe(d, fmt.Sprintf("actor-%d", id))    // want `built at the call site by fmt\.Sprintf`
	dur.Observe(d, "actor-"+strconv.Itoa(id))      // want `runtime string concatenation`
	gauge.Set(1, strconv.Itoa(id))                 // want `built at the call site by strconv\.Itoa`
	counts.Add(1, key)                             // want `looks per-entity \(key\)`
	counts.Add(1, string(rune(id)))                // want `string conversion of runtime data`
	dur.With(fmt.Sprint(id)).Record(d)             // want `built at the call site by fmt\.Sprint`
	counts.SetTotal(uint64(id), fmt.Sprint("x+y")) // want `built at the call site by fmt\.Sprint`
}

type call struct{ ID string }

func recordField(d time.Duration, c call) {
	dur.Observe(d, c.ID) // want `looks per-entity \(\.ID\)`
}

// spread is a near miss: a variadic spread of an existing label tuple is
// the registry's own internal idiom.
func spread(d time.Duration, labels []string) {
	dur.Observe(d, labels...)
}

// rankLabels mirrors the observability plane's pre-rendered bounded-label
// tables: an index into a fixed array is bounded by the array.
var rankLabels = [3]string{"1", "2", "3"}

func recordObs(d time.Duration, traceID uint64, actor, peer string, i int) {
	dur.ObserveExemplar(d, traceID, "join")        // near miss: label after the trace id is a literal
	dur.ObserveExemplar(d, traceID, rankLabels[i]) // near miss: fixed-table lookup

	dur.ObserveExemplar(d, traceID, actor)           // want `looks per-entity \(actor\)`
	gauge.Set(float64(i), peer)                      // want `looks per-entity \(peer\)`
	gauge.Set(float64(i), fmt.Sprintf("rank-%d", i)) // want `built at the call site by fmt\.Sprintf`
}

type hotEntry struct{ Actor, Ref string }

func recordHotEntry(d time.Duration, e hotEntry) {
	dur.Observe(d, e.Actor) // want `looks per-entity \(\.Actor\)`
	counts.Add(1, e.Ref)    // want `looks per-entity \(\.Ref\)`
}
