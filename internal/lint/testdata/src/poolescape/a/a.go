// Fixture for the poolescape analyzer, importing the real codec package
// so GetBuffer/PutBuffer resolve to the genuine pool API. Covers
// use-after-release, aliases that outlive a release, and the sanctioned
// ownership-transfer shapes.
package a

import "actop/internal/codec"

type holder struct{ buf []byte }

var sink []byte

func use([]byte) {}

func useAfterRelease() byte {
	buf := codec.GetBuffer()
	buf = append(buf, 1)
	codec.PutBuffer(buf)
	return buf[0] // want `use of pooled buffer buf after codec\.PutBuffer`
}

func fieldAliasOutlivesRelease(h *holder) {
	buf := codec.GetBuffer()
	h.buf = buf // want `pooled buffer is stored in a field but is also returned to the pool`
	codec.PutBuffer(buf)
}

func globalAliasOutlivesRelease() {
	buf := codec.GetBuffer()
	sink = buf // want `pooled buffer is stored in a package-level variable but is also returned to the pool`
	codec.PutBuffer(buf)
}

func sendThenRelease(ch chan []byte) {
	buf := codec.GetBuffer()
	ch <- buf // want `pooled buffer is sent on a channel but is also returned to the pool`
	codec.PutBuffer(buf)
}

func goroutineCapture() {
	buf := codec.GetBuffer()
	go use(buf) // want `pooled buffer is captured by a spawned goroutine but is also returned to the pool`
	codec.PutBuffer(buf)
}

// ownershipTransfer is a near miss: returning the buffer hands the
// caller ownership; nothing is released here.
func ownershipTransfer() []byte {
	buf := codec.GetBuffer()
	buf = append(buf, 1)
	return buf
}

// retainWithoutRelease is a near miss: keeping a buffer out of the pool
// forever is wasteful but never dangles.
func retainWithoutRelease(h *holder) {
	buf := codec.GetBuffer()
	h.buf = buf
}

// deferredRelease is a near miss: the blessed idiom — uses precede the
// deferred PutBuffer.
func deferredRelease(v interface{}) error {
	buf, err := codec.MarshalAppend(codec.GetBuffer(), v)
	defer codec.PutBuffer(buf)
	if err != nil {
		return err
	}
	use(buf)
	return nil
}

// reacquire is a near miss: reassigning from GetBuffer re-arms the
// variable after its release.
func reacquire() byte {
	buf := codec.GetBuffer()
	codec.PutBuffer(buf)
	buf = codec.GetBuffer()
	buf = append(buf, 2)
	b := buf[0]
	codec.PutBuffer(buf)
	return b
}
