// Fixture for the goleak analyzer: goroutines in actor/transport code
// must gate their loops on a shutdown signal. Positives: an ungated
// funclit loop, an ungated local named loop, one reached one hop
// through a wrapper funclit, and an imported ungated function
// (goleak/actor/dep, via its UngatedFact). Near misses: loops gated on
// a done channel or close flag, and ranging over a channel (terminates
// on close).
package a

import (
	"sync"

	"goleak/actor/dep"
)

type stage struct {
	done chan struct{}
	work chan int
	bg   sync.WaitGroup
}

// start spawns the full zoo.
func (s *stage) start() {
	go func() { // want `goroutine runs an infinite loop with no shutdown gate`
		n := 0
		for {
			n++
		}
	}()

	go s.spinLoop() // want `goroutine calls \(stage\)\.spinLoop, which runs an infinite loop with no shutdown gate`

	s.bg.Add(1)
	go func() { // want `goroutine calls \(stage\)\.spinLoop, which runs an infinite loop with no shutdown gate`
		defer s.bg.Done()
		s.spinLoop()
	}()

	go dep.Spin() // want `goroutine calls dep\.Spin, which runs an infinite loop with no shutdown gate`

	// Near misses from here down.
	go s.gatedLoop()            // watches s.done
	go dep.Pump(s.done, s.work) // gated in its own package
	go s.drainLoop()            // range over channel: ends when closed
	s.bg.Add(1)
	go func() { // wrapper over a gated loop
		defer s.bg.Done()
		s.gatedLoop()
	}()
}

// spinLoop never checks anything: ungated.
func (s *stage) spinLoop() {
	n := 0
	for {
		n++
	}
}

// gatedLoop polls the done channel every iteration.
func (s *stage) gatedLoop() {
	for {
		select {
		case <-s.done:
			return
		case n := <-s.work:
			_ = n
		}
	}
}

// drainLoop ranges over the work channel; close(work) ends it.
func (s *stage) drainLoop() {
	for n := range s.work {
		_ = n
	}
}
