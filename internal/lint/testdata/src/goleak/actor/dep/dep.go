// Fixture dependency for the goleak analyzer: exports a function whose
// body is an ungated infinite loop. Spawning it lives in the importing
// package — the UngatedFact is how the spawn site learns it leaks.
package dep

// Spin burns forever with no shutdown gate; `go dep.Spin()` leaks.
func Spin() {
	n := 0
	for {
		n++
	}
}

// Pump also loops forever but watches a done channel every iteration:
// near miss, gated.
func Pump(doneCh <-chan struct{}, work chan<- int) {
	n := 0
	for {
		select {
		case <-doneCh:
			return
		case work <- n:
			n++
		}
	}
}
