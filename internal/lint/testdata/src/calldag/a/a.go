// Fixture for the calldag analyzer, package one of a sibling pair: this
// package registers kind "alpha" and its turn synchronously calls kind
// "beta", which calldag/b registers and which calls back — the ctlStage
// livelock shape, invisible to any per-package analysis because the two
// packages never import each other. The Finish pass joins their facts
// and reports the edge that closes the cycle (in b, where the DFS from
// the alphabetically-first kind finds the back edge).
package a

import "actor"

// Alpha is registered as kind "alpha".
type Alpha struct{}

// Receive calls into kind "beta" synchronously: the forward half of the
// cycle. The finding lands on the matching back edge in calldag/b.
func (a *Alpha) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	if method == "poke" {
		var reply []byte
		if err := ctx.Call(actor.Ref{Type: "beta", Key: "b0"}, "echo", args, &reply); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Register binds the kind; the factory's concrete type is how calldag
// ties edges (per Go type) to kinds (per registration).
func Register(sys *actor.System) {
	sys.RegisterType("alpha", func() actor.Actor { return &Alpha{} })
}
