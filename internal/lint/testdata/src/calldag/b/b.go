// Fixture for the calldag analyzer, package two of the sibling pair:
// registers kinds "beta" (which calls back into "alpha", closing the
// cycle) and "gamma" (which also calls "alpha" — but only one way, so
// it must stay silent: a DAG edge is the whole point of the check).
package b

import "actor"

// Beta is registered as kind "beta".
type Beta struct{}

// alphaRef is a typed constructor: calldag resolves the call's kind
// through it (and would export a RefKindFact were it consumed from yet
// another package).
func alphaRef(key string) actor.Ref {
	return actor.Ref{Type: "alpha", Key: key}
}

// Receive calls back into kind "alpha": the back edge of the cycle.
func (b *Beta) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	var reply []byte
	if err := ctx.Call(alphaRef("a0"), "echo", args, &reply); err != nil { // want `synchronous actor call into kind "alpha" closes the kind-level cycle alpha → beta → alpha`
		return nil, err
	}
	return nil, nil
}

// Gamma is registered as kind "gamma" and calls "alpha" one way only —
// near miss: an acyclic kind edge is legal.
type Gamma struct{}

// Receive's call contributes the DAG edge gamma → alpha; no finding.
func (g *Gamma) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	ref := actor.Ref{Type: "alpha", Key: "a1"}
	var reply []byte
	return reply, ctx.Call(ref, "echo", args, &reply)
}

// Register binds both kinds.
func Register(sys *actor.System) {
	sys.RegisterType("beta", func() actor.Actor { return &Beta{} })
	sys.RegisterType("gamma", func() actor.Actor { return &Gamma{} })
}
