// Fixture dependency for cross-package fact flow: every helper here is
// innocuous at its call site and condemned (or cleared) only by what
// its body does — the importing package (facts/b) holds the want
// comments. Exports: BlockerFact (Blocky), EncodeIOFact (EncodeAll),
// RetainsFact (Stash), DirectIOFact (SendIt). Polite is the near miss:
// its only send hides behind select+default, so it carries no fact.
package a

import (
	"time"

	"actop/internal/codec"
	"transport"
)

// Blocky sleeps: importers' turns must not call it (BlockerFact).
func Blocky() {
	time.Sleep(time.Millisecond)
}

// EncodeAll marshals: importers' turn-locked captures must not call it
// (EncodeIOFact, kind "encode").
func EncodeAll(v interface{}) []byte {
	b, _ := codec.Marshal(v)
	return b
}

// Stash retains its []byte parameter in a package variable
// (RetainsFact, param 0): passing a pooled buffer here aliases the
// pool's next user.
var stashed []byte

func Stash(b []byte) {
	stashed = b
}

// SendIt performs a transport send (DirectIOFact): calling it with a
// mutex held pins the lock on an unreachable peer.
func SendIt(c *transport.Conn, to transport.NodeID, env *transport.Envelope) error {
	return c.Send(to, env)
}

// Polite only sends when there is room — the select+default fast path —
// so it must NOT carry a DirectIOFact: calling it under a lock is fine.
func Polite(ch chan int, n int) bool {
	select {
	case ch <- n:
		return true
	default:
		return false
	}
}
