// Fixture for cross-package fact consumption: facts/a exported the
// facts; every violation here is a call that looks innocent and is
// condemned only by the callee's imported summary. Each positive has a
// local near miss proving the fact is what fires, not the call shape.
package b

import (
	"sync"

	"actop/internal/codec"
	"facts/a"

	"actor"
	"transport"
)

type node struct {
	mu    sync.Mutex
	conn  *transport.Conn
	ch    chan int
	state []int
}

// Receive is a turn: calling a.Blocky synchronously blocks the worker
// stage, which only a's BlockerFact can reveal.
func (n *node) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	a.Blocky()    // want `a\.Blocky blocks in actor turn \(node\)\.Receive: time\.Sleep`
	go a.Blocky() // near miss: off-turn
	return nil, nil
}

// captureSnapshotLocked runs under the turn lock; a.EncodeAll encodes,
// which only its EncodeIOFact reveals.
func (n *node) captureSnapshotLocked() func() []byte {
	cp := append([]int(nil), n.state...)
	buf := a.EncodeAll(cp) // want `a\.EncodeAll encodes in turn-locked capture \(node\)\.captureSnapshotLocked: codec\.Marshal`
	_ = buf
	// Near miss: the returned closure runs on the snapshotter pool,
	// off the lock — encoding there is the sanctioned pattern.
	return func() []byte { return a.EncodeAll(cp) }
}

// stashPooled releases a pooled buffer it also leaked into a.Stash —
// the RetainsFact escape.
func stashPooled(v interface{}) {
	buf := codec.GetBuffer()
	a.Stash(buf) // want `pooled buffer is passed to Stash, which retains it, but is also returned to the pool`
	codec.PutBuffer(buf)
}

// handPooled transfers ownership without releasing: near miss (the
// callee retains it, but nobody puts it back).
func handPooled() {
	buf := codec.GetBuffer()
	a.Stash(buf)
}

// notifyLocked sends on the transport one hop away while holding the
// mutex — only a.SendIt's DirectIOFact sees the send.
func (n *node) notifyLocked(to transport.NodeID, env *transport.Envelope) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return a.SendIt(n.conn, to, env) // want `call to a\.SendIt while n\.mu is held; it sends on the transport`
}

// politeLocked calls the select+default helper under the same lock:
// near miss — the callee cannot block, so no fact, no finding.
func (n *node) politeLocked(v int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return a.Polite(n.ch, v)
}
