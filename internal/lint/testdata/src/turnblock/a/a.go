// Fixture for the turnblock analyzer: blocking operations inside (or
// reachable from) actor turn bodies, plus the near-miss shapes that must
// stay silent.
package a

import (
	"sync"
	"time"

	"actor"
)

var sys *actor.System

type blocky struct{}

func (b *blocky) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks the worker thread in actor turn \(blocky\)\.Receive`
	var wg sync.WaitGroup
	wg.Wait() // want `sync\.WaitGroup\.Wait blocks`
	ch := make(chan int)
	<-ch                                     // want `bare channel receive blocks`
	_ = sys.Call(actor.Ref{}, "m", nil, nil) // want `re-entrant System\.Call`
	b.helper(ch)
	return nil, nil
}

// helper is only a violation because a turn reaches it.
func (b *blocky) helper(ch chan int) {
	<-ch // want `bare channel receive blocks reachable from actor turn \(blocky\)\.Receive via \(blocky\)\.helper`
}

type valued struct{}

func (v *valued) ReceiveValue(ctx *actor.Context, method string, args interface{}) (interface{}, error) {
	var cond sync.Cond
	cond.Wait() // want `sync\.Cond\.Wait blocks`
	return nil, nil
}

type polite struct{}

func (p *polite) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	ch := make(chan int, 1)
	// Near miss: a select with default polls without blocking.
	select {
	case v := <-ch:
		_ = v
	default:
	}
	// A select without default parks the turn.
	select { // want `select without default blocks until a case fires`
	case v := <-ch:
		_ = v
	}
	// Near miss: goroutines spawned from a turn run off-turn and may
	// block freely.
	go func() {
		<-ch
	}()
	// Near miss: Context.Call is the runtime's sanctioned await.
	_ = ctx.Call(actor.Ref{}, "m", nil, nil)
	return nil, nil
}

// notATurn has the method name but not the contract (no *actor.Context
// first parameter): nothing in it is a turn, so nothing is flagged.
type notATurn struct{}

func (n *notATurn) Receive(method string, args []byte) ([]byte, error) {
	time.Sleep(time.Millisecond)
	return nil, nil
}

// unreached blocks but no turn can reach it.
func unreached(ch chan int) int { return <-ch }
