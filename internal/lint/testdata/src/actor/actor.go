// Package actor is a fixture stand-in for actop/internal/actor: the
// analyzers match the Context/System shapes structurally (by type name
// and an "actor" path segment), so fixtures exercise them without
// dragging the real runtime into every golden test.
package actor

// Ref addresses an actor.
type Ref struct{ Type, Key string }

// Context is the turn context handed to Receive.
type Context struct{ self Ref }

// Call is the runtime's sanctioned awaited call from inside a turn.
func (c *Context) Call(to Ref, method string, args, reply interface{}) error { return nil }

// System is the top-level runtime entry.
type System struct{}

// Call is the top-level (re-entrant when used from a turn) entry point.
func (s *System) Call(to Ref, method string, args, reply interface{}) error { return nil }

// Actor is the turn contract.
type Actor interface {
	Receive(ctx *Context, method string, args []byte) ([]byte, error)
}

// RegisterType binds a kind string to a factory, as the real runtime
// does — calldag keys on this shape.
func (s *System) RegisterType(name string, f func() Actor) {}
