// Fixture dependency for the atomicmix analyzer: declares a counter
// type and a package-level word and touches both ONLY through
// sync/atomic. The plain accesses live in the importing package
// (atomicmix/a), so the mix is invisible to either package alone — the
// Finish pass joins the per-package access facts.
package dep

import "sync/atomic"

// Gauge is a shared counter; Hot is bumped atomically on the fast path.
type Gauge struct {
	Hot  int64
	Cold int64 // never touched atomically: plain use elsewhere is fine
}

// Spins is bumped atomically by Bump.
var Spins uint64

// Bump is the atomic half of both mixes.
func (g *Gauge) Bump() {
	atomic.AddInt64(&g.Hot, 1)
	atomic.AddUint64(&Spins, 1)
}
