// Fixture for the atomicmix analyzer: words touched both via
// sync/atomic and plainly. The same-package mix (hits) and the
// cross-package mix (dep.Gauge.Hot, dep.Spins — atomic half in
// atomicmix/dep) must be flagged at every plain site; atomic-only and
// plain-only words are the near misses that must stay silent.
package a

import (
	"sync/atomic"

	"atomicmix/dep"
)

type counter struct {
	hits  int64 // atomic in bump, plain in read: the mix
	safe  int64 // atomic everywhere: near miss
	plain int64 // plain everywhere, no atomic anywhere: near miss
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.safe, 1)
}

func (c *counter) read() int64 {
	return c.hits // want `a\.counter\.hits is accessed plainly here but atomically at`
}

func (c *counter) readSafe() int64 {
	return atomic.LoadInt64(&c.safe)
}

func (c *counter) readPlain() int64 {
	c.plain++
	return c.plain
}

// snapshot reads dep's atomically-maintained words plainly: the
// cross-package halves of the mix, one field, one package variable.
func snapshot(g *dep.Gauge) (int64, uint64) {
	hot := g.Hot   // want `dep\.Gauge\.Hot is accessed plainly here but atomically at`
	n := dep.Spins // want `dep\.\.Spins is accessed plainly here but atomically at`
	return hot, n
}

// coldRead uses a field nobody touches atomically: near miss.
func coldRead(g *dep.Gauge) int64 { return g.Cold }
