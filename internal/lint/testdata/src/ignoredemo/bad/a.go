// Fixture for malformed suppression directives: each one is itself a
// diagnostic (from the "actoplint" pseudo-analyzer) and suppresses
// nothing. Checked programmatically in ignore_test.go because the
// findings land on the directive's own comment line.
package bad

func f() int {
	//actoplint:ignore nosuchanalyzer the name does not exist
	x := 1
	//actoplint:ignore simdet
	x++
	//actoplint:ignore
	x++
	//actoplint:ignore actoplint directive errors must not be suppressible
	return x
}
