// Fixture for the suppression mechanism, run under the simdet analyzer
// (the /des path segment opts this package in). Directives must silence
// exactly the named analyzer on exactly one line.
package des

import "time"

// suppressedNextLine: an own-line directive covers the next line.
func suppressedNextLine() time.Time {
	//actoplint:ignore simdet fixture demonstrates next-line suppression
	return time.Now()
}

// suppressedInline: a trailing directive covers its own line.
func suppressedInline() time.Time {
	return time.Now() //actoplint:ignore simdet fixture demonstrates same-line suppression
}

// wrongAnalyzer: naming a different (valid) analyzer leaves the simdet
// finding live — suppression is per-analyzer, not per-line.
func wrongAnalyzer() time.Time {
	//actoplint:ignore turnblock suppressing the wrong analyzer must not hide simdet
	return time.Now() // want `time\.Now reads the wall clock`
}

// tooFar: an own-line directive reaches only the next line, not beyond.
func tooFar() time.Time {
	//actoplint:ignore simdet a directive reaches exactly one line
	_ = 0
	return time.Now() // want `time\.Now reads the wall clock`
}
