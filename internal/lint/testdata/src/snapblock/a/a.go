// Fixture for the snapblock analyzer: encode and I/O on the turn-locked
// snapshot-capture path, plus the deferral shapes (returned closures,
// goroutines, non-capture functions) that must stay silent.
package a

import (
	"bytes"
	"encoding/gob"

	"actor"
	"codec"
	"transport"
)

type activation struct{ state []byte }

type system struct {
	conn *transport.Conn
	sys  *actor.System
}

// captureStateLocked is a root by naming convention: called with the
// activation's turn lock held, between executing the turn and answering
// the caller.
func (s *system) captureStateLocked(a *activation) func() {
	b, _ := codec.Marshal(a.state) // want `codec\.Marshal encodes in turn-locked capture \(system\)\.captureStateLocked`
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(a.state) // want `gob\.Encode encodes in turn-locked capture`
	s.ship(b)
	_ = s.sys.Call(actor.Ref{}, "m", nil, nil) // want `actor call \(System\.Call\) in turn-locked capture .* holds the turn lock across a round trip`
	// Near miss: the returned closure runs on the snapshotter pool, off
	// the lock — encode and ship belong exactly here.
	state := append([]byte(nil), a.state...)
	return func() {
		enc, _ := codec.Marshal(state)
		s.ship(enc)
	}
}

// ship is only a violation because a locked capture reaches it.
func (s *system) ship(b []byte) {
	_ = s.conn.Send("peer", &transport.Envelope{}) // want `transport send reachable from turn-locked capture \(system\)\.captureStateLocked via \(system\)\.ship`
}

// captureAsyncLocked defers everything: goroutine bodies run off the
// lock and are exempt (the spawn itself is cheap).
func (s *system) captureAsyncLocked(a *activation) {
	go func() {
		b, _ := codec.Marshal(a.state)
		s.ship(b)
	}()
}

// captureState misses the Locked suffix: it is not called under a turn
// lock, so it is not a root and its inline encode is legal.
func (s *system) captureState(a *activation) {
	b, _ := codec.Marshal(a.state)
	s.ship(b)
}

// flushLocked holds a lock but is not a snapshot capture: snapblock
// stays scoped to the capture path (lockheldio owns generic locked-path
// I/O rules).
func (s *system) flushLocked(a *activation) {
	_, _ = codec.Marshal(a.state)
}
