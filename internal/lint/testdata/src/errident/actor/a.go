// Fixture for the errident analyzer: wire-adjacent code must classify
// errors with errors.Is. Positives: == / != against a sentinel, and
// Error()-text matching (==, strings.Contains). Near misses: errors.Is,
// nil checks, and string comparisons that don't involve Error().
package a

import (
	"errors"
	"strings"
)

// ErrTimeout is a sentinel that crosses the wire as a rehydrated copy.
var ErrTimeout = errors.New("timeout")

func classify(err error) string {
	if err == ErrTimeout { // want `error compared with ==`
		return "timeout"
	}
	if err != ErrTimeout { // want `error compared with !=`
		return "other"
	}
	if err.Error() == "boom" { // want `error classified by comparing Error\(\) text`
		return "boom"
	}
	if strings.Contains(err.Error(), "partial") { // want `error classified by strings\.Contains on Error\(\) text`
		return "partial"
	}
	return ""
}

// nearMisses stay silent: errors.Is is the sanctioned check, nil
// comparisons are not identity classification, and unrelated string
// work is out of scope.
func nearMisses(err error, s string) string {
	if errors.Is(err, ErrTimeout) {
		return "timeout"
	}
	if err == nil {
		return "ok"
	}
	if err != nil && s == "boom" {
		return s
	}
	if strings.Contains(s, "partial") {
		return "partial"
	}
	return ""
}
