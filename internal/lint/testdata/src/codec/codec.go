// Package codec is a fixture stand-in for actop/internal/codec: snapblock
// keys on Marshal/Unmarshal declared in a "codec" package segment.
package codec

// Marshal encodes v into the wire form.
func Marshal(v interface{}) ([]byte, error) { return nil, nil }

// Unmarshal decodes b into v.
func Unmarshal(b []byte, v interface{}) error { return nil }
