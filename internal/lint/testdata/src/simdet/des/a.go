// Fixture for the simdet analyzer (the package path ends in /des, so
// the determinism rules apply): wall-clock reads, global randomness, and
// order-sensitive map iteration, next to their deterministic near-miss
// twins.
package des

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func timerArm(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time\.After reads the wall clock`
}

// durationMath is a near miss: pure duration arithmetic never touches
// the clock.
func durationMath(start time.Duration) time.Duration {
	return start + 5*time.Millisecond
}

func globalDraw() int {
	return rand.Intn(6) // want `rand\.Intn draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

// seededDraw is a near miss: a per-simulation seeded source replays.
func seededDraw(rng *rand.Rand) int {
	return rng.Intn(6)
}

// newRng is a near miss: the seeded constructors are the sanctioned
// entry points.
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

func firstKey(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is randomized`
		if out == "" {
			out = k
		}
	}
	return out
}

// intCount is a near miss: integer accumulation commutes exactly.
func intCount(m map[string]int, want int) int {
	n := 0
	for _, v := range m {
		if v == want {
			n++
		}
	}
	return n
}

// invert is a near miss: per-key stores into another map commute.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sortedSum is a near miss: the canonical fix — collect keys, sort,
// iterate the slice.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}
