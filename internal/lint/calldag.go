package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// CallDag proves the actor-kind call graph is a DAG. A synchronous
// Context.Call from kind A's turn into kind B, paired with one from B
// back into A, deadlocks the moment both directions are in flight on
// the real runtime: each turn holds its activation's turn lock while
// awaiting the other (the ctlStage livelock of the control-plane PR was
// exactly this shape, hidden across two packages that never import each
// other). spec.Validate rejects such cycles in declared workloads at
// the data level; CallDag rejects them in code, at kind granularity.
//
// Per package, Run records which kinds the package registers (the
// factory's concrete type binds a Go type to a kind string) and which
// kinds each turn synchronously calls (Context.Call/System.Call sites
// whose Ref argument has a statically-constant Type field, directly, via
// a local variable, or via a constructor carrying a RefKindFact). The
// Finish pass unions every package's fact — no import edge is needed
// between the cycle's participants — and three-colors the kind graph;
// any back edge is reported at the call site that closes the cycle.
//
// Limitation, by design: Ref values whose Type field is computed
// dynamically (loadgen's table-driven refs) contribute no edge. Those
// workloads are covered at the data level by spec.Validate's kindCycle.
var CallDag = &Analyzer{
	Name:      "calldag",
	Doc:       "synchronous actor calls must form a DAG at kind level; a kind-level cycle (A's turn calls B, B's calls A) deadlocks both activations on the real runtime",
	Run:       runCallDag,
	FactTypes: []Fact{(*CallDagFact)(nil), (*RefKindFact)(nil)},
	Finish:    finishCallDag,
}

// A KindReg binds a concrete actor type to the kind string it was
// registered under.
type KindReg struct {
	Kind     string
	TypePkg  string
	TypeName string
	Site     Site
}

// A KindEdge is one synchronous call from a turn of FromType into kind
// ToKind.
type KindEdge struct {
	FromPkg  string
	FromType string
	ToKind   string
	Site     Site
}

// CallDagFact is the package fact CallDag exports: every kind
// registration and every constant-kind synchronous call edge the
// package contributes.
type CallDagFact struct {
	Regs  []KindReg
	Edges []KindEdge
}

func (*CallDagFact) AFact() {}

// RefKindFact marks an exported function that returns a Ref whose Type
// field is the same compile-time constant on every return path — a
// typed constructor like RoomRef(id) — so importers resolve the kind of
// calls that go through it.
type RefKindFact struct{ Kind string }

func (*RefKindFact) AFact() {}

func runCallDag(pass *Pass) error {
	decls := packageFuncDecls(pass)
	var fact CallDagFact

	// Kind registrations: System.RegisterType("kind", factory) anywhere
	// in the package, with the factory's concrete type resolved from its
	// return expressions.
	for _, fn := range sortedFuncs(decls) {
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "RegisterType" ||
				recvTypeName(callee) != "System" || !pathHasSegment(funcPkgPath(callee), "actor") {
				return true
			}
			kind, ok := constString(pass.TypesInfo, call.Args[0])
			if !ok {
				return true
			}
			tpkg, tname, ok := factoryConcreteType(pass, decls, call.Args[1])
			if !ok {
				return true
			}
			fact.Regs = append(fact.Regs, KindReg{
				Kind: kind, TypePkg: tpkg, TypeName: tname,
				Site: siteOf(pass.Fset, call.Pos()),
			})
			return true
		})
	}

	// Constant-kind Ref constructors, usable at call sites and exported
	// as RefKindFact for importers.
	refKinds := map[*types.Func]string{}
	for _, fn := range sortedFuncs(decls) {
		if kind, ok := refReturnKind(pass, decls[fn]); ok {
			refKinds[fn] = kind
			pass.ExportObjectFact(fn, &RefKindFact{Kind: kind})
		}
	}

	// Synchronous call edges: BFS each turn method's on-turn subtree
	// (same roots and traversal as turnblock) and resolve the Ref
	// argument of every Context.Call/System.Call reached.
	reach := map[*types.Func]*types.Func{} // fn -> turn root
	var queue []*types.Func
	for _, fn := range sortedFuncs(decls) {
		if isTurnMethod(fn) {
			reach[fn] = fn
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		forEachOnTurnNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, hasBody := decls[callee]; hasBody && reach[callee] == nil && !isTurnMethod(callee) {
				reach[callee] = reach[fn]
				queue = append(queue, callee)
			}
		})
	}
	for _, fn := range sortedFuncs(decls) {
		root, ok := reach[fn]
		if !ok {
			continue
		}
		fromPkg, fromType := recvNamedType(root)
		if fromType == "" {
			continue
		}
		vars := refVarKinds(pass, decls[fn].Body)
		forEachOnTurnNode(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "Call" ||
				!pathHasSegment(funcPkgPath(callee), "actor") {
				return
			}
			if r := recvTypeName(callee); r != "Context" && r != "System" {
				return
			}
			kind, ok := refExprKind(pass, decls, refKinds, vars, call.Args[0])
			if !ok {
				return
			}
			fact.Edges = append(fact.Edges, KindEdge{
				FromPkg: fromPkg, FromType: fromType, ToKind: kind,
				Site: siteOf(pass.Fset, call.Pos()),
			})
		})
	}

	if len(fact.Regs) > 0 || len(fact.Edges) > 0 {
		pass.ExportPackageFact(&fact)
	}
	return nil
}

// finishCallDag unions every package's registrations and edges, lifts
// type-level edges to kind level, and three-colors the kind graph (the
// same walk spec.Validate runs on declared workloads).
func finishCallDag(pass *FinishPass) {
	var regs []KindReg
	var edges []KindEdge
	pass.EachPackageFact(&CallDagFact{}, func(_ string, f Fact) {
		cf := f.(*CallDagFact)
		regs = append(regs, cf.Regs...)
		edges = append(edges, cf.Edges...)
	})
	// A type may be registered under several kinds (tests do); an edge
	// from it departs from each.
	kindsOf := map[string][]string{} // "pkg\x00type" -> kinds
	for _, r := range regs {
		k := r.TypePkg + "\x00" + r.TypeName
		kindsOf[k] = append(kindsOf[k], r.Kind)
	}
	type kindEdge struct {
		to   string
		site Site
	}
	adj := map[string][]kindEdge{}
	kindSet := map[string]bool{}
	for _, r := range regs {
		kindSet[r.Kind] = true
	}
	for _, e := range edges {
		for _, from := range kindsOf[e.FromPkg+"\x00"+e.FromType] {
			adj[from] = append(adj[from], kindEdge{e.ToKind, e.Site})
			kindSet[e.ToKind] = true
		}
	}
	var kinds []string
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		es := adj[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return es[i].to < es[j].to
			}
			if es[i].site.File != es[j].site.File {
				return es[i].site.File < es[j].site.File
			}
			return es[i].site.Line < es[j].site.Line
		})
		adj[k] = es
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var walk func(k string)
	walk = func(k string) {
		color[k] = gray
		stack = append(stack, k)
		for _, e := range adj[k] {
			switch color[e.to] {
			case gray:
				// Back edge: print the cycle from e.to around to k. The
				// walk continues, so every independent cycle is reported.
				i := 0
				for stack[i] != e.to {
					i++
				}
				cycle := ""
				for _, kk := range stack[i:] {
					cycle += kk + " → "
				}
				cycle += e.to
				pass.Reportf(e.site.Position(),
					"synchronous actor call into kind %q closes the kind-level cycle %s; when both directions are in flight each turn holds its activation while awaiting the other and the stage deadlocks — make one direction an async send or restructure so the kind graph is a DAG", e.to, cycle)
			case white:
				walk(e.to)
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = black
	}
	for _, k := range kinds {
		if color[k] == white {
			walk(k)
		}
	}
}

// constString evaluates expr to a compile-time string constant.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// factoryConcreteType resolves the concrete named type a factory
// expression produces: a func literal (or a reference to a local
// function) whose returns are &T{}, T{}, or new(T).
func factoryConcreteType(pass *Pass, decls map[*types.Func]*ast.FuncDecl, expr ast.Expr) (pkg, name string, ok bool) {
	expr = ast.Unparen(expr)
	var body *ast.BlockStmt
	switch e := expr.(type) {
	case *ast.FuncLit:
		body = e.Body
	default:
		if fn := funcValueOf(pass.TypesInfo, expr); fn != nil {
			if fd, has := decls[fn]; has {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return "", "", false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		t := pass.TypesInfo.TypeOf(ret.Results[0])
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n := namedName(t); n != "" {
			pkg, name, ok = namedPkgPath(t), n, true
		}
		return true
	})
	return pkg, name, ok
}

// funcValueOf resolves an identifier or selector used as a function
// value (not a call) to its object.
func funcValueOf(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// refCompositeKind extracts the constant Type field of a Ref composite
// literal.
func refCompositeKind(pass *Pass, expr ast.Expr) (string, bool) {
	cl, ok := ast.Unparen(expr).(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(cl)
	if namedName(t) != "Ref" || !pathHasSegment(namedPkgPath(t), "actor") {
		return "", false
	}
	for i, el := range cl.Elts {
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			if id, isID := kv.Key.(*ast.Ident); isID && id.Name == "Type" {
				return constString(pass.TypesInfo, kv.Value)
			}
			continue
		}
		if i == 0 { // positional: Type is the first field
			return constString(pass.TypesInfo, el)
		}
	}
	return "", false
}

// refVarKinds maps local variables to kinds, for `ref := actor.Ref{Type:
// "x", ...}` followed by ctx.Call(ref, ...). A variable assigned
// conflicting or unresolvable kinds resolves to nothing.
func refVarKinds(pass *Pass, body ast.Node) map[*types.Var]string {
	kinds := map[*types.Var]string{}
	poisoned := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isID := lhs.(*ast.Ident)
			if !isID {
				continue
			}
			v, isVar := pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !isVar || namedName(v.Type()) != "Ref" || !pathHasSegment(namedPkgPath(v.Type()), "actor") {
				continue
			}
			kind, resolved := refCompositeKind(pass, as.Rhs[i])
			if !resolved {
				poisoned[v] = true
				continue
			}
			if prev, seen := kinds[v]; seen && prev != kind {
				poisoned[v] = true
				continue
			}
			kinds[v] = kind
		}
		return true
	})
	for v := range poisoned {
		delete(kinds, v)
	}
	return kinds
}

// refExprKind resolves the kind of a Ref-typed call argument: an inline
// composite, a single-kind local variable, or a constructor call whose
// function carries a (local or imported) constant return kind.
func refExprKind(pass *Pass, decls map[*types.Func]*ast.FuncDecl, refKinds map[*types.Func]string, vars map[*types.Var]string, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	if kind, ok := refCompositeKind(pass, expr); ok {
		return kind, true
	}
	if id, ok := expr.(*ast.Ident); ok {
		if v, isVar := pass.TypesInfo.ObjectOf(id).(*types.Var); isVar {
			if kind, seen := vars[v]; seen {
				return kind, true
			}
		}
		return "", false
	}
	if call, ok := expr.(*ast.CallExpr); ok {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return "", false
		}
		if kind, local := refKinds[fn]; local {
			return kind, true
		}
		var rf RefKindFact
		if pass.ImportObjectFact(fn, &rf) {
			return rf.Kind, true
		}
	}
	return "", false
}

// refReturnKind reports the single constant kind every return path of
// fd yields, if fd returns exactly one actor Ref.
func refReturnKind(pass *Pass, fd *ast.FuncDecl) (string, bool) {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return "", false
	}
	rt := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type)
	if namedName(rt) != "Ref" || !pathHasSegment(namedPkgPath(rt), "actor") {
		return "", false
	}
	kind, agree := "", true
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		k, resolved := refCompositeKind(pass, ret.Results[0])
		if !resolved {
			agree = false
			return true
		}
		if found && k != kind {
			agree = false
			return true
		}
		kind, found = k, true
		return true
	})
	return kind, found && agree
}

// recvNamedType names a method's receiver type and its package.
func recvNamedType(fn *types.Func) (pkg, name string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	return namedPkgPath(t), namedName(t)
}
