package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed, type-checked unit of analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Src maps filename to source bytes; the suppression scanner needs
	// raw text to tell own-line directives from trailing ones.
	Src map[string][]byte
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// A loader resolves imports three ways, in order: fixture directories
// under srcRoot (linttest mode), already-checked packages, and compiler
// export data located via `go list -export`. Only the standard library
// and the host module are ever consulted — the suite adds no
// dependencies.
//
// The loader is safe for concurrent checkDir calls on distinct target
// packages (the parallel program runner): the shared maps are guarded
// by mu, the gc export-data importer (which keeps an internal package
// cache) is serialized by impMu, and token.FileSet is thread-safe by
// itself. The re-entrant path — a fixture import triggering a nested
// checkDir from inside types.Config.Check — only exists in linttest
// mode, which runs sequentially.
type loader struct {
	fset      *token.FileSet
	moduleDir string // where go list runs
	srcRoot   string // fixture root ("" outside linttest)
	mu        sync.Mutex
	exports   map[string]string // import path -> export data file
	checked   map[string]*Package
	impMu     sync.Mutex
	gcImp     types.Importer
	listed    map[string]bool // import paths already asked of go list
}

func newLoader(moduleDir, srcRoot string) *loader {
	l := &loader{
		fset:      token.NewFileSet(),
		moduleDir: moduleDir,
		srcRoot:   srcRoot,
		exports:   map[string]string{},
		checked:   map[string]*Package{},
		listed:    map[string]bool{},
	}
	l.gcImp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		l.mu.Lock()
		f, ok := l.exports[path]
		l.mu.Unlock()
		if !ok {
			// Lazy path: a fixture imported something go list has not
			// described yet (linttest mode only).
			if _, err := l.goList(true, path); err != nil {
				return nil, err
			}
			l.mu.Lock()
			f, ok = l.exports[path]
			l.mu.Unlock()
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
		}
		return os.Open(f)
	})
	return l
}

// goList runs `go list -e -deps -json` over patterns and returns every
// listed package — targets and dependencies alike; callers filter. With
// export true it adds -export, which makes go list build/locate compiler
// export data for every dependency (markedly slower) and records each
// export-data file for the importer. A fully-warm cached run never needs
// export data, so RunProgram lists without it first and only re-lists
// with export once a package actually has to be type-checked. Repeat
// calls with identical arguments are memoized to nil.
func (l *loader) goList(export bool, patterns ...string) ([]listPkg, error) {
	key := fmt.Sprintf("%v\x00%s", export, strings.Join(patterns, "\x00"))
	l.mu.Lock()
	seen := l.listed[key]
	l.listed[key] = true
	l.mu.Unlock()
	if seen {
		return nil, nil
	}
	args := []string{"list", "-e"}
	if export {
		args = append(args, "-export")
	}
	args = append(args, "-deps", "-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.mu.Lock()
			l.exports[p.ImportPath] = p.Export
			l.mu.Unlock()
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importFor is the types.Importer handed to the checker: fixtures first,
// then export data.
type importFor struct{ l *loader }

func (c importFor) Import(path string) (*types.Package, error) {
	c.l.mu.Lock()
	pkg, ok := c.l.checked[path]
	c.l.mu.Unlock()
	if ok {
		return pkg.Types, nil
	}
	if c.l.srcRoot != "" {
		dir := filepath.Join(c.l.srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, err := c.l.checkDir(path, dir, nil)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	c.l.impMu.Lock()
	defer c.l.impMu.Unlock()
	return c.l.gcImp.Import(path)
}

// checkDir parses and type-checks one directory as the package at
// importPath. files, when non-nil, names the exact files to load
// (go list mode); otherwise every .go file in dir except tests is taken
// (fixture mode).
func (l *loader) checkDir(importPath, dir string, files []string) (*Package, error) {
	l.mu.Lock()
	pkg, ok := l.checked[importPath]
	l.mu.Unlock()
	if ok {
		return pkg, nil
	}
	if files == nil {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: reading fixture dir %s: %v", dir, err)
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				files = append(files, name)
			}
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: package %s (%s) has no Go files", importPath, dir)
	}
	pkg = &Package{Path: importPath, Fset: l.fset, Src: map[string][]byte{}}
	for _, name := range files {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Src[full] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importFor{l}}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	l.mu.Lock()
	l.checked[importPath] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// LoadPackages loads and type-checks the non-test Go files of every
// module package matched by patterns (e.g. "./..."), resolving imports
// through compiler export data so no package is checked twice. moduleDir
// is the directory go list runs in.
func LoadPackages(moduleDir string, patterns []string) ([]*Package, error) {
	l := newLoader(moduleDir, "")
	listed, err := l.goList(true, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	var errs []string
	for _, t := range listed {
		if t.Standard || t.DepOnly {
			continue
		}
		if t.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", t.ImportPath, t.Error.Err))
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := l.checkDir(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: load failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return pkgs, nil
}

// LoadFixture loads the fixture package at srcRoot/<path> (analysistest
// layout: testdata/src/<importpath>/*.go). Imports resolve first against
// sibling fixture directories under srcRoot, then against real packages
// via export data — so fixtures may import actual actop packages such as
// actop/internal/metrics. moduleDir anchors the go list runs.
func LoadFixture(moduleDir, srcRoot, path string) (*Package, error) {
	l := newLoader(moduleDir, srcRoot)
	dir := filepath.Join(srcRoot, filepath.FromSlash(path))
	return l.checkDir(path, dir, nil)
}

// LoadFixturePackages loads several fixture packages into one shared
// loader — the multi-package twin of LoadFixture, used to test that
// facts flow across import edges. Paths must be listed dependencies
// first (a fixture importing a listed sibling also works in any order:
// the import resolves through the shared loader either way, but facts
// only flow dependency-before-dependent). The returned slice follows
// the input order.
func LoadFixturePackages(moduleDir, srcRoot string, paths []string) ([]*Package, error) {
	l := newLoader(moduleDir, srcRoot)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		pkg, err := l.checkDir(path, dir, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
