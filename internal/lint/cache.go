package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
)

// The analysis cache makes warm `make lint` runs cheap: each package's
// raw findings, suppression directives, and exported facts persist on
// disk under a key that changes exactly when re-analysis could change
// them. The key folds in:
//
//   - a suite fingerprint: cache schema version, Go toolchain version,
//     the analyzer set (names, docs, fact types), and a content hash of
//     the running executable — so rebuilding actop-lint with different
//     analyzer code invalidates everything;
//   - the package's import path and the bytes of its Go files;
//   - for each non-stdlib dependency, that dependency's own cache key —
//     transitive by construction, because a dep's body-only change can
//     alter its exported facts without altering its export data;
//   - for each stdlib dependency, only the import path: the stdlib's
//     interface is pinned by the toolchain version already in the suite
//     fingerprint, which lets a fully-warm run skip `go list -export`
//     (locating export data is most of a warm run's wall time).
//
// Suppression is deliberately NOT cached: raw findings are stored
// pre-suppression and directives re-apply globally every run, because
// stale-directive detection and Finish findings are program-level.

const cacheSchema = "actop-lint-cache-v2"

type savedFact struct {
	Obj  string // objKey, or "" for a package fact
	Type string // fact struct name (unique across the suite)
	Data []byte // gob of the fact struct
}

// savedDirective mirrors directive with exported fields for gob.
type savedDirective struct {
	Name    string
	Reason  string
	File    string
	Line    int
	OwnLine bool
	Bad     bool
	BadMsg  string
}

type cacheFile struct {
	Key      string
	Findings []Finding
	Dirs     []savedDirective
	Facts    []savedFact
}

// cacheEntry is a decoded, key-verified cache file.
type cacheEntry struct {
	findings   []Finding
	directives []directive
	facts      []savedFact
	registry   map[string]reflect.Type
}

type analysisCache struct {
	dir      string
	keys     map[string]string // import path -> computed key
	registry map[string]reflect.Type
}

// newAnalysisCache computes a key for every non-stdlib listed package up
// front — go list -deps emits dependencies before dependents, so each
// package's dependency keys resolve transitively — and ensures the cache
// directory exists. listed must be the full -deps listing (targets and
// dependencies), not just the targets, so module-internal dep-only
// packages still ripple their changes upward.
func newAnalysisCache(dir string, analyzers []*Analyzer, listed []listPkg) (*analysisCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: cache dir: %v", err)
	}
	c := &analysisCache{
		dir:      dir,
		keys:     make(map[string]string, len(listed)),
		registry: factRegistry(analyzers),
	}
	suite := suiteFingerprint(analyzers)
	for _, t := range listed {
		if t.Standard {
			continue
		}
		h := sha256.New()
		io.WriteString(h, suite)
		io.WriteString(h, "\x00pkg\x00"+t.ImportPath)
		for _, name := range t.GoFiles {
			src, err := os.ReadFile(filepath.Join(t.Dir, name))
			if err != nil {
				return nil, fmt.Errorf("lint: cache key for %s: %v", t.ImportPath, err)
			}
			io.WriteString(h, "\x00file\x00"+name+"\x00")
			h.Write(src)
		}
		imps := append([]string(nil), t.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if key, ok := c.keys[imp]; ok {
				// Non-stdlib dep: its own key, already computed
				// (dependency order). Transitive: a change anywhere
				// below ripples up.
				io.WriteString(h, "\x00dep\x00"+imp+"\x00"+key)
			} else {
				// Stdlib: the interface is fixed by the toolchain
				// version in the suite fingerprint.
				io.WriteString(h, "\x00std\x00"+imp)
			}
		}
		c.keys[t.ImportPath] = hex.EncodeToString(h.Sum(nil))
	}
	return c, nil
}

// factRegistry maps fact struct names to their pointer types for
// deserialization.
func factRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	m := map[string]reflect.Type{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := factType(f)
			m[t.Elem().Name()] = t
		}
	}
	return m
}

// suiteFingerprint pins everything about the checker itself.
func suiteFingerprint(analyzers []*Analyzer) string {
	h := sha256.New()
	io.WriteString(h, cacheSchema+"\x00"+runtime.Version())
	for _, a := range analyzers {
		io.WriteString(h, "\x00a\x00"+a.Name+"\x00"+a.Doc)
		for _, f := range a.FactTypes {
			io.WriteString(h, "\x00f\x00"+factType(f).Elem().Name())
		}
	}
	io.WriteString(h, "\x00exe\x00"+executableHash())
	return hex.EncodeToString(h.Sum(nil))
}

// executableHash memoizes a content hash of the running binary, so a
// rebuilt actop-lint (changed analyzer logic, same docs) never reuses
// stale entries. Content (not mtime) keeps `go build` no-op rebuilds
// warm.
var executableHashOnce struct {
	sync.Once
	v string
}

func executableHash() string {
	executableHashOnce.Do(func() {
		executableHashOnce.v = "unknown"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		executableHashOnce.v = hex.EncodeToString(h.Sum(nil))
	})
	return executableHashOnce.v
}

func (c *analysisCache) filename(path string) string {
	sum := sha256.Sum256([]byte(path))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".gob")
}

// load returns the verified cache entry for path, or ok=false on any
// miss, decode error, or key mismatch (a corrupt file is just a miss).
func (c *analysisCache) load(path string) (*cacheEntry, bool) {
	data, err := os.ReadFile(c.filename(path))
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cf); err != nil {
		return nil, false
	}
	if cf.Key != c.keys[path] {
		return nil, false
	}
	e := &cacheEntry{
		findings: cf.Findings,
		facts:    cf.Facts,
		registry: c.registry,
	}
	for _, sd := range cf.Dirs {
		e.directives = append(e.directives, directive{
			name: sd.Name, reason: sd.Reason, file: sd.File,
			line: sd.Line, ownLine: sd.OwnLine, bad: sd.Bad, badMsg: sd.BadMsg,
		})
	}
	return e, true
}

// install replays the entry's facts into the program's fact store.
func (e *cacheEntry) install(prog *Program, path string) {
	for _, sf := range e.facts {
		t, ok := e.registry[sf.Type]
		if !ok {
			continue
		}
		f := reflect.New(t.Elem()).Interface().(Fact)
		if err := gob.NewDecoder(bytes.NewReader(sf.Data)).Decode(f); err != nil {
			continue
		}
		if sf.Obj == "" {
			prog.setPkgFact(path, f)
		} else {
			prog.setObjFact(path, sf.Obj, f)
		}
	}
}

// store persists one package's raw findings, directives, and facts.
// Failures are silent: the cache is an accelerator, never a correctness
// dependency.
func (c *analysisCache) store(path string, prog *Program, findings []Finding, dirs []directive) {
	cf := cacheFile{Key: c.keys[path], Findings: findings}
	for _, d := range dirs {
		cf.Dirs = append(cf.Dirs, savedDirective{
			Name: d.name, Reason: d.reason, File: d.file,
			Line: d.line, OwnLine: d.ownLine, Bad: d.bad, BadMsg: d.badMsg,
		})
	}
	objs, pkgFacts := prog.factsOfPackage(path)
	for _, of := range objs {
		if data, ok := encodeFact(of.Fact); ok {
			cf.Facts = append(cf.Facts, savedFact{Obj: of.Obj, Type: factType(of.Fact).Elem().Name(), Data: data})
		}
	}
	for _, f := range pkgFacts {
		if data, ok := encodeFact(f); ok {
			cf.Facts = append(cf.Facts, savedFact{Type: factType(f).Elem().Name(), Data: data})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cf); err != nil {
		return
	}
	tmp := c.filename(path) + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return
	}
	os.Rename(tmp, c.filename(path))
}

func encodeFact(f Fact) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}
