package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDet enforces determinism in the simulation packages: the DES is
// what regenerates the paper's figures, so a given seed must replay the
// exact same event sequence forever. Three things silently break that —
// wall-clock reads (the DES has its own virtual clock), the process-
// global math/rand source (seeded once per process, shared across
// everything), and Go's randomized map iteration order feeding
// order-sensitive computation. All three are invisible to vet and
// staticcheck because they are perfectly legal Go.
var SimDet = &Analyzer{
	Name: "simdet",
	Doc:  "forbid wall-clock reads, global randomness, and order-sensitive map iteration in the deterministic simulation packages",
	Match: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, "des") ||
			pathHasSegment(pkgPath, "sim") ||
			pathHasSegment(pkgPath, "workload")
	},
	Run: runSimDet,
}

// wallClockFuncs are the time package entry points that read the host
// clock (directly or by arming a runtime timer). Duration arithmetic and
// constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the math/rand package-level constructors that take
// an explicit source or seed — the only package-level entry points the
// simulation may touch. Everything else drains the global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the module ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func runSimDet(pass *Pass) error {
	for _, f := range pass.Files {
		// Wall-clock and global-rand calls are forbidden anywhere,
		// including package-level initializers.
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkSimDetCall(pass, call)
			}
			return true
		})
		// Map-range checking is per function so the canonical fix —
		// collect keys, sort, iterate — recognizes its own sort call.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedSliceVars(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkSimDetRange(pass, rng, sorted)
				}
				return true
			})
		}
	}
	return nil
}

// sortedSliceVars collects locals that the function passes to a sort
// routine: appending map keys into such a slice is the sanctioned
// deterministic-iteration idiom.
func sortedSliceVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || recvTypeName(fn) != "" || len(call.Args) == 0 {
			return true
		}
		isSort := funcPkgPath(fn) == "sort" ||
			(funcPkgPath(fn) == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

func checkSimDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || recvTypeName(fn) != "" {
		return // methods (e.g. a seeded *rand.Rand) are fine
	}
	switch funcPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation code must use the DES virtual clock so runs replay deterministically", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; use a per-simulation *rand.Rand seeded from the config (des.NewRand)", fn.Name())
		}
	}
}

func checkSimDetRange(pass *Pass, rng *ast.RangeStmt, sorted map[*types.Var]bool) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBlock(pass, rng.Body, sorted) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized and this loop body is order-sensitive; iterate over sorted keys (or restructure into commutative updates)")
}

// orderInsensitiveBlock reports whether every statement in the block
// commutes across iteration order: map writes, deletes, integer
// add/sub/count accumulation, constant stores, and control flow composed
// of the same. Anything else — appends, float accumulation, calls,
// channel ops — is treated as order-sensitive.
func orderInsensitiveBlock(pass *Pass, b *ast.BlockStmt, sorted map[*types.Var]bool) bool {
	for _, s := range b.List {
		if !orderInsensitiveStmt(pass, s, sorted) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt, sorted map[*types.Var]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s, sorted)
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k) is commutative; any other call may not be.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isFn := pass.TypesInfo.Uses[id].(*types.Builtin); isFn {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(pass, s.Init, sorted) {
			return false
		}
		if !orderInsensitiveBlock(pass, s.Body, sorted) {
			return false
		}
		if s.Else != nil {
			return orderInsensitiveStmt(pass, s.Else, sorted)
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBlock(pass, s, sorted)
	case *ast.BranchStmt:
		return s.Label == nil // continue/break commute; goto is opaque
	case *ast.DeclStmt:
		return true // declarations introduce iteration-local state
	}
	return false
}

func orderInsensitiveAssign(pass *Pass, a *ast.AssignStmt, sorted map[*types.Var]bool) bool {
	switch a.Tok.String() {
	case "+=", "-=", "|=", "&=", "^=":
		// Commutative only over integers: float addition rounds
		// differently depending on order.
		for _, lhs := range a.Lhs {
			if !isIntegerExpr(pass, lhs) {
				return false
			}
		}
		return true
	case "=", ":=":
		for i, lhs := range a.Lhs {
			// keys = append(keys, k) is fine when keys is sorted before
			// use — the canonical deterministic-iteration idiom.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && i < len(a.Rhs) {
				if v := assignedVar(pass, id); v != nil && sorted[v] && isAppendTo(pass, a.Rhs[i], v) {
					continue
				}
			}
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				// m2[k] = v: per-key stores commute across distinct keys.
				if tv, ok := pass.TypesInfo.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						continue
					}
				}
				return false
			}
			// Constant stores (found = true) are idempotent; anything
			// else (x = v, s = append(s, v)) depends on visit order.
			if i < len(a.Rhs) {
				if tv, ok := pass.TypesInfo.Types[a.Rhs[i]]; ok && tv.Value != nil {
					continue
				}
			}
			return false
		}
		return true
	}
	return false
}

// assignedVar resolves an assignment LHS identifier to its object,
// whether the statement defines (:=) or updates (=) it.
func assignedVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// isAppendTo reports whether e is append(v, ...).
func isAppendTo(pass *Pass, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	av, _ := pass.TypesInfo.Uses[arg].(*types.Var)
	return av == v
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
