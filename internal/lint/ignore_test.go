package lint_test

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"actop/internal/lint"
	"actop/internal/lint/linttest"
)

// TestIgnoreScoping runs simdet over a fixture whose findings are
// variously suppressed: an own-line directive must cover exactly the
// next line, an inline directive exactly its own line, and a directive
// naming a different analyzer (or sitting too far away) must leave the
// finding live. The fixture's want comments encode all four cases.
func TestIgnoreScoping(t *testing.T) {
	linttest.Run(t, "ignoredemo/des", lint.SimDet)
}

// TestIgnoreMalformed checks that broken directives are themselves
// diagnostics: unknown analyzer names, missing reasons, and attempts to
// name the directive pseudo-analyzer all surface as "actoplint"
// findings anchored on the directive's line — which is why this test
// asserts programmatically instead of with want comments.
func TestIgnoreMalformed(t *testing.T) {
	pkg := loadFixturePkg(t, "ignoredemo/bad")
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		`names unknown analyzer "nosuchanalyzer"`,
		`actoplint:ignore simdet needs a reason`,
		`needs an analyzer name and a reason`,
		`names unknown analyzer "actoplint"`,
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wantSubstrings), findings)
	}
	for i, want := range wantSubstrings {
		if findings[i].Analyzer != lint.DirectiveAnalyzer {
			t.Errorf("finding %d: analyzer = %q, want %q", i, findings[i].Analyzer, lint.DirectiveAnalyzer)
		}
		if !strings.Contains(findings[i].Message, want) {
			t.Errorf("finding %d: message %q does not contain %q", i, findings[i].Message, want)
		}
	}
}

// TestIgnoreSilencesOnlyNamedAnalyzer pins the "and nothing else"
// half of the contract at the API level: with two analyzers producing
// findings on one line, a directive naming one must leave the other's
// finding standing. The shared fixture line is crafted so both simdet
// (time.Now in a /des path) and the directive scoping are in play.
func TestIgnoreSilencesOnlyNamedAnalyzer(t *testing.T) {
	pkg := loadFixturePkg(t, "ignoredemo/des")
	findings, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.SimDet})
	if err != nil {
		t.Fatal(err)
	}
	// The fixture carries 4 time.Now calls; 2 are suppressed by valid
	// simdet directives, 2 survive (wrong analyzer name, out of range).
	var survivors int
	for _, f := range findings {
		if f.Analyzer == lint.SimDet.Name {
			survivors++
		}
	}
	if survivors != 2 {
		t.Fatalf("got %d surviving simdet findings, want 2:\n%v", survivors, findings)
	}
}

func loadFixturePkg(t *testing.T, path string) *lint.Package {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	dir := filepath.Dir(thisFile)
	pkg, err := lint.LoadFixture(moduleRootFrom(dir), filepath.Join(dir, "testdata", "src"), path)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func moduleRootFrom(dir string) string {
	// internal/lint -> module root is two levels up.
	return filepath.Dir(filepath.Dir(dir))
}
