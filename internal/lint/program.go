package lint

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options tunes a whole-program run.
type Options struct {
	// CacheDir, when non-empty, enables the per-package analysis cache:
	// a package whose key (suite fingerprint + its sources + the keys
	// of its module dependencies + the export data of its stdlib
	// dependencies) is unchanged skips parsing, type-checking, and
	// analysis entirely — its raw findings, directives, and facts are
	// restored from disk.
	CacheDir string

	// Jobs caps how many packages analyze concurrently. <= 0 means
	// GOMAXPROCS. Dependencies still complete before dependents start,
	// so facts always flow in order.
	Jobs int
}

// Stats reports what one run did — the CLI's -time output.
type Stats struct {
	Packages  int // target packages analyzed (or restored)
	CacheHits int // restored from the cache
	Loaded    int // parsed + type-checked this run
	Total     time.Duration

	// AnalyzerTime accumulates wall time per analyzer across all
	// packages (concurrent package runs sum, so this can exceed Total).
	AnalyzerTime map[string]time.Duration
}

// timings is the mutex-guarded accumulator behind Stats.AnalyzerTime.
type timings struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

func (t *timings) add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.m[name] += d
	t.mu.Unlock()
}

// RunProgram loads every module package matched by patterns, analyzes
// them in dependency order (independent packages in parallel), runs the
// Finish passes over the complete fact store, and resolves suppression
// directives globally — including reporting stale directives that no
// longer suppress anything.
func RunProgram(moduleDir string, patterns []string, analyzers []*Analyzer, opts Options) ([]Finding, *Stats, error) {
	start := time.Now()
	stats := &Stats{AnalyzerTime: map[string]time.Duration{}}
	tm := &timings{m: map[string]time.Duration{}}

	// First listing runs without -export: cache keys need only sources
	// and the import graph, and a fully-warm run never type-checks, so
	// making go list build/locate export data up front would put its
	// cost on every run instead of only cold ones.
	l := newLoader(moduleDir, "")
	listed, err := l.goList(false, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var targets []listPkg
	var errs []string
	for _, t := range listed {
		if t.Standard || t.DepOnly {
			continue
		}
		if t.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", t.ImportPath, t.Error.Err))
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		targets = append(targets, t)
	}
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: load failed:\n  %s", strings.Join(errs, "\n  "))
	}
	stats.Packages = len(targets)

	paths := make([]string, len(targets))
	for i, t := range targets {
		paths[i] = t.ImportPath
	}
	prog := newProgram(paths)

	// Probe the cache before scheduling; any miss means type-checking,
	// which needs dependency export data, so only then re-list with
	// -export. entries is read-only once the workers start.
	entries := map[string]*cacheEntry{}
	var cache *analysisCache
	if opts.CacheDir != "" {
		cache, err = newAnalysisCache(opts.CacheDir, analyzers, listed)
		if err != nil {
			return nil, nil, err
		}
		for _, t := range targets {
			if e, ok := cache.load(t.ImportPath); ok {
				entries[t.ImportPath] = e
			}
		}
	}
	if len(entries) < len(targets) {
		if _, err := l.goList(true, patterns...); err != nil {
			return nil, nil, err
		}
	}

	known := knownNames(analyzers)
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	// Per-package results, written once each under resMu.
	type pkgResult struct {
		raw  []Finding
		dirs []directive
		err  error
		hit  bool
	}
	results := make(map[string]*pkgResult, len(targets))
	var resMu sync.Mutex

	// Dependency-triggered scheduling: each package waits for its
	// module dependencies (go list -deps emits dependencies first, so
	// ranging over targets in order spawns waiters before their
	// dependents ever complete), then takes a concurrency slot. Facts
	// are therefore always complete before an importer reads them.
	done := make(map[string]chan struct{}, len(targets))
	for _, t := range targets {
		done[t.ImportPath] = make(chan struct{})
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for _, t := range targets {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[t.ImportPath])
			for _, imp := range t.Imports {
				if ch, ok := done[imp]; ok {
					<-ch
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()

			res := &pkgResult{}
			defer func() {
				resMu.Lock()
				results[t.ImportPath] = res
				resMu.Unlock()
			}()

			if entry, ok := entries[t.ImportPath]; ok {
				res.raw = entry.findings
				res.dirs = entry.directives
				entry.install(prog, t.ImportPath)
				res.hit = true
				return
			}
			pkg, err := l.checkDir(t.ImportPath, t.Dir, t.GoFiles)
			if err != nil {
				res.err = err
				return
			}
			raw, err := analyzePackage(prog, pkg, analyzers, tm)
			if err != nil {
				res.err = err
				return
			}
			res.raw = raw
			res.dirs = scanDirectives(pkg, known)
			if cache != nil {
				cache.store(t.ImportPath, prog, res.raw, res.dirs)
			}
		}()
	}
	wg.Wait()

	var all []Finding
	var dirs []directive
	for _, t := range targets {
		res := results[t.ImportPath]
		if res == nil {
			continue
		}
		if res.err != nil {
			errs = append(errs, res.err.Error())
			continue
		}
		if res.hit {
			stats.CacheHits++
		} else {
			stats.Loaded++
		}
		all = append(all, res.raw...)
		dirs = append(dirs, res.dirs...)
	}
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: load failed:\n  %s", strings.Join(errs, "\n  "))
	}

	all = append(all, runFinish(prog, analyzers, tm)...)

	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	findings := resolveDirectives(all, dirs, running, true)
	sortFindings(findings)
	stats.Total = time.Since(start)
	for k, v := range tm.m {
		stats.AnalyzerTime[k] = v
	}
	return findings, stats, nil
}

// knownNames is the directive namespace for a run: the full suite plus
// whatever analyzers were passed (fixture runs of one analyzer still
// accept directives naming the others).
func knownNames(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// analyzePackage applies every matching analyzer to one loaded package,
// returning raw (pre-suppression) findings. Facts land in prog.
func analyzePackage(prog *Program, pkg *Package, analyzers []*Analyzer, tm *timings) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			prog:      prog,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			raw = append(raw, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		t0 := time.Now()
		err := a.Run(pass)
		tm.add(name, time.Since(t0))
		if err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return raw, nil
}

// runFinish runs every analyzer's Finish pass over the complete fact
// store, in suite order.
func runFinish(prog *Program, analyzers []*Analyzer, tm *timings) []Finding {
	var out []Finding
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fp := &FinishPass{
			Analyzer: a,
			prog:     prog,
			report:   func(f Finding) { out = append(out, f) },
		}
		t0 := time.Now()
		a.Finish(fp)
		tm.add(a.Name, time.Since(t0))
	}
	return out
}

// RunPackages analyzes pre-loaded packages in the order given
// (dependencies first), flowing facts between them and running Finish
// passes — the in-memory twin of RunProgram, used by linttest and the
// single-package fixture path. Stale-directive detection is off here:
// fixtures deliberately carry inert directives to pin scoping rules.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := knownNames(analyzers)
	paths := make([]string, len(pkgs))
	for i, p := range pkgs {
		paths[i] = p.Path
	}
	prog := newProgram(paths)
	tm := &timings{m: map[string]time.Duration{}}
	var all []Finding
	var dirs []directive
	for _, pkg := range pkgs {
		raw, err := analyzePackage(prog, pkg, analyzers, tm)
		if err != nil {
			return nil, err
		}
		all = append(all, raw...)
		dirs = append(dirs, scanDirectives(pkg, known)...)
	}
	all = append(all, runFinish(prog, analyzers, tm)...)
	findings := resolveDirectives(all, dirs, nil, false)
	sortFindings(findings)
	return findings, nil
}

// sortedPaths returns prog's target paths in sorted order (used by
// Finish passes that need deterministic iteration).
func (prog *Program) sortedPaths() []string {
	prog.mu.Lock()
	out := make([]string, 0, len(prog.targets))
	for p := range prog.targets {
		out = append(out, p)
	}
	prog.mu.Unlock()
	sort.Strings(out)
	return out
}
