package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak flags goroutines the runtime cannot shut down: a `go` statement
// whose function runs an unconditional `for` loop with no reference to
// any shutdown gate (a done/close channel, a stop flag, a context). The
// transport's early accept/read loops leaked exactly this way (PR 3):
// Stop returned, the test passed, and the next test inherited a goroutine
// still writing to a closed connection. The spawned function often lives
// in another package — a cmd wrapper `go`-ing a helper from an internal
// package — so functions containing ungated infinite loops export an
// UngatedFact and the spawn site consumes it.
//
// The gate heuristic is deliberately name-based: any channel receive or
// identifier mentioning done/stop/quit/clos/cancel/shutdown/exit/ctx in
// the loop's function counts as gating. That trades missed leaks for
// near-zero false positives; the chaos battery remains the backstop for
// the cunning ones.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "a goroutine spawned in actor/transport code must gate its loop on a shutdown signal; an ungated infinite loop outlives Stop and leaks (the PR 3 transport-loop class)",
	Match: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, "actor") || pathHasSegment(pkgPath, "transport")
	},
	Run:       runGoLeak,
	FactTypes: []Fact{(*UngatedFact)(nil)},
}

// UngatedFact marks an exported function whose body runs an infinite
// loop with no shutdown gate — spawning it as a goroutine leaks it.
type UngatedFact struct{ Why string }

func (*UngatedFact) AFact() {}

func runGoLeak(pass *Pass) error {
	decls := packageFuncDecls(pass)
	// Export: an exported function that is itself an ungated loop leaks
	// whenever anyone (any package) go's it.
	for _, fn := range sortedFuncs(decls) {
		if why, ok := ungatedLoop(pass, decls[fn].Body); ok {
			pass.ExportObjectFact(fn, &UngatedFact{
				Why: why + " (" + shortPos(pass.Fset, decls[fn].Body.Pos()) + ")",
			})
		}
	}
	// Report at spawn sites.
	for _, fn := range sortedFuncs(decls) {
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if why, ok := spawnLeaks(pass, decls, g.Call, 0); ok {
				pass.Reportf(g.Pos(),
					"goroutine %s; Stop cannot terminate it and it outlives the owner (the PR 3 transport-loop class) — gate each iteration on a done/close channel or context", why)
			}
			return true
		})
	}
	return nil
}

// spawnLeaks judges the function a go statement runs: a func literal
// (checking its body, and one hop into local functions it calls), a
// local named function, or an imported one carrying an UngatedFact.
func spawnLeaks(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, depth int) (string, bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if why, ok := ungatedLoop(pass, lit.Body); ok {
			return "runs an infinite loop with no shutdown gate: " + why, true
		}
		if depth == 0 {
			// One hop: the idiomatic `go func() { defer wg.Done(); s.loop() }()`.
			var why string
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(lit) {
					return false
				}
				inner, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if w, leaks := namedCalleeLeaks(pass, decls, inner, depth+1); leaks {
					why, found = w, true
				}
				return true
			})
			if found {
				return why, true
			}
		}
		return "", false
	}
	return namedCalleeLeaks(pass, decls, call, depth)
}

// namedCalleeLeaks resolves a call's named callee and judges its body
// (local) or its UngatedFact (imported).
func namedCalleeLeaks(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, depth int) (string, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if fd, ok := decls[fn]; ok {
		if why, ok := ungatedLoop(pass, fd.Body); ok {
			return "calls " + funcDisplay(fn) + ", which runs an infinite loop with no shutdown gate: " + why, true
		}
		return "", false
	}
	var uf UngatedFact
	if fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &uf) {
		return "calls " + lastSegment(funcPkgPath(fn)) + "." + funcDisplay(fn) + ", which runs an infinite loop with no shutdown gate: " + uf.Why, true
	}
	return "", false
}

// ungatedLoop reports whether body directly contains an unconditional
// `for` loop (Cond == nil, outside nested func literals and go bodies)
// while the body as a whole references no shutdown gate. Ranging over a
// channel is never flagged — it terminates when the channel closes.
func ungatedLoop(pass *Pass, body *ast.BlockStmt) (string, bool) {
	var loop *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				loop = n
				return false
			}
		}
		return true
	})
	if loop == nil {
		return "", false
	}
	if hasShutdownGate(pass, body) {
		return "", false
	}
	return "`for` loop at " + shortPos(pass.Fset, loop.Pos()) + " has no done/stop/close/cancel reference", true
}

// gateWords are the identifier fragments that signal a shutdown gate.
var gateWords = []string{"done", "stop", "quit", "clos", "cancel", "shutdown", "exit", "ctx"}

// hasShutdownGate scans a function body for any plausible shutdown
// reference: a channel receive from a gate-named channel, or a
// gate-named identifier in value position. Names in call position are
// excluded — `wg.Done()` announces completion, it does not cause it.
func hasShutdownGate(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && gateName(exprText(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			// Skip the callee name itself; arguments still count.
			for _, a := range n.Args {
				ast.Inspect(a, walk)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk) // receiver is a value
			}
			return false
		case *ast.Ident:
			if gateName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if gateName(n.Sel.Name) {
				found = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

func gateName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range gateWords {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// exprText renders a small expression for name matching.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun)
	}
	return ""
}
