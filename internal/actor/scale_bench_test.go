package actor

import (
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actop/internal/transport"
)

// Scale microbenchmarks for the sharded state plane: parallel routing
// lookups, parallel activation, and location-cache churn are the operations
// that the coarse System.mu serialized at high core counts. Run with
// -cpu N (N > 1) to expose lock contention; allocs/op tracks the
// per-activation footprint work.

func newScaleBenchSystem(tb testing.TB) *System {
	tb.Helper()
	net := transport.NewNetwork(0)
	sys, err := NewSystem(Config{
		Transport:            net.Join("bench-node"),
		Seed:                 1,
		Workers:              4,
		QueueCap:             1 << 16,
		DisableThreadControl: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sys.RegisterType("cell", func() Actor { return &benchCell{} })
	tb.Cleanup(sys.Stop)
	return sys
}

// benchCell is a minimal actor for activation benchmarks.
type benchCell struct{ n int64 }

func (c *benchCell) Receive(_ *Context, method string, _ []byte) ([]byte, error) {
	c.n++
	return nil, nil
}

// benchRefs pre-builds refs so key formatting stays out of the measured
// loop.
func benchRefs(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{Type: "cell", Key: strconv.Itoa(i)}
	}
	return refs
}

// BenchmarkSystemLookupParallel measures concurrent hot-path routing
// resolution (locate: local activation, then location cache) over a
// populated node — the operation every call performs before dispatch.
func BenchmarkSystemLookupParallel(b *testing.B) {
	sys := newScaleBenchSystem(b)
	const population = 16384
	refs := benchRefs(population)
	deadline := time.Now().Add(time.Hour)
	for _, ref := range refs {
		if _, err := sys.activationFor(ref, true, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(time.Now().UnixNano())))
		for pb.Next() {
			ref := refs[rng.Intn(population)]
			if _, err := sys.locate(ref, true, deadline); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkActivateParallel measures concurrent on-demand activation of
// fresh actors (directory placement + instantiation + registration), the
// path a cold cluster exercises once per live actor.
func BenchmarkActivateParallel(b *testing.B) {
	sys := newScaleBenchSystem(b)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ref := Ref{Type: "cell", Key: strconv.FormatUint(next.Add(1), 10)}
			if _, err := sys.activationFor(ref, true, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCachePutParallel measures concurrent location-cache inserts well
// past the cache bound, so the eviction policy (wholesale reset before,
// per-shard clock eviction after) is inside the measured loop.
func BenchmarkCachePutParallel(b *testing.B) {
	sys := newScaleBenchSystem(b)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := next.Add(1)
			sys.cachePut(Ref{Type: "cell", Key: strconv.FormatUint(n%300000, 10)}, "bench-node")
		}
	})
}

// BenchmarkRouteChurnParallel mixes hot-path routing lookups with
// location-cache writes (1 put per 16 lookups), the migration/failover
// churn pattern: under a coarse lock every writer stalls every reader on
// the node, and the wholesale cache reset lands inside a call's critical
// path.
func BenchmarkRouteChurnParallel(b *testing.B) {
	sys := newScaleBenchSystem(b)
	const population = 16384
	refs := benchRefs(population)
	deadline := time.Now().Add(time.Hour)
	for _, ref := range refs {
		if _, err := sys.activationFor(ref, true, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(time.Now().UnixNano())))
		i := 0
		for pb.Next() {
			i++
			if i%16 == 0 {
				n := rng.Intn(1 << 20)
				sys.cachePut(Ref{Type: "cell", Key: strconv.Itoa(n)}, "bench-node")
				continue
			}
			ref := refs[rng.Intn(population)]
			if _, err := sys.locate(ref, true, deadline); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkActivationAllocs reports allocations per fresh activation
// (single-goroutine, so allocs/op is exact): the per-actor footprint work
// that bounds how many live actors fit in a fixed heap.
func BenchmarkActivationAllocs(b *testing.B) {
	sys := newScaleBenchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := Ref{Type: "cell", Key: strconv.Itoa(i)}
		if _, err := sys.activationFor(ref, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalCallSteadyState measures the repeated-call path on one
// activation (mailbox enqueue + turn + reply), where mailbox reuse decides
// the steady-state allocation rate.
func BenchmarkLocalCallSteadyState(b *testing.B) {
	sys := newScaleBenchSystem(b)
	ref := Ref{Type: "cell", Key: "hot"}
	if err := sys.Call(ref, "Touch", nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Call(ref, "Touch", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// requiredSpeedup reads the ACTOP_REQUIRE_SPEEDUP gate: unset (or 0) means
// report-only; "1" means any speedup ≥ 1.0 must hold; any other value is
// the required factor. The same variable feeds the cluster benchmark's
// -require-speedup default (see cmd/actop-bench and EXPERIMENTS.md).
func requiredSpeedup() float64 {
	v := os.Getenv("ACTOP_REQUIRE_SPEEDUP")
	if v == "" {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		return 1.0
	}
	return f
}

// TestShardedRoutingSpeedup measures hot-path routing throughput with one
// goroutine against GOMAXPROCS goroutines over the lock-striped state
// plane. By default it only reports the ratio; with ACTOP_REQUIRE_SPEEDUP
// set it fails unless the parallel configuration beats the serial one by
// the required factor — the regression tripwire for reintroducing a
// coarse lock on the routing path.
func TestShardedRoutingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timed throughput comparison")
	}
	require := requiredSpeedup()
	procs := runtime.GOMAXPROCS(0)
	if require > 0 && procs < 2 {
		t.Skipf("ACTOP_REQUIRE_SPEEDUP set but only %d proc(s); parallel speedup impossible", procs)
	}

	sys := newScaleBenchSystem(t)
	const population = 16384
	refs := benchRefs(population)
	deadline := time.Now().Add(time.Hour)
	for _, ref := range refs {
		if _, err := sys.activationFor(ref, true, false); err != nil {
			t.Fatal(err)
		}
	}

	// lookups runs `workers` goroutines hammering locate for a fixed window
	// and reports total operations completed.
	lookups := func(workers int, window time.Duration) uint64 {
		var done atomic.Uint64
		stop := time.Now().Add(window)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
				n := uint64(0)
				for time.Now().Before(stop) {
					ref := refs[rng.Intn(population)]
					if _, err := sys.locate(ref, true, deadline); err != nil {
						t.Error(err)
						break
					}
					n++
				}
				done.Add(n)
			}()
		}
		wg.Wait()
		return done.Load()
	}

	const window = 300 * time.Millisecond
	lookups(procs, 50*time.Millisecond) // warm caches and scheduler
	serial := lookups(1, window)
	parallel := lookups(procs, window)
	if serial == 0 {
		t.Fatal("serial run performed no lookups")
	}
	speedup := float64(parallel) / float64(serial)
	t.Logf("routing lookups: 1 goroutine %d ops, %d goroutines %d ops, speedup %.2f× (%d procs)",
		serial, procs, parallel, speedup, procs)
	if require > 0 && speedup < require {
		t.Fatalf("parallel routing speedup %.2f× below required %.2f× (ACTOP_REQUIRE_SPEEDUP)",
			speedup, require)
	}
}

// TestAllocsPerActivation pins the per-activation allocation budget so the
// footprint cannot silently regress: creating a fresh actor (placement,
// instantiation, registration in the state plane) must stay within a small
// constant number of allocations.
func TestAllocsPerActivation(t *testing.T) {
	sys := newScaleBenchSystem(t)
	var i int
	avg := testing.AllocsPerRun(2000, func() {
		ref := Ref{Type: "cell", Key: "alloc-" + strconv.Itoa(i)}
		i++
		if _, err := sys.activationFor(ref, true, false); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per activation: %.1f", avg)
	const budget = 16
	if avg > budget {
		t.Fatalf("activation path allocates %.1f objects per actor (budget %d)", avg, budget)
	}
}
