package actor

import (
	"hash/fnv"
	"sync/atomic"
	"time"

	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// Node-failure tolerance: a heartbeat failure detector with an
// alive→suspect→dead state machine per peer, and the failover actions that
// fire on a death — purge poisoned routing state and rehash the placement
// directory so the next call re-activates the dead node's actors on
// survivors (the Orleans virtual-actor recovery model, §2).

// PeerState is a peer's position in the failure detector's state machine.
type PeerState int

// Detector states. A peer starts Alive, becomes Suspect after
// Config.SuspectAfter consecutive missed heartbeats, Dead after
// Config.DeadAfter, and returns to Alive on any successful round trip
// (or any inbound ping from it).
const (
	PeerAlive PeerState = iota
	PeerSuspect
	PeerDead
)

// String renders the state for logs and debug endpoints.
func (p PeerState) String() string {
	switch p {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	}
	return "unknown"
}

// memberEntry is the detector's per-peer record. All fields are guarded by
// fdMu except healthy, an atomic mirror of "state is Alive with no missed
// pings" that lets the passive path (markPeerAlive, on every inbound
// envelope) skip the mutex entirely in the steady state.
type memberEntry struct {
	state    PeerState
	missed   int       // consecutive failed heartbeat round trips
	inFlight bool      // a ping to this peer is outstanding
	deadAt   time.Time // when state last transitioned to PeerDead
	healthy  atomic.Bool
}

// syncHealthyLocked re-derives the atomic mirror; call after any mutation
// of state or missed under fdMu.
func (m *memberEntry) syncHealthyLocked() {
	m.healthy.Store(m.state == PeerAlive && m.missed == 0)
}

// heartbeatLoop drives the detector: every HeartbeatInterval, ping every
// peer without an outstanding ping, with the interval itself as the ping
// timeout (a peer that cannot answer within one interval counts as a miss).
func (s *System) heartbeatLoop() {
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.pingPeers()
		}
	}
}

func (s *System) pingPeers() {
	for _, p := range s.peers {
		if p == s.Node() {
			continue
		}
		peer := p
		s.fdMu.Lock()
		m := s.members[peer]
		if m.inFlight {
			s.fdMu.Unlock()
			continue
		}
		m.inFlight = true
		s.fdMu.Unlock()
		if !s.trackGo(func() {
			err := s.controlCallT(peer, ctlPing, string(s.Node()), nil, s.cfg.HeartbeatInterval)
			s.failures.HeartbeatsSent.Add(1)
			s.heartbeatResult(peer, err == nil)
		}) {
			s.fdMu.Lock()
			m.inFlight = false
			s.fdMu.Unlock()
		}
	}
}

// heartbeatResult folds one ping outcome into the state machine and fires
// the failover/notification side effects of any transition outside the
// detector lock.
func (s *System) heartbeatResult(peer transport.NodeID, ok bool) {
	if !ok {
		s.failures.HeartbeatMisses.Add(1)
	}
	s.fdMu.Lock()
	m := s.members[peer]
	m.inFlight = false
	old := m.state
	if ok {
		m.missed = 0
		m.state = PeerAlive
	} else {
		m.missed++
		switch {
		case m.state == PeerAlive && m.missed >= s.cfg.SuspectAfter:
			m.state = PeerSuspect
		case m.state == PeerSuspect && m.missed >= s.cfg.DeadAfter:
			m.state = PeerDead
			m.deadAt = time.Now()
		}
	}
	m.syncHealthyLocked()
	st := m.state
	s.fdMu.Unlock()
	if st != old {
		s.peerTransition(peer, old, st)
	}
}

// markPeerAlive is the passive path: any inbound envelope from a peer
// proves it is reachable, so reset its record without waiting for our own
// ping. This runs on every received envelope, so the steady state (peer
// already healthy) must stay off the detector mutex: the members map is
// insert-free after NewSystem, and healthy is the atomic mirror of the
// nothing-to-heal condition.
func (s *System) markPeerAlive(peer transport.NodeID) {
	m, ok := s.members[peer]
	if !ok {
		return // not in our static membership; ignore
	}
	if m.healthy.Load() {
		return
	}
	s.fdMu.Lock()
	old := m.state
	m.missed = 0
	m.state = PeerAlive
	m.syncHealthyLocked()
	s.fdMu.Unlock()
	if old != PeerAlive {
		s.peerTransition(peer, old, PeerAlive)
	}
}

// peerTransition records a membership change, runs failover on a death,
// and notifies watchers. Called outside fdMu.
func (s *System) peerTransition(peer transport.NodeID, from, to PeerState) {
	s.flight.Record(flight.Event{
		Kind: flight.KindMembership, Peer: string(peer),
		Detail: from.String() + "->" + to.String(),
	})
	switch to {
	case PeerSuspect:
		s.failures.Suspects.Add(1)
	case PeerDead:
		s.failures.Deaths.Add(1)
		// A death verdict is an anomaly trigger: the dump preserves the
		// membership flapping, purges, and recovery traffic around it.
		s.flight.Trigger(flight.KindPeerDead, string(peer))
		s.failoverPurge(peer)
		s.trackGo(s.reassertActivations)
	case PeerAlive:
		if from == PeerDead {
			s.failures.Revivals.Add(1)
		}
	}
	s.fdMu.Lock()
	var watchers []func(transport.NodeID, PeerState)
	watchers = append(watchers, s.watchers...)
	s.fdMu.Unlock()
	for _, w := range watchers {
		w(peer, to)
	}
}

// failoverPurge removes every piece of routing state poisoned by a dead
// node: location-cache entries pointing at it, and the directory entries
// this node owns whose placement was homed on it — so the next Call
// re-places and re-activates those actors on a live node. Directory ranges
// the dead node itself owned need no action here: directoryOwner rehashes
// them to live survivors, whose (empty) directories re-place on demand.
func (s *System) failoverPurge(dead transport.NodeID) {
	var purged uint64
	// Shard by shard: a purge holds each stripe only as long as its own
	// sweep, so concurrent calls on other shards keep routing while the
	// failover cleans up behind them. No cross-shard invariant is at stake —
	// each entry's poison is independent, and the epoch guard handles any
	// update racing the purge.
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.Lock()
		for ref, e := range sh.locCache {
			if e.node == dead {
				delete(sh.locCache, ref)
				purged++
			}
		}
		for ref, e := range sh.dirEntries {
			if e.node == dead {
				delete(sh.dirEntries, ref)
				purged++
			}
		}
		sh.mu.Unlock()
	}
	s.failures.FailoverPurged.Add(purged)
	s.flight.Record(flight.Event{Kind: flight.KindFailoverPurge, Peer: string(dead), N: purged})
}

// reassertActivations re-registers every locally hosted actor with its
// directory owner after a peer death. A dead owner's directory ranges
// rehash to survivors whose directories start empty, so until an entry
// exists a routed call for an actor this node still hosts blind-places a
// second incarnation elsewhere — a split brain where the live copy keeps
// serving cached callers while the twin diverges from a stale snapshot.
// Re-asserting right after the death closes that window to the detection
// lag. The epoch travels with the update so the guard keeps a late
// re-assert from rewinding a newer migration, and a failed send falls back
// to the background retry loop (the update must eventually land — see
// retryDirUpdate).
func (s *System) reassertActivations() {
	type claim struct {
		ref   Ref
		epoch uint64
	}
	var live []claim
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		for ref, act := range sh.activations {
			// epoch is immutable once the activation is published into the
			// shard map, so reading it under the shard lock is ordered.
			live = append(live, claim{ref: ref, epoch: act.epoch})
		}
		sh.mu.RUnlock()
	}
	for _, c := range live {
		update := dirRequest{
			Type: c.ref.Type, Key: c.ref.Key,
			NewNode: string(s.Node()), Epoch: c.epoch,
		}
		if err := s.controlCall(s.directoryOwner(c.ref), ctlDirUpdate, update, nil); err != nil {
			update := update
			ref := c.ref
			s.trackGo(func() { s.retryDirUpdate(ref, update) })
		}
	}
}

// peerDeadSince reports whether the detector currently considers peer dead
// and, if so, when the verdict was reached. The snapshot plane uses the
// timestamp to distrust fresh verdicts: a false positive (starved
// heartbeats under load) looks identical to a real death at the moment it
// fires, and acting on it by skipping a live replica turns a detector
// hiccup into permanent state loss.
func (s *System) peerDeadSince(peer transport.NodeID) (time.Time, bool) {
	s.fdMu.Lock()
	defer s.fdMu.Unlock()
	if m, ok := s.members[peer]; ok && m.state == PeerDead {
		return m.deadAt, true
	}
	return time.Time{}, false
}

// PeerStateOf reports the detector's current view of a peer. The local
// node and unknown ids read as Alive.
func (s *System) PeerStateOf(peer transport.NodeID) PeerState {
	if peer == s.Node() {
		return PeerAlive
	}
	s.fdMu.Lock()
	defer s.fdMu.Unlock()
	if m, ok := s.members[peer]; ok {
		return m.state
	}
	return PeerAlive
}

// Membership snapshots the detector's view of every peer (including self,
// always Alive).
func (s *System) Membership() map[transport.NodeID]PeerState {
	out := make(map[transport.NodeID]PeerState, len(s.peers))
	s.fdMu.Lock()
	for p, m := range s.members {
		out[p] = m.state
	}
	s.fdMu.Unlock()
	out[s.Node()] = PeerAlive
	return out
}

// OnMembershipChange registers a callback invoked on every peer state
// transition (from the detector's goroutines; keep it fast and do not call
// back into blocking System methods).
func (s *System) OnMembershipChange(fn func(transport.NodeID, PeerState)) {
	s.fdMu.Lock()
	s.watchers = append(s.watchers, fn)
	s.fdMu.Unlock()
}

// Failures snapshots the node's failure-tolerance counters.
func (s *System) Failures() metrics.FailureSnapshot { return s.failures.Snapshot() }

// livePeers lists the peers not currently considered Dead (self included).
// Placement draws from this list so new activations never land on a dead
// node. Order follows s.peers (sorted), keeping placement deterministic
// for a given seed while all peers are alive.
func (s *System) livePeers() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(s.peers))
	s.fdMu.Lock()
	for _, p := range s.peers {
		if p == s.Node() {
			out = append(out, p)
			continue
		}
		if m, ok := s.members[p]; !ok || m.state != PeerDead {
			out = append(out, p)
		}
	}
	s.fdMu.Unlock()
	return out
}

// --- directory ownership under failures ---

// directoryOwner is the node owning ref's placement entry: the static
// hash-modulo home while that node is believed up, else a rendezvous-hash
// pick among the live peers. The fallback touches only the dead node's
// ranges — every other ref keeps its owner — and spreads them over all
// survivors rather than one neighbor. Every node computes this from its own
// membership view; transient disagreement windows resolve through redirects
// and call retries.
func (s *System) directoryOwner(ref Ref) transport.NodeID {
	owner := s.peers[uint64(ref.Vertex())%uint64(len(s.peers))]
	if s.cfg.DisableFailover || owner == s.Node() || s.PeerStateOf(owner) != PeerDead {
		return owner
	}
	live := s.livePeers() // non-empty: always includes self
	best := live[0]
	var bestScore uint64
	for _, p := range live {
		h := fnv.New64a()
		h.Write([]byte(p))
		h.Write([]byte{0})
		h.Write([]byte(ref.Type))
		h.Write([]byte{0})
		h.Write([]byte(ref.Key))
		if score := h.Sum64(); score >= bestScore {
			best, bestScore = p, score
		}
	}
	return best
}
