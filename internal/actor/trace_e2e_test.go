package actor

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/metrics"
	"actop/internal/trace"
	"actop/internal/transport"
)

// relayActor forwards each call to a counter actor — one extra traced hop,
// so a root call through it exercises ParentID linkage across nodes.
type relayActor struct{}

func (relayActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	var target string
	if err := codec.Unmarshal(args, &target); err != nil {
		return nil, err
	}
	var out int
	if err := ctx.Call(Ref{Type: "counter", Key: target}, "Add", 1, &out); err != nil {
		return nil, err
	}
	return codec.Marshal(out)
}

// newTracedCluster spins up n in-memory nodes with sampling at rate and the
// counter/relay types registered. Node i gets regs[i] when provided.
func newTracedCluster(t *testing.T, n int, rate float64, regs ...*metrics.Registry) []*System {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	systems := make([]*System, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Transport: trs[i], Peers: peers,
			Placement: PlaceLocal, Seed: int64(7 + i),
			CallTimeout:     3 * time.Second,
			TraceSampleRate: rate,
		}
		if i < len(regs) {
			cfg.Metrics = regs[i]
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("counter", func() Actor { return &counterActor{} })
		sys.RegisterType("relay", func() Actor { return relayActor{} })
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems
}

// waitSpans polls a ring until pred finds a span or the deadline passes.
func waitSpans(t *testing.T, r *trace.Ring, what string, pred func(trace.Span) bool) trace.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, sp := range r.Snapshot(0) {
			if pred(sp) {
				return sp
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no span matching %q in ring (have %d)", what, len(r.Snapshot(0)))
	return trace.Span{}
}

// TestTraceEndToEndThreeNodes drives a two-hop call chain across three nodes
// (node-0 → relay on node-1 → counter on node-2) with sampling at 1.0 and
// checks the whole decomposition story: paired client/server spans, nested
// ParentID linkage, populated components that sum to the measured total,
// cluster assembly from the root node, and the per-method registry series.
func TestTraceEndToEndThreeNodes(t *testing.T) {
	reg := metrics.NewRegistry()
	relayReg := metrics.NewRegistry()
	sys := newTracedCluster(t, 3, 1.0, reg, relayReg)

	// Pin the topology with PlaceLocal priming calls: relay/r activates on
	// node-1, counter/c on node-2.
	var primed int
	if err := sys[2].Call(Ref{Type: "counter", Key: "c"}, "Add", 0, &primed); err != nil {
		t.Fatal(err)
	}
	var relayOut int
	if err := sys[1].Call(Ref{Type: "relay", Key: "r"}, "Relay", "c", &relayOut); err != nil {
		t.Fatal(err)
	}
	if !sys[1].HostsActor(Ref{Type: "relay", Key: "r"}) || !sys[2].HostsActor(Ref{Type: "counter", Key: "c"}) {
		t.Fatal("PlaceLocal priming did not pin the topology")
	}

	// The traced call of interest: remote root hop plus a nested remote hop.
	var out int
	if err := sys[0].Call(Ref{Type: "relay", Key: "r"}, "Relay", "c", &out); err != nil {
		t.Fatal(err)
	}
	if out != 2 {
		t.Fatalf("relay result = %d, want 2", out)
	}

	// Root client span lands in node-0's ring synchronously with the call.
	root := waitSpans(t, sys[0].TraceRing(), "root client span", func(sp trace.Span) bool {
		return sp.Kind == "client" && sp.Method == "Relay" && sp.Node == "node-0"
	})
	if root.TraceID == 0 || root.SpanID == 0 {
		t.Fatalf("root span ids not assigned: %+v", root)
	}
	if root.ParentID != 0 {
		t.Fatalf("root span has a parent: %d", root.ParentID)
	}
	if root.Total <= 0 {
		t.Fatalf("root total not measured: %v", root.Total)
	}
	// Client components must close exactly on the measured total: Network is
	// the residual, so sum == total unless clamping fired (sum > total).
	if sum := root.ComponentSum(); sum != root.Total && sum < root.Total {
		t.Fatalf("client components do not close: sum %v vs total %v", sum, root.Total)
	}
	if root.Network <= 0 {
		t.Fatalf("remote client span has no network residual: %+v", root)
	}

	// The relay's server span pairs with the root by SpanID (published
	// asynchronously by the reply send task).
	server := waitSpans(t, sys[1].TraceRing(), "relay server span", func(sp trace.Span) bool {
		return sp.Kind == "server" && sp.SpanID == root.SpanID
	})
	if server.TraceID != root.TraceID {
		t.Fatalf("server span trace id %d != root %d", server.TraceID, root.TraceID)
	}
	if server.Node != "node-1" || server.Method != "Relay" {
		t.Fatalf("server span misplaced: %+v", server)
	}
	// The relay turn blocks on a real nested remote call, so its execution
	// time is solidly nonzero, and the client span carries the same value
	// via the reply's hop-timing record.
	if server.Exec <= 0 {
		t.Fatalf("relay server exec not measured: %+v", server)
	}
	if root.Exec != server.Exec || root.WorkQueue != server.WorkQueue {
		t.Fatalf("reply did not carry callee timings: root{exec %v wq %v} server{exec %v wq %v}",
			root.Exec, root.WorkQueue, server.Exec, server.WorkQueue)
	}

	// The nested hop: a client span on node-1 whose parent is the relay's
	// span, paired with a server span on node-2.
	nested := waitSpans(t, sys[1].TraceRing(), "nested client span", func(sp trace.Span) bool {
		return sp.Kind == "client" && sp.Method == "Add" && sp.TraceID == root.TraceID
	})
	if nested.ParentID != root.SpanID {
		t.Fatalf("nested span parent %d, want relay span %d", nested.ParentID, root.SpanID)
	}
	nestedSrv := waitSpans(t, sys[2].TraceRing(), "nested server span", func(sp trace.Span) bool {
		return sp.Kind == "server" && sp.SpanID == nested.SpanID
	})
	if nestedSrv.Node != "node-2" || nestedSrv.Actor != "counter/c" {
		t.Fatalf("nested server span misplaced: %+v", nestedSrv)
	}

	// Cluster assembly from the root node: one tree, root paired both sides,
	// exactly one child (the nested Add).
	trees := sys[0].ClusterTrace(root.TraceID)
	if len(trees) != 1 {
		t.Fatalf("assembled %d roots, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Client == nil || tree.Server == nil || tree.SpanID != root.SpanID {
		t.Fatalf("root tree node incomplete: %+v", tree)
	}
	if len(tree.Children) != 1 || tree.Children[0].SpanID != nested.SpanID {
		t.Fatalf("root tree children wrong: %+v", tree.Children)
	}
	if tree.Children[0].Server == nil {
		t.Fatal("nested call missing its server view")
	}

	// Per-method latency series reach the registry on node-0.
	var b strings.Builder
	reg.Write(&b)
	text := b.String()
	for _, want := range []string{
		`actop_call_duration_seconds{method="Relay",quantile="0.99"}`,
		`actop_call_component_seconds{method="Relay",component="network",quantile="0.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry output missing %s", want)
		}
	}

	// The callee side exposes served-call latency on its own registry.
	b.Reset()
	relayReg.Write(&b)
	if !strings.Contains(b.String(), `actop_served_call_duration_seconds{method="Relay",quantile="0.99"}`) {
		t.Errorf("relay node registry missing served-call series:\n%s", b.String())
	}
}

// TestTraceDisabledRecordsNothing checks the default (rate 0) configuration
// records no spans and attaches no trace section to envelopes.
func TestTraceDisabledRecordsNothing(t *testing.T) {
	sys := newTracedCluster(t, 2, 0, nil)
	var out int
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := sys[0].Call(Ref{Type: "counter", Key: key}, "Add", 1, &out); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	for i, s := range sys {
		if n := s.TraceRing().Recorded(); n != 0 {
			t.Fatalf("node %d recorded %d spans with tracing off", i, n)
		}
	}
}

// TestTraceLocalSpan checks a sampled co-located call produces a single
// "local" span with mailbox and execution components.
func TestTraceLocalSpan(t *testing.T) {
	sys := newTracedCluster(t, 1, 1.0, nil)
	var out int
	if err := sys[0].Call(Ref{Type: "counter", Key: "x"}, "Add", 3, &out); err != nil {
		t.Fatal(err)
	}
	sp := waitSpans(t, sys[0].TraceRing(), "local span", func(sp trace.Span) bool {
		return sp.Kind == "local" && sp.Method == "Add"
	})
	if sp.Total <= 0 {
		t.Fatalf("local span total not measured: %+v", sp)
	}
	if sp.Network != 0 || sp.RecvQueue != 0 {
		t.Fatalf("local span has remote components: %+v", sp)
	}
}

// TestTraceDedupAnnotation drives a duplicated traced envelope through
// handleCall and checks the duplicate's server span and reply record carry
// the dedup-hit flag.
func TestTraceDedupAnnotation(t *testing.T) {
	sys := newTracedCluster(t, 2, 1.0, nil)
	ref := Ref{Type: "counter", Key: "dup"}
	var out int
	if err := sys[1].Call(ref, "Add", 1, &out); err != nil {
		t.Fatal(err)
	}
	args, err := codec.Marshal(5)
	if err != nil {
		t.Fatal(err)
	}
	env := &transport.Envelope{
		Kind: transport.KindCall, ID: 777777, From: sys[0].Node(),
		ActorType: ref.Type, ActorKey: ref.Key, Method: "Add", Payload: args,
		Trace: &transport.Trace{TraceID: 99, SpanID: 1001},
	}
	sys[1].handleCall(env, 0)
	// Wait for the original turn to resolve so the duplicate finds a prior
	// reply in the dedup window (an in-flight duplicate is simply dropped).
	waitSpans(t, sys[1].TraceRing(), "original server span", func(sp trace.Span) bool {
		return sp.Kind == "server" && sp.TraceID == 99 && !sp.DedupHit
	})
	dup := *env
	dup.Trace = &transport.Trace{TraceID: 99, SpanID: 1001}
	sys[1].handleCall(&dup, 0)

	waitSpans(t, sys[1].TraceRing(), "dedup-hit server span", func(sp trace.Span) bool {
		return sp.Kind == "server" && sp.TraceID == 99 && sp.DedupHit
	})
}
