package actor

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// newObsCluster is newCluster with the observability knobs exposed.
func newObsCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*System {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	systems := make([]*System, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Transport: trs[i], Peers: peers,
			Placement: PlaceRandom, Seed: int64(42 + i),
			CallTimeout: 3 * time.Second,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("counter", func() Actor { return &counterActor{} })
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems
}

// TestObsSmoke is the skewed-workload acceptance check: one injected hot
// actor among a field of background actors must surface at rank 1 in the
// cluster-wide hot-actor table, and the observability metric families
// must appear on a scrape. Wired into `make obs-smoke` / `make check`.
func TestObsSmoke(t *testing.T) {
	reg := metrics.NewRegistry()
	sys := newObsCluster(t, 3, func(i int, cfg *Config) {
		cfg.HotspotDecay = time.Hour // no decay mid-test
		if i == 0 {
			cfg.Metrics = reg
		}
	})

	// Background field: 60 actors, 3 calls each, spread across callers.
	var out int
	for b := 0; b < 60; b++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("bg-%d", b)}
		for c := 0; c < 3; c++ {
			if err := sys[(b+c)%3].Call(ref, "Add", 1, &out); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The hot spot: one actor, two orders of magnitude more traffic.
	hot := Ref{Type: "counter", Key: "hot"}
	for c := 0; c < 600; c++ {
		if err := sys[c%3].Call(hot, "Add", 1, &out); err != nil {
			t.Fatal(err)
		}
	}

	top := sys[0].ClusterHotspots(10)
	if len(top) == 0 {
		t.Fatal("ClusterHotspots returned nothing")
	}
	if top[0].Actor != "counter/hot" {
		t.Fatalf("rank 1 = %+v, want counter/hot", top[0])
	}
	if top[0].Node == "" {
		t.Fatalf("rank 1 entry missing node: %+v", top[0])
	}
	if top[0].Turns < 600 {
		t.Fatalf("hot actor turns = %d, want >= 600", top[0].Turns)
	}
	if top[0].ExecNs == 0 || top[0].WaitNs == 0 && top[0].BytesIn == 0 {
		t.Fatalf("hot actor stats look empty: %+v", top[0].Stats)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Cost < top[i].Cost {
			t.Fatalf("table not cost-descending at %d: %+v", i, top)
		}
	}
	// Every node saw traffic, so a 10-wide merge over 3 nodes must carry
	// entries from more than one of them.
	nodes := map[string]bool{}
	for _, e := range top {
		nodes[e.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("cluster table covers %d node(s): %+v", len(nodes), top)
	}

	// The caller-side fan-out profile: the hot actor's callers recorded
	// outbound calls against themselves.
	if local := sys[0].LocalHotspots(10); len(local) == 0 {
		t.Fatal("LocalHotspots empty on a node that hosted actors")
	}

	var sb strings.Builder
	reg.Write(&sb)
	scrape := sb.String()
	for _, fam := range []string{
		"actop_hotspot_cost", "actop_hotspot_tracked",
		"actop_flight_events_total", "actop_flight_dumps_total",
		"actop_trace_spans_recorded_total", "actop_trace_sampler_accepted_total",
	} {
		if !strings.Contains(scrape, fam) {
			t.Fatalf("scrape missing %s:\n%s", fam, scrape)
		}
	}
}

// TestSLOBreachDump proves the anomaly path end to end: a breached p99
// window produces exactly one flight dump, repeats inside the debounce
// interval are suppressed, and the dump carries runtime context plus the
// recent event history.
func TestSLOBreachDump(t *testing.T) {
	sys := newObsCluster(t, 1, func(i int, cfg *Config) {
		cfg.SLOTarget = time.Nanosecond // every real call breaches
		cfg.FlightDebounce = time.Hour
	})[0]

	var out int
	ref := Ref{Type: "counter", Key: "slo"}
	for c := 0; c < 2*sloMinSamples; c++ {
		if err := sys.Call(ref, "Add", 1, &out); err != nil {
			t.Fatal(err)
		}
	}
	sys.sloCheck()
	fr := sys.FlightRecorder()
	if got := fr.DumpsTaken(); got != 1 {
		t.Fatalf("dumps after first breach = %d, want 1", got)
	}

	// A second breached window inside the debounce interval: no new dump.
	for c := 0; c < 2*sloMinSamples; c++ {
		if err := sys.Call(ref, "Add", 1, &out); err != nil {
			t.Fatal(err)
		}
	}
	sys.sloCheck()
	if got := fr.DumpsTaken(); got != 1 {
		t.Fatalf("dumps after debounced breach = %d, want 1", got)
	}
	if fr.Suppressed() == 0 {
		t.Fatal("second breach was not counted as suppressed")
	}

	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("retained dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != flight.KindSLOBreach {
		t.Fatalf("dump trigger = %q", d.Trigger)
	}
	if !strings.Contains(d.Detail, "p99") {
		t.Fatalf("dump detail %q missing p99 context", d.Detail)
	}
	if d.Runtime.Goroutines <= 0 || d.Runtime.GOMAXPROCS <= 0 {
		t.Fatalf("dump missing runtime context: %+v", d.Runtime)
	}
	if len(d.Events) == 0 || d.Events[len(d.Events)-1].Kind != flight.KindSLOBreach {
		t.Fatalf("dump events do not end with the trigger: %+v", d.Events)
	}
}

// TestObsOverheadGuard is the <2% per-call overhead acceptance gate for
// the always-on observability plane. It compares local-call latency with
// the profiler + flight recorder at defaults against DisableHotspots, on
// the same process. Timing-sensitive, so gated behind
// ACTOP_OVERHEAD_GUARD=1; a recorded run lives in BENCH_obs.json.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("ACTOP_OVERHEAD_GUARD") == "" {
		t.Skip("set ACTOP_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	const calls = 10000 // per chunk
	const rounds = 15   // paired off/on chunks

	newSys := func(disable bool) *System {
		return newObsCluster(t, 1, func(i int, cfg *Config) {
			cfg.DisableHotspots = disable
			cfg.HotspotDecay = time.Hour
		})[0]
	}
	// Persistent systems, tightly interleaved chunks: each round times an
	// off chunk and an on chunk back to back, so slow drift (thermal,
	// scheduler, GC phase) hits both sides of every pair equally. The
	// verdict is the median of per-round overhead ratios.
	sysOff, sysOn := newSys(true), newSys(false)
	chunk := func(sys *System, key string) float64 {
		ref := Ref{Type: "counter", Key: key}
		var out int
		start := time.Now()
		for c := 0; c < calls; c++ {
			if err := sys.Call(ref, "Add", 1, &out); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / calls
	}
	chunk(sysOff, "bench") // warmup
	chunk(sysOn, "bench")
	var offs, ons, pcts []float64
	for r := 0; r < rounds; r++ {
		off := chunk(sysOff, "bench")
		on := chunk(sysOn, "bench")
		offs, ons = append(offs, off), append(ons, on)
		pcts = append(pcts, (on-off)/off*100)
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	off, on, pct := median(offs), median(ons), median(pcts)
	t.Logf(`{"enabled_ns_per_call": %.1f, "disabled_ns_per_call": %.1f, "overhead_pct": %.2f, "budget_pct": 2.0, "calls_per_chunk": %d, "rounds": %d}`,
		on, off, pct, calls, rounds)
	if pct > 2.0 {
		t.Fatalf("observability overhead %.2f%% exceeds 2%% budget (on=%.1fns off=%.1fns)", pct, on, off)
	}
}
