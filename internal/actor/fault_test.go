package actor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"actop/internal/transport"
)

// flakyCluster builds a 2-node cluster where node 0's outbound traffic runs
// through a fault injector.
func flakyCluster(t *testing.T) ([]*System, *transport.Flaky) {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := []transport.NodeID{"f0", "f1"}
	fl := transport.NewFlaky(net.Join("f0"), 99)
	trs := []transport.Transport{fl, net.Join("f1")}
	var systems []*System
	for i := range peers {
		sys, err := NewSystem(Config{
			Transport: trs[i], Peers: peers, Seed: int64(i),
			CallTimeout: 150 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("counter", func() Actor { return &counterActor{} })
		systems = append(systems, sys)
		t.Cleanup(sys.Stop)
	}
	return systems, fl
}

func TestDroppedCallsTimeOutCleanly(t *testing.T) {
	sys, fl := flakyCluster(t)
	// Place the actor on node 1 so node 0 must go remote.
	ref := Ref{Type: "counter", Key: "ft"}
	if err := sys[1].Call(ref, "Add", 1, nil); err != nil {
		t.Fatal(err)
	}
	if !sys[1].HostsActor(ref) {
		// Re-place deterministically: migrate it to node 1.
		for _, s := range sys {
			if s.HostsActor(ref) {
				if err := s.Migrate(ref, sys[1].Node()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Warm node 0's cache while the network is healthy.
	if err := sys[0].Call(ref, "Get", nil, nil); err != nil {
		t.Fatal(err)
	}

	fl.SetDrop(1.0) // everything from node 0 vanishes
	err := sys[0].Call(ref, "Get", nil, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if fl.Dropped() == 0 {
		t.Fatal("injector dropped nothing")
	}

	// Network heals: the same node recovers with no restart.
	fl.SetDrop(0)
	var out int
	if err := sys[0].Call(ref, "Get", nil, &out); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if out != 1 {
		t.Fatalf("state corrupted across faults: %d", out)
	}
}

func TestLossyNetworkPartialService(t *testing.T) {
	sys, fl := flakyCluster(t)
	fl.SetDrop(0.3) // 30% loss on node 0's sends
	var ok, failed int
	for i := 0; i < 60; i++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("lossy-%d", i%10)}
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("nothing succeeded under 30% loss")
	}
	if failed == 0 {
		t.Fatal("nothing failed under 30% loss — injector inert?")
	}
	// The cluster is still coherent: every actor is hosted exactly once.
	for i := 0; i < 10; i++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("lossy-%d", i)}
		hosts := 0
		for _, s := range sys {
			if s.HostsActor(ref) {
				hosts++
			}
		}
		if hosts > 1 {
			t.Fatalf("%s hosted on %d nodes", ref, hosts)
		}
	}
}

func TestDelayedNetworkStillCompletes(t *testing.T) {
	sys, fl := flakyCluster(t)
	fl.SetDelay(1.0, 20*time.Millisecond) // everything from node 0 is slow
	ref := Ref{Type: "counter", Key: "slowpath"}
	start := time.Now()
	if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
		t.Fatalf("call under delay: %v", err)
	}
	// Remote paths must have absorbed the delay without timing out.
	if time.Since(start) > sys[0].cfg.CallTimeout {
		t.Fatal("call took longer than the timeout yet succeeded?")
	}
}

func TestMigrateFailsCleanlyWhenTargetUnreachable(t *testing.T) {
	sys, fl := flakyCluster(t)
	ref := Ref{Type: "counter", Key: "stuck"}
	if err := sys[0].Call(ref, "Add", 5, nil); err != nil {
		t.Fatal(err)
	}
	var host, other *System
	for _, s := range sys {
		if s.HostsActor(ref) {
			host = s
		} else {
			other = s
		}
	}
	if host == sys[0] {
		fl.SetDrop(1.0) // host's control plane is cut
		if err := host.Migrate(ref, other.Node()); err == nil {
			t.Fatal("migration should fail when the transfer cannot reach the target")
		}
		fl.SetDrop(0)
		// The actor must still be served from its original host.
		var out int
		if err := host.Call(ref, "Get", nil, &out); err != nil || out != 5 {
			t.Fatalf("actor lost after failed migration: %v, %d", err, out)
		}
	} else {
		// Host is node 1 (healthy transport); cut the *target's* inbound by
		// dropping node 0's replies: control call from node 1 times out.
		fl.SetDrop(1.0)
		err := host.Migrate(ref, other.Node())
		fl.SetDrop(0)
		if err == nil {
			// Migration may legitimately succeed if no leg crossed the
			// faulty direction; then the actor must be on the target.
			if !other.HostsActor(ref) {
				t.Fatal("migration reported success but actor vanished")
			}
			return
		}
		var out int
		if err := host.Call(ref, "Get", nil, &out); err != nil || out != 5 {
			t.Fatalf("actor lost after failed migration: %v, %d", err, out)
		}
	}
}
