package actor

import (
	"fmt"
	"sync"
	"time"

	"actop/internal/codec"
	"actop/internal/flight"
)

// invocation is one queued actor method call with its completion callback.
// Exactly one of args/argsVal is meaningful: byte invocations (remote calls,
// gob-fallback local calls) carry encoded args; value invocations (the
// zero-copy local fast path) carry an already-isolated value and require the
// actor to implement ValueReceiver. The callback receives either encoded
// data or a value result, mirroring the path the turn actually took (a
// value invocation that races with a migration is forwarded as bytes).
type invocation struct {
	method  string
	args    []byte
	argsVal interface{}
	isVal   bool
	respond func(data []byte, val interface{}, err error)
	// trc, when non-nil, marks a traced invocation: the worker records the
	// mailbox wait and execution time into it before respond fires, and the
	// turn's Context inherits its trace identity.
	trc *turnTiming
	// at is the enqueue instant, set only when the hot-spot profiler is on:
	// the drain loop charges the mailbox wait (drain start minus at) to the
	// actor's profile.
	at time.Time
}

// activation is one live actor instance with a turn-based mailbox: the
// runtime executes at most one Receive at a time per activation, scheduling
// turns on the node's worker stage.
type activation struct {
	ref   Ref
	actor Actor
	// refH caches refHash(ref) so the profiler's per-drain flush never
	// re-hashes the ref strings. Immutable.
	refH uint64
	// installID, when non-empty, names the migration transfer that created
	// this activation; ID-matched drops (failed-transfer cleanup) may only
	// remove the install they were issued against.
	installID string
	// epoch counts this incarnation's position in the actor's migration
	// chain (0 for a fresh placement, +1 per transfer). It rides along in
	// directory updates so a delayed/retried update from an older migration
	// can never overwrite the directory state of a newer one. Immutable
	// after the activation is published.
	epoch uint64

	// Durability plane (guarded by turnMu, like the turns that drive it).
	// durable marks an activation whose type opted in via the Durable
	// marker while the node runs with DurableReplicas > 0. dirty counts
	// turns since the last capture, snapSeq the captures of this
	// incarnation (piggybacked across migrations), lastSnap the wall-clock
	// of the last capture.
	durable  bool
	dirty    int
	snapSeq  uint64
	lastSnap time.Time

	// turnMu is held for the duration of each Receive; Migrate acquires it
	// to guarantee no turn is in flight while the state is snapshotted.
	turnMu sync.Mutex

	// Mailbox: a head-indexed queue. Drains pop queue[head] and advance
	// head instead of re-slicing, so the backing array is reused across the
	// activation's whole life — steady-state traffic on a warm actor
	// appends into spare capacity and allocates nothing. When the queue
	// empties it rewinds to queue[:0] (releasing oversized burst buffers so
	// 1M mostly-idle activations don't pin burst-shaped arrays).
	mu        sync.Mutex
	queue     []invocation
	head      int
	scheduled bool
	// forwarded, when set, means the activation migrated away; enqueued
	// invocations are re-routed to the new host.
	forwarded bool
	// profEnq counts enqueues for mailbox-wait sampling (guarded by mu).
	profEnq uint64
	// profSeq counts turns for exec-time sampling. Only the (serialized)
	// drain touches it; successive drains are ordered through mu, so no
	// atomic is needed.
	profSeq uint64
}

// profSample is the profiler's timing sample rate (power of two): one turn
// in profSample reads the clock for exec time, one enqueue in profSample
// stamps for mailbox wait, and the measurements scale back up by
// profSample. Turn and byte counts stay exact — only the clock reads, the
// expensive part (~75ns each on a vDSO-less guest), are sampled.
const profSample = 8

// turnBatch bounds invocations processed per worker-stage task so one hot
// actor cannot starve the stage.
const turnBatch = 16

// mailboxRetainCap bounds the queue capacity kept across an empty rewind;
// anything larger was a burst and goes back to the GC.
const mailboxRetainCap = 64

// takePending removes and returns every queued invocation (caller holds
// a.mu). The mailbox is left empty with no retained capacity.
func (a *activation) takePending() []invocation {
	pending := a.queue[a.head:]
	a.queue = nil
	a.head = 0
	return pending
}

// pop removes the next invocation (caller holds a.mu; queue non-empty).
func (a *activation) pop() invocation {
	inv := a.queue[a.head]
	a.queue[a.head] = invocation{} // release args/closure references now
	a.head++
	if a.head == len(a.queue) {
		if cap(a.queue) > mailboxRetainCap {
			a.queue = nil
		} else {
			a.queue = a.queue[:0]
		}
		a.head = 0
	}
	return inv
}

func (a *activation) queueLen() int { return len(a.queue) - a.head }

// enqueue adds an invocation and schedules a drain turn if none is pending.
func (a *activation) enqueue(inv invocation, s *System) {
	a.mu.Lock()
	if a.forwarded {
		a.mu.Unlock()
		s.forwardInvocation(a.ref, inv)
		return
	}
	if s.prof != nil {
		// Mailbox-wait sampling: stamp one enqueue in profSample; the drain
		// loop scales the measured wait back up. An unsampled invocation
		// keeps at zero and costs this path nothing but the counter.
		a.profEnq++
		if a.profEnq&(profSample-1) == 0 {
			inv.at = time.Now()
		}
	}
	a.queue = append(a.queue, inv)
	need := !a.scheduled
	if need {
		a.scheduled = true
	}
	a.mu.Unlock()
	if need {
		a.schedule(s)
	}
}

func (a *activation) schedule(s *System) {
	if err := s.workStage.Submit(func() { a.drain(s) }); err != nil {
		// Worker queue full: fail the queued invocations (backpressure).
		a.mu.Lock()
		pending := a.takePending()
		a.scheduled = false
		a.mu.Unlock()
		for _, inv := range pending {
			inv.respond(nil, nil, fmt.Errorf("%w: worker queue", ErrOverloaded))
		}
	}
}

// drain processes up to turnBatch invocations, then reschedules itself if
// more arrived.
//
// Profiler accounting is batched and sampled: per-turn figures accumulate
// in locals and fold into the hot-spot sketch once per drain — so the
// hottest actors (the ones that fill their batch) amortize the sketch's
// stripe lock up to turnBatch× — and clock reads happen on one turn in
// profSample (scaled back up), so the steady-state turn path adds two
// counter bumps, no clock reads, and no allocations.
func (a *activation) drain(s *System) {
	pf := s.prof
	var turns, execNs, waitNs, bytesIn uint64
	for i := 0; i < turnBatch; i++ {
		a.mu.Lock()
		if a.queueLen() == 0 || a.forwarded {
			a.scheduled = false
			rerouted := a.forwarded
			var pending []invocation
			if rerouted {
				pending = a.takePending()
			}
			a.mu.Unlock()
			for _, inv := range pending {
				s.forwardInvocation(a.ref, inv)
			}
			if pf != nil && turns > 0 {
				pf.ObserveTurns(a.refH, a.ref.Type, a.ref.Key, turns, execNs, waitNs, bytesIn)
			}
			return
		}
		inv := a.pop()
		a.mu.Unlock()

		a.turnMu.Lock()
		// A migration may have retired this activation while we waited for
		// the turn lock (Migrate holds it during the state snapshot); the
		// dequeued invocation must chase the actor, not run on the stale
		// instance.
		a.mu.Lock()
		rerouted := a.forwarded
		a.mu.Unlock()
		if rerouted {
			a.turnMu.Unlock()
			s.forwardInvocation(a.ref, inv)
			continue
		}
		ctx := &Context{sys: s, self: a.ref}
		var sampled bool
		if pf != nil {
			turns++
			bytesIn += uint64(len(inv.args))
			a.profSeq++
			sampled = a.profSeq&(profSample-1) == 0
		}
		var tstart time.Time
		timed := inv.trc != nil || sampled
		if timed {
			tstart = time.Now()
		}
		if inv.trc != nil {
			inv.trc.workQueue = tstart.Sub(inv.trc.enqueuedAt)
			ctx.trc = inv.trc.ctx()
		}
		if pf != nil && !inv.at.IsZero() {
			// A wait-stamped invocation stands in for profSample of them.
			now := tstart
			if !timed {
				now = time.Now()
			}
			waitNs += uint64(now.Sub(inv.at)) * profSample
		}
		data, val, err, panicked := a.invoke(ctx, inv)
		if timed {
			d := time.Since(tstart)
			if sampled {
				execNs += uint64(d) * profSample
			}
			if inv.trc != nil {
				inv.trc.exec = d
				inv.trc.epoch = a.epoch
			}
		}
		var snapJob func()
		if a.durable && !panicked {
			// Durability hook, still under the turn lock: count the dirty
			// turn and, past the dirty-count or staleness threshold, capture
			// the state (one deep copy — encode and ship run on the
			// snapshotter pool, never here).
			a.dirty++
			if a.dirty >= s.cfg.SnapshotEvery || time.Since(a.lastSnap) >= s.cfg.SnapshotInterval {
				if snapJob = s.captureSnapshotLocked(a); snapJob != nil && inv.trc != nil {
					inv.trc.snapshot = true
				}
			}
		}
		a.turnMu.Unlock()
		if panicked {
			// Panic isolation: the instance may hold corrupt state, so
			// retire it (the caller gets an error reply, not a dead node;
			// the next call re-activates a fresh instance).
			s.isolatePanic(a)
		}
		inv.respond(data, val, err)
		if snapJob != nil {
			// Hand the captured state to the snapshotter pool after the
			// reply is on its way. A full queue drops the capture (counted);
			// the next dirty turn re-triggers, and full-state snapshots make
			// the skipped one subsumed, not lost.
			if !s.snapPool.TrySubmit(snapJob) {
				s.durables.CaptureDropped.Add(1)
			}
		}
	}
	if pf != nil && turns > 0 {
		pf.ObserveTurns(a.refH, a.ref.Type, a.ref.Key, turns, execNs, waitNs, bytesIn)
	}
	// Batch exhausted: yield the worker and reschedule.
	a.mu.Lock()
	if a.queueLen() == 0 && !a.forwarded {
		a.scheduled = false
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	a.schedule(s)
}

// invoke executes one turn against the actor instance, with the panicking
// method recovered into an error result (panicked=true) instead of taking
// the whole node down. Called with turnMu held.
func (a *activation) invoke(ctx *Context, inv invocation) (data []byte, val interface{}, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			data, val = nil, nil
			err = fmt.Errorf("actor: panic in %s.%s: %v", a.ref, inv.method, r)
			panicked = true
		}
	}()
	if inv.isVal {
		// Zero-copy local turn: args were isolated by the caller via
		// CopyValue; the result is isolated here, inside the turn,
		// before the actor can mutate it again.
		val, err = a.actor.(ValueReceiver).ReceiveValue(ctx, inv.method, inv.argsVal)
		if err == nil && val != nil {
			if c, ok := val.(codec.Copier); ok {
				val = c.CopyValue()
			} else {
				// No Copier on the result: fall back to serialization
				// for isolation (decoded by the caller).
				data, err = codec.Marshal(val)
				val = nil
			}
		}
		return data, val, err, false
	}
	data, err = a.actor.Receive(ctx, inv.method, inv.args)
	return data, nil, err, false
}

// isolatePanic retires an activation whose method panicked. The faulty
// instance is dropped (not snapshotted — its state is suspect), queued
// invocations re-route, and the directory still points here, so the next
// call builds a fresh instance from the factory.
func (s *System) isolatePanic(a *activation) {
	s.failures.Panics.Add(1)
	// A panic is both a flight event and an anomaly trigger: the dump
	// captures what the runtime was doing when the actor blew up.
	s.flight.Trigger(flight.KindPanic, a.ref.String())
	sh := s.shardOf(a.ref)
	sh.mu.Lock()
	if cur, ok := sh.activations[a.ref]; ok && cur == a {
		delete(sh.activations, a.ref)
		delete(sh.locCache, a.ref)
	}
	sh.mu.Unlock()
	a.mu.Lock()
	a.forwarded = true
	pending := a.takePending()
	a.mu.Unlock()
	for _, inv := range pending {
		s.forwardInvocation(a.ref, inv)
	}
}

// activationFor returns the local activation for ref, creating it on demand
// when this node is (or becomes) the registered host. It returns (nil, nil)
// when the actor is hosted elsewhere — the caller redirects. routed
// distinguishes how we got here: a routed call (some caller already
// resolved this node as the host) re-confirms through locateDir —
// tombstones and directory authority, never the location cache — so that a
// stale cached route can neither bounce callers away from their rightful
// home forever nor (thanks to the tombstone check) re-instantiate an actor
// whose state just migrated out. Unrouted probes (the zero-copy fast path
// asking "is it co-located?") keep the cheap cache answer: the cache never
// holds self-routes (cacheInsertLocked), so it cannot trigger a spurious
// local activation — at worst the probe declines and the call takes the
// routed path.
func (s *System) activationFor(ref Ref, activate, routed bool) (*activation, error) {
	h := refHash(ref)
	sh := &s.state[h&(stateShardCount-1)]
	sh.mu.RLock()
	act, ok := sh.activations[ref]
	sh.mu.RUnlock()
	if ok {
		return act, nil
	}
	s.mu.RLock()
	factory, typeOK := s.types[ref.Type]
	s.mu.RUnlock()
	if !typeOK {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, ref.Type)
	}
	if !activate {
		return nil, nil
	}
	resolve := s.locate
	if routed {
		resolve = s.locateDir
	}
	node, err := resolve(ref, true, time.Now().Add(s.cfg.CallTimeout))
	if err != nil {
		return nil, err
	}
	if node != s.Node() {
		return nil, nil
	}
	// We are the host: instantiate (actor virtualization — §2).
	inst := factory()
	act = &activation{ref: ref, refH: refHash(ref), actor: inst, durable: s.isDurable(inst), lastSnap: time.Now()}
	if act.durable {
		// Recovery gate: a Durable actor activating here may be a failover
		// re-activation of state that died with its old host. Consult the
		// replica set BEFORE admitting the first turn — the pull happens
		// outside every lock, and an unreachable replica set fails the
		// activation (callers see a retryable pause, not amnesia).
		rec, rerr := s.recoverSnapshot(ref)
		if rerr != nil {
			return nil, rerr
		}
		if rec != nil {
			if err := inst.(Migratable).Restore(rec.State); err != nil {
				return nil, fmt.Errorf("actor: restore %s from replica snapshot: %w", ref, err)
			}
			// The recovered incarnation sits one epoch past the one that
			// captured, so its own snapshots (and directory updates)
			// outrank every resident replica copy — the failover-purge
			// analog of migration's transfer-as-commit epoch roll.
			act.epoch = rec.Epoch + 1
		}
	}
	// The activation record, its vertex mapping, and (by key) its
	// directory/cache state all live in the ref's shard, so the
	// double-checked install is a single shard lock.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if again, ok := sh.activations[ref]; ok {
		return again, nil
	}
	sh.activations[ref] = act
	sh.vertexRefs[h] = ref
	// Any leftover tombstone is obsolete the moment a live activation
	// exists here: the chain came back around.
	delete(sh.forwards, ref)
	return act, nil
}

// forwardInvocation re-routes an invocation that raced with a migration or
// a panic-retirement. Value invocations are serialized at this point: the
// actor moved to another node (or is moving), so the zero-copy path no
// longer applies. The forwarding goroutine is tracked so Stop can wait it
// out; after Stop the invocation fails with ErrStopped instead.
func (s *System) forwardInvocation(ref Ref, inv invocation) {
	run := func() {
		args := inv.args
		if inv.isVal {
			var err error
			if args, err = marshalArgs(inv.argsVal); err != nil {
				inv.respond(nil, nil, err)
				return
			}
		}
		data, err, _ := s.dispatchRetry(ref, inv.method, args, nil)
		inv.respond(data, nil, err)
	}
	if !s.trackGo(run) {
		inv.respond(nil, nil, ErrStopped)
	}
}

// LocalRefs lists the refs of actors activated on this node.
func (s *System) LocalRefs() []Ref {
	out := make([]Ref, 0, 64)
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		for ref := range sh.activations {
			out = append(out, ref)
		}
		sh.mu.RUnlock()
	}
	return out
}

// HostsActor reports whether this node currently hosts ref.
func (s *System) HostsActor(ref Ref) bool {
	sh := s.shardOf(ref)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.activations[ref]
	return ok
}

// Deactivate removes a local activation and unregisters it from the
// directory (the next call re-instantiates it somewhere per policy).
func (s *System) Deactivate(ref Ref) error {
	sh := s.shardOf(ref)
	sh.mu.Lock()
	act, ok := sh.activations[ref]
	if ok {
		delete(sh.activations, ref)
		delete(sh.locCache, ref)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("actor: %s not active here", ref)
	}
	act.mu.Lock()
	act.forwarded = true // stragglers re-route through the directory
	act.mu.Unlock()
	s.monMu.Lock()
	s.monitor.ForgetVertex(ref.Vertex())
	s.monMu.Unlock()
	return s.controlCall(s.directoryOwner(ref), ctlDirRemove,
		dirRequest{Type: ref.Type, Key: ref.Key}, nil)
}
