package actor

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/durable"
	"actop/internal/transport"
)

// durableCounter is counterActor with the Durable opt-in and the Copier
// fast-capture path (the copy under the turn lock is one struct copy; the
// gob encode runs on the snapshotter pool).
type durableCounter struct{ counterActor }

func (d *durableCounter) DurableActor() {}

func (d *durableCounter) CopyValue() interface{} {
	return &durableCounter{counterActor: counterActor{N: d.N}}
}

// newDurableCluster is newFaultyCluster plus durability: K replicas, a
// 1-turn capture threshold (every turn snapshots — tests want determinism,
// not amortization), and the durable counter type registered.
func newDurableCluster(t *testing.T, n, replicas int, tweak func(*Config)) ([]*System, []*transport.Flaky) {
	t.Helper()
	sys, flakies := newFaultyCluster(t, n, PlaceRandom, func(c *Config) {
		c.DurableReplicas = replicas
		c.SnapshotEvery = 1
		c.SnapshotInterval = time.Minute
		if tweak != nil {
			tweak(c)
		}
	})
	for _, s := range sys {
		s.RegisterType("dcounter", func() Actor { return &durableCounter{} })
	}
	return sys, flakies
}

// TestDurableRecoveryAfterKill is the durability acceptance inverse of
// TestKillNodeFailover: with snapshots flushed before the node dies, a
// victim-hosted durable actor re-activates on a survivor WITH its state —
// the post-kill Add observes the warmup increment (2, not the amnesiac 1).
func TestDurableRecoveryAfterKill(t *testing.T) {
	sys, flakies := newDurableCluster(t, 3, 1, nil)
	victim := 2
	victimID := sys[victim].Node()

	const actors = 12
	hosts := make(map[string]transport.NodeID, actors)
	for k := 0; k < actors; k++ {
		ref := Ref{Type: "dcounter", Key: fmt.Sprintf("dr-%d", k)}
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			t.Fatalf("warmup %s: %v", ref, err)
		}
		var where string
		if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
			t.Fatalf("locate %s: %v", ref, err)
		}
		hosts[ref.Key] = transport.NodeID(where)
	}
	onVictim := 0
	for _, h := range hosts {
		if h == victimID {
			onVictim++
		}
	}
	if onVictim == 0 {
		t.Fatalf("random placement put no actor on %s; adjust seeds", victimID)
	}

	// Flush every dirty durable actor to its replicas, then hard-kill. The
	// captures above already shipped asynchronously; the sync pass closes
	// any pool-queue race so the oracle below is exact.
	sys[victim].SyncSnapshots()
	flakies[victim].Kill()
	waitPeerState(t, sys[0], victimID, PeerDead, 5*time.Second)
	waitPeerState(t, sys[1], victimID, PeerDead, 5*time.Second)

	lost := 0
	for k := 0; k < actors; k++ {
		ref := Ref{Type: "dcounter", Key: fmt.Sprintf("dr-%d", k)}
		var got int
		if err := sys[0].Call(ref, "Add", 1, &got); err != nil {
			t.Fatalf("post-kill call %s (hosted on %s): %v", ref, hosts[ref.Key], err)
		}
		if got != 2 {
			lost++
			t.Errorf("%s (was on %s) = %d after recovery, want 2 (warmup survived + exactly-once)",
				ref, hosts[ref.Key], got)
		}
	}
	if lost > 0 {
		t.Errorf("%d/%d durable actors lost state", lost, actors)
	}
	var recovered uint64
	for _, i := range []int{0, 1} {
		d := sys[i].Durables()
		recovered += d.RecoveredWithState
	}
	if recovered == 0 {
		t.Error("no survivor recorded a snapshot recovery")
	}
}

// TestDurabilityOffLosesState documents the loss durability fixes: the same
// kill without replicas resurrects victim-hosted actors with zero state.
func TestDurabilityOffLosesState(t *testing.T) {
	sys, flakies := newDurableCluster(t, 3, 0, nil)
	victim := 2
	victimID := sys[victim].Node()

	const actors = 12
	hosts := make(map[string]transport.NodeID, actors)
	for k := 0; k < actors; k++ {
		ref := Ref{Type: "dcounter", Key: fmt.Sprintf("dl-%d", k)}
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			t.Fatal(err)
		}
		var where string
		if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
			t.Fatal(err)
		}
		hosts[ref.Key] = transport.NodeID(where)
	}
	flakies[victim].Kill()
	waitPeerState(t, sys[0], victimID, PeerDead, 5*time.Second)

	amnesiac := 0
	for k := 0; k < actors; k++ {
		ref := Ref{Type: "dcounter", Key: fmt.Sprintf("dl-%d", k)}
		var got int
		if err := sys[0].Call(ref, "Add", 1, &got); err != nil {
			t.Fatal(err)
		}
		if hosts[ref.Key] == victimID && got == 1 {
			amnesiac++
		}
	}
	if amnesiac == 0 {
		t.Error("expected victim-hosted actors to lose state with DurableReplicas=0")
	}
}

// TestSnapEpochOrdering mirrors the PR 3 directory split-brain test at the
// snapshot plane: a delayed actop.snap from a pre-migration incarnation
// arriving after the new incarnation's first snapshot must be rejected,
// whatever its sequence number says.
func TestSnapEpochOrdering(t *testing.T) {
	sys, _ := newDurableCluster(t, 2, 1, nil)
	s := sys[0]
	put := func(epoch, seq uint64, state string) {
		t.Helper()
		payload := durable.AppendRecord(nil, durable.Record{
			Type: "dcounter", Key: "eo", Epoch: epoch, Seq: seq, State: []byte(state),
		})
		if _, err := s.handleControlVerb(ctlSnap, payload, sys[1].Node()); err != nil {
			t.Fatalf("snap put (epoch %d, seq %d): %v", epoch, seq, err)
		}
	}

	// The new incarnation (post-migration, epoch 1) snapshots first...
	put(1, 1, "new")
	// ...then the network finally delivers the old incarnation's last
	// capture — higher seq, older epoch. It must lose.
	put(0, 9, "stale")
	// Reordering within one incarnation is rejected too.
	put(1, 1, "replay")

	rec, ok := s.snapStore.Get("dcounter", "eo")
	if !ok || string(rec.State) != "new" {
		t.Fatalf("resident snapshot = %+v (ok=%v), want the epoch-1 record", rec, ok)
	}
	d := s.Durables()
	if d.ReplicaAccepted != 1 {
		t.Errorf("ReplicaAccepted = %d, want 1", d.ReplicaAccepted)
	}
	if d.ReplicaStale != 2 {
		t.Errorf("ReplicaStale = %d, want 2 (delayed epoch + replayed seq)", d.ReplicaStale)
	}

	// The fetch side of recovery reads the same record back over the verb.
	req, _ := codec.Marshal(dirRequest{Type: "dcounter", Key: "eo"})
	out, err := s.handleControlVerb(ctlSnapGet, req, sys[1].Node())
	if err != nil {
		t.Fatal(err)
	}
	got, err := durable.DecodeRecord(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.Seq != 1 || string(got.State) != "new" {
		t.Fatalf("snapget returned %+v, want epoch 1 seq 1 state \"new\"", got)
	}
}

// TestRecoveryStampedeBounded pins the failover-stampede semaphore: with
// RecoveryConcurrency 1 and the only slot held, a recovery pull must record
// a throttle and wait for the slot rather than fanning out immediately.
func TestRecoveryStampedeBounded(t *testing.T) {
	sys, _ := newDurableCluster(t, 1, 1, func(c *Config) {
		c.RecoveryConcurrency = 1
	})
	s := sys[0]

	// Occupy the single recovery slot.
	s.recoverySem <- struct{}{}

	done := make(chan error, 1)
	go func() {
		// First activation of a durable actor consults the replica set —
		// through the semaphore.
		done <- s.Call(Ref{Type: "dcounter", Key: "st"}, "Add", 1, nil)
	}()

	// The pull must throttle (counter) and block (no completion).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && s.Durables().RecoveryThrottled == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Durables().RecoveryThrottled == 0 {
		t.Fatal("recovery pull never hit the semaphore throttle")
	}
	select {
	case err := <-done:
		t.Fatalf("recovery proceeded with the semaphore held (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the slot: the blocked pull acquires it and the call lands.
	<-s.recoverySem
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call after semaphore release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after the semaphore freed")
	}
	if got := s.Durables().Recoveries; got == 0 {
		t.Errorf("Recoveries = %d, want > 0", got)
	}
}

// TestMigrationPiggybacksSnapSeq checks a transfer carries the snapshot
// sequence so the new incarnation's captures extend, not restart, the
// (epoch, seq) chain.
func TestMigrationPiggybacksSnapSeq(t *testing.T) {
	sys, _ := newDurableCluster(t, 2, 1, nil)
	ref := Ref{Type: "dcounter", Key: "mig"}
	// Three turns at SnapshotEvery=1 → three captures on the host.
	var where string
	for i := 0; i < 3; i++ {
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
		t.Fatal(err)
	}
	var src, dst *System
	for _, s := range sys {
		if s.Node() == transport.NodeID(where) {
			src = s
		} else {
			dst = s
		}
	}
	srcAct, _ := src.activationFor(ref, false, false)
	if srcAct == nil {
		t.Fatalf("no activation on reported host %s", where)
	}
	srcAct.turnMu.Lock()
	wantSeq := srcAct.snapSeq
	wantEpoch := srcAct.epoch
	srcAct.turnMu.Unlock()
	if wantSeq == 0 {
		t.Fatal("host captured no snapshots before migration")
	}
	if err := src.Migrate(ref, dst.Node()); err != nil {
		t.Fatal(err)
	}
	dstAct, _ := dst.activationFor(ref, false, false)
	if dstAct == nil {
		t.Fatalf("no activation on %s after migrate", dst.Node())
	}
	if dstAct.snapSeq != wantSeq {
		t.Errorf("migrated snapSeq = %d, want %d (piggybacked)", dstAct.snapSeq, wantSeq)
	}
	if dstAct.epoch != wantEpoch+1 {
		t.Errorf("migrated epoch = %d, want %d", dstAct.epoch, wantEpoch+1)
	}
	if !dstAct.durable {
		t.Error("migrated activation lost its durable mark")
	}
}

// TestDurableOverheadGuard is the acceptance overhead bound: with snapshots
// enabled at the default interval, hot-path call latency stays within 5% of
// durability-off. Wall-clock comparisons flake on loaded CI machines, so it
// runs only under ACTOP_OVERHEAD_GUARD=1 (same gating as the trace-overhead
// guard); actop-bench recovery records the same ratio into
// BENCH_recovery.json on every bench run.
func TestDurableOverheadGuard(t *testing.T) {
	if os.Getenv("ACTOP_OVERHEAD_GUARD") != "1" {
		t.Skip("set ACTOP_OVERHEAD_GUARD=1 to enforce the durability overhead bound")
	}
	// One system per mode, measured in interleaved rounds with the minimum
	// kept per mode: phase-separated measurement lets CPU frequency and
	// background load drift between the two modes and swamp a 5% bound.
	build := func(replicas int) *System {
		id := transport.NodeID(fmt.Sprintf("ov-%d", replicas))
		net := transport.NewNetwork(0)
		sys, err := NewSystem(Config{
			Transport: net.Join(id), Peers: []transport.NodeID{id},
			DurableReplicas: replicas, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Stop)
		sys.RegisterType("dcounter", func() Actor { return &durableCounter{} })
		if err := sys.Call(Ref{Type: "dcounter", Key: "hot"}, "Add", 1, nil); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	const calls = 5000
	round := func(sys *System) time.Duration {
		ref := Ref{Type: "dcounter", Key: "hot"}
		start := time.Now()
		for i := 0; i < calls; i++ {
			if err := sys.Call(ref, "Add", 1, nil); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / calls
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	offSys, onSys := build(0), build(1)
	round(offSys) // warm both before timing
	round(onSys)
	const rounds = 15
	var offs, ons []time.Duration
	for i := 0; i < rounds; i++ {
		offs = append(offs, round(offSys))
		ons = append(ons, round(onSys))
	}
	off, on := median(offs), median(ons)
	ratio := float64(on) / float64(off)
	t.Logf("hot-path per-call: durability off %v, on %v (ratio %.3f)", off, on, ratio)
	if ratio > 1.05 {
		t.Errorf("durability overhead ratio %.3f exceeds 1.05 (off %v, on %v)", ratio, off, on)
	}
}

// TestSyncSnapshotsFlushes checks the synchronous flush captures dirty
// durable state and lands it on replicas.
func TestSyncSnapshotsFlushes(t *testing.T) {
	sys, _ := newDurableCluster(t, 2, 1, func(c *Config) {
		c.SnapshotEvery = 1000 // no turn-path captures: only the flush
	})
	ref := Ref{Type: "dcounter", Key: "fl"}
	var where string
	if err := sys[0].Call(ref, "Add", 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
		t.Fatal(err)
	}
	var host, other *System
	for _, s := range sys {
		if s.Node() == transport.NodeID(where) {
			host = s
		} else {
			other = s
		}
	}
	if n := host.SyncSnapshots(); n != 1 {
		t.Fatalf("SyncSnapshots flushed %d actors, want 1", n)
	}
	rec, ok := other.snapStore.Get(ref.Type, ref.Key)
	if !ok {
		t.Fatal("flush shipped nothing to the replica")
	}
	var n int
	if err := codec.Unmarshal(rec.State, &n); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("replica state = %d, want 7", n)
	}
	// A second flush with nothing dirty is a no-op.
	if n := host.SyncSnapshots(); n != 0 {
		t.Fatalf("idle SyncSnapshots flushed %d actors, want 0", n)
	}
}
