package actor

import (
	"fmt"
	"sync"
	"time"

	"actop/internal/codec"
	"actop/internal/flight"
	"actop/internal/graph"
	"actop/internal/partition"
	"actop/internal/transport"
)

// migratePayload is the wire form of a live-migration state transfer. ID
// uniquely names one transfer attempt (initiator node + sequence), so that
// a later cleanup ("drop") can never remove an activation installed by a
// different, successful migration.
type migratePayload struct {
	Type, Key string
	ID        string
	Epoch     uint64
	// SnapSeq piggybacks the source incarnation's durable snapshot sequence
	// so the new host continues the (epoch, seq) chain without an immediate
	// full re-send: the transferred state IS the latest snapshot.
	SnapSeq  uint64
	HasState bool
	State    []byte
}

// migrationID names one transfer attempt uniquely across the cluster.
func (s *System) migrationID() string {
	return fmt.Sprintf("%s#%d", s.Node(), s.nextID.Add(1))
}

// Migrate moves a locally hosted actor to another node, transparently to
// callers (§4.3): the state transfers, the directory updates, stragglers
// chase redirects, and queued invocations are re-routed.
//
// Failure semantics under an unreliable network: the transfer is the
// commit point. If the transfer call fails (which includes "the peer
// installed the copy but the ack was lost"), the local activation stays
// authoritative, the directory is untouched, and a best-effort ID-matched
// drop retires any orphan copy on the peer — so callers keep getting
// correct answers from this node throughout. If the transfer succeeds, the
// migration completes locally even when the directory update is lost: this
// node's location cache redirects stragglers to the new home, and the
// directory update retries in the background until the owner applies it.
func (s *System) Migrate(ref Ref, to transport.NodeID) error {
	if to == s.Node() {
		return nil
	}
	if !s.cfg.DisableFailover && s.PeerStateOf(to) != PeerAlive {
		// Never ship state toward a node the detector distrusts: a transfer
		// into a dying node strands the actor behind its failover.
		return fmt.Errorf("%w: migrate %s to %s (%s)", errPeerDown, ref, to, s.PeerStateOf(to))
	}
	sh := s.shardOf(ref)
	sh.mu.RLock()
	act, ok := sh.activations[ref]
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("actor: %s not active on %s", ref, s.Node())
	}

	// Quiesce: no turn may run while the state is captured.
	act.turnMu.Lock()
	defer act.turnMu.Unlock()

	// Re-check under the turn lock: a concurrent Migrate (an exchange
	// counter-move racing a directly requested move) may have retired this
	// activation while we waited. Shipping the stale copy would install the
	// actor on two nodes at once.
	sh.mu.RLock()
	current := sh.activations[ref]
	sh.mu.RUnlock()
	if current != act {
		return fmt.Errorf("actor: %s no longer active on %s", ref, s.Node())
	}

	// Authority check for migrated-in actors: only the directory-confirmed
	// home may move one onward. Without this, a copy installed by a transfer
	// whose ack was lost (an orphan awaiting ID-matched cleanup) could
	// launder itself to a third node the cleanup will never visit. The local
	// cache cannot be trusted here — installing the copy is exactly what
	// seeded it — so ask the directory owner directly; refusing on error is
	// always safe (migration is an optimization, not an obligation).
	if act.installID != "" {
		var home string
		//actoplint:ignore lockheldio migration quiesces the turn by design; controlCall is timeout-bounded, so the hold is finite
		if err := s.controlCall(s.directoryOwner(ref), ctlDirLookup,
			dirRequest{Type: ref.Type, Key: ref.Key}, &home); err != nil {
			return fmt.Errorf("actor: cannot confirm home of %s: %w", ref, err)
		}
		if transport.NodeID(home) != s.Node() {
			return fmt.Errorf("actor: %s is not the confirmed home of %s (directory says %s)",
				s.Node(), ref, home)
		}
	}

	// The transferred incarnation is one step further down the migration
	// chain; its epoch versions the directory update below.
	payload := migratePayload{Type: ref.Type, Key: ref.Key, ID: s.migrationID(), Epoch: act.epoch + 1, SnapSeq: act.snapSeq}
	if m, ok := act.actor.(Migratable); ok {
		state, err := m.Snapshot()
		if err != nil {
			return fmt.Errorf("actor: snapshot %s: %w", ref, err)
		}
		payload.HasState = true
		payload.State = state
	}
	//actoplint:ignore lockheldio the transfer must complete under the turn lock (transfer-as-commit-point); controlCall is timeout-bounded
	if err := s.controlCall(to, ctlMigratePut, payload, nil); err != nil {
		// The put may have landed with only the ack lost: retire any copy
		// it installed (matched by ID, so a different migration's install
		// is never harmed). Until that lands, the directory still points
		// here and remote callers stay correct; the drop closes the one
		// split-brain window — calls originated on the peer itself.
		s.dropOrphan(to, ref, payload.ID)
		return fmt.Errorf("actor: transfer %s to %s: %w", ref, to, err)
	}
	// The transfer is committed: from here the peer's copy is the actor.
	// Leave the forwarding tombstone (and cache route) before anything
	// else, so straggler deliveries chase the new home immediately — and so
	// routed resolution here cannot follow a directory entry that still
	// names this node into a fresh split-brain incarnation while the update
	// below is in flight.
	s.recordForward(ref, to)

	// Point the directory at the new home BEFORE retiring the local
	// activation. Until the owner confirms, directory-routed calls still
	// land here — where they enqueue on the (quiesced) activation and
	// re-route once it retires. Retiring first opened a split-brain: with
	// the directory still naming this node and the cache redirect evicted
	// (clock pressure, a failover purge, a timeout invalidation), a routed
	// call found no activation, re-resolved through the stale directory,
	// and re-instantiated a FRESH actor here while the real state lived on
	// the peer. A lost update still degrades to that window (background
	// retry until the owner applies it); the epoch guard keeps late
	// retries from rewinding newer migrations.
	update := dirRequest{Type: ref.Type, Key: ref.Key, NewNode: string(to), Epoch: payload.Epoch}
	//actoplint:ignore lockheldio directory update is ordered before releasing the turn lock so a new turn cannot race it; timeout-bounded with a background retry fallback
	if err := s.controlCall(s.directoryOwner(ref), ctlDirUpdate, update, nil); err != nil {
		s.trackGo(func() { s.retryDirUpdate(ref, update) })
	}

	// Retire the local activation; queued invocations re-route.
	sh.mu.Lock()
	delete(sh.activations, ref)
	sh.mu.Unlock()
	act.mu.Lock()
	act.forwarded = true
	pending := act.takePending()
	act.mu.Unlock()
	for _, inv := range pending {
		s.forwardInvocation(ref, inv)
	}

	// The statistics travel with the actor: drop our copy (the new host
	// rebuilds from live traffic; §4.3).
	s.monMu.Lock()
	s.monitor.ForgetVertex(ref.Vertex())
	s.monMu.Unlock()

	s.migrationsOut.Add(1)
	if s.prof != nil {
		s.prof.ObserveMigration(refHash(ref))
	}
	s.flight.Record(flight.Event{Kind: flight.KindMigrationOut, Actor: ref.String(), Peer: string(to)})
	return nil
}

// sleepOrDone pauses for d, returning false immediately if the system stops
// first — the gate every background retry loop waits through.
func (s *System) sleepOrDone(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

// retryDirUpdate re-sends a lost directory update with capped backoff until
// it lands or the system stops. It must not give up: the source's
// forwarding tombstone expires, and after that a directory entry still
// naming the old home re-instantiates the actor there on the next routed
// call — a permanent split brain. The owner is recomputed every attempt so
// an update outlives the owner's death (the entry rehashes to a survivor).
// Runs on a tracked goroutine so Stop waits it out.
func (s *System) retryDirUpdate(ref Ref, update dirRequest) {
	backoff := 200 * time.Millisecond
	for {
		if !s.sleepOrDone(backoff) {
			return
		}
		if s.controlCall(s.directoryOwner(ref), ctlDirUpdate, update, nil) == nil {
			return
		}
		if backoff < time.Second {
			backoff += 200 * time.Millisecond
		}
	}
}

// dropOrphan asks node to remove an activation installed by migration id,
// retrying in the background with capped backoff until the drop is
// acknowledged, the node is declared dead (death retires the orphan with
// everything else on it), or this node stops. The same network faults that
// failed the transfer can swallow any bounded number of drops, so cleanup
// keeps trying; the ID match makes arbitrarily late or duplicated drops
// safe.
func (s *System) dropOrphan(node transport.NodeID, ref Ref, id string) {
	s.trackGo(func() {
		backoff := 100 * time.Millisecond
		for attempt := 0; attempt < 50; attempt++ {
			if !s.cfg.DisableFailover && s.PeerStateOf(node) == PeerDead {
				return
			}
			if s.controlCall(node, ctlMigrateDrop, migratePayload{
				Type: ref.Type, Key: ref.Key, ID: id,
			}, nil) == nil {
				return
			}
			if !s.sleepOrDone(backoff) {
				return
			}
			if backoff < 500*time.Millisecond {
				backoff += 100 * time.Millisecond
			}
		}
	})
}

// handleMigratePut installs an inbound migrated actor. A duplicate put for
// the same migration ID (a retried transfer whose first attempt landed) is
// acknowledged idempotently.
func (s *System) handleMigratePut(payload []byte) ([]byte, error) {
	var p migratePayload
	if err := codec.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	ref := Ref{Type: p.Type, Key: p.Key}
	s.mu.RLock()
	factory, ok := s.types[ref.Type]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, ref.Type)
	}
	h := refHash(ref)
	sh := &s.state[h&(stateShardCount-1)]
	sh.mu.Lock()
	if existing, exists := sh.activations[ref]; exists {
		installID := existing.installID
		sh.mu.Unlock()
		if installID != "" && installID == p.ID {
			return codec.Marshal(ctlPlacementOK) // duplicate of our own install
		}
		return nil, fmt.Errorf("actor: %s already active on %s", ref, s.Node())
	}
	inst := factory()
	if p.HasState {
		m, ok := inst.(Migratable)
		if !ok {
			sh.mu.Unlock()
			return nil, fmt.Errorf("actor: %s carries state but type is not Migratable", ref)
		}
		if err := m.Restore(p.State); err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("actor: restore %s: %w", ref, err)
		}
	}
	sh.activations[ref] = &activation{
		ref: ref, refH: h, actor: inst, installID: p.ID, epoch: p.Epoch,
		durable: s.isDurable(inst), snapSeq: p.SnapSeq, lastSnap: time.Now(),
	}
	s.cacheInsertLocked(sh, ref, s.Node())
	sh.vertexRefs[h] = ref
	// A tombstone left by an earlier outbound migration of this ref is
	// obsolete: the chain came back, and the live activation now answers.
	delete(sh.forwards, ref)
	sh.mu.Unlock()
	s.migrationsIn.Add(1)
	if s.prof != nil {
		s.prof.ObserveMigration(h)
	}
	s.flight.Record(flight.Event{Kind: flight.KindMigrationIn, Actor: ref.String(), N: p.Epoch})
	return codec.Marshal(ctlPlacementOK)
}

// handleMigrateDrop retires an activation installed by a failed migration
// attempt: the initiator never observed the ack, kept authority at the old
// home, and is now disposing of the orphan copy. The ID match guarantees a
// drop — however delayed or duplicated by the network — can only remove
// the exact install it was issued against. The location-cache entry the
// install created is cleared too, so this node re-resolves the actor
// through the directory (which still points at the authoritative home).
func (s *System) handleMigrateDrop(payload []byte) ([]byte, error) {
	var p migratePayload
	if err := codec.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	ref := Ref{Type: p.Type, Key: p.Key}
	sh := s.shardOf(ref)
	sh.mu.Lock()
	act, exists := sh.activations[ref]
	if exists && act.installID != "" && act.installID == p.ID {
		delete(sh.activations, ref)
		delete(sh.locCache, ref)
		sh.mu.Unlock()
		// Straggler invocations queued on the orphan re-route through the
		// directory back to the authoritative home.
		act.mu.Lock()
		act.forwarded = true
		pending := act.takePending()
		act.mu.Unlock()
		for _, inv := range pending {
			s.forwardInvocation(ref, inv)
		}
		return codec.Marshal(ctlPlacementOK)
	}
	sh.mu.Unlock()
	return codec.Marshal(ctlPlacementOK) // nothing to drop: already gone or not ours
}

// --- ActOp partition-exchange integration (Algorithm 1 over the wire) ---

// wireCandidate mirrors partition.Candidate for gob transfer.
type wireCandidate struct {
	V            uint64
	Edges        map[uint64]float64
	HomeWeight   float64
	TargetWeight float64
}

// exchangeWire is the ctlExchange request payload.
type exchangeWire struct {
	FromIndex      int // initiator's index in the sorted peer list
	Candidates     []wireCandidate
	FromPopulation int
	Opts           wireOpts
}

// wireOpts carries the initiator's partitioning parameters so both sides
// decide under the same configuration.
type wireOpts struct {
	CandidateSetSize   int
	ImbalanceTolerance int
	MinScore           float64
}

// exchangeReply is the ctlExchange response payload.
type exchangeReply struct {
	Rejected bool
	Accepted []uint64 // initiator's vertices the peer will host
	Counter  []uint64 // peer's vertices it is sending to the initiator
}

var exchangeMu sync.Mutex // serializes exchange decisions per process

// exchangeState tracks Algorithm 1's cooldown. Initiator rounds and inbound
// handleExchange calls touch it concurrently, so it carries its own lock.
type exchangeState struct {
	mu    sync.Mutex
	last  time.Time
	begun bool
}

var exchangeStates sync.Map // *System → *exchangeState

func (s *System) exchangeCooling(window time.Duration) bool {
	v, _ := exchangeStates.LoadOrStore(s, &exchangeState{})
	st := v.(*exchangeState)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.begun && time.Since(st.last) < window
}

func (s *System) markExchanged() {
	v, _ := exchangeStates.LoadOrStore(s, &exchangeState{})
	st := v.(*exchangeState)
	st.mu.Lock()
	st.begun = true
	st.last = time.Now()
	st.mu.Unlock()
}

// nodeIndex maps a peer NodeID to its graph.ServerID (index in the sorted
// peer list), the identifier space the partition package works in.
func (s *System) nodeIndex(n transport.NodeID) (graph.ServerID, bool) {
	for i, p := range s.peers {
		if p == n {
			return graph.ServerID(i), true
		}
	}
	return 0, false
}

// sysLocator adapts the node's placement knowledge (own activations + the
// location cache) to partition.Locator. Unknown actors simply don't
// contribute to transfer scores — the algorithm is built for partial views.
type sysLocator struct{ s *System }

// Server implements partition.Locator.
func (l sysLocator) Server(v graph.Vertex) (graph.ServerID, bool) {
	ref, ok := l.s.refOf(uint64(v))
	if !ok {
		return 0, false
	}
	sh := l.s.shardOf(ref)
	sh.mu.RLock()
	_, local := sh.activations[ref]
	var cached transport.NodeID
	e, hasCache := sh.locCache[ref]
	if hasCache {
		cached = e.node
	}
	sh.mu.RUnlock()
	if local {
		return l.s.selfIndex(), true
	}
	if hasCache {
		return l.s.nodeIndexOr(cached)
	}
	return 0, false
}

func (s *System) selfIndex() graph.ServerID {
	idx, _ := s.nodeIndex(s.Node())
	return idx
}

func (s *System) nodeIndexOr(n transport.NodeID) (graph.ServerID, bool) {
	return s.nodeIndex(n)
}

// localVertices lists the vertices of locally hosted actors.
func (s *System) localVertices() []graph.Vertex {
	out := make([]graph.Vertex, 0, 64)
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		for ref := range sh.activations {
			out = append(out, ref.Vertex())
		}
		sh.mu.RUnlock()
	}
	return out
}

// ExchangeRound runs one initiator round of Algorithm 1 from this node:
// select candidates from the local monitor, offer them to the best peer,
// and apply the agreed moves. It returns the number of actors migrated
// (both directions counted by the respective movers).
func (s *System) ExchangeRound(opts partition.Options, window time.Duration) (int, error) {
	if s.exchangeCooling(window) {
		return 0, nil
	}
	s.monMu.Lock()
	snap := s.monitor.Snapshot()
	s.monMu.Unlock()
	local := s.localVertices()
	self := s.selfIndex()
	props := partition.SelectCandidates(opts, snap, sysLocator{s: s}, self, local, len(local))
	for _, prop := range props {
		peerIdx := int(prop.To)
		if peerIdx < 0 || peerIdx >= len(s.peers) {
			continue
		}
		peer := s.peers[peerIdx]
		if !s.cfg.DisableFailover && s.PeerStateOf(peer) != PeerAlive {
			continue // never trade actors with a suspect or dead peer
		}
		wire := exchangeWire{
			FromIndex:      int(self),
			FromPopulation: prop.FromPopulation,
			Opts: wireOpts{
				CandidateSetSize:   opts.CandidateSetSize,
				ImbalanceTolerance: opts.ImbalanceTolerance,
				MinScore:           opts.MinScore,
			},
		}
		for _, c := range prop.Candidates {
			wc := wireCandidate{
				V: uint64(c.V), HomeWeight: c.HomeWeight, TargetWeight: c.TargetWeight,
				Edges: make(map[uint64]float64, len(c.Edges)),
			}
			for u, w := range c.Edges {
				wc.Edges[uint64(u)] = w
			}
			wire.Candidates = append(wire.Candidates, wc)
		}
		var reply exchangeReply
		if err := s.controlCall(peer, ctlExchange, wire, &reply); err != nil {
			return 0, err
		}
		if reply.Rejected {
			continue // try the next-best peer (Algorithm 1)
		}
		moved := 0
		for _, v := range reply.Accepted {
			ref, ok := s.refOf(v)
			if !ok {
				continue
			}
			if err := s.Migrate(ref, peer); err == nil {
				moved++
			}
		}
		moved += len(reply.Counter) // the peer migrates these toward us
		if moved > 0 {
			s.markExchanged()
			return moved, nil
		}
	}
	return 0, nil
}

// handleExchange is the receiving side of Algorithm 1 (steps 2–4).
func (s *System) handleExchange(payload []byte, from transport.NodeID) ([]byte, error) {
	var wire exchangeWire
	if err := codec.Unmarshal(payload, &wire); err != nil {
		return nil, err
	}
	if s.exchangeCooling(s.cfg.ExchangeRejectWindow) {
		return codec.Marshal(exchangeReply{Rejected: true})
	}
	if !s.cfg.DisableFailover && s.PeerStateOf(from) != PeerAlive {
		// An exchange proposal from a peer we distrust: accepting would ship
		// actors toward (or from) a node mid-failure. Reject; the initiator
		// retries a round later if it is actually healthy.
		return codec.Marshal(exchangeReply{Rejected: true})
	}
	opts := partition.Options{
		CandidateSetSize:   wire.Opts.CandidateSetSize,
		ImbalanceTolerance: wire.Opts.ImbalanceTolerance,
		MinScore:           wire.Opts.MinScore,
	}
	req := partition.ExchangeRequest{
		From: graph.ServerID(wire.FromIndex), To: s.selfIndex(),
		FromPopulation: wire.FromPopulation,
	}
	for _, wc := range wire.Candidates {
		c := partition.Candidate{
			V: graph.Vertex(wc.V), HomeWeight: wc.HomeWeight, TargetWeight: wc.TargetWeight,
			Edges: make(map[graph.Vertex]float64, len(wc.Edges)),
		}
		for u, w := range wc.Edges {
			c.Edges[graph.Vertex(u)] = w
		}
		req.Candidates = append(req.Candidates, c)
	}

	exchangeMu.Lock()
	s.monMu.Lock()
	snap := s.monitor.Snapshot()
	s.monMu.Unlock()
	local := s.localVertices()
	resp := partition.DecideExchange(opts, snap, sysLocator{s: s}, req, local, len(local))
	exchangeMu.Unlock()

	reply := exchangeReply{}
	for _, v := range resp.Accepted {
		reply.Accepted = append(reply.Accepted, uint64(v))
	}
	for _, v := range resp.Counter {
		reply.Counter = append(reply.Counter, uint64(v))
	}
	if len(reply.Accepted)+len(reply.Counter) > 0 {
		s.markExchanged()
	}
	// Counter-migrations run asynchronously: performing them inline would
	// block the receive stage on control round trips back to the initiator.
	if len(resp.Counter) > 0 {
		counters := append([]graph.Vertex(nil), resp.Counter...)
		s.trackGo(func() {
			for _, v := range counters {
				if ref, ok := s.refOf(uint64(v)); ok {
					_ = s.Migrate(ref, from)
				}
			}
		})
	}
	return codec.Marshal(reply)
}
