package actor

import (
	"fmt"
	"sync"
	"time"

	"actop/internal/codec"
	"actop/internal/graph"
	"actop/internal/partition"
	"actop/internal/transport"
)

// migratePayload is the wire form of a live-migration state transfer.
type migratePayload struct {
	Type, Key string
	HasState  bool
	State     []byte
}

// Migrate moves a locally hosted actor to another node, transparently to
// callers (§4.3): the state transfers, the directory updates, stragglers
// chase redirects, and queued invocations are re-routed.
func (s *System) Migrate(ref Ref, to transport.NodeID) error {
	if to == s.Node() {
		return nil
	}
	s.mu.RLock()
	act, ok := s.activations[ref]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("actor: %s not active on %s", ref, s.Node())
	}

	// Quiesce: no turn may run while the state is captured.
	act.turnMu.Lock()
	defer act.turnMu.Unlock()

	payload := migratePayload{Type: ref.Type, Key: ref.Key}
	if m, ok := act.actor.(Migratable); ok {
		state, err := m.Snapshot()
		if err != nil {
			return fmt.Errorf("actor: snapshot %s: %w", ref, err)
		}
		payload.HasState = true
		payload.State = state
	}
	if err := s.controlCall(to, ctlMigratePut, payload, nil); err != nil {
		return fmt.Errorf("actor: transfer %s to %s: %w", ref, to, err)
	}
	// Point the directory and our cache at the new home.
	if err := s.controlCall(s.directoryOwner(ref), ctlDirUpdate, dirRequest{
		Type: ref.Type, Key: ref.Key, NewNode: string(to),
	}, nil); err != nil {
		return fmt.Errorf("actor: directory update for %s: %w", ref, err)
	}
	s.cachePut(ref, to)

	// Retire the local activation; queued invocations re-route.
	s.mu.Lock()
	delete(s.activations, ref)
	s.mu.Unlock()
	act.mu.Lock()
	act.forwarded = true
	pending := act.queue
	act.queue = nil
	act.mu.Unlock()
	for _, inv := range pending {
		s.forwardInvocation(ref, inv)
	}

	// The statistics travel with the actor: drop our copy (the new host
	// rebuilds from live traffic; §4.3).
	s.monMu.Lock()
	s.monitor.ForgetVertex(ref.Vertex())
	s.monMu.Unlock()

	s.migrationsOut.Add(1)
	return nil
}

// handleMigratePut installs an inbound migrated actor.
func (s *System) handleMigratePut(payload []byte) ([]byte, error) {
	var p migratePayload
	if err := codec.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	ref := Ref{Type: p.Type, Key: p.Key}
	s.mu.Lock()
	factory, ok := s.types[ref.Type]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, ref.Type)
	}
	if _, exists := s.activations[ref]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("actor: %s already active on %s", ref, s.Node())
	}
	inst := factory()
	if p.HasState {
		m, ok := inst.(Migratable)
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("actor: %s carries state but type is not Migratable", ref)
		}
		if err := m.Restore(p.State); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("actor: restore %s: %w", ref, err)
		}
	}
	s.activations[ref] = &activation{ref: ref, actor: inst}
	s.locCache[ref] = s.Node()
	s.vertexRefs[uint64(ref.Vertex())] = ref
	s.mu.Unlock()
	s.migrationsIn.Add(1)
	return codec.Marshal(ctlPlacementOK)
}

// --- ActOp partition-exchange integration (Algorithm 1 over the wire) ---

// wireCandidate mirrors partition.Candidate for gob transfer.
type wireCandidate struct {
	V            uint64
	Edges        map[uint64]float64
	HomeWeight   float64
	TargetWeight float64
}

// exchangeWire is the ctlExchange request payload.
type exchangeWire struct {
	FromIndex      int // initiator's index in the sorted peer list
	Candidates     []wireCandidate
	FromPopulation int
	Opts           wireOpts
}

// wireOpts carries the initiator's partitioning parameters so both sides
// decide under the same configuration.
type wireOpts struct {
	CandidateSetSize   int
	ImbalanceTolerance int
	MinScore           float64
}

// exchangeReply is the ctlExchange response payload.
type exchangeReply struct {
	Rejected bool
	Accepted []uint64 // initiator's vertices the peer will host
	Counter  []uint64 // peer's vertices it is sending to the initiator
}

var exchangeMu sync.Mutex // serializes exchange decisions per process

// exchangeState tracks Algorithm 1's cooldown.
type exchangeState struct {
	last  time.Time
	begun bool
}

var exchangeStates sync.Map // *System → *exchangeState

func (s *System) exchangeCooling(window time.Duration) bool {
	v, _ := exchangeStates.LoadOrStore(s, &exchangeState{})
	st := v.(*exchangeState)
	return st.begun && time.Since(st.last) < window
}

func (s *System) markExchanged() {
	v, _ := exchangeStates.LoadOrStore(s, &exchangeState{})
	st := v.(*exchangeState)
	st.begun = true
	st.last = time.Now()
}

// nodeIndex maps a peer NodeID to its graph.ServerID (index in the sorted
// peer list), the identifier space the partition package works in.
func (s *System) nodeIndex(n transport.NodeID) (graph.ServerID, bool) {
	for i, p := range s.peers {
		if p == n {
			return graph.ServerID(i), true
		}
	}
	return 0, false
}

// sysLocator adapts the node's placement knowledge (own activations + the
// location cache) to partition.Locator. Unknown actors simply don't
// contribute to transfer scores — the algorithm is built for partial views.
type sysLocator struct{ s *System }

// Server implements partition.Locator.
func (l sysLocator) Server(v graph.Vertex) (graph.ServerID, bool) {
	ref, ok := l.s.refOf(uint64(v))
	if !ok {
		return 0, false
	}
	l.s.mu.RLock()
	_, local := l.s.activations[ref]
	cached, hasCache := l.s.locCache[ref]
	l.s.mu.RUnlock()
	if local {
		return l.s.selfIndex(), true
	}
	if hasCache {
		return l.s.nodeIndexOr(cached)
	}
	return 0, false
}

func (s *System) selfIndex() graph.ServerID {
	idx, _ := s.nodeIndex(s.Node())
	return idx
}

func (s *System) nodeIndexOr(n transport.NodeID) (graph.ServerID, bool) {
	return s.nodeIndex(n)
}

// localVertices lists the vertices of locally hosted actors.
func (s *System) localVertices() []graph.Vertex {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]graph.Vertex, 0, len(s.activations))
	for ref := range s.activations {
		out = append(out, ref.Vertex())
	}
	return out
}

// ExchangeRound runs one initiator round of Algorithm 1 from this node:
// select candidates from the local monitor, offer them to the best peer,
// and apply the agreed moves. It returns the number of actors migrated
// (both directions counted by the respective movers).
func (s *System) ExchangeRound(opts partition.Options, window time.Duration) (int, error) {
	if s.exchangeCooling(window) {
		return 0, nil
	}
	s.monMu.Lock()
	snap := s.monitor.Snapshot()
	s.monMu.Unlock()
	local := s.localVertices()
	self := s.selfIndex()
	props := partition.SelectCandidates(opts, snap, sysLocator{s: s}, self, local, len(local))
	for _, prop := range props {
		peerIdx := int(prop.To)
		if peerIdx < 0 || peerIdx >= len(s.peers) {
			continue
		}
		peer := s.peers[peerIdx]
		wire := exchangeWire{
			FromIndex:      int(self),
			FromPopulation: prop.FromPopulation,
			Opts: wireOpts{
				CandidateSetSize:   opts.CandidateSetSize,
				ImbalanceTolerance: opts.ImbalanceTolerance,
				MinScore:           opts.MinScore,
			},
		}
		for _, c := range prop.Candidates {
			wc := wireCandidate{
				V: uint64(c.V), HomeWeight: c.HomeWeight, TargetWeight: c.TargetWeight,
				Edges: make(map[uint64]float64, len(c.Edges)),
			}
			for u, w := range c.Edges {
				wc.Edges[uint64(u)] = w
			}
			wire.Candidates = append(wire.Candidates, wc)
		}
		var reply exchangeReply
		if err := s.controlCall(peer, ctlExchange, wire, &reply); err != nil {
			return 0, err
		}
		if reply.Rejected {
			continue // try the next-best peer (Algorithm 1)
		}
		moved := 0
		for _, v := range reply.Accepted {
			ref, ok := s.refOf(v)
			if !ok {
				continue
			}
			if err := s.Migrate(ref, peer); err == nil {
				moved++
			}
		}
		moved += len(reply.Counter) // the peer migrates these toward us
		if moved > 0 {
			s.markExchanged()
			return moved, nil
		}
	}
	return 0, nil
}

// handleExchange is the receiving side of Algorithm 1 (steps 2–4).
func (s *System) handleExchange(payload []byte, from transport.NodeID) ([]byte, error) {
	var wire exchangeWire
	if err := codec.Unmarshal(payload, &wire); err != nil {
		return nil, err
	}
	if s.exchangeCooling(s.cfg.ExchangeRejectWindow) {
		return codec.Marshal(exchangeReply{Rejected: true})
	}
	opts := partition.Options{
		CandidateSetSize:   wire.Opts.CandidateSetSize,
		ImbalanceTolerance: wire.Opts.ImbalanceTolerance,
		MinScore:           wire.Opts.MinScore,
	}
	req := partition.ExchangeRequest{
		From: graph.ServerID(wire.FromIndex), To: s.selfIndex(),
		FromPopulation: wire.FromPopulation,
	}
	for _, wc := range wire.Candidates {
		c := partition.Candidate{
			V: graph.Vertex(wc.V), HomeWeight: wc.HomeWeight, TargetWeight: wc.TargetWeight,
			Edges: make(map[graph.Vertex]float64, len(wc.Edges)),
		}
		for u, w := range wc.Edges {
			c.Edges[graph.Vertex(u)] = w
		}
		req.Candidates = append(req.Candidates, c)
	}

	exchangeMu.Lock()
	s.monMu.Lock()
	snap := s.monitor.Snapshot()
	s.monMu.Unlock()
	local := s.localVertices()
	resp := partition.DecideExchange(opts, snap, sysLocator{s: s}, req, local, len(local))
	exchangeMu.Unlock()

	reply := exchangeReply{}
	for _, v := range resp.Accepted {
		reply.Accepted = append(reply.Accepted, uint64(v))
	}
	for _, v := range resp.Counter {
		reply.Counter = append(reply.Counter, uint64(v))
	}
	if len(reply.Accepted)+len(reply.Counter) > 0 {
		s.markExchanged()
	}
	// Counter-migrations run asynchronously: performing them inline would
	// block the receive stage on control round trips back to the initiator.
	if len(resp.Counter) > 0 {
		counters := append([]graph.Vertex(nil), resp.Counter...)
		go func() {
			for _, v := range counters {
				if ref, ok := s.refOf(uint64(v)); ok {
					_ = s.Migrate(ref, from)
				}
			}
		}()
	}
	return codec.Marshal(reply)
}
