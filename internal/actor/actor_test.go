package actor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/transport"
)

// counterActor is a minimal migratable actor.
type counterActor struct{ N int }

func (c *counterActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Add":
		var d int
		if err := codec.Unmarshal(args, &d); err != nil {
			return nil, err
		}
		c.N += d
		return codec.Marshal(c.N)
	case "Get":
		return codec.Marshal(c.N)
	case "Fail":
		return nil, errors.New("boom")
	case "WhereAmI":
		return codec.Marshal(string(ctx.Node()))
	}
	return nil, fmt.Errorf("no method %q", method)
}

func (c *counterActor) Snapshot() ([]byte, error) { return codec.Marshal(c.N) }
func (c *counterActor) Restore(b []byte) error    { return codec.Unmarshal(b, &c.N) }

// newCluster spins up n in-memory nodes with the counter type registered.
func newCluster(t *testing.T, n int, placement PlacementPolicy) []*System {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	systems := make([]*System, n)
	for i := 0; i < n; i++ {
		sys, err := NewSystem(Config{
			Transport: trs[i], Peers: peers,
			Placement: placement, Seed: int64(42 + i),
			CallTimeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("counter", func() Actor { return &counterActor{} })
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems
}

func TestCallActivatesOnDemand(t *testing.T) {
	sys := newCluster(t, 3, PlaceRandom)
	ref := Ref{Type: "counter", Key: "a"}
	var out int
	if err := sys[0].Call(ref, "Add", 5, &out); err != nil {
		t.Fatal(err)
	}
	if out != 5 {
		t.Fatalf("out = %d", out)
	}
	// Second call from a different node hits the same activation.
	if err := sys[1].Call(ref, "Add", 2, &out); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("state not shared: %d", out)
	}
	// Exactly one node hosts it.
	hosts := 0
	for _, s := range sys {
		if s.HostsActor(ref) {
			hosts++
		}
	}
	if hosts != 1 {
		t.Fatalf("hosted on %d nodes", hosts)
	}
}

func TestUnknownTypeAndMethodErrors(t *testing.T) {
	sys := newCluster(t, 1, PlaceRandom)
	if err := sys[0].Call(Ref{Type: "ghost", Key: "x"}, "Do", nil, nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
	err := sys[0].Call(Ref{Type: "counter", Key: "x"}, "Nope", nil, nil)
	if err == nil {
		t.Fatal("expected method error")
	}
}

func TestActorErrorPropagates(t *testing.T) {
	sys := newCluster(t, 2, PlaceRandom)
	err := sys[0].Call(Ref{Type: "counter", Key: "f"}, "Fail", nil, nil)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalPlacementPolicy(t *testing.T) {
	sys := newCluster(t, 3, PlaceLocal)
	ref := Ref{Type: "counter", Key: "local-1"}
	if err := sys[2].Call(ref, "Add", 1, nil); err != nil {
		t.Fatal(err)
	}
	if !sys[2].HostsActor(ref) {
		t.Fatal("local placement should host on the first caller")
	}
}

func TestSingleThreadedTurns(t *testing.T) {
	sys := newCluster(t, 1, PlaceRandom)
	ref := Ref{Type: "counter", Key: "turns"}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var out int
	if err := sys[0].Call(ref, "Get", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out != 200 {
		t.Fatalf("lost increments: %d/200 (mailbox not single-threaded?)", out)
	}
}

func TestMigrationPreservesStateAndRouting(t *testing.T) {
	sys := newCluster(t, 3, PlaceRandom)
	ref := Ref{Type: "counter", Key: "mig"}
	if err := sys[0].Call(ref, "Add", 10, nil); err != nil {
		t.Fatal(err)
	}
	var host *System
	for _, s := range sys {
		if s.HostsActor(ref) {
			host = s
		}
	}
	var target *System
	for _, s := range sys {
		if s != host {
			target = s
			break
		}
	}
	if err := host.Migrate(ref, target.Node()); err != nil {
		t.Fatal(err)
	}
	if host.HostsActor(ref) || !target.HostsActor(ref) {
		t.Fatal("migration did not move the activation")
	}
	// State survived; calls from every node still land.
	for i, s := range sys {
		var out int
		if err := s.Call(ref, "Get", nil, &out); err != nil {
			t.Fatalf("node %d call after migration: %v", i, err)
		}
		if out != 10 {
			t.Fatalf("state lost: %d", out)
		}
	}
	var where string
	if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
		t.Fatal(err)
	}
	if where != string(target.Node()) {
		t.Fatalf("actor executes on %s, want %s", where, target.Node())
	}
	if target.Stats().MigrationsIn != 1 || host.Stats().MigrationsOut != 1 {
		t.Fatal("migration counters wrong")
	}
}

func TestMigrationUnderLoad(t *testing.T) {
	sys := newCluster(t, 3, PlaceRandom)
	ref := Ref{Type: "counter", Key: "hot"}
	if err := sys[0].Call(ref, "Add", 0, nil); err != nil {
		t.Fatal(err)
	}
	var host, target *System
	for _, s := range sys {
		if s.HostsActor(ref) {
			host = s
		}
	}
	for _, s := range sys {
		if s != host {
			target = s
			break
		}
	}
	stop := make(chan struct{})
	var calls, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := sys[g%3].Call(ref, "Add", 1, nil); err != nil {
					failures.Add(1)
				} else {
					calls.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := host.Migrate(ref, target.Node()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	var out int
	if err := sys[0].Call(ref, "Get", nil, &out); err != nil {
		t.Fatal(err)
	}
	if failures.Load() > 0 {
		t.Fatalf("%d calls failed across migration", failures.Load())
	}
	if int64(out) != calls.Load() {
		t.Fatalf("increments lost across migration: state %d vs %d successful calls", out, calls.Load())
	}
}

func TestDeactivateReinstatesFresh(t *testing.T) {
	sys := newCluster(t, 2, PlaceRandom)
	ref := Ref{Type: "counter", Key: "d"}
	if err := sys[0].Call(ref, "Add", 9, nil); err != nil {
		t.Fatal(err)
	}
	var host *System
	for _, s := range sys {
		if s.HostsActor(ref) {
			host = s
		}
	}
	if err := host.Deactivate(ref); err != nil {
		t.Fatal(err)
	}
	var out int
	if err := sys[0].Call(ref, "Get", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Fatalf("deactivated actor kept state: %d", out)
	}
	if err := host.Deactivate(Ref{Type: "counter", Key: "never"}); err == nil {
		t.Fatal("deactivating a non-resident actor should error")
	}
}

// chainActor calls the next actor in a chain, exercising ctx.Call edges.
type chainActor struct{}

func (chainActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	var depth int
	if err := codec.Unmarshal(args, &depth); err != nil {
		return nil, err
	}
	if depth <= 0 {
		return codec.Marshal("done")
	}
	next := Ref{Type: "chain", Key: fmt.Sprintf("c%d", depth-1)}
	var out string
	if err := ctx.Call(next, "Go", depth-1, &out); err != nil {
		return nil, err
	}
	return codec.Marshal(out)
}

func TestActorToActorCallsAndMonitor(t *testing.T) {
	sys := newCluster(t, 2, PlaceRandom)
	for _, s := range sys {
		s.RegisterType("chain", func() Actor { return chainActor{} })
	}
	var out string
	if err := sys[0].Call(Ref{Type: "chain", Key: "c3"}, "Go", 3, &out); err != nil {
		t.Fatal(err)
	}
	if out != "done" {
		t.Fatalf("out = %q", out)
	}
	// The runtime observed actor→actor edges on some node.
	total := 0
	for _, s := range sys {
		total += s.Stats().MonitoredEdges
	}
	if total == 0 {
		t.Fatal("no communication edges monitored")
	}
}

func TestStatsCounters(t *testing.T) {
	sys := newCluster(t, 2, PlaceRandom)
	for i := 0; i < 10; i++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("s%d", i)}
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	st0, st1 := sys[0].Stats(), sys[1].Stats()
	if st0.Activations+st1.Activations != 10 {
		t.Fatalf("activations %d+%d", st0.Activations, st1.Activations)
	}
	if st0.CallsLocal+st0.CallsRemote != 10 {
		t.Fatalf("calls %d+%d", st0.CallsLocal, st0.CallsRemote)
	}
}

func TestStopRejectsCalls(t *testing.T) {
	sys := newCluster(t, 1, PlaceRandom)
	sys[0].Stop()
	if err := sys[0].Call(Ref{Type: "counter", Key: "x"}, "Get", nil, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	sys[0].Stop() // idempotent
}

func TestRefVertexStable(t *testing.T) {
	a := Ref{Type: "player", Key: "1"}
	b := Ref{Type: "player", Key: "1"}
	cdiff := Ref{Type: "player", Key: "2"}
	if a.Vertex() != b.Vertex() {
		t.Fatal("vertex not deterministic")
	}
	if a.Vertex() == cdiff.Vertex() {
		t.Fatal("vertex collision on trivial keys")
	}
	if a.String() != "player/1" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("nil transport should error")
	}
	net := transport.NewNetwork(0)
	tr := net.Join("a")
	if _, err := NewSystem(Config{Transport: tr, Peers: []transport.NodeID{"b"}}); err == nil {
		t.Fatal("peers without self should error")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	// The same runtime over real sockets.
	t1, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []transport.NodeID{t1.Node(), t2.Node()}
	mk := func(tr transport.Transport) *System {
		s, err := NewSystem(Config{Transport: tr, Peers: peers, Seed: 1, CallTimeout: 3 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		s.RegisterType("counter", func() Actor { return &counterActor{} })
		t.Cleanup(s.Stop)
		return s
	}
	s1, s2 := mk(t1), mk(t2)
	ref := Ref{Type: "counter", Key: "tcp"}
	var out int
	if err := s1.Call(ref, "Add", 3, &out); err != nil {
		t.Fatal(err)
	}
	if err := s2.Call(ref, "Add", 4, &out); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("out = %d", out)
	}
}

func TestLocationCacheBounded(t *testing.T) {
	sys := newCluster(t, 1, PlaceRandom)
	s := sys[0]
	// Flood the cache past its bound; entries must be evicted one at a time
	// rather than letting the cache grow without limit (§4.3: old entries
	// are evicted for low space overhead).
	for i := 0; i < (1<<17)+10; i++ {
		s.cachePut(Ref{Type: "counter", Key: fmt.Sprintf("k%d", i)}, s.Node())
	}
	n := s.locCacheLen()
	if n > (1<<17)+1 {
		t.Fatalf("location cache unbounded: %d entries", n)
	}
	// Still correct after the reset.
	ref := Ref{Type: "counter", Key: "after-reset"}
	if err := s.Call(ref, "Add", 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefVertexCollisionFreeAtScale(t *testing.T) {
	seen := make(map[uint64]string, 200_000)
	for i := 0; i < 100_000; i++ {
		for _, typ := range []string{"player", "game"} {
			r := Ref{Type: typ, Key: fmt.Sprintf("%d", i)}
			v := uint64(r.Vertex())
			if prev, ok := seen[v]; ok {
				t.Fatalf("vertex collision: %s vs %s", prev, r)
			}
			seen[v] = r.String()
		}
	}
}
