package actor_test

import (
	"fmt"
	"testing"

	"actop/internal/actor"
	"actop/internal/loadgen"
	"actop/internal/transport"
	"actop/internal/workload/spec"
)

// TestSpecWorkloadAcrossNodes drives a declarative workload spec through
// the real runtime on a five-node in-process cluster: the spec harness
// must place activations across the cluster (random placement) and still
// satisfy every invariant — exactly-once ops, conserved fan-out legs —
// while sessions churn mid-run.
func TestSpecWorkloadAcrossNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-runtime run")
	}
	const n = 5
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("wl-node-%d", i))
		trs[i] = net.Join(peers[i])
	}
	systems := make([]*actor.System, n)
	for i := 0; i < n; i++ {
		sys, err := actor.NewSystem(actor.Config{
			Transport: trs[i], Peers: peers,
			Workers: 16, Seed: int64(11 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}

	sc, ok := spec.ScenarioByName("presence", 0.5)
	if !ok {
		t.Fatal("presence scenario missing")
	}
	runner, err := loadgen.New(&sc.Spec, systems)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(loadgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range res.CheckInvariants(&sc.Spec) {
		t.Error(inv)
	}
	if res.Churned == 0 {
		t.Error("run exercised no churn")
	}

	// Random placement must spread the spec's actors over the cluster.
	hosting := 0
	for _, sys := range systems {
		if sys.Stats().Activations > 0 {
			hosting++
		}
	}
	if hosting < 2 {
		t.Errorf("activations concentrated on %d node(s); placement not exercised", hosting)
	}
	// The fan-out trees must actually have crossed node boundaries.
	var remote uint64
	for _, sys := range systems {
		remote += sys.Stats().CallsRemote
	}
	if remote == 0 {
		t.Error("no remote calls: the workload never left a single node")
	}
}
