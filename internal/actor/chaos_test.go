package actor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/partition"
	"actop/internal/transport"
)

// chaosActor is a migratable counter whose "Poke" method calls another actor
// (its hub), generating the actor→actor edges the communication monitor
// needs before ExchangeRound will propose any moves.
type chaosActor struct{ N int }

func (c *chaosActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Add":
		var d int
		if err := codec.Unmarshal(args, &d); err != nil {
			return nil, err
		}
		c.N += d
		return codec.Marshal(c.N)
	case "Get":
		return codec.Marshal(c.N)
	case "Poke":
		var hub string
		if err := codec.Unmarshal(args, &hub); err != nil {
			return nil, err
		}
		return nil, ctx.Call(Ref{Type: "chaos", Key: hub}, "Add", 1, nil)
	}
	return nil, fmt.Errorf("no method %q", method)
}

func (c *chaosActor) Snapshot() ([]byte, error) { return codec.Marshal(c.N) }
func (c *chaosActor) Restore(b []byte) error    { return codec.Unmarshal(b, &c.N) }

// chaosCluster builds a 3-node cluster where EVERY node's outbound traffic
// runs through its own fault injector.
func chaosCluster(t *testing.T) ([]*System, []*transport.Flaky) {
	t.Helper()
	const n = 3
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	for i := range peers {
		peers[i] = transport.NodeID(fmt.Sprintf("chaos-%d", i))
	}
	systems := make([]*System, n)
	flakies := make([]*transport.Flaky, n)
	for i := range peers {
		flakies[i] = transport.NewFlaky(net.Join(peers[i]), int64(1000+i))
		sys, err := NewSystem(Config{
			Transport: flakies[i], Peers: peers, Seed: int64(7 + i),
			CallTimeout:          250 * time.Millisecond,
			ExchangeRejectWindow: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("chaos", func() Actor { return &chaosActor{} })
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems, flakies
}

// TestExchangeRoundSurvivesChaos drives Algorithm 1 exchange rounds over a
// lossy, delaying network. Rounds are allowed to fail — but they must fail
// cleanly: no panic, no deadlock, no directory corruption (an actor answered
// by two nodes with diverging state), no stuck actor (a ref nobody answers
// for). Once the faults lift, the cluster must converge: every actor answers
// consistently from every node, is hosted exactly once, and a fresh exchange
// round completes without error.
func TestExchangeRoundSurvivesChaos(t *testing.T) {
	sys, flakies := chaosCluster(t)
	const (
		hubs        = 3
		spokes      = 12
		baselineAdd = 3
	)
	hubKey := func(i int) string { return fmt.Sprintf("hub-%d", i%hubs) }
	refs := make([]Ref, 0, hubs+spokes)
	for i := 0; i < hubs; i++ {
		refs = append(refs, Ref{Type: "chaos", Key: hubKey(i)})
	}
	for i := 0; i < spokes; i++ {
		refs = append(refs, Ref{Type: "chaos", Key: fmt.Sprintf("spoke-%d", i)})
	}

	// Healthy phase: seed known state and build monitor edges (each spoke
	// pokes one hub, so SelectCandidates has a graph to cut).
	for i, ref := range refs {
		if err := sys[i%len(sys)].Call(ref, "Add", baselineAdd, nil); err != nil {
			t.Fatalf("baseline Add %s: %v", ref, err)
		}
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < spokes; i++ {
			ref := Ref{Type: "chaos", Key: fmt.Sprintf("spoke-%d", i)}
			if err := sys[i%len(sys)].Call(ref, "Poke", hubKey(i), nil); err != nil {
				t.Fatalf("baseline Poke %s: %v", ref, err)
			}
		}
	}

	// Chaos phase: every link drops ~30% of messages and delays half the
	// rest. Exchange rounds and traffic run concurrently from all nodes;
	// errors are expected, crashes and hangs are not.
	for _, fl := range flakies {
		fl.SetDrop(0.3)
		fl.SetDelay(0.5, 2*time.Millisecond)
	}
	opts := partition.DefaultOptions()
	opts.CandidateSetSize = 4
	opts.ImbalanceTolerance = 2

	var wg sync.WaitGroup
	var roundErrs, roundOK, moved int64
	var statsMu sync.Mutex
	for i := range sys {
		wg.Add(1)
		go func(s *System) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				n, err := s.ExchangeRound(opts, 10*time.Millisecond)
				statsMu.Lock()
				if err != nil {
					roundErrs++
				} else {
					roundOK++
					moved += int64(n)
				}
				statsMu.Unlock()
				time.Sleep(15 * time.Millisecond)
			}
		}(sys[i])
	}
	for i := 0; i < spokes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := Ref{Type: "chaos", Key: fmt.Sprintf("spoke-%d", i)}
			for r := 0; r < 6; r++ {
				// Failures are the point of this phase; only crashes count.
				_ = sys[(i+r)%len(sys)].Call(ref, "Poke", hubKey(i), nil)
			}
		}(i)
	}
	// Forced migrations under faults: transfers and directory updates will
	// be dropped mid-flight, exercising the orphan-drop and dir-retry paths.
	var migrateOK, migrateErr int64
	for i := range sys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sys[i]
			for r := 0; r < 6; r++ {
				if locals := s.LocalRefs(); len(locals) > 0 {
					err := s.Migrate(locals[r%len(locals)], sys[(i+1+r%2)%len(sys)].Node())
					statsMu.Lock()
					if err != nil {
						migrateErr++
					} else {
						migrateOK++
					}
					statsMu.Unlock()
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()

	var dropped uint64
	for _, fl := range flakies {
		dropped += fl.Dropped()
	}
	if dropped == 0 {
		t.Fatal("chaos phase dropped nothing — injectors inert")
	}
	t.Logf("chaos: %d rounds ok (%d moved), %d rounds failed; %d migrations ok, %d failed; %d messages dropped",
		roundOK, moved, roundErrs, migrateOK, migrateErr, dropped)
	if migrateOK+migrateErr == 0 {
		t.Fatal("no migration was even attempted under chaos")
	}

	// Recovery phase: lift the faults and wait for convergence. Background
	// orphan drops and directory-update retries need a settle window, so
	// poll rather than asserting immediately.
	for _, fl := range flakies {
		fl.SetDrop(0)
		fl.SetDelay(0, 0)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		lastProblem := ""
		for _, ref := range refs {
			vals := make([]int, len(sys))
			for i, s := range sys {
				if err := s.Call(ref, "Get", nil, &vals[i]); err != nil {
					lastProblem = fmt.Sprintf("%s unreachable from %s: %v", ref, s.Node(), err)
				}
			}
			if lastProblem != "" {
				break
			}
			for i := 1; i < len(vals); i++ {
				if vals[i] != vals[0] {
					lastProblem = fmt.Sprintf("%s diverged across nodes: %v (split brain)", ref, vals)
				}
			}
			if lastProblem != "" {
				break
			}
			if vals[0] < baselineAdd {
				lastProblem = fmt.Sprintf("%s lost committed state: %d < %d", ref, vals[0], baselineAdd)
				break
			}
			hosts := 0
			for _, s := range sys {
				if s.HostsActor(ref) {
					hosts++
				}
			}
			if hosts != 1 {
				lastProblem = fmt.Sprintf("%s hosted on %d nodes", ref, hosts)
				break
			}
		}
		if lastProblem == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge after faults lifted: %s", lastProblem)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And the partitioning plane itself recovers: a fresh round from each
	// node completes without error (moving actors is fine, failing is not).
	for _, s := range sys {
		if _, err := s.ExchangeRound(opts, 10*time.Millisecond); err != nil {
			t.Fatalf("exchange round after recovery from %s: %v", s.Node(), err)
		}
	}
}
