package actor

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"actop/internal/partition"
	"actop/internal/transport"
)

// slowActor blocks each turn briefly so queues build.
type slowActor struct{}

func (slowActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	time.Sleep(2 * time.Millisecond)
	return nil, nil
}

func TestOverloadBackpressure(t *testing.T) {
	net := transport.NewNetwork(0)
	peers := []transport.NodeID{"n0"}
	sys, err := NewSystem(Config{
		Transport: net.Join("n0"), Peers: peers,
		Workers: 1, QueueCap: 4, CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	sys.RegisterType("slow", func() Actor { return slowActor{} })

	var overloaded, timeouts int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref := Ref{Type: "slow", Key: fmt.Sprintf("s%d", i%4)}
			err := sys.Call(ref, "Go", nil, nil)
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, ErrOverloaded) {
				overloaded++
			} else if errors.Is(err, ErrTimeout) {
				timeouts++
			}
		}(i)
	}
	wg.Wait()
	if overloaded+timeouts == 0 {
		t.Fatal("expected backpressure under 200 concurrent calls on a 1-worker, 4-slot node")
	}
}

func TestRedirectAfterMigrationFromThirdNode(t *testing.T) {
	sys := newCluster(t, 3, PlaceRandom)
	ref := Ref{Type: "counter", Key: "third"}
	if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
		t.Fatal(err)
	}
	// Warm every node's cache.
	for _, s := range sys {
		if err := s.Call(ref, "Get", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	var host, target *System
	for _, s := range sys {
		if s.HostsActor(ref) {
			host = s
		}
	}
	for _, s := range sys {
		if s != host {
			target = s
			break
		}
	}
	if err := host.Migrate(ref, target.Node()); err != nil {
		t.Fatal(err)
	}
	// A third node with a stale cache must chase the redirect and succeed.
	var third *System
	for _, s := range sys {
		if s != host && s != target {
			third = s
		}
	}
	var out int
	if err := third.Call(ref, "Get", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("out = %d", out)
	}
}

func TestExchangeRoundMovesHotPairs(t *testing.T) {
	net := transport.NewNetwork(0)
	peers := []transport.NodeID{"x0", "x1"}
	var sys []*System
	for i, p := range peers {
		s, err := NewSystem(Config{
			Transport: net.Join(p), Peers: peers, Seed: int64(i + 5),
			CallTimeout:          3 * time.Second,
			ExchangeRejectWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.RegisterType("counter", func() Actor { return &counterActor{} })
		sys = append(sys, s)
		t.Cleanup(s.Stop)
	}
	for _, s := range sys {
		s.RegisterType("chain", func() Actor { return chainActor{} })
	}
	// Drive hot pairs: cN ↔ cN-1 chains produce actor→actor edges.
	for r := 0; r < 30; r++ {
		for k := 0; k < 6; k++ {
			var out string
			if err := sys[0].Call(Ref{Type: "chain", Key: fmt.Sprintf("c%d", 2*k+1)}, "Go", 1, &out); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := partition.DefaultOptions()
	opts.ImbalanceTolerance = 8
	total := 0
	for round := 0; round < 6; round++ {
		for _, s := range sys {
			moved, err := s.ExchangeRound(opts, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			total += moved
		}
		// Keep traffic flowing so monitors track the new placement.
		for k := 0; k < 6; k++ {
			_ = sys[0].Call(Ref{Type: "chain", Key: fmt.Sprintf("c%d", 2*k+1)}, "Go", 1, nil)
		}
	}
	// Whether anything moves depends on the random initial placement, but
	// the protocol must never split a hot pair that was co-located: verify
	// every pair ends co-located or the pair generated no cross edges.
	split := 0
	for k := 0; k < 6; k++ {
		a := Ref{Type: "chain", Key: fmt.Sprintf("c%d", 2*k+1)}
		b := Ref{Type: "chain", Key: fmt.Sprintf("c%d", 2*k)}
		if sys[0].HostsActor(a) != sys[0].HostsActor(b) {
			split++
		}
	}
	if split > 2 {
		t.Errorf("%d/6 hot pairs still split after exchanges (moved %d)", split, total)
	}
}
