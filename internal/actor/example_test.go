package actor_test

import (
	"fmt"

	"actop/internal/actor"
	"actop/internal/codec"
	"actop/internal/transport"
)

// echoActor returns its own location, demonstrating location transparency.
type echoActor struct{}

func (echoActor) Receive(ctx *actor.Context, method string, args []byte) ([]byte, error) {
	return codec.Marshal("served by " + string(ctx.Node()))
}

func Example() {
	// A two-node in-process cluster; swap transport.ListenTCP for real
	// sockets.
	net := transport.NewNetwork(0)
	peers := []transport.NodeID{"silo-a", "silo-b"}

	var systems []*actor.System
	for i, p := range peers {
		sys, err := actor.NewSystem(actor.Config{
			Transport: net.Join(p), Peers: peers, Seed: int64(i),
		})
		if err != nil {
			panic(err)
		}
		sys.RegisterType("echo", func() actor.Actor { return echoActor{} })
		defer sys.Stop()
		systems = append(systems, sys)
	}

	// Call from either node; the runtime activates the actor once and
	// routes every call to it, wherever it lives.
	ref := actor.Ref{Type: "echo", Key: "e1"}
	var a, b string
	if err := systems[0].Call(ref, "Where", nil, &a); err != nil {
		panic(err)
	}
	if err := systems[1].Call(ref, "Where", nil, &b); err != nil {
		panic(err)
	}
	fmt.Println("both callers reached the same activation:", a == b)
	// Output:
	// both callers reached the same activation: true
}
