package actor

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMigrationChurnUnderLoad hammers one actor with concurrent increments
// while it ping-pongs between two nodes. The contract under migration
// (§4.3): every call either completes with a correct answer or fails with a
// clean overload/timeout error — never a wrong answer, never a panic, never
// a duplicate execution observed by a successful caller. Run with -race.
func TestMigrationChurnUnderLoad(t *testing.T) {
	sys := newCluster(t, 2, PlaceRandom)
	ref := Ref{Type: "counter", Key: "under-load"}
	if err := sys[0].Call(ref, "Add", 0, nil); err != nil {
		t.Fatal(err)
	}

	const (
		callers        = 8
		callsPerCaller = 150
	)
	var (
		callersWG  sync.WaitGroup
		migratorWG sync.WaitGroup
		mu         sync.Mutex
		successes  int
		failures   int
		seen       = map[int]int{} // returned counter value → times seen
		unexpected []error
	)
	done := make(chan struct{})

	// Migrator: bounce the actor between the nodes for as long as the
	// callers run. Stale host information (the actor moved between lookup
	// and Migrate) is an expected clean failure, not a test failure.
	var migrations int
	migratorWG.Add(1)
	go func() {
		defer migratorWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			from, to := sys[i%2], sys[(i+1)%2]
			if from.HostsActor(ref) {
				if err := from.Migrate(ref, to.Node()); err == nil {
					migrations++
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < callers; c++ {
		callersWG.Add(1)
		go func(c int) {
			defer callersWG.Done()
			node := sys[c%len(sys)]
			prev := 0
			for i := 0; i < callsPerCaller; i++ {
				var out int
				err := node.Call(ref, "Add", 1, &out)
				mu.Lock()
				switch {
				case err == nil:
					successes++
					seen[out]++
					if out <= prev {
						unexpected = append(unexpected, fmt.Errorf(
							"caller %d saw counter go backwards: %d after %d", c, out, prev))
					}
					prev = out
				case errors.Is(err, ErrTimeout), errors.Is(err, ErrOverloaded):
					failures++
				default:
					unexpected = append(unexpected, fmt.Errorf("caller %d call %d: %w", c, i, err))
				}
				mu.Unlock()
			}
		}(c)
	}
	// Wait for the callers, then stop the migrator.
	callersWG.Wait()
	close(done)
	migratorWG.Wait()

	if len(unexpected) > 0 {
		for _, e := range unexpected {
			t.Error(e)
		}
		t.Fatalf("%d calls violated the migration contract", len(unexpected))
	}
	// A successful reply is this caller's own increment: two callers can
	// never observe the same post-increment value unless state forked.
	for v, n := range seen {
		if n > 1 {
			t.Fatalf("counter value %d returned to %d callers (duplicate execution or split brain)", v, n)
		}
	}
	if successes == 0 {
		t.Fatal("no call succeeded under migration churn")
	}
	if migrations == 0 {
		t.Fatal("the actor never migrated; the test exercised nothing")
	}

	// Value conservation: every success incremented exactly once; a timed-out
	// call may or may not have landed its increment before the deadline.
	var final int
	if err := sys[0].Call(ref, "Get", nil, &final); err != nil {
		t.Fatalf("final Get: %v", err)
	}
	var fromOther int
	if err := sys[1].Call(ref, "Get", nil, &fromOther); err != nil {
		t.Fatalf("final Get via other node: %v", err)
	}
	if final != fromOther {
		t.Fatalf("nodes disagree on final value: %d vs %d", final, fromOther)
	}
	if final < successes || final > successes+failures {
		t.Fatalf("final=%d outside [successes=%d, successes+failures=%d]",
			final, successes, successes+failures)
	}
	hosts := 0
	for _, s := range sys {
		if s.HostsActor(ref) {
			hosts++
		}
	}
	if hosts != 1 {
		t.Fatalf("actor hosted on %d nodes after churn", hosts)
	}
	t.Logf("migration under load: %d migrations, %d calls ok, %d clean failures, final=%d",
		migrations, successes, failures, final)
}
