package actor

import (
	"os"
	"testing"

	"actop/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine running —
// activation turn loops, the directory janitor, and heartbeat senders
// must all exit when their System shuts down.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m.Run))
}
