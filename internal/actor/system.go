package actor

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/codec"
	"actop/internal/durable"
	"actop/internal/flight"
	"actop/internal/graph"
	"actop/internal/hotspot"
	"actop/internal/metrics"
	"actop/internal/partition"
	"actop/internal/seda"
	"actop/internal/trace"
	"actop/internal/transport"
)

// Errors surfaced by calls.
var (
	// ErrTimeout is returned when a call's reply does not arrive in time.
	ErrTimeout = errors.New("actor: call timeout")
	// ErrUnknownType is returned when calling an unregistered actor type.
	ErrUnknownType = errors.New("actor: unknown actor type")
	// ErrOverloaded is returned when a stage queue rejects work.
	ErrOverloaded = errors.New("actor: node overloaded")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("actor: system stopped")
	// ErrPeerDown is the retry-safe pause: a peer whose cooperation the
	// call needs — the target host, a directory owner, or a snapshot
	// replica holding a durable actor's state — is currently unreachable.
	// The runtime retries it within the call budget rather than, say,
	// resurrecting a durable actor with amnesia; callers that can wait
	// longer than one budget should classify on this and resubmit.
	ErrPeerDown = errors.New("actor: peer down")
)

const redirectPrefix = "__redirect:"

// control verbs (KindControl envelopes).
const (
	ctlDirLookup   = "dir.lookup"
	ctlDirUpdate   = "dir.update"
	ctlDirRemove   = "dir.remove"
	ctlMigratePut  = "migrate.put"
	ctlMigrateDrop = "migrate.drop"
	ctlExchange    = "actop.exchange"
	ctlPing        = "actop.ping"
	ctlTraces      = "actop.traces"
	ctlSnap        = "actop.snap"
	ctlSnapGet     = "actop.snapget"
	ctlHotspots    = "actop.hotspots"
	ctlPlacementOK = "ok"
)

// errPeerDown marks a call attempt that failed because its target is (or
// just turned) suspect/dead — the retryable class of failures, alongside
// transport.ErrUnreachable.
var errPeerDown = ErrPeerDown

// errRedirectChase marks a dispatch that exhausted its redirect budget: the
// actor moved again at every hop of the chase. Retryable — each hop already
// refreshed the local cache, so the next attempt starts from the freshest
// route and the outer retry loop bounds the whole pursuit by the call
// deadline. Terminal only when the deadline runs out.
var errRedirectChase = errors.New("actor: too many redirects")

// System is one node of the distributed actor runtime.
type System struct {
	cfg   Config
	tr    transport.Transport
	peers []transport.NodeID // sorted, includes self

	recvStage *seda.Stage
	workStage *seda.Stage
	sendStage *seda.Stage
	// ctlStage serves inbound control verbs (directory, snapshots, pings)
	// on workers of its own. Control verbs are all local and bounded —
	// shard-lock reads and writes, never a remote call — while receive
	// workers park in synchronous cross-node lookups (handleCall's routed
	// re-confirm). Sharing one stage livelocks under a retry storm: every
	// receive worker on each survivor parks waiting for a dir.lookup the
	// other survivor's parked workers can't serve, each wait times out,
	// every caller retries, and the cluster's control plane stays dark for
	// whole call budgets. The split also keeps heartbeats honest under
	// load — pings answered from saturated nodes stop the failure detector
	// from declaring livelocked-but-live peers dead.
	ctlStage *seda.Stage

	// mu guards only the cold-path registration state: the type registry
	// and the stopped flag. The hot-path maps live in the sharded state
	// plane below (shard.go).
	mu      sync.RWMutex
	types   map[string]Factory
	stopped bool

	// state is the lock-striped routing/directory plane: activations, owned
	// directory entries, the location cache (clock-evicted), and the
	// vertex↔ref index, sharded by ref hash so operations on distinct refs
	// never contend (see shard.go).
	state [stateShardCount]stateShard

	// pend is the striped pending-reply table (call id → reply channel).
	pend   [pendShardCount]pendShard
	nextID atomic.Uint64

	// Location-cache counters (atomic; mirrored to the registry and Stats).
	locHits, locMisses, locEvicts atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	monMu   sync.Mutex
	monitor *partition.Monitor

	// Failure detector state (failure.go): per-peer membership records and
	// change watchers.
	fdMu     sync.Mutex
	members  map[transport.NodeID]*memberEntry
	watchers []func(transport.NodeID, PeerState)

	// Reply dedup window: recently answered remote calls, keyed by the
	// caller's (node, call id), so a retried call resends the recorded
	// reply instead of executing the turn again. Striped by caller identity
	// so concurrent deliveries from different callers never contend.
	dedupShards [dedupShardCount]dedupShard

	// done closes on Stop; background loops (heartbeats, retries, orphan
	// drops) gate on it and are tracked in bg so Stop can wait them out.
	done chan struct{}
	bg   sync.WaitGroup

	failures metrics.FailureCounters
	durables metrics.DurableCounters

	// Durability plane (durable.go): the replica store holding peers'
	// snapshots (always non-nil — this node serves as a replica whether or
	// not its own actors are durable), the background snapshotter pool, and
	// the recovery-stampede semaphore (both nil unless DurableReplicas > 0).
	snapStore   *durable.Store
	snapPool    *durable.Pool
	recoverySem chan struct{}

	// Per-peer fetch breaker for recovery pulls (durable.go): after a
	// failed snapshot fetch, further pulls treat that peer as unreachable
	// without a new round trip until a heartbeat interval has passed — one
	// receive worker pays the timeout per cooldown instead of a convoy of
	// them (an undetected-dead or starved peer would otherwise park every
	// worker that pulls a ref replicated there).
	snapProbeMu   sync.Mutex
	snapProbeFail map[transport.NodeID]time.Time

	// Tracing plane: the root-call sampling decision, the completed-span
	// ring, and (when a registry is configured) the per-method latency
	// series. sampler and spans are always non-nil; the family handles are
	// nil without a registry, costing one pointer check per call.
	sampler  *trace.Sampler
	spans    *trace.Ring
	callDur  *metrics.SummaryFamily
	callComp *metrics.SummaryFamily
	srvDur   *metrics.SummaryFamily

	// Observability plane (obs.go): the per-actor hot-spot profiler (nil
	// when disabled — one pointer check per drain batch), the always-on
	// flight recorder, and the SLO watcher's rolling latency window (nil
	// unless SLOTarget is set).
	prof    *hotspot.Profiler
	flight  *flight.Recorder
	sloWin  *metrics.ConcurrentHistogram

	// Counters (atomic; exported via Stats).
	callsLocal, callsRemote, migrationsIn, migrationsOut, redirects atomic.Uint64
}

// NewSystem starts a node. The transport's handler is installed here; do
// not share a transport between systems.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	peers := append([]transport.NodeID(nil), cfg.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	s := &System{
		cfg:     cfg,
		tr:      cfg.Transport,
		peers:   peers,
		types:   make(map[string]Factory),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(hashNode(cfg.Transport.Node())))),
		monitor: partition.NewMonitor(cfg.MonitorCapacity),
		members: make(map[transport.NodeID]*memberEntry, len(peers)),
		done:    make(chan struct{}),
		sampler: trace.NewSampler(cfg.TraceSampleRate),
		spans:   trace.NewRing(cfg.TraceRingSize),
		// The replica store always exists: this node stores snapshots on
		// behalf of peers even if none of its own types are durable.
		snapStore: durable.NewStore(),
	}
	s.flight = flight.NewRecorder(cfg.FlightRingSize, cfg.FlightDebounce)
	if !cfg.DisableHotspots {
		s.prof = hotspot.New(cfg.HotspotK)
	}
	if cfg.SLOTarget > 0 {
		s.sloWin = &metrics.ConcurrentHistogram{}
	}
	if cfg.DurableReplicas > 0 {
		s.snapPool = durable.NewPool(cfg.SnapshotWorkers, 1024)
		s.recoverySem = make(chan struct{}, cfg.RecoveryConcurrency)
		s.snapProbeFail = make(map[transport.NodeID]time.Time)
	}
	s.initShards(cfg.LocCacheSize)
	s.sampler.Seed(hashNode(cfg.Transport.Node()))
	if cfg.Metrics != nil {
		s.callDur = cfg.Metrics.Summary("actop_call_duration_seconds",
			"actor call round-trip latency by method", "method")
		s.callComp = cfg.Metrics.Summary("actop_call_component_seconds",
			"traced call latency decomposition by method and component", "method", "component")
		s.srvDur = cfg.Metrics.Summary("actop_served_call_duration_seconds",
			"inbound call latency by method, receive to reply enqueue (callee side)", "method")
		s.registerShardMetrics()
		s.registerObsMetrics()
	}
	for _, p := range peers {
		if p != s.Node() {
			m := &memberEntry{state: PeerAlive}
			m.healthy.Store(true)
			s.members[p] = m
		}
	}
	s.recvStage = seda.NewStage("receiver", cfg.QueueCap, cfg.ReceiverWorkers)
	s.workStage = seda.NewStage("worker", cfg.QueueCap, cfg.Workers)
	s.sendStage = seda.NewStage("sender", cfg.QueueCap, cfg.SenderWorkers)
	// Fixed-size and outside the thread controller: the control plane must
	// keep its workers precisely when every adaptive stage is starved.
	s.ctlStage = seda.NewStage("control", cfg.QueueCap, ctlStageWorkers(cfg.ReceiverWorkers))
	s.tr.SetHandler(s.onEnvelope)
	if !cfg.DisableFailover && len(peers) > 1 {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			s.heartbeatLoop()
		}()
	}
	if s.prof != nil || s.sloWin != nil {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			s.obsLoop()
		}()
	}
	return s, nil
}

// trackGo runs fn on a tracked goroutine unless the system has stopped.
// Stop waits for every tracked goroutine, so fn must gate any waiting on
// s.done. Returns false (fn not run) after Stop.
func (s *System) trackGo(fn func()) bool {
	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return false
	}
	s.bg.Add(1)
	s.mu.RUnlock()
	go func() {
		defer s.bg.Done()
		fn()
	}()
	return true
}

// ctlStageWorkers sizes the control stage: a quarter of the receive pool,
// at least two so one long verb (a migration-state install) can't delay a
// heartbeat behind it.
func ctlStageWorkers(receiverWorkers int) int {
	if w := receiverWorkers / 4; w > 2 {
		return w
	}
	return 2
}

func hashNode(n transport.NodeID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(n))
	return h.Sum64()
}

// Node reports this node's id.
func (s *System) Node() transport.NodeID { return s.tr.Node() }

// Peers reports the cluster membership (sorted, includes self).
func (s *System) Peers() []transport.NodeID {
	out := make([]transport.NodeID, len(s.peers))
	copy(out, s.peers)
	return out
}

// RegisterType installs the factory for an actor type. Register the same
// types on every node before traffic starts.
func (s *System) RegisterType(name string, f Factory) {
	s.mu.Lock()
	s.types[name] = f
	s.mu.Unlock()
}

// Stages exposes the SEDA stages (receive, work, send) for the thread
// controller.
func (s *System) Stages() (recv, work, send *seda.Stage) {
	return s.recvStage, s.workStage, s.sendStage
}

// Config returns a copy of the node's (filled) configuration, so attached
// controllers can honor DisableThreadControl / ThreadControlInterval.
func (s *System) Config() Config { return s.cfg }

// Stop shuts the node down: background loops (heartbeats, retry/cleanup
// goroutines) are signalled and awaited, stages drain, the transport
// closes.
func (s *System) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.done)
	s.tr.Close()
	s.recvStage.Close()
	s.workStage.Close()
	s.sendStage.Close()
	s.ctlStage.Close()
	if s.snapPool != nil {
		s.snapPool.Close()
	}
	s.bg.Wait()
}

// Stats is a snapshot of node counters.
type Stats struct {
	Node           transport.NodeID
	Activations    int
	CallsLocal     uint64
	CallsRemote    uint64
	MigrationsIn   uint64
	MigrationsOut  uint64
	Redirects      uint64
	MonitoredEdges int
}

// Stats snapshots the node counters.
func (s *System) Stats() Stats {
	n := s.activationsLen()
	s.monMu.Lock()
	edges := s.monitor.EdgeCount()
	s.monMu.Unlock()
	return Stats{
		Node:           s.Node(),
		Activations:    n,
		CallsLocal:     s.callsLocal.Load(),
		CallsRemote:    s.callsRemote.Load(),
		MigrationsIn:   s.migrationsIn.Load(),
		MigrationsOut:  s.migrationsOut.Load(),
		Redirects:      s.redirects.Load(),
		MonitoredEdges: edges,
	}
}

// Call invokes an actor from outside any actor (a frontend/client call).
// This is where trace sampling is decided: a sampled call carries its trace
// context on every hop it causes.
func (s *System) Call(to Ref, method string, args, reply interface{}) error {
	return s.call(nil, nil, to, method, args, reply)
}

// call is the shared invocation path. from is non-nil for actor→actor
// calls (monitored as communication edges); parent is non-nil when the
// caller's turn is itself traced, so the nested call joins that trace.
func (s *System) call(from *Ref, parent *traceCtx, to Ref, method string, args, reply interface{}) error {
	s.mu.RLock()
	stopped := s.stopped
	_, known := s.types[to.Type]
	s.mu.RUnlock()
	if stopped {
		return ErrStopped
	}
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownType, to.Type)
	}
	if from != nil {
		s.observeEdge(*from, to)
	}
	tctx := parent
	if tctx == nil && s.sampler.Sample() {
		tctx = &traceCtx{traceID: s.sampler.ID()}
	}
	var start time.Time
	if tctx != nil || s.callDur != nil || s.sloWin != nil {
		start = time.Now()
	}
	var sp *trace.Span
	if tctx != nil {
		sp = &trace.Span{
			TraceID: tctx.traceID, SpanID: s.sampler.ID(), ParentID: tctx.parentID,
			Node: string(s.Node()), Kind: "client", Actor: to.String(), Method: method,
			Start: start,
		}
	}
	// Zero-copy local fast path: no serialization when the callee is
	// co-located and both sides opt in (ValueReceiver + codec.Copier).
	if handled, err := s.callLocalValue(sp, to, method, args, reply); handled {
		if s.prof != nil && from != nil {
			s.prof.ObserveOut(refHash(*from), 1, 0) // value call: no wire bytes
		}
		s.finishCall(sp, start, method, err)
		return err
	}
	var data []byte
	if args != nil {
		var err error
		ms := start
		if sp != nil {
			ms = time.Now()
		}
		data, err = codec.MarshalAppend(codec.GetBuffer(), args)
		if err != nil {
			return err
		}
		if sp != nil {
			sp.Serialize = time.Since(ms)
		}
	}
	if s.prof != nil && from != nil {
		s.prof.ObserveOut(refHash(*from), 1, uint64(len(data)))
	}
	result, err, recyclable := s.dispatchRetry(to, method, data, sp)
	if data != nil && recyclable {
		// The callee's turn is over (reply received, or the call was
		// rejected before delivery), so no reference to the args buffer
		// survives and it can return to the pool. When an attempt timed
		// out or was retried, a stale send may still be reading it — leak
		// it to the GC instead.
		codec.PutBuffer(data)
	}
	if err != nil {
		s.finishCall(sp, start, method, err)
		return err
	}
	var derr error
	if reply != nil {
		ms := start
		if sp != nil {
			ms = time.Now()
		}
		derr = codec.Unmarshal(result, reply)
		if sp != nil {
			sp.Serialize += time.Since(ms)
		}
	}
	if result != nil {
		codec.PutBuffer(result)
	}
	s.finishCall(sp, start, method, derr)
	return derr
}

// marshalArgs encodes call arguments (nil stays nil).
func marshalArgs(args interface{}) ([]byte, error) {
	if args == nil {
		return nil, nil
	}
	return codec.Marshal(args)
}

// callLocalValue attempts the zero-copy local call: when the callee is
// activated on this node, its actor implements ValueReceiver, and the
// arguments travel by CopyValue, the invocation performs no serialization
// at all — one deep copy in, one deep copy out, isolation preserved (§2).
// handled=false falls back to the encoded path (remote callee, missing
// interfaces, or a placement race — all handled there). A traced call marks
// sp as a "local" span and measures its mailbox wait and execution through
// the turn timing.
func (s *System) callLocalValue(sp *trace.Span, to Ref, method string, args, reply interface{}) (bool, error) {
	var argsCopy interface{}
	if args != nil {
		c, ok := args.(codec.Copier)
		if !ok {
			return false, nil
		}
		argsCopy = c.CopyValue()
	}
	act, err := s.activationFor(to, true, false)
	if err != nil || act == nil {
		return false, nil
	}
	if _, ok := act.actor.(ValueReceiver); !ok {
		return false, nil
	}
	s.callsLocal.Add(1)
	var trc *turnTiming
	if sp != nil {
		sp.Kind = "local"
		trc = &turnTiming{traceID: sp.TraceID, spanID: sp.SpanID, enqueuedAt: time.Now()}
	}
	type outcome struct {
		data []byte
		val  interface{}
		err  error
	}
	ch := make(chan outcome, 1)
	act.enqueue(invocation{
		method:  method,
		argsVal: argsCopy,
		isVal:   true,
		trc:     trc,
		respond: func(data []byte, val interface{}, err error) {
			ch <- outcome{data: data, val: val, err: err}
		},
	}, s)
	select {
	case out := <-ch:
		if sp != nil {
			sp.WorkQueue, sp.Exec, sp.Epoch = trc.workQueue, trc.exec, trc.epoch
			sp.Snapshot = trc.snapshot
		}
		switch {
		case out.err != nil:
			return true, out.err
		case reply == nil:
			return true, nil
		case out.val != nil:
			return true, codec.Assign(reply, out.val)
		case out.data != nil:
			return true, codec.Unmarshal(out.data, reply)
		}
		return true, nil
	case <-time.After(s.cfg.CallTimeout):
		// Do not read trc here: the turn may still be running and writing
		// it. The span keeps zero components and records the timeout.
		return true, fmt.Errorf("%w: %s.%s", ErrTimeout, to, method)
	}
}

// dispatchRetry is the fault-tolerant invocation driver: it runs dispatch
// attempts under the single CallTimeout budget, retrying retryable failures
// (unreachable peers, suspect/dead-node timeouts, plain timeouts — the
// reply dedup window on the callee makes re-sends safe) with capped
// exponential backoff plus jitter. The call id is fixed across attempts so
// the callee can recognize re-sends. recyclable reports whether the args
// buffer is provably unreferenced (single attempt, no timeout) and may
// return to the pool.
func (s *System) dispatchRetry(to Ref, method string, args []byte, sp *trace.Span) (res []byte, err error, recyclable bool) {
	deadline := time.Now().Add(s.cfg.CallTimeout)
	callID := s.nextID.Add(1)
	if s.cfg.DisableFailover {
		res, err = s.dispatch(to, method, args, 0, callID, deadline, "", sp)
		return res, err, !errors.Is(err, ErrTimeout)
	}
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		start := time.Now()
		res, err = s.dispatch(to, method, args, 0, callID, deadline, "", sp)
		if err == nil {
			return res, nil, attempt == 0
		}
		if !retryable(err) {
			return res, err, attempt == 0 && !errors.Is(err, ErrTimeout)
		}
		if errors.Is(err, transport.ErrUnreachable) || errors.Is(err, errPeerDown) {
			// The target node itself is gone (or distrusted): the cache
			// entry that routed us there is poison, so re-resolve through
			// the directory next attempt. A plain timeout must NOT purge
			// the cache — after a migration whose directory update is
			// still in flight, the source's forwarding tombstone (mirrored
			// into caches by its redirects) is the only correct route, and
			// the directory is the staler of the two; re-resolving through
			// it would re-place the actor on a node that already handed it
			// off (split brain).
			s.cacheDel(to)
		}
		wait := s.jitter(backoff)
		if backoff < s.cfg.RetryBackoff*16 {
			backoff *= 2
		}
		if time.Since(start) > wait {
			wait = 0 // the attempt itself already waited (a timeout)
		}
		if time.Until(deadline) <= wait+time.Millisecond {
			return nil, err, false // budget exhausted
		}
		s.failures.Retries.Add(1)
		if sp != nil {
			sp.Retries++
		}
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-s.done:
				return nil, ErrStopped, false
			}
		}
	}
}

// rehydrateWireErr restores sentinel identity to an error string received
// off the wire. Envelope.Err carries only text, so without this a sentinel
// raised on a remote hop arrives as an opaque error and the origin
// misclassifies it. A redirect-chase, peer-down, or timeout the remote hit
// against a dying third node is a transient — the origin's retry loop must
// keep going (the callee's dedup window keeps re-sends at-most-once), not
// surface it as terminal. Overload keeps its identity too, though it stays
// non-retryable in dispatchRetry (§6.1 load shedding: the runtime must not
// amplify a saturated node's queue with automatic retries) — identity lets
// the caller classify it and back off deliberately.
func rehydrateWireErr(msg string) error {
	for _, sentinel := range []error{errRedirectChase, errPeerDown, ErrTimeout, ErrOverloaded} {
		if pfx := sentinel.Error(); strings.HasPrefix(msg, pfx) {
			return fmt.Errorf("%w%s", sentinel, strings.TrimPrefix(msg, pfx))
		}
	}
	return errors.New(msg)
}

// retryable classifies call failures: transport-level unreachability and
// timeouts may be re-sent (the dedup window guarantees at-most-once
// execution per activation); application errors, overload rejections, and
// routing errors are returned to the caller as-is.
func retryable(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, errPeerDown) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, errRedirectChase)
}

// jitter spreads a backoff delay over [0.5d, 1.5d) so retry storms from
// many callers decorrelate.
func (s *System) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	f := 0.5 + s.rng.Float64()
	s.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// attemptTimeout bounds one remote attempt so a mid-call node failure can
// be retried within the budget: long enough for the detector to have an
// opinion (two heartbeat intervals), never longer than the remaining
// budget. Slow turns are not penalized — a timed-out attempt re-sends with
// the same call id, and the retry either adopts the still-running turn's
// reply or gets the deduped recorded one.
func (s *System) attemptTimeout(deadline time.Time) time.Duration {
	remaining := time.Until(deadline)
	if s.cfg.DisableFailover {
		return remaining
	}
	cap := 2 * s.cfg.HeartbeatInterval
	if floor := 4 * s.cfg.RetryBackoff; cap < floor {
		cap = floor
	}
	if remaining < cap {
		return remaining
	}
	return cap
}

// dispatch routes one encoded invocation, following redirects. hint, when
// non-empty, names the next hop directly (a redirect target from the
// previous hop) and overrides local resolution: the redirecting node's
// knowledge is strictly fresher than anything held here, and re-resolving
// locally could bounce the chase back through a stale route of our own (a
// not-yet-expired forwarding tombstone from an old outbound migration
// outranks the cache, so without the hint every hop re-resolved to the
// same stale target and the chase never advanced).
func (s *System) dispatch(to Ref, method string, args []byte, depth int, callID uint64, deadline time.Time, hint transport.NodeID, sp *trace.Span) ([]byte, error) {
	if depth > 3 {
		return nil, fmt.Errorf("%w for %s", errRedirectChase, to)
	}
	node := hint
	if node == "" {
		var err error
		node, err = s.locate(to, true, deadline)
		if err != nil {
			return nil, err
		}
	}
	var res []byte
	var err error
	if node == s.Node() {
		s.callsLocal.Add(1)
		res, err = s.invokeLocal(to, method, args, deadline, sp)
	} else {
		if !s.cfg.DisableFailover && s.PeerStateOf(node) == PeerDead {
			// Fail fast instead of waiting out a timeout against a node the
			// detector already declared dead; the retry re-resolves through
			// the (purged) directory to a live host.
			return nil, fmt.Errorf("%w: %s is dead", errPeerDown, node)
		}
		s.callsRemote.Add(1)
		res, err = s.remoteCall(node, to, method, args, callID, s.attemptTimeout(deadline), sp)
	}
	if err != nil {
		// A redirect continues the chase whether the hop was remote or local:
		// a hinted hop can land back on this node (the redirecting peer
		// believed the actor returned here) and invokeLocal answers with a
		// redirect of its own when it is not the host.
		var redir redirectError
		if errors.As(err, &redir) {
			s.redirects.Add(1)
			if sp != nil {
				sp.Redirects++
			}
			s.cachePut(to, redir.node)
			return s.dispatch(to, method, args, depth+1, callID, deadline, redir.node, sp)
		}
		if errors.Is(err, ErrTimeout) && node != s.Node() && s.PeerStateOf(node) != PeerAlive {
			return nil, fmt.Errorf("%w: %w", errPeerDown, err)
		}
		return nil, err
	}
	return res, nil
}

type redirectError struct{ node transport.NodeID }

func (e redirectError) Error() string { return "actor: redirected to " + string(e.node) }

// invokeLocal runs the invocation on the local activation (activating on
// demand), synchronously from the caller's perspective. The wait runs to
// the caller's full deadline — local execution has no lost-message failure
// mode, so chunked attempts would only risk double-enqueueing the turn.
func (s *System) invokeLocal(to Ref, method string, args []byte, deadline time.Time, sp *trace.Span) ([]byte, error) {
	act, err := s.activationFor(to, true, true)
	if err != nil {
		return nil, err
	}
	if act == nil {
		// We are not (or no longer) the host: redirect with the routed
		// resolution's answer (tombstone or directory — see locateDir).
		node, err := s.locateDir(to, false, deadline)
		if err != nil {
			return nil, err
		}
		if node == s.Node() {
			return nil, fmt.Errorf("actor: routing loop for %s", to)
		}
		return nil, redirectError{node: node}
	}
	var trc *turnTiming
	if sp != nil {
		sp.Kind = "local"
		trc = &turnTiming{traceID: sp.TraceID, spanID: sp.SpanID, enqueuedAt: time.Now()}
	}
	type outcome struct {
		data []byte
		err  error
	}
	ch := make(chan outcome, 1)
	act.enqueue(invocation{
		method: method,
		args:   args,
		trc:    trc,
		respond: func(data []byte, _ interface{}, err error) {
			ch <- outcome{data: data, err: err}
		},
	}, s)
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case out := <-ch:
		if sp != nil {
			sp.WorkQueue, sp.Exec, sp.Epoch = trc.workQueue, trc.exec, trc.epoch
			sp.Snapshot = trc.snapshot
		}
		return out.data, out.err
	case <-timer.C:
		// trc stays unread: the turn may still be running and writing it.
		return nil, fmt.Errorf("%w: %s.%s", ErrTimeout, to, method)
	case <-s.done:
		return nil, ErrStopped
	}
}

// remoteCall performs one RPC attempt through the send stage and waits up
// to timeout for the correlated reply. The id is owned by the caller so
// retries of one logical call share it (the callee's dedup window keys on
// it); concurrent attempts cannot overlap because attempts are sequential
// within dispatchRetry.
func (s *System) remoteCall(node transport.NodeID, to Ref, method string, args []byte, id uint64, timeout time.Duration, sp *trace.Span) ([]byte, error) {
	ch := make(chan *transport.Envelope, 1)
	s.pendPut(id, ch)
	defer s.pendDel(id)

	env := &transport.Envelope{
		Kind: transport.KindCall, ID: id,
		ActorType: to.Type, ActorKey: to.Key,
		Method: method, Payload: args,
	}
	type sendOutcome struct {
		err  error
		wait time.Duration
	}
	sendCh := make(chan sendOutcome, 1)
	var serr error
	if sp != nil {
		// Traced attempt: the hop context rides the envelope, and the send
		// stage reports the envelope's queue wait (measured anyway for the
		// stage estimators) back through the channel — never by writing the
		// span from the send task, which the caller may have timed out on.
		env.Trace = &transport.Trace{TraceID: sp.TraceID, SpanID: sp.SpanID, ParentID: sp.ParentID}
		serr = s.sendStage.SubmitTimed(func(wait time.Duration) {
			sendCh <- sendOutcome{err: s.tr.Send(node, env), wait: wait}
		})
	} else {
		serr = s.sendStage.Submit(func() { sendCh <- sendOutcome{err: s.tr.Send(node, env)} })
	}
	if serr != nil {
		return nil, fmt.Errorf("%w: send queue", ErrOverloaded)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case out := <-sendCh:
			if out.err != nil {
				// Surface transport failures (ErrUnreachable on a dead
				// peer's address) instead of waiting out the timeout.
				return nil, out.err
			}
			if sp != nil {
				sp.SendQueue = out.wait
			}
			sendCh = nil // delivered; keep waiting for the reply
		case reply := <-ch:
			if sp != nil {
				if sendCh != nil {
					// The reply can only exist because the send completed,
					// so the send outcome is already buffered; drain it for
					// the queue-wait component.
					select {
					case out := <-sendCh:
						if out.err == nil {
							sp.SendQueue = out.wait
						}
					default:
					}
				}
				if rt := reply.Trace; rt != nil {
					sp.RecvQueue = time.Duration(rt.RecvQueueNs)
					sp.WorkQueue = time.Duration(rt.WorkQueueNs)
					sp.Exec = time.Duration(rt.ExecNs)
					sp.Epoch = rt.Epoch
					if rt.Flags&transport.TraceFlagDedupHit != 0 {
						sp.DedupHit = true
					}
					if rt.Flags&transport.TraceFlagSnapshot != 0 {
						sp.Snapshot = true
					}
				}
			}
			if reply.Err != "" {
				if strings.HasPrefix(reply.Err, redirectPrefix) {
					return nil, redirectError{node: transport.NodeID(strings.TrimPrefix(reply.Err, redirectPrefix))}
				}
				return nil, rehydrateWireErr(reply.Err)
			}
			return reply.Payload, nil
		case <-timer.C:
			return nil, fmt.Errorf("%w: %s.%s @%s", ErrTimeout, to, method, node)
		case <-s.done:
			return nil, ErrStopped
		}
	}
}

// onEnvelope is the transport inbound handler. Calls and control verbs
// funnel through the receive stage (deserialization/demux — Fig. 2); traced
// calls go through the timed submit so their receive-stage queue wait lands
// in the server span. Replies are demuxed inline on the transport goroutine:
// demux is non-blocking (a striped map lookup plus a non-blocking channel
// send), and routing replies through the stage deadlocked the receive plane
// whenever every receive worker was parked in a synchronous control call
// (handleCall's remote directory lookup) — the replies those workers were
// waiting for sat in the queue behind them until the call timeout fired.
func (s *System) onEnvelope(env *transport.Envelope) {
	e := env
	// Any inbound envelope is proof of life for its sender: passive failure
	// detection on top of the active ping loop. Under load the active loop
	// false-positives — pings starve while real traffic still flows — and a
	// node wrongly marked dead stops being consulted for snapshot recovery
	// and directory ownership, which turns a detector hiccup into lost
	// state. Resetting on every received envelope heals the verdict at the
	// next message from the peer. (A half-partitioned peer that can send
	// but not receive reads as alive — the classic passive-detection
	// tradeoff; the active loop still degrades it once its replies stop.)
	if e.From != "" {
		s.markPeerAlive(e.From)
	}
	if e.Kind == transport.KindReply {
		if ch := s.pendGet(e.ID); ch != nil {
			select {
			case ch <- e:
			default:
			}
		}
		return
	}
	var err error
	switch {
	case e.Kind == transport.KindControl:
		// Control verbs ride their own stage (see ctlStage): they are the
		// dependencies the parked receive workers wait on, so they must
		// stay serviceable when the receive pool is saturated.
		err = s.ctlStage.Submit(func() { s.handleControl(e) })
	case e.Trace != nil && e.Kind == transport.KindCall:
		err = s.recvStage.SubmitTimed(func(wait time.Duration) { s.handleCall(e, wait) })
	default:
		err = s.recvStage.Submit(func() { s.handle(e) })
	}
	if err != nil {
		// Receive queue full: reject calls outright (§6.1 saturation).
		if e.Kind == transport.KindCall || e.Kind == transport.KindControl {
			s.replyErr(e, ErrOverloaded.Error())
		}
	}
}

func (s *System) handle(env *transport.Envelope) {
	switch env.Kind {
	case transport.KindCall:
		s.handleCall(env, 0)
	case transport.KindControl:
		s.handleControl(env)
	}
}

// --- reply dedup window (at-most-once turns under call retries) ---

// dedupKey identifies one logical call: the caller's node plus its call id
// (stable across that call's retry attempts).
type dedupKey struct {
	from transport.NodeID
	id   uint64
}

// dedupEntry records a call's outcome. While the turn is still running the
// entry is pending (done=false) and duplicate deliveries are simply
// dropped — the running turn's reply carries the same id the retrying
// caller is waiting on. Once done, duplicates are answered from the record.
// canceled marks a delivery that resolved without a turn (see dedupCancel);
// the next delivery of the key runs as if it were the first.
type dedupEntry struct {
	done     bool
	canceled bool
	payload  []byte
	errStr   string
}

// dedupWindow bounds the recorded-reply window (FIFO eviction, split
// evenly across dedupShardCount stripes). Entries only need to outlive one
// call's retry schedule, which the CallTimeout budget bounds; 8192
// in-flight-or-recent remote calls per node is far beyond that horizon at
// any load the queues admit.
const dedupWindow = 8192

// dedupShard is one stripe of the reply-dedup window, with its own FIFO
// order ring (head-indexed so eviction never leaks the backing array).
type dedupShard struct {
	mu    sync.Mutex
	m     map[dedupKey]*dedupEntry
	order []dedupKey
	head  int
}

// dedupShardOf stripes by caller identity XOR call id: one caller's
// consecutive calls spread across stripes, and distinct callers never
// collide on a stripe systematically.
func (s *System) dedupShardOf(key dedupKey) *dedupShard {
	return &s.dedupShards[(strHash(string(key.from))^key.id)&(dedupShardCount-1)]
}

// dedupBegin claims the dedup slot for a call delivery. It returns
// proceed=true exactly once per key while the entry is resident — the
// caller must finish with dedupResolve. Duplicate deliveries return the
// recorded entry (nil while the original is still executing).
func (s *System) dedupBegin(key dedupKey) (proceed bool, prior *dedupEntry) {
	d := s.dedupShardOf(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.m[key]; ok {
		if e.canceled {
			// A prior delivery answered with routing control flow, not a
			// turn; revive the slot so this delivery resolves fresh.
			*e = dedupEntry{}
			return true, nil
		}
		if !e.done {
			return false, nil
		}
		return false, e
	}
	d.m[key] = &dedupEntry{}
	d.order = append(d.order, key)
	if len(d.order)-d.head > dedupWindow/dedupShardCount {
		delete(d.m, d.order[d.head])
		d.order[d.head] = dedupKey{}
		d.head++
		if d.head >= len(d.order)/2 && d.head > 64 {
			d.order = append(d.order[:0], d.order[d.head:]...)
			d.head = 0
		}
	}
	return true, nil
}

// dedupResolve records a call's reply so later duplicate deliveries resend
// it instead of re-executing. The payload is copied: the original slice is
// recycled by the caller once its reply round trip completes.
func (s *System) dedupResolve(key dedupKey, payload []byte, errStr string) {
	var cp []byte
	if len(payload) > 0 {
		cp = append(make([]byte, 0, len(payload)), payload...)
	}
	d := s.dedupShardOf(key)
	d.mu.Lock()
	if e, ok := d.m[key]; ok {
		e.done = true
		e.payload = cp
		e.errStr = errStr
	}
	d.mu.Unlock()
}

// dedupCancel releases a pending dedup entry whose delivery resolved
// without executing a turn (a redirect or a routing dead end). Those
// outcomes describe the routing plane at one instant, not the call: a
// retried id must re-consult routing, not replay a recorded redirect —
// recording one pins every retry of that call to a stale route for the
// rest of the window (the actor has often arrived here by then). The entry
// is marked rather than deleted so its slot in the eviction order stays
// unique; dedupBegin revives it as pending on the next delivery.
func (s *System) dedupCancel(key dedupKey) {
	d := s.dedupShardOf(key)
	d.mu.Lock()
	if e, ok := d.m[key]; ok {
		e.canceled = true
	}
	d.mu.Unlock()
}

// handleCall delivers a remote invocation to the local activation, or
// redirects the caller if the actor lives elsewhere now. Deliveries are
// funneled through the dedup window so a retried call never executes a
// second turn on this node. recvWait is the envelope's receive-stage queue
// wait (zero when untraced); a traced call builds the server span here and
// ships its measured components back on the reply as pure durations, so
// cross-node clock skew never enters the decomposition.
func (s *System) handleCall(env *transport.Envelope, recvWait time.Duration) {
	to := Ref{Type: env.ActorType, Key: env.ActorKey}
	from := env.From
	id := env.ID
	key := dedupKey{from: from, id: id}
	tr := env.Trace
	var sp *trace.Span
	var trc *turnTiming
	if tr != nil {
		sp = &trace.Span{
			TraceID: tr.TraceID, SpanID: tr.SpanID, ParentID: tr.ParentID,
			Node: string(s.Node()), Kind: "server", Actor: to.String(), Method: env.Method,
			Start: time.Now(), RecvQueue: recvWait,
		}
		trc = &turnTiming{traceID: tr.TraceID, spanID: tr.SpanID}
	}
	if !s.cfg.DisableFailover {
		proceed, prior := s.dedupBegin(key)
		if !proceed {
			s.failures.DedupHits.Add(1)
			if prior != nil {
				var rt *transport.Trace
				if tr != nil {
					sp.DedupHit = true
					rt = &transport.Trace{
						TraceID: tr.TraceID, SpanID: tr.SpanID, ParentID: tr.ParentID,
						RecvQueueNs: uint64(recvWait), Flags: transport.TraceFlagDedupHit,
					}
				}
				s.sendReply(from, id, prior.payload, prior.errStr, rt, sp)
			}
			// Still executing: drop the duplicate; the running turn's
			// reply answers the caller's current attempt (same id).
			return
		}
	}
	var srvStart time.Time
	if s.srvDur != nil {
		srvStart = time.Now()
	}
	// preTurn is true until the delivery is handed to an activation: errors
	// before that point (activation failures — e.g. a durable recovery pull
	// against a dying replica) describe the infrastructure at one instant,
	// not the call, and must not be recorded against the call id.
	preTurn := true
	respond := func(data []byte, err error) {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		if s.srvDur != nil {
			s.srvDur.Observe(time.Since(srvStart), env.Method)
		}
		if !s.cfg.DisableFailover {
			// Redirects and routing dead ends are answers about where the
			// actor was, not what its turn returned. Recording them would
			// replay a stale route to every retry of this call id for the
			// rest of the window — a retried chase could orbit the cluster
			// on echoes long after the actor settled. Release the slot so
			// the retry re-resolves; only executed turns (and real
			// application errors) are deduplicated. Pre-turn failures are
			// the same kind of transient: no turn ran, so a retry must
			// re-attempt the activation, not replay this snapshot of it.
			if strings.HasPrefix(errStr, redirectPrefix) ||
				strings.HasPrefix(errStr, "actor: cannot route") ||
				(preTurn && errStr != "") {
				s.dedupCancel(key)
			} else {
				s.dedupResolve(key, data, errStr)
			}
		}
		var rt *transport.Trace
		if tr != nil {
			// The turn (if any) has completed: trc's timings are ordered
			// before this callback by the respond channel send.
			sp.WorkQueue, sp.Exec, sp.Epoch = trc.workQueue, trc.exec, trc.epoch
			sp.Snapshot = trc.snapshot
			sp.Err = errStr
			rt = &transport.Trace{
				TraceID: tr.TraceID, SpanID: tr.SpanID, ParentID: tr.ParentID,
				RecvQueueNs: uint64(recvWait), WorkQueueNs: uint64(trc.workQueue),
				ExecNs: uint64(trc.exec), Epoch: trc.epoch,
			}
			if trc.snapshot {
				rt.Flags |= transport.TraceFlagSnapshot
			}
		}
		s.sendReply(from, id, data, errStr, rt, sp)
	}
	var act *activation
	for attempt := 0; ; attempt++ {
		var err error
		act, err = s.activationFor(to, true, true)
		if err != nil {
			respond(nil, err)
			return
		}
		if act != nil {
			break
		}
		node, lerr := s.locateDir(to, false, time.Now().Add(s.cfg.CallTimeout))
		if lerr == nil && node == s.Node() && attempt < 2 {
			// activationFor routed the actor elsewhere, but by now the
			// location plane says it lives here — a migration landed (or a
			// stale cached route was invalidated) between the two checks.
			// Re-resolve instead of bouncing the caller with a dead end.
			continue
		}
		if lerr != nil || node == s.Node() {
			respond(nil, fmt.Errorf("actor: cannot route %s", to))
			return
		}
		respond(nil, errors.New(redirectPrefix+string(node)))
		return
	}
	if trc != nil {
		trc.enqueuedAt = time.Now()
	}
	preTurn = false
	act.enqueue(invocation{
		method: env.Method,
		args:   env.Payload,
		trc:    trc,
		respond: func(data []byte, _ interface{}, err error) {
			respond(data, err)
		},
	}, s)
}

// sendReply ships one reply envelope through the send stage (inline as a
// best effort under overload). For traced calls the reply carries the
// callee's hop-timing record (rt) and the send task completes the server
// span with its own queue wait before publishing it — the span is owned by
// exactly one goroutine at every point, so no turn-side write can race a
// ring reader.
func (s *System) sendReply(to transport.NodeID, id uint64, payload []byte, errStr string, rt *transport.Trace, sp *trace.Span) {
	reply := &transport.Envelope{Kind: transport.KindReply, ID: id, Payload: payload, Err: errStr, Trace: rt}
	if sp == nil {
		if serr := s.sendStage.Submit(func() { _ = s.tr.Send(to, reply) }); serr != nil {
			_ = s.tr.Send(to, reply)
		}
		return
	}
	finish := func(wait time.Duration) {
		_ = s.tr.Send(to, reply)
		sp.ReplySend = wait
		sp.Total = time.Since(sp.Start)
		s.spans.Put(sp)
	}
	if serr := s.sendStage.SubmitTimed(finish); serr != nil {
		finish(0)
	}
}

func (s *System) replyErr(env *transport.Envelope, msg string) {
	reply := &transport.Envelope{Kind: transport.KindReply, ID: env.ID, Err: msg}
	_ = s.tr.Send(env.From, reply)
}

// --- placement directory (hash-homed entries + per-node location cache) ---
//
// directoryOwner (failure.go) homes each ref on its hash-modulo peer; when
// that peer is declared dead its ranges — and only its ranges — rehash to
// survivors by rendezvous hashing.

// locate resolves ref's hosting node for a CALLER-SIDE first hop: local
// activation wins, then a live forwarding tombstone (authoritative — the
// actor just migrated off this node), then the location cache, then the
// directory owner (placing the actor on a node according to the placement
// policy when unregistered and place is true). The local checks share one
// shard read-lock — the per-call fast path is a single striped acquisition.
// The directory RPC is bounded by the caller's deadline so a mid-lookup
// owner failure surfaces in time to retry against the rehashed owner.
func (s *System) locate(ref Ref, place bool, deadline time.Time) (transport.NodeID, error) {
	sh := s.shardOf(ref)
	sh.mu.RLock()
	if _, ok := sh.activations[ref]; ok {
		sh.mu.RUnlock()
		return s.Node(), nil
	}
	if f, ok := sh.forwards[ref]; ok && time.Now().Before(f.expires) {
		sh.mu.RUnlock()
		return f.node, nil
	}
	if e, ok := sh.locCache[ref]; ok {
		n := e.node
		if !e.used.Load() { // avoid dirtying the line on every repeat hit
			e.used.Store(true)
		}
		sh.mu.RUnlock()
		s.locHits.Add(1)
		return n, nil
	}
	sh.mu.RUnlock()
	s.locMisses.Add(1)
	return s.locateDir(ref, place, deadline)
}

// locateDir resolves ref for ROUTED deliveries (a call some caller already
// steered here) and for locate's cache-miss path: local activation, then a
// live forwarding tombstone, then directory authority — never the location
// cache. Both skips matter. Skipping the cache breaks stale-route cycles: a
// deactivated actor's leftover routes can point a ring of non-hosts at each
// other, and if each bounced callers with its cached guess, nobody would
// ever consult the owner and the directory-designated home would never
// activate — the actor stays unreachable until the routes happen to evict.
// Honoring the tombstone covers the opposite window: right after a
// migration the directory may still name this node (its update retries in
// the background under loss), and following it would re-instantiate an
// actor whose state just left. The tombstone is the migration's own
// authoritative forward, so it outranks the lagging directory.
func (s *System) locateDir(ref Ref, place bool, deadline time.Time) (transport.NodeID, error) {
	sh := s.shardOf(ref)
	sh.mu.RLock()
	_, active := sh.activations[ref]
	fwd, haveFwd := sh.forwards[ref]
	sh.mu.RUnlock()
	if active {
		return s.Node(), nil
	}
	if haveFwd && time.Now().Before(fwd.expires) {
		return fwd.node, nil
	}
	owner := s.directoryOwner(ref)
	if owner == s.Node() {
		n, err := s.dirLookupLocal(ref, s.Node(), place)
		if err != nil {
			return "", err
		}
		s.cachePut(ref, n)
		return n, nil
	}
	// Remote directory lookup (control RPC).
	var node string
	err := s.controlCallT(owner, ctlDirLookup, dirRequest{
		Type: ref.Type, Key: ref.Key, Suggest: string(s.Node()), Place: place,
	}, &node, s.attemptTimeout(deadline))
	if err != nil {
		if errors.Is(err, ErrTimeout) && !s.cfg.DisableFailover && s.PeerStateOf(owner) != PeerAlive {
			return "", fmt.Errorf("%w: directory owner %s: %w", errPeerDown, owner, err)
		}
		return "", err
	}
	n := transport.NodeID(node)
	s.cachePut(ref, n)
	return n, nil
}

// dirLookupLocal consults/updates this node's owned directory entries. A
// recorded placement homed on a node now declared dead is expunged and
// re-placed among live peers — the failover path for entries created (or
// re-learned) after the death purge.
func (s *System) dirLookupLocal(ref Ref, suggest transport.NodeID, place bool) (transport.NodeID, error) {
	dead := func(n transport.NodeID) bool {
		return !s.cfg.DisableFailover && s.PeerStateOf(n) == PeerDead
	}
	sh := s.shardOf(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.dirEntries[ref]; ok {
		if !dead(e.node) {
			return e.node, nil
		}
		delete(sh.dirEntries, ref)
		delete(sh.locCache, ref)
		s.failures.FailoverPurged.Add(1)
	}
	if !place {
		return "", fmt.Errorf("actor: %s not registered", ref)
	}
	var n transport.NodeID
	if s.cfg.Placement == PlaceLocal && !dead(suggest) {
		n = suggest
	} else {
		live := s.livePeers()
		s.rngMu.Lock()
		n = live[s.rng.Intn(len(live))]
		s.rngMu.Unlock()
	}
	sh.dirEntries[ref] = dirEntry{node: n}
	return n, nil
}

// dirEntry is one owned directory record: where the actor lives, and the
// migration epoch of the incarnation that registered it. Updates carry the
// epoch so a delayed retry of an older migration's update loses to the
// newer state it races with (background retries make updates arrive out of
// order under loss).
type dirEntry struct {
	node  transport.NodeID
	epoch uint64
}

// dirRequest is the directory control payload.
type dirRequest struct {
	Type, Key string
	Suggest   string
	Place     bool
	NewNode   string // for updates
	Epoch     uint64 // migration epoch of the update's incarnation
}

// controlCall is a generic request/response over KindControl envelopes,
// bounded by the configured CallTimeout.
func (s *System) controlCall(node transport.NodeID, verb string, args, reply interface{}) error {
	return s.controlCallT(node, verb, args, reply, s.cfg.CallTimeout)
}

// controlCallT is controlCall with an explicit timeout (heartbeat pings and
// deadline-bounded directory lookups use shorter budgets).
func (s *System) controlCallT(node transport.NodeID, verb string, args, reply interface{}, timeout time.Duration) error {
	data, err := codec.Marshal(args)
	if err != nil {
		return err
	}
	if node == s.Node() {
		out, cerr := s.handleControlVerb(verb, data, s.Node())
		if cerr != nil {
			return cerr
		}
		if reply != nil {
			return codec.Unmarshal(out, reply)
		}
		return nil
	}
	id := s.nextID.Add(1)
	ch := make(chan *transport.Envelope, 1)
	s.pendPut(id, ch)
	defer s.pendDel(id)
	env := &transport.Envelope{Kind: transport.KindControl, ID: id, Method: verb, Payload: data}
	if err := s.tr.Send(node, env); err != nil {
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.Err != "" {
			return rehydrateWireErr(r.Err)
		}
		if reply != nil {
			return codec.Unmarshal(r.Payload, reply)
		}
		return nil
	case <-timer.C:
		return fmt.Errorf("%w: control %s @%s", ErrTimeout, verb, node)
	case <-s.done:
		return ErrStopped
	}
}

func (s *System) handleControl(env *transport.Envelope) {
	out, err := s.handleControlVerb(env.Method, env.Payload, env.From)
	reply := &transport.Envelope{Kind: transport.KindReply, ID: env.ID, Payload: out}
	if err != nil {
		reply.Err = err.Error()
	}
	_ = s.tr.Send(env.From, reply)
}

func (s *System) handleControlVerb(verb string, payload []byte, from transport.NodeID) ([]byte, error) {
	switch verb {
	case ctlDirLookup:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		node, err := s.dirLookupLocal(Ref{Type: req.Type, Key: req.Key}, transport.NodeID(req.Suggest), req.Place)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(string(node))
	case ctlDirUpdate:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		ref := Ref{Type: req.Type, Key: req.Key}
		sh := s.shardOf(ref)
		sh.mu.Lock()
		// Epoch guard: updates arrive out of order (lost ones are retried in
		// the background for seconds), so a stale retry from an older
		// migration must not rewind a newer entry — nor stomp the owner's
		// location cache with a pointer the actor already left behind.
		if cur, ok := sh.dirEntries[ref]; !ok || req.Epoch >= cur.epoch {
			sh.dirEntries[ref] = dirEntry{node: transport.NodeID(req.NewNode), epoch: req.Epoch}
			s.cacheInsertLocked(sh, ref, transport.NodeID(req.NewNode))
		}
		sh.mu.Unlock()
		return codec.Marshal(ctlPlacementOK)
	case ctlDirRemove:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		ref := Ref{Type: req.Type, Key: req.Key}
		sh := s.shardOf(ref)
		sh.mu.Lock()
		delete(sh.dirEntries, ref)
		delete(sh.locCache, ref)
		sh.mu.Unlock()
		return codec.Marshal(ctlPlacementOK)
	case ctlMigratePut:
		return s.handleMigratePut(payload)
	case ctlMigrateDrop:
		return s.handleMigrateDrop(payload)
	case ctlSnap:
		return s.handleSnapPut(payload)
	case ctlSnapGet:
		return s.handleSnapGet(payload)
	case ctlExchange:
		return s.handleExchange(payload, from)
	case ctlTraces:
		var traceID uint64
		if err := codec.Unmarshal(payload, &traceID); err != nil {
			return nil, err
		}
		return codec.Marshal(s.spans.ForTrace(traceID))
	case ctlHotspots:
		var n int
		if err := codec.Unmarshal(payload, &n); err != nil {
			return nil, err
		}
		return codec.Marshal(s.LocalHotspots(n))
	case ctlPing:
		var sender string
		if err := codec.Unmarshal(payload, &sender); err != nil {
			return nil, err
		}
		// Receiving a ping is proof of life for the sender, whatever our
		// own pings to it have been doing (asymmetric partitions heal both
		// views faster this way).
		s.markPeerAlive(transport.NodeID(sender))
		return codec.Marshal(ctlPlacementOK)
	default:
		return nil, fmt.Errorf("actor: unknown control verb %q", verb)
	}
}

// observeEdge feeds the communication monitor (§4.3) and remembers the
// vertex↔ref mapping for migration decisions. The two vertex entries may
// land in different shards; they are taken one at a time (never nested), so
// no lock ordering is induced.
func (s *System) observeEdge(from, to Ref) {
	fh, th := refHash(from), refHash(to)
	sh := s.shardOfVertex(fh)
	sh.mu.Lock()
	sh.vertexRefs[fh] = from
	sh.mu.Unlock()
	sh = s.shardOfVertex(th)
	sh.mu.Lock()
	sh.vertexRefs[th] = to
	sh.mu.Unlock()
	s.monMu.Lock()
	s.monitor.ObserveMessage(graph.Vertex(fh), graph.Vertex(th), 1)
	s.monMu.Unlock()
}

// refOf maps a monitored vertex back to its ref.
func (s *System) refOf(v uint64) (Ref, bool) {
	sh := s.shardOfVertex(v)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.vertexRefs[v]
	return r, ok
}
