package actor

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/codec"
	"actop/internal/partition"
	"actop/internal/seda"
	"actop/internal/transport"
)

// Errors surfaced by calls.
var (
	// ErrTimeout is returned when a call's reply does not arrive in time.
	ErrTimeout = errors.New("actor: call timeout")
	// ErrUnknownType is returned when calling an unregistered actor type.
	ErrUnknownType = errors.New("actor: unknown actor type")
	// ErrOverloaded is returned when a stage queue rejects work.
	ErrOverloaded = errors.New("actor: node overloaded")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("actor: system stopped")
)

const redirectPrefix = "__redirect:"

// control verbs (KindControl envelopes).
const (
	ctlDirLookup   = "dir.lookup"
	ctlDirUpdate   = "dir.update"
	ctlDirRemove   = "dir.remove"
	ctlMigratePut  = "migrate.put"
	ctlMigrateDrop = "migrate.drop"
	ctlExchange    = "actop.exchange"
	ctlPlacementOK = "ok"
)

// System is one node of the distributed actor runtime.
type System struct {
	cfg   Config
	tr    transport.Transport
	peers []transport.NodeID // sorted, includes self

	recvStage *seda.Stage
	workStage *seda.Stage
	sendStage *seda.Stage

	mu          sync.RWMutex
	types       map[string]Factory
	activations map[Ref]*activation
	dirEntries  map[Ref]transport.NodeID // entries this node owns (hash-homed)
	locCache    map[Ref]transport.NodeID
	vertexRefs  map[uint64]Ref // vertex id → ref (for migration decisions)
	stopped     bool

	pendMu  sync.Mutex
	pending map[uint64]chan *transport.Envelope
	nextID  atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	monMu   sync.Mutex
	monitor *partition.Monitor

	// Counters (atomic; exported via Stats).
	callsLocal, callsRemote, migrationsIn, migrationsOut, redirects atomic.Uint64
}

// NewSystem starts a node. The transport's handler is installed here; do
// not share a transport between systems.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	peers := append([]transport.NodeID(nil), cfg.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	s := &System{
		cfg:         cfg,
		tr:          cfg.Transport,
		peers:       peers,
		types:       make(map[string]Factory),
		activations: make(map[Ref]*activation),
		dirEntries:  make(map[Ref]transport.NodeID),
		locCache:    make(map[Ref]transport.NodeID),
		vertexRefs:  make(map[uint64]Ref),
		pending:     make(map[uint64]chan *transport.Envelope),
		rng:         rand.New(rand.NewSource(cfg.Seed ^ int64(hashNode(cfg.Transport.Node())))),
		monitor:     partition.NewMonitor(cfg.MonitorCapacity),
	}
	s.recvStage = seda.NewStage("receiver", cfg.QueueCap, cfg.ReceiverWorkers)
	s.workStage = seda.NewStage("worker", cfg.QueueCap, cfg.Workers)
	s.sendStage = seda.NewStage("sender", cfg.QueueCap, cfg.SenderWorkers)
	s.tr.SetHandler(s.onEnvelope)
	return s, nil
}

func hashNode(n transport.NodeID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(n))
	return h.Sum64()
}

// Node reports this node's id.
func (s *System) Node() transport.NodeID { return s.tr.Node() }

// Peers reports the cluster membership (sorted, includes self).
func (s *System) Peers() []transport.NodeID {
	out := make([]transport.NodeID, len(s.peers))
	copy(out, s.peers)
	return out
}

// RegisterType installs the factory for an actor type. Register the same
// types on every node before traffic starts.
func (s *System) RegisterType(name string, f Factory) {
	s.mu.Lock()
	s.types[name] = f
	s.mu.Unlock()
}

// Stages exposes the SEDA stages (receive, work, send) for the thread
// controller.
func (s *System) Stages() (recv, work, send *seda.Stage) {
	return s.recvStage, s.workStage, s.sendStage
}

// Config returns a copy of the node's (filled) configuration, so attached
// controllers can honor DisableThreadControl / ThreadControlInterval.
func (s *System) Config() Config { return s.cfg }

// Stop shuts the node down: stages drain, the transport closes.
func (s *System) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.tr.Close()
	s.recvStage.Close()
	s.workStage.Close()
	s.sendStage.Close()
}

// Stats is a snapshot of node counters.
type Stats struct {
	Node           transport.NodeID
	Activations    int
	CallsLocal     uint64
	CallsRemote    uint64
	MigrationsIn   uint64
	MigrationsOut  uint64
	Redirects      uint64
	MonitoredEdges int
}

// Stats snapshots the node counters.
func (s *System) Stats() Stats {
	s.mu.RLock()
	n := len(s.activations)
	s.mu.RUnlock()
	s.monMu.Lock()
	edges := s.monitor.EdgeCount()
	s.monMu.Unlock()
	return Stats{
		Node:           s.Node(),
		Activations:    n,
		CallsLocal:     s.callsLocal.Load(),
		CallsRemote:    s.callsRemote.Load(),
		MigrationsIn:   s.migrationsIn.Load(),
		MigrationsOut:  s.migrationsOut.Load(),
		Redirects:      s.redirects.Load(),
		MonitoredEdges: edges,
	}
}

// Call invokes an actor from outside any actor (a frontend/client call).
func (s *System) Call(to Ref, method string, args, reply interface{}) error {
	return s.call(nil, to, method, args, reply)
}

// call is the shared invocation path. from is non-nil for actor→actor
// calls (monitored as communication edges).
func (s *System) call(from *Ref, to Ref, method string, args, reply interface{}) error {
	s.mu.RLock()
	stopped := s.stopped
	_, known := s.types[to.Type]
	s.mu.RUnlock()
	if stopped {
		return ErrStopped
	}
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownType, to.Type)
	}
	if from != nil {
		s.observeEdge(*from, to)
	}
	// Zero-copy local fast path: no serialization when the callee is
	// co-located and both sides opt in (ValueReceiver + codec.Copier).
	if handled, err := s.callLocalValue(to, method, args, reply); handled {
		return err
	}
	var data []byte
	if args != nil {
		var err error
		data, err = codec.MarshalAppend(codec.GetBuffer(), args)
		if err != nil {
			return err
		}
	}
	result, err := s.dispatch(to, method, data, 0)
	if data != nil && !errors.Is(err, ErrTimeout) {
		// The callee's turn is over (reply received, or the call was
		// rejected before delivery), so no reference to the args buffer
		// survives and it can return to the pool. On timeout the callee
		// may still be reading it — leak it to the GC instead.
		codec.PutBuffer(data)
	}
	if err != nil {
		return err
	}
	var derr error
	if reply != nil {
		derr = codec.Unmarshal(result, reply)
	}
	if result != nil {
		codec.PutBuffer(result)
	}
	return derr
}

// marshalArgs encodes call arguments (nil stays nil).
func marshalArgs(args interface{}) ([]byte, error) {
	if args == nil {
		return nil, nil
	}
	return codec.Marshal(args)
}

// callLocalValue attempts the zero-copy local call: when the callee is
// activated on this node, its actor implements ValueReceiver, and the
// arguments travel by CopyValue, the invocation performs no serialization
// at all — one deep copy in, one deep copy out, isolation preserved (§2).
// handled=false falls back to the encoded path (remote callee, missing
// interfaces, or a placement race — all handled there).
func (s *System) callLocalValue(to Ref, method string, args, reply interface{}) (bool, error) {
	var argsCopy interface{}
	if args != nil {
		c, ok := args.(codec.Copier)
		if !ok {
			return false, nil
		}
		argsCopy = c.CopyValue()
	}
	act, err := s.activationFor(to, true)
	if err != nil || act == nil {
		return false, nil
	}
	if _, ok := act.actor.(ValueReceiver); !ok {
		return false, nil
	}
	s.callsLocal.Add(1)
	type outcome struct {
		data []byte
		val  interface{}
		err  error
	}
	ch := make(chan outcome, 1)
	act.enqueue(invocation{
		method:  method,
		argsVal: argsCopy,
		isVal:   true,
		respond: func(data []byte, val interface{}, err error) {
			ch <- outcome{data: data, val: val, err: err}
		},
	}, s)
	select {
	case out := <-ch:
		switch {
		case out.err != nil:
			return true, out.err
		case reply == nil:
			return true, nil
		case out.val != nil:
			return true, codec.Assign(reply, out.val)
		case out.data != nil:
			return true, codec.Unmarshal(out.data, reply)
		}
		return true, nil
	case <-time.After(s.cfg.CallTimeout):
		return true, fmt.Errorf("%w: %s.%s", ErrTimeout, to, method)
	}
}

// dispatch routes one encoded invocation, following redirects.
func (s *System) dispatch(to Ref, method string, args []byte, depth int) ([]byte, error) {
	if depth > 3 {
		return nil, fmt.Errorf("actor: too many redirects for %s", to)
	}
	node, err := s.locate(to, true)
	if err != nil {
		return nil, err
	}
	if node == s.Node() {
		s.callsLocal.Add(1)
		return s.invokeLocal(to, method, args)
	}
	s.callsRemote.Add(1)
	res, err := s.remoteCall(node, to, method, args)
	if err != nil {
		var redir redirectError
		if errors.As(err, &redir) {
			s.redirects.Add(1)
			s.cachePut(to, redir.node)
			return s.dispatch(to, method, args, depth+1)
		}
		return nil, err
	}
	return res, nil
}

type redirectError struct{ node transport.NodeID }

func (e redirectError) Error() string { return "actor: redirected to " + string(e.node) }

// invokeLocal runs the invocation on the local activation (activating on
// demand), synchronously from the caller's perspective.
func (s *System) invokeLocal(to Ref, method string, args []byte) ([]byte, error) {
	act, err := s.activationFor(to, true)
	if err != nil {
		return nil, err
	}
	if act == nil {
		// We are not (or no longer) the host: redirect through routing.
		node, err := s.locate(to, false)
		if err != nil {
			return nil, err
		}
		if node == s.Node() {
			return nil, fmt.Errorf("actor: routing loop for %s", to)
		}
		return nil, redirectError{node: node}
	}
	type outcome struct {
		data []byte
		err  error
	}
	ch := make(chan outcome, 1)
	act.enqueue(invocation{
		method: method,
		args:   args,
		respond: func(data []byte, _ interface{}, err error) {
			ch <- outcome{data: data, err: err}
		},
	}, s)
	select {
	case out := <-ch:
		return out.data, out.err
	case <-time.After(s.cfg.CallTimeout):
		return nil, fmt.Errorf("%w: %s.%s", ErrTimeout, to, method)
	}
}

// remoteCall performs one RPC through the send stage and waits for the
// correlated reply.
func (s *System) remoteCall(node transport.NodeID, to Ref, method string, args []byte) ([]byte, error) {
	id := s.nextID.Add(1)
	ch := make(chan *transport.Envelope, 1)
	s.pendMu.Lock()
	s.pending[id] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, id)
		s.pendMu.Unlock()
	}()

	env := &transport.Envelope{
		Kind: transport.KindCall, ID: id,
		ActorType: to.Type, ActorKey: to.Key,
		Method: method, Payload: args,
	}
	if err := s.sendStage.Submit(func() { _ = s.tr.Send(node, env) }); err != nil {
		return nil, fmt.Errorf("%w: send queue", ErrOverloaded)
	}
	select {
	case reply := <-ch:
		if reply.Err != "" {
			if strings.HasPrefix(reply.Err, redirectPrefix) {
				return nil, redirectError{node: transport.NodeID(strings.TrimPrefix(reply.Err, redirectPrefix))}
			}
			return nil, errors.New(reply.Err)
		}
		return reply.Payload, nil
	case <-time.After(s.cfg.CallTimeout):
		return nil, fmt.Errorf("%w: %s.%s @%s", ErrTimeout, to, method, node)
	}
}

// onEnvelope is the transport inbound handler: everything funnels through
// the receive stage (deserialization/demux — Fig. 2).
func (s *System) onEnvelope(env *transport.Envelope) {
	e := env
	if err := s.recvStage.Submit(func() { s.handle(e) }); err != nil {
		// Receive queue full: reject calls outright (§6.1 saturation).
		if e.Kind == transport.KindCall || e.Kind == transport.KindControl {
			s.replyErr(e, ErrOverloaded.Error())
		}
	}
}

func (s *System) handle(env *transport.Envelope) {
	switch env.Kind {
	case transport.KindReply:
		s.pendMu.Lock()
		ch := s.pending[env.ID]
		s.pendMu.Unlock()
		if ch != nil {
			select {
			case ch <- env:
			default:
			}
		}
	case transport.KindCall:
		s.handleCall(env)
	case transport.KindControl:
		s.handleControl(env)
	}
}

// handleCall delivers a remote invocation to the local activation, or
// redirects the caller if the actor lives elsewhere now.
func (s *System) handleCall(env *transport.Envelope) {
	to := Ref{Type: env.ActorType, Key: env.ActorKey}
	act, err := s.activationFor(to, true)
	if err != nil {
		s.replyErr(env, err.Error())
		return
	}
	if act == nil {
		node, lerr := s.locate(to, false)
		if lerr != nil || node == s.Node() {
			s.replyErr(env, fmt.Sprintf("actor: cannot route %s", to))
			return
		}
		s.replyErr(env, redirectPrefix+string(node))
		return
	}
	from := env.From
	id := env.ID
	act.enqueue(invocation{
		method: env.Method,
		args:   env.Payload,
		respond: func(data []byte, _ interface{}, err error) {
			reply := &transport.Envelope{Kind: transport.KindReply, ID: id, Payload: data}
			if err != nil {
				reply.Err = err.Error()
			}
			if serr := s.sendStage.Submit(func() { _ = s.tr.Send(from, reply) }); serr != nil {
				// Best effort under overload: send inline.
				_ = s.tr.Send(from, reply)
			}
		},
	}, s)
}

func (s *System) replyErr(env *transport.Envelope, msg string) {
	reply := &transport.Envelope{Kind: transport.KindReply, ID: env.ID, Err: msg}
	_ = s.tr.Send(env.From, reply)
}

// --- placement directory (hash-homed entries + per-node location cache) ---

// directoryOwner is the node owning ref's placement entry.
func (s *System) directoryOwner(ref Ref) transport.NodeID {
	return s.peers[uint64(ref.Vertex())%uint64(len(s.peers))]
}

func (s *System) cacheGet(ref Ref) (transport.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.locCache[ref]
	return n, ok
}

func (s *System) cachePut(ref Ref, node transport.NodeID) {
	s.mu.Lock()
	// Bound the cache crudely: reset when huge (old entries are evicted to
	// keep space overhead low, §4.3).
	if len(s.locCache) > 1<<17 {
		s.locCache = make(map[Ref]transport.NodeID)
	}
	s.locCache[ref] = node
	s.vertexRefs[uint64(ref.Vertex())] = ref
	s.mu.Unlock()
}

// locate resolves ref's hosting node: local activation wins, then the
// location cache, then the directory owner (placing the actor on a node
// according to the placement policy when unregistered and place is true).
func (s *System) locate(ref Ref, place bool) (transport.NodeID, error) {
	s.mu.RLock()
	_, local := s.activations[ref]
	s.mu.RUnlock()
	if local {
		return s.Node(), nil
	}
	if n, ok := s.cacheGet(ref); ok {
		return n, nil
	}
	owner := s.directoryOwner(ref)
	if owner == s.Node() {
		n, err := s.dirLookupLocal(ref, s.Node(), place)
		if err != nil {
			return "", err
		}
		s.cachePut(ref, n)
		return n, nil
	}
	// Remote directory lookup (control RPC).
	var node string
	err := s.controlCall(owner, ctlDirLookup, dirRequest{
		Type: ref.Type, Key: ref.Key, Suggest: string(s.Node()), Place: place,
	}, &node)
	if err != nil {
		return "", err
	}
	n := transport.NodeID(node)
	s.cachePut(ref, n)
	return n, nil
}

// dirLookupLocal consults/updates this node's owned directory entries.
func (s *System) dirLookupLocal(ref Ref, suggest transport.NodeID, place bool) (transport.NodeID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.dirEntries[ref]; ok {
		return n, nil
	}
	if !place {
		return "", fmt.Errorf("actor: %s not registered", ref)
	}
	var n transport.NodeID
	switch s.cfg.Placement {
	case PlaceLocal:
		n = suggest
	default:
		s.rngMu.Lock()
		n = s.peers[s.rng.Intn(len(s.peers))]
		s.rngMu.Unlock()
	}
	s.dirEntries[ref] = n
	return n, nil
}

// dirRequest is the directory control payload.
type dirRequest struct {
	Type, Key string
	Suggest   string
	Place     bool
	NewNode   string // for updates
}

// controlCall is a generic request/response over KindControl envelopes.
func (s *System) controlCall(node transport.NodeID, verb string, args, reply interface{}) error {
	data, err := codec.Marshal(args)
	if err != nil {
		return err
	}
	if node == s.Node() {
		out, cerr := s.handleControlVerb(verb, data, s.Node())
		if cerr != nil {
			return cerr
		}
		if reply != nil {
			return codec.Unmarshal(out, reply)
		}
		return nil
	}
	id := s.nextID.Add(1)
	ch := make(chan *transport.Envelope, 1)
	s.pendMu.Lock()
	s.pending[id] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, id)
		s.pendMu.Unlock()
	}()
	env := &transport.Envelope{Kind: transport.KindControl, ID: id, Method: verb, Payload: data}
	if err := s.tr.Send(node, env); err != nil {
		return err
	}
	select {
	case r := <-ch:
		if r.Err != "" {
			return errors.New(r.Err)
		}
		if reply != nil {
			return codec.Unmarshal(r.Payload, reply)
		}
		return nil
	case <-time.After(s.cfg.CallTimeout):
		return fmt.Errorf("%w: control %s @%s", ErrTimeout, verb, node)
	}
}

func (s *System) handleControl(env *transport.Envelope) {
	out, err := s.handleControlVerb(env.Method, env.Payload, env.From)
	reply := &transport.Envelope{Kind: transport.KindReply, ID: env.ID, Payload: out}
	if err != nil {
		reply.Err = err.Error()
	}
	_ = s.tr.Send(env.From, reply)
}

func (s *System) handleControlVerb(verb string, payload []byte, from transport.NodeID) ([]byte, error) {
	switch verb {
	case ctlDirLookup:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		node, err := s.dirLookupLocal(Ref{Type: req.Type, Key: req.Key}, transport.NodeID(req.Suggest), req.Place)
		if err != nil {
			return nil, err
		}
		return codec.Marshal(string(node))
	case ctlDirUpdate:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		ref := Ref{Type: req.Type, Key: req.Key}
		s.mu.Lock()
		s.dirEntries[ref] = transport.NodeID(req.NewNode)
		s.locCache[ref] = transport.NodeID(req.NewNode)
		s.mu.Unlock()
		return codec.Marshal(ctlPlacementOK)
	case ctlDirRemove:
		var req dirRequest
		if err := codec.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		ref := Ref{Type: req.Type, Key: req.Key}
		s.mu.Lock()
		delete(s.dirEntries, ref)
		delete(s.locCache, ref)
		s.mu.Unlock()
		return codec.Marshal(ctlPlacementOK)
	case ctlMigratePut:
		return s.handleMigratePut(payload)
	case ctlMigrateDrop:
		return s.handleMigrateDrop(payload)
	case ctlExchange:
		return s.handleExchange(payload, from)
	default:
		return nil, fmt.Errorf("actor: unknown control verb %q", verb)
	}
}

// observeEdge feeds the communication monitor (§4.3) and remembers the
// vertex↔ref mapping for migration decisions.
func (s *System) observeEdge(from, to Ref) {
	s.mu.Lock()
	s.vertexRefs[uint64(from.Vertex())] = from
	s.vertexRefs[uint64(to.Vertex())] = to
	s.mu.Unlock()
	s.monMu.Lock()
	s.monitor.ObserveMessage(from.Vertex(), to.Vertex(), 1)
	s.monMu.Unlock()
}

// refOf maps a monitored vertex back to its ref.
func (s *System) refOf(v uint64) (Ref, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.vertexRefs[v]
	return r, ok
}
