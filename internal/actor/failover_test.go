package actor

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/transport"
)

// newFaultyCluster builds an n-node in-memory cluster where every node's
// transport is wrapped in a Flaky, so tests can partition, kill, and revive
// individual nodes at runtime. The detector runs fast (interval 50ms) to
// keep failure tests short.
func newFaultyCluster(t *testing.T, n int, placement PlacementPolicy, tweak func(*Config)) ([]*System, []*transport.Flaky) {
	t.Helper()
	net := transport.NewNetwork(0)
	peers := make([]transport.NodeID, n)
	flakies := make([]*transport.Flaky, n)
	for i := 0; i < n; i++ {
		peers[i] = transport.NodeID(fmt.Sprintf("fn-%d", i))
		flakies[i] = transport.NewFlaky(net.Join(peers[i]), int64(1000+i))
	}
	systems := make([]*System, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Transport: flakies[i], Peers: peers,
			Placement: placement, Seed: int64(7 + i),
			CallTimeout:       4 * time.Second,
			HeartbeatInterval: 50 * time.Millisecond,
			SuspectAfter:      2,
			DeadAfter:         5,
			RetryBackoff:      5 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterType("counter", func() Actor { return &counterActor{} })
		systems[i] = sys
		t.Cleanup(sys.Stop)
	}
	return systems, flakies
}

// waitPeerState polls until observer sees peer in want, or fails the test.
func waitPeerState(t *testing.T, observer *System, peer transport.NodeID, want PeerState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if observer.PeerStateOf(peer) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never saw %s reach %s (is %s)", observer.Node(), peer, want, observer.PeerStateOf(peer))
}

// TestKillNodeFailover is the acceptance scenario: a 3-node cluster loses a
// node mid-traffic. Calls to actors that lived on the victim must succeed —
// re-activated on survivors — within twice the detection threshold, with no
// duplicated turn from the retries, and shutting everything down afterwards
// must leak no goroutines.
func TestKillNodeFailover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sys, flakies := newFaultyCluster(t, 3, PlaceRandom, nil)
	victim := 2
	victimID := sys[victim].Node()

	// Spread actors across the cluster and record who hosts what. Every
	// actor gets one Add(1) so post-kill values prove exactly-once effects.
	const actors = 12
	hosts := make(map[string]transport.NodeID, actors)
	for k := 0; k < actors; k++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("fo-%d", k)}
		if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
			t.Fatalf("warmup %s: %v", ref, err)
		}
		var where string
		if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
			t.Fatalf("locate %s: %v", ref, err)
		}
		hosts[ref.Key] = transport.NodeID(where)
	}
	onVictim := 0
	for _, h := range hosts {
		if h == victimID {
			onVictim++
		}
	}
	if onVictim == 0 {
		t.Fatalf("random placement put no actor on %s; adjust seeds", victimID)
	}

	// Kill the victim: its process keeps running but no traffic flows.
	flakies[victim].Kill()

	// Detection threshold: DeadAfter consecutive misses, where a miss takes
	// up to one heartbeat interval to time out and the next ping may wait
	// out another interval — so 2×interval per miss, plus slack.
	cfg := sys[0].Config()
	detection := time.Duration(2*cfg.DeadAfter+2) * cfg.HeartbeatInterval
	allowed := 2 * detection

	for k := 0; k < actors; k++ {
		ref := Ref{Type: "counter", Key: fmt.Sprintf("fo-%d", k)}
		start := time.Now()
		var got int
		if err := sys[0].Call(ref, "Add", 1, &got); err != nil {
			t.Fatalf("post-kill call %s (hosted on %s): %v", ref, hosts[ref.Key], err)
		}
		elapsed := time.Since(start)
		if hosts[ref.Key] == victimID {
			if elapsed > allowed {
				t.Errorf("failover call %s took %v, want <= %v", ref, elapsed, allowed)
			}
			// State died with the node; a fresh activation counted exactly
			// this one Add. 2 would mean a retry double-executed the turn.
			if got != 1 {
				t.Errorf("%s after failover = %d, want 1 (exactly-once)", ref, got)
			}
			var where string
			if err := sys[0].Call(ref, "WhereAmI", nil, &where); err != nil {
				t.Fatalf("re-locate %s: %v", ref, err)
			}
			if transport.NodeID(where) == victimID {
				t.Errorf("%s still reports dead host %s", ref, where)
			}
		} else if got != 2 {
			// Survivor-hosted actors keep their history: warmup + this Add.
			t.Errorf("%s on survivor = %d, want 2 (exactly-once)", ref, got)
		}
	}
	if sys[0].PeerStateOf(victimID) != PeerDead {
		t.Errorf("victim state on caller = %s, want dead", sys[0].PeerStateOf(victimID))
	}
	if f := sys[0].Failures(); f.Deaths == 0 || f.Retries == 0 {
		t.Errorf("failure counters did not move: %+v", f)
	}

	// No goroutine leaks: stop everything (Cleanup order would do it too,
	// but we must measure while the test still runs).
	for _, s := range sys {
		s.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked after Stop: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRetryDoesNotDoubleExecute pins the reply-dedup window: when every
// reply from the callee is lost, the caller's retries re-deliver the same
// call id and the callee must execute the turn exactly once.
func TestRetryDoesNotDoubleExecute(t *testing.T) {
	sys, flakies := newFaultyCluster(t, 2, PlaceLocal, func(c *Config) {
		c.CallTimeout = 700 * time.Millisecond
		c.DeadAfter = 1000 // keep the victim suspect, never dead
	})
	// Home the directory entry on node 0 so the caller's lookup never
	// crosses the lossy link; host the activation on node 1 (PlaceLocal).
	var ref Ref
	for k := 0; ; k++ {
		ref = Ref{Type: "counter", Key: fmt.Sprintf("dd-%d", k)}
		if sys[0].directoryOwner(ref) == sys[0].Node() {
			break
		}
	}
	if err := sys[1].Call(ref, "Add", 0, nil); err != nil {
		t.Fatal(err)
	}
	if !sys[1].HostsActor(ref) {
		t.Fatalf("%s not hosted on %s", ref, sys[1].Node())
	}

	// All of node 1's outbound vanishes: calls arrive, replies are lost.
	flakies[1].SetDrop(1.0)
	err := sys[0].Call(ref, "Add", 1, nil)
	if err == nil {
		t.Fatal("call succeeded with all replies dropped")
	}
	flakies[1].SetDrop(0)

	var got int
	if cerr := sys[0].Call(ref, "Get", nil, &got); cerr != nil {
		t.Fatal(cerr)
	}
	if got != 1 {
		t.Fatalf("counter = %d after retried Add(1), want exactly 1", got)
	}
	if f := sys[0].Failures(); f.Retries == 0 {
		t.Errorf("caller recorded no retries: %+v", f)
	}
	if f := sys[1].Failures(); f.DedupHits == 0 {
		t.Errorf("callee recorded no dedup hits: %+v", f)
	}
}

// TestDuplicateDeliveryDedup drives handleCall directly with a duplicated
// envelope — the wire-level shape of a retry — and checks the turn runs
// once.
func TestDuplicateDeliveryDedup(t *testing.T) {
	sys, _ := newFaultyCluster(t, 2, PlaceLocal, nil)
	var execs atomic.Int64
	for _, s := range sys {
		s.RegisterType("exec", func() Actor {
			return execCountActor{execs: &execs}
		})
	}
	ref := Ref{Type: "exec", Key: "once"}
	if err := sys[1].Call(ref, "Hit", nil, nil); err != nil {
		t.Fatal(err)
	}
	execs.Store(0)

	env := &transport.Envelope{
		Kind: transport.KindCall, ID: 424242, From: sys[0].Node(),
		ActorType: ref.Type, ActorKey: ref.Key, Method: "Hit",
	}
	sys[1].handleCall(env, 0)
	dup := *env
	sys[1].handleCall(&dup, 0)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && execs.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would catch a late double execution
	if n := execs.Load(); n != 1 {
		t.Fatalf("duplicate delivery executed the turn %d times, want 1", n)
	}
	if f := sys[1].Failures(); f.DedupHits == 0 {
		t.Errorf("no dedup hit recorded: %+v", f)
	}
}

// execCountActor counts how many turns actually ran.
type execCountActor struct{ execs *atomic.Int64 }

func (e execCountActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	e.execs.Add(1)
	return nil, nil
}

// TestPanicIsolation checks a panicking actor method is converted into an
// error reply and a fresh activation, not a crashed node.
func TestPanicIsolation(t *testing.T) {
	sys := newCluster(t, 1, PlaceRandom)[0]
	sys.RegisterType("panicky", func() Actor { return &panickyActor{} })
	ref := Ref{Type: "panicky", Key: "p"}
	if err := sys.Call(ref, "Add", nil, nil); err != nil {
		t.Fatal(err)
	}
	err := sys.Call(ref, "Boom", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking method returned %v, want a panic error", err)
	}
	// The node survived and the faulty instance was retired: state resets.
	var got int
	if err := sys.Call(ref, "Get", nil, &got); err != nil {
		t.Fatalf("call after panic: %v", err)
	}
	if got != 0 {
		t.Fatalf("state after panic = %d, want 0 (fresh instance)", got)
	}
	if f := sys.Failures(); f.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", f.Panics)
	}
}

type panickyActor struct{ n int }

func (p *panickyActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "Add":
		p.n++
		return nil, nil
	case "Get":
		return codec.Marshal(p.n)
	case "Boom":
		panic("kaboom")
	}
	return nil, fmt.Errorf("no method %q", method)
}

// TestMembershipTransitions walks the detector through
// alive→suspect→dead→alive and checks watcher notifications and counters.
func TestMembershipTransitions(t *testing.T) {
	sys, flakies := newFaultyCluster(t, 2, PlaceRandom, func(c *Config) {
		c.HeartbeatInterval = 30 * time.Millisecond
		c.DeadAfter = 4
	})
	peer := sys[1].Node()
	var mu sync.Mutex
	var seen []PeerState
	sys[0].OnMembershipChange(func(n transport.NodeID, st PeerState) {
		if n == peer {
			mu.Lock()
			seen = append(seen, st)
			mu.Unlock()
		}
	})

	flakies[1].Kill()
	waitPeerState(t, sys[0], peer, PeerDead, 5*time.Second)
	flakies[1].Revive()
	waitPeerState(t, sys[0], peer, PeerAlive, 5*time.Second)

	mu.Lock()
	got := append([]PeerState(nil), seen...)
	mu.Unlock()
	want := []PeerState{PeerSuspect, PeerDead, PeerAlive}
	if len(got) < len(want) {
		t.Fatalf("transitions = %v, want at least %v", got, want)
	}
	for i, st := range want {
		if got[i] != st {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, got[i], st, got)
		}
	}
	f := sys[0].Failures()
	if f.Suspects == 0 || f.Deaths == 0 || f.Revivals == 0 {
		t.Errorf("counters = %+v, want suspects/deaths/revivals all > 0", f)
	}
	if st := sys[0].Membership()[peer]; st != PeerAlive {
		t.Errorf("membership[%s] = %s, want alive", peer, st)
	}
}

// TestStopTerminatesBackgroundWork stops a node while its retry and orphan
// cleanup loops are live against a dead peer; Stop must return promptly and
// take the background goroutines with it.
func TestStopTerminatesBackgroundWork(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sys, flakies := newFaultyCluster(t, 2, PlaceLocal, func(c *Config) {
		c.CallTimeout = 300 * time.Millisecond
	})
	ref := Ref{Type: "counter", Key: "bg"}
	if err := sys[0].Call(ref, "Add", 1, nil); err != nil {
		t.Fatal(err)
	}
	flakies[1].Kill()
	// A migration into the (not yet detected) dead peer fails and leaves a
	// background orphan-drop loop retrying against it.
	if err := sys[0].Migrate(ref, sys[1].Node()); err == nil {
		t.Fatal("migrate into a killed node succeeded")
	}
	// A call retry loop in flight too.
	go func() { _ = sys[0].Call(Ref{Type: "counter", Key: "bg2"}, "Add", 1, nil) }()
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	sys[0].Stop()
	sys[1].Stop()
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("Stop took %v", took)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
