package actor

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// The sharded hot-path state plane (ISSUE 6). A node at paper scale holds
// ~1M live activations and fields concurrent calls, activations, migrations,
// and failover purges from every worker goroutine; a single RWMutex over the
// routing maps serializes all of them (CAF reports exactly this coarse-lock
// ceiling at high core counts). Instead, the ref-keyed maps — activations,
// owned directory entries, the location cache, and the vertex↔ref index —
// are striped over stateShardCount independently locked shards, keyed by the
// ref's FNV-1a hash. Operations on distinct refs touch disjoint shards and
// proceed in parallel; multi-map invariants (an install writes the
// activation, its cache route, and its vertex mapping together) survive
// because every map for one ref lives in that ref's single shard — the
// vertex id IS the ref hash, so even the vertex index co-shards.
//
// The same treatment covers the two call-plane tables: the pending reply
// map (striped by call id) and the reply-dedup window (striped by caller
// identity), each previously a node-global mutex acquired once per remote
// call and once per delivered turn.

const (
	// stateShardBits picks 64 shards: enough that 8–64 runtime goroutines
	// rarely collide (birthday bound ~2% per op at 8 workers), small enough
	// that per-shard bookkeeping (clock rings, gauges) stays negligible.
	stateShardBits  = 6
	stateShardCount = 1 << stateShardBits

	pendShardCount  = 16
	dedupShardCount = 16
)

// 64-bit FNV-1a parameters, mirroring hash/fnv.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// refHash is the allocation-free FNV-1a hash of a ref's identity,
// bit-identical to hash/fnv over "Type\x00Key" — and therefore equal to
// uint64(ref.Vertex()). Shard selection, the vertex index, and the
// partitioner's vertex ids all agree on this one hash, so a ref's
// activation, cache route, directory entry, and vertex mapping always
// co-reside in the shard it names.
func refHash(r Ref) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(r.Type); i++ {
		h = (h ^ uint64(r.Type[i])) * fnvPrime64
	}
	h *= fnvPrime64 // the \x00 separator: XOR with zero is the identity
	for i := 0; i < len(r.Key); i++ {
		h = (h ^ uint64(r.Key[i])) * fnvPrime64
	}
	return h
}

// strHash is allocation-free FNV-1a over a plain string (node ids).
func strHash(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// locEntry is one resident location-cache route. used is the clock
// algorithm's referenced bit: set on every hit (atomically — hits happen
// under the shard read lock, concurrently with each other), cleared by the
// sweeping eviction hand under the write lock.
type locEntry struct {
	node transport.NodeID
	used atomic.Bool
}

// stateShard is one stripe of the node's routing and directory state. All
// the maps are keyed (directly or through the vertex id) by the same ref
// hash, so one shard lock covers every multi-map update for a ref.
type stateShard struct {
	mu          sync.RWMutex
	activations map[Ref]*activation
	dirEntries  map[Ref]dirEntry
	vertexRefs  map[uint64]Ref

	// Forwarding tombstones: authoritative short-TTL forwards left behind by
	// outbound migrations (see recordForward). fwdOrder is a head-indexed
	// insertion ring; uniform TTLs make it FIFO-expiring, so inserts prune
	// from the head in O(1) amortized.
	forwards map[Ref]forwardEntry
	fwdOrder []Ref
	fwdHead  int

	// Location cache with clock (second-chance) eviction, bounded at
	// cacheCap residents: clock is a ring of resident (possibly stale —
	// deletions just orphan their slot) refs; hand sweeps it on insert
	// pressure, granting one reprieve to entries hit since the last pass.
	locCache map[Ref]*locEntry
	clock    []Ref
	hand     int
	cacheCap int
}

// forwardEntry is one forwarding tombstone: where the actor went when it
// migrated off this node, authoritative until expires.
type forwardEntry struct {
	node    transport.NodeID
	expires time.Time
}

// forwardTTL bounds how long an outbound migration's tombstone stays
// authoritative. It must comfortably outlive the directory update's common
// retry horizon (the sync attempt plus the first background re-sends), and
// stay short enough that a stale tombstone — possible only if this node
// somehow never learns the chain moved on — cannot misroute for long.
const forwardTTL = 5 * time.Second

func (s *System) shardOf(ref Ref) *stateShard {
	return &s.state[refHash(ref)&(stateShardCount-1)]
}

func (s *System) shardOfVertex(v uint64) *stateShard {
	return &s.state[v&(stateShardCount-1)]
}

// initShards sizes and allocates the state plane. cacheSize is the
// node-wide location-cache bound, split evenly across shards.
func (s *System) initShards(cacheSize int) {
	per := cacheSize / stateShardCount
	if per < 8 {
		per = 8
	}
	for i := range s.state {
		sh := &s.state[i]
		sh.activations = make(map[Ref]*activation)
		sh.dirEntries = make(map[Ref]dirEntry)
		sh.vertexRefs = make(map[uint64]Ref)
		sh.forwards = make(map[Ref]forwardEntry)
		sh.locCache = make(map[Ref]*locEntry)
		sh.cacheCap = per
	}
	for i := range s.pend {
		s.pend[i].m = make(map[uint64]chan *transport.Envelope)
	}
	for i := range s.dedupShards {
		s.dedupShards[i].m = make(map[dedupKey]*dedupEntry)
	}
}

// --- location cache (per-shard clock/second-chance eviction) ---
//
// The seed's cache was one map bounded by a wholesale reset: past 128K
// entries every cached route on the node was discarded at once, a latency
// cliff that turned the next call on every warm ref into a directory RPC
// (a thundering herd against the owners). Here each shard evicts one cold
// entry per insert once full: hits set the entry's referenced bit, the
// clock hand clears bits as it sweeps and evicts the first entry it finds
// unreferenced since its last pass. Warm routes survive indefinitely; the
// node-wide resident bound (Config.LocCacheSize) is unchanged.

func (s *System) cacheGet(ref Ref) (transport.NodeID, bool) {
	sh := s.shardOf(ref)
	sh.mu.RLock()
	e, ok := sh.locCache[ref]
	var n transport.NodeID
	if ok {
		n = e.node
		if !e.used.Load() { // avoid dirtying the line on every repeat hit
			e.used.Store(true)
		}
	}
	sh.mu.RUnlock()
	if ok {
		s.locHits.Add(1)
	} else {
		s.locMisses.Add(1)
	}
	return n, ok
}

// cacheInsertLocked installs (or refreshes) a route with sh.mu held,
// evicting via the clock when the shard is at capacity. Every locCache
// insert in the package funnels through here so the clock ring stays
// consistent with the map.
func (s *System) cacheInsertLocked(sh *stateShard, ref Ref, node transport.NodeID) {
	if node == s.Node() {
		// A self-route is never information: if we host the actor the
		// activations map answers first, and if we don't, a cached self
		// entry would seed a spurious local activation the moment routing
		// consults it (split brain). Record "unknown" instead.
		delete(sh.locCache, ref)
		return
	}
	if e, ok := sh.locCache[ref]; ok {
		e.node = node
		e.used.Store(true)
		return
	}
	if len(sh.clock) < sh.cacheCap {
		sh.locCache[ref] = &locEntry{node: node}
		sh.clock = append(sh.clock, ref)
		return
	}
	for {
		if sh.hand >= len(sh.clock) {
			sh.hand = 0
		}
		victim := sh.clock[sh.hand]
		ve, ok := sh.locCache[victim]
		if ok && ve.used.Swap(false) {
			sh.hand++ // referenced since the last sweep: second chance
			continue
		}
		if ok {
			delete(sh.locCache, victim)
			s.locEvicts.Add(1)
		}
		// Reuse the slot (an eviction's, or one orphaned by a delete).
		sh.clock[sh.hand] = ref
		sh.hand++
		sh.locCache[ref] = &locEntry{node: node}
		return
	}
}

// recordForward leaves a forwarding tombstone at a migration's source: an
// AUTHORITATIVE (unlike the gossip cache) statement that the actor this node
// just handed off now lives at to, honored by both resolution paths ahead of
// everything but a live activation. It exists for the window where the
// owner's directory entry still names this node because the migration's
// update is in flight (retried in the background under loss): without it,
// directory-guided routing would re-instantiate the actor at its old home —
// a permanent split brain. The route is mirrored into the location cache
// (which has no TTL) so cheap first-hop routing survives the tombstone.
func (s *System) recordForward(ref Ref, to transport.NodeID) {
	h := refHash(ref)
	sh := &s.state[h&(stateShardCount-1)]
	now := time.Now()
	sh.mu.Lock()
	sh.forwards[ref] = forwardEntry{node: to, expires: now.Add(forwardTTL)}
	sh.fwdOrder = append(sh.fwdOrder, ref)
	// Uniform TTLs expire in insertion order: prune the ring head. A slot
	// whose map entry was refreshed (re-migration) or dropped (install,
	// fresh activation) just advances past.
	for sh.fwdHead < len(sh.fwdOrder) {
		r := sh.fwdOrder[sh.fwdHead]
		if e, ok := sh.forwards[r]; ok {
			if now.Before(e.expires) {
				break
			}
			delete(sh.forwards, r)
		}
		sh.fwdOrder[sh.fwdHead] = Ref{}
		sh.fwdHead++
	}
	if sh.fwdHead >= len(sh.fwdOrder)/2 && sh.fwdHead > 64 {
		sh.fwdOrder = append(sh.fwdOrder[:0], sh.fwdOrder[sh.fwdHead:]...)
		sh.fwdHead = 0
	}
	s.cacheInsertLocked(sh, ref, to)
	sh.vertexRefs[h] = ref
	sh.mu.Unlock()
	s.flight.Record(flight.Event{Kind: flight.KindTombstone, Actor: ref.String(), Peer: string(to)})
}

// cachePut records ref's route and its vertex mapping (used by migration
// decisions); both land in ref's shard under one lock.
func (s *System) cachePut(ref Ref, node transport.NodeID) {
	h := refHash(ref)
	sh := &s.state[h&(stateShardCount-1)]
	sh.mu.Lock()
	s.cacheInsertLocked(sh, ref, node)
	sh.vertexRefs[h] = ref
	sh.mu.Unlock()
}

// cacheDel drops a possibly poisoned location-cache entry so the next
// attempt re-resolves through the directory. The entry's clock slot is left
// stale; the sweep reclaims it.
func (s *System) cacheDel(ref Ref) {
	sh := s.shardOf(ref)
	sh.mu.Lock()
	delete(sh.locCache, ref)
	sh.mu.Unlock()
}

// locCacheLen reports resident routes across all shards (tests, gauges).
func (s *System) locCacheLen() int {
	n := 0
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		n += len(sh.locCache)
		sh.mu.RUnlock()
	}
	return n
}

// activationsLen reports live activations across all shards.
func (s *System) activationsLen() int {
	n := 0
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		n += len(sh.activations)
		sh.mu.RUnlock()
	}
	return n
}

// --- pending reply table (striped by call id) ---

type pendShard struct {
	mu sync.Mutex
	m  map[uint64]chan *transport.Envelope
}

func (s *System) pendShardOf(id uint64) *pendShard {
	return &s.pend[id&(pendShardCount-1)]
}

func (s *System) pendPut(id uint64, ch chan *transport.Envelope) {
	p := s.pendShardOf(id)
	p.mu.Lock()
	p.m[id] = ch
	p.mu.Unlock()
}

func (s *System) pendDel(id uint64) {
	p := s.pendShardOf(id)
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

func (s *System) pendGet(id uint64) chan *transport.Envelope {
	p := s.pendShardOf(id)
	p.mu.Lock()
	ch := p.m[id]
	p.mu.Unlock()
	return ch
}

// --- per-shard metrics exposition ---

// shardLabels pre-renders the shard-index label values so metrics call
// sites pass entries of a fixed table (bounded cardinality by construction).
var shardLabels = func() [stateShardCount]string {
	var out [stateShardCount]string
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}()

// registerShardMetrics exposes directory pressure on the metrics registry:
// per-shard occupancy gauges (refreshed at scrape time via OnCollect) and
// the node-wide location-cache hit/miss/eviction counters.
func (s *System) registerShardMetrics() {
	reg := s.cfg.Metrics
	acts := reg.Gauge("actop_shard_activations",
		"live activations per state shard", "shard")
	dirs := reg.Gauge("actop_shard_dir_entries",
		"owned directory entries per state shard", "shard")
	locs := reg.Gauge("actop_shard_loccache_entries",
		"resident location-cache routes per state shard", "shard")
	hits := reg.Counter("actop_loccache_hits_total",
		"location-cache lookups answered from the cache")
	misses := reg.Counter("actop_loccache_misses_total",
		"location-cache lookups that fell through to the directory")
	evicts := reg.Counter("actop_loccache_evictions_total",
		"location-cache residents evicted by the clock sweep")
	reg.OnCollect(func(*metrics.Registry) {
		for i := range s.state {
			sh := &s.state[i]
			sh.mu.RLock()
			a, d, l := len(sh.activations), len(sh.dirEntries), len(sh.locCache)
			sh.mu.RUnlock()
			acts.Set(float64(a), shardLabels[i])
			dirs.Set(float64(d), shardLabels[i])
			locs.Set(float64(l), shardLabels[i])
		}
		hits.SetTotal(s.locHits.Load())
		misses.SetTotal(s.locMisses.Load())
		evicts.SetTotal(s.locEvicts.Load())
	})
}
