package actor

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"actop/internal/codec"
	"actop/internal/durable"
	"actop/internal/flight"
	"actop/internal/metrics"
	"actop/internal/transport"
)

// Actor-layer durability (ISSUE 8): Durable actors' state is captured off
// the turn path, encoded + shipped by the background snapshotter pool over
// the actop.snap control verb to K rendezvous-chosen peer replicas, and on
// failover re-activation the new owner pulls the highest-(epoch, seq)
// snapshot before admitting the first turn. The migration epoch versions
// every snapshot so a delayed ship from a pre-migration incarnation can
// never clobber a newer one — the same guard the directory updates use.

// durabilityOn reports whether this node runs the durability plane at all.
func (s *System) durabilityOn() bool { return s.cfg.DurableReplicas > 0 }

// isDurable reports whether an actor instance participates in durability:
// the plane is on and the type opted in via the Durable marker.
func (s *System) isDurable(inst Actor) bool {
	if !s.durabilityOn() {
		return false
	}
	_, ok := inst.(Durable)
	return ok
}

// Durables snapshots the node's durability counters.
func (s *System) Durables() metrics.DurableSnapshot { return s.durables.Snapshot() }

// ReplicaStore exposes the node's replica store (debug endpoints, benches).
func (s *System) ReplicaStore() *durable.Store { return s.snapStore }

// captureSnapshotLocked captures a Durable activation's state. Called from
// drain with a.turnMu held, so the only work done here is the state copy:
// actors implementing codec.Copier pay one deep copy and the gob encode
// runs on the snapshotter pool; plain Migratable actors pay Snapshot inline
// (their encode IS the copy — there is no cheaper way to isolate their
// state). No transport or codec call happens on this path. The returned job
// (nil when the capture failed) encodes and ships; the caller submits it to
// the pool AFTER releasing the turn lock and answering the caller, so even
// the pool handoff stays off the reply path.
func (s *System) captureSnapshotLocked(a *activation) func() {
	var encode func() ([]byte, error)
	if c, ok := a.actor.(codec.Copier); ok {
		if m, ok := c.CopyValue().(Migratable); ok {
			encode = m.Snapshot
		}
	}
	if encode == nil {
		m, ok := a.actor.(Migratable)
		if !ok {
			return nil
		}
		state, err := m.Snapshot()
		if err != nil {
			s.durables.CaptureErrors.Add(1)
			return nil
		}
		encode = func() ([]byte, error) { return state, nil }
	}
	a.snapSeq++
	a.dirty = 0
	a.lastSnap = time.Now()
	s.durables.Captured.Add(1)
	ref, epoch, seq := a.ref, a.epoch, a.snapSeq
	return func() {
		state, err := encode()
		if err != nil {
			s.durables.CaptureErrors.Add(1)
			return
		}
		s.shipSnapshot(ref, epoch, seq, state)
	}
}

// shipSnapshot encodes the wire record once and streams it to each replica.
// Runs on the snapshotter pool (or a SyncSnapshots caller), never under a
// turn lock.
func (s *System) shipSnapshot(ref Ref, epoch, seq uint64, state []byte) {
	payload := durable.AppendRecord(nil, durable.Record{
		Type: ref.Type, Key: ref.Key, Epoch: epoch, Seq: seq, State: state,
	})
	s.flight.Record(flight.Event{Kind: flight.KindSnapshotShip, Actor: ref.String(), N: uint64(len(payload))})
	for _, p := range s.snapReplicas(ref) {
		// A plain dead-skip is right here, unlike on the recovery path: a
		// ship withheld from a falsely-accused peer costs one interval of
		// replica freshness and the next capture repairs it, while a
		// recovery read that wrongly skips a replica is irreversible.
		if !s.cfg.DisableFailover && s.PeerStateOf(p) == PeerDead {
			continue
		}
		if err := s.controlCallRaw(p, ctlSnap, payload, s.cfg.CallTimeout); err != nil {
			s.durables.ShipErrors.Add(1)
			continue
		}
		s.durables.Shipped.Add(1)
		s.durables.ShippedBytes.Add(uint64(len(payload)))
	}
}

// snapScore is the rendezvous weight of one (peer, ref) pair. The "snap"
// salt decorrelates replica choice from directoryOwner, so losing one node
// doesn't take out an actor's directory home and its replica set together.
func snapScore(p transport.NodeID, ref Ref) uint64 {
	h := fnv.New64a()
	h.Write([]byte("snap"))
	h.Write([]byte{0})
	h.Write([]byte(p))
	h.Write([]byte{0})
	h.Write([]byte(ref.Type))
	h.Write([]byte{0})
	h.Write([]byte(ref.Key))
	return h.Sum64()
}

// topSnapPeers returns the k highest-scoring peers for ref by rendezvous
// hashing, excluding skip. Deterministic across nodes: every node computes
// the same replica set from the same membership.
func (s *System) topSnapPeers(ref Ref, k int, skip transport.NodeID) []transport.NodeID {
	type scored struct {
		n     transport.NodeID
		score uint64
	}
	cands := make([]scored, 0, len(s.peers))
	for _, p := range s.peers {
		if p == skip {
			continue
		}
		cands = append(cands, scored{n: p, score: snapScore(p, ref)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].n < cands[j].n
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]transport.NodeID, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.n)
	}
	return out
}

// snapReplicas is the replica set a snapshot of ref ships to: the top-K
// rendezvous peers excluding this node (the live activation IS the primary
// copy; replicating to self adds nothing).
func (s *System) snapReplicas(ref Ref) []transport.NodeID {
	return s.topSnapPeers(ref, s.cfg.DurableReplicas, s.Node())
}

// snapDeadGrace is how long the snapshot plane distrusts a dead verdict.
// The failure detector's false positives (heartbeats starved under a
// recovery stampede, a GC pause on the remote) are indistinguishable from
// a real death at the moment they fire, and the snapshot plane is the one
// place where acting on a wrong verdict is irreversible: skipping a live
// replica during a recovery pull resurrects the actor with amnesia. So for
// a grace period after the verdict — twice the detection time itself,
// capped so a real outage cannot stall fresh activations past half the
// call budget — dead-marked peers are still probed, and a probe failure
// counts as an unreachable replica (retry-safe refusal) rather than an
// authoritative miss. Past the grace the verdict is trusted and the peer's
// store is presumed lost.
func (s *System) snapDeadGrace() time.Duration {
	g := s.cfg.HeartbeatInterval * time.Duration(2*s.cfg.DeadAfter)
	if cap := s.cfg.CallTimeout / 2; g > cap {
		g = cap
	}
	return g
}

// recoverSnapshot pulls the best available snapshot for ref from the
// replica set (and this node's own store) ahead of a failover
// re-activation. Pulls go through the recovery semaphore so a hot dead
// node's actors don't thundering-herd the survivors. A nil record with a
// nil error means no replica holds state (fresh actor); an error means
// replicas were unreachable and the activation must NOT be admitted empty —
// the caller surfaces a retryable failure (pause, not amnesia).
func (s *System) recoverSnapshot(ref Ref) (*durable.Record, error) {
	select {
	case s.recoverySem <- struct{}{}:
	default:
		// Sem full: wait briefly, then refuse retry-safe. Pulls run on the
		// receive stage, so parking here for a full call budget eats the
		// very workers that must keep serving directory lookups and replica
		// fetches for the pulls ahead of us — a handful of slow pulls would
		// cascade into a node-wide control-plane stall. A bounded wait plus
		// a retryable refusal sheds the excess back to the caller's retry
		// loop instead (same shape as §6.1 overload handling).
		s.durables.RecoveryThrottled.Add(1)
		// Recovery throttling marks a stampede in progress — trigger a
		// black-box dump so the herd's shape (deaths, purges, pulls) is
		// preserved even if the incident self-heals.
		s.flight.Trigger(flight.KindRecoveryThrottled, ref.String())
		wait := s.cfg.HeartbeatInterval
		if w := 2 * s.cfg.RetryBackoff; w > wait {
			wait = w
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case s.recoverySem <- struct{}{}:
		case <-s.done:
			return nil, ErrStopped
		case <-t.C:
			return nil, fmt.Errorf("%w: recovery of %s throttled", errPeerDown, ref)
		}
	}
	defer func() { <-s.recoverySem }()

	s.durables.Recoveries.Add(1)
	deadline := time.Now().Add(s.cfg.CallTimeout)
	var best *durable.Record
	if rec, ok := s.snapStore.Get(ref.Type, ref.Key); ok {
		best = &rec
	}
	fails := 0
	// consult folds one replica's answer into best/fails, behind a per-peer
	// breaker: a peer whose last fetch failed within the past heartbeat
	// interval counts as unreachable without a new round trip. Fetches to an
	// unresponsive peer (killed but not yet detected, or starved) burn a
	// full attempt timeout each while parked on a receive worker, and a hot
	// ref's callers retry every few milliseconds — without the breaker those
	// retries convoy onto the receive stage and starve the control verbs
	// every other pull needs. One worker pays the timeout per cooldown; the
	// rest refuse retry-safe in microseconds. A fetch that succeeds clears
	// the breaker, so a healthy or recovered peer is never throttled.
	consult := func(p transport.NodeID) {
		s.snapProbeMu.Lock()
		cooling := time.Since(s.snapProbeFail[p]) < s.cfg.HeartbeatInterval
		s.snapProbeMu.Unlock()
		if cooling {
			fails++
			return
		}
		rec, ok, err := s.fetchSnapshot(p, ref, deadline)
		s.snapProbeMu.Lock()
		if err != nil {
			s.snapProbeFail[p] = time.Now()
		} else {
			delete(s.snapProbeFail, p)
		}
		s.snapProbeMu.Unlock()
		if err != nil {
			fails++
			return
		}
		if !ok {
			return
		}
		if best == nil || rec.Epoch > best.Epoch ||
			(rec.Epoch == best.Epoch && rec.Seq > best.Seq) {
			r := rec
			best = &r
		}
	}
	// Query the global top-(K+1) minus self: the shipper's top-K excluding
	// any single prior host is a subset of the global top-(K+1), so every
	// replica that can hold this ref's snapshots is consulted.
	var deferred []transport.NodeID
	for _, p := range s.topSnapPeers(ref, s.cfg.DurableReplicas+1, "") {
		if p == s.Node() {
			continue
		}
		if !s.cfg.DisableFailover {
			if at, dead := s.peerDeadSince(p); dead {
				if time.Since(at) < s.snapDeadGrace() {
					deferred = append(deferred, p)
				}
				continue
			}
		}
		consult(p)
	}
	// Peers under a recent dead verdict are a last resort, not part of the
	// normal query: they are probed only when no live replica held any
	// snapshot, so the cost stays confined to the amnesia-risk case. If the
	// dead verdict was a false positive the probe answers and the state is
	// saved; if the peer really is down the probe fails (or its breaker is
	// cooling) and lands in the fails accounting — refusal and retry, never
	// amnesia while a replica might still hold state. The tradeoff: within
	// the grace window a live-replica snapshot wins even if the dead-marked
	// peer holds a newer epoch (possible across migrations); the pre-grace
	// behavior skipped such peers unconditionally, so this is strictly less
	// lossy.
	if best == nil {
		for _, p := range deferred {
			consult(p)
		}
	}
	if best == nil && fails > 0 {
		// Some replica may hold state we could not reach: refusing the
		// activation keeps callers retrying instead of resurrecting the
		// actor with amnesia next to a recoverable snapshot.
		s.durables.RecoveryFailed.Add(1)
		s.flight.Record(flight.Event{Kind: flight.KindRecovery, Actor: ref.String(), Detail: "failed", N: uint64(fails)})
		return nil, fmt.Errorf("%w: %d replica(s) unreachable recovering %s", errPeerDown, fails, ref)
	}
	if best != nil {
		s.durables.RecoveredWithState.Add(1)
		s.flight.Record(flight.Event{Kind: flight.KindRecovery, Actor: ref.String(), Detail: "with_state", N: best.Epoch})
	} else {
		s.durables.RecoveryEmpty.Add(1)
		s.flight.Record(flight.Event{Kind: flight.KindRecovery, Actor: ref.String(), Detail: "empty"})
	}
	return best, nil
}

// fetchSnapshot asks one replica for its resident snapshot of ref. An empty
// reply payload means "no snapshot here" (ok=false, no error).
func (s *System) fetchSnapshot(node transport.NodeID, ref Ref, deadline time.Time) (durable.Record, bool, error) {
	req, err := codec.Marshal(dirRequest{Type: ref.Type, Key: ref.Key})
	if err != nil {
		return durable.Record{}, false, err
	}
	out, err := s.controlCallRawReply(node, ctlSnapGet, req, s.attemptTimeout(deadline))
	if err != nil {
		return durable.Record{}, false, err
	}
	if len(out) == 0 {
		return durable.Record{}, false, nil
	}
	rec, err := durable.DecodeRecord(out)
	if err != nil {
		return durable.Record{}, false, err
	}
	return rec, true, nil
}

// controlCallRaw is controlCallT for pre-encoded payloads with no reply
// decode (snapshot ships).
func (s *System) controlCallRaw(node transport.NodeID, verb string, payload []byte, timeout time.Duration) error {
	_, err := s.controlCallRawReply(node, verb, payload, timeout)
	return err
}

// controlCallRawReply performs one control round trip with a raw payload
// and returns the raw reply payload — the snapshot plane's records are
// their own wire format, not gob.
func (s *System) controlCallRawReply(node transport.NodeID, verb string, payload []byte, timeout time.Duration) ([]byte, error) {
	if node == s.Node() {
		return s.handleControlVerb(verb, payload, s.Node())
	}
	id := s.nextID.Add(1)
	ch := make(chan *transport.Envelope, 1)
	s.pendPut(id, ch)
	defer s.pendDel(id)
	env := &transport.Envelope{Kind: transport.KindControl, ID: id, Method: verb, Payload: payload}
	if err := s.tr.Send(node, env); err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.Err != "" {
			return nil, fmt.Errorf("actor: control %s @%s: %w", verb, node, rehydrateWireErr(r.Err))
		}
		return r.Payload, nil
	case <-timer.C:
		return nil, fmt.Errorf("%w: control %s @%s", ErrTimeout, verb, node)
	case <-s.done:
		return nil, ErrStopped
	}
}

// handleSnapPut installs an inbound replica snapshot, subject to the
// (epoch, seq) ordering rule — the delayed pre-migration ship is counted
// and dropped here.
func (s *System) handleSnapPut(payload []byte) ([]byte, error) {
	rec, err := durable.DecodeRecord(payload)
	if err != nil {
		return nil, err
	}
	if s.snapStore.Put(rec) {
		s.durables.ReplicaAccepted.Add(1)
	} else {
		s.durables.ReplicaStale.Add(1)
	}
	return nil, nil
}

// handleSnapGet answers a recovery pull with the resident snapshot record
// (empty payload when none).
func (s *System) handleSnapGet(payload []byte) ([]byte, error) {
	var req dirRequest
	if err := codec.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	rec, ok := s.snapStore.Get(req.Type, req.Key)
	if !ok {
		return nil, nil
	}
	return durable.AppendRecord(nil, rec), nil
}

// SyncSnapshots synchronously captures and ships every dirty Durable
// activation on this node, returning the number shipped. Used as a
// graceful flush (planned drains, chaos tests establishing a known-durable
// baseline before a kill). State is captured under each turn lock; all
// shipping happens after the lock is released.
func (s *System) SyncSnapshots() int {
	if !s.durabilityOn() {
		return 0
	}
	type captured struct {
		ref        Ref
		epoch, seq uint64
		state      []byte
	}
	var caps []captured
	for i := range s.state {
		sh := &s.state[i]
		sh.mu.RLock()
		acts := make([]*activation, 0, len(sh.activations))
		for _, a := range sh.activations {
			acts = append(acts, a)
		}
		sh.mu.RUnlock()
		for _, a := range acts {
			a.turnMu.Lock()
			if !a.durable || a.dirty == 0 {
				a.turnMu.Unlock()
				continue
			}
			m, ok := a.actor.(Migratable)
			if !ok {
				a.turnMu.Unlock()
				continue
			}
			state, err := m.Snapshot()
			if err != nil {
				s.durables.CaptureErrors.Add(1)
				a.turnMu.Unlock()
				continue
			}
			a.snapSeq++
			a.dirty = 0
			a.lastSnap = time.Now()
			s.durables.Captured.Add(1)
			caps = append(caps, captured{ref: a.ref, epoch: a.epoch, seq: a.snapSeq, state: state})
			a.turnMu.Unlock()
		}
	}
	for _, c := range caps {
		s.shipSnapshot(c.ref, c.epoch, c.seq, c.state)
	}
	return len(caps)
}
