package actor

import (
	"fmt"
	"testing"
	"time"

	"actop/internal/codec"
	"actop/internal/transport"
)

// opaqueArgs cannot be serialized at all — gob rejects func fields — so a
// call that succeeds with it proves the zero-copy value path ran end to
// end with no serialization anywhere.
type opaqueArgs struct {
	N   int
	Inc func(int) int
}

func (a opaqueArgs) CopyValue() interface{} { return a } // Inc is immutable; N is a value

// plainArgs takes the encoded path: no CopyValue, so the runtime falls back
// to marshal/unmarshal even for a local callee.
type plainArgs struct{ N int }

// valReply crosses back by value through CopyValue + Assign.
type valReply struct{ N int }

func (r valReply) CopyValue() interface{} { return r }

// valActor implements both receive paths with identical semantics, as the
// ValueReceiver contract requires.
type valActor struct{ total int }

func (v *valActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "AddPlain":
		var a plainArgs
		if err := codec.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		v.total += a.N
		return codec.Marshal(valReply{N: v.total})
	}
	return nil, fmt.Errorf("no method %q", method)
}

func (v *valActor) ReceiveValue(ctx *Context, method string, args interface{}) (interface{}, error) {
	switch method {
	case "AddOpaque":
		a := args.(opaqueArgs)
		v.total += a.Inc(a.N)
		return valReply{N: v.total}, nil
	case "AddPlain":
		v.total += args.(plainArgs).N
		return valReply{N: v.total}, nil
	}
	return nil, fmt.Errorf("no method %q", method)
}

func newValNode(t testing.TB) *System {
	t.Helper()
	net := transport.NewNetwork(0)
	tr := net.Join("solo")
	sys, err := NewSystem(Config{
		Transport: tr, Peers: []transport.NodeID{"solo"},
		CallTimeout: 3 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterType("val", func() Actor { return &valActor{} })
	t.Cleanup(sys.Stop)
	return sys
}

// TestLocalValueCallZeroSerialization drives a local call whose arguments
// are unserializable (a func field): only the CopyValue path can deliver
// them, so success is proof that no serialization happened in either
// direction.
func TestLocalValueCallZeroSerialization(t *testing.T) {
	sys := newValNode(t)
	ref := Ref{Type: "val", Key: "k"}
	args := opaqueArgs{N: 20, Inc: func(n int) int { return n + 1 }}
	var reply valReply
	if err := sys.Call(ref, "AddOpaque", args, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.N != 21 {
		t.Fatalf("reply = %+v, want N=21", reply)
	}
	if err := sys.Call(ref, "AddOpaque", args, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.N != 42 {
		t.Fatalf("second reply = %+v, want N=42 (state lost?)", reply)
	}
	if st := sys.Stats(); st.CallsLocal != 2 || st.CallsRemote != 0 {
		t.Fatalf("stats = %+v, want 2 local / 0 remote", st)
	}
}

// TestLocalValueCallFewerAllocs compares the same local invocation through
// the value path (Copier args) and the encoded path (plain args): the value
// path must allocate well under half of what the serializing path does.
func TestLocalValueCallFewerAllocs(t *testing.T) {
	sys := newValNode(t)
	ref := Ref{Type: "val", Key: "allocs"}
	var reply valReply
	// Warm up: activate the actor and populate caches outside the count.
	if err := sys.Call(ref, "AddPlain", plainArgs{N: 0}, &reply); err != nil {
		t.Fatal(err)
	}

	fast := testing.AllocsPerRun(200, func() {
		var r valReply
		if err := sys.Call(ref, "AddOpaque", opaqueArgs{N: 1, Inc: func(n int) int { return n }}, &r); err != nil {
			t.Fatal(err)
		}
	})
	slow := testing.AllocsPerRun(200, func() {
		var r valReply
		if err := sys.Call(ref, "AddPlain", plainArgs{N: 1}, &r); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("value path %.1f allocs/op, encoded path %.1f allocs/op", fast, slow)
	if fast*2 > slow {
		t.Fatalf("value path allocates %.1f/op vs %.1f/op encoded — expected at least a 2x gap", fast, slow)
	}
}

// TestLocalValueCallIsolation checks the two copy points of the fast path:
// the callee sees an isolated argument copy, and the caller's reply cannot
// be mutated by the actor afterwards.
func TestLocalValueCallIsolation(t *testing.T) {
	net := transport.NewNetwork(0)
	tr := net.Join("solo")
	sys, err := NewSystem(Config{
		Transport: tr, Peers: []transport.NodeID{"solo"},
		CallTimeout: 3 * time.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterType("mut", func() Actor { return &mutActor{} })
	t.Cleanup(sys.Stop)
	ref := Ref{Type: "mut", Key: "k"}

	args := sliceArgs{Vals: []int{1, 2, 3}}
	var reply sliceArgs
	if err := sys.Call(ref, "Mutate", args, &reply); err != nil {
		t.Fatal(err)
	}
	if args.Vals[0] != 1 {
		t.Fatalf("actor mutated the caller's args: %v", args.Vals)
	}
	if reply.Vals[0] != 100 {
		t.Fatalf("reply = %v, want actor's mutation visible", reply.Vals)
	}
	// The actor retained its slice; a second call mutates it again. If the
	// reply aliased actor state, the caller's first reply would change too.
	snapshot := reply.Vals[1]
	if err := sys.Call(ref, "Mutate", args, &sliceArgs{}); err != nil {
		t.Fatal(err)
	}
	if reply.Vals[1] != snapshot {
		t.Fatalf("reply aliases actor state: %v", reply.Vals)
	}
}

type sliceArgs struct{ Vals []int }

func (s sliceArgs) CopyValue() interface{} {
	if len(s.Vals) == 0 {
		s.Vals = nil
		return s
	}
	s.Vals = append([]int(nil), s.Vals...)
	return s
}

// mutActor mutates both its argument and its retained state slice.
type mutActor struct{ kept []int }

func (m *mutActor) Receive(ctx *Context, method string, args []byte) ([]byte, error) {
	return nil, fmt.Errorf("mutActor is value-only in this test")
}

func (m *mutActor) ReceiveValue(ctx *Context, method string, args interface{}) (interface{}, error) {
	a := args.(sliceArgs)
	a.Vals[0] = 100 // must not be visible to the caller
	m.kept = a.Vals
	m.kept[1]++
	return sliceArgs{Vals: m.kept}, nil
}
